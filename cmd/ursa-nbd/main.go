// Command ursa-nbd is the client portal as a daemon: it opens (creating if
// necessary) a virtual disk on an URSA cluster and exports it over the NBD
// protocol, the interface VMMs attach virtual disks through (§3.1). Any
// NBD initiator — qemu, nbd-client, or this repo's own client — can
// connect.
//
// Usage:
//
//	ursa-nbd -master 127.0.0.1:7000 -vdisk vm1 -size 1073741824 \
//	    -listen 127.0.0.1:10809
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"ursa/internal/client"
	"ursa/internal/clock"
	"ursa/internal/master"
	"ursa/internal/nbd"
	"ursa/internal/transport"
	"ursa/internal/util"
)

func main() {
	var (
		masterAddr = flag.String("master", "127.0.0.1:7000", "master address")
		vdisk      = flag.String("vdisk", "vm1", "virtual disk name")
		size       = flag.Int64("size", util.GiB, "size when creating the vdisk")
		stripe     = flag.Int("stripe", 1, "stripe group size")
		listen     = flag.String("listen", "127.0.0.1:10809", "NBD listen address")
		name       = flag.String("client", "", "lease-holder identity (default: host:pid)")
	)
	flag.Parse()

	id := *name
	if id == "" {
		host, _ := os.Hostname()
		id = host + "-nbd"
	}
	cl := client.New(client.Config{
		Name:       id,
		MasterAddr: *masterAddr,
		Clock:      clock.Realtime,
		Dialer:     transport.TCPDialer{},
	})
	defer cl.Close()

	if _, err := cl.CreateVDisk(master.CreateVDiskReq{
		Name: *vdisk, Size: *size, StripeGroup: *stripe,
	}); err != nil && !errors.Is(err, util.ErrExists) {
		log.Fatalf("create vdisk %q: %v", *vdisk, err)
	}
	vd, err := cl.Open(*vdisk)
	if err != nil {
		log.Fatalf("open vdisk %q: %v", *vdisk, err)
	}
	defer vd.Close()

	srv := nbd.NewServer(nbd.Export{Name: *vdisk, Device: vd})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen %s: %v", *listen, err)
	}
	go srv.Serve(ln)
	log.Printf("ursa-nbd exporting %q (%s) on %s",
		*vdisk, util.FormatBytes(vd.Size()), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	srv.Close()
}
