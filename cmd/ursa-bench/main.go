// Command ursa-bench regenerates the paper's evaluation tables and
// figures. Each figure builds its systems in-process (simulated disks and
// network) and prints the same rows/series the paper plots.
//
// Usage:
//
//	ursa-bench -list
//	ursa-bench -fig 6a
//	ursa-bench -all [-quick] [-seed N]
//	ursa-bench -fig ceiling -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	ursa-bench -fig ceiling -pprof :6060   # live net/http/pprof listener
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"ursa/internal/bench"
)

func main() {
	var (
		fig        = flag.String("fig", "", "figure/table id to run (1, 2, t1, 6a..16)")
		all        = flag.Bool("all", false, "run every figure and table")
		list       = flag.Bool("list", false, "list available figures")
		quick      = flag.Bool("quick", false, "reduced op counts")
		seed       = flag.Uint64("seed", 42, "randomness seed")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) for the run's duration")
	)
	flag.Parse()

	entries := bench.All()
	if *list {
		for _, e := range entries {
			fmt.Println(e.ID)
		}
		return
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof listener: %v\n", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	run := func(e bench.Entry) {
		start := time.Now()
		tab := e.Run(cfg)
		fmt.Print(tab.String())
		fmt.Printf("(%s in %v)\n\n", tab.ID, time.Since(start).Round(time.Millisecond))
		// Figures allocate multi-GB simulated device stores; hand the
		// garbage back to the OS before building the next system.
		debug.FreeOSMemory()
	}
	switch {
	case *all:
		for _, e := range entries {
			run(e)
		}
	case *fig != "":
		for _, e := range entries {
			if e.ID == *fig {
				run(e)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *fig)
		os.Exit(1)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
