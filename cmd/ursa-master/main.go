// Command ursa-master runs the URSA master daemon over real TCP. Chunk
// servers register themselves via the register RPC (see ursa-chunkserver);
// clients create and open virtual disks through it.
//
// Usage:
//
//	ursa-master -listen 127.0.0.1:7000 [-replication 3] [-hybrid]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ursa/internal/clock"
	"ursa/internal/master"
	"ursa/internal/transport"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7000", "address to listen on")
		replication = flag.Int("replication", 3, "replicas per chunk")
		hybrid      = flag.Bool("hybrid", true, "place backups on HDD servers")
		leaseTTL    = flag.Duration("lease", 30*time.Second, "client lease duration")
	)
	flag.Parse()

	l, err := transport.ListenTCP(*listen)
	if err != nil {
		log.Fatalf("listen %s: %v", *listen, err)
	}
	m := master.New(master.Config{
		Addr:        *listen,
		Clock:       clock.Realtime,
		Dialer:      transport.TCPDialer{},
		Replication: *replication,
		LeaseTTL:    *leaseTTL,
		HybridMode:  *hybrid,
	})
	m.Serve(l)
	log.Printf("ursa-master listening on %s (replication=%d hybrid=%v)",
		l.Addr(), *replication, *hybrid)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	m.Close()
}
