// Command ursa-trace analyzes block traces: the block-size CDF of Fig 1
// and the cache-hit study of Fig 2, over either real MSR Cambridge CSV
// files or the calibrated synthetic catalog.
//
// Usage:
//
//	ursa-trace -cdf [-n 200000]            # synthetic Fig 1 CDF
//	ursa-trace -cdf -msr volume.csv        # CDF of a real trace
//	ursa-trace -cachehit [-n 30000]        # Fig 2 across the catalog
package main

import (
	"flag"
	"fmt"
	"os"

	"ursa/internal/cachesim"
	"ursa/internal/trace"
	"ursa/internal/util"
)

func main() {
	var (
		cdf      = flag.Bool("cdf", false, "print the block-size CDF (Fig 1)")
		cachehit = flag.Bool("cachehit", false, "print per-trace cache hit ratios (Fig 2)")
		msr      = flag.String("msr", "", "MSR Cambridge CSV file (default: synthetic)")
		n        = flag.Int("n", 200000, "synthetic records per trace")
		seed     = flag.Uint64("seed", 42, "randomness seed")
	)
	flag.Parse()

	switch {
	case *cdf:
		records, err := load(*msr, *n, *seed)
		if err != nil {
			fatal(err)
		}
		sizes, cum := trace.SizeCDFOf(records)
		fmt.Printf("%-10s %s\n", "size", "cumulative")
		for i, s := range sizes {
			fmt.Printf("%-10s %.2f%%\n", util.FormatBytes(int64(s)), 100*cum[i])
		}
	case *cachehit:
		if *msr != "" {
			records, err := load(*msr, *n, *seed)
			if err != nil {
				fatal(err)
			}
			res := cachesim.Replay(*msr, records)
			fmt.Printf("%s: reads=%d hit=%.1f%%\n", *msr, res.Reads, 100*res.HitRatio)
			return
		}
		fmt.Printf("%-10s %-10s %s\n", "trace", "hit-ratio", "below-75%")
		low := 0
		for i, e := range trace.Catalog() {
			records := e.Profile.Generate(*seed+uint64(100+i), *n)
			res := cachesim.Replay(e.Name, records)
			flag := ""
			if res.HitRatio < cachesim.LowHitThreshold {
				flag = "LOW"
				low++
			}
			fmt.Printf("%-10s %-10.1f %s\n", e.Name, 100*res.HitRatio, flag)
		}
		fmt.Printf("%d of 36 traces below 75%% (paper: 17)\n", low)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string, n int, seed uint64) ([]trace.Record, error) {
	if path == "" {
		p := trace.Profile{Name: "synthetic", ReadFraction: 0.45, VolumeSize: 16 * util.GiB}
		return p.Generate(seed, n), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ParseMSR(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
