// Command ursa-chunkserver runs one chunk-server process over real TCP,
// backed by simulated devices (this reproduction's stand-in for raw SSDs
// and HDDs). A primary server stores chunks on a simulated SSD; a backup
// server stores them on a simulated HDD behind an SSD journal with an HDD
// overflow journal (§3.2).
//
// Usage:
//
//	ursa-chunkserver -listen 127.0.0.1:7101 -master 127.0.0.1:7000 \
//	    -machine m1 -role primary
//	ursa-chunkserver -listen 127.0.0.1:7102 -master 127.0.0.1:7000 \
//	    -machine m1 -role backup
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"ursa/internal/blockstore"
	"ursa/internal/chunkserver"
	"ursa/internal/clock"
	"ursa/internal/journal"
	"ursa/internal/master"
	"ursa/internal/proto"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
	"ursa/internal/util"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7101", "address to listen on")
		masterAddr = flag.String("master", "127.0.0.1:7000", "master address")
		machine    = flag.String("machine", "m0", "machine name for placement")
		role       = flag.String("role", "primary", "primary (SSD) or backup (HDD+journal)")
		capacity   = flag.Int64("capacity", 32*util.GiB, "device capacity in bytes")
	)
	flag.Parse()

	clk := clock.Realtime
	dialer := transport.TCPDialer{}

	var srv *chunkserver.Server
	switch *role {
	case "primary":
		m := simdisk.DefaultSSD()
		m.Capacity = *capacity
		ssd := simdisk.NewSSD(m, clk)
		srv = chunkserver.New(chunkserver.Config{
			Addr: *listen, Role: chunkserver.RolePrimary,
			Clock: clk, Dialer: dialer,
		}, blockstore.New(ssd, 0), nil)
	case "backup":
		hm := simdisk.DefaultHDD()
		hm.Capacity = *capacity
		hdd := simdisk.NewHDD(hm, clk)
		// Journal SSD sized at 1/10 of the HDD it fronts (§3.2's quota,
		// applied to the single-device layout of a standalone process).
		sm := simdisk.DefaultSSD()
		sm.Capacity = util.AlignUp(*capacity/10, util.SectorSize)
		jssd := simdisk.NewSSD(sm, clk)

		hddJournalSize := util.AlignDown(*capacity/16, util.SectorSize)
		storeLimit := util.AlignDown(*capacity-hddJournalSize, util.ChunkSize)
		store := blockstore.New(hdd, storeLimit)
		jset := journal.NewSet(clk, store, journal.DefaultConfig())
		jset.AddSSDJournal("jssd", jssd, 0, util.AlignDown(sm.Capacity, util.SectorSize))
		jset.AddHDDJournal("jhdd", hdd, storeLimit, hddJournalSize)
		jset.Start()
		srv = chunkserver.New(chunkserver.Config{
			Addr: *listen, Role: chunkserver.RoleBackup,
			Clock: clk, Dialer: dialer,
		}, store, jset)
	default:
		log.Fatalf("unknown role %q", *role)
	}

	l, err := transport.ListenTCP(*listen)
	if err != nil {
		log.Fatalf("listen %s: %v", *listen, err)
	}
	srv.Serve(l)

	// Register with the master.
	conn, err := dialer.Dial(*masterAddr)
	if err != nil {
		log.Fatalf("dial master %s: %v", *masterAddr, err)
	}
	cli := transport.NewClient(conn, clk)
	payload, _ := json.Marshal(master.RegisterReq{
		Addr: l.Addr(), Machine: *machine, SSD: *role == "primary",
	})
	resp, err := cli.Call(&proto.Message{Op: proto.MOpRegister, Payload: payload}, 0)
	if err != nil || resp.Status != proto.StatusOK {
		log.Fatalf("register with master: %v (%v)", err, resp)
	}
	cli.Close()
	log.Printf("ursa-chunkserver %s (%s on %s) registered with %s",
		l.Addr(), *role, *machine, *masterAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for s := range sig {
		if s == syscall.SIGHUP {
			log.Printf("hot upgrade requested")
			srv.Upgrade()
			continue
		}
		break
	}
	log.Printf("shutting down")
	srv.Close()
}
