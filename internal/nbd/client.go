package nbd

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"ursa/internal/util"
)

// Client is an NBD initiator implementing client.Device over a TCP
// connection. Requests pipeline: many may be in flight, matched to
// responses by handle.
type Client struct {
	conn net.Conn
	size int64

	wm sync.Mutex // serializes request frames

	mu      sync.Mutex
	next    uint64
	pending map[uint64]chan clientResp
	closed  bool

	readerDone chan struct{}
}

type clientResp struct {
	errno uint32
	data  []byte
}

// Dial connects to an NBD server and negotiates the named export with
// NBD_OPT_EXPORT_NAME.
func Dial(addr, export string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := newClient(conn, export)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClientConn negotiates over an existing connection (tests use
// net.Pipe).
func NewClientConn(conn net.Conn, export string) (*Client, error) {
	return newClient(conn, export)
}

func newClient(conn net.Conn, export string) (*Client, error) {
	var greet [18]byte
	if _, err := io.ReadFull(conn, greet[:]); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint64(greet[0:]) != nbdMagic ||
		binary.BigEndian.Uint64(greet[8:]) != iHaveOpt {
		return nil, fmt.Errorf("nbd: bad server greeting")
	}
	flags := binary.BigEndian.Uint16(greet[16:])
	var cflags [4]byte
	binary.BigEndian.PutUint32(cflags[:], uint32(flags)&(flagFixedStyle|flagNoZeroes))
	if _, err := conn.Write(cflags[:]); err != nil {
		return nil, err
	}
	// EXPORT_NAME option.
	opt := make([]byte, 16+len(export))
	binary.BigEndian.PutUint64(opt[0:], iHaveOpt)
	binary.BigEndian.PutUint32(opt[8:], optExportName)
	binary.BigEndian.PutUint32(opt[12:], uint32(len(export)))
	copy(opt[16:], export)
	if _, err := conn.Write(opt); err != nil {
		return nil, err
	}
	respLen := 10
	if flags&flagNoZeroes == 0 {
		respLen += 124
	}
	resp := make([]byte, respLen)
	if _, err := io.ReadFull(conn, resp); err != nil {
		return nil, err
	}
	c := &Client{
		conn:       conn,
		size:       int64(binary.BigEndian.Uint64(resp[0:])),
		pending:    make(map[uint64]chan clientResp),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		var hdr [16]byte
		if _, err := io.ReadFull(c.conn, hdr[:]); err != nil {
			c.failAll()
			return
		}
		if binary.BigEndian.Uint32(hdr[0:]) != responseMagic {
			c.failAll()
			return
		}
		errno := binary.BigEndian.Uint32(hdr[4:])
		handle := binary.BigEndian.Uint64(hdr[8:])
		c.mu.Lock()
		ch, ok := c.pending[handle]
		var want int
		if ok {
			delete(c.pending, handle)
			want = int(handle >> 40) // read length stashed in high bits
		}
		c.mu.Unlock()
		var data []byte
		if ok && want > 0 && errno == 0 {
			data = make([]byte, want)
			if _, err := io.ReadFull(c.conn, data); err != nil {
				if ok {
					ch <- clientResp{errno: errIO}
				}
				c.failAll()
				return
			}
		}
		if ok {
			ch <- clientResp{errno: errno, data: data}
		}
	}
}

func (c *Client) failAll() {
	c.mu.Lock()
	c.closed = true
	for h, ch := range c.pending {
		delete(c.pending, h)
		close(ch)
	}
	c.mu.Unlock()
}

// request issues one command and waits for its response.
func (c *Client) request(cmd uint16, off int64, length uint32, payload []byte, readLen int) (clientResp, error) {
	ch := make(chan clientResp, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return clientResp{}, util.ErrClosed
	}
	c.next++
	// Stash the expected read length in the handle's high bits so the
	// read loop knows how much payload follows the response header.
	handle := (uint64(readLen) << 40) | (c.next & 0xffffffffff)
	c.pending[handle] = ch
	c.mu.Unlock()

	var hdr [28]byte
	binary.BigEndian.PutUint32(hdr[0:], requestMagic)
	binary.BigEndian.PutUint16(hdr[6:], cmd)
	binary.BigEndian.PutUint64(hdr[8:], handle)
	binary.BigEndian.PutUint64(hdr[16:], uint64(off))
	binary.BigEndian.PutUint32(hdr[24:], length)

	c.wm.Lock()
	_, err := c.conn.Write(hdr[:])
	if err == nil && len(payload) > 0 {
		_, err = c.conn.Write(payload)
	}
	c.wm.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, handle)
		c.mu.Unlock()
		return clientResp{}, err
	}
	resp, ok := <-ch
	if !ok {
		return clientResp{}, util.ErrClosed
	}
	return resp, nil
}

// ReadAt implements client.Device.
func (c *Client) ReadAt(p []byte, off int64) error {
	resp, err := c.request(cmdRead, off, uint32(len(p)), nil, len(p))
	if err != nil {
		return err
	}
	if resp.errno != 0 {
		return fmt.Errorf("nbd: read error %d", resp.errno)
	}
	copy(p, resp.data)
	return nil
}

// WriteAt implements client.Device.
func (c *Client) WriteAt(p []byte, off int64) error {
	resp, err := c.request(cmdWrite, off, uint32(len(p)), p, 0)
	if err != nil {
		return err
	}
	if resp.errno != 0 {
		return fmt.Errorf("nbd: write error %d", resp.errno)
	}
	return nil
}

// Flush implements client.Device.
func (c *Client) Flush() error {
	resp, err := c.request(cmdFlush, 0, 0, nil, 0)
	if err != nil {
		return err
	}
	if resp.errno != 0 {
		return fmt.Errorf("nbd: flush error %d", resp.errno)
	}
	return nil
}

// Size implements client.Device.
func (c *Client) Size() int64 { return c.size }

// Close sends NBD_CMD_DISC and tears the connection down.
func (c *Client) Close() error {
	c.wm.Lock()
	var hdr [28]byte
	binary.BigEndian.PutUint32(hdr[0:], requestMagic)
	binary.BigEndian.PutUint16(hdr[6:], cmdDisc)
	_, _ = c.conn.Write(hdr[:])
	c.wm.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}
