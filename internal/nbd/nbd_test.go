package nbd

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"ursa/internal/util"
)

// memDev is a trivial client.Device for tests.
type memDev struct {
	mu   sync.Mutex
	data []byte
}

func (d *memDev) ReadAt(p []byte, off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(d.data)) {
		return util.ErrOutOfRange
	}
	copy(p, d.data[off:])
	return nil
}

func (d *memDev) WriteAt(p []byte, off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(d.data)) {
		return util.ErrOutOfRange
	}
	copy(d.data[off:], p)
	return nil
}

func (d *memDev) Size() int64  { return int64(len(d.data)) }
func (d *memDev) Flush() error { return nil }
func (d *memDev) Close() error { return nil }

func startServer(t *testing.T, exports ...Export) (addr string, s *Server) {
	t.Helper()
	s = NewServer(exports...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(s.Close)
	return ln.Addr().String(), s
}

func TestNBDReadWriteRoundTrip(t *testing.T) {
	dev := &memDev{data: make([]byte, 8*util.MiB)}
	addr, _ := startServer(t, Export{Name: "disk", Device: dev})
	c, err := Dial(addr, "disk")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if c.Size() != 8*util.MiB {
		t.Errorf("negotiated size = %d", c.Size())
	}
	data := make([]byte, 64*util.KiB)
	util.NewRand(1).Fill(data)
	if err := c.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("NBD round trip mismatch")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestNBDDefaultExport(t *testing.T) {
	dev := &memDev{data: make([]byte, util.MiB)}
	addr, _ := startServer(t, Export{Name: "only", Device: dev})
	// Empty export name selects the sole export.
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Size() != util.MiB {
		t.Errorf("size = %d", c.Size())
	}
}

func TestNBDUnknownExport(t *testing.T) {
	dev := &memDev{data: make([]byte, util.MiB)}
	addr, _ := startServer(t,
		Export{Name: "a", Device: dev},
		Export{Name: "b", Device: dev})
	if _, err := Dial(addr, "nope"); err == nil {
		t.Fatal("unknown export accepted")
	}
}

func TestNBDConcurrentRequests(t *testing.T) {
	dev := &memDev{data: make([]byte, 16*util.MiB)}
	addr, _ := startServer(t, Export{Name: "disk", Device: dev})
	c, err := Dial(addr, "disk")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 4096)
			util.NewRand(uint64(i)).Fill(buf)
			off := int64(i) * 8192
			if err := c.WriteAt(buf, off); err != nil {
				errs <- err
				return
			}
			got := make([]byte, 4096)
			if err := c.ReadAt(got, off); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, buf) {
				errs <- util.ErrOutOfRange
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestNBDReadErrorPropagates(t *testing.T) {
	dev := &memDev{data: make([]byte, util.MiB)}
	addr, _ := startServer(t, Export{Name: "disk", Device: dev})
	c, err := Dial(addr, "disk")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ReadAt(make([]byte, 4096), 2*util.MiB); err == nil {
		t.Fatal("out-of-range read returned no error")
	}
	// Connection remains usable.
	if err := c.ReadAt(make([]byte, 512), 0); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}
