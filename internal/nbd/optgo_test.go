package nbd

import (
	"encoding/binary"
	"io"
	"net"
	"testing"

	"ursa/internal/util"
)

// rawHandshake performs the fixed-newstyle greeting and returns the
// connection ready for option haggling.
func rawHandshake(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var greet [18]byte
	if _, err := io.ReadFull(conn, greet[:]); err != nil {
		t.Fatal(err)
	}
	var cflags [4]byte
	binary.BigEndian.PutUint32(cflags[:], flagFixedStyle|flagNoZeroes)
	if _, err := conn.Write(cflags[:]); err != nil {
		t.Fatal(err)
	}
	return conn
}

func sendOpt(t *testing.T, conn net.Conn, opt uint32, data []byte) {
	t.Helper()
	buf := make([]byte, 16+len(data))
	binary.BigEndian.PutUint64(buf[0:], iHaveOpt)
	binary.BigEndian.PutUint32(buf[8:], opt)
	binary.BigEndian.PutUint32(buf[12:], uint32(len(data)))
	copy(buf[16:], data)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
}

// readOptReply reads one option reply frame.
func readOptReply(t *testing.T, conn net.Conn) (opt, typ uint32, payload []byte) {
	t.Helper()
	var hdr [20]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint64(hdr[0:]) != optReplyMagic {
		t.Fatal("bad option reply magic")
	}
	opt = binary.BigEndian.Uint32(hdr[8:])
	typ = binary.BigEndian.Uint32(hdr[12:])
	n := binary.BigEndian.Uint32(hdr[16:])
	payload = make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		t.Fatal(err)
	}
	return opt, typ, payload
}

func TestOptGoNegotiation(t *testing.T) {
	dev := &memDev{data: make([]byte, 4*util.MiB)}
	addr, _ := startServer(t, Export{Name: "disk", Device: dev})
	conn := rawHandshake(t, addr)
	defer conn.Close()

	goPayload := make([]byte, 4+4+2)
	binary.BigEndian.PutUint32(goPayload, 4)
	copy(goPayload[4:], "disk")
	// zero info requests
	sendOpt(t, conn, optGo, goPayload)

	opt, typ, payload := readOptReply(t, conn)
	if opt != optGo || typ != repInfo {
		t.Fatalf("first reply = opt %d type %d", opt, typ)
	}
	if got := binary.BigEndian.Uint64(payload[2:]); got != 4*util.MiB {
		t.Errorf("GO export size = %d", got)
	}
	if _, typ, _ = readOptReply(t, conn); typ != repAck {
		t.Fatalf("second reply type = %d", typ)
	}

	// Transmission phase works after GO.
	var req [28]byte
	binary.BigEndian.PutUint32(req[0:], requestMagic)
	binary.BigEndian.PutUint16(req[6:], cmdRead)
	binary.BigEndian.PutUint64(req[8:], 7)
	binary.BigEndian.PutUint32(req[24:], 512)
	if _, err := conn.Write(req[:]); err != nil {
		t.Fatal(err)
	}
	var resp [16]byte
	if _, err := io.ReadFull(conn, resp[:]); err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint32(resp[0:]) != responseMagic ||
		binary.BigEndian.Uint32(resp[4:]) != 0 ||
		binary.BigEndian.Uint64(resp[8:]) != 7 {
		t.Fatalf("read response header = %x", resp)
	}
	data := make([]byte, 512)
	if _, err := io.ReadFull(conn, data); err != nil {
		t.Fatal(err)
	}
}

func TestOptGoUnknownExport(t *testing.T) {
	dev := &memDev{data: make([]byte, util.MiB)}
	addr, _ := startServer(t,
		Export{Name: "a", Device: dev}, Export{Name: "b", Device: dev})
	conn := rawHandshake(t, addr)
	defer conn.Close()

	goPayload := make([]byte, 4+4+2)
	binary.BigEndian.PutUint32(goPayload, 4)
	copy(goPayload[4:], "nope")
	sendOpt(t, conn, optGo, goPayload)
	if _, typ, _ := readOptReply(t, conn); typ != repErrUnsup {
		t.Fatalf("unknown export GO reply = %d", typ)
	}
	// Haggling continues: an abort is still answered.
	sendOpt(t, conn, optAbort, nil)
	if _, typ, _ := readOptReply(t, conn); typ != repAck {
		t.Fatalf("abort after failed GO = %d", typ)
	}
}

func TestOptList(t *testing.T) {
	dev := &memDev{data: make([]byte, util.MiB)}
	addr, _ := startServer(t,
		Export{Name: "x", Device: dev}, Export{Name: "y", Device: dev})
	conn := rawHandshake(t, addr)
	defer conn.Close()

	sendOpt(t, conn, optList, nil)
	names := map[string]bool{}
	for {
		_, typ, payload := readOptReply(t, conn)
		if typ == repAck {
			break
		}
		if typ != repServer {
			t.Fatalf("list reply type = %d", typ)
		}
		n := binary.BigEndian.Uint32(payload)
		names[string(payload[4:4+n])] = true
	}
	if !names["x"] || !names["y"] || len(names) != 2 {
		t.Errorf("listed exports = %v", names)
	}
}

func TestUnknownOptionRejected(t *testing.T) {
	dev := &memDev{data: make([]byte, util.MiB)}
	addr, _ := startServer(t, Export{Name: "a", Device: dev})
	conn := rawHandshake(t, addr)
	defer conn.Close()
	sendOpt(t, conn, 999, nil)
	if _, typ, _ := readOptReply(t, conn); typ != repErrUnsup {
		t.Fatalf("unknown option reply = %d", typ)
	}
}

func TestTrimAcknowledged(t *testing.T) {
	dev := &memDev{data: make([]byte, util.MiB)}
	addr, _ := startServer(t, Export{Name: "a", Device: dev})
	c, err := Dial(addr, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Issue a raw trim through the client plumbing.
	resp, err := c.request(cmdTrim, 0, 4096, nil, 0)
	if err != nil || resp.errno != 0 {
		t.Fatalf("trim = %+v, %v", resp, err)
	}
}
