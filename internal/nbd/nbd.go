// Package nbd implements a Network Block Device server over the
// fixed-newstyle protocol, exposing any client.Device (URSA vdisks in
// particular) to real initiators — the qemu NBD driver is how the paper's
// VMMs attach virtual disks (§3.1). Requests are executed concurrently and
// responses may complete out of order, exactly as block devices behave
// (§3.4's discussion of guest-visible parallelism).
package nbd

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"ursa/internal/client"
	"ursa/internal/util"
)

// Protocol constants (see the NBD protocol specification).
const (
	nbdMagic       = 0x4e42444d41474943 // "NBDMAGIC"
	iHaveOpt       = 0x49484156454F5054 // "IHAVEOPT"
	requestMagic   = 0x25609513
	responseMagic  = 0x67446698
	optReplyMagic  = 0x3e889045565a9
	flagFixedStyle = 1 << 0
	flagNoZeroes   = 1 << 1

	optExportName = 1
	optAbort      = 2
	optList       = 3
	optGo         = 7

	repAck         = 1
	repServer      = 2
	repInfo        = 3
	repErrUnsup    = 0x80000001
	infoTypeExport = 0

	cmdRead  = 0
	cmdWrite = 1
	cmdDisc  = 2
	cmdFlush = 3
	cmdTrim  = 4

	transFlagHasFlags  = 1 << 0
	transFlagSendFlush = 1 << 2

	errIO     = 5
	errInval  = 22
	errNotSup = 95
)

// Export pairs a name with its device.
type Export struct {
	Name   string
	Device client.Device
}

// Server serves one or more exports.
type Server struct {
	mu      sync.Mutex
	exports map[string]client.Device
	ln      net.Listener
	wg      sync.WaitGroup
	closed  bool
}

// NewServer creates a server with the given exports.
func NewServer(exports ...Export) *Server {
	s := &Server{exports: make(map[string]client.Device)}
	for _, e := range exports {
		s.exports[e.Name] = e.Device
	}
	return s
}

// AddExport registers another export.
func (s *Server) AddExport(e Export) {
	s.mu.Lock()
	s.exports[e.Name] = e.Device
	s.mu.Unlock()
}

// Serve accepts NBD clients on ln until Close.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			_ = s.handleConn(conn)
		}()
	}
}

// Close stops accepting and waits for connections to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

func (s *Server) lookup(name string) client.Device {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" && len(s.exports) == 1 {
		for _, d := range s.exports {
			return d
		}
	}
	return s.exports[name]
}

// handleConn runs the fixed-newstyle handshake then the transmission
// phase.
func (s *Server) handleConn(conn net.Conn) error {
	// Server greeting.
	var greet [18]byte
	binary.BigEndian.PutUint64(greet[0:], nbdMagic)
	binary.BigEndian.PutUint64(greet[8:], iHaveOpt)
	binary.BigEndian.PutUint16(greet[16:], flagFixedStyle|flagNoZeroes)
	if _, err := conn.Write(greet[:]); err != nil {
		return err
	}
	var cflags [4]byte
	if _, err := io.ReadFull(conn, cflags[:]); err != nil {
		return err
	}
	noZeroes := binary.BigEndian.Uint32(cflags[:])&flagNoZeroes != 0

	// Option haggling.
	for {
		var hdr [16]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return err
		}
		if binary.BigEndian.Uint64(hdr[0:]) != iHaveOpt {
			return fmt.Errorf("nbd: bad option magic")
		}
		opt := binary.BigEndian.Uint32(hdr[8:])
		length := binary.BigEndian.Uint32(hdr[12:])
		if length > 4096 {
			return fmt.Errorf("nbd: oversized option")
		}
		data := make([]byte, length)
		if _, err := io.ReadFull(conn, data); err != nil {
			return err
		}
		switch opt {
		case optExportName:
			dev := s.lookup(string(data))
			if dev == nil {
				return fmt.Errorf("nbd: unknown export %q", data)
			}
			if err := s.sendExportInfo(conn, dev, noZeroes); err != nil {
				return err
			}
			return s.transmission(conn, dev)
		case optGo:
			dev, err := s.handleGo(conn, data)
			if err != nil {
				return err
			}
			if dev == nil {
				continue // error reply sent; client may retry
			}
			return s.transmission(conn, dev)
		case optAbort:
			_ = optReply(conn, opt, repAck, nil)
			return nil
		case optList:
			s.mu.Lock()
			names := make([]string, 0, len(s.exports))
			for n := range s.exports {
				names = append(names, n)
			}
			s.mu.Unlock()
			for _, n := range names {
				payload := make([]byte, 4+len(n))
				binary.BigEndian.PutUint32(payload, uint32(len(n)))
				copy(payload[4:], n)
				if err := optReply(conn, opt, repServer, payload); err != nil {
					return err
				}
			}
			if err := optReply(conn, opt, repAck, nil); err != nil {
				return err
			}
		default:
			if err := optReply(conn, opt, repErrUnsup, nil); err != nil {
				return err
			}
		}
	}
}

// handleGo processes NBD_OPT_GO: name-length-prefixed export name plus an
// info-request list. Replies with export info + ack, or an error reply
// (returning nil, nil so haggling continues).
func (s *Server) handleGo(conn net.Conn, data []byte) (client.Device, error) {
	if len(data) < 4 {
		return nil, optReply(conn, optGo, repErrUnsup, nil)
	}
	nameLen := int(binary.BigEndian.Uint32(data))
	if 4+nameLen > len(data) {
		return nil, fmt.Errorf("nbd: malformed GO option")
	}
	name := string(data[4 : 4+nameLen])
	dev := s.lookup(name)
	if dev == nil {
		if err := optReply(conn, optGo, repErrUnsup, nil); err != nil {
			return nil, err
		}
		return nil, nil
	}
	info := make([]byte, 12)
	binary.BigEndian.PutUint16(info[0:], infoTypeExport)
	binary.BigEndian.PutUint64(info[2:], uint64(dev.Size()))
	binary.BigEndian.PutUint16(info[10:], transFlagHasFlags|transFlagSendFlush)
	if err := optReply(conn, optGo, repInfo, info); err != nil {
		return nil, err
	}
	if err := optReply(conn, optGo, repAck, nil); err != nil {
		return nil, err
	}
	return dev, nil
}

// optReply writes one option reply frame.
func optReply(conn net.Conn, opt, typ uint32, payload []byte) error {
	buf := make([]byte, 20+len(payload))
	binary.BigEndian.PutUint64(buf[0:], optReplyMagic)
	binary.BigEndian.PutUint32(buf[8:], opt)
	binary.BigEndian.PutUint32(buf[12:], typ)
	binary.BigEndian.PutUint32(buf[16:], uint32(len(payload)))
	copy(buf[20:], payload)
	_, err := conn.Write(buf)
	return err
}

// sendExportInfo answers NBD_OPT_EXPORT_NAME: size + flags (+ 124 zeroes
// unless negotiated away).
func (s *Server) sendExportInfo(conn net.Conn, dev client.Device, noZeroes bool) error {
	n := 10
	if !noZeroes {
		n += 124
	}
	buf := make([]byte, n)
	binary.BigEndian.PutUint64(buf[0:], uint64(dev.Size()))
	binary.BigEndian.PutUint16(buf[8:], transFlagHasFlags|transFlagSendFlush)
	_, err := conn.Write(buf)
	return err
}

// transmission is the steady-state request loop: requests execute
// concurrently; a write mutex serializes responses.
func (s *Server) transmission(conn net.Conn, dev client.Device) error {
	var wm sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()

	reply := func(handle uint64, errno uint32, data []byte) error {
		wm.Lock()
		defer wm.Unlock()
		var hdr [16]byte
		binary.BigEndian.PutUint32(hdr[0:], responseMagic)
		binary.BigEndian.PutUint32(hdr[4:], errno)
		binary.BigEndian.PutUint64(hdr[8:], handle)
		if _, err := conn.Write(hdr[:]); err != nil {
			return err
		}
		if len(data) > 0 {
			if _, err := conn.Write(data); err != nil {
				return err
			}
		}
		return nil
	}

	for {
		var hdr [28]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return err
		}
		if binary.BigEndian.Uint32(hdr[0:]) != requestMagic {
			return fmt.Errorf("nbd: bad request magic")
		}
		cmd := binary.BigEndian.Uint16(hdr[6:])
		handle := binary.BigEndian.Uint64(hdr[8:])
		offset := int64(binary.BigEndian.Uint64(hdr[16:]))
		length := binary.BigEndian.Uint32(hdr[24:])
		if length > 32*util.MiB {
			return fmt.Errorf("nbd: oversized request")
		}

		switch cmd {
		case cmdRead:
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]byte, length)
				if err := dev.ReadAt(buf, offset); err != nil {
					_ = reply(handle, errIO, nil)
					return
				}
				_ = reply(handle, 0, buf)
			}()
		case cmdWrite:
			// The payload must be consumed in order on the socket.
			buf := make([]byte, length)
			if _, err := io.ReadFull(conn, buf); err != nil {
				return err
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := dev.WriteAt(buf, offset); err != nil {
					_ = reply(handle, errIO, nil)
					return
				}
				_ = reply(handle, 0, nil)
			}()
		case cmdFlush:
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := dev.Flush(); err != nil {
					_ = reply(handle, errIO, nil)
					return
				}
				_ = reply(handle, 0, nil)
			}()
		case cmdDisc:
			return nil
		case cmdTrim:
			// Trim is advisory; acknowledge without action.
			if err := reply(handle, 0, nil); err != nil {
				return err
			}
		default:
			if err := reply(handle, errNotSup, nil); err != nil {
				return err
			}
		}
	}
}
