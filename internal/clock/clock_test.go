package clock

import (
	"testing"
	"time"
)

func TestRealtimeBasics(t *testing.T) {
	if Realtime.Scale() != 1.0 {
		t.Errorf("Realtime.Scale() = %v", Realtime.Scale())
	}
	before := Realtime.Now()
	Realtime.Sleep(time.Millisecond)
	if elapsed := Realtime.Now().Sub(before); elapsed < time.Millisecond {
		t.Errorf("Realtime.Sleep(1ms) elapsed only %v", elapsed)
	}
}

func TestScaledSleepCompresses(t *testing.T) {
	c := NewScaled(0.01)
	start := time.Now()
	c.Sleep(100 * time.Millisecond) // should cost ~1ms wall
	wall := time.Since(start)
	if wall > 50*time.Millisecond {
		t.Errorf("scaled sleep of 100ms model took %v wall", wall)
	}
}

func TestScaledNowRunsFast(t *testing.T) {
	c := NewScaled(0.01)
	t0 := c.Now()
	time.Sleep(5 * time.Millisecond)
	model := c.Now().Sub(t0)
	// 5ms wall at 0.01 scale is 500ms model; allow generous slack.
	if model < 200*time.Millisecond {
		t.Errorf("model time advanced only %v for 5ms wall", model)
	}
}

func TestScaledAdvance(t *testing.T) {
	c := NewScaled(0.5)
	t0 := c.Now()
	c.Advance(time.Hour)
	if d := c.Now().Sub(t0); d < time.Hour {
		t.Errorf("Advance(1h) moved clock only %v", d)
	}
}

func TestScaledAfter(t *testing.T) {
	c := NewScaled(0.001)
	select {
	case <-c.After(time.Second): // 1ms wall
	case <-time.After(2 * time.Second):
		t.Fatal("scaled After(1s) did not fire within 2s wall")
	}
}

func TestScaledPanicsOnBadFactor(t *testing.T) {
	for _, f := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewScaled(%v) did not panic", f)
				}
			}()
			NewScaled(f)
		}()
	}
}

func TestSleepNonPositive(t *testing.T) {
	c := NewScaled(0.5)
	start := time.Now()
	c.Sleep(0)
	c.Sleep(-time.Second)
	if time.Since(start) > 10*time.Millisecond {
		t.Error("non-positive sleeps blocked")
	}
}
