// Package clock abstracts time so the whole system can run either at
// calibrated real-time speed (benchmarks reproduce paper-scale latencies)
// or at a scaled-down speed (unit tests finish in milliseconds) without any
// logic changes. Every latency-simulating component takes a Clock.
package clock

import (
	"sync/atomic"
	"time"
)

// Clock supplies time to URSA components. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for d of *model* time. A scaled
	// clock sleeps a fraction of d in wall time.
	Sleep(d time.Duration)
	// After returns a channel that fires after d of model time.
	After(d time.Duration) <-chan time.Time
	// Scale returns the wall-time fraction of one model-time unit
	// (1.0 for the real clock).
	Scale() float64
}

// Real is the identity clock: model time is wall time.
type realClock struct{}

// Realtime is the shared real clock.
var Realtime Clock = realClock{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Scale() float64                         { return 1.0 }

// Scaled compresses model time by factor: Sleep(d) sleeps d*factor wall
// time. factor must be in (0, 1]. Now() advances proportionally faster so
// that rates measured against this clock stay consistent with its sleeps:
// components compute IOPS as ops / modelElapsed.
type Scaled struct {
	factor float64
	start  time.Time
	// extra model-time nanoseconds credited by Advance (virtual waits).
	credit atomic.Int64
}

// NewScaled returns a clock whose model time runs 1/factor times faster
// than wall time. NewScaled(0.01) makes a simulated 8 ms HDD seek cost
// 80 µs of wall time.
func NewScaled(factor float64) *Scaled {
	if factor <= 0 || factor > 1 {
		panic("clock.NewScaled: factor must be in (0,1]")
	}
	return &Scaled{factor: factor, start: time.Now()}
}

// Now returns model time: elapsed wall time divided by the factor, plus any
// Advance credit, anchored at the clock's creation.
func (c *Scaled) Now() time.Time {
	wall := time.Since(c.start)
	model := time.Duration(float64(wall) / c.factor)
	return c.start.Add(model + time.Duration(c.credit.Load()))
}

// Sleep blocks for d of model time (d*factor wall time).
func (c *Scaled) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) * c.factor))
}

// After fires after d of model time.
func (c *Scaled) After(d time.Duration) <-chan time.Time {
	return time.After(time.Duration(float64(d) * c.factor))
}

// Scale reports the wall-time fraction.
func (c *Scaled) Scale() float64 { return c.factor }

// Advance credits d of model time without sleeping at all. Tests use it to
// skip over long idle periods (lease expiry, journal replay deadlines).
func (c *Scaled) Advance(d time.Duration) { c.credit.Add(int64(d)) }

// TestClock returns a heavily scaled clock suitable for unit tests: model
// milliseconds cost microseconds of wall time.
func TestClock() *Scaled { return NewScaled(0.001) }
