package chunkserver

import (
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/metrics"
	"ursa/internal/proto"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
)

// newFencedServer builds a standalone primary-role server with a metrics
// registry, for exercising the master-epoch fence directly through Handle.
func newFencedServer(t *testing.T) (*Server, *metrics.Registry) {
	t.Helper()
	clk := clock.Realtime
	net := transport.NewSimNet(clk, time.Microsecond)
	reg := metrics.NewRegistry()
	store := blockstore.New(simdisk.NewSSD(fastSSD(), clk), 0)
	srv := New(Config{
		Addr: "f", Role: RolePrimary, Clock: clk,
		Dialer:  net.Dialer("f", transport.NodeConfig{}),
		Metrics: reg,
	}, store, nil)
	l, err := net.Listen("f", transport.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	t.Cleanup(srv.Close)
	return srv, reg
}

func TestEpochFenceRejectsStaleMasterCommands(t *testing.T) {
	srv, reg := newFencedServer(t)

	// A fencing OpNop from the epoch-5 primary is adopted.
	resp := srv.Handle(&proto.Message{Op: proto.OpNop, Epoch: 5})
	if resp.Status != proto.StatusOK {
		t.Fatalf("OpNop@5 = %s", resp.Status)
	}
	if got := srv.MasterEpoch(); got != 5 {
		t.Fatalf("MasterEpoch = %d, want 5", got)
	}

	// Master-driven commands from older epochs are fenced, and the reply
	// carries the epoch that fenced them so the deposed master learns why.
	for _, op := range []proto.Op{proto.OpSetView, proto.OpCreateChunk, proto.OpRebuildSegment} {
		resp = srv.Handle(&proto.Message{Op: op, Chunk: testChunk, View: 2, Epoch: 3})
		if resp.Status != proto.StatusStaleEpoch {
			t.Fatalf("%v@3 = %s, want stale-epoch", op, resp.Status)
		}
		if resp.Epoch != 5 {
			t.Fatalf("%v@3 fencing epoch = %d, want 5", op, resp.Epoch)
		}
	}
	if n := reg.Counter(MetricStaleEpochRejections).Load(); n != 3 {
		t.Fatalf("stale rejections = %d, want 3", n)
	}

	// The fence never rolls back: the current epoch sails through, and a
	// newer one is adopted in passing by any master-driven command.
	resp = srv.Handle(&proto.Message{Op: proto.OpNop, Epoch: 5})
	if resp.Status != proto.StatusOK {
		t.Fatalf("OpNop@5 again = %s", resp.Status)
	}
	resp = srv.Handle(&proto.Message{Op: proto.OpDeleteChunk, Chunk: testChunk, Epoch: 7})
	if resp.Status == proto.StatusStaleEpoch {
		t.Fatalf("OpDeleteChunk@7 fenced unexpectedly")
	}
	if got := srv.MasterEpoch(); got != 7 {
		t.Fatalf("MasterEpoch = %d, want 7", got)
	}
}

func TestEpochFenceIgnoresDataPathAndUnfencedOps(t *testing.T) {
	srv, reg := newFencedServer(t)
	srv.Handle(&proto.Message{Op: proto.OpNop, Epoch: 9})

	// Epoch 0 marks an unfenced sender (single-master cluster, client data
	// path): never rejected regardless of the witnessed epoch.
	resp := srv.Handle(&proto.Message{Op: proto.OpNop, Epoch: 0})
	if resp.Status != proto.StatusOK {
		t.Fatalf("OpNop@0 = %s", resp.Status)
	}

	// Data-path ops are fenced by view numbers, not master epochs — a
	// stale epoch on them must be ignored, not rejected.
	resp = srv.Handle(&proto.Message{Op: proto.OpGetVersion, Chunk: testChunk, Epoch: 2})
	if resp.Status == proto.StatusStaleEpoch {
		t.Fatalf("OpGetVersion@2 hit the fence; data path must be unfenced")
	}
	if n := reg.Counter(MetricStaleEpochRejections).Load(); n != 0 {
		t.Fatalf("stale rejections = %d, want 0", n)
	}
	if got := srv.MasterEpoch(); got != 9 {
		t.Fatalf("MasterEpoch = %d, want 9 (data path must not adopt)", got)
	}
}
