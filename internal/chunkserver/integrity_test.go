package chunkserver

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/metrics"
	"ursa/internal/proto"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// integrityEnv is a standalone primary whose SSD sits behind a fault
// injector, with direct access to both layers.
type integrityEnv struct {
	net   *transport.SimNet
	clk   clock.Clock
	reg   *metrics.Registry
	disk  *simdisk.FaultInjector
	store *blockstore.Store
	srv   *Server
}

func newIntegrityEnv(t *testing.T) *integrityEnv {
	t.Helper()
	clk := clock.Realtime
	e := &integrityEnv{
		net: transport.NewSimNet(clk, time.Microsecond),
		clk: clk,
		reg: metrics.NewRegistry(),
	}
	e.disk = simdisk.NewFaultInjector(simdisk.NewSSD(fastSSD(), clk), clk)
	t.Cleanup(func() { e.disk.Close() })
	e.store = blockstore.New(e.disk, 0)
	e.srv = e.startServer(t, "p")
	return e
}

// startServer starts a primary over the env's existing store — the same
// call models both first boot and a post-restart re-attach.
func (e *integrityEnv) startServer(t *testing.T, addr string) *Server {
	t.Helper()
	srv := New(Config{
		Addr: addr, Role: RolePrimary, Clock: e.clk,
		Dialer:      e.net.Dialer(addr, transport.NodeConfig{}),
		ReplTimeout: 50 * time.Millisecond,
		Metrics:     e.reg,
	}, e.store, nil)
	l, err := e.net.Listen(addr, transport.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	t.Cleanup(srv.Close)
	return srv
}

func (e *integrityEnv) create(t *testing.T, srv *Server, want proto.Status) {
	t.Helper()
	payload, _ := json.Marshal(CreateChunkReq{View: 1})
	resp := srv.Handle(&proto.Message{Op: proto.OpCreateChunk, Chunk: testChunk, Payload: payload})
	if resp.Status != want {
		t.Fatalf("create on %s = %s, want %s", srv.Addr(), resp.Status, want)
	}
}

func (e *integrityEnv) read(srv *Server, off int64, n int) *proto.Message {
	return srv.Handle(&proto.Message{
		Op: proto.OpRead, Chunk: testChunk, Off: off, Length: uint32(n), View: 1,
	})
}

// TestChecksumsDetectCorruptionAfterRestart models the nastiest latent
// case: the device rots while the server is down. A restarted server
// re-attaches to the surviving slot (CreateChunk answers Exists) and its
// first read of the rotted block must come back StatusCorrupt — never the
// garbage payload.
func TestChecksumsDetectCorruptionAfterRestart(t *testing.T) {
	e := newIntegrityEnv(t)
	e.create(t, e.srv, proto.StatusOK)
	data := make([]byte, 4*util.KiB)
	util.NewRand(51).Fill(data)
	if resp := write(e.srv, 0, 0, data); resp.Status != proto.StatusOK {
		t.Fatal(resp.Status)
	}

	// "Crash" the server process; the store and device survive.
	e.srv.Close()

	// Rot one committed sector directly on the device while the server is
	// down. The first created chunk occupies the slot at device offset 0.
	rot := make([]byte, util.SectorSize)
	util.NewRand(52).Fill(rot)
	if err := e.disk.WriteAt(rot, 512); err != nil {
		t.Fatal(err)
	}

	// Restart: re-attach to the surviving chunk.
	srv2 := e.startServer(t, "p2")
	e.create(t, srv2, proto.StatusExists)

	// The clean sector still reads; the rotted one is detected.
	if r := e.read(srv2, 0, util.SectorSize); r.Status != proto.StatusOK || !bytes.Equal(r.Payload, data[:util.SectorSize]) {
		t.Fatalf("clean sector after restart = %s", r.Status)
	}
	if r := e.read(srv2, 512, util.SectorSize); r.Status != proto.StatusCorrupt {
		t.Fatalf("rotted sector after restart = %s, want %s", r.Status, proto.StatusCorrupt)
	}
	if got := e.reg.Counter(MetricChecksumMismatches).Load(); got == 0 {
		t.Error("mismatch not counted")
	}
}

// TestChecksumsSurviveUpgrade drains a graceful hot upgrade (§5.2) and
// checks the verification state is fully intact on the other side: clean
// data still verifies, and rot armed after the upgrade is still caught.
func TestChecksumsSurviveUpgrade(t *testing.T) {
	e := newIntegrityEnv(t)
	e.create(t, e.srv, proto.StatusOK)
	data := make([]byte, 4*util.KiB)
	util.NewRand(53).Fill(data)
	if resp := write(e.srv, 0, 0, data); resp.Status != proto.StatusOK {
		t.Fatal(resp.Status)
	}

	e.srv.Upgrade()
	if got := e.srv.Stats().UpgradeGen; got != 1 {
		t.Fatalf("upgrade gen = %d", got)
	}

	if r := e.read(e.srv, 0, len(data)); r.Status != proto.StatusOK || !bytes.Equal(r.Payload, data) {
		t.Fatalf("clean read after upgrade = %s", r.Status)
	}
	e.disk.CorruptRange(0, 4*util.KiB, true)
	if r := e.read(e.srv, 0, len(data)); r.Status != proto.StatusCorrupt {
		t.Fatalf("rotted read after upgrade = %s, want %s", r.Status, proto.StatusCorrupt)
	}
}

// TestOneShotCorruptionAbsorbedByReread arms a one-shot flip: the read
// path's per-sector re-read must absorb it and return the true payload with
// no mismatch counted — transient device hiccups are not integrity events.
func TestOneShotCorruptionAbsorbedByReread(t *testing.T) {
	e := newIntegrityEnv(t)
	e.create(t, e.srv, proto.StatusOK)
	data := make([]byte, 4*util.KiB)
	util.NewRand(54).Fill(data)
	if resp := write(e.srv, 0, 0, data); resp.Status != proto.StatusOK {
		t.Fatal(resp.Status)
	}

	e.disk.CorruptRange(0, 4*util.KiB, false) // one shot
	r := e.read(e.srv, 0, len(data))
	if r.Status != proto.StatusOK {
		t.Fatalf("read with one-shot rot = %s", r.Status)
	}
	if !bytes.Equal(r.Payload, data) {
		t.Fatal("one-shot rot leaked into the returned payload")
	}
	if got := e.reg.Counter(MetricChecksumMismatches).Load(); got != 0 {
		t.Errorf("transient flip counted as mismatch: %d", got)
	}
	if got := e.disk.FaultStats().ReadsCorrupted; got == 0 {
		t.Fatal("fault never fired: test proved nothing")
	}
}

// TestPersistentCorruptionReportedOnce checks the read path keeps failing
// (and never fabricates data) while rot persists, then recovers after the
// device is healed and the data rewritten.
func TestPersistentCorruptionHealsAfterRewrite(t *testing.T) {
	e := newIntegrityEnv(t)
	e.create(t, e.srv, proto.StatusOK)
	data := make([]byte, util.SectorSize)
	util.NewRand(55).Fill(data)
	if resp := write(e.srv, 0, 0, data); resp.Status != proto.StatusOK {
		t.Fatal(resp.Status)
	}
	e.disk.CorruptRange(0, util.SectorSize, true)
	for i := 0; i < 2; i++ {
		if r := e.read(e.srv, 0, util.SectorSize); r.Status != proto.StatusCorrupt {
			t.Fatalf("read %d under persistent rot = %s", i, r.Status)
		}
	}
	e.disk.Heal()
	// A fresh write restamps the sector; reads verify again.
	if resp := write(e.srv, 1, 0, data); resp.Status != proto.StatusOK {
		t.Fatal(resp.Status)
	}
	if r := e.read(e.srv, 0, util.SectorSize); r.Status != proto.StatusOK || !bytes.Equal(r.Payload, data) {
		t.Fatalf("read after heal+rewrite = %s", r.Status)
	}
}
