package chunkserver

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/journal"
	"ursa/internal/proto"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// env wires one primary and two backups on a simnet.
type env struct {
	net     *transport.SimNet
	primary *Server
	backups []*Server
}

func fastSSD() simdisk.SSDModel {
	return simdisk.SSDModel{
		Capacity: 2 * util.GiB, Parallelism: 32,
		ReadLatency: 2 * time.Microsecond, WriteLatency: 4 * time.Microsecond,
		ReadBandwidth: 20e9, WriteBandwidth: 12e9,
	}
}

func fastHDD() simdisk.HDDModel {
	return simdisk.HDDModel{
		Capacity: 4 * util.GiB, SeekMax: 400 * time.Microsecond,
		SeekSettle: 25 * time.Microsecond, RPM: 288000,
		Bandwidth: 6e9, TrackSkip: 512 * util.KiB,
	}
}

func newEnv(t *testing.T) *env {
	t.Helper()
	clk := clock.Realtime
	net := transport.NewSimNet(clk, time.Microsecond)
	e := &env{net: net}

	mk := func(addr string, role Role) *Server {
		var store *blockstore.Store
		var jset *journal.Set
		if role == RolePrimary {
			store = blockstore.New(simdisk.NewSSD(fastSSD(), clk), 0)
		} else {
			hdd := simdisk.NewHDD(fastHDD(), clk)
			store = blockstore.New(hdd, util.AlignDown(hdd.Size()/2, util.ChunkSize))
			jset = journal.NewSet(clk, store, journal.DefaultConfig())
			ssd := simdisk.NewSSD(fastSSD(), clk)
			jset.AddSSDJournal(addr+"-j", ssd, 0, 64*util.MiB)
			jset.Start()
		}
		srv := New(Config{
			Addr: addr, Role: role, Clock: clk,
			Dialer:      net.Dialer(addr, transport.NodeConfig{}),
			ReplTimeout: 50 * time.Millisecond,
		}, store, jset)
		l, err := net.Listen(addr, transport.NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		srv.Serve(l)
		t.Cleanup(srv.Close)
		return srv
	}
	e.primary = mk("p", RolePrimary)
	e.backups = []*Server{mk("b1", RoleBackup), mk("b2", RoleBackup)}
	return e
}

var testChunk = blockstore.MakeChunkID(1, 0)

// createChunk creates the chunk on all three servers.
func (e *env) createChunk(t *testing.T) {
	t.Helper()
	mk := func(s *Server, backups []string) {
		payload, _ := json.Marshal(CreateChunkReq{View: 1, Backups: backups})
		resp := s.Handle(&proto.Message{Op: proto.OpCreateChunk, Chunk: testChunk, Payload: payload})
		if resp.Status != proto.StatusOK {
			t.Fatalf("create on %s: %s", s.Addr(), resp.Status)
		}
	}
	mk(e.primary, []string{"b1", "b2"})
	mk(e.backups[0], nil)
	mk(e.backups[1], nil)
}

func write(s *Server, version uint64, off int64, data []byte) *proto.Message {
	return s.Handle(&proto.Message{
		Op: proto.OpWrite, Chunk: testChunk, Off: off,
		View: 1, Version: version, Payload: data,
	})
}

func TestWriteReplicatesAndBumpsVersions(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	data := bytes.Repeat([]byte{0x42}, 4096)
	resp := write(e.primary, 0, 0, data)
	if resp.Status != proto.StatusOK || resp.Version != 1 {
		t.Fatalf("write resp = %+v", resp)
	}
	// All replicas at version 1.
	for _, s := range []*Server{e.primary, e.backups[0], e.backups[1]} {
		v := s.Handle(&proto.Message{Op: proto.OpGetVersion, Chunk: testChunk})
		if v.Version != 1 {
			t.Errorf("%s version = %d", s.Addr(), v.Version)
		}
	}
	// Backup data readable through the journal path.
	r := e.backups[0].Handle(&proto.Message{
		Op: proto.OpRead, Chunk: testChunk, Off: 0, Length: 4096, View: 1, Version: 1,
	})
	if r.Status != proto.StatusOK || !bytes.Equal(r.Payload, data) {
		t.Errorf("backup read = %s", r.Status)
	}
}

func TestStaleViewRejected(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	resp := e.primary.Handle(&proto.Message{
		Op: proto.OpWrite, Chunk: testChunk, View: 0, Version: 0,
		Payload: make([]byte, 512),
	})
	if resp.Status != proto.StatusStaleView {
		t.Fatalf("stale view write = %s", resp.Status)
	}
	if resp.View != 1 {
		t.Errorf("reply view = %d", resp.View)
	}
}

func TestVersionOneShortSkipsLocalWrite(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	d1 := bytes.Repeat([]byte{0x01}, 512)
	if resp := write(e.primary, 0, 0, d1); resp.Status != proto.StatusOK {
		t.Fatal(resp.Status)
	}
	// Retry with version 0 (one short of 1): primary must skip the local
	// write but still ack (§4.2.1); data stays at d1's value because the
	// duplicate carries the same payload in a real retry. To make the skip
	// observable, send different bytes: they must NOT be applied.
	d2 := bytes.Repeat([]byte{0x02}, 512)
	resp := write(e.primary, 0, 0, d2)
	if resp.Status != proto.StatusOK || resp.Version != 1 {
		t.Fatalf("retry resp = %+v", resp)
	}
	r := e.primary.Handle(&proto.Message{
		Op: proto.OpRead, Chunk: testChunk, Off: 0, Length: 512, View: 1, Version: 1,
	})
	if !bytes.Equal(r.Payload, d1) {
		t.Error("one-short retry overwrote committed data")
	}
}

func TestAncientVersionRejected(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	for v := uint64(0); v < 3; v++ {
		if resp := write(e.primary, v, 0, make([]byte, 512)); resp.Status != proto.StatusOK {
			t.Fatal(resp.Status)
		}
	}
	resp := write(e.primary, 0, 0, make([]byte, 512)) // 3 behind
	if resp.Status != proto.StatusStaleVersion {
		t.Fatalf("ancient version = %s", resp.Status)
	}
}

func TestFutureVersionTimesOutAsBehind(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	resp := write(e.primary, 5, 0, make([]byte, 512))
	if resp.Status != proto.StatusBehind {
		t.Fatalf("future version = %s", resp.Status)
	}
}

func TestPipelinedVersionsApplyInOrder(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	// Issue versions 1 and 0 concurrently (1 first): the server must hold
	// version 1 until version 0 applies.
	done := make(chan *proto.Message, 2)
	go func() { done <- write(e.primary, 1, 512, bytes.Repeat([]byte{0xb}, 512)) }()
	time.Sleep(2 * time.Millisecond)
	go func() { done <- write(e.primary, 0, 0, bytes.Repeat([]byte{0xa}, 512)) }()
	for i := 0; i < 2; i++ {
		if resp := <-done; resp.Status != proto.StatusOK {
			t.Fatalf("pipelined write = %s", resp.Status)
		}
	}
	v := e.primary.Handle(&proto.Message{Op: proto.OpGetVersion, Chunk: testChunk})
	if v.Version != 2 {
		t.Errorf("final version = %d", v.Version)
	}
}

func TestJournalBypassBySize(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	b := e.backups[0]
	// Small write → journal append.
	resp := b.Handle(&proto.Message{
		Op: proto.OpReplicate, Chunk: testChunk, Off: 0,
		View: 1, Version: 0, Payload: make([]byte, 4*util.KiB),
	})
	if resp.Status != proto.StatusOK {
		t.Fatal(resp.Status)
	}
	st := b.jset.Stats()
	if st.Journals[0].Appends != 1 {
		t.Errorf("small write did not journal: %+v", st.Journals)
	}
	// Large write (>64KB) → bypass.
	resp = b.Handle(&proto.Message{
		Op: proto.OpReplicate, Chunk: testChunk, Off: util.MiB,
		View: 1, Version: 1, Payload: make([]byte, 128*util.KiB),
	})
	if resp.Status != proto.StatusOK {
		t.Fatal(resp.Status)
	}
	if got := b.jset.Stats().Journals[0].Appends; got != 1 {
		t.Errorf("large write journaled: appends = %d", got)
	}
}

func TestIncrementalRepairFlow(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	// Apply three writes to backup b1 only (simulate b2 missing them).
	b1, b2 := e.backups[0], e.backups[1]
	var last []byte
	for v := uint64(0); v < 3; v++ {
		last = bytes.Repeat([]byte{byte(v + 1)}, 512)
		resp := b1.Handle(&proto.Message{
			Op: proto.OpReplicate, Chunk: testChunk, Off: int64(v) * 512,
			View: 1, Version: v, Payload: last,
		})
		if resp.Status != proto.StatusOK {
			t.Fatal(resp.Status)
		}
	}
	// b2 pulls incremental repair from b1.
	payload, _ := json.Marshal(CloneChunkReq{Source: "b1"})
	resp := b2.Handle(&proto.Message{
		Op: proto.OpRepairFrom, Chunk: testChunk, View: 1, Payload: payload,
	})
	if resp.Status != proto.StatusOK || resp.Version != 3 {
		t.Fatalf("repair = %+v", resp)
	}
	// b2 now serves all repaired data.
	r := b2.Handle(&proto.Message{
		Op: proto.OpRead, Chunk: testChunk, Off: 1024, Length: 512, View: 1, Version: 3,
	})
	if r.Status != proto.StatusOK || !bytes.Equal(r.Payload, last) {
		t.Error("repaired data mismatch")
	}
}

func TestRepairFallsBackToClone(t *testing.T) {
	e := newEnv(t)
	// Tiny journal-lite: history evicts immediately.
	e.primary.cfg.LiteCap = 2
	e.createChunk(t)
	b1, b2 := e.backups[0], e.backups[1]
	b1.cfg.LiteCap = 2
	// Recreate chunk state with small lite on b1 by deleting + recreating.
	b1.Handle(&proto.Message{Op: proto.OpDeleteChunk, Chunk: testChunk})
	payload, _ := json.Marshal(CreateChunkReq{View: 1})
	b1.Handle(&proto.Message{Op: proto.OpCreateChunk, Chunk: testChunk, Payload: payload})

	for v := uint64(0); v < 6; v++ { // overflow the 2-entry lite
		resp := b1.Handle(&proto.Message{
			Op: proto.OpReplicate, Chunk: testChunk, Off: int64(v) * 4096,
			View: 1, Version: v, Payload: bytes.Repeat([]byte{byte(v + 1)}, 4096),
		})
		if resp.Status != proto.StatusOK {
			t.Fatal(resp.Status)
		}
	}
	// RepairSince(0) on b1 must signal fallback.
	resp := b1.Handle(&proto.Message{Op: proto.OpRepairSince, Chunk: testChunk, Version: 0})
	if resp.Status != proto.StatusFallback {
		t.Fatalf("RepairSince after eviction = %s", resp.Status)
	}
	// RepairFrom on b2 transparently falls back to a full clone.
	cp, _ := json.Marshal(CloneChunkReq{Source: "b1"})
	resp = b2.Handle(&proto.Message{
		Op: proto.OpRepairFrom, Chunk: testChunk, View: 1, Payload: cp,
	})
	if resp.Status != proto.StatusOK || resp.Version != 6 {
		t.Fatalf("fallback clone = %+v", resp)
	}
	r := b2.Handle(&proto.Message{
		Op: proto.OpRead, Chunk: testChunk, Off: 5 * 4096, Length: 4096, View: 1, Version: 6,
	})
	if r.Status != proto.StatusOK || r.Payload[0] != 6 {
		t.Error("cloned data mismatch")
	}
}

func TestCloneTransfersJournalAndDisk(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	b1 := e.backups[0]
	// One journaled small write and one bypassed large write on b1.
	small := bytes.Repeat([]byte{0xaa}, 4096)
	large := bytes.Repeat([]byte{0xbb}, 128*util.KiB)
	b1.Handle(&proto.Message{Op: proto.OpReplicate, Chunk: testChunk, Off: 0,
		View: 1, Version: 0, Payload: small})
	b1.Handle(&proto.Message{Op: proto.OpReplicate, Chunk: testChunk, Off: util.MiB,
		View: 1, Version: 1, Payload: large})

	// Clone to the primary (its replica is empty).
	cp, _ := json.Marshal(CloneChunkReq{Source: "b1"})
	resp := e.primary.Handle(&proto.Message{
		Op: proto.OpCloneChunk, Chunk: testChunk, View: 2, Payload: cp,
	})
	if resp.Status != proto.StatusOK || resp.Version != 2 {
		t.Fatalf("clone = %+v", resp)
	}
	for _, chk := range []struct {
		off  int64
		want []byte
	}{{0, small}, {util.MiB, large}} {
		r := e.primary.Handle(&proto.Message{
			Op: proto.OpRead, Chunk: testChunk, Off: chk.off,
			Length: uint32(len(chk.want)), View: 2, Version: 2,
		})
		if r.Status != proto.StatusOK || !bytes.Equal(r.Payload, chk.want) {
			t.Errorf("clone missed data at %d", chk.off)
		}
	}
}

func TestSetViewRules(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	resp := e.primary.Handle(&proto.Message{Op: proto.OpSetView, Chunk: testChunk, View: 2})
	if resp.Status != proto.StatusOK || resp.View != 2 {
		t.Fatalf("set view = %+v", resp)
	}
	// Regressing the view is rejected.
	resp = e.primary.Handle(&proto.Message{Op: proto.OpSetView, Chunk: testChunk, View: 1})
	if resp.Status != proto.StatusStaleView {
		t.Fatalf("view regression = %s", resp.Status)
	}
}

func TestReadStatusRules(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	// Reading ahead of the replica's state: StatusBehind.
	resp := e.primary.Handle(&proto.Message{
		Op: proto.OpRead, Chunk: testChunk, Off: 0, Length: 512, View: 1, Version: 7,
	})
	if resp.Status != proto.StatusBehind {
		t.Fatalf("read-ahead = %s", resp.Status)
	}
	// Unknown chunk.
	resp = e.primary.Handle(&proto.Message{
		Op: proto.OpRead, Chunk: blockstore.MakeChunkID(9, 9), Length: 512, View: 1,
	})
	if resp.Status != proto.StatusNotFound {
		t.Fatalf("unknown chunk = %s", resp.Status)
	}
}

func TestDeleteChunk(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	resp := e.primary.Handle(&proto.Message{Op: proto.OpDeleteChunk, Chunk: testChunk})
	if resp.Status != proto.StatusOK {
		t.Fatal(resp.Status)
	}
	resp = e.primary.Handle(&proto.Message{Op: proto.OpDeleteChunk, Chunk: testChunk})
	if resp.Status != proto.StatusNotFound {
		t.Fatalf("double delete = %s", resp.Status)
	}
}

func TestMajorityCommitWithDeadBackup(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	e.net.Crash("b2")
	// Write must still commit: primary + b1 form a majority (§4.2.1).
	resp := write(e.primary, 0, 0, make([]byte, 4096))
	if resp.Status != proto.StatusOK {
		t.Fatalf("majority commit failed: %s", resp.Status)
	}
	if e.primary.degradedCommits.Load() == 0 {
		t.Error("degraded commit not recorded")
	}
}

func TestNoQuorumFails(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	e.net.Crash("b1")
	e.net.Crash("b2")
	resp := write(e.primary, 0, 0, make([]byte, 4096))
	if resp.Status == proto.StatusOK {
		t.Fatal("write committed without a quorum")
	}
	if e.primary.noQuorums.Load() == 0 {
		t.Error("no-quorum not recorded")
	}
}

func TestUpgradeIdempotent(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	e.primary.Upgrade()
	e.primary.Upgrade()
	if got := e.primary.Stats().UpgradeGen; got != 2 {
		t.Errorf("upgrade gen = %d", got)
	}
	// Server still serves after upgrades.
	if resp := write(e.primary, 0, 0, make([]byte, 512)); resp.Status != proto.StatusOK {
		t.Fatalf("write after upgrade = %s", resp.Status)
	}
}

func TestRepairCodecRoundTrip(t *testing.T) {
	mods := []repairMod{
		{Mod: journal.Mod{Version: 1, Off: 0, Len: 4}, Data: []byte{1, 2, 3, 4}},
		{Mod: journal.Mod{Version: 2, Off: 512, Len: 2}, Data: []byte{9, 8}},
	}
	got, err := decodeRepair(encodeRepair(mods))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Version != 1 || got[1].Off != 512 ||
		!bytes.Equal(got[0].Data, mods[0].Data) {
		t.Errorf("round trip = %+v", got)
	}
	// Truncated payloads fail cleanly.
	for cut := 1; cut < 10; cut++ {
		b := encodeRepair(mods)
		if _, err := decodeRepair(b[:len(b)-cut]); err == nil {
			t.Errorf("truncation by %d accepted", cut)
		}
	}
	if _, err := decodeRepair(nil); err == nil {
		t.Error("nil payload accepted")
	}
}

func TestValidRange(t *testing.T) {
	cases := []struct {
		off int64
		n   int
		ok  bool
	}{
		{0, 512, true},
		{512, util.ChunkSize - 512, true},
		{0, 0, false},
		{100, 512, false},
		{0, 100, false},
		{util.ChunkSize, 512, false},
		{-512, 512, false},
	}
	for _, c := range cases {
		err := validRange(c.off, c.n)
		if (err == nil) != c.ok {
			t.Errorf("validRange(%d,%d) err=%v, want ok=%v", c.off, c.n, err, c.ok)
		}
	}
}
