package chunkserver

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/linearize"
	"ursa/internal/proto"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// TestReadRejectsBadRange is the regression test for the read-path range
// check: malformed lengths/offsets must be rejected up front, before any
// buffer is sized from them, exactly like the write path.
func TestReadRejectsBadRange(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	cases := []struct {
		name string
		off  int64
		n    uint32
	}{
		{"zero-length", 0, 0},
		{"unaligned-length", 0, util.SectorSize + 1},
		{"negative-offset", -util.SectorSize, util.SectorSize},
		{"unaligned-offset", 1, util.SectorSize},
		{"past-chunk-end", util.ChunkSize - util.SectorSize, 2 * util.SectorSize},
		{"huge-length", 0, uint32(util.ChunkSize) * 4},
	}
	for _, tc := range cases {
		resp := e.primary.Handle(&proto.Message{
			Op: proto.OpRead, Chunk: testChunk, Off: tc.off, Length: tc.n, View: 1,
		})
		if resp.Status != proto.StatusError {
			t.Errorf("%s: status = %s, want error", tc.name, resp.Status)
		}
	}
	// A well-formed read still works.
	resp := e.primary.Handle(&proto.Message{
		Op: proto.OpRead, Chunk: testChunk, Off: 0, Length: util.SectorSize, View: 1,
	})
	if resp.Status != proto.StatusOK {
		t.Fatalf("valid read: %s", resp.Status)
	}
}

// retryWrite issues a write with a fixed version until the server commits
// it, mirroring the client's retry loop (same version, same payload). A
// StatusStaleVersion on a retry means an earlier attempt landed and the
// chunk has since moved past it — the write is committed.
func retryWrite(t *testing.T, s *Server, version uint64, off int64, data []byte) bool {
	t.Helper()
	for attempt := 0; attempt < 100; attempt++ {
		resp := write(s, version, off, data)
		switch resp.Status {
		case proto.StatusOK:
			return true
		case proto.StatusStaleVersion:
			if attempt > 0 {
				return true
			}
			t.Errorf("version %d stale on first attempt", version)
			return false
		}
	}
	return false
}

// TestOverlappingConcurrentWritesApplyInVersionOrder races K fully
// overlapping writes to one extent, issued concurrently with consecutive
// versions. The pipeline must serialize their applies through the extent
// dependency table: afterwards every replica is at version K and the data
// is the highest version's payload on all three.
func TestOverlappingConcurrentWritesApplyInVersionOrder(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)
	const K = 16
	payload := func(v int) []byte {
		return bytes.Repeat([]byte{byte(0x10 + v)}, 4*util.KiB)
	}
	var wg sync.WaitGroup
	for v := 0; v < K; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			if !retryWrite(t, e.primary, uint64(v), 0, payload(v)) {
				t.Errorf("version %d never committed", v)
			}
		}(v)
	}
	wg.Wait()

	for _, s := range []*Server{e.primary, e.backups[0], e.backups[1]} {
		v := s.Handle(&proto.Message{Op: proto.OpGetVersion, Chunk: testChunk})
		if v.Version != K {
			t.Errorf("%s version = %d, want %d", s.Addr(), v.Version, K)
		}
		r := s.Handle(&proto.Message{
			Op: proto.OpRead, Chunk: testChunk, Off: 0, Length: 4 * util.KiB,
			View: 1, Version: K,
		})
		if r.Status != proto.StatusOK {
			t.Fatalf("%s read: %s", s.Addr(), r.Status)
		}
		if !bytes.Equal(r.Payload, payload(K-1)) {
			t.Errorf("%s data = %#x..., want version %d's payload",
				s.Addr(), r.Payload[0], K-1)
		}
	}
}

// TestConcurrentSameChunkLinearizable races same-chunk writers, readers,
// and the replica fan-out under the race detector, checking every read
// against the linearizable envelope. Per-sector operations are serialized
// by slot locks (the checker is a single-client model); cross-sector
// operations run fully concurrently, which is exactly the regime the
// pipelined write path parallelizes.
func TestConcurrentSameChunkLinearizable(t *testing.T) {
	e := newEnv(t)
	e.createChunk(t)

	const (
		slots   = 8
		workers = 8
		ops     = 40
	)
	checker := linearize.New()
	var checkMu sync.Mutex // guards checker; always acquired inside a slot lock
	var verMu sync.Mutex   // guards the version allocator and committed watermark
	var next, committed uint64
	slotMu := make([]sync.Mutex, slots)
	offOf := func(slot int) int64 { return int64(slot) * util.SectorSize }
	servers := []*Server{e.primary, e.backups[0], e.backups[1]}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := util.NewRand(uint64(w) + 99)
			for i := 0; i < ops; i++ {
				slot := int(r.Int63n(slots))
				if r.Float64() < 0.5 {
					// Write: allocate the next version under the slot lock so
					// the per-sector history stays sequential for the checker.
					data := make([]byte, util.SectorSize)
					r.Fill(data)
					slotMu[slot].Lock()
					verMu.Lock()
					v := next
					next++
					verMu.Unlock()
					if retryWrite(t, e.primary, v, offOf(slot), data) {
						checkMu.Lock()
						checker.WriteCommitted(offOf(slot), data)
						checkMu.Unlock()
						verMu.Lock()
						if v+1 > committed {
							committed = v + 1
						}
						verMu.Unlock()
					} else {
						checkMu.Lock()
						checker.WriteUnresolved(offOf(slot), data)
						checkMu.Unlock()
					}
					slotMu[slot].Unlock()
				} else {
					// Read from a random replica at the committed watermark; a
					// lagging replica answers Behind (availability hiccup, the
					// client would rotate) and is skipped.
					slotMu[slot].Lock()
					verMu.Lock()
					cv := committed
					verMu.Unlock()
					srv := servers[r.Int63n(int64(len(servers)))]
					resp := srv.Handle(&proto.Message{
						Op: proto.OpRead, Chunk: testChunk, Off: offOf(slot),
						Length: util.SectorSize, View: 1, Version: cv,
					})
					if resp.Status == proto.StatusOK {
						checkMu.Lock()
						err := checker.CheckRead(offOf(slot), resp.Payload)
						checkMu.Unlock()
						if err != nil {
							t.Errorf("worker %d op %d (%s): %v", w, i, srv.Addr(), err)
						}
					}
					slotMu[slot].Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	// Final sweep: every slot on every replica that is fully caught up.
	verMu.Lock()
	cv := committed
	verMu.Unlock()
	for slot := 0; slot < slots; slot++ {
		for _, srv := range servers {
			resp := srv.Handle(&proto.Message{
				Op: proto.OpRead, Chunk: testChunk, Off: offOf(slot),
				Length: util.SectorSize, View: 1, Version: cv,
			})
			if resp.Status != proto.StatusOK {
				continue
			}
			if err := checker.CheckRead(offOf(slot), resp.Payload); err != nil {
				t.Errorf("final sweep slot %d (%s): %v", slot, srv.Addr(), err)
			}
		}
	}
}

// TestDisjointWritesPipelineConcurrently is the tentpole's direct guard: on
// a device with real service time, disjoint same-chunk writes must overlap
// at the SSD instead of queueing on the chunk lock. Eight 2ms writes would
// take 16ms serialized; pipelined across the SSD's 32-way parallelism they
// finish in a few service times.
func TestDisjointWritesPipelineConcurrently(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	clk := clock.Realtime
	net := transport.NewSimNet(clk, time.Microsecond)
	slow := simdisk.SSDModel{
		Capacity: 2 * util.GiB, Parallelism: 32,
		ReadLatency: 500 * time.Microsecond, WriteLatency: 2 * time.Millisecond,
		ReadBandwidth: 20e9, WriteBandwidth: 12e9,
	}
	store := blockstore.New(simdisk.NewSSD(slow, clk), 0)
	srv := New(Config{
		Addr: "p", Role: RolePrimary, Clock: clk,
		Dialer:      net.Dialer("p", transport.NodeConfig{}),
		ReplTimeout: time.Second,
	}, store, nil)
	l, err := net.Listen("p", transport.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	t.Cleanup(srv.Close)
	payload, _ := json.Marshal(CreateChunkReq{View: 1})
	resp := srv.Handle(&proto.Message{Op: proto.OpCreateChunk, Chunk: testChunk, Payload: payload})
	if resp.Status != proto.StatusOK {
		t.Fatal(resp.Status)
	}

	const qd = 8
	start := clk.Now()
	var wg sync.WaitGroup
	for v := 0; v < qd; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(v + 1)}, 4*util.KiB)
			if !retryWrite(t, srv, uint64(v), int64(v)*64*util.KiB, data) {
				t.Errorf("write %d never committed", v)
			}
		}(v)
	}
	wg.Wait()
	elapsed := clk.Now().Sub(start)
	if serial := qd * 2 * time.Millisecond; elapsed >= serial*3/4 {
		t.Errorf("disjoint writes took %v, want well under the serial %v", elapsed, serial)
	}
	if v := srv.Handle(&proto.Message{Op: proto.OpGetVersion, Chunk: testChunk}); v.Version != qd {
		t.Errorf("version = %d, want %d", v.Version, qd)
	}
}
