package chunkserver

import (
	"encoding/binary"
	"fmt"

	"ursa/internal/journal"
)

// repairMod is one range of repair data: journal.Mod plus its bytes.
type repairMod struct {
	journal.Mod
	Data []byte
}

// encodeRepair packs mods into a payload:
//
//	count uint32, then per mod: version uint64, off int64, len uint32, data.
func encodeRepair(mods []repairMod) []byte {
	size := 4
	for _, m := range mods {
		size += 8 + 8 + 4 + len(m.Data)
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf, uint32(len(mods)))
	pos := 4
	for _, m := range mods {
		binary.LittleEndian.PutUint64(buf[pos:], m.Version)
		binary.LittleEndian.PutUint64(buf[pos+8:], uint64(m.Off))
		binary.LittleEndian.PutUint32(buf[pos+16:], uint32(len(m.Data)))
		pos += 20
		copy(buf[pos:], m.Data)
		pos += len(m.Data)
	}
	return buf
}

// decodeRepair unpacks a repair payload.
func decodeRepair(buf []byte) ([]repairMod, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("chunkserver: short repair payload")
	}
	count := binary.LittleEndian.Uint32(buf)
	pos := 4
	mods := make([]repairMod, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(buf)-pos < 20 {
			return nil, fmt.Errorf("chunkserver: truncated repair mod %d", i)
		}
		var m repairMod
		m.Version = binary.LittleEndian.Uint64(buf[pos:])
		m.Off = int64(binary.LittleEndian.Uint64(buf[pos+8:]))
		n := int(binary.LittleEndian.Uint32(buf[pos+16:]))
		pos += 20
		if len(buf)-pos < n {
			return nil, fmt.Errorf("chunkserver: truncated repair data %d", i)
		}
		m.Len = n
		m.Data = buf[pos : pos+n]
		pos += n
		mods = append(mods, m)
	}
	return mods, nil
}
