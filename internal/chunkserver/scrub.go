package chunkserver

import (
	"errors"
	"fmt"

	"ursa/internal/blockstore"
	"ursa/internal/util"
)

// This file is the server's face toward internal/scrub. The scrubber stays
// decoupled from chunkserver (it sees only its Target interface); these
// methods give it exactly what a per-machine scrub pass needs: the resident
// chunk list, an idleness signal, and a verified-read probe that feeds
// detections into the same report-to-master repair path the foreground read
// path uses.

// ScrubChunks lists the chunks resident on this server's store.
func (s *Server) ScrubChunks() []blockstore.ChunkID { return s.store.Chunks() }

// ScrubSpan returns the chunk's local slot size — one segment on an RS
// segment holder — so the sweep never probes past the slot.
func (s *Server) ScrubSpan(id blockstore.ChunkID) int64 { return s.store.SlotSize(id) }

// ScrubBusy reports whether any device a scrub probe would touch is
// serving I/O right now — the scrubber's idle gate, the same queue-depth
// signal journal replay yields on. On a backup that includes the journal
// devices: probes read through the journal-merged path, so a probe issued
// while appends stream into the shared journal SSD would queue behind
// (and fatten the tail of) foreground writes.
func (s *Server) ScrubBusy() bool {
	if s.store.Disk().QueueDepth() > 0 {
		return true
	}
	return s.jset != nil && s.jset.DevicesBusy()
}

// ScrubRange verifies one range of a chunk against its checksums, reading
// through the replica's normal data path (journal-merged on backups). A
// confirmed mismatch is reported to the master for re-replication and
// returned wrapping util.ErrCorrupt; a chunk deleted mid-scrub returns
// util.ErrNotFound and is nothing to repair.
func (s *Server) ScrubRange(id blockstore.ChunkID, off int64, n int) error {
	cs := s.chunk(id)
	if cs == nil {
		return fmt.Errorf("chunkserver %s: scrub %v: %w", s.cfg.Addr, id, util.ErrNotFound)
	}
	// Object-backed ranges of a cloned chunk have no local bytes to verify;
	// skipping them is reported (counted), not silent — the segments' own
	// per-extent CRCs cover them until demand fetch materializes the range.
	// The scrub must not fetch: it would churn the cold tier for data nobody
	// has asked for.
	if cold := cs.cold; cold != nil && !cold.done.Load() {
		cold.mu.Lock()
		skip := false
		for _, r := range cold.refs {
			if r.Overlaps(off, int64(n)) {
				skip = true
				break
			}
		}
		cold.mu.Unlock()
		if skip {
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.Counter(MetricColdScrubSkips).Inc()
			}
			return nil
		}
	}
	buf := make([]byte, n)
	err := s.readVerified(nil, id, buf, off)
	if err != nil && !errors.Is(err, util.ErrNotFound) {
		s.reportDeviceFailure(id, err)
	}
	return err
}
