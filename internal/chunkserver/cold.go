package chunkserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ursa/internal/blockstore"
	"ursa/internal/bufpool"
	"ursa/internal/coldtier"
	"ursa/internal/opctx"
	"ursa/internal/proto"
	"ursa/internal/util"
	"ursa/internal/util/backoff"
)

// Cold-tier integration: demand-fetch for cloned chunks and the snapshot
// flush that writes a chunk's content into object-store segments.
//
// A chunk created from a snapshot (CreateChunkReq.Cold non-empty) starts
// with no local data: its content lives in immutable object-store segments
// described by the extent refs. Every data-path entry (read, write,
// replicate, recovery fetch) first ensures the extents overlapping its range
// are local — fetched, CRC-verified, written to the store, and checksummed —
// then proceeds exactly as on an ordinary chunk. Ranges no ref covers read
// as zeros through the unstamped-checksum convention, so nothing is fetched
// for the thin parts of a thin image. When the last ref drains, the replica
// reports MOpChunkMaterialized so the master can eventually drop the
// demand-fetch metadata.

// Cold-path observability.
const (
	// MetricColdFetches counts extents demand-fetched from the object store.
	MetricColdFetches = "cold-fetch"
	// MetricColdScrubSkips counts scrub ranges skipped because their bytes
	// are still object-backed (not locally verifiable).
	MetricColdScrubSkips = "scrub-cold-skips"
)

// coldFetchRetries bounds per-extent fetch attempts (transient corruption,
// stalls, and one stale-refs refresh round each count as attempts).
const coldFetchRetries = 6

// coldState tracks a cloned chunk's not-yet-local extents. It lives beside
// chunkState (assigned once at creation, the pointer immutable after) and
// has its own lock: fetches run outside the chunk admission lock so a cold
// miss never stalls unrelated same-chunk traffic.
type coldState struct {
	objAddr string

	mu   sync.Mutex
	refs []coldtier.ExtentRef // still-unfetched extents
	// inflight maps an extent's ChunkOff to the channel its fetching handler
	// closes on completion; concurrent overlapping requests wait instead of
	// double-fetching.
	inflight map[int64]chan struct{}
	notified bool

	// done short-circuits the fast path once every extent is local.
	done atomic.Bool
}

// ensureCold makes [off, off+n) of a cloned chunk locally backed, fetching
// any still-cold extents overlapping the range. Nil for ordinary chunks and
// after full materialization (one atomic load). Must be called before the
// chunk admission lock.
func (s *Server) ensureCold(op *opctx.Op, cs *chunkState, id blockstore.ChunkID, off int64, n int) error {
	cold := cs.cold
	if cold == nil || cold.done.Load() {
		return nil
	}
	for {
		cold.mu.Lock()
		if len(cold.refs) == 0 {
			first := !cold.notified
			cold.notified = true
			cold.mu.Unlock()
			cold.done.Store(true)
			if first {
				s.notifyMaterialized(id)
			}
			return nil
		}
		var toFetch []coldtier.ExtentRef
		var waitCh chan struct{}
		for _, r := range cold.refs {
			if !r.Overlaps(off, int64(n)) {
				continue
			}
			if ch, busy := cold.inflight[r.ChunkOff]; busy {
				waitCh = ch
				continue
			}
			toFetch = append(toFetch, r)
		}
		if toFetch == nil && waitCh == nil {
			cold.mu.Unlock()
			return nil // every overlapping extent is already local
		}
		if toFetch == nil {
			// Another handler is fetching everything we need: wait its round
			// out, then re-evaluate.
			cold.mu.Unlock()
			select {
			case <-waitCh:
			case <-s.cfg.Clock.After(s.opBudget(op, 10*s.cfg.ReplTimeout)):
				return fmt.Errorf("chunkserver %s: cold fetch wait %v: %w", s.cfg.Addr, id, util.ErrTimeout)
			case <-op.Done():
				return fmt.Errorf("chunkserver %s: cold fetch wait %v: %w", s.cfg.Addr, id, util.ErrTimeout)
			}
			continue
		}
		if cold.inflight == nil {
			cold.inflight = make(map[int64]chan struct{})
		}
		own := make(chan struct{})
		for _, r := range toFetch {
			cold.inflight[r.ChunkOff] = own
		}
		cold.mu.Unlock()

		fetchErr := s.fetchExtents(op, cold, id, toFetch)

		cold.mu.Lock()
		for _, r := range toFetch {
			delete(cold.inflight, r.ChunkOff)
		}
		if fetchErr == nil {
			fetched := make(map[int64]bool, len(toFetch))
			for _, r := range toFetch {
				fetched[r.ChunkOff] = true
			}
			kept := cold.refs[:0]
			for _, r := range cold.refs {
				if !fetched[r.ChunkOff] {
					kept = append(kept, r)
				}
			}
			cold.refs = kept
		}
		cold.mu.Unlock()
		close(own)
		if fetchErr != nil {
			return fetchErr
		}
		// Loop: re-evaluate for extents another handler was fetching, and to
		// run the drain check above once refs empties.
	}
}

// fetchExtents pulls the given extents from the object store into the local
// replica. Transient failures (CRC-flipped transfers, stalls) retry with
// jittered backoff seeded from the op ID; a segment deleted under us by GC
// (ErrNotFound) refreshes the chunk's ref table from the master — the remap
// is recorded there before any segment dies — and retries at the extent's
// new location.
func (s *Server) fetchExtents(op *opctx.Op, cold *coldState, id blockstore.ChunkID, refs []coldtier.ExtentRef) error {
	st := op.Stage(opctx.StageColdFetch)
	defer st.Stop()
	cl := coldtier.NewClient(s.peers, cold.objAddr)
	pol := backoff.Policy{Base: s.cfg.ReplTimeout / 50, Cap: s.cfg.ReplTimeout / 2}
	for i := range refs {
		r := refs[i]
		var data []byte
		var err error
		for attempt := 0; ; attempt++ {
			data, err = cl.GetExtent(op, r)
			if err == nil {
				break
			}
			if attempt+1 >= coldFetchRetries {
				return fmt.Errorf("chunkserver %s: cold fetch %v at %d: %w", s.cfg.Addr, id, r.ChunkOff, err)
			}
			if errors.Is(err, util.ErrNotFound) {
				nr, found, rerr := s.refreshColdRefs(op, cold, id, r.ChunkOff)
				if rerr != nil {
					return rerr
				}
				if !found {
					return fmt.Errorf("chunkserver %s: cold ref %v at %d vanished: %w",
						s.cfg.Addr, id, r.ChunkOff, util.ErrNotFound)
				}
				r = nr
			}
			s.cfg.Clock.Sleep(pol.Delay(op.ID(), attempt))
		}
		var werr error
		if s.jset != nil {
			werr = s.jset.WriteDirect(id, data, r.ChunkOff)
		} else {
			werr = s.store.WriteAt(id, data, r.ChunkOff)
		}
		if werr == nil {
			s.store.Sums().Stamp(id, r.ChunkOff, data)
		}
		bufpool.Put(data)
		if werr != nil {
			return werr
		}
		s.bytesWritten.Add(int64(r.Len))
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.Counter(MetricColdFetches).Inc()
		}
	}
	return nil
}

// coldRefsReq / coldRefsResp / materializedReq mirror the master package's
// wire shapes (same JSON tags); the master imports this package, so they are
// duplicated here like reportFailureReq.
type coldRefsReq struct {
	VDisk      uint32 `json:"vdisk"`
	ChunkIndex uint32 `json:"chunkIndex"`
}

type coldRefsResp struct {
	Refs []coldtier.ExtentRef `json:"refs,omitempty"`
}

type materializedReq struct {
	VDisk      uint32 `json:"vdisk"`
	ChunkIndex uint32 `json:"chunkIndex"`
	Addr       string `json:"addr"`
}

// refreshColdRefs reloads the chunk's cold extent table from the master
// (rotating endpoints like reportFailure) after a GC segment rewrite
// invalidated local refs. The still-unfetched local set is intersected with
// the master's current table — extents fetched locally in the meantime stay
// gone — and the refreshed ref covering chunkOff is returned.
func (s *Server) refreshColdRefs(op *opctx.Op, cold *coldState, id blockstore.ChunkID, chunkOff int64) (coldtier.ExtentRef, bool, error) {
	if len(s.cfg.MasterAddrs) == 0 {
		return coldtier.ExtentRef{}, false, fmt.Errorf("chunkserver %s: no master to refresh cold refs: %w",
			s.cfg.Addr, util.ErrNotFound)
	}
	payload, err := json.Marshal(coldRefsReq{VDisk: id.VDisk(), ChunkIndex: id.Index()})
	if err != nil {
		return coldtier.ExtentRef{}, false, err
	}
	var fresh []coldtier.ExtentRef
	got := false
	addrs := s.cfg.MasterAddrs
	start := int(s.masterIdx.Load()) % len(addrs)
	for i := 0; i < len(addrs); i++ {
		idx := (start + i) % len(addrs)
		resp, derr := s.peers.Do(op, addrs[idx], &proto.Message{
			Op:      proto.MOpGetColdRefs,
			Payload: payload,
		}, 0)
		if derr != nil {
			continue
		}
		status := resp.Status
		var body coldRefsResp
		jerr := json.Unmarshal(resp.Payload, &body)
		bufpool.Put(resp.Payload)
		proto.Recycle(resp)
		if status == proto.StatusOK && jerr == nil {
			s.masterIdx.Store(int64(idx))
			fresh = body.Refs
			got = true
			break
		}
		if status != proto.StatusNotPrimary {
			break
		}
	}
	if !got {
		return coldtier.ExtentRef{}, false, fmt.Errorf("chunkserver %s: refresh cold refs %v: %w",
			s.cfg.Addr, id, util.ErrTimeout)
	}

	byOff := make(map[int64]coldtier.ExtentRef, len(fresh))
	for _, r := range fresh {
		byOff[r.ChunkOff] = r
	}
	var out coldtier.ExtentRef
	var found bool
	cold.mu.Lock()
	for i := range cold.refs {
		if nr, hit := byOff[cold.refs[i].ChunkOff]; hit {
			cold.refs[i] = nr
		}
	}
	out, found = byOff[chunkOff]
	cold.mu.Unlock()
	return out, found, nil
}

// notifyMaterialized tells the master (fire-and-forget, once per replica)
// that this replica holds every extent of the chunk locally.
func (s *Server) notifyMaterialized(id blockstore.ChunkID) {
	if len(s.cfg.MasterAddrs) == 0 {
		return
	}
	go func() {
		payload, err := json.Marshal(materializedReq{
			VDisk:      id.VDisk(),
			ChunkIndex: id.Index(),
			Addr:       s.cfg.Addr,
		})
		if err != nil {
			return
		}
		op := opctx.New(s.cfg.Clock, 20*s.cfg.ReplTimeout)
		addrs := s.cfg.MasterAddrs
		start := int(s.masterIdx.Load()) % len(addrs)
		for i := 0; i < len(addrs); i++ {
			idx := (start + i) % len(addrs)
			resp, derr := s.peers.Do(op, addrs[idx], &proto.Message{
				Op:      proto.MOpChunkMaterialized,
				Payload: payload,
			}, 0)
			if derr != nil {
				continue
			}
			status := resp.Status
			bufpool.Put(resp.Payload)
			proto.Recycle(resp)
			if status != proto.StatusNotPrimary {
				s.masterIdx.Store(int64(idx))
				return
			}
		}
	}()
}

// FlushChunk names one chunk a flush covers and the contiguous segment-ID
// range the master allocated for it.
type FlushChunk struct {
	Chunk blockstore.ChunkID `json:"chunk"`
	SegLo uint64             `json:"segLo"`
	SegHi uint64             `json:"segHi"`
}

// FlushChunksReq is the JSON payload of OpFlushChunks: write each chunk's
// content into object-store segments and return the extent tables.
type FlushChunksReq struct {
	ObjAddr string       `json:"objAddr"`
	Chunks  []FlushChunk `json:"chunks"`
}

// FlushChunksResp answers OpFlushChunks; Extents is positional with
// FlushChunksReq.Chunks.
type FlushChunksResp struct {
	Extents [][]coldtier.ExtentRef `json:"extents"`
}

// handleFlushChunks writes each named chunk's current content into
// object-store segments (snapshot flush). Reads go through the verified,
// journal-merged path, so backup journal extents are folded in and racing
// writes settle per sector before their bytes are immortalized; all-zero
// extents are suppressed by the segment writer, keeping thin images thin.
func (s *Server) handleFlushChunks(op *opctx.Op, m *proto.Message) *proto.Message {
	var req FlushChunksReq
	if err := json.Unmarshal(m.Payload, &req); err != nil {
		return m.Reply(proto.StatusError)
	}
	cl := coldtier.NewClient(s.peers, req.ObjAddr)
	out := FlushChunksResp{Extents: make([][]coldtier.ExtentRef, len(req.Chunks))}
	buf := bufpool.Get(coldtier.ExtentSize)
	defer bufpool.Put(buf)
	for i, fc := range req.Chunks {
		cs := s.chunk(fc.Chunk)
		if cs == nil {
			return m.Reply(proto.StatusNotFound)
		}
		// Snapshotting a not-yet-materialized clone: make the chunk fully
		// local first, then flush it like any other.
		if err := s.ensureCold(op, cs, fc.Chunk, 0, int(util.ChunkSize)); err != nil {
			return m.Reply(proto.StatusError)
		}
		w := coldtier.NewSegWriter(cl, op, fc.SegLo, fc.SegHi)
		for off := int64(0); off < util.ChunkSize; off += coldtier.ExtentSize {
			if err := s.readVerified(op, fc.Chunk, buf, off); err != nil {
				s.reportDeviceFailure(fc.Chunk, err)
				return m.Reply(proto.StatusError)
			}
			if err := w.Add(off, buf); err != nil {
				return m.Reply(proto.StatusError)
			}
		}
		refs, err := w.Close()
		if err != nil {
			return m.Reply(proto.StatusError)
		}
		out.Extents[i] = refs
		s.bytesRead.Add(util.ChunkSize)
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return m.Reply(proto.StatusError)
	}
	r := m.Reply(proto.StatusOK)
	r.Payload = payload
	return r
}
