// Package chunkserver implements URSA's primary and backup chunk servers
// (§3.1, §4.2.1). A primary server keeps chunk replicas on an SSD and
// drives replication to backups; a backup server keeps replicas on an HDD
// behind a journal set, absorbing small writes as sequential appends and
// taking large writes directly (journal bypass).
//
// Request execution is out-of-order across chunks and pipelined within a
// chunk: a write claims its version slot under the chunk lock, registers
// its extent, and applies to the device outside the lock, concurrently
// with other same-chunk writes whose extents do not overlap (§3.4). The
// committed version advances strictly in version order as applies land.
package chunkserver

import (
	"sync"
	"time"

	"ursa/internal/journal"
	"ursa/internal/opctx"
	"ursa/internal/redundancy"
	"ursa/internal/util"
)

// Role distinguishes primary (SSD) from backup (HDD+journal) servers.
type Role int

// Server roles.
const (
	RolePrimary Role = iota
	RoleBackup
)

func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "backup"
}

// pendingWrite is one admitted-but-uncommitted write: its version slot, the
// extent it will touch, and a channel that closes when its device apply
// finishes (successfully or not). Writes whose extents overlap an earlier
// pending entry wait on that entry's done channel before touching the
// device; disjoint writes proceed in parallel.
type pendingWrite struct {
	version uint64 // the slot: a write carrying Version v commits as v+1
	off     int64
	length  int

	// applied/failed are written under chunkState.mu before done closes and
	// read by dependents only after done closes.
	applied bool
	failed  bool
	done    chan struct{}
}

func (p *pendingWrite) overlaps(off int64, n int) bool {
	return off < p.off+int64(p.length) && p.off < off+int64(n)
}

// chunkState is the per-chunk replication state of one replica.
type chunkState struct {
	mu sync.Mutex

	version  uint64 // committed: number of fully applied writes
	reserved uint64 // version slots handed out; reserved >= version
	view     uint64 // persistent view number (§4.1)

	// pending maps a write's version slot to its in-flight entry. Slots in
	// [version, reserved) are present until they commit (advanceLocked
	// removes them in order) or fail (the failed entry stays, blocking the
	// chain, until a retry re-claims the slot or repair adopts past it).
	pending map[uint64]*pendingWrite

	// changed is a broadcast channel: closed and replaced whenever version,
	// reserved, deletion, or a pending entry's fate changes, waking every
	// handler queued on this chunk's state.
	changed chan struct{}

	// backups are the peer addresses the primary replicates to; empty on
	// backup replicas.
	backups []string

	// lite records recent writes for incremental repair (§4.2.1).
	lite *journal.Lite

	// spec is the chunk's redundancy policy and strat its strategy (set at
	// create; immutable after). holder/seg mark this replica as RS segment
	// holder number seg; the primary and mirror backups have holder=false.
	spec   redundancy.Spec
	strat  redundancy.Strategy
	holder bool
	seg    int

	// shipments caches a primary's RS fan-out plan per pending version: a
	// retry of an already-applied write can no longer recompute its parity
	// deltas (the pre-write data is gone), so it resends the cached plan.
	shipments map[uint64][]redundancy.Shipment

	// cold tracks a cloned chunk's not-yet-fetched object-backed extents
	// (nil for ordinary chunks). Set once at creation; the pointer is
	// immutable after, and the state has its own lock (see cold.go).
	cold *coldState

	deleted bool
}

func newChunkState(view uint64, backups []string, liteCap int) *chunkState {
	return &chunkState{
		view:    view,
		backups: backups,
		lite:    journal.NewLite(liteCap),
		pending: make(map[uint64]*pendingWrite),
		strat:   redundancy.Mirror{},
	}
}

// span returns the replica's local slot size: one segment for RS holders,
// a full chunk otherwise.
func (cs *chunkState) span() int64 {
	if cs.holder && cs.spec.IsRS() {
		return cs.spec.SegSize()
	}
	return util.ChunkSize
}

// shipCacheDepth bounds the cached fan-out plans: retries arrive within a
// client round-trip, so anything more than a pipeline's worth of versions
// behind the committed version is stale.
const shipCacheDepth = 64

// cacheShipments remembers version's fan-out plan and prunes entries that
// have fallen far behind the committed version.
func (cs *chunkState) cacheShipments(version uint64, ships []redundancy.Shipment) {
	cs.mu.Lock()
	if cs.shipments == nil {
		cs.shipments = make(map[uint64][]redundancy.Shipment)
	}
	cs.shipments[version] = ships
	for v := range cs.shipments {
		if v+shipCacheDepth < cs.version {
			delete(cs.shipments, v)
		}
	}
	cs.mu.Unlock()
}

// cachedShipments returns the remembered plan for version, if any.
func (cs *chunkState) cachedShipments(version uint64) ([]redundancy.Shipment, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ships, ok := cs.shipments[version]
	return ships, ok
}

// bumpLocked wakes everything blocked on the chunk's state. The broadcast
// channel is created lazily by waitChangeLocked, so the common no-waiter
// case (unpipelined writes, reads) closes and allocates nothing.
func (cs *chunkState) bumpLocked() {
	if cs.changed != nil {
		close(cs.changed)
		cs.changed = nil
	}
}

// advanceLocked commits applied pending writes in version order: the
// committed version moves up across every consecutively applied slot,
// recording each extent in the repair history as it commits. It stops at
// the first missing, still-applying, or failed slot.
func (cs *chunkState) advanceLocked() {
	for {
		p := cs.pending[cs.version]
		if p == nil || !p.applied {
			return
		}
		delete(cs.pending, cs.version)
		if p.length > 0 {
			// Zero-length entries are RS version bumps: the version advances
			// but no bytes changed, so there is nothing to repair later.
			cs.lite.Record(p.version+1, p.off, p.length)
		}
		cs.version++
	}
}

// applyDone records the outcome of p's device apply, wakes dependents, and
// advances the committed version over any newly completed prefix.
func (cs *chunkState) applyDone(p *pendingWrite, err error) {
	cs.mu.Lock()
	if err != nil {
		p.failed = true
	} else {
		p.applied = true
	}
	close(p.done)
	cs.advanceLocked()
	cs.bumpLocked()
	cs.mu.Unlock()
}

// adoptVersionLocked jumps the replica to version v (repair/clone installed
// newer state wholesale). Pending slots below v are superseded by the
// adopted data and dropped; their handlers still own their entries and
// close them, but commits no longer consider them.
func (cs *chunkState) adoptVersionLocked(v uint64) {
	if v > cs.version {
		cs.version = v
	}
	if cs.reserved < cs.version {
		cs.reserved = cs.version
	}
	for slot := range cs.pending {
		if slot < cs.version {
			delete(cs.pending, slot)
		}
	}
	cs.advanceLocked()
	cs.bumpLocked()
}

// waitChangeLocked blocks until the chunk's state changes, deadline passes,
// or the op is cancelled; it reports whether a change fired. Called and
// returns with cs.mu held; the mutex is released for the wait's duration.
func (cs *chunkState) waitChangeLocked(op *opctx.Op, deadline time.Time) bool {
	clk := op.Clock()
	rem := deadline.Sub(clk.Now())
	if rem <= 0 || op.Canceled() {
		return false
	}
	if cs.changed == nil {
		cs.changed = make(chan struct{})
	}
	ch := cs.changed
	cs.mu.Unlock()
	fired := false
	select {
	case <-ch:
		fired = true
	case <-clk.After(rem):
	case <-op.Done():
	}
	cs.mu.Lock()
	return fired
}
