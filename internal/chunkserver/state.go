// Package chunkserver implements URSA's primary and backup chunk servers
// (§3.1, §4.2.1). A primary server keeps chunk replicas on an SSD and
// drives replication to backups; a backup server keeps replicas on an HDD
// behind a journal set, absorbing small writes as sequential appends and
// taking large writes directly (journal bypass).
//
// Request execution is out-of-order across chunks and version-ordered
// within a chunk: concurrently dispatched handlers for one chunk queue on
// its state until their version is next (§3.4).
package chunkserver

import (
	"sync"
	"time"

	"ursa/internal/journal"
	"ursa/internal/opctx"
)

// Role distinguishes primary (SSD) from backup (HDD+journal) servers.
type Role int

// Server roles.
const (
	RolePrimary Role = iota
	RoleBackup
)

func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "backup"
}

// chunkState is the per-chunk replication state of one replica.
type chunkState struct {
	mu sync.Mutex

	version uint64 // number of applied writes
	view    uint64 // persistent view number (§4.1)

	// backups are the peer addresses the primary replicates to; empty on
	// backup replicas.
	backups []string

	// lite records recent writes for incremental repair (§4.2.1).
	lite *journal.Lite

	deleted bool
}

func newChunkState(view uint64, backups []string, liteCap int) *chunkState {
	return &chunkState{view: view, backups: backups, lite: journal.NewLite(liteCap)}
}

// versionGapPoll is how often a handler waiting for its version slot
// rechecks; gaps exist only while a predecessor pipelined write is still
// applying, so waits are microseconds in the common case.
const versionGapPoll = 50 * time.Microsecond

// waitVersionLocked blocks until the chunk's version reaches want (an
// earlier pipelined write is mid-flight), the chunk is deleted, maxWait
// elapses, or the op is cancelled. It returns whether want was reached.
// Called and returns with cs.mu held.
func (cs *chunkState) waitVersionLocked(want uint64, op *opctx.Op, maxWait time.Duration) bool {
	clk := op.Clock()
	var waited time.Duration
	for cs.version < want && !cs.deleted {
		if waited >= maxWait || op.Canceled() {
			return false
		}
		cs.mu.Unlock()
		clk.Sleep(versionGapPoll)
		waited += versionGapPoll
		cs.mu.Lock()
	}
	return cs.version >= want && !cs.deleted
}
