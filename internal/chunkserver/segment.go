package chunkserver

import (
	"encoding/json"
	"errors"
	"sync"

	"ursa/internal/blockstore"
	"ursa/internal/bufpool"
	"ursa/internal/opctx"
	"ursa/internal/proto"
	"ursa/internal/redundancy"
	"ursa/internal/util"
)

// This file holds the RS(N,M) recovery paths (§4.2.2 generalized to
// segments). A lost data or parity segment is rebuilt from the primary's
// full chunk (data sliced, parity encoded on the fly) or decoded from any N
// surviving segment holders; a lost primary is reconstructed stripe by
// stripe from N segment holders.
//
// Unlike mirror clones, segment rebuilds are not idempotent under racing
// writes: parity holders apply XOR deltas, and a delta folded into a rebuilt
// image that already contains it corrupts the stripe silently. Two rules
// keep rebuilds exact:
//
//   - the destination drains its own pending writes under the chunk lock
//     before installing bytes, so no admitted-but-unapplied delta lands on
//     top of the rebuilt image out of order;
//   - fetched content must be a version-consistent snapshot. The primary
//     serves OpFetchSegment under its chunk lock after draining pending
//     writes, stamping the reply with the exact snapshot version; a
//     multi-piece fetch whose versions disagree is retried. Peer-decode
//     paths run only when the primary is gone — with no write driver, the
//     surviving holders are quiescent.

// PieceSource names one surviving segment holder and the piece it stores.
type PieceSource struct {
	Addr  string `json:"addr"`
	Piece int    `json:"piece"`
}

// RebuildSegmentReq is the JSON payload of OpRebuildSegment, sent by the
// master to a (new or lagging) segment holder.
type RebuildSegmentReq struct {
	// Spec is the chunk's RS policy.
	Spec redundancy.Spec `json:"spec"`
	// Seg is the segment this holder must end up with.
	Seg int `json:"seg"`
	// Primary, when set, serves the segment directly; it is the preferred
	// source because its replies are version-exact snapshots.
	Primary string `json:"primary,omitempty"`
	// Sources are surviving segment holders at the master's target version,
	// used to decode the segment when the primary is gone.
	Sources []PieceSource `json:"sources,omitempty"`
}

// drainPendingLocked waits until the chunk has no admitted-but-unapplied
// writes, so a rebuild's local installs cannot interleave with an earlier
// write's device apply. Called and returns with cs.mu held.
func (s *Server) drainPendingLocked(cs *chunkState, op *opctx.Op) bool {
	deadline := s.cfg.Clock.Now().Add(s.opBudget(op, 10*s.cfg.ReplTimeout))
	for len(cs.pending) > 0 {
		if !cs.waitChangeLocked(op, deadline) {
			return false
		}
	}
	return true
}

// writeRebuilt installs rebuilt bytes locally and stamps their checksums.
func (s *Server) writeRebuilt(id proto.Message, buf []byte, off int64) error {
	var err error
	if s.jset != nil {
		err = s.jset.WriteDirect(id.Chunk, buf, off)
	} else {
		err = s.store.WriteAt(id.Chunk, buf, off)
	}
	if err != nil {
		return err
	}
	s.store.Sums().Stamp(id.Chunk, off, buf)
	s.bytesWritten.Add(int64(len(buf)))
	return nil
}

// fetchSegmentSnapshot pulls segment seg in full from the primary,
// retrying until every piece reports the same snapshot version. Returns the
// segment bytes and that version.
func (s *Server) fetchSegmentSnapshot(op *opctx.Op, primary string, m *proto.Message, spec redundancy.Spec, seg int) ([]byte, uint64, bool) {
	segSize := spec.SegSize()
	pieceSize := segSize
	if pieceSize > proto.MaxPayload {
		pieceSize = proto.MaxPayload
	}
	window := s.opBudget(op, 10*s.cfg.ReplTimeout)
	const attempts = 4
	for attempt := 0; attempt < attempts; attempt++ {
		buf := make([]byte, segSize)
		ver := uint64(0)
		okAll := true
		for off := int64(0); off < segSize && okAll; off += pieceSize {
			n := pieceSize
			if off+n > segSize {
				n = segSize - off
			}
			resp, err := s.peers.Do(op, primary, &proto.Message{
				Op:     proto.OpFetchSegment,
				Chunk:  m.Chunk,
				Off:    off,
				Length: uint32(n),
				Seg:    uint16(seg),
			}, window)
			if err != nil {
				return nil, 0, false
			}
			if resp.Status != proto.StatusOK || len(resp.Payload) != int(n) {
				bufpool.Put(resp.Payload)
				return nil, 0, false
			}
			if off == 0 {
				ver = resp.Version
			} else if resp.Version != ver {
				bufpool.Put(resp.Payload)
				okAll = false // torn across pieces: a write landed mid-fetch
				break
			}
			copy(buf[off:], resp.Payload)
			bufpool.Put(resp.Payload)
		}
		if okAll {
			return buf, ver, true
		}
	}
	return nil, 0, false
}

// fetchPieces pulls the same intra-segment range [off, off+n) from every
// source in parallel and returns the pieces that arrived intact at exactly
// version wantVer, keyed by piece index. Sources are segment holders, so
// OpFetchChunk with a segment-relative offset returns their local slice.
func (s *Server) fetchPieces(op *opctx.Op, sources []PieceSource, chunk blockstore.ChunkID, off int64, n int, wantVer uint64) map[int][]byte {
	type result struct {
		piece int
		data  []byte
	}
	results := make(chan result, len(sources))
	window := s.opBudget(op, 10*s.cfg.ReplTimeout)
	var wg sync.WaitGroup
	for _, src := range sources {
		wg.Add(1)
		go func(src PieceSource) {
			defer wg.Done()
			resp, err := s.peers.Do(op, src.Addr, &proto.Message{
				Op:     proto.OpFetchChunk,
				Chunk:  chunk,
				Off:    off,
				Length: uint32(n),
			}, window)
			if err != nil || resp.Status != proto.StatusOK ||
				len(resp.Payload) != n || resp.Version != wantVer {
				if err == nil {
					bufpool.Put(resp.Payload)
				}
				results <- result{src.Piece, nil}
				return
			}
			results <- result{src.Piece, resp.Payload}
		}(src)
	}
	wg.Wait()
	close(results)
	avail := make(map[int][]byte, len(sources))
	for r := range results {
		if r.data != nil {
			avail[r.piece] = r.data
		}
	}
	return avail
}

// putPieces releases the payload leases a fetchPieces call handed out.
func putPieces(avail map[int][]byte) {
	for _, b := range avail {
		bufpool.Put(b)
	}
}

// handleRebuildSegment reconstructs this holder's segment: a version-exact
// snapshot from the primary when it is up, otherwise decoded from N
// surviving peers. The chunk lock is held for the duration — racing
// shipments queue at admission and resolve against the adopted version.
func (s *Server) handleRebuildSegment(op *opctx.Op, m *proto.Message) *proto.Message {
	var req RebuildSegmentReq
	if err := json.Unmarshal(m.Payload, &req); err != nil {
		return m.Reply(proto.StatusError)
	}
	if !req.Spec.IsRS() {
		return m.Reply(proto.StatusError)
	}
	code, err := redundancy.NewCode(req.Spec.N, req.Spec.M)
	if err != nil {
		return m.Reply(proto.StatusError)
	}
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	segSize := req.Spec.SegSize()

	cs.mu.Lock()
	defer cs.mu.Unlock()
	if !s.drainPendingLocked(cs, op) {
		return m.Reply(proto.StatusError)
	}
	adopt := m.Version
	if req.Primary != "" {
		buf, ver, okFetch := s.fetchSegmentSnapshot(op, req.Primary, m, req.Spec, req.Seg)
		if !okFetch {
			return m.Reply(proto.StatusError)
		}
		for off := int64(0); off < segSize; off += cloneFetchSize {
			n := int64(cloneFetchSize)
			if off+n > segSize {
				n = segSize - off
			}
			if err := s.writeRebuilt(*m, buf[off:off+n], off); err != nil {
				return m.Reply(proto.StatusError)
			}
		}
		adopt = ver
	} else {
		if len(req.Sources) < req.Spec.N {
			return m.Reply(proto.StatusError)
		}
		for off := int64(0); off < segSize; off += cloneFetchSize {
			n := int64(cloneFetchSize)
			if off+n > segSize {
				n = segSize - off
			}
			avail := s.fetchPieces(op, req.Sources, m.Chunk, off, int(n), m.Version)
			buf := make([]byte, n)
			err := code.Reconstruct(avail, req.Seg, buf)
			putPieces(avail)
			if err != nil {
				return m.Reply(proto.StatusError)
			}
			if err := s.writeRebuilt(*m, buf, off); err != nil {
				return m.Reply(proto.StatusError)
			}
		}
	}
	cs.adoptVersionLocked(adopt)
	if m.View > cs.view {
		cs.view = m.View
	}
	s.cloneCount.Add(1)
	r := m.Reply(proto.StatusOK)
	r.Version = cs.version
	return r
}

// handleFetchSegment serves segment content from a replica holding the full
// chunk (the primary): data segments are slices of the chunk, parity
// segments are encoded on the fly from the N data slices. The read runs
// under the chunk lock after draining pending writes, so the reply is a
// snapshot at exactly the version it carries — the property segment
// rebuilds depend on. m.Seg selects the segment, m.Off is segment-relative.
func (s *Server) handleFetchSegment(op *opctx.Op, m *proto.Message) *proto.Message {
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	spec := cs.spec
	if !spec.IsRS() || cs.holder {
		// Only a full-chunk replica can serve arbitrary segments.
		return m.Reply(proto.StatusError)
	}
	segSize := spec.SegSize()
	if err := validRangeIn(m.Off, int(m.Length), segSize); err != nil {
		return m.Reply(proto.StatusError)
	}
	seg := int(m.Seg)
	if seg < 0 || seg >= spec.N+spec.M {
		return m.Reply(proto.StatusError)
	}
	if !s.drainPendingLocked(cs, op) {
		return m.Reply(proto.StatusError)
	}
	readSlice := func(piece int, dst []byte) *proto.Message {
		err := s.readVerified(op, m.Chunk, dst, int64(piece)*segSize+m.Off)
		if err == nil {
			return nil
		}
		s.reportDeviceFailure(m.Chunk, err)
		if errors.Is(err, util.ErrCorrupt) {
			return m.Reply(proto.StatusCorrupt)
		}
		return m.Reply(proto.StatusError)
	}
	buf := bufpool.Get(int(m.Length))
	if seg < spec.N {
		if r := readSlice(seg, buf); r != nil {
			bufpool.Put(buf)
			return r
		}
	} else {
		code, err := redundancy.NewCode(spec.N, spec.M)
		if err != nil {
			bufpool.Put(buf)
			return m.Reply(proto.StatusError)
		}
		data := make([][]byte, spec.N)
		for i := 0; i < spec.N; i++ {
			data[i] = make([]byte, m.Length)
			if r := readSlice(i, data[i]); r != nil {
				bufpool.Put(buf)
				return r
			}
		}
		code.EncodeParity(seg-spec.N, data, buf)
	}
	s.reads.Add(1)
	s.bytesRead.Add(int64(len(buf)))
	r := m.Reply(proto.StatusOK)
	r.Version = cs.version
	r.Payload = buf
	return r
}

// cloneFromSegments rebuilds a full chunk (a replacement primary) from N
// surviving segment holders: every stripe is fetched from the sources and
// all data segments decoded, then written at their chunk offsets. It runs
// only when the primary is gone, so the sources are quiescent at the
// master's target version (m.Version) — fetches at any other version are
// rejected rather than decoded into a torn chunk.
func (s *Server) cloneFromSegments(op *opctx.Op, m *proto.Message, req CloneChunkReq) *proto.Message {
	if !req.Spec.IsRS() || len(req.Sources) < req.Spec.N {
		return m.Reply(proto.StatusError)
	}
	code, err := redundancy.NewCode(req.Spec.N, req.Spec.M)
	if err != nil {
		return m.Reply(proto.StatusError)
	}
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	segSize := req.Spec.SegSize()

	cs.mu.Lock()
	defer cs.mu.Unlock()
	if !s.drainPendingLocked(cs, op) {
		return m.Reply(proto.StatusError)
	}
	for off := int64(0); off < segSize; off += cloneFetchSize {
		n := int64(cloneFetchSize)
		if off+n > segSize {
			n = segSize - off
		}
		avail := s.fetchPieces(op, req.Sources, m.Chunk, off, int(n), m.Version)
		for i := 0; i < req.Spec.N; i++ {
			buf := avail[i]
			if buf == nil {
				buf = make([]byte, n)
				if err := code.Reconstruct(avail, i, buf); err != nil {
					putPieces(avail)
					return m.Reply(proto.StatusError)
				}
			}
			if err := s.writeRebuilt(*m, buf, int64(i)*segSize+off); err != nil {
				putPieces(avail)
				return m.Reply(proto.StatusError)
			}
		}
		putPieces(avail)
	}
	cs.adoptVersionLocked(m.Version)
	if m.View > cs.view {
		cs.view = m.View
	}
	s.cloneCount.Add(1)
	r := m.Reply(proto.StatusOK)
	r.Version = cs.version
	return r
}
