package chunkserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/journal"
	"ursa/internal/metrics"
	"ursa/internal/opctx"
	"ursa/internal/proto"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// Config parameterizes a chunk server.
type Config struct {
	// Addr is the server's address on its transport fabric.
	Addr string
	// Role selects primary (SSD store) or backup (HDD store + journals).
	Role Role
	// Clock supplies time.
	Clock clock.Clock
	// Dialer reaches peer servers for replication and recovery.
	Dialer transport.Dialer
	// ReplTimeout is the commit-rule window (§4.2.1) for operations that
	// arrive WITHOUT a propagated deadline — background work and peers
	// predating op threading. Client-initiated ops never use it: their
	// replication budget derives from the op's remaining deadline
	// (see opBudget), so the majority rule fires relative to the client's
	// actual budget.
	ReplTimeout time.Duration
	// Metrics, when non-nil, receives per-stage latency observations for
	// every op this server services (shared cluster-wide by core).
	Metrics *metrics.Registry
	// BypassThreshold is Tj: backup writes larger than this skip the
	// journal (§3.2). 0 means the 64 KB paper default.
	BypassThreshold int
	// LiteCap bounds the per-chunk journal-lite history.
	LiteCap int
}

func (c *Config) fillDefaults() {
	if c.Clock == nil {
		c.Clock = clock.Realtime
	}
	if c.ReplTimeout <= 0 {
		c.ReplTimeout = 500 * time.Millisecond
	}
	if c.BypassThreshold <= 0 {
		c.BypassThreshold = 64 * util.KiB
	}
	if c.LiteCap <= 0 {
		c.LiteCap = 4096
	}
}

// Stats is a snapshot of server activity for the efficiency benches
// (Fig 7). It is a read-only view over the server's metrics counters.
type Stats struct {
	Reads, Writes, Replicates int64
	BytesRead, BytesWritten   int64
	Repairs, Clones           int64
	UpgradeGen                int64
}

// Server is one chunk-server process.
type Server struct {
	cfg   Config
	store *blockstore.Store
	jset  *journal.Set // nil for primaries

	mu     sync.Mutex
	chunks map[blockstore.ChunkID]*chunkState
	peers  map[string]*transport.Client

	inflight atomic.Int64
	draining atomic.Bool
	upGen    atomic.Int64

	reads, writes, replicates  metrics.Counter
	bytesRead, bytesWritten    metrics.Counter
	repairCount, cloneCount    metrics.Counter
	degradedCommits, noQuorums metrics.Counter

	rpc *transport.Server
}

// New creates a chunk server over store (and jset for backups; nil for
// primaries).
func New(cfg Config, store *blockstore.Store, jset *journal.Set) *Server {
	cfg.fillDefaults()
	if cfg.Role == RoleBackup && jset == nil {
		panic("chunkserver: backup role requires a journal set")
	}
	return &Server{
		cfg:    cfg,
		store:  store,
		jset:   jset,
		chunks: make(map[blockstore.ChunkID]*chunkState),
		peers:  make(map[string]*transport.Client),
	}
}

// Serve starts handling requests on l. It returns immediately.
func (s *Server) Serve(l transport.Listener) {
	s.rpc = transport.Serve(l, s.Handle)
}

// Close stops the RPC server and the journal replayer.
func (s *Server) Close() {
	if s.rpc != nil {
		s.rpc.Close()
	}
	s.mu.Lock()
	peers := s.peers
	s.peers = map[string]*transport.Client{}
	s.mu.Unlock()
	for _, p := range peers {
		p.Close()
	}
	if s.jset != nil {
		s.jset.Close()
	}
}

// Addr returns the configured address.
func (s *Server) Addr() string { return s.cfg.Addr }

// Role returns the server role.
func (s *Server) Role() Role { return s.cfg.Role }

// Stats returns an activity snapshot.
func (s *Server) Stats() Stats {
	return Stats{
		Reads:        s.reads.Load(),
		Writes:       s.writes.Load(),
		Replicates:   s.replicates.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
		Repairs:      s.repairCount.Load(),
		Clones:       s.cloneCount.Load(),
		UpgradeGen:   s.upGen.Load(),
	}
}

// chunk returns the state for id, or nil.
func (s *Server) chunk(id blockstore.ChunkID) *chunkState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chunks[id]
}

// peer returns a cached RPC client to addr, dialing on demand.
func (s *Server) peer(addr string) (*transport.Client, error) {
	s.mu.Lock()
	if c, ok := s.peers[addr]; ok {
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()
	conn, err := s.cfg.Dialer.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := transport.NewClient(conn, s.cfg.Clock)
	s.mu.Lock()
	if old, ok := s.peers[addr]; ok {
		s.mu.Unlock()
		c.Close()
		return old, nil
	}
	s.peers[addr] = c
	s.mu.Unlock()
	return c, nil
}

// dropPeer evicts a failed cached connection so the next use redials.
func (s *Server) dropPeer(addr string, c *transport.Client) {
	s.mu.Lock()
	if s.peers[addr] == c {
		delete(s.peers, addr)
	}
	s.mu.Unlock()
	c.Close()
}

// Handle dispatches one request; it is the transport.Handler.
func (s *Server) Handle(m *proto.Message) *proto.Message {
	// Graceful upgrade: brief pause while the new "process" takes over.
	for s.draining.Load() {
		s.cfg.Clock.Sleep(200 * time.Microsecond)
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	// Rebuild the request context the message belongs to: same op ID, the
	// sender's remaining budget re-anchored on our clock. Every wait below
	// derives its window from this op, never from a fixed constant.
	op := opctx.FromWire(s.cfg.Clock, m.OpID, m.Budget)
	if s.cfg.Metrics != nil {
		op = op.WithSink(s.cfg.Metrics)
	}

	switch m.Op {
	case proto.OpNop:
		return m.Reply(proto.StatusOK)
	case proto.OpRead:
		return s.handleRead(op, m)
	case proto.OpWrite:
		return s.handleWrite(op, m, true)
	case proto.OpWritePrimary:
		return s.handleWrite(op, m, false)
	case proto.OpReplicate:
		return s.handleReplicate(op, m)
	case proto.OpGetVersion:
		return s.handleGetVersion(m)
	case proto.OpCreateChunk:
		return s.handleCreateChunk(m)
	case proto.OpDeleteChunk:
		return s.handleDeleteChunk(m)
	case proto.OpRepairSince:
		return s.handleRepairSince(m)
	case proto.OpApplyRepair:
		return s.handleApplyRepair(m)
	case proto.OpFetchChunk:
		return s.handleFetchChunk(m)
	case proto.OpSetView:
		return s.handleSetView(m)
	case proto.OpCloneChunk:
		return s.handleCloneChunk(op, m)
	case proto.OpRepairFrom:
		return s.handleRepairFrom(op, m)
	case proto.OpUpgrade:
		go s.Upgrade()
		return m.Reply(proto.StatusOK)
	default:
		return m.Reply(proto.StatusError)
	}
}

// opBudget derives the window this server may spend waiting on op's behalf
// (backup acks, version-slot queueing, recovery pulls). Ops carrying a
// deadline get 3/4 of the remaining budget — the rest is reserved for the
// response's return trip and the caller's bookkeeping, so the §4.2.1
// majority rule fires while the client is still listening. Deadline-less
// ops (background work, peers predating op threading) fall back to the
// configured window.
func (s *Server) opBudget(op *opctx.Op, fallback time.Duration) time.Duration {
	rem, ok := op.Remaining()
	if !ok {
		return fallback
	}
	if rem <= 0 {
		return time.Nanosecond // fail fast, but never "wait forever"
	}
	return rem * 3 / 4
}

// CreateChunkReq is the JSON payload of OpCreateChunk.
type CreateChunkReq struct {
	// Backups are peer addresses the primary replicates to (primary only).
	Backups []string `json:"backups,omitempty"`
	// View is the chunk's initial view number.
	View uint64 `json:"view"`
	// Version seeds the replica version (non-zero when re-creating a
	// replica that will be cloned to a known state).
	Version uint64 `json:"version,omitempty"`
}

func (s *Server) handleCreateChunk(m *proto.Message) *proto.Message {
	var req CreateChunkReq
	if len(m.Payload) > 0 {
		if err := json.Unmarshal(m.Payload, &req); err != nil {
			return m.Reply(proto.StatusError)
		}
	}
	if err := s.store.Create(m.Chunk); err != nil {
		if errors.Is(err, util.ErrExists) {
			return m.Reply(proto.StatusExists)
		}
		return m.Reply(proto.StatusQuota)
	}
	cs := newChunkState(req.View, req.Backups, s.cfg.LiteCap)
	cs.version = req.Version
	s.mu.Lock()
	s.chunks[m.Chunk] = cs
	s.mu.Unlock()
	return m.Reply(proto.StatusOK)
}

func (s *Server) handleDeleteChunk(m *proto.Message) *proto.Message {
	s.mu.Lock()
	cs := s.chunks[m.Chunk]
	delete(s.chunks, m.Chunk)
	s.mu.Unlock()
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cs.mu.Lock()
	cs.deleted = true
	cs.mu.Unlock()
	if s.jset != nil {
		s.jset.DropChunk(m.Chunk)
	}
	if err := s.store.Delete(m.Chunk); err != nil {
		return m.Reply(proto.StatusError)
	}
	return m.Reply(proto.StatusOK)
}

func (s *Server) handleGetVersion(m *proto.Message) *proto.Message {
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	r := m.Reply(proto.StatusOK)
	r.Version = cs.version
	r.View = cs.view
	return r
}

func (s *Server) handleSetView(m *proto.Message) *proto.Message {
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if m.View < cs.view {
		return m.Reply(proto.StatusStaleView)
	}
	cs.view = m.View
	if len(m.Payload) > 0 {
		var req CreateChunkReq
		if err := json.Unmarshal(m.Payload, &req); err == nil && req.Backups != nil {
			cs.backups = req.Backups
		}
	}
	r := m.Reply(proto.StatusOK)
	r.View = cs.view
	r.Version = cs.version
	return r
}

// handleRead serves a read from the local replica. Any replica with data at
// least as new as the client's version may serve (§4.1); primaries read
// the SSD store, backups resolve journal extents first.
func (s *Server) handleRead(op *opctx.Op, m *proto.Message) *proto.Message {
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cs.mu.Lock()
	if cs.view != m.View {
		r := m.Reply(proto.StatusStaleView)
		r.View = cs.view
		cs.mu.Unlock()
		return r
	}
	if cs.version < m.Version {
		// We lag the client's committed state: refuse rather than serve
		// stale data; the client will pick another replica or trigger
		// repair.
		r := m.Reply(proto.StatusBehind)
		r.Version = cs.version
		cs.mu.Unlock()
		return r
	}
	ver := cs.version
	cs.mu.Unlock()

	buf := make([]byte, m.Length)
	var err error
	if s.jset != nil {
		stop := op.StartStage(opctx.StageBackupJournal)
		err = s.jset.Read(m.Chunk, buf, m.Off)
		stop()
	} else {
		stop := op.StartStage(opctx.StagePrimarySSD)
		err = s.store.ReadAt(m.Chunk, buf, m.Off)
		stop()
	}
	if err != nil {
		return m.Reply(proto.StatusError)
	}
	s.reads.Add(1)
	s.bytesRead.Add(int64(len(buf)))
	r := m.Reply(proto.StatusOK)
	r.Version = ver
	r.Payload = buf
	return r
}

// checkWriteVersionLocked applies the paper's version rules (§4.2.1) for a
// write carrying version v against state cs. It returns (skipLocal, resp):
// a non-nil resp short-circuits the request. Waiting for a predecessor
// pipelined write's version slot is bounded by the op's remaining budget.
func (s *Server) checkWriteVersionLocked(cs *chunkState, op *opctx.Op, m *proto.Message) (bool, *proto.Message) {
	if cs.view != m.View {
		r := m.Reply(proto.StatusStaleView)
		r.View = cs.view
		return false, r
	}
	switch {
	case m.Version == cs.version:
		return false, nil
	case m.Version == cs.version-1:
		// Already applied here (retry after a partial failure): skip the
		// local write but still forward/ack (§4.2.1).
		return true, nil
	case m.Version < cs.version:
		r := m.Reply(proto.StatusStaleVersion)
		r.Version = cs.version
		return false, r
	default: // m.Version > cs.version
		// A predecessor pipelined write may still be applying; wait for
		// our slot, then recheck.
		stop := op.StartStage(opctx.StageReplay)
		reached := cs.waitVersionLocked(m.Version, op, s.opBudget(op, s.cfg.ReplTimeout))
		stop()
		if !reached {
			r := m.Reply(proto.StatusBehind)
			r.Version = cs.version
			return false, r
		}
		if m.Version == cs.version-1 {
			return true, nil
		}
		if m.Version != cs.version {
			r := m.Reply(proto.StatusStaleVersion)
			r.Version = cs.version
			return false, r
		}
		return false, nil
	}
}

// handleWrite is the primary write path: apply locally, optionally
// replicate to backups (forward=false under client-directed replication),
// and commit by the all-or-majority-after-timeout rule.
func (s *Server) handleWrite(op *opctx.Op, m *proto.Message, forward bool) *proto.Message {
	if err := validRange(m.Off, len(m.Payload)); err != nil {
		return m.Reply(proto.StatusError)
	}
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cs.mu.Lock()
	skipLocal, resp := s.checkWriteVersionLocked(cs, op, m)
	if resp != nil {
		cs.mu.Unlock()
		return resp
	}
	// Replication overlaps the local write: the primary starts the
	// fan-out immediately and performs its own write while the data is in
	// flight to the backups, so the end-to-end latency is max(local,
	// backup), not their sum. Backups order pipelined versions themselves.
	var replCh chan bool
	if forward && len(cs.backups) > 0 {
		backups := cs.backups
		replCh = make(chan bool, 1)
		go func() { replCh <- s.replicateToBackups(op, backups, m) }()
	}
	if !skipLocal {
		stop := op.StartStage(opctx.StagePrimarySSD)
		err := s.store.WriteAt(m.Chunk, m.Payload, m.Off)
		stop()
		if err != nil {
			cs.mu.Unlock()
			if replCh != nil {
				<-replCh
			}
			return m.Reply(proto.StatusError)
		}
		cs.lite.Record(m.Version+1, m.Off, len(m.Payload))
		cs.version++
	}
	newVer := cs.version
	cs.mu.Unlock()

	s.writes.Add(1)
	s.bytesWritten.Add(int64(len(m.Payload)))

	if replCh != nil && !<-replCh {
		s.noQuorums.Add(1)
		r := m.Reply(proto.StatusError)
		r.Version = newVer
		return r
	}
	r := m.Reply(proto.StatusOK)
	r.Version = newVer
	return r
}

// replicateToBackups fans the write out and applies the commit rule: true
// when all backups ack, or when a majority of the replica group (backups
// plus this primary) acks within the commit window (§4.2.1). The window is
// NOT a server constant: it derives from the incoming op's remaining
// deadline, so the majority rule fires relative to the client's budget —
// only deadline-less ops fall back to the configured ReplTimeout.
func (s *Server) replicateToBackups(op *opctx.Op, backups []string, m *proto.Message) bool {
	window := s.opBudget(op, s.cfg.ReplTimeout)
	type result struct{ ok bool }
	results := make(chan result, len(backups))
	for _, addr := range backups {
		go func(addr string) {
			req := &proto.Message{
				Op:      proto.OpReplicate,
				Chunk:   m.Chunk,
				Off:     m.Off,
				View:    m.View,
				Version: m.Version,
				Payload: m.Payload,
			}
			cli, err := s.peer(addr)
			if err != nil {
				results <- result{false}
				return
			}
			resp, err := cli.Do(op, req, window)
			if err != nil {
				// Timeouts and op expiry/cancellation say nothing about the
				// connection's health; only real transport faults evict it.
				if !errors.Is(err, util.ErrTimeout) && !errors.Is(err, context.Canceled) {
					s.dropPeer(addr, cli)
				}
				results <- result{false}
				return
			}
			results <- result{resp.Status == proto.StatusOK}
		}(addr)
	}
	acks := 1 // self
	total := len(backups) + 1
	failures := 0
	stop := op.StartStage(opctx.StageReplWait)
	for i := 0; i < len(backups); i++ {
		if r := <-results; r.ok {
			acks++
		} else {
			failures++
		}
	}
	stop()
	if failures == 0 {
		return true
	}
	if acks*2 > total {
		// Majority committed: availability preserved at a transient
		// durability discount; the master is told to repair (§4.2.1).
		s.degradedCommits.Add(1)
		return true
	}
	return false
}

// handleReplicate is the backup write path: journal small writes, bypass
// for large ones (§3.2).
func (s *Server) handleReplicate(op *opctx.Op, m *proto.Message) *proto.Message {
	if err := validRange(m.Off, len(m.Payload)); err != nil {
		return m.Reply(proto.StatusError)
	}
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cs.mu.Lock()
	skipLocal, resp := s.checkWriteVersionLocked(cs, op, m)
	if resp != nil {
		cs.mu.Unlock()
		return resp
	}
	if !skipLocal {
		stop := op.StartStage(opctx.StageBackupJournal)
		err := s.applyBackupWrite(op, m)
		stop()
		if err != nil {
			cs.mu.Unlock()
			return m.Reply(proto.StatusError)
		}
		cs.lite.Record(m.Version+1, m.Off, len(m.Payload))
		cs.version++
	}
	newVer := cs.version
	cs.mu.Unlock()

	s.replicates.Add(1)
	s.bytesWritten.Add(int64(len(m.Payload)))
	r := m.Reply(proto.StatusOK)
	r.Version = newVer
	return r
}

// applyBackupWrite routes a backup write through the journal or directly to
// the HDD, falling back to a direct write when journals overflow entirely.
// The op rides into the journal so group-commit queue/flush time lands on
// the op's backup-jqueue/backup-jflush stages.
func (s *Server) applyBackupWrite(op *opctx.Op, m *proto.Message) error {
	if s.jset == nil {
		// A primary-role server can hold backup replicas in SSD-only
		// deployments (Ursa-SSD mode): plain store write.
		return s.store.WriteAt(m.Chunk, m.Payload, m.Off)
	}
	if len(m.Payload) <= s.cfg.BypassThreshold {
		err := s.jset.Append(op, m.Chunk, m.Off, m.Payload, m.Version+1)
		if errors.Is(err, util.ErrQuota) {
			return s.jset.WriteDirect(m.Chunk, m.Payload, m.Off)
		}
		return err
	}
	return s.jset.WriteDirect(m.Chunk, m.Payload, m.Off)
}

// handleRepairSince serves incremental repair: the ranges modified after
// m.Version plus their current data (§4.2.1).
func (s *Server) handleRepairSince(m *proto.Message) *proto.Message {
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cs.mu.Lock()
	mods, ok := cs.lite.Since(m.Version)
	ver := cs.version
	cs.mu.Unlock()
	if !ok {
		// History evicted: the whole chunk must be transferred instead.
		r := m.Reply(proto.StatusFallback)
		r.Version = ver
		return r
	}
	out := make([]repairMod, 0, len(mods))
	for _, mod := range mods {
		buf := make([]byte, mod.Len)
		var err error
		if s.jset != nil {
			err = s.jset.Read(m.Chunk, buf, mod.Off)
		} else {
			err = s.store.ReadAt(m.Chunk, buf, mod.Off)
		}
		if err != nil {
			return m.Reply(proto.StatusError)
		}
		out = append(out, repairMod{Mod: mod, Data: buf})
	}
	s.repairCount.Add(1)
	r := m.Reply(proto.StatusOK)
	r.Version = ver
	r.Payload = encodeRepair(out)
	return r
}

// handleApplyRepair installs repair data and adopts the source's version
// (carried in m.Version).
func (s *Server) handleApplyRepair(m *proto.Message) *proto.Message {
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	mods, err := decodeRepair(m.Payload)
	if err != nil {
		return m.Reply(proto.StatusError)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, mod := range mods {
		if mod.Version <= cs.version {
			continue // already have it
		}
		var werr error
		if s.jset != nil {
			werr = s.jset.WriteDirect(m.Chunk, mod.Data, mod.Off)
		} else {
			werr = s.store.WriteAt(m.Chunk, mod.Data, mod.Off)
		}
		if werr != nil {
			return m.Reply(proto.StatusError)
		}
		cs.lite.Record(mod.Version, mod.Off, len(mod.Data))
		s.bytesWritten.Add(int64(len(mod.Data)))
	}
	if m.Version > cs.version {
		cs.version = m.Version
	}
	s.repairCount.Add(1)
	r := m.Reply(proto.StatusOK)
	r.Version = cs.version
	return r
}

// handleFetchChunk serves raw chunk data for recovery transfers. Backups
// resolve journal extents so the fetched data reflects all appended writes
// (§6.2's recovery "from both backup HDDs and SSD journals").
func (s *Server) handleFetchChunk(m *proto.Message) *proto.Message {
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	if err := validRange(m.Off, int(m.Length)); err != nil {
		return m.Reply(proto.StatusError)
	}
	buf := make([]byte, m.Length)
	var err error
	if s.jset != nil {
		err = s.jset.Read(m.Chunk, buf, m.Off)
	} else {
		err = s.store.ReadAt(m.Chunk, buf, m.Off)
	}
	if err != nil {
		return m.Reply(proto.StatusError)
	}
	cs.mu.Lock()
	ver := cs.version
	cs.mu.Unlock()
	r := m.Reply(proto.StatusOK)
	r.Version = ver
	r.Payload = buf
	return r
}

// CloneChunkReq is the JSON payload of OpCloneChunk.
type CloneChunkReq struct {
	// Source is the address of the replica to copy from.
	Source string `json:"source"`
}

// cloneFetchSize is the transfer granularity of recovery copies.
const cloneFetchSize = 1 * util.MiB

// handleCloneChunk pulls the whole chunk from a source replica, installing
// its data and version locally. The master invokes it on newly allocated
// replicas during failure recovery (§4.2.2); the transfer is what Fig 12
// measures.
func (s *Server) handleCloneChunk(op *opctx.Op, m *proto.Message) *proto.Message {
	var req CloneChunkReq
	if err := json.Unmarshal(m.Payload, &req); err != nil {
		return m.Reply(proto.StatusError)
	}
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cli, err := s.peer(req.Source)
	if err != nil {
		return m.Reply(proto.StatusError)
	}
	vresp, err := cli.Do(op, &proto.Message{Op: proto.OpGetVersion, Chunk: m.Chunk},
		s.opBudget(op, s.cfg.ReplTimeout))
	if err != nil || vresp.Status != proto.StatusOK {
		return m.Reply(proto.StatusError)
	}
	srcVersion := vresp.Version

	cs.mu.Lock()
	defer cs.mu.Unlock()
	// Pipeline the transfer: several fetches in flight while earlier
	// pieces write locally, so one chunk's recovery is bounded by the
	// slower of source disk, network, and local disk — not their sum.
	const clonePipeline = 4
	type piece struct {
		off int64
		ch  <-chan *proto.Message
	}
	var inflight []piece
	issue := func(off int64) {
		inflight = append(inflight, piece{off, cli.Go(&proto.Message{
			Op:     proto.OpFetchChunk,
			Chunk:  m.Chunk,
			Off:    off,
			Length: cloneFetchSize,
		})})
	}
	next := int64(0)
	for ; next < int64(clonePipeline)*cloneFetchSize && next < util.ChunkSize; next += cloneFetchSize {
		issue(next)
	}
	for len(inflight) > 0 {
		p := inflight[0]
		inflight = inflight[1:]
		fresp, ok := <-p.ch
		if !ok || fresp.Status != proto.StatusOK {
			return m.Reply(proto.StatusError)
		}
		if next < util.ChunkSize {
			issue(next)
			next += cloneFetchSize
		}
		var werr error
		if s.jset != nil {
			werr = s.jset.WriteDirect(m.Chunk, fresp.Payload, p.off)
		} else {
			werr = s.store.WriteAt(m.Chunk, fresp.Payload, p.off)
		}
		if werr != nil {
			return m.Reply(proto.StatusError)
		}
		s.bytesWritten.Add(int64(len(fresp.Payload)))
	}
	if srcVersion > cs.version {
		cs.version = srcVersion
	}
	if m.View > cs.view {
		cs.view = m.View
	}
	s.cloneCount.Add(1)
	r := m.Reply(proto.StatusOK)
	r.Version = cs.version
	return r
}

// handleRepairFrom pulls incremental repair from a source replica: ask for
// the mods since our version (journal lite), apply them; when the source's
// history is garbage-collected, fall back to a full chunk clone (§4.2.1).
func (s *Server) handleRepairFrom(op *opctx.Op, m *proto.Message) *proto.Message {
	var req CloneChunkReq
	if err := json.Unmarshal(m.Payload, &req); err != nil {
		return m.Reply(proto.StatusError)
	}
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cs.mu.Lock()
	myVersion := cs.version
	cs.mu.Unlock()

	cli, err := s.peer(req.Source)
	if err != nil {
		return m.Reply(proto.StatusError)
	}
	resp, err := cli.Do(op, &proto.Message{
		Op:      proto.OpRepairSince,
		Chunk:   m.Chunk,
		Version: myVersion,
	}, s.opBudget(op, 10*s.cfg.ReplTimeout))
	if err != nil {
		return m.Reply(proto.StatusError)
	}
	switch resp.Status {
	case proto.StatusOK:
		apply := &proto.Message{
			ID:      m.ID,
			Op:      proto.OpApplyRepair,
			Chunk:   m.Chunk,
			View:    m.View,
			Version: resp.Version,
			Payload: resp.Payload,
		}
		return s.handleApplyRepair(apply)
	case proto.StatusFallback:
		return s.handleCloneChunk(op, m) // same payload shape: {source}
	default:
		return m.Reply(proto.StatusError)
	}
}

// Upgrade performs the graceful hot upgrade of §5.2: stop admitting
// requests, wait for in-flight ones, switch to the "new process"
// (generation bump), and resume. Real URSA forks a new binary; the
// observable contract — no failed requests, brief pause, state preserved —
// is identical.
func (s *Server) Upgrade() {
	if !s.draining.CompareAndSwap(false, true) {
		return // an upgrade is already in progress
	}
	for s.inflight.Load() > 1 { // >1: the OpUpgrade handler itself
		s.cfg.Clock.Sleep(200 * time.Microsecond)
	}
	s.upGen.Add(1)
	s.draining.Store(false)
}

// validRange checks a sector-aligned in-chunk range.
func validRange(off int64, n int) error {
	if off < 0 || n <= 0 || off%util.SectorSize != 0 || n%util.SectorSize != 0 ||
		off+int64(n) > util.ChunkSize {
		return fmt.Errorf("chunkserver: bad range [%d,%d): %w",
			off, off+int64(n), util.ErrOutOfRange)
	}
	return nil
}
