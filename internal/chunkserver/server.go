package chunkserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/coldtier"
	"ursa/internal/journal"
	"ursa/internal/metrics"
	"ursa/internal/opctx"
	"ursa/internal/proto"
	"ursa/internal/redundancy"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// Config parameterizes a chunk server.
type Config struct {
	// Addr is the server's address on its transport fabric.
	Addr string
	// Role selects primary (SSD store) or backup (HDD store + journals).
	Role Role
	// Clock supplies time.
	Clock clock.Clock
	// Dialer reaches peer servers for replication and recovery.
	Dialer transport.Dialer
	// ReplTimeout is the commit-rule window (§4.2.1) for operations that
	// arrive WITHOUT a propagated deadline — background work and peers
	// predating op threading. Client-initiated ops never use it: their
	// replication budget derives from the op's remaining deadline
	// (see opBudget), so the majority rule fires relative to the client's
	// actual budget.
	ReplTimeout time.Duration
	// Metrics, when non-nil, receives per-stage latency observations for
	// every op this server services (shared cluster-wide by core).
	Metrics *metrics.Registry
	// BypassThreshold is Tj: backup writes larger than this skip the
	// journal (§3.2). 0 means the 64 KB paper default.
	BypassThreshold int
	// LiteCap bounds the per-chunk journal-lite history.
	LiteCap int
	// SerialApply disables per-chunk write pipelining: an admitted write
	// waits for every pending predecessor — not just overlapping ones —
	// before its device apply, so same-chunk applies run strictly one at
	// a time (the pre-pipelining behaviour). Benches use it as the locked
	// baseline.
	SerialApply bool
	// MaxInflight bounds concurrent handlers per transport connection
	// (server-side admission queue depth). 0 means the transport default.
	MaxInflight int
	// MasterAddr, when set, is where device I/O failures are reported
	// (MOpReportFailure): a chunk whose store or journal replay hits a
	// persistent error asks the master for the §4.2.2 view change that
	// re-replicates it elsewhere. Empty disables reporting.
	MasterAddr string
	// MasterAddrs lists every master endpoint when the control plane is
	// replicated. Failure reports rotate through the list on transport
	// errors or StatusNotPrimary redirects. fillDefaults folds MasterAddr
	// in, so single-master configurations need not set this.
	MasterAddrs []string
	// ReportCooldown throttles per-chunk failure reports: a chunk taking
	// sustained I/O errors reports at most once per cooldown, so a storm of
	// failing requests cannot flood the master with duplicate view changes.
	// 0 means 1s.
	ReportCooldown time.Duration
}

func (c *Config) fillDefaults() {
	if c.Clock == nil {
		c.Clock = clock.Realtime
	}
	if c.ReplTimeout <= 0 {
		c.ReplTimeout = 500 * time.Millisecond
	}
	if c.BypassThreshold <= 0 {
		c.BypassThreshold = 64 * util.KiB
	}
	if c.LiteCap <= 0 {
		c.LiteCap = 4096
	}
	if c.ReportCooldown <= 0 {
		c.ReportCooldown = time.Second
	}
	if c.MasterAddr != "" {
		found := false
		for _, a := range c.MasterAddrs {
			if a == c.MasterAddr {
				found = true
				break
			}
		}
		if !found {
			c.MasterAddrs = append([]string{c.MasterAddr}, c.MasterAddrs...)
		}
	}
	if c.MasterAddr == "" && len(c.MasterAddrs) > 0 {
		c.MasterAddr = c.MasterAddrs[0]
	}
}

// Metric names published by the pipelined write path.
const (
	// MetricPendingWrites samples the per-chunk pending-write depth at
	// admission — the queue depth the pipeline actually sustains at the
	// device.
	MetricPendingWrites = "chunk-pending-writes"
	// MetricDepWait is the time a write spends blocked on overlapping
	// pending predecessors before its own device apply may start.
	MetricDepWait = "chunk-dep-wait"
	// MetricChecksumMismatches counts reads whose payload failed CRC-32C
	// verification even after re-reads — confirmed silent corruption, each
	// occurrence also reported to the master for repair.
	MetricChecksumMismatches = "chunk-checksum-mismatches"
	// MetricStaleEpochRejections counts master-driven commands fenced off
	// because they carried a deposed master's epoch.
	MetricStaleEpochRejections = "chunk-stale-epoch-rejections"
)

// Stats is a snapshot of server activity for the efficiency benches
// (Fig 7). It is a read-only view over the server's metrics counters.
type Stats struct {
	Reads, Writes, Replicates int64
	BytesRead, BytesWritten   int64
	Repairs, Clones           int64
	UpgradeGen                int64
}

// Server is one chunk-server process.
type Server struct {
	cfg   Config
	store *blockstore.Store
	jset  *journal.Set // nil for primaries

	// chunks is the chunk registry, striped by chunk ID hash: every request
	// resolves its chunkState here, so one registry mutex would serialize
	// the whole data path at QD32.
	chunks [chunkShards]chunkShard
	peers  *transport.Peers
	// bcast fans replication shipments out onto pooled workers with pooled
	// result collectors (no per-write goroutines/channels on the hot path).
	bcast *transport.Broadcaster

	// upMu/upCond gate request admission during a hot upgrade (§5.2):
	// Handle parks on the condvar while draining, Upgrade parks until the
	// in-flight count drains — no poll loops, no burnt (simulated) time.
	upMu     sync.Mutex
	upCond   *sync.Cond
	inflight int
	draining bool
	upGen    atomic.Int64

	reads, writes, replicates  metrics.Counter
	bytesRead, bytesWritten    metrics.Counter
	repairCount, cloneCount    metrics.Counter
	degradedCommits, noQuorums metrics.Counter

	// failMu guards the per-chunk-and-address report throttle (see
	// reportFailure).
	failMu     sync.Mutex
	lastReport map[string]time.Time

	// masterEpoch is the newest master primacy epoch this server has
	// witnessed; commands stamped with an older one are rejected
	// (StatusStaleEpoch) — the fence that stops a deposed master.
	masterEpoch atomic.Uint64
	// masterIdx remembers which MasterAddrs entry last answered a failure
	// report, so reports go straight to the acting primary.
	masterIdx atomic.Int64

	rpc *transport.Server
}

// New creates a chunk server over store (and jset for backups; nil for
// primaries).
func New(cfg Config, store *blockstore.Store, jset *journal.Set) *Server {
	cfg.fillDefaults()
	if cfg.Role == RoleBackup && jset == nil {
		panic("chunkserver: backup role requires a journal set")
	}
	s := &Server{
		cfg:        cfg,
		store:      store,
		jset:       jset,
		peers:      transport.NewPeers(cfg.Dialer, cfg.Clock),
		lastReport: make(map[string]time.Time),
	}
	for i := range s.chunks {
		s.chunks[i].m = make(map[blockstore.ChunkID]*chunkState)
	}
	s.bcast = transport.NewBroadcaster(s.peers)
	s.upCond = sync.NewCond(&s.upMu)
	if jset != nil {
		// A journal dying is handled inside the set (re-route, then bypass)
		// and needs no view change; a PARKED replay means this chunk's data
		// cannot reach the backup disk at all — ask the master to
		// re-replicate it elsewhere.
		jset.OnFault(nil, func(id blockstore.ChunkID, err error) {
			s.reportDeviceFailure(id, err)
		})
	}
	return s
}

// reportFailureReq mirrors master.ReportFailureReq; the master package
// imports this one, so the wire shape is duplicated here (same JSON tags).
type reportFailureReq struct {
	VDisk      uint32 `json:"vdisk"`
	ChunkIndex uint32 `json:"chunkIndex"`
	FailedAddr string `json:"failedAddr,omitempty"`
}

// reportDeviceFailure asks the master (fire-and-forget) to run the §4.2.2
// view change for a chunk whose local device I/O failed, naming this
// server as the failed replica.
func (s *Server) reportDeviceFailure(id blockstore.ChunkID, cause error) {
	if cause == nil {
		return
	}
	s.reportFailure(id, s.cfg.Addr)
}

// reportFailure asks the master (fire-and-forget) to run the §4.2.2 view
// change for a chunk, naming failedAddr as the suspect replica — this
// server itself on device errors, or a segment holder whose RS fan-out ack
// never arrived. Reports are throttled per (chunk, address) so request
// storms against a dead disk collapse into one view change; the master's
// recovery is idempotent regardless (a second report after the view moved
// finds the address already repaired).
func (s *Server) reportFailure(id blockstore.ChunkID, failedAddr string) {
	if len(s.cfg.MasterAddrs) == 0 {
		return
	}
	key := id.String() + "|" + failedAddr
	now := s.cfg.Clock.Now()
	s.failMu.Lock()
	if last, ok := s.lastReport[key]; ok && now.Sub(last) < s.cfg.ReportCooldown {
		s.failMu.Unlock()
		return
	}
	s.lastReport[key] = now
	s.failMu.Unlock()

	go func() {
		payload, err := json.Marshal(reportFailureReq{
			VDisk:      id.VDisk(),
			ChunkIndex: id.Index(),
			FailedAddr: failedAddr,
		})
		if err != nil {
			return
		}
		// Recovery clones a whole chunk synchronously before the master
		// replies, so the window is far beyond a normal RPC's.
		op := opctx.New(s.cfg.Clock, 120*s.cfg.ReplTimeout)
		if s.cfg.Metrics != nil {
			op = op.WithSink(s.cfg.Metrics)
		}
		// Rotate through the master endpoints starting at the one that
		// last answered: during a failover the old primary times out or
		// redirects (StatusNotPrimary) and the report lands on a standby
		// or the new primary on a later turn of the loop. Re-sending the
		// same payload slice is safe — JSON buffers are foreign to
		// bufpool, so the per-attempt Put is a no-op.
		addrs := s.cfg.MasterAddrs
		start := int(s.masterIdx.Load()) % len(addrs)
		for i := 0; i < len(addrs); i++ {
			idx := (start + i) % len(addrs)
			resp, err := s.peers.Do(op, addrs[idx], &proto.Message{
				Op:      proto.MOpReportFailure,
				Payload: payload,
			}, 0)
			if err != nil {
				continue
			}
			status := resp.Status
			bufpool.Put(resp.Payload)
			proto.Recycle(resp)
			if status != proto.StatusNotPrimary {
				s.masterIdx.Store(int64(idx))
				return
			}
		}
	}()
}

// Serve starts handling requests on l. It returns immediately.
func (s *Server) Serve(l transport.Listener) {
	var opts []transport.ServeOption
	if s.cfg.MaxInflight > 0 {
		opts = append(opts, transport.WithMaxInflight(s.cfg.MaxInflight))
	}
	if s.cfg.Metrics != nil {
		opts = append(opts, transport.WithQueueMetrics(s.cfg.Metrics))
	}
	s.rpc = transport.Serve(l, s.Handle, opts...)
}

// Close stops the RPC server and the journal replayer.
func (s *Server) Close() {
	if s.rpc != nil {
		s.rpc.Close()
	}
	s.bcast.Close()
	s.peers.CloseAll()
	if s.jset != nil {
		s.jset.Close()
	}
}

// Addr returns the configured address.
func (s *Server) Addr() string { return s.cfg.Addr }

// StoreUsedBytes returns the physical bytes held by this server's chunk
// slots — what the erasure-coding bench sums into storage overhead.
func (s *Server) StoreUsedBytes() int64 { return s.store.UsedBytes() }

// Role returns the server role.
func (s *Server) Role() Role { return s.cfg.Role }

// Stats returns an activity snapshot.
func (s *Server) Stats() Stats {
	return Stats{
		Reads:        s.reads.Load(),
		Writes:       s.writes.Load(),
		Replicates:   s.replicates.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
		Repairs:      s.repairCount.Load(),
		Clones:       s.cloneCount.Load(),
		UpgradeGen:   s.upGen.Load(),
	}
}

// chunkShards stripes the chunk registry; power of two.
const chunkShards = 32

type chunkShard struct {
	mu sync.Mutex
	m  map[blockstore.ChunkID]*chunkState
}

func (s *Server) shard(id blockstore.ChunkID) *chunkShard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &s.chunks[h>>59&(chunkShards-1)]
}

// chunk returns the state for id, or nil.
func (s *Server) chunk(id blockstore.ChunkID) *chunkState {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m[id]
}

// Handle dispatches one request; it is the transport.Handler.
func (s *Server) Handle(m *proto.Message) *proto.Message {
	// Graceful upgrade: brief pause while the new "process" takes over.
	s.upMu.Lock()
	for s.draining {
		s.upCond.Wait()
	}
	s.inflight++
	s.upMu.Unlock()
	defer func() {
		s.upMu.Lock()
		s.inflight--
		if s.draining && s.inflight <= 1 {
			s.upCond.Broadcast()
		}
		s.upMu.Unlock()
	}()

	// Epoch fence: a master-driven command stamped with an epoch older
	// than the newest this server has witnessed comes from a deposed
	// master — reject it before it can touch views, versions, or chunk
	// membership. Newer epochs are adopted (the new primary's fencing
	// OpNop broadcast lands here too); epoch 0 is unfenced, which keeps
	// client data-path ops and single-master clusters out of the protocol.
	if m.Epoch != 0 && masterDriven(m.Op) {
		if cur, adopted := s.witnessEpoch(m.Epoch); !adopted {
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.Counter(MetricStaleEpochRejections).Inc()
			}
			r := m.Reply(proto.StatusStaleEpoch)
			r.Epoch = cur // tell the deposed sender what fenced it
			return r
		}
	}

	// Rebuild the request context the message belongs to: same op ID, the
	// sender's remaining budget re-anchored on our clock. Every wait below
	// derives its window from this op, never from a fixed constant.
	op := opctx.FromWire(s.cfg.Clock, m.OpID, m.Budget)
	if s.cfg.Metrics != nil {
		op = op.WithSink(s.cfg.Metrics)
	}

	switch m.Op {
	case proto.OpNop:
		return m.Reply(proto.StatusOK)
	case proto.OpRead:
		return s.handleRead(op, m)
	case proto.OpWrite:
		return s.handleWrite(op, m, true)
	case proto.OpWritePrimary:
		return s.handleWrite(op, m, false)
	case proto.OpReplicate:
		return s.handleReplicate(op, m)
	case proto.OpGetVersion:
		return s.handleGetVersion(m)
	case proto.OpCreateChunk:
		return s.handleCreateChunk(m)
	case proto.OpDeleteChunk:
		return s.handleDeleteChunk(m)
	case proto.OpRepairSince:
		return s.handleRepairSince(m)
	case proto.OpApplyRepair:
		return s.handleApplyRepair(m)
	case proto.OpFetchChunk:
		return s.handleFetchChunk(op, m)
	case proto.OpFlushChunks:
		return s.handleFlushChunks(op, m)
	case proto.OpSetView:
		return s.handleSetView(m)
	case proto.OpCloneChunk:
		return s.handleCloneChunk(op, m)
	case proto.OpRepairFrom:
		return s.handleRepairFrom(op, m)
	case proto.OpRebuildSegment:
		return s.handleRebuildSegment(op, m)
	case proto.OpFetchSegment:
		return s.handleFetchSegment(op, m)
	case proto.OpUpgrade:
		go s.Upgrade()
		return m.Reply(proto.StatusOK)
	default:
		return m.Reply(proto.StatusError)
	}
}

// masterDriven reports whether op is a command only the master originates
// — the set that must be epoch-fenced. Data-path ops (reads, writes,
// replicates) are excluded: clients are fenced by view numbers, not
// epochs. OpNop is included as the promotion broadcast vehicle.
func masterDriven(op proto.Op) bool {
	switch op {
	case proto.OpNop, proto.OpCreateChunk, proto.OpDeleteChunk, proto.OpSetView,
		proto.OpCloneChunk, proto.OpRepairFrom, proto.OpApplyRepair,
		proto.OpRebuildSegment, proto.OpFlushChunks:
		return true
	}
	return false
}

// witnessEpoch folds e into the newest-witnessed master epoch: adopted
// reports whether e is current (>= the max seen); cur returns the fencing
// epoch when it is not.
func (s *Server) witnessEpoch(e uint64) (cur uint64, adopted bool) {
	for {
		cur = s.masterEpoch.Load()
		if e < cur {
			return cur, false
		}
		if e == cur || s.masterEpoch.CompareAndSwap(cur, e) {
			return e, true
		}
	}
}

// MasterEpoch returns the newest master epoch this server has witnessed.
func (s *Server) MasterEpoch() uint64 { return s.masterEpoch.Load() }

// opBudget derives the window this server may spend waiting on op's behalf
// (backup acks, version-slot queueing, recovery pulls). Ops carrying a
// deadline get 3/4 of the remaining budget — the rest is reserved for the
// response's return trip and the caller's bookkeeping, so the §4.2.1
// majority rule fires while the client is still listening. Deadline-less
// ops (background work, peers predating op threading) fall back to the
// configured window.
func (s *Server) opBudget(op *opctx.Op, fallback time.Duration) time.Duration {
	rem, ok := op.Remaining()
	if !ok {
		return fallback
	}
	if rem <= 0 {
		return time.Nanosecond // fail fast, but never "wait forever"
	}
	return rem * 3 / 4
}

// CreateChunkReq is the JSON payload of OpCreateChunk.
type CreateChunkReq struct {
	// Backups are peer addresses the primary replicates to (primary only).
	Backups []string `json:"backups,omitempty"`
	// View is the chunk's initial view number.
	View uint64 `json:"view"`
	// Version seeds the replica version (non-zero when re-creating a
	// replica that will be cloned to a known state).
	Version uint64 `json:"version,omitempty"`
	// Redundancy is the chunk's redundancy policy. The zero value is
	// mirroring, so pre-RS callers need not set it.
	Redundancy redundancy.Spec `json:"redundancy,omitempty"`
	// Holder marks this replica as an RS segment holder storing only
	// segment Seg (a ChunkSize/N slice) rather than the whole chunk.
	Holder bool `json:"holder,omitempty"`
	// Seg is the segment index this holder stores (valid when Holder).
	Seg int `json:"seg,omitempty"`
	// Cold lists the object-backed extents of a cloned chunk; the replica
	// demand-fetches them from the object store at ObjAddr on first access.
	Cold    []coldtier.ExtentRef `json:"cold,omitempty"`
	ObjAddr string               `json:"objAddr,omitempty"`
}

// newChunkStateFrom builds the per-chunk state a CreateChunkReq describes.
func (s *Server) newChunkStateFrom(req CreateChunkReq) (*chunkState, error) {
	strat, err := redundancy.New(req.Redundancy)
	if err != nil {
		return nil, err
	}
	cs := newChunkState(req.View, req.Backups, s.cfg.LiteCap)
	cs.version = req.Version
	cs.reserved = req.Version
	cs.spec = req.Redundancy
	cs.strat = strat
	cs.holder = req.Holder
	cs.seg = req.Seg
	if len(req.Cold) > 0 {
		cs.cold = &coldState{
			objAddr: req.ObjAddr,
			refs:    append([]coldtier.ExtentRef(nil), req.Cold...),
		}
	}
	return cs, nil
}

func (s *Server) handleCreateChunk(m *proto.Message) *proto.Message {
	var req CreateChunkReq
	if len(m.Payload) > 0 {
		if err := json.Unmarshal(m.Payload, &req); err != nil {
			return m.Reply(proto.StatusError)
		}
	}
	cs, err := s.newChunkStateFrom(req)
	if err != nil {
		return m.Reply(proto.StatusError)
	}
	if err := s.store.CreateSized(m.Chunk, cs.span()); err != nil {
		if errors.Is(err, util.ErrExists) {
			// A restarted server re-attaches to chunks that survived on its
			// store: install fresh in-memory state over the existing slot
			// (and its checksums). The Exists status is kept so recovery
			// flows still learn the slot was already there.
			sh := s.shard(m.Chunk)
			sh.mu.Lock()
			if sh.m[m.Chunk] == nil {
				sh.m[m.Chunk] = cs
			}
			sh.mu.Unlock()
			return m.Reply(proto.StatusExists)
		}
		return m.Reply(proto.StatusQuota)
	}
	sh := s.shard(m.Chunk)
	sh.mu.Lock()
	sh.m[m.Chunk] = cs
	sh.mu.Unlock()
	return m.Reply(proto.StatusOK)
}

func (s *Server) handleDeleteChunk(m *proto.Message) *proto.Message {
	sh := s.shard(m.Chunk)
	sh.mu.Lock()
	cs := sh.m[m.Chunk]
	delete(sh.m, m.Chunk)
	sh.mu.Unlock()
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cs.mu.Lock()
	cs.deleted = true
	cs.bumpLocked() // wake writers queued on the chunk's state
	cs.mu.Unlock()
	if s.jset != nil {
		s.jset.DropChunk(m.Chunk)
	}
	if err := s.store.Delete(m.Chunk); err != nil {
		return m.Reply(proto.StatusError)
	}
	return m.Reply(proto.StatusOK)
}

func (s *Server) handleGetVersion(m *proto.Message) *proto.Message {
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	r := m.Reply(proto.StatusOK)
	r.Version = cs.version
	r.View = cs.view
	return r
}

func (s *Server) handleSetView(m *proto.Message) *proto.Message {
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if m.View < cs.view {
		return m.Reply(proto.StatusStaleView)
	}
	cs.view = m.View
	if len(m.Payload) > 0 {
		var req CreateChunkReq
		if err := json.Unmarshal(m.Payload, &req); err == nil && req.Backups != nil {
			cs.backups = req.Backups
		}
	}
	r := m.Reply(proto.StatusOK)
	r.View = cs.view
	r.Version = cs.version
	return r
}

// handleRead serves a read from the local replica. Any replica with data at
// least as new as the client's version may serve (§4.1); primaries read
// the SSD store, backups resolve journal extents first.
func (s *Server) handleRead(op *opctx.Op, m *proto.Message) *proto.Message {
	// Validate before allocating: a malformed Length would otherwise size
	// an arbitrary buffer (and only then fail in the store). The bound is
	// the replica's local slot — one segment on RS holders.
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	if err := validRangeIn(m.Off, int(m.Length), cs.span()); err != nil {
		return m.Reply(proto.StatusError)
	}
	if err := s.ensureCold(op, cs, m.Chunk, m.Off, int(m.Length)); err != nil {
		return m.Reply(proto.StatusError)
	}
	cs.mu.Lock()
	if cs.view != m.View {
		r := m.Reply(proto.StatusStaleView)
		r.View = cs.view
		cs.mu.Unlock()
		return r
	}
	if cs.version < m.Version {
		// We lag the client's committed state: refuse rather than serve
		// stale data; the client will pick another replica or trigger
		// repair.
		r := m.Reply(proto.StatusBehind)
		r.Version = cs.version
		cs.mu.Unlock()
		return r
	}
	ver := cs.version
	cs.mu.Unlock()

	// Leased, not allocated: the response payload rides to the transport,
	// whose Send consumes the lease once the bytes are on the wire.
	buf := bufpool.Get(int(m.Length))
	if err := s.readVerified(op, m.Chunk, buf, m.Off); err != nil {
		bufpool.Put(buf)
		s.reportDeviceFailure(m.Chunk, err)
		if errors.Is(err, util.ErrCorrupt) {
			// Distinguishable integrity failure: the client fails over to
			// another replica instead of retrying a disk that lies.
			return m.Reply(proto.StatusCorrupt)
		}
		return m.Reply(proto.StatusError)
	}
	s.reads.Add(1)
	s.bytesRead.Add(int64(len(buf)))
	r := m.Reply(proto.StatusOK)
	r.Version = ver
	r.Payload = buf
	return r
}

// readData reads the replica's logical content: journal-merged for backups,
// the store for primaries.
func (s *Server) readData(id blockstore.ChunkID, buf []byte, off int64) error {
	if s.jset != nil {
		return s.jset.Read(id, buf, off)
	}
	return s.store.ReadAt(id, buf, off)
}

// readVerified reads [off, off+len(buf)) of a chunk and checks the payload
// against the chunk's sector checksums. A mismatch is settled per sector
// before being declared corruption: the pipelined write path stamps a
// sector's checksum only after its device write returns, so a read racing
// an overlapping write can transiently observe a payload newer than the
// stamped sum (or the reverse). Settling sector by sector matters for
// large reads (scrub probes, clone fetches) over a write-hot region — a
// whole-buffer retry would need every sector consistent at one instant,
// which under a continuous write stream may never happen; each sector on
// its own settles within microseconds, while real bit-rot never verifies.
// A confirmed mismatch counts chunk-checksum-mismatches and comes back
// wrapping util.ErrCorrupt. op may be nil (scrub and recovery paths); with
// an op the device time lands on the usual read stage.
func (s *Server) readVerified(op *opctx.Op, id blockstore.ChunkID, buf []byte, off int64) error {
	stage := opctx.StagePrimarySSD
	if s.jset != nil {
		stage = opctx.StageBackupJournal
	}
	var err error
	if op != nil {
		st := op.Stage(stage)
		err = s.readData(id, buf, off)
		st.Stop()
	} else {
		err = s.readData(id, buf, off)
	}
	if err != nil {
		return err
	}
	if s.store.Sums().Verify(id, off, buf) == nil {
		return nil
	}
	const sectorRereads = 4
	sec := make([]byte, util.SectorSize)
	for so := int64(0); so < int64(len(buf)); so += util.SectorSize {
		if s.store.Sums().Verify(id, off+so, buf[so:so+util.SectorSize]) == nil {
			continue
		}
		var verr error
		for attempt := 0; ; attempt++ {
			if err := s.readData(id, sec, off+so); err != nil {
				return err
			}
			if verr = s.store.Sums().Verify(id, off+so, sec); verr == nil {
				copy(buf[so:], sec)
				break
			}
			if attempt == sectorRereads {
				if s.cfg.Metrics != nil {
					s.cfg.Metrics.Counter(MetricChecksumMismatches).Inc()
				}
				return verr
			}
			// Give an in-flight stamp a moment to land before re-reading.
			s.cfg.Clock.Sleep(20 * time.Microsecond)
		}
	}
	return nil
}

// errPredecessorFailed aborts a write whose overlapping predecessor's apply
// failed: the predecessor's slot will be re-claimed by a retry carrying
// older data, so writing ours first would let that retry overwrite it.
var errPredecessorFailed = errors.New("chunkserver: overlapping predecessor write failed")

// admitWriteLocked runs the §4.2.1 version rules for a write carrying
// version v and, when the write is admitted, claims its version slot and
// registers its extent in the chunk's pending table — the short in-lock
// ordering section of the pipelined write path. It returns exactly one of:
//
//   - pw != nil: the slot is claimed; deps are the pending predecessors the
//     caller must wait out (overlapping ones, or all of them under
//     SerialApply) before applying out of lock.
//   - skipLocal: the write is the §4.2.1 duplicate (already applied here);
//     no slot is claimed, the caller still forwards/acks.
//   - resp != nil: the request short-circuits with this reply.
//
// Waits (our slot not yet reserved, or a duplicate of a still-in-flight
// write) are bounded by the op's remaining budget. Called and returns with
// cs.mu held.
func (s *Server) admitWriteLocked(cs *chunkState, op *opctx.Op, m *proto.Message) (pw *pendingWrite, deps []*pendingWrite, skipLocal bool, resp *proto.Message) {
	deadline := s.cfg.Clock.Now().Add(s.opBudget(op, s.cfg.ReplTimeout))
	var stopWait func()
	defer func() {
		if stopWait != nil {
			stopWait()
		}
	}()
	for {
		if cs.deleted {
			return nil, nil, false, m.Reply(proto.StatusNotFound)
		}
		if cs.view != m.View {
			r := m.Reply(proto.StatusStaleView)
			r.View = cs.view
			return nil, nil, false, r
		}
		switch {
		case m.Version+1 == cs.version:
			// Already applied here (retry after a partial failure): skip the
			// local write but still forward/ack (§4.2.1).
			return nil, nil, true, nil
		case m.Version < cs.version:
			r := m.Reply(proto.StatusStaleVersion)
			r.Version = cs.version
			return nil, nil, false, r
		case m.Version == cs.reserved:
			// Our slot is next: claim it.
			pw, deps = s.claimSlotLocked(cs, m)
			return pw, deps, false, nil
		case m.Version < cs.reserved:
			// The slot was already handed out. A failed entry is a retry's
			// to re-claim (its overlapping successors aborted, so nothing
			// newer can be on disk under our extent); a live entry means a
			// duplicate delivery — wait for the original's fate and
			// re-evaluate.
			if p := cs.pending[m.Version]; p == nil || p.failed {
				pw, deps = s.claimSlotLocked(cs, m)
				return pw, deps, false, nil
			}
		default:
			// m.Version > cs.reserved: a predecessor has not arrived yet;
			// wait for reservations to catch up.
		}
		if stopWait == nil {
			stopWait = op.StartStage(opctx.StageReplay)
		}
		if !cs.waitChangeLocked(op, deadline) {
			r := m.Reply(proto.StatusBehind)
			r.Version = cs.version
			return nil, nil, false, r
		}
	}
}

// claimSlotLocked registers m's write in the pending table and collects the
// predecessors it must wait out before touching the device: entries whose
// extents overlap m's, or every earlier entry under SerialApply. Claiming
// the next free slot advances the reservation cursor and wakes writers
// queued on it.
func (s *Server) claimSlotLocked(cs *chunkState, m *proto.Message) (*pendingWrite, []*pendingWrite) {
	pw := &pendingWrite{
		version: m.Version,
		off:     m.Off,
		length:  len(m.Payload),
		done:    make(chan struct{}),
	}
	var deps []*pendingWrite
	for slot, p := range cs.pending {
		if slot >= m.Version {
			continue
		}
		if s.cfg.SerialApply || p.overlaps(m.Off, len(m.Payload)) {
			deps = append(deps, p)
		}
	}
	cs.pending[m.Version] = pw
	if m.Version == cs.reserved {
		cs.reserved++
	}
	cs.bumpLocked()
	return pw, deps
}

// awaitDeps blocks until every predecessor in deps has finished its device
// apply, bounded by the op's budget. A failed dependency aborts the write:
// its slot must stay re-claimable by the retry that carries the missing
// data, and our extent overlaps that retry's.
func (s *Server) awaitDeps(op *opctx.Op, deps []*pendingWrite) error {
	if len(deps) == 0 {
		return nil
	}
	clk := s.cfg.Clock
	t0 := clk.Now()
	deadline := t0.Add(s.opBudget(op, s.cfg.ReplTimeout))
	st := op.Stage(opctx.StageApplyWait)
	defer st.Stop()
	for _, dep := range deps {
		rem := deadline.Sub(clk.Now())
		if rem <= 0 {
			return fmt.Errorf("chunkserver: dependency wait: %w", util.ErrTimeout)
		}
		select {
		case <-dep.done:
		case <-clk.After(rem):
			return fmt.Errorf("chunkserver: dependency wait: %w", util.ErrTimeout)
		case <-op.Done():
			return context.Canceled
		}
		if dep.failed {
			return errPredecessorFailed
		}
	}
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.ObserveLatency(MetricDepWait, clk.Now().Sub(t0))
	}
	return nil
}

// awaitCommit blocks until the chunk's committed version reaches want —
// this write's own apply plus every predecessor's has landed — so acks go
// out strictly in version order and StatusOK at version v still implies
// every write ≤ v is applied. It returns the committed version and whether
// want was reached within the op's budget.
func (s *Server) awaitCommit(cs *chunkState, op *opctx.Op, want uint64) (uint64, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.version >= want {
		return cs.version, true
	}
	deadline := s.cfg.Clock.Now().Add(s.opBudget(op, s.cfg.ReplTimeout))
	st := op.Stage(opctx.StageCommitWait)
	defer st.Stop()
	for cs.version < want && !cs.deleted {
		if !cs.waitChangeLocked(op, deadline) {
			break
		}
	}
	return cs.version, cs.version >= want
}

// handleWrite is the primary write path: apply locally, optionally
// replicate to backups (forward=false under client-directed replication),
// and commit by the all-or-majority-after-timeout rule. The chunk lock is
// held only for slot admission: the SSD write itself runs out of lock,
// concurrently with other same-chunk writes whose extents do not overlap,
// and the ack waits for the committed version to reach this write's slot.
func (s *Server) handleWrite(op *opctx.Op, m *proto.Message, forward bool) *proto.Message {
	if err := validRange(m.Off, len(m.Payload)); err != nil {
		return m.Reply(proto.StatusError)
	}
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	// Copy-on-write materialization: the extents this write lands on must be
	// local before the write is admitted, or a later demand fetch of the
	// same extent would overwrite newer bytes with the snapshot's.
	if err := s.ensureCold(op, cs, m.Chunk, m.Off, len(m.Payload)); err != nil {
		return m.Reply(proto.StatusError)
	}
	cs.mu.Lock()
	pw, deps, skipLocal, resp := s.admitWriteLocked(cs, op, m)
	if resp != nil {
		cs.mu.Unlock()
		return resp
	}
	backups := cs.backups
	strat := cs.strat
	depth := len(cs.pending)
	cs.mu.Unlock()
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.ObserveValue(MetricPendingWrites, int64(depth))
	}

	// Replication overlaps the local write: the primary starts the
	// fan-out as soon as the plan is ready and performs its own write while
	// the data is in flight to the backups, so the end-to-end latency is
	// max(local, backup), not their sum. Mirroring plans from the payload
	// alone, so its fan-out starts before even the dependency wait; RS
	// parity deltas need the pre-write bytes, so planning waits for
	// overlapping predecessors and reads the old range first.
	doFanout := forward && len(backups) > 0
	var replCh chan bool
	startFanout := func(ships []redundancy.Shipment) {
		replCh = make(chan bool, 1)
		go func() { replCh <- s.replicateShipments(op, backups, m, strat, ships) }()
	}
	if doFanout && !strat.NeedsOldData() {
		ships, err := strat.PlanWrite(m.Off, m.Payload, nil, len(backups))
		if err != nil {
			if !skipLocal {
				cs.applyDone(pw, err)
			}
			return m.Reply(proto.StatusError)
		}
		startFanout(ships)
	}
	if !skipLocal {
		if err := s.awaitDeps(op, deps); err != nil {
			cs.applyDone(pw, err)
			if replCh != nil {
				<-replCh
			}
			cs.mu.Lock()
			ver := cs.version
			cs.mu.Unlock()
			r := m.Reply(proto.StatusBehind)
			r.Version = ver
			return r
		}
		if doFanout && strat.NeedsOldData() {
			old := make([]byte, len(m.Payload))
			err := s.readData(m.Chunk, old, m.Off)
			var ships []redundancy.Shipment
			if err == nil {
				ships, err = strat.PlanWrite(m.Off, m.Payload, old, len(backups))
			}
			if err != nil {
				cs.applyDone(pw, err)
				s.reportDeviceFailure(m.Chunk, err)
				return m.Reply(proto.StatusError)
			}
			cs.cacheShipments(m.Version, ships)
			startFanout(ships)
		}
		st := op.Stage(opctx.StagePrimarySSD)
		err := s.store.WriteAt(m.Chunk, m.Payload, m.Off)
		st.Stop()
		if err == nil {
			s.store.Sums().Stamp(m.Chunk, m.Off, m.Payload)
		}
		cs.applyDone(pw, err)
		if err != nil {
			s.reportDeviceFailure(m.Chunk, err)
			if replCh != nil {
				<-replCh
			}
			return m.Reply(proto.StatusError)
		}
	} else if doFanout && strat.NeedsOldData() {
		// A §4.2.1 duplicate of an RS write cannot recompute its parity
		// deltas — the pre-write bytes are gone — so it resends the cached
		// plan. A plan evicted from the cache means the retry arrived
		// implausibly late: fail it and let recovery settle the stripe.
		ships, ok := cs.cachedShipments(m.Version)
		if !ok {
			return m.Reply(proto.StatusError)
		}
		startFanout(ships)
	}
	s.writes.Add(1)
	s.bytesWritten.Add(int64(len(m.Payload)))

	newVer, committed := s.awaitCommit(cs, op, m.Version+1)
	if !committed {
		if replCh != nil {
			<-replCh
		}
		r := m.Reply(proto.StatusBehind)
		r.Version = newVer
		return r
	}
	if replCh != nil && !<-replCh {
		s.noQuorums.Add(1)
		r := m.Reply(proto.StatusError)
		r.Version = newVer
		return r
	}
	r := m.Reply(proto.StatusOK)
	r.Version = newVer
	return r
}

// replicateShipments fans a write's planned shipments out to the backup
// tier and applies the strategy's commit rule: true when every target acks,
// or when the strategy's degraded rule is met within the commit window —
// a majority of the replica group for mirroring (§4.2.1), at least N
// segment acks for RS(N,M). The window is NOT a server constant: it derives
// from the incoming op's remaining deadline, so the commit rule fires
// relative to the client's budget — only deadline-less ops fall back to the
// configured ReplTimeout.
func (s *Server) replicateShipments(op *opctx.Op, backups []string, m *proto.Message, strat redundancy.Strategy, ships []redundancy.Shipment) bool {
	window := s.opBudget(op, s.cfg.ReplTimeout)
	// The transport recycles the request frame m when the handler returns,
	// and the handler may return (commit decided) while straggler shipments
	// are still applying in the background — so the correlation fields are
	// copied out of m into each branch's own pooled message up front;
	// nothing dispatched below reads through m.
	chunk, view, version := m.Chunk, m.View, m.Version
	fl := s.bcast.Begin(len(ships))
	for _, sh := range ships {
		// Mirror shipments alias the request payload, whose lease the
		// transport server releases when the handler returns — but a
		// shipment may outlive the handler (degraded-commit stragglers keep
		// applying in the background). Each branch therefore carries its
		// own reference, consumed by its one Do. RS shipments own their
		// buffers, making this a no-op.
		bufpool.Retain(sh.Data)
		var flags uint8
		if sh.Xor {
			flags |= proto.FlagXorApply
		}
		if sh.Bump {
			flags |= proto.FlagVersionBump
		}
		req := proto.GetMessage()
		req.Op = proto.OpReplicate
		req.Chunk = chunk
		req.Off = sh.Off
		req.View = view
		req.Version = version
		req.Flags = flags
		req.Seg = uint16(sh.Target)
		req.Payload = sh.Data
		fl.Go(sh.Target, backups[sh.Target], op, window, req)
	}
	defer fl.Finish()
	acks := 0
	var failed []int
	st := op.Stage(opctx.StageReplWait)
	defer st.Stop()
	for done := 1; done <= len(ships); done++ {
		if r := fl.Next(); !r.Err && r.Status == proto.StatusOK {
			acks++
		} else {
			failed = append(failed, r.Target)
		}
		if acks == len(ships) {
			return true
		}
		if len(failed) > 0 && strat.CommitOK(acks, len(backups)) {
			// The outcome is decided: a definitive failure rules out the
			// all-ack commit and the degraded rule already holds, so more
			// results cannot change the decision — only improve durability.
			// Reply now rather than waiting out the stragglers' RPC windows;
			// a dead holder's timeout would otherwise delay every committed
			// write's ack past the client's patience, and the client would
			// misread a committed write as failed. Stragglers keep applying
			// in the background; only the definitive failures are reported.
			//
			// Degraded commit: availability preserved at a transient
			// durability discount (§4.2.1). An RS stripe short a segment has
			// lost real redundancy, so the missing holders are reported for
			// rebuild now; mirrored chunks keep the paper's behaviour and
			// wait for the master's next probe.
			s.degradedCommits.Add(1)
			if strat.Spec().IsRS() {
				for _, t := range failed {
					s.reportFailure(chunk, backups[t])
				}
			}
			return true
		}
		if pending := len(ships) - done; !strat.CommitOK(acks+pending, len(backups)) {
			// Even if every straggler acks, the commit rule cannot be met.
			return false
		}
	}
	return false
}

// handleReplicate is the backup write path: journal small writes, bypass
// for large ones (§3.2). Like the primary path, only slot admission runs
// under the chunk lock: same-chunk appends reach the journal's group-commit
// queue concurrently, so one flush batches a hot chunk's burst instead of
// draining it one record per device write.
//
// RS fan-outs arrive flagged: FlagVersionBump carries no bytes (an
// unaffected data holder advances its version in lockstep), FlagXorApply
// carries a parity delta the holder folds into its current content with a
// read-modify-write. The RMW is safe under concurrency because overlapping
// deltas wait on each other through the pending-write extent machinery, and
// delta application commutes across disjoint admission orders.
func (s *Server) handleReplicate(op *opctx.Op, m *proto.Message) *proto.Message {
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	bump := m.Flags&proto.FlagVersionBump != 0
	if !bump {
		if err := validRangeIn(m.Off, len(m.Payload), cs.span()); err != nil {
			return m.Reply(proto.StatusError)
		}
		// Same copy-on-write rule as the primary path: the covered extents
		// must be local before this backup applies newer bytes over them.
		if err := s.ensureCold(op, cs, m.Chunk, m.Off, len(m.Payload)); err != nil {
			return m.Reply(proto.StatusError)
		}
	}
	cs.mu.Lock()
	pw, deps, skipLocal, resp := s.admitWriteLocked(cs, op, m)
	if resp != nil {
		cs.mu.Unlock()
		return resp
	}
	depth := len(cs.pending)
	cs.mu.Unlock()
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.ObserveValue(MetricPendingWrites, int64(depth))
	}
	if !skipLocal {
		if err := s.awaitDeps(op, deps); err != nil {
			cs.applyDone(pw, err)
			cs.mu.Lock()
			ver := cs.version
			cs.mu.Unlock()
			r := m.Reply(proto.StatusBehind)
			r.Version = ver
			return r
		}
		var err error
		if !bump {
			data := m.Payload
			var cur []byte
			if m.Flags&proto.FlagXorApply != 0 {
				// Parity RMW: fold the delta into the current parity bytes.
				// The read must verify — folding a delta into rotten parity
				// would launder the rot into every future reconstruction.
				cur = bufpool.Get(len(m.Payload))
				if rerr := s.readVerified(op, m.Chunk, cur, m.Off); rerr != nil {
					bufpool.Put(cur)
					cs.applyDone(pw, rerr)
					s.reportDeviceFailure(m.Chunk, rerr)
					if errors.Is(rerr, util.ErrCorrupt) {
						return m.Reply(proto.StatusCorrupt)
					}
					return m.Reply(proto.StatusError)
				}
				for i := range cur {
					cur[i] ^= m.Payload[i]
				}
				data = cur
			}
			st := op.Stage(opctx.StageBackupJournal)
			err = s.applyBackupWrite(op, m, data)
			st.Stop()
			if err == nil {
				s.store.Sums().Stamp(m.Chunk, m.Off, data)
			}
			if cur != nil {
				// Append/WriteDirect return only after the device write, so
				// nothing references the folded bytes anymore.
				bufpool.Put(cur)
			}
		}
		cs.applyDone(pw, err)
		if err != nil {
			s.reportDeviceFailure(m.Chunk, err)
			return m.Reply(proto.StatusError)
		}
	}
	s.replicates.Add(1)
	s.bytesWritten.Add(int64(len(m.Payload)))

	newVer, committed := s.awaitCommit(cs, op, m.Version+1)
	if !committed {
		r := m.Reply(proto.StatusBehind)
		r.Version = newVer
		return r
	}
	r := m.Reply(proto.StatusOK)
	r.Version = newVer
	return r
}

// applyBackupWrite routes a backup write through the journal or directly to
// the HDD, falling back to a direct write when journals overflow entirely.
// data is the resolved absolute content (an XOR delta already folded in).
// The op rides into the journal so group-commit queue/flush time lands on
// the op's backup-jqueue/backup-jflush stages.
func (s *Server) applyBackupWrite(op *opctx.Op, m *proto.Message, data []byte) error {
	if s.jset == nil {
		// A primary-role server can hold backup replicas in SSD-only
		// deployments (Ursa-SSD mode): plain store write.
		return s.store.WriteAt(m.Chunk, data, m.Off)
	}
	if len(data) <= s.cfg.BypassThreshold {
		err := s.jset.Append(op, m.Chunk, m.Off, data, m.Version+1)
		if errors.Is(err, util.ErrQuota) {
			return s.jset.WriteDirect(m.Chunk, data, m.Off)
		}
		return err
	}
	return s.jset.WriteDirect(m.Chunk, data, m.Off)
}

// handleRepairSince serves incremental repair: the ranges modified after
// m.Version plus their current data (§4.2.1).
func (s *Server) handleRepairSince(m *proto.Message) *proto.Message {
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cs.mu.Lock()
	mods, ok := cs.lite.Since(m.Version)
	ver := cs.version
	cs.mu.Unlock()
	if !ok {
		// History evicted: the whole chunk must be transferred instead.
		r := m.Reply(proto.StatusFallback)
		r.Version = ver
		return r
	}
	out := make([]repairMod, 0, len(mods))
	for _, mod := range mods {
		buf := make([]byte, mod.Len)
		// Verified read: serving unverified bytes here would launder local
		// bit-rot into a healthy replica through the repair path.
		if err := s.readVerified(nil, m.Chunk, buf, mod.Off); err != nil {
			s.reportDeviceFailure(m.Chunk, err)
			if errors.Is(err, util.ErrCorrupt) {
				return m.Reply(proto.StatusCorrupt)
			}
			return m.Reply(proto.StatusError)
		}
		out = append(out, repairMod{Mod: mod, Data: buf})
	}
	s.repairCount.Add(1)
	r := m.Reply(proto.StatusOK)
	r.Version = ver
	r.Payload = encodeRepair(out)
	return r
}

// handleApplyRepair installs repair data and adopts the source's version
// (carried in m.Version).
func (s *Server) handleApplyRepair(m *proto.Message) *proto.Message {
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	mods, err := decodeRepair(m.Payload)
	if err != nil {
		return m.Reply(proto.StatusError)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, mod := range mods {
		if mod.Version <= cs.version {
			continue // already have it
		}
		var werr error
		if s.jset != nil {
			werr = s.jset.WriteDirect(m.Chunk, mod.Data, mod.Off)
		} else {
			werr = s.store.WriteAt(m.Chunk, mod.Data, mod.Off)
		}
		if werr != nil {
			return m.Reply(proto.StatusError)
		}
		s.store.Sums().Stamp(m.Chunk, mod.Off, mod.Data)
		cs.lite.Record(mod.Version, mod.Off, len(mod.Data))
		s.bytesWritten.Add(int64(len(mod.Data)))
	}
	cs.adoptVersionLocked(m.Version)
	s.repairCount.Add(1)
	r := m.Reply(proto.StatusOK)
	r.Version = cs.version
	return r
}

// handleFetchChunk serves raw chunk data for recovery transfers. Backups
// resolve journal extents so the fetched data reflects all appended writes
// (§6.2's recovery "from both backup HDDs and SSD journals").
func (s *Server) handleFetchChunk(op *opctx.Op, m *proto.Message) *proto.Message {
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	if err := validRangeIn(m.Off, int(m.Length), cs.span()); err != nil {
		return m.Reply(proto.StatusError)
	}
	// Recovery transfers must carry real bytes: a replacement replica is
	// created without cold refs, so the fetched range is materialized here
	// first and the clone leaves the source fully backed.
	if err := s.ensureCold(op, cs, m.Chunk, m.Off, int(m.Length)); err != nil {
		return m.Reply(proto.StatusError)
	}
	buf := bufpool.Get(int(m.Length))
	// Verified read: a recovery clone that copied rotten bytes would
	// propagate corruption to the replacement replica.
	if err := s.readVerified(nil, m.Chunk, buf, m.Off); err != nil {
		bufpool.Put(buf)
		s.reportDeviceFailure(m.Chunk, err)
		if errors.Is(err, util.ErrCorrupt) {
			return m.Reply(proto.StatusCorrupt)
		}
		return m.Reply(proto.StatusError)
	}
	cs.mu.Lock()
	ver := cs.version
	cs.mu.Unlock()
	r := m.Reply(proto.StatusOK)
	r.Version = ver
	r.Payload = buf
	return r
}

// CloneChunkReq is the JSON payload of OpCloneChunk.
type CloneChunkReq struct {
	// Source is the address of the replica to copy from.
	Source string `json:"source"`
	// Spec and Sources drive an RS reconstruction clone: when Sources is
	// non-empty, the chunk is rebuilt stripe by stripe from N surviving
	// segment holders (the primary is gone) instead of copied from Source.
	Spec    redundancy.Spec `json:"spec,omitempty"`
	Sources []PieceSource   `json:"sources,omitempty"`
}

// cloneFetchSize is the transfer granularity of recovery copies.
const cloneFetchSize = 1 * util.MiB

// handleCloneChunk pulls the whole chunk from a source replica, installing
// its data and version locally. The master invokes it on newly allocated
// replicas during failure recovery (§4.2.2); the transfer is what Fig 12
// measures.
func (s *Server) handleCloneChunk(op *opctx.Op, m *proto.Message) *proto.Message {
	var req CloneChunkReq
	if err := json.Unmarshal(m.Payload, &req); err != nil {
		return m.Reply(proto.StatusError)
	}
	if len(req.Sources) > 0 {
		return s.cloneFromSegments(op, m, req)
	}
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cli, err := s.peers.Get(req.Source)
	if err != nil {
		return m.Reply(proto.StatusError)
	}
	vresp, err := cli.Do(op, &proto.Message{Op: proto.OpGetVersion, Chunk: m.Chunk},
		s.opBudget(op, s.cfg.ReplTimeout))
	if err != nil || vresp.Status != proto.StatusOK {
		return m.Reply(proto.StatusError)
	}
	srcVersion := vresp.Version

	cs.mu.Lock()
	defer cs.mu.Unlock()
	// Pipeline the transfer: several fetches in flight while earlier
	// pieces write locally, so one chunk's recovery is bounded by the
	// slower of source disk, network, and local disk — not their sum. The
	// transfer covers the local slot: one segment when this replica is an
	// RS holder cloning from its predecessor, a full chunk otherwise.
	span := cs.span()
	const clonePipeline = 4
	type piece struct {
		off  int64
		call *transport.PendingCall
	}
	var inflight []piece
	issue := func(off int64) {
		inflight = append(inflight, piece{off, cli.Start(&proto.Message{
			Op:     proto.OpFetchChunk,
			Chunk:  m.Chunk,
			Off:    off,
			Length: cloneFetchSize,
		})})
	}
	// An early exit abandons the calls still in flight so their responses'
	// payload leases are released whenever they land.
	abandon := func() {
		for _, p := range inflight {
			p.call.Abandon()
		}
	}
	next := int64(0)
	for ; next < int64(clonePipeline)*cloneFetchSize && next < span; next += cloneFetchSize {
		issue(next)
	}
	for len(inflight) > 0 {
		p := inflight[0]
		inflight = inflight[1:]
		fresp, ok := <-p.call.Done()
		if !ok || fresp.Status != proto.StatusOK {
			if ok {
				bufpool.Put(fresp.Payload)
			} else {
				s.peers.Drop(req.Source, cli)
			}
			abandon()
			return m.Reply(proto.StatusError)
		}
		if next < span {
			issue(next)
			next += cloneFetchSize
		}
		var werr error
		if s.jset != nil {
			werr = s.jset.WriteDirect(m.Chunk, fresp.Payload, p.off)
		} else {
			werr = s.store.WriteAt(m.Chunk, fresp.Payload, p.off)
		}
		if werr != nil {
			bufpool.Put(fresp.Payload)
			abandon()
			return m.Reply(proto.StatusError)
		}
		s.store.Sums().Stamp(m.Chunk, p.off, fresp.Payload)
		s.bytesWritten.Add(int64(len(fresp.Payload)))
		bufpool.Put(fresp.Payload)
	}
	cs.adoptVersionLocked(srcVersion)
	if m.View > cs.view {
		cs.view = m.View
	}
	s.cloneCount.Add(1)
	r := m.Reply(proto.StatusOK)
	r.Version = cs.version
	return r
}

// handleRepairFrom pulls incremental repair from a source replica: ask for
// the mods since our version (journal lite), apply them; when the source's
// history is garbage-collected, fall back to a full chunk clone (§4.2.1).
func (s *Server) handleRepairFrom(op *opctx.Op, m *proto.Message) *proto.Message {
	var req CloneChunkReq
	if err := json.Unmarshal(m.Payload, &req); err != nil {
		return m.Reply(proto.StatusError)
	}
	cs := s.chunk(m.Chunk)
	if cs == nil {
		return m.Reply(proto.StatusNotFound)
	}
	cs.mu.Lock()
	myVersion := cs.version
	cs.mu.Unlock()

	resp, err := s.peers.Do(op, req.Source, &proto.Message{
		Op:      proto.OpRepairSince,
		Chunk:   m.Chunk,
		Version: myVersion,
	}, s.opBudget(op, 10*s.cfg.ReplTimeout))
	if err != nil {
		return m.Reply(proto.StatusError)
	}
	switch resp.Status {
	case proto.StatusOK:
		apply := &proto.Message{
			ID:      m.ID,
			Op:      proto.OpApplyRepair,
			Chunk:   m.Chunk,
			View:    m.View,
			Version: resp.Version,
			Payload: resp.Payload,
		}
		r := s.handleApplyRepair(apply)
		bufpool.Put(resp.Payload) // applied synchronously; the lease ends here
		return r
	case proto.StatusFallback:
		return s.handleCloneChunk(op, m) // same payload shape: {source}
	default:
		return m.Reply(proto.StatusError)
	}
}

// Upgrade performs the graceful hot upgrade of §5.2: stop admitting
// requests, wait for in-flight ones, switch to the "new process"
// (generation bump), and resume. Real URSA forks a new binary; the
// observable contract — no failed requests, brief pause, state preserved —
// is identical.
func (s *Server) Upgrade() {
	s.upMu.Lock()
	if s.draining {
		s.upMu.Unlock()
		return // an upgrade is already in progress
	}
	s.draining = true
	for s.inflight > 1 { // >1: the OpUpgrade handler itself
		s.upCond.Wait()
	}
	s.upGen.Add(1)
	s.draining = false
	s.upCond.Broadcast()
	s.upMu.Unlock()
}

// validRange checks a sector-aligned in-chunk range.
func validRange(off int64, n int) error {
	return validRangeIn(off, n, util.ChunkSize)
}

// validRangeIn checks a sector-aligned range against a replica's local slot
// span — a full chunk, or one segment on RS holders.
func validRangeIn(off int64, n int, span int64) error {
	if off < 0 || n <= 0 || off%util.SectorSize != 0 || n%util.SectorSize != 0 ||
		off+int64(n) > span {
		return fmt.Errorf("chunkserver: bad range [%d,%d) of %d: %w",
			off, off+int64(n), span, util.ErrOutOfRange)
	}
	return nil
}
