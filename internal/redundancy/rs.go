package redundancy

import "fmt"

// Code is a systematic Reed-Solomon code over GF(2^8) with n data pieces
// and m parity pieces. Piece indices 0..n-1 are data, n..n+m-1 are parity.
// The parity rows come from a Cauchy matrix, whose defining property —
// every square submatrix is invertible — guarantees that ANY n of the n+m
// pieces reconstruct the originals.
type Code struct {
	n, m   int
	parity [][]byte // m rows × n cols: parity_j = Σ_i parity[j][i]·data_i
}

// NewCode builds the RS(n,m) code. n+m must stay within the field
// (n+m <= 255) and both counts must be positive.
func NewCode(n, m int) (*Code, error) {
	if n < 1 || m < 1 || n+m > 255 {
		return nil, fmt.Errorf("redundancy: invalid RS(%d,%d)", n, m)
	}
	// Cauchy matrix C[j][i] = 1/(x_j + y_i) with x_j = n+j, y_i = i.
	// The two index sets are disjoint, so x_j + y_i (XOR) is never zero.
	c := &Code{n: n, m: m, parity: make([][]byte, m)}
	for j := 0; j < m; j++ {
		row := make([]byte, n)
		for i := 0; i < n; i++ {
			row[i] = gfInv(byte(n+j) ^ byte(i))
		}
		c.parity[j] = row
	}
	return c, nil
}

// DataPieces returns n; ParityPieces returns m.
func (c *Code) DataPieces() int   { return c.n }
func (c *Code) ParityPieces() int { return c.m }

// ParityCoeff returns the encoding coefficient of data piece i in parity
// piece j — the scalar a primary multiplies a data delta by before XORing
// it into parity j during a partial-stripe update.
func (c *Code) ParityCoeff(j, i int) byte { return c.parity[j][i] }

// EncodeParity computes parity piece j over equal-length data slices into
// dst (dst is zeroed first; len(dst) must equal the data piece length).
func (c *Code) EncodeParity(j int, data [][]byte, dst []byte) {
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < c.n; i++ {
		gfMulAdd(dst, data[i], c.parity[j][i])
	}
}

// pieceRow returns the generator row of piece idx over the data pieces:
// identity for a data piece, the Cauchy row for a parity piece.
func (c *Code) pieceRow(idx int) []byte {
	row := make([]byte, c.n)
	if idx < c.n {
		row[idx] = 1
	} else {
		copy(row, c.parity[idx-c.n])
	}
	return row
}

// Reconstruct rebuilds piece `want` from any n surviving pieces, given as a
// map from piece index to its bytes (all the same length; exactly the first
// n entries in ascending index order are used). dst receives the result and
// must have the piece length. Returns an error when fewer than n pieces are
// available.
func (c *Code) Reconstruct(avail map[int][]byte, want int, dst []byte) error {
	// Pick n available pieces in ascending index order (determinism).
	idxs := make([]int, 0, c.n)
	for i := 0; i < c.n+c.m && len(idxs) < c.n; i++ {
		if _, ok := avail[i]; ok {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) < c.n {
		return fmt.Errorf("redundancy: %d pieces available, need %d", len(idxs), c.n)
	}

	// Fast path: the wanted piece survived.
	if buf, ok := avail[want]; ok {
		copy(dst, buf)
		return nil
	}

	// Invert the n×n matrix mapping data pieces to the chosen survivors;
	// row k of the inverse then expresses data piece k as a combination of
	// the survivors.
	mat := make([][]byte, c.n)
	inv := make([][]byte, c.n)
	for r, idx := range idxs {
		mat[r] = c.pieceRow(idx)
		inv[r] = make([]byte, c.n)
		inv[r][r] = 1
	}
	if err := gaussInvert(mat, inv); err != nil {
		return err
	}

	// Compose the row for `want` over the survivors: wantRow (over data) ×
	// inverse (data over survivors) = coefficients over survivors.
	wantRow := c.pieceRow(want)
	coeff := make([]byte, c.n)
	for s := 0; s < c.n; s++ {
		var acc byte
		for k := 0; k < c.n; k++ {
			acc ^= gfMul(wantRow[k], inv[k][s])
		}
		coeff[s] = acc
	}

	for i := range dst {
		dst[i] = 0
	}
	for s, idx := range idxs {
		gfMulAdd(dst, avail[idx], coeff[s])
	}
	return nil
}

// gaussInvert performs in-place Gauss-Jordan elimination on mat, applying
// the same row operations to inv, which therefore becomes mat's inverse.
func gaussInvert(mat, inv [][]byte) error {
	n := len(mat)
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if mat[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return fmt.Errorf("redundancy: singular matrix at column %d", col)
		}
		mat[col], mat[pivot] = mat[pivot], mat[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if p := mat[col][col]; p != 1 {
			pi := gfInv(p)
			for i := 0; i < n; i++ {
				mat[col][i] = gfMul(mat[col][i], pi)
				inv[col][i] = gfMul(inv[col][i], pi)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || mat[r][col] == 0 {
				continue
			}
			f := mat[r][col]
			for i := 0; i < n; i++ {
				mat[r][i] ^= gfMul(f, mat[col][i])
				inv[r][i] ^= gfMul(f, inv[col][i])
			}
		}
	}
	return nil
}
