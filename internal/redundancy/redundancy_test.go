package redundancy

import (
	"bytes"
	"math/rand"
	"testing"

	"ursa/internal/util"
)

func TestGFFieldAxioms(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
		if got := gfDiv(byte(a), byte(a)); got != 1 {
			t.Fatalf("a/a = %d for a=%d", got, a)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("mul not commutative: %d %d", a, b)
		}
		if gfMul(a, gfMul(b, c)) != gfMul(gfMul(a, b), c) {
			t.Fatalf("mul not associative: %d %d %d", a, b, c)
		}
		// Distributivity over XOR (field addition).
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("mul not distributive: %d %d %d", a, b, c)
		}
	}
}

// buildStripe encodes random data into n+m pieces of the given length.
func buildStripe(t *testing.T, code *Code, rng *rand.Rand, pieceLen int) [][]byte {
	t.Helper()
	n, m := code.DataPieces(), code.ParityPieces()
	pieces := make([][]byte, n+m)
	for i := 0; i < n; i++ {
		pieces[i] = make([]byte, pieceLen)
		rng.Read(pieces[i])
	}
	for j := 0; j < m; j++ {
		pieces[n+j] = make([]byte, pieceLen)
		code.EncodeParity(j, pieces[:n], pieces[n+j])
	}
	return pieces
}

// TestReconstructAnySubset checks the defining RS property: every piece is
// reconstructible from every n-subset of the n+m pieces.
func TestReconstructAnySubset(t *testing.T) {
	code, err := NewCode(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	pieces := buildStripe(t, code, rng, 512)
	total := len(pieces)

	// Enumerate all n-subsets via bitmask.
	for mask := 0; mask < 1<<total; mask++ {
		if popcount(mask) != code.DataPieces() {
			continue
		}
		avail := make(map[int][]byte)
		for i := 0; i < total; i++ {
			if mask&(1<<i) != 0 {
				avail[i] = pieces[i]
			}
		}
		for want := 0; want < total; want++ {
			got := make([]byte, 512)
			if err := code.Reconstruct(avail, want, got); err != nil {
				t.Fatalf("mask %06b want %d: %v", mask, want, err)
			}
			if !bytes.Equal(got, pieces[want]) {
				t.Fatalf("mask %06b piece %d reconstructed wrong", mask, want)
			}
		}
	}
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestReconstructTooFewPieces(t *testing.T) {
	code, _ := NewCode(4, 2)
	avail := map[int][]byte{0: make([]byte, 8), 3: make([]byte, 8), 5: make([]byte, 8)}
	if err := code.Reconstruct(avail, 1, make([]byte, 8)); err == nil {
		t.Fatal("reconstruct from 3 of 4 pieces succeeded")
	}
}

// TestParityDeltaEqualsReencode is the partial-stripe-update invariant the
// write path depends on: old parity XOR the coefficient-scaled data delta
// equals the parity re-encoded from the new data.
func TestParityDeltaEqualsReencode(t *testing.T) {
	code, _ := NewCode(4, 2)
	rng := rand.New(rand.NewSource(3))
	const pieceLen = 256
	pieces := buildStripe(t, code, rng, pieceLen)

	// Overwrite a sub-range of data piece 2.
	seg, lo, hi := 2, 64, 192
	newData := make([]byte, hi-lo)
	rng.Read(newData)
	oldData := append([]byte(nil), pieces[seg][lo:hi]...)
	copy(pieces[seg][lo:hi], newData)

	for j := 0; j < code.ParityPieces(); j++ {
		want := make([]byte, pieceLen)
		code.EncodeParity(j, pieces[:4], want)

		got := append([]byte(nil), pieces[4+j]...)
		gfMulAddDelta(got[lo:hi], newData, oldData, code.ParityCoeff(j, seg))
		if !bytes.Equal(got, want) {
			t.Fatalf("parity %d: delta update != re-encode", j)
		}
	}
}

// TestDeltaOrderIndependence: two writes hitting the same parity range from
// different data segments may apply their deltas in either order.
func TestDeltaOrderIndependence(t *testing.T) {
	code, _ := NewCode(4, 2)
	rng := rand.New(rand.NewSource(4))
	const pieceLen = 128
	pieces := buildStripe(t, code, rng, pieceLen)

	mkDelta := func(seg int) ([]byte, []byte) {
		nb := make([]byte, pieceLen)
		rng.Read(nb)
		ob := append([]byte(nil), pieces[seg]...)
		return nb, ob
	}
	n0, o0 := mkDelta(0)
	n1, o1 := mkDelta(1)

	apply := func(parity []byte, j int, order []int) []byte {
		out := append([]byte(nil), parity...)
		for _, w := range order {
			if w == 0 {
				gfMulAddDelta(out, n0, o0, code.ParityCoeff(j, 0))
			} else {
				gfMulAddDelta(out, n1, o1, code.ParityCoeff(j, 1))
			}
		}
		return out
	}
	for j := 0; j < code.ParityPieces(); j++ {
		a := apply(pieces[4+j], j, []int{0, 1})
		b := apply(pieces[4+j], j, []int{1, 0})
		if !bytes.Equal(a, b) {
			t.Fatalf("parity %d: delta application not order independent", j)
		}
		// And both equal the re-encode of the final data state.
		final := [][]byte{n0, n1, pieces[2], pieces[3]}
		want := make([]byte, pieceLen)
		code.EncodeParity(j, final, want)
		if !bytes.Equal(a, want) {
			t.Fatalf("parity %d: commuted deltas != re-encode", j)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{}, true},
		{Spec{Kind: KindMirror}, true},
		{Spec{Kind: KindRS, N: 4, M: 2}, true},
		{Spec{Kind: KindRS, N: 8, M: 3}, true},
		{Spec{Kind: KindRS, N: 0, M: 2}, false},
		{Spec{Kind: KindRS, N: 4, M: 0}, false},
		{Spec{Kind: KindRS, N: 200, M: 100}, false},
		{Spec{Kind: "raid5"}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
	if got := (Spec{Kind: KindRS, N: 4, M: 2}).SegSize(); got != util.ChunkSize/4 {
		t.Errorf("SegSize = %d", got)
	}
	if got := (Spec{}).SegSize(); got != util.ChunkSize {
		t.Errorf("mirror SegSize = %d", got)
	}
	if got := (Spec{Kind: KindRS, N: 4, M: 2}).BackupCount(3); got != 6 {
		t.Errorf("rs BackupCount = %d", got)
	}
	if got := (Spec{}).BackupCount(3); got != 2 {
		t.Errorf("mirror BackupCount = %d", got)
	}
}

func TestPieceRanges(t *testing.T) {
	spec := Spec{Kind: KindRS, N: 4, M: 2}
	seg := spec.SegSize()

	// Entirely inside one segment.
	ps := PieceRanges(spec, seg+4096, 8192)
	if len(ps) != 1 || ps[0].Seg != 1 || ps[0].SegOff != 4096 || ps[0].BufLo != 0 || ps[0].BufHi != 8192 {
		t.Fatalf("single-segment pieces = %+v", ps)
	}

	// Straddling a segment boundary.
	ps = PieceRanges(spec, seg-512, 1024)
	if len(ps) != 2 {
		t.Fatalf("straddle pieces = %+v", ps)
	}
	if ps[0].Seg != 0 || ps[0].SegOff != seg-512 || ps[0].BufHi != 512 {
		t.Fatalf("straddle piece 0 = %+v", ps[0])
	}
	if ps[1].Seg != 1 || ps[1].SegOff != 0 || ps[1].BufLo != 512 || ps[1].BufHi != 1024 {
		t.Fatalf("straddle piece 1 = %+v", ps[1])
	}

	// Mirror: one piece, unchanged offsets.
	ps = PieceRanges(Spec{}, 12345*512, 2048)
	if len(ps) != 1 || ps[0].SegOff != 12345*512 {
		t.Fatalf("mirror pieces = %+v", ps)
	}
}

// TestRSPlanWrite checks shipment planning: every backup gets exactly one
// shipment, and applying them to materialized segments matches re-encoding.
func TestRSPlanWrite(t *testing.T) {
	spec := Spec{Kind: KindRS, N: 4, M: 2}
	strat, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	rs := strat.(*RS)
	rng := rand.New(rand.NewSource(5))

	// A write straddling the segment 1 → 2 boundary.
	const wlen = 4096
	off := spec.SegSize()*2 - 1024
	data := make([]byte, wlen)
	old := make([]byte, wlen)
	rng.Read(data)
	rng.Read(old)

	ships, err := rs.PlanWrite(off, data, old, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(ships) != 6 {
		t.Fatalf("got %d shipments, want 6", len(ships))
	}
	seen := make(map[int]Shipment)
	for _, sh := range ships {
		if _, dup := seen[sh.Target]; dup {
			t.Fatalf("duplicate shipment for target %d", sh.Target)
		}
		seen[sh.Target] = sh
	}
	// Targets 1 and 2 are affected data holders; 0 and 3 get bumps; 4,5 xor.
	for _, tgt := range []int{1, 2} {
		if seen[tgt].Bump || seen[tgt].Xor || len(seen[tgt].Data) == 0 {
			t.Errorf("data shipment %d = %+v", tgt, seen[tgt])
		}
	}
	for _, tgt := range []int{0, 3} {
		if !seen[tgt].Bump {
			t.Errorf("target %d should be a version bump: %+v", tgt, seen[tgt])
		}
	}
	for _, tgt := range []int{4, 5} {
		if !seen[tgt].Xor || len(seen[tgt].Data) == 0 {
			t.Errorf("parity shipment %d = %+v", tgt, seen[tgt])
		}
	}

	// Verify the parity deltas algebraically: delta at intra-offset x must
	// equal sum over affected pieces of coeff*(new^old) at that position.
	pieces := PieceRanges(spec, off, wlen)
	for j := 0; j < 2; j++ {
		sh := seen[4+j]
		want := make([]byte, len(sh.Data))
		for _, p := range pieces {
			dst := want[p.SegOff-sh.Off : p.SegOff-sh.Off+int64(p.BufHi-p.BufLo)]
			gfMulAddDelta(dst, data[p.BufLo:p.BufHi], old[p.BufLo:p.BufHi], rs.Code().ParityCoeff(j, p.Seg))
		}
		if !bytes.Equal(sh.Data, want) {
			t.Fatalf("parity shipment %d delta mismatch", j)
		}
	}
}

func TestCommitRules(t *testing.T) {
	var m Mirror
	// repl 3 => 2 backups: with 1 backup ack (2 of 3 replicas) commit; 0 acks no.
	if !m.CommitOK(1, 2) || m.CommitOK(0, 2) {
		t.Error("mirror commit rule wrong")
	}
	strat, _ := New(Spec{Kind: KindRS, N: 4, M: 2})
	if !strat.CommitOK(4, 6) || !strat.CommitOK(5, 6) || strat.CommitOK(3, 6) {
		t.Error("rs commit rule wrong")
	}
}
