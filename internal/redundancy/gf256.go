// Package redundancy defines how a chunk's backup tier is laid out and
// encoded. The backup strategy was historically hardwired to full mirrored
// replicas; this package turns it into a pluggable policy with two
// implementations: Mirror (byte-for-byte copies, today's behavior) and
// RS(N,M) Reed-Solomon coding, which splits each 64 MB chunk into N data
// segments plus M parity segments on distinct backup machines and survives
// any M segment losses at (N+M)/N× storage instead of M+1×.
//
// The arithmetic lives in GF(2^8) with the usual polynomial 0x11d, the
// field every production erasure coder uses: bytes are field elements,
// addition is XOR, and multiplication goes through log/exp tables.
package redundancy

// gfPoly is the irreducible polynomial x^8+x^4+x^3+x^2+1 (0x11d).
const gfPoly = 0x11d

var (
	gfExp [512]byte // gfExp[i] = g^i, doubled so Mul needs no mod 255
	gfLog [256]byte // gfLog[x] = i with g^i = x; gfLog[0] unused
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a (a must be nonzero).
func gfInv(a byte) byte {
	if a == 0 {
		panic("redundancy: inverse of zero")
	}
	return gfExp[255-int(gfLog[a])]
}

// gfDiv returns a/b (b must be nonzero).
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("redundancy: division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfMulAdd computes dst[i] ^= c*src[i] — the accumulate step of every
// encode, decode, and parity-delta computation. c==0 is a no-op; c==1 is a
// plain XOR, peeled off because data coefficients are often 1.
func gfMulAdd(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range src {
			dst[i] ^= src[i]
		}
		return
	}
	lc := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[lc+int(gfLog[s])]
		}
	}
}

// gfMulAddDelta computes dst[i] ^= c*(a[i]^b[i]) — the parity-delta step
// of a partial-stripe update, fused so no intermediate buffer is needed.
func gfMulAddDelta(dst, a, b []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range a {
			dst[i] ^= a[i] ^ b[i]
		}
		return
	}
	lc := int(gfLog[c])
	for i := range a {
		if d := a[i] ^ b[i]; d != 0 {
			dst[i] ^= gfExp[lc+int(gfLog[d])]
		}
	}
}
