package redundancy

import (
	"fmt"

	"ursa/internal/util"
)

// Spec names a redundancy policy for a vdisk. The zero value means
// mirroring (the historical default), so existing metadata and requests
// deserialize unchanged. It travels in vdisk metadata and in chunk-create
// requests, so every replica knows its own role in the stripe.
type Spec struct {
	// Kind selects the strategy: "" or "mirror" for full replicas,
	// "rs" for Reed-Solomon segment coding.
	Kind string `json:"kind,omitempty"`
	// N and M are the data and parity segment counts for Kind "rs".
	N int `json:"n,omitempty"`
	M int `json:"m,omitempty"`
}

// Strategy kinds.
const (
	KindMirror = "mirror"
	KindRS     = "rs"
)

// IsRS reports whether the spec selects Reed-Solomon coding.
func (s Spec) IsRS() bool { return s.Kind == KindRS }

// Validate rejects malformed specs. ChunkSize must divide evenly into N
// sector-aligned segments so that every logical sector maps to exactly one
// data segment sector.
func (s Spec) Validate() error {
	switch s.Kind {
	case "", KindMirror:
		return nil
	case KindRS:
		if s.N < 1 || s.M < 1 || s.N+s.M > 255 {
			return fmt.Errorf("redundancy: invalid rs(%d,%d)", s.N, s.M)
		}
		if util.ChunkSize%int64(s.N) != 0 || (util.ChunkSize/int64(s.N))%util.SectorSize != 0 {
			return fmt.Errorf("redundancy: rs(%d,%d): chunk size %d not divisible into sector-aligned segments", s.N, s.M, util.ChunkSize)
		}
		return nil
	default:
		return fmt.Errorf("redundancy: unknown kind %q", s.Kind)
	}
}

// SegSize returns the backup slot size: a full chunk for mirroring, one
// segment (ChunkSize/N) for RS.
func (s Spec) SegSize() int64 {
	if s.IsRS() {
		return util.ChunkSize / int64(s.N)
	}
	return util.ChunkSize
}

// BackupCount returns how many backup replicas a chunk needs: repl-1
// mirrors, or N+M segment holders.
func (s Spec) BackupCount(repl int) int {
	if s.IsRS() {
		return s.N + s.M
	}
	return repl - 1
}

func (s Spec) String() string {
	if s.IsRS() {
		return fmt.Sprintf("rs(%d,%d)", s.N, s.M)
	}
	return KindMirror
}

// Piece is the intersection of a logical chunk range with one data
// segment: bytes buf[BufLo:BufHi] of the caller's buffer live at
// [SegOff, SegOff+BufHi-BufLo) within segment Seg.
type Piece struct {
	Seg    int
	SegOff int64
	BufLo  int
	BufHi  int
}

// PieceRanges maps the logical chunk range [off, off+n) onto data
// segments under spec. For mirror specs it returns a single piece covering
// the whole range in "segment" 0 (the mirror copy).
func PieceRanges(spec Spec, off int64, n int) []Piece {
	seg := spec.SegSize()
	var out []Piece
	for lo := off; lo < off+int64(n); {
		si := int(lo / seg)
		end := (int64(si) + 1) * seg
		if end > off+int64(n) {
			end = off + int64(n)
		}
		out = append(out, Piece{
			Seg:    si,
			SegOff: lo - int64(si)*seg,
			BufLo:  int(lo - off),
			BufHi:  int(end - off),
		})
		lo = end
	}
	return out
}

// Shipment is one message of a strategy's backup fan-out for a write:
// deliver Data at Off of backup Target's local slot. Exactly one shipment
// targets each backup so that every holder sees every version.
type Shipment struct {
	// Target indexes the chunk's backup list.
	Target int
	// Off is the offset within the target's local slot.
	Off int64
	// Data is the payload: absolute bytes, or a parity delta when Xor is
	// set (the holder reads-XORs-writes instead of overwriting).
	Data []byte
	Xor  bool
	// Bump marks an empty version-bump shipment: the holder advances its
	// version without touching its data (its segment is unaffected by this
	// write, but version lockstep across all holders must hold).
	Bump bool
}

// Strategy turns a primary's write into its backup fan-out and decides
// when a partially acknowledged write may commit.
type Strategy interface {
	// Spec returns the policy this strategy implements.
	Spec() Spec
	// NeedsOldData reports whether PlanWrite requires the pre-write
	// contents of the target range (RS parity deltas do).
	NeedsOldData() bool
	// PlanWrite builds the per-backup shipments for writing data at off.
	// old is the pre-write content of the same range when NeedsOldData.
	PlanWrite(off int64, data, old []byte, backups int) ([]Shipment, error)
	// CommitOK reports whether a write that reached acks of the backups
	// (the primary's own local write succeeded, and the fan-out window
	// expired) may still commit.
	CommitOK(acks, backups int) bool
}

// New returns the strategy for spec (validating it first).
func New(spec Spec) (Strategy, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !spec.IsRS() {
		return Mirror{}, nil
	}
	code, err := NewCode(spec.N, spec.M)
	if err != nil {
		return nil, err
	}
	return &RS{spec: spec, code: code}, nil
}

// Mirror is the historical strategy: every backup receives the full write,
// and a write commits once a majority of replicas (primary included) have
// it — the paper's all-or-majority-after-timeout rule.
type Mirror struct{}

// Spec implements Strategy.
func (Mirror) Spec() Spec { return Spec{Kind: KindMirror} }

// NeedsOldData implements Strategy.
func (Mirror) NeedsOldData() bool { return false }

// PlanWrite implements Strategy: one full copy per backup.
func (Mirror) PlanWrite(off int64, data, old []byte, backups int) ([]Shipment, error) {
	ships := make([]Shipment, backups)
	for i := range ships {
		ships[i] = Shipment{Target: i, Off: off, Data: data}
	}
	return ships, nil
}

// CommitOK implements Strategy: majority including the primary.
func (Mirror) CommitOK(acks, backups int) bool {
	return (acks+1)*2 > backups+1
}

// RS implements Reed-Solomon segment coding. Backup i < N holds data
// segment i (bytes [i*SegSize, (i+1)*SegSize) of the chunk); backup N+j
// holds parity segment j. Partial-stripe writes ship absolute bytes to the
// affected data holders and coefficient-scaled XOR deltas to every parity
// holder; deltas commute, so concurrent writes to different chunk ranges
// may apply in any order at a parity holder without losing updates.
type RS struct {
	spec Spec
	code *Code
}

// Spec implements Strategy.
func (r *RS) Spec() Spec { return r.spec }

// Code exposes the underlying erasure code (for reconstruction paths).
func (r *RS) Code() *Code { return r.code }

// NeedsOldData implements Strategy: parity deltas are new XOR old.
func (r *RS) NeedsOldData() bool { return true }

// PlanWrite implements Strategy. Every backup gets exactly one shipment:
// affected data holders their new absolute bytes, parity holders one
// contiguous XOR-delta covering the union of affected intra-segment ranges
// (gaps zero-padded — XOR with zero is a no-op), and unaffected data
// holders an empty version bump.
func (r *RS) PlanWrite(off int64, data, old []byte, backups int) ([]Shipment, error) {
	if backups != r.spec.N+r.spec.M {
		return nil, fmt.Errorf("redundancy: rs(%d,%d) needs %d backups, have %d", r.spec.N, r.spec.M, r.spec.N+r.spec.M, backups)
	}
	if len(old) != len(data) {
		return nil, fmt.Errorf("redundancy: old data %d bytes, want %d", len(old), len(data))
	}
	pieces := PieceRanges(r.spec, off, len(data))
	ships := make([]Shipment, 0, backups)
	affected := make(map[int]bool, len(pieces))
	lo, hi := int64(-1), int64(-1)
	for _, p := range pieces {
		// Own copy, not a sub-slice of data: the fan-out may outlive the
		// caller's payload buffer (stragglers keep applying after a degraded
		// commit, duplicates resend the cached plan), and data may be a
		// pooled buffer recycled as soon as the caller releases it.
		ships = append(ships, Shipment{Target: p.Seg, Off: p.SegOff,
			Data: append([]byte(nil), data[p.BufLo:p.BufHi]...)})
		affected[p.Seg] = true
		pe := p.SegOff + int64(p.BufHi-p.BufLo)
		if lo < 0 || p.SegOff < lo {
			lo = p.SegOff
		}
		if pe > hi {
			hi = pe
		}
	}
	for j := 0; j < r.spec.M; j++ {
		delta := make([]byte, hi-lo)
		for _, p := range pieces {
			c := r.code.ParityCoeff(j, p.Seg)
			dst := delta[p.SegOff-lo : p.SegOff-lo+int64(p.BufHi-p.BufLo)]
			gfMulAddDelta(dst, data[p.BufLo:p.BufHi], old[p.BufLo:p.BufHi], c)
		}
		ships = append(ships, Shipment{Target: r.spec.N + j, Off: lo, Data: delta, Xor: true})
	}
	for i := 0; i < r.spec.N; i++ {
		if !affected[i] {
			ships = append(ships, Shipment{Target: i, Bump: true})
		}
	}
	return ships, nil
}

// CommitOK implements Strategy: with the primary's copy intact, any N
// acknowledged segment holders leave every byte reconstructible, so up to
// M dead holders never fail a write.
func (r *RS) CommitOK(acks, backups int) bool {
	return acks >= r.spec.N
}
