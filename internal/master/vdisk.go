package master

import (
	"encoding/json"
	"errors"
	"fmt"

	"ursa/internal/blockstore"
	"ursa/internal/chunkserver"
	"ursa/internal/proto"
	"ursa/internal/redundancy"
	"ursa/internal/util"
)

// defaultStripeUnit is the striping block size when a vdisk enables
// striping (§3.4).
const defaultStripeUnit = 128 * util.KiB

func (m *Master) handleCreate(msg *proto.Message) jsonResult {
	var req CreateVDiskReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	meta, err := m.CreateVDisk(req)
	if err != nil {
		switch {
		case errors.Is(err, util.ErrExists):
			return fail(proto.StatusExists)
		case errors.Is(err, util.ErrQuota):
			return fail(proto.StatusQuota)
		default:
			return fail(proto.StatusError)
		}
	}
	return ok(meta)
}

// CreateVDisk allocates a vdisk: places every chunk's replicas, creates
// them on the chunk servers, and records the metadata. Placement is
// round-robin with the constraint that no two replicas of a chunk share a
// machine (§3.4).
func (m *Master) CreateVDisk(req CreateVDiskReq) (*VDiskMeta, error) {
	if req.Size <= 0 || req.Size%util.SectorSize != 0 {
		return nil, fmt.Errorf("master: bad vdisk size %d: %w", req.Size, util.ErrOutOfRange)
	}
	if req.StripeGroup <= 0 {
		req.StripeGroup = 1
	}
	if req.StripeUnit <= 0 {
		req.StripeUnit = defaultStripeUnit
	}
	// The striping arithmetic interleaves whole stripe units across a
	// group, so the unit must tile chunks exactly.
	if util.ChunkSize%req.StripeUnit != 0 {
		return nil, fmt.Errorf("master: stripe unit %d does not divide the %d chunk size: %w",
			req.StripeUnit, int64(util.ChunkSize), util.ErrOutOfRange)
	}
	repl := req.Replication
	if repl <= 0 {
		repl = m.cfg.Replication
	}
	if err := req.Redundancy.Validate(); err != nil {
		return nil, fmt.Errorf("master: vdisk %q: %w", req.Name, err)
	}
	nchunks := int(util.CeilDiv(req.Size, util.ChunkSize))
	// Round chunk count up to a whole number of stripe groups so the
	// striping arithmetic never runs off the end.
	if rem := nchunks % req.StripeGroup; rem != 0 {
		nchunks += req.StripeGroup - rem
	}

	m.mu.Lock()
	if m.replicationEnabled() && !m.primary {
		m.mu.Unlock()
		return nil, m.errNotPrimary("create " + req.Name)
	}
	if _, exists := m.byName[req.Name]; exists {
		m.mu.Unlock()
		return nil, fmt.Errorf("master: vdisk %q: %w", req.Name, util.ErrExists)
	}
	m.nextID++
	id := m.nextID
	chunks := make([]ChunkMeta, nchunks)
	var placeErr error
	for i := range chunks {
		chunks[i], placeErr = m.placeChunkLocked(repl, req.Redundancy)
		if placeErr != nil {
			m.mu.Unlock()
			return nil, placeErr
		}
	}
	meta := VDiskMeta{
		ID:             id,
		Name:           req.Name,
		Size:           req.Size,
		StripeGroup:    req.StripeGroup,
		StripeUnit:     req.StripeUnit,
		Chunks:         chunks,
		LeaseTTL:       m.cfg.LeaseTTL,
		WriteRateLimit: m.cfg.WriteRateLimit,
		Redundancy:     req.Redundancy,
	}
	m.vdisks[id] = &vdisk{meta: meta}
	m.byName[req.Name] = id
	m.appendLocked(entryKindPutVDisk, entryPutVDisk{
		Meta: meta.Clone(), NextID: m.nextID,
		NextPrimary: m.nextPrimary, NextBackup: m.nextBackup,
	})
	m.mu.Unlock()

	// Create replicas on the servers (outside the lock: RPC fan-out).
	for i, cm := range chunks {
		if err := m.createChunkReplicas(blockstore.MakeChunkID(id, uint32(i)), cm, req.Redundancy); err != nil {
			m.deleteVDiskByID(id) // best-effort cleanup
			return nil, err
		}
	}
	out := meta.Clone()
	return &out, nil
}

// placeChunkLocked picks the chunk's replica set: first an SSD server (the
// preferred primary), then backups on HDD servers (hybrid mode) or SSD
// servers (SSD-only mode), all on distinct machines. Mirroring places
// repl-1 backups; RS(N,M) places N+M segment holders, position-keyed by
// their list index.
func (m *Master) placeChunkLocked(repl int, spec redundancy.Spec) (ChunkMeta, error) {
	repl = 1 + spec.BackupCount(repl)
	var ssds, backupsPool []serverInfo
	for _, s := range m.servers {
		if s.ssd {
			ssds = append(ssds, s)
		}
		if m.cfg.HybridMode {
			if !s.ssd {
				backupsPool = append(backupsPool, s)
			}
		} else if s.ssd {
			backupsPool = append(backupsPool, s)
		}
	}
	if len(ssds) == 0 || len(backupsPool) == 0 {
		return ChunkMeta{}, fmt.Errorf("master: no eligible servers: %w", util.ErrQuota)
	}
	cm := ChunkMeta{View: 1}
	used := map[string]bool{}

	primary := ssds[m.nextPrimary%len(ssds)]
	m.nextPrimary++
	cm.Replicas = append(cm.Replicas, ReplicaInfo{Addr: primary.addr, SSD: true})
	used[primary.machine] = true

	for tries := 0; len(cm.Replicas) < repl && tries < 4*len(backupsPool); tries++ {
		cand := backupsPool[m.nextBackup%len(backupsPool)]
		m.nextBackup++
		if used[cand.machine] || cand.addr == primary.addr {
			continue
		}
		used[cand.machine] = true
		cm.Replicas = append(cm.Replicas, ReplicaInfo{Addr: cand.addr, SSD: cand.ssd})
	}
	if len(cm.Replicas) < repl {
		return ChunkMeta{}, fmt.Errorf("master: cannot place %d replicas on distinct machines: %w",
			repl, util.ErrQuota)
	}
	return cm, nil
}

// createChunkReplicas issues OpCreateChunk to every replica; the primary
// learns its backup list, and RS segment holders learn which segment of
// the chunk their (smaller) slot stores.
func (m *Master) createChunkReplicas(id blockstore.ChunkID, cm ChunkMeta, spec redundancy.Spec) error {
	for i, r := range cm.Replicas {
		req := chunkserver.CreateChunkReq{View: cm.View, Redundancy: spec}
		if i == 0 {
			for _, b := range cm.Replicas[1:] {
				req.Backups = append(req.Backups, b.Addr)
			}
		} else if spec.IsRS() {
			req.Holder = true
			req.Seg = i - 1
		}
		// A cloned chunk starts object-backed: every replica gets the extent
		// table and demand-fetches on first access.
		if len(cm.Cold) > 0 {
			req.Cold = cm.Cold
			req.ObjAddr = m.cfg.ObjstoreAddr
		}
		payload, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := m.call(r.Addr, &proto.Message{
			Op:      proto.OpCreateChunk,
			Chunk:   id,
			Payload: payload,
		})
		if err != nil {
			return fmt.Errorf("master: create %v on %s: %w", id, r.Addr, err)
		}
		if resp.Status != proto.StatusOK && resp.Status != proto.StatusExists {
			return fmt.Errorf("master: create %v on %s: %s", id, r.Addr, resp.Status)
		}
	}
	return nil
}

func (m *Master) handleOpen(msg *proto.Message) jsonResult {
	var req OpenVDiskReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.replicationEnabled() && !m.primary {
		return m.notPrimaryLocked()
	}
	id, okName := m.byName[req.Name]
	if !okName {
		return fail(proto.StatusNotFound)
	}
	vd := m.vdisks[id]
	now := m.cfg.Clock.Now()
	if vd.lease.holder != "" && vd.lease.holder != req.Client &&
		now.Before(vd.lease.expiry) {
		return fail(proto.StatusLeaseHeld)
	}
	vd.lease = lease{holder: req.Client, expiry: now.Add(m.cfg.LeaseTTL)}
	m.appendLocked(entryKindLease, entryLease{ID: id, Holder: vd.lease.holder, Expiry: vd.lease.expiry})
	return ok(vd.meta.Clone())
}

func (m *Master) handleRenew(msg *proto.Message) jsonResult {
	var req LeaseReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.replicationEnabled() && !m.primary {
		return m.notPrimaryLocked()
	}
	vd, okID := m.vdisks[req.ID]
	if !okID {
		return fail(proto.StatusNotFound)
	}
	now := m.cfg.Clock.Now()
	// Reclaim-on-renew: lease shipping is asynchronous, so a promoted
	// standby may have missed the newest grant. An unheld (or expired)
	// lease goes to the first renewer — the legitimate holder's renew loop
	// reclaims it within one renewal period, and a second client racing it
	// still loses by the ordinary holder check.
	if vd.lease.holder == "" || now.After(vd.lease.expiry) {
		if vd.lease.holder != "" && vd.lease.holder != req.Client {
			return fail(proto.StatusLeaseHeld)
		}
		vd.lease = lease{holder: req.Client, expiry: now.Add(m.cfg.LeaseTTL)}
		m.appendLocked(entryKindLease, entryLease{ID: req.ID, Holder: vd.lease.holder, Expiry: vd.lease.expiry})
		return ok(nil)
	}
	if vd.lease.holder != req.Client {
		return fail(proto.StatusLeaseHeld)
	}
	vd.lease.expiry = now.Add(m.cfg.LeaseTTL)
	m.appendLocked(entryKindLease, entryLease{ID: req.ID, Holder: vd.lease.holder, Expiry: vd.lease.expiry})
	return ok(nil)
}

func (m *Master) handleClose(msg *proto.Message) jsonResult {
	var req LeaseReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.replicationEnabled() && !m.primary {
		return m.notPrimaryLocked()
	}
	vd, okID := m.vdisks[req.ID]
	if !okID {
		return fail(proto.StatusNotFound)
	}
	if vd.lease.holder == req.Client {
		vd.lease = lease{}
		m.appendLocked(entryKindLease, entryLease{ID: req.ID})
	}
	return ok(nil)
}

func (m *Master) handleGet(msg *proto.Message) jsonResult {
	var req GetVDiskReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := req.ID
	if id == 0 {
		var okName bool
		id, okName = m.byName[req.Name]
		if !okName {
			return fail(proto.StatusNotFound)
		}
	}
	vd, okID := m.vdisks[id]
	if !okID {
		return fail(proto.StatusNotFound)
	}
	return ok(vd.meta.Clone())
}

func (m *Master) handleDelete(msg *proto.Message) jsonResult {
	var req GetVDiskReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	m.mu.Lock()
	id := req.ID
	if id == 0 {
		id = m.byName[req.Name]
	}
	_, okID := m.vdisks[id]
	m.mu.Unlock()
	if !okID {
		return fail(proto.StatusNotFound)
	}
	m.deleteVDiskByID(id)
	return ok(nil)
}

// deleteVDiskByID removes metadata and deletes chunk replicas best-effort.
func (m *Master) deleteVDiskByID(id uint32) {
	m.mu.Lock()
	vd, okID := m.vdisks[id]
	if !okID {
		m.mu.Unlock()
		return
	}
	delete(m.vdisks, id)
	delete(m.byName, vd.meta.Name)
	m.appendLocked(entryKindDelete, entryDelete{ID: id})
	chunks := vd.meta.Clone().Chunks // RPC fan-out below runs unlocked
	m.mu.Unlock()
	for i, cm := range chunks {
		for _, r := range cm.Replicas {
			_, _ = m.call(r.Addr, &proto.Message{
				Op:    proto.OpDeleteChunk,
				Chunk: blockstore.MakeChunkID(id, uint32(i)),
			})
		}
	}
}
