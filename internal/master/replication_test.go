package master

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/chunkserver"
	"ursa/internal/clock"
	"ursa/internal/journal"
	"ursa/internal/proto"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// replEnv is a replicated metadata service on a simnet: nMasters masters
// plus hybrid chunkserver machines, on a scaled clock so lease expiry and
// promotion timeouts can be fast-forwarded with Advance.
type replEnv struct {
	net     *transport.SimNet
	clk     *clock.Scaled
	masters []*Master
	addrs   []string
	closer  []func()
}

func newReplEnv(t *testing.T, nMasters, nMachines int) *replEnv {
	t.Helper()
	clk := clock.NewScaled(0.05)
	net := transport.NewSimNet(clk, time.Microsecond)
	e := &replEnv{net: net, clk: clk}
	for i := 0; i < nMasters; i++ {
		addr := "master"
		if i > 0 {
			addr = fmt.Sprintf("master-%d", i)
		}
		e.addrs = append(e.addrs, addr)
	}
	for _, addr := range e.addrs {
		l, err := net.Listen(addr, transport.NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		m := New(Config{
			Addr:       addr,
			Clock:      clk,
			Dialer:     net.Dialer(addr, transport.NodeConfig{}),
			LeaseTTL:   10 * time.Second,
			RPCTimeout: 2 * time.Second,
			PrimacyTTL: 2 * time.Second,
			Peers:      append([]string(nil), e.addrs...),
			HybridMode: true,
		})
		m.Serve(l)
		e.masters = append(e.masters, m)
		e.closer = append(e.closer, m.Close)
	}

	for i := 0; i < nMachines; i++ {
		machine := fmt.Sprintf("rm%d", i)
		mk := func(addr string, role chunkserver.Role) {
			var store *blockstore.Store
			var jset *journal.Set
			if role == chunkserver.RolePrimary {
				store = blockstore.New(simdisk.NewSSD(fastSSD(), clk), 0)
			} else {
				hdd := simdisk.NewHDD(fastHDD(), clk)
				store = blockstore.New(hdd, util.AlignDown(hdd.Size()/2, util.ChunkSize))
				jset = journal.NewSet(clk, store, journal.DefaultConfig())
				jset.AddSSDJournal(addr+"-j", simdisk.NewSSD(fastSSD(), clk), 0, 64*util.MiB)
				jset.Start()
			}
			srv := chunkserver.New(chunkserver.Config{
				Addr: addr, Role: role, Clock: clk,
				Dialer:      net.Dialer(addr, transport.NodeConfig{}),
				ReplTimeout: time.Second,
				MasterAddrs: append([]string(nil), e.addrs...),
			}, store, jset)
			l, err := net.Listen(addr, transport.NodeConfig{})
			if err != nil {
				t.Fatal(err)
			}
			srv.Serve(l)
			e.closer = append(e.closer, srv.Close)
			e.masters[0].AddServer(addr, machine, role == chunkserver.RolePrimary)
		}
		mk(machine+"/ssd", chunkserver.RolePrimary)
		mk(machine+"/hdd", chunkserver.RoleBackup)
	}
	t.Cleanup(func() {
		for i := len(e.closer) - 1; i >= 0; i-- {
			e.closer[i]()
		}
	})
	return e
}

// callOn drives one master's RPC handler directly.
func callOn(t *testing.T, m *Master, op proto.Op, req, out any) proto.Status {
	t.Helper()
	var payload []byte
	if req != nil {
		payload, _ = json.Marshal(req)
	}
	resp := m.Handle(&proto.Message{Op: op, Payload: payload})
	if resp.Status == proto.StatusOK && out != nil && len(resp.Payload) > 0 {
		if err := json.Unmarshal(resp.Payload, out); err != nil {
			t.Fatalf("unmarshal %T: %v", out, err)
		}
	}
	return resp.Status
}

// quiesce waits (in real time) until every live master's log has caught up
// with the primary's.
func (e *replEnv) quiesce(t *testing.T, primary *Master, standbys ...*Master) {
	t.Helper()
	want := primary.LogSeq()
	deadline := time.Now().Add(10 * time.Second)
	for {
		caught := true
		for _, s := range standbys {
			if s.LogSeq() != want {
				caught = false
				break
			}
		}
		if caught {
			return
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("standbys never caught up to seq %d", want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitPromoted polls until one of the candidate standbys claims primacy
// and returns it. Rank staggering makes the lowest rank the likely winner,
// but it is a tiebreaker, not a guarantee — under scheduler load a higher
// rank can win and the lower ranks adopt its claim.
func waitPromoted(t *testing.T, candidates ...*Master) *Master {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, m := range candidates {
			if m.IsPrimary() {
				return m
			}
		}
		if !time.Now().Before(deadline) {
			t.Fatal("no standby promoted")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// snapJSON renders a snapshot for comparison: JSON strips time.Time
// monotonic readings (the primary's in-memory lease expiries carry them,
// the standby's round-tripped copies do not) and orders map keys.
func snapJSON(t *testing.T, s StateSnapshot) string {
	t.Helper()
	b, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPromotedStandbyStateMatchesPrimary is the golden-state test: after a
// burst of metadata traffic quiesces, every standby's replicated state is
// byte-identical to the primary's; and the standby promoted after the
// primary's death serves exactly the pre-crash metadata at a higher epoch.
func TestPromotedStandbyStateMatchesPrimary(t *testing.T) {
	e := newReplEnv(t, 3, 3)
	primary := e.masters[0]

	for i := 0; i < 4; i++ {
		var meta VDiskMeta
		if st := callOn(t, primary, proto.MOpCreateVDisk, CreateVDiskReq{
			Name: fmt.Sprintf("vd%d", i), Size: 2 * util.ChunkSize,
		}, &meta); st != proto.StatusOK {
			t.Fatalf("create vd%d: %s", i, st)
		}
	}
	var opened VDiskMeta
	if st := callOn(t, primary, proto.MOpOpenVDisk,
		OpenVDiskReq{Name: "vd1", Client: "tenant-a"}, &opened); st != proto.StatusOK {
		t.Fatalf("open: %s", st)
	}
	if st := callOn(t, primary, proto.MOpDeleteVDisk,
		GetVDiskReq{Name: "vd3"}, nil); st != proto.StatusOK {
		t.Fatalf("delete: %s", st)
	}

	e.quiesce(t, primary, e.masters[1], e.masters[2])
	before := snapJSON(t, primary.Snapshot())
	for i, s := range e.masters[1:] {
		if got := snapJSON(t, s.Snapshot()); got != before {
			t.Fatalf("standby %d state diverged:\nprimary:\n%s\nstandby:\n%s", i+1, before, got)
		}
	}

	// Kill the primary; a standby must promote with the exact pre-crash
	// state at a higher epoch.
	e.net.Crash("master")
	primary.Close()
	e.clk.Advance(5 * time.Second)
	promoted := waitPromoted(t, e.masters[1], e.masters[2])
	if got := promoted.Epoch(); got < 2 {
		t.Fatalf("promoted epoch = %d, want >= 2", got)
	}
	if got := snapJSON(t, promoted.Snapshot()); got != before {
		t.Fatalf("promoted state diverged:\npre-crash:\n%s\npromoted:\n%s", before, got)
	}
}

// TestLeaseExpiryRacesRenewReplicated drives the lease lifecycle on a
// replicated primary under a scaled clock: an expired lease can be
// reclaimed by its holder's renew, a rival's open after expiry wins the
// lease, and the old holder's late renew is then refused.
func TestLeaseExpiryRacesRenewReplicated(t *testing.T) {
	e := newReplEnv(t, 2, 3)
	primary := e.masters[0]

	var meta VDiskMeta
	if st := callOn(t, primary, proto.MOpCreateVDisk,
		CreateVDiskReq{Name: "lease-race", Size: util.ChunkSize}, &meta); st != proto.StatusOK {
		t.Fatalf("create: %s", st)
	}
	if st := callOn(t, primary, proto.MOpOpenVDisk,
		OpenVDiskReq{Name: "lease-race", Client: "a"}, nil); st != proto.StatusOK {
		t.Fatalf("open: %s", st)
	}

	// Expired-but-unclaimed: the holder's own renew reclaims the lease.
	e.clk.Advance(11 * time.Second)
	if st := callOn(t, primary, proto.MOpRenewLease,
		LeaseReq{ID: meta.ID, Client: "a"}, nil); st != proto.StatusOK {
		t.Fatalf("holder reclaim-renew after expiry: %s", st)
	}
	// Rival renew while the reclaimed lease is live: refused.
	if st := callOn(t, primary, proto.MOpRenewLease,
		LeaseReq{ID: meta.ID, Client: "b"}, nil); st != proto.StatusLeaseHeld {
		t.Fatalf("rival renew on live lease: %s, want lease-held", st)
	}

	// Expiry again; a rival's open now wins the lease...
	e.clk.Advance(11 * time.Second)
	if st := callOn(t, primary, proto.MOpOpenVDisk,
		OpenVDiskReq{Name: "lease-race", Client: "b"}, nil); st != proto.StatusOK {
		t.Fatalf("rival open after expiry: %s", st)
	}
	// ...and the old holder's late renew must lose.
	if st := callOn(t, primary, proto.MOpRenewLease,
		LeaseReq{ID: meta.ID, Client: "a"}, nil); st != proto.StatusLeaseHeld {
		t.Fatalf("stale holder renew: %s, want lease-held", st)
	}
}

// TestOpenRacesFailover checks the lease survives a primary crash: the
// lease granted by the old primary is enforced by the promoted standby
// (a rival open is refused), while the legitimate holder's renew loop
// carries on against the new primary.
func TestOpenRacesFailover(t *testing.T) {
	e := newReplEnv(t, 2, 3)
	primary := e.masters[0]

	var meta VDiskMeta
	if st := callOn(t, primary, proto.MOpCreateVDisk,
		CreateVDiskReq{Name: "failover-lease", Size: util.ChunkSize}, &meta); st != proto.StatusOK {
		t.Fatalf("create: %s", st)
	}
	if st := callOn(t, primary, proto.MOpOpenVDisk,
		OpenVDiskReq{Name: "failover-lease", Client: "a"}, nil); st != proto.StatusOK {
		t.Fatalf("open: %s", st)
	}
	e.quiesce(t, primary, e.masters[1])

	e.net.Crash("master")
	primary.Close()
	e.clk.Advance(5 * time.Second)
	promoted := waitPromoted(t, e.masters[1])

	// The lease shipped before the crash: a rival cannot steal it on the
	// new primary.
	if st := callOn(t, promoted, proto.MOpOpenVDisk,
		OpenVDiskReq{Name: "failover-lease", Client: "b"}, nil); st != proto.StatusLeaseHeld {
		t.Fatalf("rival open on promoted master: %s, want lease-held", st)
	}
	// The holder's renew keeps working across the failover.
	if st := callOn(t, promoted, proto.MOpRenewLease,
		LeaseReq{ID: meta.ID, Client: "a"}, nil); st != proto.StatusOK {
		t.Fatalf("holder renew on promoted master: %s", st)
	}
	// Standby-side sanity: the deposed address answers nothing; the
	// promoted master is the only primary left.
	if promoted.Epoch() < 2 {
		t.Fatalf("promoted epoch = %d, want >= 2", promoted.Epoch())
	}
}
