package master

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/coldtier"
	"ursa/internal/objstore"
	"ursa/internal/opctx"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// coldGCEnv is an unreplicated master wired to a near-free object store on
// a simnet — just enough to drive RunColdGC against hand-crafted metadata.
type coldGCEnv struct {
	m     *Master
	store *objstore.Store
	op    *opctx.Op
}

func newColdGCEnv(t *testing.T) *coldGCEnv {
	t.Helper()
	clk := clock.Realtime
	net := transport.NewSimNet(clk, 0)

	store := objstore.New(clk, objstore.TestModel())
	ol, err := net.Listen("objstore", transport.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rpc := transport.Serve(ol, store.Handler)
	t.Cleanup(rpc.Close)

	ml, err := net.Listen("master", transport.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{
		Addr:         "master",
		Clock:        clk,
		Dialer:       net.Dialer("master", transport.NodeConfig{}),
		RPCTimeout:   time.Second,
		ObjstoreAddr: "objstore",
	})
	m.Serve(ml)
	t.Cleanup(m.Close)
	return &coldGCEnv{m: m, store: store, op: opctx.New(clk, time.Minute)}
}

// flushSegment hand-flushes n random extents into a freshly allocated
// segment range, the way a snapshot flush would, and returns the refs and
// the extent payloads.
func (e *coldGCEnv) flushSegment(t *testing.T, n int) ([]coldtier.ExtentRef, [][]byte) {
	t.Helper()
	e.m.mu.Lock()
	lo := e.m.nextSeg
	e.m.nextSeg += coldtier.SegsPerChunk
	e.m.mu.Unlock()

	w := coldtier.NewSegWriter(e.m.coldCl, e.op, lo, lo+coldtier.SegsPerChunk)
	data := make([][]byte, n)
	for i := range data {
		data[i] = make([]byte, coldtier.ExtentSize)
		util.NewRand(uint64(i + 1)).Fill(data[i])
		if err := w.Add(int64(i)*coldtier.ExtentSize, data[i]); err != nil {
			t.Fatal(err)
		}
	}
	refs, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != n {
		t.Fatalf("flushed %d extents, got %d refs", n, len(refs))
	}
	return refs, data
}

// TestColdGCRewritesPartiallyDeadSegment drives the compaction arm: a
// segment whose live fraction fell under GCLiveFraction is rewritten, the
// referencing metadata is remapped atomically, and the old location turns
// into ErrNotFound — the exact signal a chunkserver's stale-ref fetch uses
// to refresh.
func TestColdGCRewritesPartiallyDeadSegment(t *testing.T) {
	e := newColdGCEnv(t)

	refs, data := e.flushSegment(t, 3)
	// Metadata keeps only the middle extent: 1 of 3 MiB live (< 0.5).
	e.m.mu.Lock()
	e.m.snapshots["s"] = &SnapshotMeta{
		ID: 1, Name: "s", Size: util.ChunkSize,
		Chunks: [][]coldtier.ExtentRef{{refs[1]}},
	}
	e.m.mu.Unlock()

	reclaimed, rewritten, err := e.m.RunColdGC()
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 1 || rewritten != coldtier.ExtentSize {
		t.Fatalf("gc: reclaimed=%d rewritten=%d, want 1 and %d",
			reclaimed, rewritten, coldtier.ExtentSize)
	}

	snap, err := e.m.GetSnapshot("s")
	if err != nil {
		t.Fatal(err)
	}
	newRef := snap.Chunks[0][0]
	if newRef.Seg == refs[1].Seg {
		t.Fatal("snapshot ref still points at the compacted segment")
	}
	if newRef.ChunkOff != refs[1].ChunkOff || newRef.Len != refs[1].Len {
		t.Fatalf("remap changed the chunk range: %+v -> %+v", refs[1], newRef)
	}
	got, err := e.m.coldCl.GetExtent(e.op, newRef)
	if err != nil {
		t.Fatal(err)
	}
	same := bytes.Equal(got, data[1])
	bufpool.Put(got)
	if !same {
		t.Fatal("rewritten extent bytes differ from the original")
	}
	// The stale location must miss cleanly — this drives refresh-on-
	// NotFound in the chunkserver's demand-fetch path.
	if _, err := e.m.coldCl.GetExtent(e.op, refs[1]); !errors.Is(err, util.ErrNotFound) {
		t.Fatalf("stale ref fetch: %v, want ErrNotFound", err)
	}

	// Drop the snapshot: the next pass reclaims the rewrite too and the
	// store drains to zero.
	if err := e.m.DeleteSnapshot("s"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.m.RunColdGC(); err != nil {
		t.Fatal(err)
	}
	if used := e.store.UsedBytes(); used != 0 {
		t.Fatalf("store still holds %d bytes after full reclaim", used)
	}
}

// TestColdGCWatermarkSkipsInflightFlush pins the GC safety rules: a pass
// is skipped entirely while a flush is in flight, and segments at or above
// the watermark are never judged.
func TestColdGCWatermarkSkipsInflightFlush(t *testing.T) {
	e := newColdGCEnv(t)
	refs, _ := e.flushSegment(t, 1)

	// No metadata references the segment, so a normal pass would delete
	// it — but an in-flight flush must veto the pass.
	e.m.mu.Lock()
	e.m.inflightFlushes++
	e.m.mu.Unlock()
	if n, _, err := e.m.RunColdGC(); err != nil || n != 0 {
		t.Fatalf("gc under in-flight flush: reclaimed=%d err=%v, want 0 and nil", n, err)
	}

	e.m.mu.Lock()
	e.m.inflightFlushes--
	// Fake an unreferenced segment above the watermark: rewind nextSeg so
	// the stored segment sits at it.
	wm := refs[0].Seg
	e.m.nextSeg = wm
	e.m.mu.Unlock()
	if n, _, err := e.m.RunColdGC(); err != nil || n != 0 {
		t.Fatalf("gc above watermark: reclaimed=%d err=%v, want 0 and nil", n, err)
	}

	// Restore the watermark: now it is garbage and goes.
	e.m.mu.Lock()
	e.m.nextSeg = wm + coldtier.SegsPerChunk
	e.m.mu.Unlock()
	if n, _, err := e.m.RunColdGC(); err != nil || n != 1 {
		t.Fatalf("gc after flush settled: reclaimed=%d err=%v, want 1 and nil", n, err)
	}
	if used := e.store.UsedBytes(); used != 0 {
		t.Fatalf("store still holds %d bytes", used)
	}
}
