// Package master implements URSA's global master (§3.1): virtual-disk
// creation/opening/deletion, chunk placement, lease+lock enforcement of the
// single-client property (§4.1), client rate limiting, and failure recovery
// through view changes (§4.2.2). The master stays off the normal I/O path.
package master

import (
	"time"

	"ursa/internal/coldtier"
	"ursa/internal/redundancy"
)

// ReplicaInfo locates one replica of a chunk.
type ReplicaInfo struct {
	// Addr is the chunk server holding the replica.
	Addr string `json:"addr"`
	// SSD marks replicas on flash; the client prefers them as primary.
	SSD bool `json:"ssd"`
}

// ChunkMeta is the placement and view of one chunk.
type ChunkMeta struct {
	View     uint64        `json:"view"`
	Replicas []ReplicaInfo `json:"replicas"`
	// Cold lists the object-backed extents of a cloned chunk that have not
	// been materialized locally yet. Replicas demand-fetch these on first
	// access; once a replica holds every extent the master clears the list
	// (MOpChunkMaterialized). Nil for ordinary (fully local) chunks.
	Cold []coldtier.ExtentRef `json:"cold,omitempty"`
}

// VDiskMeta is everything a client needs to operate a virtual disk.
type VDiskMeta struct {
	ID   uint32 `json:"id"`
	Name string `json:"name"`
	Size int64  `json:"size"`
	// StripeGroup is the number of chunks striped together (§3.4);
	// 1 disables striping.
	StripeGroup int `json:"stripeGroup"`
	// StripeUnit is the striping block size in bytes.
	StripeUnit int64 `json:"stripeUnit"`
	// Chunks holds per-chunk placement, indexed by chunk number.
	Chunks []ChunkMeta `json:"chunks"`
	// LeaseTTL is how long a lease lasts between renewals.
	LeaseTTL time.Duration `json:"leaseTTL"`
	// WriteRateLimit is the master-imposed client write budget in
	// bytes/second (0 = unlimited): aggressive clients are throttled
	// before journals exhaust their quotas (§3.2).
	WriteRateLimit float64 `json:"writeRateLimit"`
	// Redundancy is the vdisk's backup-tier policy. The zero value is
	// mirroring; RS(N,M) chunks keep a full primary replica and spread
	// N data + M parity segments across Replicas[1:], position-keyed:
	// Replicas[1+i] holds segment i.
	Redundancy redundancy.Spec `json:"redundancy,omitempty"`
}

// Clone deep-copies the metadata. Handlers must hand clones to anything
// that runs outside the master lock (jsonReply marshals after Handle
// returns) because RecoverChunk installs new views into Chunks in place.
func (v VDiskMeta) Clone() VDiskMeta {
	out := v
	out.Chunks = make([]ChunkMeta, len(v.Chunks))
	for i, cm := range v.Chunks {
		out.Chunks[i] = cm
		out.Chunks[i].Replicas = append([]ReplicaInfo(nil), cm.Replicas...)
		if cm.Cold != nil {
			out.Chunks[i].Cold = append([]coldtier.ExtentRef(nil), cm.Cold...)
		}
	}
	return out
}

// CreateVDiskReq is the payload of MOpCreateVDisk.
type CreateVDiskReq struct {
	Name        string `json:"name"`
	Size        int64  `json:"size"`
	StripeGroup int    `json:"stripeGroup,omitempty"`
	StripeUnit  int64  `json:"stripeUnit,omitempty"`
	// Replication overrides the cluster default (3) when non-zero.
	Replication int `json:"replication,omitempty"`
	// Redundancy selects the backup-tier policy (zero value: mirroring).
	Redundancy redundancy.Spec `json:"redundancy,omitempty"`
}

// OpenVDiskReq is the payload of MOpOpenVDisk; Client identifies the lease
// holder.
type OpenVDiskReq struct {
	Name   string `json:"name"`
	Client string `json:"client"`
}

// LeaseReq is the payload of MOpRenewLease / MOpCloseVDisk.
type LeaseReq struct {
	ID     uint32 `json:"id"`
	Client string `json:"client"`
}

// ReportFailureReq is the payload of MOpReportFailure: the client (or a
// server) noticed a dead or lagging replica of a chunk.
type ReportFailureReq struct {
	VDisk      uint32 `json:"vdisk"`
	ChunkIndex uint32 `json:"chunkIndex"`
	// FailedAddr is the replica the reporter could not reach ("" when the
	// report is about version divergence only).
	FailedAddr string `json:"failedAddr,omitempty"`
}

// RegisterReq is the payload of MOpRegister: a chunk server joins the
// cluster.
type RegisterReq struct {
	Addr string `json:"addr"`
	// Machine groups servers for placement: replicas of one chunk never
	// share a machine.
	Machine string `json:"machine"`
	// SSD distinguishes primary-capable (flash) servers.
	SSD bool `json:"ssd"`
}

// GetVDiskReq is the payload of MOpGetVDisk.
type GetVDiskReq struct {
	ID   uint32 `json:"id,omitempty"`
	Name string `json:"name,omitempty"`
}

// StatsResp is the payload of MOpStats.
type StatsResp struct {
	Servers     int `json:"servers"`
	VDisks      int `json:"vdisks"`
	ViewChanges int `json:"viewChanges"`
}

// SnapshotMeta is one vdisk snapshot: an immutable, object-backed image.
// Chunks[i] lists chunk i's cold extents (nil slices mean all-zero chunks —
// zero extents are never stored). Snapshots are crash-consistent per chunk,
// not point-in-time across the vdisk: writes racing the flush land in either
// the snapshot or the live disk per chunk, but the snapshot never changes
// once recorded.
type SnapshotMeta struct {
	ID   uint32 `json:"id"`
	Name string `json:"name"`
	// Source geometry, inherited by clones.
	Size        int64 `json:"size"`
	StripeGroup int   `json:"stripeGroup"`
	StripeUnit  int64 `json:"stripeUnit"`
	// Chunks holds per-chunk extent tables, indexed by chunk number.
	Chunks [][]coldtier.ExtentRef `json:"chunks"`
}

// Clone deep-copies the snapshot metadata.
func (s SnapshotMeta) Clone() SnapshotMeta {
	out := s
	out.Chunks = make([][]coldtier.ExtentRef, len(s.Chunks))
	for i, refs := range s.Chunks {
		if refs != nil {
			out.Chunks[i] = append([]coldtier.ExtentRef(nil), refs...)
		}
	}
	return out
}

// SnapshotReq is the payload of MOpSnapshot (VDisk = source vdisk name) and
// MOpDeleteSnapshot (VDisk ignored).
type SnapshotReq struct {
	VDisk string `json:"vdisk,omitempty"`
	Name  string `json:"name"`
}

// CloneReq is the payload of MOpCloneFromSnapshot: provision vdisk Name as a
// thin clone of snapshot Snapshot. The clone is metadata-only — chunks are
// created empty with extent-map references into the object store and
// materialize on demand.
type CloneReq struct {
	Snapshot string `json:"snapshot"`
	Name     string `json:"name"`
	// Replication overrides the cluster default (3) when non-zero.
	Replication int `json:"replication,omitempty"`
}

// MaterializedReq is the payload of MOpChunkMaterialized: the replica at
// Addr reports it holds every cold extent of the chunk locally. Once every
// replica has reported, the master drops the chunk's demand-fetch metadata
// (freeing the referenced segments for GC).
type MaterializedReq struct {
	VDisk      uint32 `json:"vdisk"`
	ChunkIndex uint32 `json:"chunkIndex"`
	Addr       string `json:"addr"`
}

// ColdRefsReq is the payload of MOpGetColdRefs: a replica's cold refs went
// stale (GC rewrote a segment under it) and it needs the current table.
type ColdRefsReq struct {
	VDisk      uint32 `json:"vdisk"`
	ChunkIndex uint32 `json:"chunkIndex"`
}

// ColdRefsResp answers MOpGetColdRefs.
type ColdRefsResp struct {
	Refs []coldtier.ExtentRef `json:"refs,omitempty"`
}
