package master

import (
	"encoding/json"
	"sync"
	"time"

	"ursa/internal/clock"
	"ursa/internal/coldtier"
	"ursa/internal/metrics"
	"ursa/internal/proto"
	"ursa/internal/transport"
	"ursa/internal/util/backoff"
)

// Config parameterizes the master.
type Config struct {
	Addr   string
	Clock  clock.Clock
	Dialer transport.Dialer
	// Replication is the default replica count per chunk (3).
	Replication int
	// LeaseTTL is the client lease duration ("tens of seconds", §4.1).
	LeaseTTL time.Duration
	// WriteRateLimit caps each client's write bandwidth (0 = unlimited).
	WriteRateLimit float64
	// RPCTimeout bounds the master's own calls to chunk servers.
	RPCTimeout time.Duration
	// HybridMode places backups on HDD servers; when false (SSD-only mode,
	// the paper's Ursa-SSD configuration) backups are placed on SSD
	// servers too.
	HybridMode bool
	// Metrics, when non-nil, receives recovery observability: the
	// chunk-recoveries counter and the chunk-recovery-duration histogram.
	Metrics *metrics.Registry
	// Peers lists every master endpoint, including this master's own Addr,
	// in promotion-priority order (index = rank; Peers[0] bootstraps as
	// primary). One entry or fewer disables replication entirely: the
	// master is always primary and stamps no epochs.
	Peers []string
	// PrimacyTTL is the master-primacy lease: the primary heartbeats every
	// PrimacyTTL/4 and a standby promotes after roughly one TTL of
	// silence (rank-staggered).
	PrimacyTTL time.Duration
	// JoinStandby makes this master start as a standby even at rank 0 —
	// set when (re)joining an already-running cluster, where resurrecting
	// the bootstrap epoch would briefly split primacy.
	JoinStandby bool
	// ObjstoreAddr is the cold tier's object store endpoint; "" disables
	// snapshots, clones, and GC.
	ObjstoreAddr string
	// GCInterval paces the background cold-tier GC loop (0 disables the
	// loop; RunColdGC remains callable directly).
	GCInterval time.Duration
	// GCLiveFraction is the live-bytes threshold below which GC rewrites a
	// segment's surviving extents and reclaims it (default 0.5).
	GCLiveFraction float64
}

func (c *Config) fillDefaults() {
	if c.Clock == nil {
		c.Clock = clock.Realtime
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 2 * time.Second
	}
	if c.PrimacyTTL <= 0 {
		c.PrimacyTTL = 2 * time.Second
	}
	if len(c.Peers) == 1 {
		c.Peers = nil // a single endpoint is the unreplicated configuration
	}
	if c.GCLiveFraction <= 0 {
		c.GCLiveFraction = 0.5
	}
}

// serverInfo is one registered chunk server.
type serverInfo struct {
	addr    string
	machine string
	ssd     bool
}

// lease tracks the single client of a vdisk (§4.1).
type lease struct {
	holder string
	expiry time.Time
}

// vdisk is the master-side state of one virtual disk.
type vdisk struct {
	meta  VDiskMeta
	lease lease
}

// Master is the global coordinator.
type Master struct {
	cfg Config

	mu          sync.Mutex
	servers     []serverInfo
	vdisks      map[uint32]*vdisk
	byName      map[string]uint32
	nextID      uint32
	nextPrimary int // round-robin cursors for placement
	nextBackup  int
	viewChanges int

	// Cold-tier state (guarded by mu). nextSeg is the replicated segment-ID
	// watermark; inflightFlushes counts snapshot flushes between their
	// segment-range allocation and metadata record, during which GC must not
	// judge fresh segments dead. coldReports is primary-local soft state:
	// which replicas of a cloned chunk have reported full materialization.
	snapshots       map[string]*SnapshotMeta
	nextSeg         uint64
	inflightFlushes int
	coldReports     map[uint64]map[string]bool

	peers *transport.Peers

	// recMu guards recovering: one in-flight view change per chunk.
	// Reporters of an already-recovering chunk wait for that recovery and
	// share its outcome instead of starting a duplicate clone.
	recMu      sync.Mutex
	recovering map[uint64]chan struct{}

	// Replication state (guarded by mu; see replication.go). epoch 0 with
	// primary=true is the unreplicated configuration.
	primary     bool
	epoch       uint64
	primaryAddr string    // best-known primary endpoint
	lastHeard   time.Time // last heartbeat/batch from the primary
	log         []logEntry
	shipKick    map[string]chan struct{}
	closedCh    chan struct{}
	closeOnce   sync.Once
	wg          sync.WaitGroup

	// Cold-tier GC machinery (see coldgc.go). gcMu serializes passes;
	// gcCh/gcWg/gcOnce run the interval loop independently of the
	// replication lifecycle.
	coldCl *coldtier.Client
	gcMu   sync.Mutex
	gcCh   chan struct{}
	gcOnce sync.Once
	gcWg   sync.WaitGroup

	rpc *transport.Server
}

// New creates a master. With cfg.Peers configured it also starts the
// replication machinery (log shippers toward every other endpoint and the
// promotion monitor); Close stops them.
func New(cfg Config) *Master {
	cfg.fillDefaults()
	m := &Master{
		cfg:         cfg,
		vdisks:      make(map[uint32]*vdisk),
		byName:      make(map[string]uint32),
		peers:       transport.NewPeers(cfg.Dialer, cfg.Clock),
		recovering:  make(map[uint64]chan struct{}),
		snapshots:   make(map[string]*SnapshotMeta),
		nextSeg:     1,
		coldReports: make(map[uint64]map[string]bool),
	}
	m.peers.SetRedial(backoff.Policy{Base: cfg.RPCTimeout / 40, Cap: cfg.RPCTimeout / 4}, 2)
	if !m.replicationEnabled() {
		m.primary = true
	}
	m.initReplication()
	if cfg.ObjstoreAddr != "" {
		m.coldCl = coldtier.NewClient(m.peers, cfg.ObjstoreAddr)
		if cfg.GCInterval > 0 {
			m.gcCh = make(chan struct{})
			m.gcWg.Add(1)
			go m.gcLoop()
		}
	}
	return m
}

// Serve starts the master's RPC service.
func (m *Master) Serve(l transport.Listener) { m.rpc = transport.Serve(l, m.Handle) }

// Close stops the RPC service and the replication and GC goroutines.
func (m *Master) Close() {
	if m.gcCh != nil {
		m.gcOnce.Do(func() { close(m.gcCh) })
		m.gcWg.Wait()
	}
	m.stopReplication()
	if m.rpc != nil {
		m.rpc.Close()
	}
	m.peers.CloseAll()
}

// AddServer registers a chunk server (Go API; MOpRegister is the RPC form).
func (m *Master) AddServer(addr, machine string, ssd bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.addServerLocked(addr, machine, ssd) {
		m.appendLocked(entryKindServer, RegisterReq{Addr: addr, Machine: machine, SSD: ssd})
	}
}

func (m *Master) addServerLocked(addr, machine string, ssd bool) bool {
	for _, s := range m.servers {
		if s.addr == addr {
			return false
		}
	}
	m.servers = append(m.servers, serverInfo{addr: addr, machine: machine, ssd: ssd})
	return true
}

// call performs one RPC to a chunk server through the shared peer pool,
// which evicts the cached connection on transport faults so the next use
// redials. Requests are stamped with the current primacy epoch (zero when
// replication is off) and a StatusStaleEpoch rejection deposes this
// master on the spot: some chunkserver has witnessed a newer primary.
func (m *Master) call(addr string, req *proto.Message) (*proto.Message, error) {
	return m.callT(addr, req, m.cfg.RPCTimeout)
}

func (m *Master) callT(addr string, req *proto.Message, timeout time.Duration) (*proto.Message, error) {
	if m.replicationEnabled() {
		req.Epoch = m.Epoch()
	}
	resp, err := m.peers.Call(addr, req, timeout)
	if err == nil && resp.Status == proto.StatusStaleEpoch {
		m.fencedByEpoch(resp.Epoch)
	}
	return resp, err
}

// Handle dispatches master RPCs. Replication control traffic
// (MOpReplicateLog, MOpMasterInfo) is served in any role; every other op
// is a client/chunkserver metadata op that only the primary may serve —
// standbys answer StatusNotPrimary with a redirect hint. The handlers
// re-check primacy under m.mu before mutating, so a deposition racing an
// in-flight request cannot smuggle an unlogged mutation into a standby.
func (m *Master) Handle(msg *proto.Message) *proto.Message {
	switch msg.Op {
	case proto.MOpReplicateLog:
		return m.jsonReply(msg, m.handleReplicateLog(msg))
	case proto.MOpMasterInfo:
		return m.jsonReply(msg, m.handleMasterInfo(msg))
	}
	if m.replicationEnabled() && !m.IsPrimary() {
		m.mu.Lock()
		res := m.notPrimaryLocked()
		m.mu.Unlock()
		return m.jsonReply(msg, res)
	}
	switch msg.Op {
	case proto.MOpCreateVDisk:
		return m.jsonReply(msg, m.handleCreate(msg))
	case proto.MOpOpenVDisk:
		return m.jsonReply(msg, m.handleOpen(msg))
	case proto.MOpRenewLease:
		return m.jsonReply(msg, m.handleRenew(msg))
	case proto.MOpCloseVDisk:
		return m.jsonReply(msg, m.handleClose(msg))
	case proto.MOpDeleteVDisk:
		return m.jsonReply(msg, m.handleDelete(msg))
	case proto.MOpReportFailure:
		return m.jsonReply(msg, m.handleReportFailure(msg))
	case proto.MOpGetVDisk:
		return m.jsonReply(msg, m.handleGet(msg))
	case proto.MOpStats:
		return m.jsonReply(msg, m.handleStats(msg))
	case proto.MOpRegister:
		return m.jsonReply(msg, m.handleRegister(msg))
	case proto.MOpSnapshot:
		return m.jsonReply(msg, m.handleSnapshot(msg))
	case proto.MOpCloneFromSnapshot:
		return m.jsonReply(msg, m.handleClone(msg))
	case proto.MOpDeleteSnapshot:
		return m.jsonReply(msg, m.handleDeleteSnapshot(msg))
	case proto.MOpChunkMaterialized:
		return m.jsonReply(msg, m.handleMaterialized(msg))
	case proto.MOpGetColdRefs:
		return m.jsonReply(msg, m.handleGetColdRefs(msg))
	default:
		return msg.Reply(proto.StatusError)
	}
}

// jsonResult pairs a status with a JSON-encodable body.
type jsonResult struct {
	status proto.Status
	body   any
}

func ok(body any) jsonResult              { return jsonResult{proto.StatusOK, body} }
func fail(status proto.Status) jsonResult { return jsonResult{status, nil} }

func (m *Master) jsonReply(msg *proto.Message, res jsonResult) *proto.Message {
	r := msg.Reply(res.status)
	if res.body != nil {
		b, err := json.Marshal(res.body)
		if err != nil {
			return msg.Reply(proto.StatusError)
		}
		r.Payload = b
	}
	return r
}

func (m *Master) handleRegister(msg *proto.Message) jsonResult {
	var req RegisterReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	m.AddServer(req.Addr, req.Machine, req.SSD)
	return ok(nil)
}

func (m *Master) handleStats(*proto.Message) jsonResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ok(StatsResp{
		Servers:     len(m.servers),
		VDisks:      len(m.vdisks),
		ViewChanges: m.viewChanges,
	})
}
