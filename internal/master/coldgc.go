package master

import (
	"errors"
	"fmt"

	"ursa/internal/bufpool"
	"ursa/internal/coldtier"
	"ursa/internal/opctx"
	"ursa/internal/util"
)

// Cold-tier garbage collection. Segments are immutable, so deleting
// snapshots (or materializing clones) strands dead extents inside live
// segments. The GC walks the store, deletes segments nothing references,
// and compacts mostly-dead ones by rewriting their surviving extents into a
// fresh segment — the classic log-structured cleaner, run from the master
// because only the master knows which extents metadata still references.

// Cold-tier GC observability.
const (
	// MetricGCSegmentsReclaimed counts segments deleted by GC (both fully
	// dead and compacted-away).
	MetricGCSegmentsReclaimed = "gc-segments-reclaimed"
	// MetricGCBytesRewritten counts live bytes GC copied into fresh
	// segments while compacting.
	MetricGCBytesRewritten = "gc-bytes-rewritten"
)

// RunColdGC performs one garbage-collection pass over the object store and
// reports how many segments it reclaimed and how many live bytes it
// rewrote. Safe to call concurrently (passes serialize) and on a cadence
// (the GCInterval loop does exactly this). A pass is skipped — not an
// error — while a snapshot flush is in flight, because the flush's fresh
// segments have no referencing metadata yet.
func (m *Master) RunColdGC() (reclaimed int, rewritten int64, err error) {
	if m.coldCl == nil {
		return 0, 0, nil
	}
	if !m.IsPrimary() {
		return 0, 0, m.errNotPrimary("cold gc")
	}
	m.gcMu.Lock()
	defer m.gcMu.Unlock()

	// The watermark rule: only segments with ID below nextSeg-as-of-now are
	// candidates. A flush or rewrite starting after this point allocates
	// IDs at or above the watermark; one started before holds
	// inflightFlushes, which skips the pass entirely.
	m.mu.Lock()
	if m.inflightFlushes > 0 {
		m.mu.Unlock()
		return 0, 0, nil
	}
	wm := m.nextSeg
	live := m.liveRefsBySegLocked()
	m.mu.Unlock()

	op := opctx.New(m.cfg.Clock, 240*m.cfg.RPCTimeout)
	objs, err := m.coldCl.ListSegments(op)
	if err != nil {
		return 0, 0, err
	}
	for _, obj := range objs {
		if obj.Seg >= wm {
			continue // possibly a concurrent flush's segment: not ours to judge
		}
		refs := live[obj.Seg]
		liveBytes := coldtier.LiveBytes(refs)
		switch {
		case liveBytes == 0:
			// Nothing references the segment (deleted snapshot, fully
			// materialized clone, or an aborted flush's orphan).
			if derr := m.coldCl.DeleteSegment(op, obj.Seg); derr != nil && !errors.Is(derr, util.ErrNotFound) {
				continue
			}
			reclaimed++
		case obj.Size > 0 && float64(liveBytes)/float64(obj.Size) < m.cfg.GCLiveFraction:
			n, gerr := m.gcRewrite(op, obj.Seg, refs)
			if gerr != nil {
				// Partial progress is fine: the old segment stays intact and
				// referenced; a later pass retries. An orphaned half-written
				// replacement is below a future watermark with no refs, so
				// the liveBytes==0 arm above collects it.
				if errors.Is(gerr, util.ErrNotPrimary) {
					return reclaimed, rewritten, gerr
				}
				continue
			}
			reclaimed++
			rewritten += n
		}
	}
	if reg := m.cfg.Metrics; reg != nil && reclaimed > 0 {
		reg.Counter(MetricGCSegmentsReclaimed).Add(int64(reclaimed))
		if rewritten > 0 {
			reg.Counter(MetricGCBytesRewritten).Add(rewritten)
		}
	}
	return reclaimed, rewritten, nil
}

// liveRefsBySegLocked indexes every referenced cold extent by segment,
// deduplicated by location — clones share their snapshot's refs verbatim,
// and counting a shared extent twice would overstate segment liveness
// (m.mu held).
func (m *Master) liveRefsBySegLocked() map[uint64][]coldtier.ExtentRef {
	type loc struct {
		seg uint64
		off int64
		n   int64
	}
	seen := make(map[loc]bool)
	out := make(map[uint64][]coldtier.ExtentRef)
	add := func(refs []coldtier.ExtentRef) {
		for _, r := range refs {
			k := loc{r.Seg, r.SegOff, r.Len}
			if seen[k] {
				continue
			}
			seen[k] = true
			out[r.Seg] = append(out[r.Seg], r)
		}
	}
	for _, snap := range m.snapshots {
		for _, refs := range snap.Chunks {
			add(refs)
		}
	}
	for _, vd := range m.vdisks {
		for i := range vd.meta.Chunks {
			add(vd.meta.Chunks[i].Cold)
		}
	}
	return out
}

// gcRewrite compacts one mostly-dead segment: copies its live extents into
// a freshly allocated segment range, atomically remaps every referencing
// snapshot extent and chunk cold ref (replicated), and deletes the old
// segment. Returns the live bytes moved.
func (m *Master) gcRewrite(op *opctx.Op, oldSeg uint64, refs []coldtier.ExtentRef) (int64, error) {
	m.mu.Lock()
	if m.replicationEnabled() && !m.primary {
		m.mu.Unlock()
		return 0, m.errNotPrimary("gc rewrite")
	}
	lo := m.nextSeg
	m.nextSeg += coldtier.SegsPerChunk
	m.appendLocked(entryKindAllocSegs, entryAllocSegs{NextSeg: m.nextSeg})
	m.mu.Unlock()

	w := coldtier.NewSegWriter(m.coldCl, op, lo, lo+coldtier.SegsPerChunk)
	for _, r := range refs {
		data, err := m.fetchLiveExtent(op, r)
		if err != nil {
			return 0, err
		}
		err = w.Add(r.ChunkOff, data)
		bufpool.Put(data)
		if err != nil {
			return 0, err
		}
	}
	newRefs, err := w.Close()
	if err != nil {
		return 0, err
	}
	// Live extents are never all-zero (zero extents are suppressed at flush
	// time and a dead ref would not be in refs), so the writer emits one new
	// ref per input in order.
	if len(newRefs) != len(refs) {
		return 0, fmt.Errorf("master: gc rewrite of segment %#x: %d refs in, %d out", oldSeg, len(refs), len(newRefs))
	}
	moves := make([]segMove, len(refs))
	for i, r := range refs {
		moves[i] = segMove{Seg: r.Seg, SegOff: r.SegOff, NewSeg: newRefs[i].Seg, NewSegOff: newRefs[i].SegOff}
	}

	m.mu.Lock()
	if m.replicationEnabled() && !m.primary {
		// Deposed mid-rewrite: drop everything. The new segments carry no
		// references and sit below the new primary's replicated watermark,
		// so its GC deletes them.
		m.mu.Unlock()
		return 0, m.errNotPrimary("gc rewrite")
	}
	m.applySegRemapLocked(moves)
	m.appendLocked(entryKindSegRemap, entrySegRemap{Moves: moves})
	m.mu.Unlock()

	// Delete the old segment last: the object store drains in-flight reads,
	// and any fetch that raced the remap with stale refs gets ErrNotFound
	// and refreshes from the (already remapped) metadata.
	if err := m.coldCl.DeleteSegment(op, oldSeg); err != nil && !errors.Is(err, util.ErrNotFound) {
		return coldtier.LiveBytes(refs), err
	}
	return coldtier.LiveBytes(refs), nil
}

// fetchLiveExtent reads one extent for compaction, retrying transient
// transfer corruption (CRC mismatch) a few times.
func (m *Master) fetchLiveExtent(op *opctx.Op, r coldtier.ExtentRef) ([]byte, error) {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		var data []byte
		data, err = m.coldCl.GetExtent(op, r)
		if err == nil {
			return data, nil
		}
		if !errors.Is(err, util.ErrCorrupt) {
			return nil, err
		}
	}
	return nil, err
}

// gcLoop runs RunColdGC on the configured cadence while this master holds
// primacy.
func (m *Master) gcLoop() {
	defer m.gcWg.Done()
	for {
		select {
		case <-m.gcCh:
			return
		case <-m.cfg.Clock.After(m.cfg.GCInterval):
		}
		if m.IsPrimary() {
			_, _, _ = m.RunColdGC()
		}
	}
}
