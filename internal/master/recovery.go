package master

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/chunkserver"
	"ursa/internal/proto"
	"ursa/internal/redundancy"
	"ursa/internal/util"
)

// handleReportFailure runs the view-change sub-protocol of §4.2.2:
//
//  1. Collect version numbers from the chunk's replicas; require a majority
//     (or — the paper's conservative escape hatch — proceed with fewer when
//     the unreachable replicas are confirmed crashed by the reporter).
//  2. Pick versionH, the highest collected version, as the most recent state.
//  3. Incrementally repair lagging live replicas from a versionH holder.
//  4. Allocate a replacement for the failed replica and clone versionH
//     into it.
//  5. Install view i+1 on every replica and update the metadata.
func (m *Master) handleReportFailure(msg *proto.Message) jsonResult {
	var req ReportFailureReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	meta, err := m.RecoverChunk(req.VDisk, req.ChunkIndex, req.FailedAddr)
	if err != nil {
		if errors.Is(err, util.ErrNotPrimary) {
			m.mu.Lock()
			defer m.mu.Unlock()
			return m.notPrimaryLocked()
		}
		return fail(proto.StatusError)
	}
	return ok(meta)
}

// replicaVersion is one GetVersion result during recovery.
type replicaVersion struct {
	addr    string
	ssd     bool
	version uint64
	alive   bool
}

// Metric names for recovery observability.
const (
	// MetricChunkRecoveries counts completed view changes.
	MetricChunkRecoveries = "chunk-recoveries"
	// MetricRecoveryDuration is the report-to-new-view latency per recovery.
	MetricRecoveryDuration = "chunk-recovery-duration"
)

// RecoverChunk performs a view change for one chunk, replacing failedAddr
// (may be empty for pure repair). It returns the chunk's new metadata.
func (m *Master) RecoverChunk(vdiskID uint32, chunkIndex uint32, failedAddr string) (*ChunkMeta, error) {
	// Only the primary may drive view changes; a deposed master starting a
	// recovery here would race the real primary's recovery of the same
	// chunk (its commands are also fenced per-RPC below, this just fails
	// fast).
	if m.replicationEnabled() && !m.IsPrimary() {
		return nil, m.errNotPrimary(fmt.Sprintf("recover c%d.%d", vdiskID, chunkIndex))
	}
	// One recovery per chunk at a time. Reporters re-fire on a cooldown much
	// shorter than a 64 MB clone, so without this a single dead disk stacks
	// up concurrent duplicate view changes for the same chunk; latecomers
	// wait for the in-flight recovery and share its outcome.
	key := uint64(vdiskID)<<32 | uint64(chunkIndex)
	m.recMu.Lock()
	if ch, busy := m.recovering[key]; busy {
		m.recMu.Unlock()
		<-ch
		return m.chunkMeta(vdiskID, chunkIndex)
	}
	ch := make(chan struct{})
	m.recovering[key] = ch
	m.recMu.Unlock()
	defer func() {
		m.recMu.Lock()
		delete(m.recovering, key)
		m.recMu.Unlock()
		close(ch)
	}()

	t0 := m.cfg.Clock.Now()
	cmp, spec, err := m.chunkMetaSpec(vdiskID, chunkIndex)
	if err != nil {
		return nil, err
	}
	id := blockstore.MakeChunkID(vdiskID, chunkIndex)
	if spec.IsRS() {
		return m.recoverRS(t0, id, vdiskID, chunkIndex, *cmp, spec, failedAddr)
	}
	return m.recoverMirror(t0, id, vdiskID, chunkIndex, *cmp, failedAddr)
}

// recoverMirror is the view change for a mirrored chunk.
func (m *Master) recoverMirror(t0 time.Time, id blockstore.ChunkID,
	vdiskID, chunkIndex uint32, cm ChunkMeta, failedAddr string) (*ChunkMeta, error) {

	// Step 1: collect versions.
	states := make([]replicaVersion, len(cm.Replicas))
	alive := 0
	for i, r := range cm.Replicas {
		states[i] = replicaVersion{addr: r.Addr, ssd: r.SSD}
		if r.Addr == failedAddr {
			continue
		}
		resp, err := m.call(r.Addr, &proto.Message{Op: proto.OpGetVersion, Chunk: id})
		if err != nil || resp.Status != proto.StatusOK {
			continue
		}
		states[i].version = resp.Version
		states[i].alive = true
		alive++
	}
	if alive == 0 {
		return nil, fmt.Errorf("master: recover %v: no replica reachable: %w", id, util.ErrNoQuorum)
	}
	// The paper requires a majority; when the reporter has positively
	// identified the missing replicas as crashed (failedAddr), the master
	// may proceed with the survivors (§4.2.2's write-to-all property).
	if alive*2 <= len(cm.Replicas) && failedAddr == "" {
		return nil, fmt.Errorf("master: recover %v: only %d/%d replicas reachable: %w",
			id, alive, len(cm.Replicas), util.ErrNoQuorum)
	}

	// A stale report against a chunk that is already whole needs no new
	// view: the named replica left the set in an earlier view change (or no
	// replica was named), every current replica answered, and all versions
	// agree. Dead devices keep re-reporting for as long as records stay
	// parked on them; answering with the current meta instead of bumping
	// the view stops that churn.
	if alive == len(cm.Replicas) && !replicaInSet(cm, failedAddr) {
		consistent := true
		for _, st := range states {
			if st.version != states[0].version {
				consistent = false
				break
			}
		}
		if consistent {
			return &cm, nil
		}
	}

	// Step 2: versionH.
	var versionH uint64
	var source replicaVersion
	for _, st := range states {
		if st.alive && st.version >= versionH {
			versionH = st.version
			source = st
		}
	}

	// Step 3: incremental repair of live laggards.
	for _, st := range states {
		if !st.alive || st.version == versionH || st.addr == source.addr {
			continue
		}
		payload, _ := json.Marshal(chunkserver.CloneChunkReq{Source: source.addr})
		// Repair may fall back to a full clone on the far side.
		resp, err := m.callT(st.addr, &proto.Message{
			Op:      proto.OpRepairFrom,
			Chunk:   id,
			View:    cm.View,
			Payload: payload,
		}, 60*m.cfg.RPCTimeout)
		if err != nil || resp.Status != proto.StatusOK {
			// The laggard could not repair; treat it as failed below by
			// leaving its version behind. The client will report again.
			continue
		}
	}

	// Step 4: replace dead replicas.
	newReplicas := make([]ReplicaInfo, 0, len(cm.Replicas))
	for _, st := range states {
		if st.alive {
			newReplicas = append(newReplicas, ReplicaInfo{Addr: st.addr, SSD: st.ssd})
			continue
		}
		repl, err := m.allocateReplacement(id, cm, st, source.addr, versionH)
		if err != nil {
			// Proceed degraded: durability is restored on the next report.
			continue
		}
		newReplicas = append(newReplicas, repl)
	}

	// Keep the preferred primary (an SSD replica) first.
	for i, r := range newReplicas {
		if r.SSD {
			newReplicas[0], newReplicas[i] = newReplicas[i], newReplicas[0]
			break
		}
	}

	// Step 5: install the new view everywhere.
	newView := cm.View + 1
	var backups []string
	for _, r := range newReplicas[1:] {
		backups = append(backups, r.Addr)
	}
	for i, r := range newReplicas {
		req := chunkserver.CreateChunkReq{View: newView}
		if i == 0 {
			req.Backups = backups
		} else {
			req.Backups = []string{} // non-nil: clear stale primary state
		}
		payload, _ := json.Marshal(req)
		_, _ = m.call(r.Addr, &proto.Message{
			Op:      proto.OpSetView,
			Chunk:   id,
			View:    newView,
			Payload: payload,
		})
	}

	newMeta, err := m.installViewChange(t0, vdiskID, chunkIndex, ChunkMeta{View: newView, Replicas: newReplicas, Cold: cm.Cold})
	if err != nil {
		return nil, err
	}
	return newMeta, nil
}

// installViewChange records a completed recovery's new chunk metadata,
// re-checking primacy under the lock: a master deposed mid-recovery (its
// fan-out already bounced off StatusStaleEpoch fences) must not install —
// or replicate — a view the new primary knows nothing about.
func (m *Master) installViewChange(t0 time.Time, vdiskID, chunkIndex uint32, newMeta ChunkMeta) (*ChunkMeta, error) {
	m.mu.Lock()
	if m.replicationEnabled() && !m.primary {
		m.mu.Unlock()
		return nil, m.errNotPrimary(fmt.Sprintf("install view for c%d.%d", vdiskID, chunkIndex))
	}
	if vd, okID := m.vdisks[vdiskID]; okID && int(chunkIndex) < len(vd.meta.Chunks) {
		vd.meta.Chunks[chunkIndex] = newMeta
	}
	m.viewChanges++
	m.appendLocked(entryKindSetChunk, entrySetChunk{VDisk: vdiskID, Index: chunkIndex, Meta: newMeta})
	m.mu.Unlock()
	if reg := m.cfg.Metrics; reg != nil {
		reg.Counter(MetricChunkRecoveries).Inc()
		reg.ObserveLatency(MetricRecoveryDuration, m.cfg.Clock.Now().Sub(t0))
	}
	return &newMeta, nil
}

// recoverRS is the view change for an RS(N,M) chunk. The replica list is
// position-keyed — Replicas[0] is the full-chunk primary and Replicas[1+i]
// holds segment i — so recovery repairs each position in place (or
// substitutes a fresh server at the same position) and never reorders or
// shrinks the list.
//
// Rebuild sources are chosen for snapshot safety (see
// chunkserver/segment.go): while a primary holds versionH, a holder rebuild
// fetches an encoded segment snapshot from it (OpRebuildSegment with
// Primary set). Only when the primary itself is down or lagging — so no
// write can commit and the surviving holders are quiescent — do rebuilds
// decode from N holders directly.
func (m *Master) recoverRS(t0 time.Time, id blockstore.ChunkID,
	vdiskID, chunkIndex uint32, cm ChunkMeta, spec redundancy.Spec, failedAddr string) (*ChunkMeta, error) {

	// Step 1: collect versions, position-keyed. Unlike the mirror path, the
	// reported address is probed like any other replica: the report is the
	// hint that triggered this recovery, not proof of death — clients also
	// report on mere RPC timeouts, and evicting an alive RS replica is
	// expensive (a replaced primary re-decodes 64 MB from the holders). A
	// "failed" replica that answers at versionH makes the whole recovery a
	// no-op below instead of a view change.
	states := make([]replicaVersion, len(cm.Replicas))
	alive := 0
	for i, r := range cm.Replicas {
		states[i] = replicaVersion{addr: r.Addr, ssd: r.SSD}
		resp, err := m.call(r.Addr, &proto.Message{Op: proto.OpGetVersion, Chunk: id})
		if err != nil || resp.Status != proto.StatusOK {
			continue
		}
		states[i].version = resp.Version
		states[i].alive = true
		alive++
	}
	if alive == 0 {
		return nil, fmt.Errorf("master: recover %v: no replica reachable: %w", id, util.ErrNoQuorum)
	}

	// Stale-report short circuit: every position answered at one consistent
	// version, so the chunk is whole — whatever prompted the report has
	// healed, or was a reporter-side timeout. No new view.
	if alive == len(cm.Replicas) {
		consistent := true
		for _, st := range states {
			if st.version != states[0].version {
				consistent = false
				break
			}
		}
		if consistent {
			return &cm, nil
		}
	}

	// Step 2: versionH and who holds it.
	var versionH uint64
	for _, st := range states {
		if st.alive && st.version > versionH {
			versionH = st.version
		}
	}
	primaryOK := states[0].alive && states[0].version == versionH
	var sources []chunkserver.PieceSource
	for i := 1; i < len(states); i++ {
		if states[i].alive && states[i].version == versionH {
			sources = append(sources, chunkserver.PieceSource{Addr: states[i].addr, Piece: i - 1})
		}
	}
	if !primaryOK && len(sources) < spec.N {
		return nil, fmt.Errorf("master: recover %v: version %d held by %d/%d segments and no primary: %w",
			id, versionH, len(sources), spec.N, util.ErrNoQuorum)
	}

	newReplicas := append([]ReplicaInfo(nil), cm.Replicas...)
	changed := false  // membership changed
	repaired := false // some replica was rebuilt in place

	// Step 3: restore the primary first so segment rebuilds can snapshot it.
	if !primaryOK {
		target := ReplicaInfo{Addr: states[0].addr, SSD: true}
		haveTarget := states[0].alive // lagging but reachable: rebuild in place
		if !haveTarget {
			target, haveTarget = m.pickReplacement(newReplicas, states[0].addr, true)
		}
		if haveTarget && m.rsClonePrimary(id, cm, spec, target.Addr, sources, versionH) {
			if target.Addr != states[0].addr {
				newReplicas[0] = target
				changed = true
			} else {
				repaired = true
			}
			primaryOK = true
		}
		// On failure the chunk stays degraded at position 0: clients
		// reconstruct reads from the holders and the next report retries.
	}
	primaryAddr := ""
	if primaryOK {
		primaryAddr = newReplicas[0].Addr
	}

	// Step 4: rebuild dead or lagging segment holders at their positions.
	for i := 1; i < len(states); i++ {
		st := states[i]
		if st.alive && st.version == versionH {
			continue
		}
		if !primaryOK && len(sources) < spec.N {
			break // nothing left to rebuild from
		}
		target := ReplicaInfo{Addr: st.addr, SSD: st.ssd}
		if !st.alive {
			var found bool
			target, found = m.pickReplacement(newReplicas, st.addr, st.ssd)
			if !found {
				continue // degraded at this position until servers return
			}
		}
		if !m.rsRebuildSegment(id, cm, spec, i-1, target.Addr, primaryAddr, sources, versionH) {
			continue // keep the old entry; the next report retries
		}
		if target.Addr != st.addr {
			newReplicas[i] = target
			changed = true
		} else {
			repaired = true
		}
	}

	// Step 5: install the new view everywhere — but only if this recovery
	// made progress. A recovery that could not repair anything (e.g. no
	// replacement server available) must not bump the view, or dead devices
	// would drive unbounded view churn.
	if !changed && !repaired {
		return &cm, nil
	}
	newView := cm.View + 1
	var backups []string
	for _, r := range newReplicas[1:] {
		backups = append(backups, r.Addr)
	}
	for i, r := range newReplicas {
		req := chunkserver.CreateChunkReq{View: newView}
		if i == 0 {
			req.Backups = backups
		} else {
			req.Backups = []string{} // non-nil: clear stale primary state
		}
		payload, _ := json.Marshal(req)
		_, _ = m.call(r.Addr, &proto.Message{
			Op:      proto.OpSetView,
			Chunk:   id,
			View:    newView,
			Payload: payload,
		})
	}

	newMeta, err := m.installViewChange(t0, vdiskID, chunkIndex, ChunkMeta{View: newView, Replicas: newReplicas, Cold: cm.Cold})
	if err != nil {
		return nil, err
	}
	return newMeta, nil
}

// rsClonePrimary rebuilds a full-chunk primary by decoding N surviving
// segments. This runs only while no primary holds versionH, so no write can
// commit and the sources are quiescent at versionH; the far side rejects
// piece fetches at any other version rather than decode a torn chunk.
func (m *Master) rsClonePrimary(id blockstore.ChunkID, cm ChunkMeta, spec redundancy.Spec,
	addr string, sources []chunkserver.PieceSource, versionH uint64) bool {

	if len(sources) < spec.N {
		return false
	}
	create, _ := json.Marshal(chunkserver.CreateChunkReq{View: cm.View, Redundancy: spec})
	resp, err := m.call(addr, &proto.Message{Op: proto.OpCreateChunk, Chunk: id, Payload: create})
	if err != nil || (resp.Status != proto.StatusOK && resp.Status != proto.StatusExists) {
		return false
	}
	clone, _ := json.Marshal(chunkserver.CloneChunkReq{Spec: spec, Sources: sources})
	// Decoding a full chunk moves 64 MB through the fabric: give it the
	// same headroom as a whole-chunk clone.
	resp, err = m.callT(addr, &proto.Message{
		Op:      proto.OpCloneChunk,
		Chunk:   id,
		View:    cm.View,
		Version: versionH,
		Payload: clone,
	}, 60*m.cfg.RPCTimeout)
	return err == nil && resp.Status == proto.StatusOK && resp.Version >= versionH
}

// rsRebuildSegment (re)creates segment seg on target and rebuilds its
// content — from the primary's snapshot when one holds versionH, otherwise
// by decoding from N quiescent holders.
func (m *Master) rsRebuildSegment(id blockstore.ChunkID, cm ChunkMeta, spec redundancy.Spec,
	seg int, target, primary string, sources []chunkserver.PieceSource, versionH uint64) bool {

	create, _ := json.Marshal(chunkserver.CreateChunkReq{
		View: cm.View, Redundancy: spec, Holder: true, Seg: seg,
	})
	resp, err := m.call(target, &proto.Message{Op: proto.OpCreateChunk, Chunk: id, Payload: create})
	if err != nil || (resp.Status != proto.StatusOK && resp.Status != proto.StatusExists) {
		return false
	}
	req := chunkserver.RebuildSegmentReq{Spec: spec, Seg: seg}
	if primary != "" {
		req.Primary = primary
	} else {
		req.Sources = sources
	}
	payload, _ := json.Marshal(req)
	resp, err = m.callT(target, &proto.Message{
		Op:      proto.OpRebuildSegment,
		Chunk:   id,
		View:    cm.View,
		Version: versionH,
		Payload: payload,
	}, 60*m.cfg.RPCTimeout)
	return err == nil && resp.Status == proto.StatusOK
}

// chunkMeta returns a copy of one chunk's current metadata.
func (m *Master) chunkMeta(vdiskID, chunkIndex uint32) (*ChunkMeta, error) {
	cm, _, err := m.chunkMetaSpec(vdiskID, chunkIndex)
	return cm, err
}

// chunkMetaSpec returns a copy of one chunk's current metadata plus its
// vdisk's redundancy policy.
func (m *Master) chunkMetaSpec(vdiskID, chunkIndex uint32) (*ChunkMeta, redundancy.Spec, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	vd, okID := m.vdisks[vdiskID]
	if !okID || int(chunkIndex) >= len(vd.meta.Chunks) {
		return nil, redundancy.Spec{}, fmt.Errorf("master: recover c%d.%d: %w",
			vdiskID, chunkIndex, util.ErrNotFound)
	}
	cm := vd.meta.Chunks[chunkIndex]
	cm.Replicas = append([]ReplicaInfo(nil), cm.Replicas...)
	return &cm, vd.meta.Redundancy, nil
}

func replicaInSet(cm ChunkMeta, addr string) bool {
	for _, r := range cm.Replicas {
		if r.Addr == addr {
			return true
		}
	}
	return false
}

// allocateReplacement creates a fresh replica for a dead one and clones
// versionH state into it from source. A dead SSD (primary) replica is
// replaced by another SSD server — the paper notes SSD recovery is the
// urgent case in hybrid storage (§5.5).
func (m *Master) allocateReplacement(id blockstore.ChunkID, cm ChunkMeta,
	dead replicaVersion, source string, versionH uint64) (ReplicaInfo, error) {

	cand, found := m.pickReplacement(cm.Replicas, dead.addr, dead.ssd)
	if !found {
		return ReplicaInfo{}, fmt.Errorf("master: no replacement server for %v: %w",
			id, util.ErrQuota)
	}

	createPayload, _ := json.Marshal(chunkserver.CreateChunkReq{View: cm.View})
	resp, err := m.call(cand.Addr, &proto.Message{
		Op:      proto.OpCreateChunk,
		Chunk:   id,
		Payload: createPayload,
	})
	if err != nil || (resp.Status != proto.StatusOK && resp.Status != proto.StatusExists) {
		return ReplicaInfo{}, fmt.Errorf("master: create replacement on %s failed", cand.Addr)
	}
	clonePayload, _ := json.Marshal(chunkserver.CloneChunkReq{Source: source})
	// A whole-chunk clone moves 64 MB through a bandwidth-shaped fabric:
	// give it far more headroom than a control RPC.
	resp, err = m.callT(cand.Addr, &proto.Message{
		Op:      proto.OpCloneChunk,
		Chunk:   id,
		View:    cm.View,
		Payload: clonePayload,
	}, 60*m.cfg.RPCTimeout)
	if err != nil || resp.Status != proto.StatusOK {
		return ReplicaInfo{}, fmt.Errorf("master: clone to %s failed", cand.Addr)
	}
	if resp.Version < versionH {
		return ReplicaInfo{}, fmt.Errorf("master: clone to %s stopped at version %d < %d",
			cand.Addr, resp.Version, versionH)
	}
	return cand, nil
}

// pickReplacement chooses a fresh server of the requested storage class
// whose machine hosts none of the chunk's other replicas (deadAddr is the
// replica being replaced and does not pin its machine).
func (m *Master) pickReplacement(replicas []ReplicaInfo, deadAddr string, ssd bool) (ReplicaInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	used := map[string]bool{}
	for _, r := range replicas {
		if r.Addr == deadAddr {
			continue
		}
		for _, s := range m.servers {
			if s.addr == r.Addr {
				used[s.machine] = true
			}
		}
	}
	for i := range m.servers {
		s := &m.servers[i]
		if s.ssd != ssd || s.addr == deadAddr || used[s.machine] {
			continue
		}
		return ReplicaInfo{Addr: s.addr, SSD: s.ssd}, true
	}
	return ReplicaInfo{}, false
}
