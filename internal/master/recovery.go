package master

import (
	"encoding/json"
	"fmt"

	"ursa/internal/blockstore"
	"ursa/internal/chunkserver"
	"ursa/internal/proto"
	"ursa/internal/util"
)

// handleReportFailure runs the view-change sub-protocol of §4.2.2:
//
//  1. Collect version numbers from the chunk's replicas; require a majority
//     (or — the paper's conservative escape hatch — proceed with fewer when
//     the unreachable replicas are confirmed crashed by the reporter).
//  2. Pick versionH, the highest collected version, as the most recent state.
//  3. Incrementally repair lagging live replicas from a versionH holder.
//  4. Allocate a replacement for the failed replica and clone versionH
//     into it.
//  5. Install view i+1 on every replica and update the metadata.
func (m *Master) handleReportFailure(msg *proto.Message) jsonResult {
	var req ReportFailureReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	meta, err := m.RecoverChunk(req.VDisk, req.ChunkIndex, req.FailedAddr)
	if err != nil {
		return fail(proto.StatusError)
	}
	return ok(meta)
}

// replicaVersion is one GetVersion result during recovery.
type replicaVersion struct {
	addr    string
	ssd     bool
	version uint64
	alive   bool
}

// Metric names for recovery observability.
const (
	// MetricChunkRecoveries counts completed view changes.
	MetricChunkRecoveries = "chunk-recoveries"
	// MetricRecoveryDuration is the report-to-new-view latency per recovery.
	MetricRecoveryDuration = "chunk-recovery-duration"
)

// RecoverChunk performs a view change for one chunk, replacing failedAddr
// (may be empty for pure repair). It returns the chunk's new metadata.
func (m *Master) RecoverChunk(vdiskID uint32, chunkIndex uint32, failedAddr string) (*ChunkMeta, error) {
	// One recovery per chunk at a time. Reporters re-fire on a cooldown much
	// shorter than a 64 MB clone, so without this a single dead disk stacks
	// up concurrent duplicate view changes for the same chunk; latecomers
	// wait for the in-flight recovery and share its outcome.
	key := uint64(vdiskID)<<32 | uint64(chunkIndex)
	m.recMu.Lock()
	if ch, busy := m.recovering[key]; busy {
		m.recMu.Unlock()
		<-ch
		return m.chunkMeta(vdiskID, chunkIndex)
	}
	ch := make(chan struct{})
	m.recovering[key] = ch
	m.recMu.Unlock()
	defer func() {
		m.recMu.Lock()
		delete(m.recovering, key)
		m.recMu.Unlock()
		close(ch)
	}()

	t0 := m.cfg.Clock.Now()
	cmp, err := m.chunkMeta(vdiskID, chunkIndex)
	if err != nil {
		return nil, err
	}
	cm := *cmp

	id := blockstore.MakeChunkID(vdiskID, chunkIndex)

	// Step 1: collect versions.
	states := make([]replicaVersion, len(cm.Replicas))
	alive := 0
	for i, r := range cm.Replicas {
		states[i] = replicaVersion{addr: r.Addr, ssd: r.SSD}
		if r.Addr == failedAddr {
			continue
		}
		resp, err := m.call(r.Addr, &proto.Message{Op: proto.OpGetVersion, Chunk: id})
		if err != nil || resp.Status != proto.StatusOK {
			continue
		}
		states[i].version = resp.Version
		states[i].alive = true
		alive++
	}
	if alive == 0 {
		return nil, fmt.Errorf("master: recover %v: no replica reachable: %w", id, util.ErrNoQuorum)
	}
	// The paper requires a majority; when the reporter has positively
	// identified the missing replicas as crashed (failedAddr), the master
	// may proceed with the survivors (§4.2.2's write-to-all property).
	if alive*2 <= len(cm.Replicas) && failedAddr == "" {
		return nil, fmt.Errorf("master: recover %v: only %d/%d replicas reachable: %w",
			id, alive, len(cm.Replicas), util.ErrNoQuorum)
	}

	// A stale report against a chunk that is already whole needs no new
	// view: the named replica left the set in an earlier view change (or no
	// replica was named), every current replica answered, and all versions
	// agree. Dead devices keep re-reporting for as long as records stay
	// parked on them; answering with the current meta instead of bumping
	// the view stops that churn.
	if alive == len(cm.Replicas) && !replicaInSet(cm, failedAddr) {
		consistent := true
		for _, st := range states {
			if st.version != states[0].version {
				consistent = false
				break
			}
		}
		if consistent {
			return &cm, nil
		}
	}

	// Step 2: versionH.
	var versionH uint64
	var source replicaVersion
	for _, st := range states {
		if st.alive && st.version >= versionH {
			versionH = st.version
			source = st
		}
	}

	// Step 3: incremental repair of live laggards.
	for _, st := range states {
		if !st.alive || st.version == versionH || st.addr == source.addr {
			continue
		}
		payload, _ := json.Marshal(chunkserver.CloneChunkReq{Source: source.addr})
		// Repair may fall back to a full clone on the far side.
		resp, err := m.callT(st.addr, &proto.Message{
			Op:      proto.OpRepairFrom,
			Chunk:   id,
			View:    cm.View,
			Payload: payload,
		}, 60*m.cfg.RPCTimeout)
		if err != nil || resp.Status != proto.StatusOK {
			// The laggard could not repair; treat it as failed below by
			// leaving its version behind. The client will report again.
			continue
		}
	}

	// Step 4: replace dead replicas.
	newReplicas := make([]ReplicaInfo, 0, len(cm.Replicas))
	for _, st := range states {
		if st.alive {
			newReplicas = append(newReplicas, ReplicaInfo{Addr: st.addr, SSD: st.ssd})
			continue
		}
		repl, err := m.allocateReplacement(id, cm, st, source.addr, versionH)
		if err != nil {
			// Proceed degraded: durability is restored on the next report.
			continue
		}
		newReplicas = append(newReplicas, repl)
	}

	// Keep the preferred primary (an SSD replica) first.
	for i, r := range newReplicas {
		if r.SSD {
			newReplicas[0], newReplicas[i] = newReplicas[i], newReplicas[0]
			break
		}
	}

	// Step 5: install the new view everywhere.
	newView := cm.View + 1
	var backups []string
	for _, r := range newReplicas[1:] {
		backups = append(backups, r.Addr)
	}
	for i, r := range newReplicas {
		req := chunkserver.CreateChunkReq{View: newView}
		if i == 0 {
			req.Backups = backups
		} else {
			req.Backups = []string{} // non-nil: clear stale primary state
		}
		payload, _ := json.Marshal(req)
		_, _ = m.call(r.Addr, &proto.Message{
			Op:      proto.OpSetView,
			Chunk:   id,
			View:    newView,
			Payload: payload,
		})
	}

	newMeta := ChunkMeta{View: newView, Replicas: newReplicas}
	m.mu.Lock()
	if vd, okID := m.vdisks[vdiskID]; okID && int(chunkIndex) < len(vd.meta.Chunks) {
		vd.meta.Chunks[chunkIndex] = newMeta
	}
	m.viewChanges++
	m.mu.Unlock()
	if reg := m.cfg.Metrics; reg != nil {
		reg.Counter(MetricChunkRecoveries).Inc()
		reg.ObserveLatency(MetricRecoveryDuration, m.cfg.Clock.Now().Sub(t0))
	}
	return &newMeta, nil
}

// chunkMeta returns a copy of one chunk's current metadata.
func (m *Master) chunkMeta(vdiskID, chunkIndex uint32) (*ChunkMeta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	vd, okID := m.vdisks[vdiskID]
	if !okID || int(chunkIndex) >= len(vd.meta.Chunks) {
		return nil, fmt.Errorf("master: recover c%d.%d: %w", vdiskID, chunkIndex, util.ErrNotFound)
	}
	cm := vd.meta.Chunks[chunkIndex]
	return &cm, nil
}

func replicaInSet(cm ChunkMeta, addr string) bool {
	for _, r := range cm.Replicas {
		if r.Addr == addr {
			return true
		}
	}
	return false
}

// allocateReplacement creates a fresh replica for a dead one and clones
// versionH state into it from source. A dead SSD (primary) replica is
// replaced by another SSD server — the paper notes SSD recovery is the
// urgent case in hybrid storage (§5.5).
func (m *Master) allocateReplacement(id blockstore.ChunkID, cm ChunkMeta,
	dead replicaVersion, source string, versionH uint64) (ReplicaInfo, error) {

	m.mu.Lock()
	// Machines already hosting live replicas are excluded.
	used := map[string]bool{}
	for _, r := range cm.Replicas {
		if r.Addr == dead.addr {
			continue
		}
		for _, s := range m.servers {
			if s.addr == r.Addr {
				used[s.machine] = true
			}
		}
	}
	var cand *serverInfo
	for i := range m.servers {
		s := &m.servers[i]
		if s.ssd != dead.ssd || s.addr == dead.addr || used[s.machine] {
			continue
		}
		cand = s
		break
	}
	m.mu.Unlock()
	if cand == nil {
		return ReplicaInfo{}, fmt.Errorf("master: no replacement server for %v: %w",
			id, util.ErrQuota)
	}

	createPayload, _ := json.Marshal(chunkserver.CreateChunkReq{View: cm.View})
	resp, err := m.call(cand.addr, &proto.Message{
		Op:      proto.OpCreateChunk,
		Chunk:   id,
		Payload: createPayload,
	})
	if err != nil || (resp.Status != proto.StatusOK && resp.Status != proto.StatusExists) {
		return ReplicaInfo{}, fmt.Errorf("master: create replacement on %s failed", cand.addr)
	}
	clonePayload, _ := json.Marshal(chunkserver.CloneChunkReq{Source: source})
	// A whole-chunk clone moves 64 MB through a bandwidth-shaped fabric:
	// give it far more headroom than a control RPC.
	resp, err = m.callT(cand.addr, &proto.Message{
		Op:      proto.OpCloneChunk,
		Chunk:   id,
		View:    cm.View,
		Payload: clonePayload,
	}, 60*m.cfg.RPCTimeout)
	if err != nil || resp.Status != proto.StatusOK {
		return ReplicaInfo{}, fmt.Errorf("master: clone to %s failed", cand.addr)
	}
	if resp.Version < versionH {
		return ReplicaInfo{}, fmt.Errorf("master: clone to %s stopped at version %d < %d",
			cand.addr, resp.Version, versionH)
	}
	return ReplicaInfo{Addr: cand.addr, SSD: cand.ssd}, nil
}
