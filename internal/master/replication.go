package master

import (
	"encoding/json"
	"fmt"
	"time"

	"ursa/internal/bufpool"
	"ursa/internal/coldtier"
	"ursa/internal/proto"
	"ursa/internal/util"
)

// Master replication: the primary ships an ordered metadata op log (vdisk
// create/delete, lease grant/renew/close, server registration, RecoverChunk
// view installs) to every hot standby over the ordinary transport. Primacy
// is a clock lease: the primary heartbeats (an empty log batch) every
// PrimacyTTL/4, and a standby that hears nothing for its rank-staggered
// timeout probes the other masters and, if none claims primacy at a
// current-or-newer epoch, bumps the epoch and takes over. Safety does not
// rest on the lease alone — every chunkserver-bound command carries the
// epoch and chunkservers reject anything older than the newest epoch they
// have witnessed (StatusStaleEpoch), so a deposed master that un-partitions
// is fenced at the edges before it can corrupt placement. This is
// primary/backup log shipping, not consensus: an acked client op whose log
// entry had not yet reached the promoted standby is lost (the shipper is
// kicked on every append, so the window is one RPC), and the lease
// reclaim-on-renew rule below papers over exactly that window for leases.

// Log entry kinds.
const (
	entryKindPutVDisk       = "put-vdisk"
	entryKindDelete         = "delete-vdisk"
	entryKindLease          = "lease"
	entryKindServer         = "add-server"
	entryKindSetChunk       = "set-chunk"
	entryKindAllocSegs      = "alloc-segs"
	entryKindPutSnapshot    = "put-snapshot"
	entryKindDeleteSnapshot = "delete-snapshot"
	entryKindSetCold        = "set-cold"
	entryKindSegRemap       = "seg-remap"
)

// MetricMasterPromotions counts standby-to-primary promotions.
const MetricMasterPromotions = "master-promotions"

// logEntry is one replicated metadata mutation. Seq is dense from 1 within
// an epoch's log; Data is the kind-specific body.
type logEntry struct {
	Seq  uint64          `json:"seq"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

type entryPutVDisk struct {
	Meta VDiskMeta `json:"meta"`
	// Placement cursors at append time, so a promoted standby continues
	// round-robin placement where the primary left off.
	NextID      uint32 `json:"nextID"`
	NextPrimary int    `json:"nextPrimary"`
	NextBackup  int    `json:"nextBackup"`
}

type entryDelete struct {
	ID uint32 `json:"id"`
}

type entryLease struct {
	ID     uint32    `json:"id"`
	Holder string    `json:"holder"`
	Expiry time.Time `json:"expiry"`
}

type entrySetChunk struct {
	VDisk uint32    `json:"vdisk"`
	Index uint32    `json:"index"`
	Meta  ChunkMeta `json:"meta"`
}

// entryAllocSegs advances the segment-ID watermark. Replicated before any
// flush or GC rewrite touches the object store, so a promoted standby never
// re-issues an ID that may already hold data (segments are write-once).
type entryAllocSegs struct {
	NextSeg uint64 `json:"nextSeg"`
}

type entryPutSnapshot struct {
	Meta   SnapshotMeta `json:"meta"`
	NextID uint32       `json:"nextID"`
}

type entryDeleteSnapshot struct {
	Name string `json:"name"`
}

// entrySetCold replaces one chunk's cold extent table (nil = fully
// materialized, demand-fetch metadata dropped).
type entrySetCold struct {
	VDisk uint32               `json:"vdisk"`
	Index uint32               `json:"index"`
	Refs  []coldtier.ExtentRef `json:"refs,omitempty"`
}

// segMove records one extent's relocation by the GC rewriter: bytes that
// lived at (Seg, SegOff) now live at (NewSeg, NewSegOff). Length and CRC are
// unchanged — GC moves extents verbatim.
type segMove struct {
	Seg       uint64 `json:"seg"`
	SegOff    int64  `json:"segOff"`
	NewSeg    uint64 `json:"newSeg"`
	NewSegOff int64  `json:"newSegOff"`
}

// entrySegRemap rewrites every snapshot extent and chunk cold ref matching a
// move's old location. Applied atomically under the lock before the old
// segment is deleted, so no replicated metadata ever points at a gone
// segment.
type entrySegRemap struct {
	Moves []segMove `json:"moves"`
}

// ReplicateLogReq is the payload of MOpReplicateLog: a batch of entries
// (empty = heartbeat) from the primary From at Epoch.
type ReplicateLogReq struct {
	Epoch   uint64     `json:"epoch"`
	From    string     `json:"from"`
	Entries []logEntry `json:"entries,omitempty"`
}

// ReplicateLogResp acknowledges a batch with the receiver's epoch and last
// applied sequence; the shipper rewinds its cursor to Applied, so a
// freshly (re)joined standby is caught up by full-log replay.
type ReplicateLogResp struct {
	Epoch   uint64 `json:"epoch"`
	Applied uint64 `json:"applied"`
}

// MasterInfoResp is the payload of MOpMasterInfo and the body of every
// StatusNotPrimary redirect: who this master is, who it believes the
// primary is, and the full endpoint list for client discovery.
type MasterInfoResp struct {
	Self      string   `json:"self"`
	Primary   string   `json:"primary,omitempty"`
	Epoch     uint64   `json:"epoch"`
	IsPrimary bool     `json:"isPrimary"`
	Endpoints []string `json:"endpoints,omitempty"`
	LogSeq    uint64   `json:"logSeq"`
}

// replicationEnabled reports whether this master runs the replication
// protocol (two or more configured endpoints).
func (m *Master) replicationEnabled() bool { return len(m.cfg.Peers) > 1 }

// rank returns this master's promotion priority: its index in cfg.Peers.
func (m *Master) rank() int {
	for i, p := range m.cfg.Peers {
		if p == m.cfg.Addr {
			return i
		}
	}
	return len(m.cfg.Peers)
}

// initReplication sets the initial role and starts the shipper and monitor
// goroutines. Rank 0 bootstraps as the primary at epoch 1 unless it joins
// an already-running cluster (JoinStandby: a healed master must discover
// the current epoch rather than resurrect epoch 1).
func (m *Master) initReplication() {
	if !m.replicationEnabled() {
		return
	}
	m.closedCh = make(chan struct{})
	m.shipKick = make(map[string]chan struct{})
	m.lastHeard = m.cfg.Clock.Now()
	m.primaryAddr = m.cfg.Peers[0]
	if m.rank() == 0 && !m.cfg.JoinStandby {
		m.primary = true
		m.primaryAddr = m.cfg.Addr
		m.epoch = 1
	}
	for _, p := range m.cfg.Peers {
		if p == m.cfg.Addr {
			continue
		}
		kick := make(chan struct{}, 1)
		m.shipKick[p] = kick
		m.wg.Add(1)
		go m.shipLoop(p, kick)
	}
	m.wg.Add(1)
	go m.monitorLoop()
}

// stopReplication terminates the background goroutines (idempotent).
func (m *Master) stopReplication() {
	if m.closedCh == nil {
		return
	}
	m.closeOnce.Do(func() { close(m.closedCh) })
	m.wg.Wait()
}

// IsPrimary reports whether this master currently holds primacy. A master
// without replication configured is always primary.
func (m *Master) IsPrimary() bool {
	if !m.replicationEnabled() {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.primary
}

// Addr returns the address this master serves at.
func (m *Master) Addr() string { return m.cfg.Addr }

// Epoch returns the current primacy epoch (0 when replication is off).
func (m *Master) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// LogSeq returns the last metadata log sequence this master holds.
func (m *Master) LogSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return uint64(len(m.log))
}

// appendLocked records one mutation in the replicated log (m.mu held).
// Only an acting primary originates entries; single-master configurations
// skip logging entirely.
func (m *Master) appendLocked(kind string, v any) {
	if !m.replicationEnabled() || !m.primary {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	m.log = append(m.log, logEntry{Seq: uint64(len(m.log)) + 1, Kind: kind, Data: data})
	for _, kick := range m.shipKick {
		select {
		case kick <- struct{}{}:
		default:
		}
	}
}

// applyEntryLocked replays one log entry into local state (m.mu held).
func (m *Master) applyEntryLocked(e logEntry) {
	switch e.Kind {
	case entryKindPutVDisk:
		var p entryPutVDisk
		if json.Unmarshal(e.Data, &p) != nil {
			return
		}
		m.vdisks[p.Meta.ID] = &vdisk{meta: p.Meta.Clone()}
		m.byName[p.Meta.Name] = p.Meta.ID
		m.nextID = p.NextID
		m.nextPrimary, m.nextBackup = p.NextPrimary, p.NextBackup
	case entryKindDelete:
		var p entryDelete
		if json.Unmarshal(e.Data, &p) != nil {
			return
		}
		if vd, okID := m.vdisks[p.ID]; okID {
			delete(m.byName, vd.meta.Name)
			delete(m.vdisks, p.ID)
		}
	case entryKindLease:
		var p entryLease
		if json.Unmarshal(e.Data, &p) != nil {
			return
		}
		if vd, okID := m.vdisks[p.ID]; okID {
			vd.lease = lease{holder: p.Holder, expiry: p.Expiry}
		}
	case entryKindServer:
		var p RegisterReq
		if json.Unmarshal(e.Data, &p) != nil {
			return
		}
		m.addServerLocked(p.Addr, p.Machine, p.SSD)
	case entryKindSetChunk:
		var p entrySetChunk
		if json.Unmarshal(e.Data, &p) != nil {
			return
		}
		if vd, okID := m.vdisks[p.VDisk]; okID && int(p.Index) < len(vd.meta.Chunks) {
			vd.meta.Chunks[p.Index] = p.Meta
		}
		m.viewChanges++
	case entryKindAllocSegs:
		var p entryAllocSegs
		if json.Unmarshal(e.Data, &p) != nil {
			return
		}
		if p.NextSeg > m.nextSeg {
			m.nextSeg = p.NextSeg
		}
	case entryKindPutSnapshot:
		var p entryPutSnapshot
		if json.Unmarshal(e.Data, &p) != nil {
			return
		}
		meta := p.Meta.Clone()
		m.snapshots[meta.Name] = &meta
		m.nextID = p.NextID
	case entryKindDeleteSnapshot:
		var p entryDeleteSnapshot
		if json.Unmarshal(e.Data, &p) != nil {
			return
		}
		delete(m.snapshots, p.Name)
	case entryKindSetCold:
		var p entrySetCold
		if json.Unmarshal(e.Data, &p) != nil {
			return
		}
		if vd, okID := m.vdisks[p.VDisk]; okID && int(p.Index) < len(vd.meta.Chunks) {
			vd.meta.Chunks[p.Index].Cold = p.Refs
		}
	case entryKindSegRemap:
		var p entrySegRemap
		if json.Unmarshal(e.Data, &p) != nil {
			return
		}
		m.applySegRemapLocked(p.Moves)
	}
}

// applySegRemapLocked rewrites every cold reference — snapshot extent tables
// and live chunks' demand-fetch refs — matching a GC move (m.mu held).
func (m *Master) applySegRemapLocked(moves []segMove) {
	type loc struct {
		seg uint64
		off int64
	}
	remap := make(map[loc]segMove, len(moves))
	for _, mv := range moves {
		remap[loc{mv.Seg, mv.SegOff}] = mv
	}
	fix := func(refs []coldtier.ExtentRef) {
		for i := range refs {
			if mv, hit := remap[loc{refs[i].Seg, refs[i].SegOff}]; hit {
				refs[i].Seg = mv.NewSeg
				refs[i].SegOff = mv.NewSegOff
			}
		}
	}
	for _, snap := range m.snapshots {
		for _, refs := range snap.Chunks {
			fix(refs)
		}
	}
	for _, vd := range m.vdisks {
		for i := range vd.meta.Chunks {
			fix(vd.meta.Chunks[i].Cold)
		}
	}
}

// resetStateLocked wipes the replicated state and log so a full replay
// from the authoritative primary can rebuild it (m.mu held). Runs when a
// follower adopts a new epoch: the new primary's log is authoritative and
// any diverged local tail must not survive.
func (m *Master) resetStateLocked() {
	m.vdisks = make(map[uint32]*vdisk)
	m.byName = make(map[string]uint32)
	m.servers = nil
	m.nextID, m.nextPrimary, m.nextBackup = 0, 0, 0
	m.viewChanges = 0
	m.log = nil
	m.snapshots = make(map[string]*SnapshotMeta)
	m.nextSeg = 1
	m.coldReports = make(map[uint64]map[string]bool)
}

// adoptEpochLocked accepts a remote primary's newer epoch: step down if
// acting primary, wipe state, and await full replay (m.mu held).
func (m *Master) adoptEpochLocked(epoch uint64, from string) {
	m.epoch = epoch
	m.primary = false
	m.primaryAddr = from
	m.resetStateLocked()
	m.lastHeard = m.cfg.Clock.Now()
}

// fencedByEpoch handles a StatusStaleEpoch rejection from a chunkserver or
// a standby: somewhere a newer epoch exists, so this master was deposed.
// It steps down and wipes (the epoch floor is recorded so a later
// self-promotion jumps past the fence), but does not adopt a primary —
// discovery happens via the next heartbeat or probe.
func (m *Master) fencedByEpoch(epoch uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.replicationEnabled() || epoch < m.epoch {
		return
	}
	if m.primary || epoch > m.epoch {
		m.epoch = epoch
		m.primary = false
		m.primaryAddr = ""
		m.resetStateLocked()
		m.lastHeard = m.cfg.Clock.Now()
	}
}

// masterInfoLocked builds the discovery/redirect body (m.mu held).
func (m *Master) masterInfoLocked() MasterInfoResp {
	info := MasterInfoResp{
		Self:      m.cfg.Addr,
		Epoch:     m.epoch,
		IsPrimary: m.primary,
		Endpoints: append([]string(nil), m.cfg.Peers...),
		LogSeq:    uint64(len(m.log)),
	}
	if m.primary {
		info.Primary = m.cfg.Addr
	} else {
		info.Primary = m.primaryAddr
	}
	if !m.replicationEnabled() {
		info.IsPrimary = true
		info.Primary = m.cfg.Addr
		info.Endpoints = []string{m.cfg.Addr}
	}
	return info
}

func (m *Master) handleMasterInfo(*proto.Message) jsonResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ok(m.masterInfoLocked())
}

// notPrimaryLocked is the redirect result for client ops reaching a
// standby (m.mu held).
func (m *Master) notPrimaryLocked() jsonResult {
	return jsonResult{proto.StatusNotPrimary, m.masterInfoLocked()}
}

// handleReplicateLog applies a shipped batch (or heartbeat) from a
// claimed primary.
func (m *Master) handleReplicateLog(msg *proto.Message) jsonResult {
	if !m.replicationEnabled() {
		return fail(proto.StatusError)
	}
	var req ReplicateLogReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if req.Epoch < m.epoch {
		return jsonResult{proto.StatusStaleEpoch,
			ReplicateLogResp{Epoch: m.epoch, Applied: uint64(len(m.log))}}
	}
	if req.Epoch > m.epoch {
		m.adoptEpochLocked(req.Epoch, req.From)
	} else if m.primary && req.From != m.cfg.Addr {
		// Two primaries raced to the same epoch. Deterministic tie-break:
		// the lower-ranked endpoint keeps primacy.
		if peerRank(m.cfg.Peers, req.From) < m.rank() {
			m.adoptEpochLocked(req.Epoch, req.From)
		} else {
			return jsonResult{proto.StatusStaleEpoch,
				ReplicateLogResp{Epoch: m.epoch, Applied: uint64(len(m.log))}}
		}
	}
	m.primaryAddr = req.From
	m.lastHeard = m.cfg.Clock.Now()
	applied := uint64(len(m.log))
	for _, e := range req.Entries {
		if e.Seq <= applied {
			continue // duplicate from a rewound shipper
		}
		if e.Seq != applied+1 {
			break // gap: the ack's Applied rewinds the shipper
		}
		m.applyEntryLocked(e)
		m.log = append(m.log, e)
		applied++
	}
	return ok(ReplicateLogResp{Epoch: m.epoch, Applied: applied})
}

func peerRank(peers []string, addr string) int {
	for i, p := range peers {
		if p == addr {
			return i
		}
	}
	return len(peers)
}

// shipLoop replicates the log to one standby: kicked on every append,
// heartbeating every PrimacyTTL/4 otherwise, rewinding its cursor from
// each ack so dead or freshly-healed standbys catch up by full replay.
func (m *Master) shipLoop(peer string, kick <-chan struct{}) {
	defer m.wg.Done()
	hb := m.cfg.PrimacyTTL / 4
	var cursor uint64
	for {
		select {
		case <-m.closedCh:
			return
		case <-kick:
		case <-m.cfg.Clock.After(hb):
		}
		m.mu.Lock()
		if !m.primary {
			m.mu.Unlock()
			cursor = 0
			continue
		}
		epoch := m.epoch
		if cursor > uint64(len(m.log)) {
			cursor = 0 // log was reset across a demote/re-promote cycle
		}
		batch := append([]logEntry(nil), m.log[cursor:]...)
		m.mu.Unlock()

		payload, err := json.Marshal(ReplicateLogReq{Epoch: epoch, From: m.cfg.Addr, Entries: batch})
		if err != nil {
			continue
		}
		resp, err := m.peers.Call(peer, &proto.Message{
			Op:      proto.MOpReplicateLog,
			Epoch:   epoch,
			Payload: payload,
		}, m.cfg.PrimacyTTL/2)
		if err != nil {
			continue // dead standby: the heartbeat tick paces the retry
		}
		var ack ReplicateLogResp
		ackErr := json.Unmarshal(resp.Payload, &ack)
		status := resp.Status
		bufpool.Put(resp.Payload)
		proto.Recycle(resp)
		if status == proto.StatusStaleEpoch {
			if ackErr == nil {
				m.fencedByEpoch(ack.Epoch)
			}
			continue
		}
		if status == proto.StatusOK && ackErr == nil {
			if ack.Epoch > epoch {
				m.fencedByEpoch(ack.Epoch)
				continue
			}
			cursor = ack.Applied
		}
	}
}

// monitorLoop watches for primary silence on standbys and runs the
// promotion protocol.
func (m *Master) monitorLoop() {
	defer m.wg.Done()
	tick := m.cfg.PrimacyTTL / 8
	for {
		select {
		case <-m.closedCh:
			return
		case <-m.cfg.Clock.After(tick):
		}
		m.maybePromote()
	}
}

// promoteTimeout is how long a standby waits out primary silence before
// probing: one PrimacyTTL, staggered by rank so standbys promote in
// priority order instead of racing.
func (m *Master) promoteTimeout() time.Duration {
	r := m.rank()
	if r > 0 {
		r--
	}
	return m.cfg.PrimacyTTL + time.Duration(r)*m.cfg.PrimacyTTL/4
}

// maybePromote probes the peer set after primary silence and takes over if
// no reachable master claims primacy at a current-or-newer epoch.
func (m *Master) maybePromote() {
	m.mu.Lock()
	if m.primary || m.cfg.Clock.Now().Sub(m.lastHeard) < m.promoteTimeout() {
		m.mu.Unlock()
		return
	}
	curEpoch := m.epoch
	m.mu.Unlock()

	// Probe every other master first: a healthy primary whose heartbeats
	// are merely delayed (or a newly joined standby discovering the
	// cluster) must stand down, not split the epoch space.
	maxEpoch := curEpoch
	var claimedPrimary string
	var claimedEpoch uint64
	for _, p := range m.cfg.Peers {
		if p == m.cfg.Addr {
			continue
		}
		resp, err := m.peers.Call(p, &proto.Message{Op: proto.MOpMasterInfo}, m.cfg.PrimacyTTL/4)
		if err != nil {
			continue
		}
		var info MasterInfoResp
		infoErr := json.Unmarshal(resp.Payload, &info)
		bufpool.Put(resp.Payload)
		proto.Recycle(resp)
		if infoErr != nil {
			continue
		}
		if info.Epoch > maxEpoch {
			maxEpoch = info.Epoch
		}
		if info.IsPrimary && info.Epoch >= curEpoch && info.Epoch >= claimedEpoch {
			claimedPrimary, claimedEpoch = info.Self, info.Epoch
		}
	}
	if claimedPrimary != "" {
		m.mu.Lock()
		if claimedEpoch > m.epoch {
			m.adoptEpochLocked(claimedEpoch, claimedPrimary)
		} else if !m.primary {
			m.primaryAddr = claimedPrimary
			m.lastHeard = m.cfg.Clock.Now()
		}
		m.mu.Unlock()
		return
	}

	m.mu.Lock()
	if m.primary || m.epoch != curEpoch {
		m.mu.Unlock() // something changed under us: re-evaluate next tick
		return
	}
	m.epoch = maxEpoch + 1
	m.primary = true
	m.primaryAddr = m.cfg.Addr
	epoch := m.epoch
	servers := make([]string, len(m.servers))
	for i, s := range m.servers {
		servers[i] = s.addr
	}
	m.lastHeard = m.cfg.Clock.Now()
	m.mu.Unlock()

	if reg := m.cfg.Metrics; reg != nil {
		reg.Counter(MetricMasterPromotions).Inc()
	}
	// Fence the deposed master everywhere before acting on the new epoch:
	// an epoch-stamped no-op makes every reachable chunkserver adopt the
	// new epoch, so stale RecoverChunk/view-bump commands from the old
	// primary bounce even at servers this primary has not commanded yet.
	for _, addr := range servers {
		_, _ = m.peers.Call(addr, &proto.Message{Op: proto.OpNop, Epoch: epoch}, m.cfg.PrimacyTTL/4)
	}
	// Wake the shippers: followers must hear the new epoch (and get the
	// full log replayed) without waiting for the next heartbeat tick.
	m.mu.Lock()
	for _, kick := range m.shipKick {
		select {
		case kick <- struct{}{}:
		default:
		}
	}
	m.mu.Unlock()
}

// LeaseInfo is one vdisk's lease in a state snapshot.
type LeaseInfo struct {
	Holder string
	Expiry time.Time
}

// StateSnapshot is a deep copy of the master's replicated metadata, used
// by tests to prove a promoted standby's state equals the pre-crash
// primary's.
type StateSnapshot struct {
	Servers     []RegisterReq
	VDisks      map[uint32]VDiskMeta
	Leases      map[uint32]LeaseInfo
	Snapshots   map[string]SnapshotMeta
	NextID      uint32
	NextPrimary int
	NextBackup  int
	NextSeg     uint64
	ViewChanges int
	LogSeq      uint64
}

// Snapshot captures the replicated state for comparison.
func (m *Master) Snapshot() StateSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := StateSnapshot{
		VDisks:      make(map[uint32]VDiskMeta, len(m.vdisks)),
		Leases:      make(map[uint32]LeaseInfo, len(m.vdisks)),
		Snapshots:   make(map[string]SnapshotMeta, len(m.snapshots)),
		NextID:      m.nextID,
		NextPrimary: m.nextPrimary,
		NextBackup:  m.nextBackup,
		NextSeg:     m.nextSeg,
		ViewChanges: m.viewChanges,
		LogSeq:      uint64(len(m.log)),
	}
	for name, snap := range m.snapshots {
		s.Snapshots[name] = snap.Clone()
	}
	for _, sv := range m.servers {
		s.Servers = append(s.Servers, RegisterReq{Addr: sv.addr, Machine: sv.machine, SSD: sv.ssd})
	}
	for id, vd := range m.vdisks {
		s.VDisks[id] = vd.meta.Clone()
		s.Leases[id] = LeaseInfo{Holder: vd.lease.holder, Expiry: vd.lease.expiry}
	}
	return s
}

// errNotPrimary builds the standard not-primary error.
func (m *Master) errNotPrimary(what string) error {
	return fmt.Errorf("master %s: %s: %w", m.cfg.Addr, what, util.ErrNotPrimary)
}
