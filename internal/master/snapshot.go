package master

import (
	"encoding/json"
	"errors"
	"fmt"

	"ursa/internal/blockstore"
	"ursa/internal/chunkserver"
	"ursa/internal/coldtier"
	"ursa/internal/proto"
	"ursa/internal/redundancy"
	"ursa/internal/util"
)

// Snapshots and thin clones (the cold tier's metadata plane).
//
// A snapshot freezes a vdisk's content into immutable, checksummed segments
// in the object store: the master allocates each chunk a contiguous
// segment-ID sub-range (replicated before any byte moves, so a failover
// never re-issues an ID), asks each chunk's primary to flush
// (OpFlushChunks), and records the returned extent tables as a SnapshotMeta
// through the op log. A clone is then provisioned in O(metadata): fresh
// chunks are placed as usual but start life with the snapshot's extent refs
// in ChunkMeta.Cold — no data is copied. Replicas demand-fetch extents on
// first access and report back (MOpChunkMaterialized) when fully local,
// which is copy-on-write materialization at extent granularity.

func (m *Master) handleSnapshot(msg *proto.Message) jsonResult {
	var req SnapshotReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	meta, err := m.SnapshotVDisk(req.VDisk, req.Name)
	if err != nil {
		return snapFail(m, err)
	}
	return ok(meta)
}

func (m *Master) handleClone(msg *proto.Message) jsonResult {
	var req CloneReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	meta, err := m.CloneFromSnapshot(req)
	if err != nil {
		return snapFail(m, err)
	}
	return ok(meta)
}

func (m *Master) handleDeleteSnapshot(msg *proto.Message) jsonResult {
	var req SnapshotReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	if err := m.DeleteSnapshot(req.Name); err != nil {
		return snapFail(m, err)
	}
	return ok(nil)
}

// snapFail maps a snapshot-path error to its wire status.
func snapFail(m *Master, err error) jsonResult {
	switch {
	case errors.Is(err, util.ErrNotPrimary):
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.notPrimaryLocked()
	case errors.Is(err, util.ErrExists):
		return fail(proto.StatusExists)
	case errors.Is(err, util.ErrNotFound):
		return fail(proto.StatusNotFound)
	case errors.Is(err, util.ErrQuota):
		return fail(proto.StatusQuota)
	default:
		return fail(proto.StatusError)
	}
}

// coldEnabled reports whether the cluster has a cold tier configured.
func (m *Master) coldEnabled() bool { return m.cfg.ObjstoreAddr != "" }

// SnapshotVDisk flushes vdisk vdiskName's content to the object store and
// records it as snapshot snapName. Snapshots are crash-consistent at extent
// granularity: a write racing the flush lands in either the snapshot or
// only the live disk, but once recorded the snapshot never changes.
func (m *Master) SnapshotVDisk(vdiskName, snapName string) (*SnapshotMeta, error) {
	if !m.coldEnabled() {
		return nil, fmt.Errorf("master: snapshot %q: no object store configured: %w",
			snapName, util.ErrNotFound)
	}
	m.mu.Lock()
	if m.replicationEnabled() && !m.primary {
		m.mu.Unlock()
		return nil, m.errNotPrimary("snapshot " + snapName)
	}
	id, okName := m.byName[vdiskName]
	if !okName {
		m.mu.Unlock()
		return nil, fmt.Errorf("master: snapshot source %q: %w", vdiskName, util.ErrNotFound)
	}
	if _, dup := m.snapshots[snapName]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("master: snapshot %q: %w", snapName, util.ErrExists)
	}
	src := m.vdisks[id].meta.Clone()
	// Allocate the whole flush's segment-ID space up front and replicate the
	// new watermark before any byte moves: a promoted standby continues from
	// the watermark and can never re-issue an ID already written to the
	// store (write-once discipline). The GC treats allocated-but-unrecorded
	// segments of a failed flush as garbage and deletes them later.
	segLo := m.nextSeg
	m.nextSeg += uint64(len(src.Chunks)) * coldtier.SegsPerChunk
	m.appendLocked(entryKindAllocSegs, entryAllocSegs{NextSeg: m.nextSeg})
	// Block GC while the flush is in flight: its fresh segments have no
	// metadata referencing them yet and must not be judged dead.
	m.inflightFlushes++
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.inflightFlushes--
		m.mu.Unlock()
	}()

	// Group the chunks by their primary replica so each server flushes its
	// whole share in one RPC.
	type flushTarget struct {
		idx int
		fc  chunkserver.FlushChunk
	}
	groups := make(map[string][]flushTarget)
	for i, cm := range src.Chunks {
		base := segLo + uint64(i)*coldtier.SegsPerChunk
		addr := cm.Replicas[0].Addr
		groups[addr] = append(groups[addr], flushTarget{i, chunkserver.FlushChunk{
			Chunk: blockstore.MakeChunkID(id, uint32(i)),
			SegLo: base,
			SegHi: base + coldtier.SegsPerChunk,
		}})
	}
	extents := make([][]coldtier.ExtentRef, len(src.Chunks))
	for addr, targets := range groups {
		freq := chunkserver.FlushChunksReq{ObjAddr: m.cfg.ObjstoreAddr}
		for _, t := range targets {
			freq.Chunks = append(freq.Chunks, t.fc)
		}
		payload, err := json.Marshal(freq)
		if err != nil {
			return nil, err
		}
		// A flush streams whole chunks through the fabric to the object
		// store: give it clone-class headroom, not a control RPC's.
		resp, err := m.callT(addr, &proto.Message{
			Op:      proto.OpFlushChunks,
			Payload: payload,
		}, 120*m.cfg.RPCTimeout)
		if err != nil {
			return nil, fmt.Errorf("master: snapshot %q: flush on %s: %w", snapName, addr, err)
		}
		if resp.Status != proto.StatusOK {
			return nil, fmt.Errorf("master: snapshot %q: flush on %s: %s", snapName, addr, resp.Status)
		}
		var fresp chunkserver.FlushChunksResp
		if err := json.Unmarshal(resp.Payload, &fresp); err != nil || len(fresp.Extents) != len(targets) {
			return nil, fmt.Errorf("master: snapshot %q: bad flush reply from %s", snapName, addr)
		}
		for k, t := range targets {
			extents[t.idx] = fresp.Extents[k]
		}
	}

	m.mu.Lock()
	// Re-check primacy under the lock: a master deposed mid-flush must not
	// record a snapshot the new primary knows nothing about. The flushed
	// segments become garbage the new primary's GC collects.
	if m.replicationEnabled() && !m.primary {
		m.mu.Unlock()
		return nil, m.errNotPrimary("snapshot " + snapName)
	}
	if _, dup := m.snapshots[snapName]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("master: snapshot %q: %w", snapName, util.ErrExists)
	}
	m.nextID++
	meta := SnapshotMeta{
		ID:          m.nextID,
		Name:        snapName,
		Size:        src.Size,
		StripeGroup: src.StripeGroup,
		StripeUnit:  src.StripeUnit,
		Chunks:      extents,
	}
	m.snapshots[snapName] = &meta
	m.appendLocked(entryKindPutSnapshot, entryPutSnapshot{Meta: meta.Clone(), NextID: m.nextID})
	m.mu.Unlock()
	out := meta.Clone()
	return &out, nil
}

// CloneFromSnapshot provisions a new vdisk from a snapshot in O(metadata):
// chunks are placed as usual but created with the snapshot's extent refs
// instead of data — replicas demand-fetch on first access. Clones are
// mirror-only: RS segment holders store encoded slices, which a raw extent
// fetch cannot fill.
func (m *Master) CloneFromSnapshot(req CloneReq) (*VDiskMeta, error) {
	if !m.coldEnabled() {
		return nil, fmt.Errorf("master: clone %q: no object store configured: %w",
			req.Name, util.ErrNotFound)
	}
	repl := req.Replication
	if repl <= 0 {
		repl = m.cfg.Replication
	}
	m.mu.Lock()
	if m.replicationEnabled() && !m.primary {
		m.mu.Unlock()
		return nil, m.errNotPrimary("clone " + req.Name)
	}
	snap, okSnap := m.snapshots[req.Snapshot]
	if !okSnap {
		m.mu.Unlock()
		return nil, fmt.Errorf("master: clone source snapshot %q: %w", req.Snapshot, util.ErrNotFound)
	}
	if _, exists := m.byName[req.Name]; exists {
		m.mu.Unlock()
		return nil, fmt.Errorf("master: vdisk %q: %w", req.Name, util.ErrExists)
	}
	m.nextID++
	id := m.nextID
	chunks := make([]ChunkMeta, len(snap.Chunks))
	for i := range chunks {
		cm, err := m.placeChunkLocked(repl, redundancy.Spec{})
		if err != nil {
			m.mu.Unlock()
			return nil, err
		}
		if refs := snap.Chunks[i]; len(refs) > 0 {
			cm.Cold = append([]coldtier.ExtentRef(nil), refs...)
		}
		chunks[i] = cm
	}
	meta := VDiskMeta{
		ID:             id,
		Name:           req.Name,
		Size:           snap.Size,
		StripeGroup:    snap.StripeGroup,
		StripeUnit:     snap.StripeUnit,
		Chunks:         chunks,
		LeaseTTL:       m.cfg.LeaseTTL,
		WriteRateLimit: m.cfg.WriteRateLimit,
	}
	m.vdisks[id] = &vdisk{meta: meta}
	m.byName[req.Name] = id
	m.appendLocked(entryKindPutVDisk, entryPutVDisk{
		Meta: meta.Clone(), NextID: m.nextID,
		NextPrimary: m.nextPrimary, NextBackup: m.nextBackup,
	})
	m.mu.Unlock()

	for i, cm := range chunks {
		if err := m.createChunkReplicas(blockstore.MakeChunkID(id, uint32(i)), cm, redundancy.Spec{}); err != nil {
			m.deleteVDiskByID(id) // best-effort cleanup
			return nil, err
		}
	}
	out := meta.Clone()
	return &out, nil
}

// DeleteSnapshot removes a snapshot's metadata. Its segments become garbage
// (up to extents still referenced by not-yet-materialized clones) and are
// reclaimed by the next GC pass.
func (m *Master) DeleteSnapshot(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.replicationEnabled() && !m.primary {
		return m.errNotPrimary("delete snapshot " + name)
	}
	if _, okName := m.snapshots[name]; !okName {
		return fmt.Errorf("master: snapshot %q: %w", name, util.ErrNotFound)
	}
	delete(m.snapshots, name)
	m.appendLocked(entryKindDeleteSnapshot, entryDeleteSnapshot{Name: name})
	return nil
}

// GetSnapshot returns a snapshot's metadata (Go API for tests and benches).
func (m *Master) GetSnapshot(name string) (*SnapshotMeta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap, okName := m.snapshots[name]
	if !okName {
		return nil, fmt.Errorf("master: snapshot %q: %w", name, util.ErrNotFound)
	}
	out := snap.Clone()
	return &out, nil
}

// handleMaterialized records one replica's report that a cloned chunk is
// fully local. Only when every current replica has reported does the master
// drop the chunk's cold refs (replicated): clearing earlier would strand the
// laggards — a GC remap refreshes refs from this table, and an emptied table
// would leave them nothing to fetch from. The report set itself is
// primary-local soft state: losing it across a failover merely delays the
// clear until the (idempotent) reports recur, never breaks a fetch.
func (m *Master) handleMaterialized(msg *proto.Message) jsonResult {
	var req MaterializedReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.replicationEnabled() && !m.primary {
		return m.notPrimaryLocked()
	}
	vd, okID := m.vdisks[req.VDisk]
	if !okID || int(req.ChunkIndex) >= len(vd.meta.Chunks) {
		return fail(proto.StatusNotFound)
	}
	cm := &vd.meta.Chunks[req.ChunkIndex]
	if len(cm.Cold) == 0 {
		return ok(nil)
	}
	key := uint64(blockstore.MakeChunkID(req.VDisk, req.ChunkIndex))
	set := m.coldReports[key]
	if set == nil {
		set = make(map[string]bool)
		m.coldReports[key] = set
	}
	set[req.Addr] = true
	for _, r := range cm.Replicas {
		if !set[r.Addr] {
			return ok(nil)
		}
	}
	cm.Cold = nil
	delete(m.coldReports, key)
	m.appendLocked(entryKindSetCold, entrySetCold{VDisk: req.VDisk, Index: req.ChunkIndex})
	return ok(nil)
}

// handleGetColdRefs serves a chunk's current cold extent table — the
// refresh path a replica takes when a GC segment rewrite invalidated the
// refs it was created with.
func (m *Master) handleGetColdRefs(msg *proto.Message) jsonResult {
	var req ColdRefsReq
	if err := json.Unmarshal(msg.Payload, &req); err != nil {
		return fail(proto.StatusError)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	vd, okID := m.vdisks[req.VDisk]
	if !okID || int(req.ChunkIndex) >= len(vd.meta.Chunks) {
		return fail(proto.StatusNotFound)
	}
	refs := vd.meta.Chunks[req.ChunkIndex].Cold
	return ok(ColdRefsResp{Refs: append([]coldtier.ExtentRef(nil), refs...)})
}
