package master

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/chunkserver"
	"ursa/internal/clock"
	"ursa/internal/journal"
	"ursa/internal/proto"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// env is a master plus chunk servers on a simnet.
type env struct {
	net    *transport.SimNet
	m      *Master
	clk    *clock.Scaled
	nSSD   int
	nHDD   int
	closer []func()
}

func fastSSD() simdisk.SSDModel {
	return simdisk.SSDModel{
		Capacity: 2 * util.GiB, Parallelism: 32,
		ReadLatency: 2 * time.Microsecond, WriteLatency: 4 * time.Microsecond,
		ReadBandwidth: 20e9, WriteBandwidth: 12e9,
	}
}

func fastHDD() simdisk.HDDModel {
	return simdisk.HDDModel{
		Capacity: 4 * util.GiB, SeekMax: 400 * time.Microsecond,
		SeekSettle: 25 * time.Microsecond, RPM: 288000,
		Bandwidth: 6e9, TrackSkip: 512 * util.KiB,
	}
}

// newEnv builds a master with nMachines machines, each carrying one SSD
// (primary) and one HDD (backup) server.
func newEnv(t *testing.T, nMachines int, hybrid bool) *env {
	t.Helper()
	// Scaled clock so lease expiry can be fast-forwarded with Advance.
	clk := clock.NewScaled(0.05)
	net := transport.NewSimNet(clk, time.Microsecond)
	e := &env{net: net, clk: clk}

	ml, err := net.Listen("master", transport.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	e.m = New(Config{
		Addr:       "master",
		Clock:      clk,
		Dialer:     net.Dialer("master", transport.NodeConfig{}),
		LeaseTTL:   10 * time.Second,
		RPCTimeout: 5 * time.Second,
		HybridMode: hybrid,
	})
	e.m.Serve(ml)
	e.closer = append(e.closer, e.m.Close)

	for i := 0; i < nMachines; i++ {
		machine := "m" + string(rune('0'+i))
		mkServer := func(addr string, role chunkserver.Role) {
			var store *blockstore.Store
			var jset *journal.Set
			if role == chunkserver.RolePrimary {
				store = blockstore.New(simdisk.NewSSD(fastSSD(), clk), 0)
			} else {
				hdd := simdisk.NewHDD(fastHDD(), clk)
				store = blockstore.New(hdd, util.AlignDown(hdd.Size()/2, util.ChunkSize))
				jset = journal.NewSet(clk, store, journal.DefaultConfig())
				jset.AddSSDJournal(addr+"-j", simdisk.NewSSD(fastSSD(), clk), 0, 64*util.MiB)
				jset.Start()
			}
			srv := chunkserver.New(chunkserver.Config{
				Addr: addr, Role: role, Clock: clk,
				Dialer:      net.Dialer(addr, transport.NodeConfig{}),
				ReplTimeout: time.Second,
			}, store, jset)
			l, err := net.Listen(addr, transport.NodeConfig{})
			if err != nil {
				t.Fatal(err)
			}
			srv.Serve(l)
			e.closer = append(e.closer, srv.Close)
			e.m.AddServer(addr, machine, role == chunkserver.RolePrimary)
		}
		mkServer(machine+"/ssd", chunkserver.RolePrimary)
		e.nSSD++
		if hybrid {
			mkServer(machine+"/hdd", chunkserver.RoleBackup)
			e.nHDD++
		}
	}
	t.Cleanup(func() {
		for i := len(e.closer) - 1; i >= 0; i-- {
			e.closer[i]()
		}
	})
	return e
}

// call drives the master through its RPC handler (as a client would).
func (e *env) call(t *testing.T, op proto.Op, req, out any) proto.Status {
	t.Helper()
	var payload []byte
	if req != nil {
		payload, _ = json.Marshal(req)
	}
	resp := e.m.Handle(&proto.Message{Op: op, Payload: payload})
	if resp.Status == proto.StatusOK && out != nil && len(resp.Payload) > 0 {
		if err := json.Unmarshal(resp.Payload, out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.Status
}

func TestCreatePlacementConstraints(t *testing.T) {
	e := newEnv(t, 4, true)
	var meta VDiskMeta
	st := e.call(t, proto.MOpCreateVDisk,
		CreateVDiskReq{Name: "d", Size: 4 * util.ChunkSize}, &meta)
	if st != proto.StatusOK {
		t.Fatal(st)
	}
	if len(meta.Chunks) != 4 {
		t.Fatalf("chunks = %d", len(meta.Chunks))
	}
	for i, cm := range meta.Chunks {
		if len(cm.Replicas) != 3 {
			t.Fatalf("chunk %d replicas = %d", i, len(cm.Replicas))
		}
		if !cm.Replicas[0].SSD {
			t.Errorf("chunk %d primary not SSD", i)
		}
		// Hybrid: backups on HDD servers; all replicas on distinct
		// machines (machine = addr prefix before '/').
		machines := map[byte]bool{}
		for j, r := range cm.Replicas {
			if j > 0 && r.SSD {
				t.Errorf("chunk %d backup %d on SSD in hybrid mode", i, j)
			}
			mkey := r.Addr[1] // "mX/..."
			if machines[mkey] {
				t.Errorf("chunk %d has two replicas on machine %c", i, mkey)
			}
			machines[mkey] = true
		}
	}
}

func TestCreateSSDOnlyPlacement(t *testing.T) {
	e := newEnv(t, 4, false)
	var meta VDiskMeta
	st := e.call(t, proto.MOpCreateVDisk,
		CreateVDiskReq{Name: "d", Size: util.ChunkSize}, &meta)
	if st != proto.StatusOK {
		t.Fatal(st)
	}
	for _, r := range meta.Chunks[0].Replicas {
		if !r.SSD {
			t.Error("SSD-only placement used an HDD server")
		}
	}
}

func TestCreateValidation(t *testing.T) {
	e := newEnv(t, 4, true)
	if st := e.call(t, proto.MOpCreateVDisk,
		CreateVDiskReq{Name: "bad", Size: 1000}, nil); st != proto.StatusError {
		t.Errorf("unaligned size = %s", st)
	}
	if st := e.call(t, proto.MOpCreateVDisk,
		CreateVDiskReq{Name: "bad2", Size: util.ChunkSize, StripeUnit: 3000}, nil); st != proto.StatusError {
		t.Errorf("bad stripe unit = %s", st)
	}
	e.call(t, proto.MOpCreateVDisk, CreateVDiskReq{Name: "dup", Size: util.ChunkSize}, nil)
	if st := e.call(t, proto.MOpCreateVDisk,
		CreateVDiskReq{Name: "dup", Size: util.ChunkSize}, nil); st != proto.StatusExists {
		t.Errorf("duplicate = %s", st)
	}
}

func TestCreateFailsWithoutDistinctMachines(t *testing.T) {
	e := newEnv(t, 2, true) // only 2 machines: cannot place 3 replicas
	if st := e.call(t, proto.MOpCreateVDisk,
		CreateVDiskReq{Name: "d", Size: util.ChunkSize}, nil); st != proto.StatusQuota {
		t.Errorf("impossible placement = %s", st)
	}
}

func TestLeaseLifecycle(t *testing.T) {
	e := newEnv(t, 4, true)
	e.call(t, proto.MOpCreateVDisk, CreateVDiskReq{Name: "d", Size: util.ChunkSize}, nil)

	var meta VDiskMeta
	if st := e.call(t, proto.MOpOpenVDisk,
		OpenVDiskReq{Name: "d", Client: "alice"}, &meta); st != proto.StatusOK {
		t.Fatal(st)
	}
	// Second client is rejected while the lease holds.
	if st := e.call(t, proto.MOpOpenVDisk,
		OpenVDiskReq{Name: "d", Client: "bob"}, nil); st != proto.StatusLeaseHeld {
		t.Errorf("second open = %s", st)
	}
	// The same client may reopen (idempotent).
	if st := e.call(t, proto.MOpOpenVDisk,
		OpenVDiskReq{Name: "d", Client: "alice"}, nil); st != proto.StatusOK {
		t.Errorf("reopen = %s", st)
	}
	// Renewal by the holder succeeds; by others fails.
	if st := e.call(t, proto.MOpRenewLease,
		LeaseReq{ID: meta.ID, Client: "alice"}, nil); st != proto.StatusOK {
		t.Errorf("renew = %s", st)
	}
	if st := e.call(t, proto.MOpRenewLease,
		LeaseReq{ID: meta.ID, Client: "bob"}, nil); st != proto.StatusLeaseHeld {
		t.Errorf("foreign renew = %s", st)
	}
	// Close releases; bob can now open.
	if st := e.call(t, proto.MOpCloseVDisk,
		LeaseReq{ID: meta.ID, Client: "alice"}, nil); st != proto.StatusOK {
		t.Errorf("close = %s", st)
	}
	if st := e.call(t, proto.MOpOpenVDisk,
		OpenVDiskReq{Name: "d", Client: "bob"}, nil); st != proto.StatusOK {
		t.Errorf("open after close = %s", st)
	}
}

func TestLeaseExpiry(t *testing.T) {
	e := newEnv(t, 4, true)
	e.call(t, proto.MOpCreateVDisk, CreateVDiskReq{Name: "d", Size: util.ChunkSize}, nil)
	var meta VDiskMeta
	e.call(t, proto.MOpOpenVDisk, OpenVDiskReq{Name: "d", Client: "alice"}, &meta)

	// Fast-forward past the TTL without renewal: bob may take over.
	e.clk.Advance(time.Minute)
	if st := e.call(t, proto.MOpOpenVDisk,
		OpenVDiskReq{Name: "d", Client: "bob"}, nil); st != proto.StatusOK {
		t.Errorf("open after expiry = %s", st)
	}
	// Alice's stale renewal now fails.
	if st := e.call(t, proto.MOpRenewLease,
		LeaseReq{ID: meta.ID, Client: "alice"}, nil); st != proto.StatusLeaseHeld {
		t.Errorf("stale renew = %s", st)
	}
}

func TestGetAndDelete(t *testing.T) {
	e := newEnv(t, 4, true)
	e.call(t, proto.MOpCreateVDisk, CreateVDiskReq{Name: "d", Size: util.ChunkSize}, nil)
	var meta VDiskMeta
	if st := e.call(t, proto.MOpGetVDisk, GetVDiskReq{Name: "d"}, &meta); st != proto.StatusOK {
		t.Fatal(st)
	}
	if st := e.call(t, proto.MOpGetVDisk, GetVDiskReq{ID: meta.ID}, &meta); st != proto.StatusOK {
		t.Fatal(st)
	}
	if st := e.call(t, proto.MOpGetVDisk, GetVDiskReq{Name: "nope"}, nil); st != proto.StatusNotFound {
		t.Errorf("missing get = %s", st)
	}
	if st := e.call(t, proto.MOpDeleteVDisk, GetVDiskReq{Name: "d"}, nil); st != proto.StatusOK {
		t.Fatal(st)
	}
	if st := e.call(t, proto.MOpGetVDisk, GetVDiskReq{Name: "d"}, nil); st != proto.StatusNotFound {
		t.Errorf("get after delete = %s", st)
	}
}

func TestRegisterRPCAndStats(t *testing.T) {
	e := newEnv(t, 4, true)
	if st := e.call(t, proto.MOpRegister,
		RegisterReq{Addr: "mX/extra", Machine: "mX", SSD: true}, nil); st != proto.StatusOK {
		t.Fatal(st)
	}
	var stats StatsResp
	if st := e.call(t, proto.MOpStats, nil, &stats); st != proto.StatusOK {
		t.Fatal(st)
	}
	if stats.Servers != e.nSSD+e.nHDD+1 {
		t.Errorf("servers = %d, want %d", stats.Servers, e.nSSD+e.nHDD+1)
	}
	// Duplicate registration is idempotent.
	e.call(t, proto.MOpRegister, RegisterReq{Addr: "mX/extra", Machine: "mX", SSD: true}, nil)
	e.call(t, proto.MOpStats, nil, &stats)
	if stats.Servers != e.nSSD+e.nHDD+1 {
		t.Errorf("duplicate register changed count: %d", stats.Servers)
	}
}

func TestRecoverChunkReplacesDeadPrimary(t *testing.T) {
	e := newEnv(t, 4, true)
	var meta VDiskMeta
	if st := e.call(t, proto.MOpCreateVDisk,
		CreateVDiskReq{Name: "d", Size: util.ChunkSize}, &meta); st != proto.StatusOK {
		t.Fatal(st)
	}
	primary := meta.Chunks[0].Replicas[0].Addr
	e.net.Crash(primary)

	newMeta, err := e.m.RecoverChunk(meta.ID, 0, primary)
	if err != nil {
		t.Fatal(err)
	}
	if newMeta.View != 2 {
		t.Errorf("view = %d", newMeta.View)
	}
	if len(newMeta.Replicas) != 3 {
		t.Fatalf("replicas = %d", len(newMeta.Replicas))
	}
	for _, r := range newMeta.Replicas {
		if r.Addr == primary {
			t.Error("dead primary still placed")
		}
	}
	if !newMeta.Replicas[0].SSD {
		t.Error("replacement primary not on SSD")
	}
	// Metadata reflects the new view.
	var got VDiskMeta
	e.call(t, proto.MOpGetVDisk, GetVDiskReq{ID: meta.ID}, &got)
	if got.Chunks[0].View != 2 {
		t.Errorf("stored view = %d", got.Chunks[0].View)
	}
	var stats StatsResp
	e.call(t, proto.MOpStats, nil, &stats)
	if stats.ViewChanges != 1 {
		t.Errorf("view changes = %d", stats.ViewChanges)
	}
}

func TestRecoverChunkRepairsLaggard(t *testing.T) {
	e := newEnv(t, 4, true)
	var meta VDiskMeta
	e.call(t, proto.MOpCreateVDisk, CreateVDiskReq{Name: "d", Size: util.ChunkSize}, &meta)

	// Advance one backup ahead of the other via direct replicate calls.
	b1 := meta.Chunks[0].Replicas[1].Addr
	conn, err := e.net.Dialer("driver", transport.NodeConfig{}).Dial(b1)
	if err != nil {
		t.Fatal(err)
	}
	cli := transport.NewClient(conn, e.clk)
	defer cli.Close()
	id := blockstore.MakeChunkID(meta.ID, 0)
	for v := uint64(0); v < 3; v++ {
		resp, err := cli.Call(&proto.Message{
			Op: proto.OpReplicate, Chunk: id, Off: int64(v) * 512,
			View: 1, Version: v, Payload: make([]byte, 512),
		}, 0)
		if err != nil || resp.Status != proto.StatusOK {
			t.Fatalf("seed write: %v %v", err, resp)
		}
	}
	// Recover with no dead replica: pure repair to versionH=3.
	if _, err := e.m.RecoverChunk(meta.ID, 0, ""); err != nil {
		t.Fatal(err)
	}
	// All replicas should now report version 3.
	for _, r := range meta.Chunks[0].Replicas {
		c2, err := e.net.Dialer("driver", transport.NodeConfig{}).Dial(r.Addr)
		if err != nil {
			t.Fatal(err)
		}
		cc := transport.NewClient(c2, e.clk)
		resp, err := cc.Call(&proto.Message{Op: proto.OpGetVersion, Chunk: id}, 0)
		cc.Close()
		if err != nil || resp.Version != 3 {
			t.Errorf("%s version = %d (err %v)", r.Addr, resp.Version, err)
		}
	}
}

func TestRecoverUnknownChunk(t *testing.T) {
	e := newEnv(t, 4, true)
	if _, err := e.m.RecoverChunk(99, 0, ""); !errors.Is(err, util.ErrNotFound) {
		t.Errorf("unknown vdisk recover: %v", err)
	}
}
