package journal

import "sync"

// Mod describes one modified range of a chunk, tagged with the version of
// the write that produced it.
type Mod struct {
	Version uint64
	Off     int64
	Len     int
}

// Lite is the paper's "journal lite" (§4.2.1): an in-memory ring of recent
// write positions kept by *every* replica — primary or backup — so that a
// replica recovering from transient unavailability can be repaired
// incrementally by transferring only the ranges modified since its version,
// instead of the whole 64 MB chunk.
type Lite struct {
	mu      sync.Mutex
	ring    []Mod
	start   int // index of the oldest entry
	count   int
	minVer  uint64 // oldest version still queryable (entries >= minVer kept)
	haveMin bool
}

// NewLite returns a journal lite retaining the most recent capacity writes.
func NewLite(capacity int) *Lite {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Lite{ring: make([]Mod, capacity)}
}

// Record notes that version wrote [off, off+n).
func (l *Lite) Record(version uint64, off int64, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == len(l.ring) {
		// Evict the oldest; repairs from before it now need full copies.
		evicted := l.ring[l.start]
		l.start = (l.start + 1) % len(l.ring)
		l.count--
		l.minVer = evicted.Version + 1
		l.haveMin = true
	} else if !l.haveMin {
		l.minVer = version
		l.haveMin = true
	}
	l.ring[(l.start+l.count)%len(l.ring)] = Mod{Version: version, Off: off, Len: n}
	l.count++
}

// Since returns the ranges modified by versions > fromVersion, oldest
// first. ok is false when the history has been garbage-collected past
// fromVersion, in which case the whole chunk must be transferred instead
// (§4.2.1).
func (l *Lite) Since(fromVersion uint64) (mods []Mod, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.haveMin && fromVersion+1 < l.minVer {
		return nil, false
	}
	for i := 0; i < l.count; i++ {
		m := l.ring[(l.start+i)%len(l.ring)]
		if m.Version > fromVersion {
			mods = append(mods, m)
		}
	}
	return mods, true
}

// Len returns the number of retained entries.
func (l *Lite) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}
