package journal

import (
	"fmt"

	"ursa/internal/blockstore"
	"ursa/internal/jindex"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// joffRegionBits carves the 34-bit journal-offset space into per-journal
// regions of 2^30 sectors (512 GiB), so an index entry's JOff identifies
// both the journal and the position inside it.
const joffRegionBits = 30

// Journal is one circular append-only log occupying a byte region of a
// disk. It is managed by a Set, which owns locking and the per-chunk
// indexes; Journal itself only tracks space and performs device I/O.
type Journal struct {
	disk simdisk.Disk
	name string
	base int64 // byte offset of the region on the disk
	size int64 // region size in bytes

	joffBase uint64 // first sector of this journal's joff region

	// head/tail are monotonically increasing byte counters; position on
	// disk is counter % size. Guarded by the Set's mutex.
	head, tail int64

	// fifo holds unreplayed records in reservation (position) order.
	fifo []*pendingRecord

	// commitq holds appends awaiting a group-commit flush, in reservation
	// order; flushing marks an active batch leader. Both are guarded by the
	// Set's mutex. The invariant flushing==false ⇒ commitq empty holds:
	// a leader only clears flushing after emptying the queue or handing
	// leadership to the new queue head.
	commitq  []*commitReq
	flushing bool
	queued   int // commit-queue depth incl. the in-flight batch (striping)

	// dead marks a journal whose device write failed: the picker skips it
	// and queued records re-route to surviving journals. A dead journal
	// never comes back (its region's contents are suspect); already-durable
	// records still replay if the device can serve reads. Guarded by the
	// Set's mutex.
	dead bool

	appends        int64 // total records appended (stats)
	bytesAppended  int64
	flushes        int64 // group-commit device write batches
	batchedRecords int64 // records committed across those batches

	// Flush scratch, reused across batches. Only the journal's current
	// batch leader touches these (leadership is exclusive), so no lock
	// guards them: insertScratch/orderScratch accumulate one flush's index
	// inserts, iovHdrs/iovBufs one run's scatter/gather list.
	insertScratch map[blockstore.ChunkID][]jindex.Extent
	orderScratch  []blockstore.ChunkID
	iovHdrs       [][]byte
	iovBufs       [][]byte
}

// pendingRecord is the in-memory replay queue entry for one record (or a
// wrap pad, which has chunk == padChunk and only consumes space).
type pendingRecord struct {
	chunk    blockstore.ChunkID
	off      int64  // chunk-relative byte offset
	dataLen  int    // payload bytes
	version  uint64 // chunk version of the write
	dataJOff uint64 // first journal sector of the payload
	footer   int64  // total bytes consumed (header+data+pad)
	ready    bool   // payload durable in the journal; index updated
	failed   bool   // device write failed; skip at replay
}

const padChunk = blockstore.ChunkID(^uint64(0))

// newJournal creates a journal over disk[base, base+size) with journal
// region index region (assigning its joff space).
func newJournal(name string, disk simdisk.Disk, base, size int64, region int) *Journal {
	if size%util.SectorSize != 0 || base%util.SectorSize != 0 {
		panic("journal: unaligned region")
	}
	if size > int64(1)<<(joffRegionBits+9) {
		panic("journal: region exceeds joff space")
	}
	return &Journal{
		disk:     disk,
		name:     name,
		base:     base,
		size:     size,
		joffBase: uint64(region) << joffRegionBits,
	}
}

// freeBytes returns unreserved space.
func (j *Journal) freeBytes() int64 { return j.size - (j.head - j.tail) }

// UsedBytes returns space between tail and head (live + pad).
func (j *Journal) UsedBytes() int64 { return j.head - j.tail }

// Size returns the journal region capacity in bytes.
func (j *Journal) Size() int64 { return j.size }

// Appends returns the number of records appended so far.
func (j *Journal) Appends() int64 { return j.appends }

// Name returns the journal's human-readable name ("ssd0", "hdd").
func (j *Journal) Name() string { return j.name }

// fits reports whether a record of dataLen payload bytes could be reserved
// right now, counting any wrap pad the reservation would insert. Caller
// holds the Set lock.
func (j *Journal) fits(dataLen int) bool {
	need := recordBytes(dataLen)
	if need > j.size {
		return false
	}
	pad := int64(0)
	if diskPos := j.head % j.size; diskPos+need > j.size {
		pad = j.size - diskPos
	}
	return j.head+pad+need-j.tail <= j.size
}

// reserve claims space for a record of dataLen payload bytes, handling
// wrap-around, and returns the byte position (monotonic counter) for the
// header. Returns false if the record does not fit. Caller holds the Set
// lock.
func (j *Journal) reserve(dataLen int) (pos int64, ok bool) {
	need := recordBytes(dataLen)
	if need > j.size {
		return 0, false
	}
	diskPos := j.head % j.size
	pad := int64(0)
	if diskPos+need > j.size {
		// Record would straddle the region end: pad to the wrap point so
		// the payload stays contiguous for reads.
		pad = j.size - diskPos
	}
	if j.head+pad+need-j.tail > j.size {
		return 0, false
	}
	if pad > 0 {
		j.fifo = append(j.fifo, &pendingRecord{chunk: padChunk, footer: pad, ready: true})
		j.head += pad
	}
	pos = j.head
	j.head += need
	return pos, true
}

// dataJOff computes the global journal sector of the payload of a record
// whose header sits at byte position pos.
func (j *Journal) dataJOff(pos int64) uint64 {
	return j.joffBase + uint64((pos%j.size+headerSize)/util.SectorSize)
}

// readAtJOff reads n bytes of payload starting at global journal sector
// joff (which must belong to this journal).
func (j *Journal) readAtJOff(p []byte, joff uint64) error {
	local := int64(joff-j.joffBase) * util.SectorSize
	if local < 0 || local+int64(len(p)) > j.size {
		return fmt.Errorf("journal %s: joff %d out of region: %w",
			j.name, joff, util.ErrOutOfRange)
	}
	return j.disk.ReadAt(p, j.base+local)
}

// owns reports whether a global joff falls in this journal's region.
func (j *Journal) owns(joff uint64) bool {
	return joff>>joffRegionBits == j.joffBase>>joffRegionBits
}
