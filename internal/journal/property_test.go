package journal

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

func TestRecordBytesProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw)%(256*util.KiB) + 1
		rb := recordBytes(n)
		// Header sector + sector-aligned data, minimal and aligned.
		return rb >= headerSize+int64(n) &&
			rb < headerSize+int64(n)+util.SectorSize &&
			rb%util.SectorSize == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderCodecProperty(t *testing.T) {
	f := func(chunk uint64, offSec uint32, lenSec uint16, version uint64, sum uint32) bool {
		h := header{
			chunk:    blockstore.ChunkID(chunk),
			off:      int64(offSec%util.SectorsPerChunk) * util.SectorSize,
			dataLen:  (int(lenSec)%128 + 1) * util.SectorSize,
			version:  version,
			checksum: sum,
		}
		buf := make([]byte, headerSize)
		h.encode(buf)
		got, err := decodeHeader(buf)
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestJournalModelEquivalence is the journal's model-based property test:
// a random interleaving of appends, bypass writes, drains and reads must
// always agree byte-for-byte with a flat shadow buffer.
func TestJournalModelEquivalence(t *testing.T) {
	clk := clock.TestClock()
	hm := simdisk.DefaultHDD()
	hm.Capacity = 256 * util.MiB
	hdd := simdisk.NewHDD(hm, clk)
	defer hdd.Close()
	sm := simdisk.DefaultSSD()
	sm.Capacity = 64 * util.MiB
	ssd := simdisk.NewSSD(sm, clk)
	defer ssd.Close()

	sink := blockstore.New(hdd, 0)
	set := NewSet(clk, sink, Config{AutoMergeAt: 64, PollInterval: 100 * time.Microsecond})
	set.AddSSDJournal("j", ssd, 0, 4*util.MiB)
	set.Start()
	defer set.Close()

	id := blockstore.MakeChunkID(1, 0)
	if err := sink.Create(id); err != nil {
		t.Fatal(err)
	}

	const region = 512 * util.KiB
	model := make([]byte, region)
	r := util.NewRand(0xfeed)
	version := uint64(0)

	for op := 0; op < 400; op++ {
		off := util.AlignDown(r.Int63n(region-64*util.KiB), util.SectorSize)
		n := (r.Intn(32) + 1) * util.SectorSize
		switch r.Intn(5) {
		case 0, 1: // journal append
			data := make([]byte, n)
			r.Fill(data)
			version++
			if err := set.Append(nil, id, off, data, version); err != nil {
				t.Fatalf("op %d append: %v", op, err)
			}
			copy(model[off:], data)
		case 2: // bypass write
			data := make([]byte, n)
			r.Fill(data)
			if err := set.WriteDirect(id, data, off); err != nil {
				t.Fatalf("op %d direct: %v", op, err)
			}
			copy(model[off:], data)
		case 3: // drain everything
			set.Drain()
		default: // read and compare
			got := make([]byte, n)
			if err := set.Read(id, got, off); err != nil {
				t.Fatalf("op %d read: %v", op, err)
			}
			if !bytes.Equal(got, model[off:off+int64(n)]) {
				t.Fatalf("op %d: read diverged from model at %d", op, off)
			}
		}
	}
	// Final: drain and verify the entire region through the sink alone.
	set.Drain()
	got := make([]byte, region)
	if err := sink.ReadAt(id, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		for i := range got {
			if got[i] != model[i] {
				t.Fatalf("sink diverged from model at byte %d", i)
			}
		}
	}
}

// TestJournalSpaceAccounting checks the circular buffer invariant: used
// space never exceeds the region and frees fully after a drain.
func TestJournalSpaceAccounting(t *testing.T) {
	clk := clock.TestClock()
	sm := simdisk.DefaultSSD()
	sm.Capacity = 64 * util.MiB
	ssd := simdisk.NewSSD(sm, clk)
	defer ssd.Close()
	hm := simdisk.DefaultHDD()
	hm.Capacity = 256 * util.MiB
	hdd := simdisk.NewHDD(hm, clk)
	defer hdd.Close()

	sink := blockstore.New(hdd, 0)
	set := NewSet(clk, sink, Config{PollInterval: 100 * time.Microsecond})
	j := set.AddSSDJournal("j", ssd, 0, 64*util.KiB)
	set.Start()
	defer set.Close()

	id := blockstore.MakeChunkID(1, 0)
	if err := sink.Create(id); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4*util.KiB)
	for i := 0; i < 100; i++ {
		err := set.Append(nil, id, int64(i%16)*4096, data, uint64(i+1))
		if err != nil {
			// Quota pressure: drain and retry once.
			set.Drain()
			if err = set.Append(nil, id, int64(i%16)*4096, data, uint64(i+1)); err != nil {
				t.Fatalf("append %d after drain: %v", i, err)
			}
		}
		if used := j.UsedBytes(); used < 0 || used > j.Size() {
			t.Fatalf("used bytes out of range: %d of %d", used, j.Size())
		}
	}
	set.Drain()
	if used := j.UsedBytes(); used != 0 {
		t.Errorf("used bytes after full drain = %d", used)
	}
}
