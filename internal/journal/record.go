// Package journal implements URSA's backup journals (§3.2): append-only
// logs that transform random small backup writes into sequential appends,
// replayed asynchronously into the backup HDD's chunk store. A Set manages
// the journals of one backup server — SSD journals first, expanding
// on demand to co-located SSDs and finally to an HDD journal — sharing
// per-chunk composite-key indexes (jindex) that map chunk offsets to
// journal offsets.
//
// All offsets and lengths are sector-aligned (512 B): URSA is a block
// store, and the virtual-disk interface guarantees sector granularity.
package journal

import (
	"encoding/binary"
	"fmt"

	"ursa/internal/blockstore"
	"ursa/internal/util"
)

// Record header layout, one sector on disk before the data sectors:
//
//	magic    uint64
//	chunkID  uint64
//	off      uint64 (bytes within the chunk)
//	dataLen  uint32 (bytes)
//	version  uint64 (chunk version that produced the write)
//	checksum uint32 (CRC-32C of the data)
const (
	recordMagic  = 0x55525341_4a4f5552 // "URSAJOUR"
	headerSize   = util.SectorSize
	headerFields = 8 + 8 + 8 + 4 + 8 + 4
)

// header describes one journal record.
type header struct {
	chunk    blockstore.ChunkID
	off      int64
	dataLen  int
	version  uint64
	checksum uint32
}

// encode writes the header into a sector-sized buffer.
func (h header) encode(buf []byte) {
	if len(buf) < headerSize {
		panic("journal: header buffer too small")
	}
	binary.LittleEndian.PutUint64(buf[0:], recordMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(h.chunk))
	binary.LittleEndian.PutUint64(buf[16:], uint64(h.off))
	binary.LittleEndian.PutUint32(buf[24:], uint32(h.dataLen))
	binary.LittleEndian.PutUint64(buf[28:], h.version)
	binary.LittleEndian.PutUint32(buf[36:], h.checksum)
	for i := headerFields; i < headerSize; i++ {
		buf[i] = 0
	}
}

// decodeHeader parses a header sector, validating the magic.
func decodeHeader(buf []byte) (header, error) {
	if len(buf) < headerSize {
		return header{}, fmt.Errorf("journal: short header: %d bytes", len(buf))
	}
	if m := binary.LittleEndian.Uint64(buf[0:]); m != recordMagic {
		return header{}, fmt.Errorf("journal: bad magic %#x", m)
	}
	return header{
		chunk:    blockstore.ChunkID(binary.LittleEndian.Uint64(buf[8:])),
		off:      int64(binary.LittleEndian.Uint64(buf[16:])),
		dataLen:  int(binary.LittleEndian.Uint32(buf[24:])),
		version:  binary.LittleEndian.Uint64(buf[28:]),
		checksum: binary.LittleEndian.Uint32(buf[36:]),
	}, nil
}

// recordBytes returns the on-disk footprint of a record with dataLen bytes
// of payload: one header sector plus sector-aligned data.
func recordBytes(dataLen int) int64 {
	return headerSize + util.AlignUp(int64(dataLen), util.SectorSize)
}

// checkAligned validates sector alignment of a chunk-relative range.
func checkAligned(off int64, n int) error {
	if off%util.SectorSize != 0 || n%util.SectorSize != 0 || n == 0 ||
		off < 0 || off+int64(n) > util.ChunkSize {
		return fmt.Errorf("journal: unaligned or out-of-range [%d,%d): %w",
			off, off+int64(n), util.ErrOutOfRange)
	}
	return nil
}
