package journal

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// testEnv wires an SSD journal set in front of an HDD chunk store.
type testEnv struct {
	set  *Set
	sink *blockstore.Store
	ssd  simdisk.Disk
	hdd  simdisk.Disk
}

func newEnv(t *testing.T, ssdJournalSize int64, withHDDJournal bool) *testEnv {
	return newEnvStart(t, ssdJournalSize, withHDDJournal, true)
}

// newEnvStart optionally defers Start so tests can stage appends before the
// replayer runs.
func newEnvStart(t *testing.T, ssdJournalSize int64, withHDDJournal, start bool) *testEnv {
	t.Helper()
	clk := clock.TestClock()

	hm := simdisk.DefaultHDD()
	hm.Capacity = 512 * util.MiB
	hdd := simdisk.NewHDD(hm, clk)

	sm := simdisk.DefaultSSD()
	sm.Capacity = 256 * util.MiB
	ssd := simdisk.NewSSD(sm, clk)

	// Backup chunks live on the front of the HDD; the HDD journal (when
	// present) takes the tail 64 MiB.
	sinkLimit := int64(0)
	if withHDDJournal {
		sinkLimit = hm.Capacity - 64*util.MiB
	}
	sink := blockstore.New(hdd, sinkLimit)

	set := NewSet(clk, sink, Config{AutoMergeAt: 256, PollInterval: 200 * time.Microsecond})
	set.AddSSDJournal("ssd0", ssd, 0, ssdJournalSize)
	if withHDDJournal {
		set.AddHDDJournal("hdd", hdd, sinkLimit, 64*util.MiB)
	}
	if start {
		set.Start()
	}
	t.Cleanup(func() {
		set.Close()
		ssd.Close()
		hdd.Close()
	})
	return &testEnv{set: set, sink: sink, ssd: ssd, hdd: hdd}
}

func (e *testEnv) mustChunk(t *testing.T, id blockstore.ChunkID) {
	t.Helper()
	if err := e.sink.Create(id); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := header{
		chunk:    blockstore.MakeChunkID(3, 9),
		off:      123 * 512,
		dataLen:  4096,
		version:  77,
		checksum: 0xdeadbeef,
	}
	buf := make([]byte, headerSize)
	h.encode(buf)
	got, err := decodeHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip: %+v != %+v", got, h)
	}
}

func TestHeaderBadMagic(t *testing.T) {
	buf := make([]byte, headerSize)
	if _, err := decodeHeader(buf); err == nil {
		t.Error("zero buffer decoded without error")
	}
	if _, err := decodeHeader(buf[:10]); err == nil {
		t.Error("short buffer decoded without error")
	}
}

func TestAppendReadThroughJournal(t *testing.T) {
	e := newEnv(t, 16*util.MiB, false)
	id := blockstore.MakeChunkID(1, 0)
	e.mustChunk(t, id)

	data := make([]byte, 4*util.KiB)
	util.NewRand(1).Fill(data)
	if err := e.set.Append(nil, id, 8192, data, 1); err != nil {
		t.Fatal(err)
	}
	// Read must be served from the journal even before replay.
	got := make([]byte, len(data))
	if err := e.set.Read(id, got, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("journal read mismatch")
	}
}

func TestReplayReachesSink(t *testing.T) {
	e := newEnv(t, 16*util.MiB, false)
	id := blockstore.MakeChunkID(1, 0)
	e.mustChunk(t, id)

	data := make([]byte, 4*util.KiB)
	util.NewRand(2).Fill(data)
	if err := e.set.Append(nil, id, 0, data, 1); err != nil {
		t.Fatal(err)
	}
	e.set.Drain()
	if p := e.set.Pending(); p != 0 {
		t.Fatalf("pending after drain = %d", p)
	}
	// Data must now be on the HDD chunk store directly.
	got := make([]byte, len(data))
	if err := e.sink.ReadAt(id, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("replayed data mismatch on sink")
	}
	// And journal reads still work (via the sink fall-through).
	got2 := make([]byte, len(data))
	if err := e.set.Read(id, got2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, data) {
		t.Error("post-replay read mismatch")
	}
}

func TestOverwriteMergesAtReplay(t *testing.T) {
	// Replayer deliberately not started until both appends are staged, so
	// the overwrite is guaranteed to be pending at replay time.
	e := newEnvStart(t, 16*util.MiB, false, false)
	id := blockstore.MakeChunkID(1, 0)
	e.mustChunk(t, id)

	old := bytes.Repeat([]byte{0x01}, 4096)
	new1 := bytes.Repeat([]byte{0x02}, 4096)
	if err := e.set.Append(nil, id, 0, old, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.set.Append(nil, id, 0, new1, 2); err != nil {
		t.Fatal(err)
	}
	e.set.Start()
	e.set.Drain()
	st := e.set.Stats()
	if st.MergedSectors == 0 {
		t.Errorf("overwrite not merged: %+v", st)
	}
	got := make([]byte, 4096)
	if err := e.sink.ReadAt(id, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, new1) {
		t.Error("sink holds stale data after merge")
	}
}

func TestPartialOverwriteKeepsTails(t *testing.T) {
	e := newEnv(t, 16*util.MiB, false)
	id := blockstore.MakeChunkID(1, 0)
	e.mustChunk(t, id)

	base := bytes.Repeat([]byte{0xaa}, 8192)
	mid := bytes.Repeat([]byte{0xbb}, 1024)
	if err := e.set.Append(nil, id, 0, base, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.set.Append(nil, id, 2048, mid, 2); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 8192)
	copy(want, base)
	copy(want[2048:], mid)

	got := make([]byte, 8192)
	if err := e.set.Read(id, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("pre-replay composite read mismatch")
	}
	e.set.Drain()
	got2 := make([]byte, 8192)
	if err := e.sink.ReadAt(id, got2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Error("post-replay sink mismatch")
	}
}

func TestInvalidate(t *testing.T) {
	e := newEnv(t, 16*util.MiB, false)
	id := blockstore.MakeChunkID(1, 0)
	e.mustChunk(t, id)

	jdata := bytes.Repeat([]byte{0x11}, 4096)
	direct := bytes.Repeat([]byte{0x22}, 4096)
	if err := e.set.Append(nil, id, 0, jdata, 1); err != nil {
		t.Fatal(err)
	}
	// A journal-bypass write: straight to the backup disk with journal
	// invalidation, serialized against any in-flight replay.
	if err := e.set.WriteDirect(id, direct, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if err := e.set.Read(id, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, direct) {
		t.Error("read returned invalidated journal data")
	}
	// Replay of the stale record must not clobber the direct write.
	e.set.Drain()
	got2 := make([]byte, 4096)
	if err := e.sink.ReadAt(id, got2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, direct) {
		t.Error("stale journal record replayed over direct write")
	}
}

func TestQuotaExhaustionAndExpansion(t *testing.T) {
	// A tiny SSD journal (64 KiB) overflows quickly; with an HDD journal
	// configured, appends expand there instead of failing. The replayer is
	// deferred: batched replay coalesces these adjacent appends into single
	// large sink writes and would otherwise drain the tiny journal as fast
	// as one goroutine can fill it, making expansion timing-dependent.
	e := newEnvStart(t, 64*util.KiB, true, false)
	id := blockstore.MakeChunkID(1, 0)
	e.mustChunk(t, id)

	data := make([]byte, 4*util.KiB)
	for i := 0; i < 64; i++ {
		if err := e.set.Append(nil, id, int64(i)*4096, data, uint64(i+1)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := e.set.Stats()
	if len(st.Journals) != 2 {
		t.Fatalf("journals = %+v", st.Journals)
	}
	if st.Journals[1].Appends == 0 {
		t.Errorf("HDD journal never used: %+v", st.Journals)
	}
	e.set.Start()
	e.set.Drain()
	// All data must land on the sink correctly.
	got := make([]byte, 4096)
	for i := 0; i < 64; i++ {
		if err := e.sink.ReadAt(id, got, int64(i)*4096); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("chunk range %d mismatch after expansion replay", i)
		}
	}
}

func TestQuotaErrorWithoutExpansion(t *testing.T) {
	e := newEnv(t, 64*util.KiB, false)
	id := blockstore.MakeChunkID(1, 0)
	e.mustChunk(t, id)

	// Stop the replayer from freeing space to force exhaustion.
	e.set.Close()
	data := make([]byte, 8*util.KiB)
	var sawQuota bool
	for i := 0; i < 32; i++ {
		err := e.set.Append(nil, id, int64(i)*8192, data, uint64(i+1))
		if errors.Is(err, util.ErrQuota) {
			sawQuota = true
			break
		}
		if errors.Is(err, util.ErrClosed) {
			// Close also rejects appends; re-create env semantics: done.
			return
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = sawQuota
}

func TestJournalWrapAround(t *testing.T) {
	// Journal big enough for ~3 records; append and drain repeatedly to
	// force wraps, verifying data integrity throughout.
	e := newEnv(t, 16*util.KiB, false)
	id := blockstore.MakeChunkID(1, 0)
	e.mustChunk(t, id)

	r := util.NewRand(7)
	for i := 0; i < 40; i++ {
		data := make([]byte, 4*util.KiB)
		r.Fill(data)
		off := int64(i%10) * 4096
		if err := e.set.Append(nil, id, off, data, uint64(i+1)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		e.set.Drain()
		got := make([]byte, len(data))
		if err := e.set.Read(id, got, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("wrap iteration %d mismatch", i)
		}
	}
}

func TestUnalignedRejected(t *testing.T) {
	e := newEnv(t, util.MiB, false)
	id := blockstore.MakeChunkID(1, 0)
	e.mustChunk(t, id)
	if err := e.set.Append(nil, id, 100, make([]byte, 512), 1); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("unaligned offset: %v", err)
	}
	if err := e.set.Append(nil, id, 0, make([]byte, 100), 1); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("unaligned length: %v", err)
	}
	if err := e.set.Read(id, make([]byte, 100), 0); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("unaligned read: %v", err)
	}
	if err := e.set.Append(nil, id, 0, nil, 1); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("empty append: %v", err)
	}
}

func TestConcurrentChunks(t *testing.T) {
	e := newEnv(t, 32*util.MiB, false)
	const nchunks = 8
	ids := make([]blockstore.ChunkID, nchunks)
	for i := range ids {
		ids[i] = blockstore.MakeChunkID(1, uint32(i))
		e.mustChunk(t, ids[i])
	}
	var wg sync.WaitGroup
	for c := 0; c < nchunks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := util.NewRand(uint64(c))
			data := make([]byte, 4096)
			for i := 0; i < 30; i++ {
				r.Fill(data)
				off := util.AlignDown(r.Int63n(util.ChunkSize-4096), 512)
				if err := e.set.Append(nil, ids[c], off, data, uint64(i+1)); err != nil {
					t.Errorf("chunk %d append: %v", c, err)
					return
				}
				got := make([]byte, 4096)
				if err := e.set.Read(ids[c], got, off); err != nil {
					t.Errorf("chunk %d read: %v", c, err)
					return
				}
				if !bytes.Equal(got, data) {
					t.Errorf("chunk %d mismatch", c)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	e.set.Drain()
}

func TestDropChunk(t *testing.T) {
	e := newEnv(t, util.MiB, false)
	id := blockstore.MakeChunkID(1, 0)
	e.mustChunk(t, id)
	if err := e.set.Append(nil, id, 0, make([]byte, 4096), 1); err != nil {
		t.Fatal(err)
	}
	e.set.DropChunk(id)
	e.set.Drain() // replay of the orphan record must not panic
}

func TestLiteBasics(t *testing.T) {
	l := NewLite(4)
	l.Record(1, 0, 512)
	l.Record(2, 1024, 512)
	l.Record(3, 2048, 1024)
	mods, ok := l.Since(1)
	if !ok || len(mods) != 2 {
		t.Fatalf("Since(1) = %v, %v", mods, ok)
	}
	if mods[0].Version != 2 || mods[1].Version != 3 {
		t.Errorf("mods = %v", mods)
	}
	if mods, ok := l.Since(3); !ok || len(mods) != 0 {
		t.Errorf("Since(3) = %v, %v", mods, ok)
	}
}

func TestLiteEviction(t *testing.T) {
	l := NewLite(2)
	l.Record(1, 0, 512)
	l.Record(2, 512, 512)
	l.Record(3, 1024, 512) // evicts version 1
	if _, ok := l.Since(0); ok {
		t.Error("Since(0) should fail after eviction")
	}
	if _, ok := l.Since(1); !ok {
		t.Error("Since(1) should succeed: history from 2 intact")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestRecordBytes(t *testing.T) {
	if recordBytes(512) != 1024 {
		t.Errorf("recordBytes(512) = %d", recordBytes(512))
	}
	if recordBytes(4096) != 4608 {
		t.Errorf("recordBytes(4096) = %d", recordBytes(4096))
	}
}
