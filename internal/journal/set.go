package journal

import (
	"fmt"
	"sync"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/jindex"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// Sink is the replay target: the backup server's HDD chunk store.
type Sink interface {
	WriteAt(id blockstore.ChunkID, p []byte, off int64) error
	ReadAt(id blockstore.ChunkID, p []byte, off int64) error
	Disk() simdisk.Disk
}

// Config tunes a journal Set.
type Config struct {
	// AutoMergeAt is the per-chunk index tree size that triggers a
	// background merge into the sorted array.
	AutoMergeAt int
	// PollInterval is how often the replayer rechecks gated journals
	// (HDD journals waiting for an idle disk, records mid-write).
	PollInterval time.Duration
	// IdleGrace is how long the backup disk must stay idle before replay
	// resumes: without it, replay sneaks a slow random write into every
	// gap between foreground appends and throttles them to the HDD's
	// random rate — the exact inversion journals exist to prevent.
	IdleGrace time.Duration
}

// DefaultConfig returns production-like tuning.
func DefaultConfig() Config {
	return Config{AutoMergeAt: 4096, PollInterval: 10 * time.Millisecond, IdleGrace: 30 * time.Millisecond}
}

// Set manages the journals of one backup server, in expansion priority
// order: local SSD journals first, then (rarely) an HDD journal (§3.2).
// A single background replayer drains records oldest-first per journal,
// merging superseded appends away, exactly one writer at a time — the
// single-threaded elevator-friendly regime the paper prescribes for backup
// HDDs (§5.3).
//
// Per-chunk appends must be serialized by the caller (the chunk server's
// version protocol already does); appends to different chunks may run
// concurrently.
type Set struct {
	clk  clock.Clock
	sink Sink
	cfg  Config

	mu        sync.Mutex
	cond      *sync.Cond // replayer wakeup
	drainCond *sync.Cond // Drain() wakeup
	journals  []*Journal
	idleOnly  []bool // journals[i] replays only when its disk is idle
	indexes   map[blockstore.ChunkID]*jindex.Index
	pending   int // unreplayed (non-pad) records across all journals
	force     int // >0: Drain in progress, ignore idle gating
	lastBusy  time.Time
	started   bool
	closed    bool
	done      chan struct{}

	// chunkLocks serialize replay against journal-bypass direct writes on
	// the same chunk; they are always acquired BEFORE s.mu.
	chunkMu    sync.Mutex
	chunkLocks map[blockstore.ChunkID]*sync.Mutex

	replayedRecords int64
	replayedBytes   int64
	mergedSectors   int64 // sectors skipped at replay because overwritten
}

// NewSet creates an empty journal set replaying into sink. Call
// AddSSDJournal/AddHDDJournal, then Start.
func NewSet(clk clock.Clock, sink Sink, cfg Config) *Set {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultConfig().PollInterval
	}
	if cfg.IdleGrace < 0 {
		cfg.IdleGrace = 0
	}
	s := &Set{
		clk:        clk,
		sink:       sink,
		cfg:        cfg,
		indexes:    make(map[blockstore.ChunkID]*jindex.Index),
		chunkLocks: make(map[blockstore.ChunkID]*sync.Mutex),
		done:       make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.drainCond = sync.NewCond(&s.mu)
	return s
}

// AddSSDJournal registers a journal region on an SSD; it is replayed
// continuously (SSD parallelism hides the reads, §3.2).
func (s *Set) AddSSDJournal(name string, disk simdisk.Disk, base, size int64) *Journal {
	return s.add(name, disk, base, size, false)
}

// AddHDDJournal registers the overflow journal on an HDD; it is replayed
// only when its disk is idle, since seeks would otherwise fight foreground
// I/O (§3.2).
func (s *Set) AddHDDJournal(name string, disk simdisk.Disk, base, size int64) *Journal {
	return s.add(name, disk, base, size, true)
}

func (s *Set) add(name string, disk simdisk.Disk, base, size int64, idleOnly bool) *Journal {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := newJournal(name, disk, base, size, len(s.journals))
	s.journals = append(s.journals, j)
	s.idleOnly = append(s.idleOnly, idleOnly)
	return j
}

// Start launches the background replayer.
func (s *Set) Start() {
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.replayLoop()
}

// Close stops the replayer without draining; pending journal data stays
// unreplayed (recovery would reread it in a restart, which our simulation
// models as replica reallocation instead).
func (s *Set) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	started := s.started
	s.cond.Broadcast()
	s.drainCond.Broadcast()
	s.mu.Unlock()
	if started {
		<-s.done
	}
}

// Append journals a backup write: data at chunk-relative byte offset off.
// It returns ErrQuota when every journal is full — callers fall back to a
// direct backup write (and the master should already have rate-limited the
// client before this point, §3.2).
func (s *Set) Append(id blockstore.ChunkID, off int64, data []byte, version uint64) error {
	if err := checkAligned(off, len(data)); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return util.ErrClosed
	}
	var j *Journal
	var pos int64
	for _, cand := range s.journals {
		if p, ok := cand.reserve(len(data)); ok {
			j, pos = cand, p
			break
		}
	}
	if j == nil {
		s.mu.Unlock()
		return fmt.Errorf("journal: all journals full: %w", util.ErrQuota)
	}
	rec := &pendingRecord{
		chunk:    id,
		off:      off,
		dataLen:  len(data),
		version:  version,
		dataJOff: j.dataJOff(pos),
		footant:  recordBytes(len(data)),
	}
	j.fifo = append(j.fifo, rec)
	s.pending++
	s.mu.Unlock()

	h := header{chunk: id, off: off, dataLen: len(data), version: version,
		checksum: util.Checksum(data)}
	err := j.writeRecord(pos, h, data)

	s.mu.Lock()
	if err != nil {
		rec.failed = true
	} else {
		rec.ready = true
	}
	if err == nil {
		j.appends++
		j.bytesAppened += int64(len(data))
		s.indexLocked(id).Insert(
			uint32(off/util.SectorSize),
			uint32(len(data)/util.SectorSize),
			rec.dataJOff)
	}
	s.cond.Signal()
	s.mu.Unlock()
	return err
}

// chunkLock returns the per-chunk serialization mutex.
func (s *Set) chunkLock(id blockstore.ChunkID) *sync.Mutex {
	s.chunkMu.Lock()
	defer s.chunkMu.Unlock()
	m, ok := s.chunkLocks[id]
	if !ok {
		m = &sync.Mutex{}
		s.chunkLocks[id] = m
	}
	return m
}

// WriteDirect performs a journal-bypass backup write (large sequential
// writes, §3.2): the data goes straight to the backup disk and any
// overlapped journal appends are invalidated. The per-chunk lock orders it
// against an in-flight replay of the same chunk, so a stale replay can
// never land on top of newer bypass data.
func (s *Set) WriteDirect(id blockstore.ChunkID, data []byte, off int64) error {
	if err := checkAligned(off, len(data)); err != nil {
		return err
	}
	l := s.chunkLock(id)
	l.Lock()
	defer l.Unlock()
	if err := s.sink.WriteAt(id, data, off); err != nil {
		return err
	}
	s.mu.Lock()
	if ix, ok := s.indexes[id]; ok {
		ix.Invalidate(uint32(off/util.SectorSize), uint32(len(data)/util.SectorSize))
	}
	s.mu.Unlock()
	return nil
}

// Read serves a backup read: newest journal data for mapped extents, the
// backup disk for the holes. It is used when a backup acts as temporary
// primary or during recovery (§4.2.1), so some lock-held journal I/O is
// acceptable.
func (s *Set) Read(id blockstore.ChunkID, p []byte, off int64) error {
	if err := checkAligned(off, len(p)); err != nil {
		return err
	}
	offSec := uint32(off / util.SectorSize)
	lenSec := uint32(len(p) / util.SectorSize)

	s.mu.Lock()
	ix, ok := s.indexes[id]
	if !ok {
		s.mu.Unlock()
		return s.sink.ReadAt(id, p, off)
	}
	extents := ix.Query(offSec, lenSec)
	// Read mapped extents from their journals while holding the lock so
	// replay cannot reclaim the space underneath us.
	for _, e := range extents {
		j := s.journalOf(e.JOff)
		if j == nil {
			s.mu.Unlock()
			return fmt.Errorf("journal: no journal owns joff %d", e.JOff)
		}
		dst := p[(int64(e.Off)*util.SectorSize)-off:][:int64(e.Len)*util.SectorSize]
		if err := j.readAtJOff(dst, e.JOff); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	holes := jindex.Holes(offSec, lenSec, extents)
	s.mu.Unlock()

	for _, h := range holes {
		dst := p[(int64(h.Off)*util.SectorSize)-off:][:int64(h.Len)*util.SectorSize]
		if err := s.sink.ReadAt(id, dst, int64(h.Off)*util.SectorSize); err != nil {
			return err
		}
	}
	return nil
}

// DropChunk discards index state for a deleted chunk; its journal records
// are skipped at replay.
func (s *Set) DropChunk(id blockstore.ChunkID) {
	s.mu.Lock()
	delete(s.indexes, id)
	s.mu.Unlock()
}

// Drain synchronously replays every pending record, ignoring idle gating.
// Recovery and tests use it; production relies on the background replayer.
func (s *Set) Drain() {
	s.mu.Lock()
	s.force++
	s.cond.Broadcast()
	for s.pending > 0 && !s.closed {
		s.drainCond.Wait()
	}
	s.force--
	s.mu.Unlock()
}

// Pending returns the number of unreplayed records.
func (s *Set) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// indexLocked returns (creating if needed) the chunk's index.
func (s *Set) indexLocked(id blockstore.ChunkID) *jindex.Index {
	ix, ok := s.indexes[id]
	if !ok {
		ix = jindex.New(s.cfg.AutoMergeAt)
		s.indexes[id] = ix
	}
	return ix
}

// journalOf maps a global joff to its journal.
func (s *Set) journalOf(joff uint64) *Journal {
	r := int(joff >> joffRegionBits)
	if r < len(s.journals) && s.journals[r].owns(joff) {
		return s.journals[r]
	}
	return nil
}

// replayLoop is the single background replayer.
func (s *Set) replayLoop() {
	defer close(s.done)
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := s.nextJournalLocked()
		if j == nil {
			if s.pending == 0 {
				s.drainCond.Broadcast()
				s.cond.Wait() // new append, Drain, or Close
				s.mu.Unlock()
				continue
			}
			// Records exist but are gated (mid-write or idle-only): poll.
			s.mu.Unlock()
			s.clk.Sleep(s.cfg.PollInterval)
			continue
		}
		rec := j.fifo[0]
		s.mu.Unlock()
		// Chunk lock first (lock order: chunk lock > s.mu) so bypass
		// writes to the same chunk serialize against this replay. The
		// record stays at fifo[0]: this loop is the only consumer.
		l := s.chunkLock(rec.chunk)
		l.Lock()
		s.replayRecord(j, rec)
		l.Unlock()
	}
}

// nextJournalLocked picks the highest-priority journal whose head record is
// replayable, discarding pads and failed records as it goes. Replay always
// yields to foreground work on the backup disk: its random writes would
// otherwise starve journal appends and bypass writes, inverting the
// journals' whole purpose (§3.2, §5.3).
func (s *Set) nextJournalLocked() *Journal {
	if s.force == 0 {
		now := s.clk.Now()
		if s.sink.Disk().QueueDepth() > 0 {
			s.lastBusy = now
			return nil // the backup disk is serving foreground I/O
		}
		if now.Sub(s.lastBusy) < s.cfg.IdleGrace {
			return nil // let a foreground burst finish before seeking away
		}
	}
	for i, j := range s.journals {
		// Trim pads/failed records first so tails advance promptly.
		for len(j.fifo) > 0 {
			r := j.fifo[0]
			if r.chunk == padChunk || r.failed {
				j.tail += r.footant
				j.fifo = j.fifo[1:]
				if r.failed {
					s.pending--
				}
				continue
			}
			break
		}
		if len(j.fifo) == 0 || !j.fifo[0].ready {
			continue
		}
		if s.idleOnly[i] && s.force == 0 && j.disk.QueueDepth() > 0 {
			continue
		}
		return j
	}
	return nil
}

// replayRecord replays rec, the head record of j. The caller holds the
// record's chunk lock; s.mu is taken as needed around index and space
// bookkeeping.
func (s *Set) replayRecord(j *Journal, rec *pendingRecord) {
	s.mu.Lock()
	offSec := uint32(rec.off / util.SectorSize)
	lenSec := uint32(int64(rec.dataLen) / util.SectorSize)
	jEnd := rec.dataJOff + uint64(lenSec)

	// Current extents of this record: index entries still pointing into
	// its payload. Everything else was overwritten and merges away —
	// the paper's "overwrites between two successive replays" saving.
	var current []jindex.Extent
	var staleSectors int64
	ix, haveIx := s.indexes[rec.chunk]
	if haveIx {
		for _, e := range ix.Query(offSec, lenSec) {
			if e.JOff >= rec.dataJOff && e.JOff < jEnd {
				current = append(current, e)
			}
		}
	}
	staleSectors = int64(lenSec)
	for _, e := range current {
		staleSectors -= int64(e.Len)
	}

	// Read the payload pieces from the journal while still holding the
	// lock (space cannot be reclaimed mid-read), then write to the sink
	// unlocked.
	type piece struct {
		data []byte
		off  int64
		ext  jindex.Extent
	}
	pieces := make([]piece, 0, len(current))
	for _, e := range current {
		buf := make([]byte, int64(e.Len)*util.SectorSize)
		if err := j.readAtJOff(buf, e.JOff); err != nil {
			break // journal device gone; drop the record below
		}
		pieces = append(pieces, piece{buf, int64(e.Off) * util.SectorSize, e})
	}
	s.mu.Unlock()

	written := make([]jindex.Extent, 0, len(pieces))
	for _, pc := range pieces {
		if err := s.sink.WriteAt(rec.chunk, pc.data, pc.off); err != nil {
			break // sink gone; the chunk will be recovered elsewhere
		}
		written = append(written, pc.ext)
	}

	s.mu.Lock()
	// Remove mappings we replayed — but only where the index still points
	// into this record; newer appends that landed during the sink write
	// keep precedence.
	if ix2, ok := s.indexes[rec.chunk]; ok {
		for _, w := range written {
			for _, e := range ix2.Query(w.Off, w.Len) {
				if e.JOff >= rec.dataJOff && e.JOff < jEnd {
					ix2.Invalidate(e.Off, e.Len)
				}
			}
		}
	}
	j.tail += rec.footant
	j.fifo = j.fifo[1:]
	s.pending--
	s.replayedRecords++
	s.replayedBytes += int64(rec.dataLen)
	s.mergedSectors += staleSectors
	if s.pending == 0 {
		s.drainCond.Broadcast()
	}
	s.mu.Unlock()
}

// SetStats is a snapshot of journal-set activity.
type SetStats struct {
	Pending         int
	ReplayedRecords int64
	ReplayedBytes   int64
	MergedSectors   int64 // sectors never written to the sink (overwritten)
	Journals        []JournalStats
}

// JournalStats describes one journal's occupancy.
type JournalStats struct {
	Name    string
	Used    int64
	Size    int64
	Appends int64
	Bytes   int64
}

// Stats returns a consistent snapshot.
func (s *Set) Stats() SetStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SetStats{
		Pending:         s.pending,
		ReplayedRecords: s.replayedRecords,
		ReplayedBytes:   s.replayedBytes,
		MergedSectors:   s.mergedSectors,
	}
	for _, j := range s.journals {
		st.Journals = append(st.Journals, JournalStats{
			Name:    j.name,
			Used:    j.UsedBytes(),
			Size:    j.size,
			Appends: j.appends,
			Bytes:   j.bytesAppened,
		})
	}
	return st
}
