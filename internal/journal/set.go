package journal

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/jindex"
	"ursa/internal/metrics"
	"ursa/internal/opctx"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// Sink is the replay target: the backup server's HDD chunk store.
type Sink interface {
	WriteAt(id blockstore.ChunkID, p []byte, off int64) error
	ReadAt(id blockstore.ChunkID, p []byte, off int64) error
	Disk() simdisk.Disk
}

// Config tunes a journal Set.
type Config struct {
	// AutoMergeAt is the per-chunk index tree size that triggers a
	// background merge into the sorted array.
	AutoMergeAt int
	// PollInterval is how often the replayer rechecks gated journals
	// (HDD journals waiting for an idle disk, records mid-write).
	PollInterval time.Duration
	// IdleGrace is how long the backup disk must stay idle before replay
	// resumes: without it, replay sneaks a slow random write into every
	// gap between foreground appends and throttles them to the HDD's
	// random rate — the exact inversion journals exist to prevent.
	IdleGrace time.Duration
	// MaxBatch caps the records one group-commit leader claims per flush.
	// 1 disables batching (each append is its own device write — the
	// pre-group-commit behaviour); 0 selects DefaultMaxBatch.
	MaxBatch int
	// ReplayWindow caps the records the replayer drains per pass before
	// reclaiming their journal space. 0 selects DefaultReplayWindow.
	ReplayWindow int
	// CoalesceFlush switches the group-commit flush back to copying each
	// run of records into one contiguous buffer before the device write,
	// instead of handing the device a scatter/gather list of the callers'
	// payload buffers. It exists as the measured baseline of
	// `ursa-bench -fig ceiling`.
	CoalesceFlush bool
	// Metrics, when set, receives the group-commit distributions:
	// batch sizes ("journal-batch-records"), flush latency
	// ("journal-flush"), commit-queue wait ("journal-commit-queue"), and
	// replay window sizes ("journal-replay-window") / coalesced sink
	// writes per window ("journal-replay-writes").
	Metrics *metrics.Registry
}

// Default batching limits: large enough that a burst at the §3.4 queue
// depths commits in one sequential write, small enough to bound flush
// latency and replay-window memory.
const (
	DefaultMaxBatch     = 64
	DefaultReplayWindow = 64
)

// Fault metrics (registered on cfg.Metrics when set).
const (
	// MetricJournalDead counts journals declared dead after a failed flush.
	MetricJournalDead = "journal-dead"
	// MetricBypassWrites counts Appends degraded to WriteDirect because
	// every journal was dead — the bottom rung of the §3.2 expansion ladder.
	MetricBypassWrites = "journal-bypass-writes"
	// MetricReplayErrors counts replay windows parked because a chunk's
	// records could not reach the sink (sink I/O error or unreadable
	// journal); the records stay queued and replay resumes after heal.
	MetricReplayErrors = "journal-replay-errors"
	// MetricReplayCorrupt counts replay windows parked because a record
	// failed its CRC check when re-read from the journal: bit-rot between
	// append and replay. The record is never applied to the sink —
	// skip-and-park, repair via the OnFault report path.
	MetricReplayCorrupt = "journal-replay-corrupt"
)

// Group-commit and replay distribution names (see Config.Metrics).
const (
	// MetricBatchRecords samples records per group-commit flush.
	MetricBatchRecords = "journal-batch-records"
	// MetricFlushLatency is the claim-to-durable latency of each flush.
	MetricFlushLatency = "journal-flush"
	// MetricCommitQueue is the time an append waits in the commit queue.
	MetricCommitQueue = "journal-commit-queue"
	// MetricReplayWindow samples records replayed per window.
	MetricReplayWindow = "journal-replay-window"
	// MetricReplayWrites samples coalesced sink writes per window.
	MetricReplayWrites = "journal-replay-writes"
)

// errJournalDead marks an append whose journal died before (or while)
// flushing it; Append re-routes such records to a surviving journal.
var errJournalDead = errors.New("journal: journal dead")

// DefaultConfig returns production-like tuning.
func DefaultConfig() Config {
	return Config{
		AutoMergeAt:  4096,
		PollInterval: 10 * time.Millisecond,
		IdleGrace:    30 * time.Millisecond,
		MaxBatch:     DefaultMaxBatch,
		ReplayWindow: DefaultReplayWindow,
	}
}

// commitReq is one Append waiting in a journal's group-commit queue.
// done/lead signal across goroutines; the timing/result fields are written
// by the batch leader under the Set lock and read by the waiter only after
// done is closed.
type commitReq struct {
	rec  *pendingRecord
	pos  int64 // monotonic byte position of the record header
	hdr  header
	data []byte

	enq     time.Time // enqueued (commit-queue wait starts)
	claimed time.Time // a leader claimed it into a batch
	flushed time.Time // the batch's device write completed

	err  error
	done chan struct{} // buffered 1: fires when the record's fate is final
	lead chan struct{} // buffered 1: fires to promote this waiter to leader
}

// Set manages the journals of one backup server, in expansion priority
// order: local SSD journals first, then (rarely) an HDD journal (§3.2).
// Appends group-commit: concurrent callers enqueue records on a journal's
// commit queue and the first of them becomes the batch leader, writing the
// whole queue as one contiguous sequential device write and waking every
// waiter with its individual result — at queue depth N the journal device
// sees ~1 write where it used to see N (§3.4's intra-disk parallelism
// recovered on a single-writer log). Journal selection stripes concurrent
// appends across sibling journals by least commit-queue depth (inter-disk
// parallelism) while keeping the SSD-before-HDD expansion order.
//
// A single background replayer drains records oldest-first per journal in
// windows, merging superseded appends away and coalescing adjacent extents
// of one chunk into single large sink writes, exactly one writer at a
// time — the single-threaded elevator-friendly regime the paper prescribes
// for backup HDDs (§5.3).
//
// Concurrent appends — to different chunks or to the same chunk — are
// safe; the caller must only order appends whose extents OVERLAP (the
// chunk server's per-chunk write pipeline waits out overlapping pending
// predecessors before appending, and its version protocol keeps the
// version numbers the index carries monotone per extent). An Append
// returns only after its batch's flush and index insert, so
// caller-sequenced overlapping appends are index-ordered too. Same-chunk
// concurrency is what lets one group-commit flush batch a hot chunk's
// burst instead of draining it one record per device write.
type Set struct {
	clk  clock.Clock
	sink Sink
	cfg  Config

	mu        sync.Mutex
	cond      *sync.Cond // replayer wakeup
	drainCond *sync.Cond // Drain() wakeup
	journals  []*Journal
	idleOnly  []bool // journals[i] replays only when its disk is idle
	indexes   map[blockstore.ChunkID]*jindex.Index
	pending   int // unreplayed (non-pad) records across all journals
	force     int // >0: Drain in progress, ignore idle gating
	lastBusy  time.Time
	started   bool
	closed    bool
	done      chan struct{}

	// chunkLocks serialize replay against journal-bypass direct writes on
	// the same chunk; they are always acquired BEFORE s.mu. Striped by
	// chunk ID hash: two chunks sharing a stripe serialize spuriously but
	// harmlessly, and the lookup is a shift instead of a mutex-guarded map
	// that QD32 bypass writes used to contend on.
	chunkLocks [chunkLockStripes]sync.Mutex

	// Fault callbacks, registered via OnFault (the owning chunk server
	// installs them after Start — hence guarded by mu, read at fire time).
	onJournalDead func(name string, err error)
	onReplayError func(id blockstore.ChunkID, err error)

	replayedRecords int64
	replayedBytes   int64
	mergedSectors   int64 // sectors skipped at replay because overwritten
	replayErrors    int64 // parked replay windows (chunk could not reach sink)
	replayCorrupt   int64 // parked replay windows whose record failed CRC verification
	deadJournals    int64

	// replayQ is the replayer's per-record index-query scratch, reused
	// across QueryInto calls; touched only under s.mu.
	replayQ []jindex.Extent
}

// NewSet creates an empty journal set replaying into sink. Call
// AddSSDJournal/AddHDDJournal, then Start.
func NewSet(clk clock.Clock, sink Sink, cfg Config) *Set {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultConfig().PollInterval
	}
	if cfg.IdleGrace < 0 {
		cfg.IdleGrace = 0
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.ReplayWindow <= 0 {
		cfg.ReplayWindow = DefaultReplayWindow
	}
	s := &Set{
		clk:     clk,
		sink:    sink,
		cfg:     cfg,
		indexes: make(map[blockstore.ChunkID]*jindex.Index),
		done:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.drainCond = sync.NewCond(&s.mu)
	return s
}

// AddSSDJournal registers a journal region on an SSD; it is replayed
// continuously (SSD parallelism hides the reads, §3.2).
func (s *Set) AddSSDJournal(name string, disk simdisk.Disk, base, size int64) *Journal {
	return s.add(name, disk, base, size, false)
}

// AddHDDJournal registers the overflow journal on an HDD; it is replayed
// only when its disk is idle, since seeks would otherwise fight foreground
// I/O (§3.2).
func (s *Set) AddHDDJournal(name string, disk simdisk.Disk, base, size int64) *Journal {
	return s.add(name, disk, base, size, true)
}

func (s *Set) add(name string, disk simdisk.Disk, base, size int64, idleOnly bool) *Journal {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := newJournal(name, disk, base, size, len(s.journals))
	s.journals = append(s.journals, j)
	s.idleOnly = append(s.idleOnly, idleOnly)
	return j
}

// OnFault registers the set's fault callbacks: journalDead fires once per
// journal when a flush failure kills it; replayError fires when a chunk's
// replay cannot reach the sink and its records are parked. Either may be
// nil. Callbacks run outside the set lock but on set goroutines — they
// must not block (the chunk server's failure report is fire-and-forget).
// Safe to call after Start: core builds journal sets before chunk servers.
func (s *Set) OnFault(journalDead func(name string, err error), replayError func(id blockstore.ChunkID, err error)) {
	s.mu.Lock()
	s.onJournalDead = journalDead
	s.onReplayError = replayError
	s.mu.Unlock()
}

// Start launches the background replayer.
func (s *Set) Start() {
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.replayLoop()
}

// Close stops the replayer without draining; pending journal data stays
// unreplayed (recovery would reread it in a restart, which our simulation
// models as replica reallocation instead).
func (s *Set) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	started := s.started
	s.cond.Broadcast()
	s.drainCond.Broadcast()
	s.mu.Unlock()
	if started {
		<-s.done
	}
}

// Append journals a backup write: data at chunk-relative byte offset off.
// Concurrent appends group-commit — the caller enqueues on a journal's
// commit queue and either leads the next batch flush or waits for a leader
// to commit it. The record is acked only after the sequential device write
// containing it has completed. A non-nil op gets the commit-queue wait and
// flush time recorded as the backup-jqueue/backup-jflush stages.
//
// It returns ErrQuota when every live journal is full — callers fall back
// to a direct backup write (and the master should already have rate-limited
// the client before this point, §3.2). When every journal is DEAD the set
// degrades itself: the append becomes a WriteDirect against the sink (ack
// latency degrades, durability semantics don't), counted by
// journal-bypass-writes. An append routed to a journal that dies mid-flush
// is re-routed to a surviving journal transparently.
func (s *Set) Append(op *opctx.Op, id blockstore.ChunkID, off int64, data []byte, version uint64) error {
	if err := checkAligned(off, len(data)); err != nil {
		return err
	}
	// Checksum before taking any lock: it is the CPU-heavy part of the path.
	h := header{chunk: id, off: off, dataLen: len(data), version: version,
		checksum: util.Checksum(data)}

	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return util.ErrClosed
		}
		j := s.pickJournalLocked(len(data))
		if j == nil {
			allDead := len(s.journals) > 0
			for _, jj := range s.journals {
				if !jj.dead {
					allDead = false
					break
				}
			}
			s.mu.Unlock()
			if allDead {
				// Bottom of the expansion ladder: no journal left to absorb
				// the write, so it goes straight to the backup disk.
				if m := s.cfg.Metrics; m != nil {
					m.Counter(MetricBypassWrites).Inc()
				}
				return s.WriteDirect(id, data, off)
			}
			return fmt.Errorf("journal: all journals full: %w", util.ErrQuota)
		}
		pos, _ := j.reserve(len(data)) // pickJournalLocked checked fits
		rec := &pendingRecord{
			chunk:    id,
			off:      off,
			dataLen:  len(data),
			version:  version,
			dataJOff: j.dataJOff(pos),
			footer:   recordBytes(len(data)),
		}
		j.fifo = append(j.fifo, rec)
		s.pending++
		req := getCommitReq()
		req.rec, req.pos, req.hdr, req.data = rec, pos, h, data
		req.enq = s.clk.Now()
		j.commitq = append(j.commitq, req)
		j.queued++
		leader := !j.flushing
		if leader {
			j.flushing = true
		}
		s.mu.Unlock()

		if !leader {
			// Follower: wait for a leader's batch to commit us — or inherit
			// leadership when the previous batch completes with us at the head.
			select {
			case <-req.done:
			case <-req.lead:
				s.flush(j)
				<-req.done
			}
		} else {
			s.flush(j)
			// A leader's own request is always the head of the queue it claims.
			<-req.done
		}
		s.observeCommit(op, req)
		err := req.err
		putCommitReq(req)
		if errors.Is(err, errJournalDead) {
			// The journal died under us; its picker slot is gone, so the
			// retry lands on a survivor (or degrades to bypass).
			continue
		}
		return err
	}
}

// commitReqPool recycles commit-queue entries: one struct and two channels
// per append otherwise. A commitReq is recyclable once its appender has
// consumed its fate — done and lead are buffered single-fire channels with
// exactly that one consumer, so both are empty when Append returns.
var commitReqPool = sync.Pool{New: func() any {
	return &commitReq{
		done: make(chan struct{}, 1),
		lead: make(chan struct{}, 1),
	}
}}

func getCommitReq() *commitReq {
	if bufpool.Enabled() {
		return commitReqPool.Get().(*commitReq)
	}
	return &commitReq{done: make(chan struct{}, 1), lead: make(chan struct{}, 1)}
}

func putCommitReq(req *commitReq) {
	if !bufpool.Enabled() {
		return
	}
	req.rec, req.data, req.err = nil, nil, nil
	req.claimed, req.flushed = time.Time{}, time.Time{}
	commitReqPool.Put(req)
}

// pickJournalLocked selects the journal for a new record: the least
// commit-queue-depth journal with room among the always-replayable (SSD)
// journals, falling back to the idle-only (HDD) overflow journals only
// when every SSD journal is full — least-queue-depth striping for
// inter-disk parallelism (§3.4) under the §3.2 expansion priority.
func (s *Set) pickJournalLocked(dataLen int) *Journal {
	pick := func(idleOnly bool) *Journal {
		var best *Journal
		for i, j := range s.journals {
			if j.dead || s.idleOnly[i] != idleOnly || !j.fits(dataLen) {
				continue
			}
			if best == nil || j.queued < best.queued {
				best = j
			}
		}
		return best
	}
	if j := pick(false); j != nil {
		return j
	}
	return pick(true)
}

// flush runs one group-commit batch on j: claim up to MaxBatch queued
// requests, write them as contiguous sequential device writes (one per run
// of back-to-back records; wrap pads split runs), publish every record's
// result and index entries, then hand leadership to the next queue head.
// The caller must hold j's leadership (j.flushing).
func (s *Set) flush(j *Journal) {
	s.mu.Lock()
	n := len(j.commitq)
	if n > s.cfg.MaxBatch {
		n = s.cfg.MaxBatch
	}
	batch := j.commitq[:n:n]
	j.commitq = j.commitq[n:]
	claimed := s.clk.Now()
	for _, r := range batch {
		r.claimed = claimed
	}
	wasDead := j.dead
	s.mu.Unlock()

	if wasDead {
		// The journal died after these requests enqueued: fail them without
		// touching the device so Append re-routes them immediately.
		for _, r := range batch {
			r.err = fmt.Errorf("journal %s: %w", j.name, errJournalDead)
		}
	} else {
		// The commit queue is in reservation order, so positions increase
		// monotonically; a record extends the current run when its header
		// starts exactly where the previous record ended.
		for i := 0; i < len(batch); {
			k := i + 1
			end := batch[i].pos + batch[i].rec.footer
			for k < len(batch) && batch[k].pos == end {
				end += batch[k].rec.footer
				k++
			}
			s.writeRun(j, batch[i:k])
			i = k
		}
	}
	flushed := s.clk.Now()

	s.mu.Lock()
	var deadCb func(name string, err error)
	var deadCause error
	// Index-insert accumulation uses the journal's leader-owned scratch when
	// pooling is on; the map keeps its keys across flushes (cleared to empty
	// slices), so presence in `order` is tracked by emptiness, not by key.
	pooledScratch := bufpool.Enabled()
	var inserts map[blockstore.ChunkID][]jindex.Extent
	var order []blockstore.ChunkID
	if pooledScratch {
		if j.insertScratch == nil {
			j.insertScratch = make(map[blockstore.ChunkID][]jindex.Extent)
		}
		inserts = j.insertScratch
		order = j.orderScratch[:0]
	} else {
		inserts = make(map[blockstore.ChunkID][]jindex.Extent)
	}
	for _, r := range batch {
		r.flushed = flushed
		j.queued--
		if r.err != nil {
			if !errors.Is(r.err, errJournalDead) {
				// A device write failed: declare the journal dead (once) and
				// convert the error so Append re-routes the record.
				if !j.dead {
					j.dead = true
					s.deadJournals++
					deadCb, deadCause = s.onJournalDead, r.err
					if m := s.cfg.Metrics; m != nil {
						m.Counter(MetricJournalDead).Inc()
					}
				}
				r.err = fmt.Errorf("journal %s: %v: %w", j.name, r.err, errJournalDead)
			}
			r.rec.failed = true
			continue
		}
		r.rec.ready = true
		j.appends++
		j.bytesAppended += int64(r.rec.dataLen)
		if len(inserts[r.rec.chunk]) == 0 {
			order = append(order, r.rec.chunk)
		}
		inserts[r.rec.chunk] = append(inserts[r.rec.chunk], jindex.Extent{
			Off:  uint32(r.rec.off / util.SectorSize),
			Len:  uint32(int64(r.rec.dataLen) / util.SectorSize),
			JOff: r.rec.dataJOff,
		})
	}
	for _, id := range order {
		s.indexLocked(id).InsertBatch(inserts[id])
		if pooledScratch {
			inserts[id] = inserts[id][:0]
		}
	}
	if pooledScratch {
		j.orderScratch = order
	}
	j.flushes++
	j.batchedRecords += int64(len(batch))
	if m := s.cfg.Metrics; m != nil {
		m.ObserveValue(MetricBatchRecords, int64(len(batch)))
		m.ObserveLatency(MetricFlushLatency, flushed.Sub(claimed))
		for _, r := range batch {
			m.ObserveLatency(MetricCommitQueue, claimed.Sub(r.enq))
		}
	}
	var next *commitReq
	if len(j.commitq) > 0 {
		next = j.commitq[0]
	} else {
		j.flushing = false
	}
	s.cond.Signal()
	s.mu.Unlock()

	if next != nil {
		next.lead <- struct{}{}
	}
	for _, r := range batch {
		r.done <- struct{}{}
	}
	if deadCb != nil {
		deadCb(j.name, deadCause)
	}
}

// writeRun writes one contiguous run of records as a single sequential
// device write — headers and payloads laid out back-to-back — and stamps
// each request with the write's result. Space is already reserved, so no
// lock is needed.
//
// The default path is zero-copy: each record contributes a leased header
// sector and its caller's payload buffer to one scatter/gather list, and
// the device writes the whole batch straight out of them (simdisk.WritevAt;
// the pwritev of a real journal). CoalesceFlush restores the old
// allocate-and-copy path as the ceiling bench's baseline.
func (s *Set) writeRun(j *Journal, run []*commitReq) {
	first := run[0].pos
	off := j.base + first%j.size
	var err error
	if s.cfg.CoalesceFlush {
		last := run[len(run)-1]
		buf := make([]byte, last.pos+last.rec.footer-first)
		for _, r := range run {
			at := r.pos - first
			r.hdr.encode(buf[at:])
			copy(buf[at+headerSize:], r.data)
		}
		err = j.disk.WriteAt(buf, off)
	} else {
		// Record payloads are sector-aligned (checkAligned), so the iovec is
		// exactly [hdr, data] per record with no padding between records.
		// The iovec slices are leader-owned journal scratch, reused across
		// runs.
		hdrs := j.iovHdrs[:0]
		bufs := j.iovBufs[:0]
		for _, r := range run {
			hdr := bufpool.Get(headerSize)
			r.hdr.encode(hdr)
			hdrs = append(hdrs, hdr)
			bufs = append(bufs, hdr, r.data)
		}
		err = simdisk.WritevAt(j.disk, bufs, off)
		for _, h := range hdrs {
			bufpool.Put(h)
		}
		j.iovHdrs, j.iovBufs = hdrs, bufs
	}
	for _, r := range run {
		r.err = err
	}
}

// observeCommit lands a committed (or failed) append's queue/flush split on
// its op as the backup-jqueue/backup-jflush stages.
func (s *Set) observeCommit(op *opctx.Op, req *commitReq) {
	if op == nil {
		return
	}
	op.ObserveStage(opctx.StageJournalQueue, req.claimed.Sub(req.enq))
	op.ObserveStage(opctx.StageJournalFlush, req.flushed.Sub(req.claimed))
}

// chunkLockStripes is the per-chunk lock stripe count; power of two.
const chunkLockStripes = 32

// chunkLock returns the per-chunk serialization mutex (striped).
func (s *Set) chunkLock(id blockstore.ChunkID) *sync.Mutex {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &s.chunkLocks[h>>59&(chunkLockStripes-1)]
}

// WriteDirect performs a journal-bypass backup write (large sequential
// writes, §3.2): the data goes straight to the backup disk and any
// overlapped journal appends are invalidated. The per-chunk lock orders it
// against an in-flight replay of the same chunk, so a stale replay can
// never land on top of newer bypass data.
func (s *Set) WriteDirect(id blockstore.ChunkID, data []byte, off int64) error {
	if err := checkAligned(off, len(data)); err != nil {
		return err
	}
	l := s.chunkLock(id)
	l.Lock()
	defer l.Unlock()
	if err := s.sink.WriteAt(id, data, off); err != nil {
		return err
	}
	s.mu.Lock()
	if ix, ok := s.indexes[id]; ok {
		ix.Invalidate(uint32(off/util.SectorSize), uint32(len(data)/util.SectorSize))
	}
	s.mu.Unlock()
	return nil
}

// Read serves a backup read: newest journal data for mapped extents, the
// backup disk for the holes. It is used when a backup acts as temporary
// primary or during recovery (§4.2.1), so some lock-held journal I/O is
// acceptable.
func (s *Set) Read(id blockstore.ChunkID, p []byte, off int64) error {
	if err := checkAligned(off, len(p)); err != nil {
		return err
	}
	offSec := uint32(off / util.SectorSize)
	lenSec := uint32(len(p) / util.SectorSize)

	s.mu.Lock()
	ix, ok := s.indexes[id]
	if !ok {
		s.mu.Unlock()
		return s.sink.ReadAt(id, p, off)
	}
	// Per-call pooled scratch: holes outlive s.mu (they are read against the
	// sink after unlock), so this cannot be Set-level state like replayQ.
	rs := readScratchPool.Get().(*readScratch)
	rs.extents = ix.QueryInto(rs.extents[:0], offSec, lenSec)
	// Read mapped extents from their journals while holding the lock so
	// replay cannot reclaim the space underneath us.
	for _, e := range rs.extents {
		j := s.journalOf(e.JOff)
		if j == nil {
			s.mu.Unlock()
			return fmt.Errorf("journal: no journal owns joff %d", e.JOff)
		}
		dst := p[(int64(e.Off)*util.SectorSize)-off:][:int64(e.Len)*util.SectorSize]
		if err := j.readAtJOff(dst, e.JOff); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	rs.holes = jindex.HolesInto(rs.holes[:0], offSec, lenSec, rs.extents)
	s.mu.Unlock()

	for _, h := range rs.holes {
		dst := p[(int64(h.Off)*util.SectorSize)-off:][:int64(h.Len)*util.SectorSize]
		if err := s.sink.ReadAt(id, dst, int64(h.Off)*util.SectorSize); err != nil {
			return err
		}
	}
	readScratchPool.Put(rs)
	return nil
}

// readScratch holds one Read call's extent and hole lists; error paths skip
// the Put and simply let the scratch fall to the collector.
type readScratch struct {
	extents, holes []jindex.Extent
}

var readScratchPool = sync.Pool{New: func() any { return new(readScratch) }}

// DropChunk discards index state for a deleted chunk; its journal records
// are skipped at replay.
func (s *Set) DropChunk(id blockstore.ChunkID) {
	s.mu.Lock()
	delete(s.indexes, id)
	s.mu.Unlock()
}

// Drain synchronously replays every pending record, ignoring idle gating.
// Recovery and tests use it; production relies on the background replayer.
func (s *Set) Drain() {
	s.mu.Lock()
	s.force++
	s.cond.Broadcast()
	for s.pending > 0 && !s.closed {
		s.drainCond.Wait()
	}
	s.force--
	s.mu.Unlock()
}

// DevicesBusy reports whether any journal device in the set is serving I/O
// right now. A backup's read path merges journal-resident extents, so
// anything idle-gating reads against the backup (the scrubber) must watch
// the journal devices too, not just the data disk.
func (s *Set) DevicesBusy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.journals {
		if j.disk.QueueDepth() > 0 {
			return true
		}
	}
	return false
}

// Pending returns the number of unreplayed records.
func (s *Set) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// indexLocked returns (creating if needed) the chunk's index.
func (s *Set) indexLocked(id blockstore.ChunkID) *jindex.Index {
	ix, ok := s.indexes[id]
	if !ok {
		ix = jindex.New(s.cfg.AutoMergeAt)
		s.indexes[id] = ix
	}
	return ix
}

// journalOf maps a global joff to its journal.
func (s *Set) journalOf(joff uint64) *Journal {
	r := int(joff >> joffRegionBits)
	if r < len(s.journals) && s.journals[r].owns(joff) {
		return s.journals[r]
	}
	return nil
}

// replayLoop is the single background replayer.
func (s *Set) replayLoop() {
	defer close(s.done)
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := s.nextJournalLocked()
		if j == nil {
			if s.pending == 0 {
				s.drainCond.Broadcast()
				s.cond.Wait() // new append, Drain, or Close
				s.mu.Unlock()
				continue
			}
			// Records exist but are gated (mid-write or idle-only): poll.
			s.mu.Unlock()
			s.clk.Sleep(s.cfg.PollInterval)
			continue
		}
		window := s.windowLocked(j)
		s.mu.Unlock()
		if !s.replayWindow(j, window) {
			// Window parked (a chunk could not reach the sink): its records
			// stay queued; poll until a heal lets them through.
			s.clk.Sleep(s.cfg.PollInterval)
		}
	}
}

// nextJournalLocked picks the highest-priority journal whose head record is
// replayable, discarding pads and failed records as it goes. Replay always
// yields to foreground work on the backup disk: its random writes would
// otherwise starve journal appends and bypass writes, inverting the
// journals' whole purpose (§3.2, §5.3).
func (s *Set) nextJournalLocked() *Journal {
	if s.force == 0 {
		now := s.clk.Now()
		if s.sink.Disk().QueueDepth() > 0 {
			s.lastBusy = now
			return nil // the backup disk is serving foreground I/O
		}
		if now.Sub(s.lastBusy) < s.cfg.IdleGrace {
			return nil // let a foreground burst finish before seeking away
		}
	}
	for i, j := range s.journals {
		// Trim pads/failed records first so tails advance promptly.
		for len(j.fifo) > 0 {
			r := j.fifo[0]
			if r.chunk == padChunk || r.failed {
				j.tail += r.footer
				j.fifo = j.fifo[1:]
				if r.failed {
					s.pending--
				}
				continue
			}
			break
		}
		if len(j.fifo) == 0 || !j.fifo[0].ready {
			continue
		}
		if s.idleOnly[i] && s.force == 0 && j.disk.QueueDepth() > 0 {
			continue
		}
		return j
	}
	return nil
}

// windowLocked collects the replayable prefix of j's fifo: up to
// ReplayWindow ready records plus any pads or failed records between them,
// stopping at the first record still awaiting its commit flush. The
// entries stay on the fifo — this loop is the only consumer — and are
// popped together after replay.
func (s *Set) windowLocked(j *Journal) []*pendingRecord {
	n, records := 0, 0
	for n < len(j.fifo) && records < s.cfg.ReplayWindow {
		r := j.fifo[n]
		if r.chunk == padChunk || r.failed {
			n++
			continue
		}
		if !r.ready {
			break
		}
		records++
		n++
	}
	return j.fifo[:n:n]
}

// replayWindow drains one window: records grouped by chunk, each chunk's
// surviving extents coalesced into the fewest sink writes, then the whole
// window's journal space reclaimed at once. If any chunk fails to reach
// the sink the WHOLE window stays parked — nothing is popped, nothing is
// reclaimed — and false is returned; replaying an already-flushed chunk
// again later is a no-op (its index entries were invalidated), so the
// retry after heal is idempotent.
func (s *Set) replayWindow(j *Journal, window []*pendingRecord) bool {
	var order []blockstore.ChunkID
	groups := make(map[blockstore.ChunkID][]*pendingRecord)
	for _, rec := range window {
		if rec.chunk == padChunk || rec.failed {
			continue
		}
		if _, ok := groups[rec.chunk]; !ok {
			order = append(order, rec.chunk)
		}
		groups[rec.chunk] = append(groups[rec.chunk], rec)
	}

	var sinkWrites int64
	var parked bool
	for _, id := range order {
		w, err := s.replayChunk(id, groups[id])
		sinkWrites += w
		if err != nil {
			parked = true
			corrupt := errors.Is(err, util.ErrCorrupt)
			s.mu.Lock()
			s.replayErrors++
			if corrupt {
				s.replayCorrupt++
			}
			cb := s.onReplayError
			if m := s.cfg.Metrics; m != nil {
				if corrupt {
					m.Counter(MetricReplayCorrupt).Inc()
				} else {
					m.Counter(MetricReplayErrors).Inc()
				}
			}
			s.mu.Unlock()
			if cb != nil {
				cb(id, err)
			}
		}
	}
	if parked {
		return false
	}

	s.mu.Lock()
	replayed, failed := 0, 0
	for _, rec := range window {
		j.tail += rec.footer
		switch {
		case rec.chunk == padChunk:
		case rec.failed:
			failed++
		default:
			replayed++
			s.replayedBytes += int64(rec.dataLen)
		}
	}
	j.fifo = j.fifo[len(window):]
	s.pending -= replayed + failed
	s.replayedRecords += int64(replayed)
	if m := s.cfg.Metrics; m != nil && replayed > 0 {
		m.ObserveValue(MetricReplayWindow, int64(replayed))
		m.ObserveValue(MetricReplayWrites, sinkWrites)
	}
	if s.pending == 0 {
		s.drainCond.Broadcast()
	}
	s.mu.Unlock()
	return true
}

// replayChunk replays one chunk's records from a window, holding the chunk
// lock across query → sink write → invalidate so a bypass write cannot
// interleave with a stale replay (lock order: chunk lock before s.mu). It
// returns the number of coalesced sink writes issued, plus an error when
// the chunk's data could not all reach the sink (sink write failure or
// unreadable journal) — the caller parks the window and retries after heal
// instead of dropping the records.
func (s *Set) replayChunk(id blockstore.ChunkID, recs []*pendingRecord) (int64, error) {
	l := s.chunkLock(id)
	l.Lock()
	defer l.Unlock()

	// jranges are the records' payload regions; only index entries still
	// pointing inside them are live — everything else was overwritten since
	// the append and merges away (the paper's "overwrites between two
	// successive replays" saving).
	type jrange struct{ lo, hi uint64 }
	ranges := make([]jrange, 0, len(recs))
	inRanges := func(joff uint64) bool {
		for _, rg := range ranges {
			if joff >= rg.lo && joff < rg.hi {
				return true
			}
		}
		return false
	}

	s.mu.Lock()
	var current []jindex.Extent
	var liveRecs []*pendingRecord
	ix, haveIx := s.indexes[id]
	var totalSectors, liveSectors int64
	for _, rec := range recs {
		offSec := uint32(rec.off / util.SectorSize)
		lenSec := uint32(int64(rec.dataLen) / util.SectorSize)
		totalSectors += int64(lenSec)
		jEnd := rec.dataJOff + uint64(lenSec)
		ranges = append(ranges, jrange{rec.dataJOff, jEnd})
		if !haveIx {
			continue
		}
		live := false
		s.replayQ = ix.QueryInto(s.replayQ[:0], offSec, lenSec)
		for _, e := range s.replayQ {
			if e.JOff >= rec.dataJOff && e.JOff < jEnd {
				current = append(current, e)
				live = true
			}
		}
		if live {
			liveRecs = append(liveRecs, rec)
		}
	}
	for _, e := range current {
		liveSectors += int64(e.Len)
	}
	s.mergedSectors += totalSectors - liveSectors

	// Re-verify every record whose payload still backs live extents BEFORE
	// any byte of it reaches the sink: bit-rot inside the journal region
	// must park the window for repair (journal-replay-corrupt), never be
	// silently replayed as committed data.
	var chunkErr error
	for _, rec := range liveRecs {
		if err := s.verifyRecordLocked(rec); err != nil {
			chunkErr = err
			break
		}
	}

	// The index maps each chunk sector to at most one journal location, so
	// extents surviving from different records never overlap; sorting by
	// chunk offset and coalescing adjacent extents yields the minimal set
	// of sequential sink writes (elevator-friendly on the backup HDD).
	// Payloads are read under the lock — space cannot be reclaimed mid-read.
	sort.Slice(current, func(a, b int) bool { return current[a].Off < current[b].Off })
	type run struct {
		data []byte
		off  int64
		exts []jindex.Extent
	}
	var runs []run
	if chunkErr == nil {
	readLoop:
		for i := 0; i < len(current); {
			k := i + 1
			for k < len(current) && current[k].Off == current[k-1].Off+current[k-1].Len {
				k++
			}
			exts := current[i:k]
			lo, hi := exts[0].Off, exts[len(exts)-1].End()
			buf := bufpool.Get(int(int64(hi-lo) * util.SectorSize))
			for _, e := range exts {
				dst := buf[int64(e.Off-lo)*util.SectorSize:][:int64(e.Len)*util.SectorSize]
				jj := s.journalOf(e.JOff)
				if jj == nil {
					chunkErr = fmt.Errorf("journal: no journal owns joff %d", e.JOff)
					bufpool.Put(buf)
					break readLoop // index corrupt; park the records
				}
				if err := jj.readAtJOff(dst, e.JOff); err != nil {
					chunkErr = err // journal device unreadable; park the records
					bufpool.Put(buf)
					break readLoop
				}
			}
			runs = append(runs, run{buf, int64(lo) * util.SectorSize, exts})
			i = k
		}
	}
	s.mu.Unlock()

	// Sink writes run outside s.mu (appends continue meanwhile) but under
	// the chunk lock (bypass writes to this chunk wait their turn). A
	// failed sink write parks the remainder; what DID land is still
	// invalidated below so the retry never resurrects stale data.
	var writes int64
	var written []jindex.Extent
	for _, r := range runs {
		if err := s.sink.WriteAt(id, r.data, r.off); err != nil {
			chunkErr = err
			break
		}
		writes++
		written = append(written, r.exts...)
	}
	for _, r := range runs {
		bufpool.Put(r.data)
	}

	s.mu.Lock()
	// Remove mappings we replayed — but only where the index still points
	// into these records; newer appends that landed during the sink write
	// keep precedence.
	if ix2, ok := s.indexes[id]; ok {
		for _, w := range written {
			s.replayQ = ix2.QueryInto(s.replayQ[:0], w.Off, w.Len)
			for _, e := range s.replayQ {
				if inRanges(e.JOff) {
					ix2.Invalidate(e.Off, e.Len)
				}
			}
		}
	}
	s.mu.Unlock()
	return writes, chunkErr
}

// verifyRecordLocked re-reads one record's header and payload from its
// journal and checks payload CRC and header/record agreement. Called with
// s.mu held. A mismatch wraps util.ErrCorrupt; device errors return as-is.
func (s *Set) verifyRecordLocked(rec *pendingRecord) error {
	j := s.journalOf(rec.dataJOff)
	if j == nil {
		return fmt.Errorf("journal: no journal owns joff %d", rec.dataJOff)
	}
	// The header sector sits immediately before the payload sectors.
	hbuf := bufpool.Get(headerSize)
	defer bufpool.Put(hbuf)
	if err := j.readAtJOff(hbuf, rec.dataJOff-1); err != nil {
		return err
	}
	hdr, err := decodeHeader(hbuf)
	if err != nil {
		return fmt.Errorf("journal %s: record %v@%d: %v: %w",
			j.name, rec.chunk, rec.off, err, util.ErrCorrupt)
	}
	if hdr.chunk != rec.chunk || hdr.off != rec.off ||
		hdr.dataLen != rec.dataLen || hdr.version != rec.version {
		return fmt.Errorf("journal %s: record %v@%d: header does not match appended record: %w",
			j.name, rec.chunk, rec.off, util.ErrCorrupt)
	}
	data := bufpool.Get(int(util.AlignUp(int64(rec.dataLen), util.SectorSize)))
	defer bufpool.Put(data)
	if err := j.readAtJOff(data, rec.dataJOff); err != nil {
		return err
	}
	if sum := util.Checksum(data[:rec.dataLen]); sum != hdr.checksum {
		return fmt.Errorf("journal %s: record %v@%d: payload checksum %08x, want %08x: %w",
			j.name, rec.chunk, rec.off, sum, hdr.checksum, util.ErrCorrupt)
	}
	return nil
}

// SetStats is a snapshot of journal-set activity.
type SetStats struct {
	Pending         int
	ReplayedRecords int64
	ReplayedBytes   int64
	MergedSectors   int64 // sectors never written to the sink (overwritten)
	Flushes         int64 // group-commit batches across all journals
	BatchedRecords  int64 // records committed by those batches
	DeadJournals    int64 // journals declared dead after a flush failure
	ReplayErrors    int64 // parked replay windows (chunk could not reach sink)
	ReplayCorrupt   int64 // parked replay windows whose record failed CRC verification
	Journals        []JournalStats
}

// MeanBatch returns the average records per group-commit flush.
func (st SetStats) MeanBatch() float64 {
	if st.Flushes == 0 {
		return 0
	}
	return float64(st.BatchedRecords) / float64(st.Flushes)
}

// JournalStats describes one journal's occupancy.
type JournalStats struct {
	Name    string
	Used    int64
	Size    int64
	Appends int64
	Bytes   int64
	Flushes int64
	Queued  int  // current commit-queue depth
	Dead    bool // failed and removed from striping
}

// Stats returns a consistent snapshot.
func (s *Set) Stats() SetStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SetStats{
		Pending:         s.pending,
		ReplayedRecords: s.replayedRecords,
		ReplayedBytes:   s.replayedBytes,
		MergedSectors:   s.mergedSectors,
		DeadJournals:    s.deadJournals,
		ReplayErrors:    s.replayErrors,
		ReplayCorrupt:   s.replayCorrupt,
	}
	for _, j := range s.journals {
		st.Flushes += j.flushes
		st.BatchedRecords += j.batchedRecords
		st.Journals = append(st.Journals, JournalStats{
			Name:    j.name,
			Used:    j.UsedBytes(),
			Size:    j.size,
			Appends: j.appends,
			Bytes:   j.bytesAppended,
			Flushes: j.flushes,
			Queued:  j.queued,
			Dead:    j.dead,
		})
	}
	return st
}
