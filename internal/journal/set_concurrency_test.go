package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/metrics"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// TestConcurrentAppendDrainDrop hammers the group-commit path: N goroutines
// append to a shared chunk (disjoint per-goroutine slots) and to private
// chunks while Drain and DropChunk race with the replayer. Afterwards no
// record may be lost and no slot may hold stale (non-final) data. Run under
// -race, this also exercises the leader/follower handoff and the windowed
// replay locking.
func TestConcurrentAppendDrainDrop(t *testing.T) {
	clk := clock.TestClock()

	hm := simdisk.DefaultHDD()
	hm.Capacity = 512 * util.MiB
	hdd := simdisk.NewHDD(hm, clk)
	sm := simdisk.DefaultSSD()
	sm.Capacity = 256 * util.MiB
	ssdA := simdisk.NewSSD(sm, clk)
	ssdB := simdisk.NewSSD(sm, clk)
	sink := blockstore.New(hdd, 0)

	reg := metrics.NewRegistry()
	set := NewSet(clk, sink, Config{
		AutoMergeAt:  256,
		PollInterval: 200 * time.Microsecond,
		Metrics:      reg,
	})
	// Two SSD journals so least-queue-depth striping is exercised.
	set.AddSSDJournal("ssdA", ssdA, 0, 32*util.MiB)
	set.AddSSDJournal("ssdB", ssdB, 0, 32*util.MiB)
	set.Start()
	defer func() {
		set.Close()
		ssdA.Close()
		ssdB.Close()
		hdd.Close()
	}()

	const (
		workers = 6
		iters   = 40
		slot    = 4 * util.KiB
	)
	shared := blockstore.MakeChunkID(1, 0)
	if err := sink.Create(shared); err != nil {
		t.Fatal(err)
	}
	private := make([]blockstore.ChunkID, workers)
	for g := range private {
		private[g] = blockstore.MakeChunkID(2, uint32(g))
		if err := sink.Create(private[g]); err != nil {
			t.Fatal(err)
		}
	}

	// fill writes a recognizable, iteration-stamped pattern.
	fill := func(buf []byte, id blockstore.ChunkID, g, iter int) {
		for i := 0; i < len(buf); i += 16 {
			binary.LittleEndian.PutUint64(buf[i:], uint64(id))
			binary.LittleEndian.PutUint32(buf[i+8:], uint32(g))
			binary.LittleEndian.PutUint32(buf[i+12:], uint32(iter))
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers+2)

	// Appenders: each goroutine owns one slot of the shared chunk and two
	// slots of its private chunk, overwriting them every iteration —
	// per-slot appends stay serialized (single writer), while slots of the
	// same chunk race through group commit together.
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, slot)
			for i := 0; i < iters; i++ {
				fill(buf, shared, g, i)
				if err := set.Append(nil, shared, int64(g)*slot, buf, uint64(i+1)); err != nil {
					errs <- fmt.Errorf("worker %d shared append %d: %w", g, i, err)
					return
				}
				for s := 0; s < 2; s++ {
					fill(buf, private[g], s, i)
					if err := set.Append(nil, private[g], int64(s)*slot, buf, uint64(i+1)); err != nil {
						errs <- fmt.Errorf("worker %d private append %d.%d: %w", g, i, s, err)
						return
					}
				}
			}
		}(g)
	}

	// Drainer: force full replays concurrently with the appends.
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			set.Drain()
			time.Sleep(time.Millisecond)
		}
	}()

	// Dropper: churn a sacrificial chunk through create→append→drop→delete
	// so replay repeatedly meets records whose index is gone.
	wg.Add(1)
	go func() {
		defer wg.Done()
		doomed := blockstore.MakeChunkID(3, 0)
		buf := make([]byte, slot)
		for i := 0; i < iters; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := sink.Create(doomed); err != nil {
				errs <- fmt.Errorf("dropper create %d: %w", i, err)
				return
			}
			fill(buf, doomed, 0, i)
			if err := set.Append(nil, doomed, 0, buf, uint64(i+1)); err != nil {
				errs <- fmt.Errorf("dropper append %d: %w", i, err)
				return
			}
			set.DropChunk(doomed)
			if err := sink.Delete(doomed); err != nil {
				errs <- fmt.Errorf("dropper delete %d: %w", i, err)
				return
			}
		}
	}()

	// Wait for appenders, then release the drainer/dropper.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Appenders finish first (workers goroutines); give everything a bound.
	deadline := time.After(2 * time.Minute)
	waitDone := func() {
		select {
		case <-done:
		case <-deadline:
			t.Fatal("timeout: appenders/drainer/dropper did not finish")
		}
	}
	// Close stop once appenders are done: poll pending via a side channel.
	go func() {
		for {
			time.Sleep(5 * time.Millisecond)
			if set.Stats().BatchedRecords >= int64(workers*iters*3) {
				close(stop)
				return
			}
		}
	}()
	waitDone()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	set.Drain()
	if p := set.Pending(); p != 0 {
		t.Fatalf("pending after drain = %d", p)
	}

	// No record lost, none replayed stale: every surviving slot must hold
	// its final iteration, via the journal-aware read AND on the bare sink.
	want := make([]byte, slot)
	got := make([]byte, slot)
	check := func(id blockstore.ChunkID, g int, off int64) {
		t.Helper()
		fill(want, id, g, iters-1)
		if err := set.Read(id, got, off); err != nil {
			t.Fatalf("read %v@%d: %v", id, off, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("chunk %v slot@%d: stale or lost data (journal read)", id, off)
		}
		if err := sink.ReadAt(id, got, off); err != nil {
			t.Fatalf("sink read %v@%d: %v", id, off, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("chunk %v slot@%d: stale or lost data on sink", id, off)
		}
	}
	for g := 0; g < workers; g++ {
		check(shared, g, int64(g)*slot)
		check(private[g], 0, 0)
		check(private[g], 1, slot)
	}

	// The batch-size histogram must exist; under concurrency it should have
	// seen every record (mean >= 1 by construction).
	st := set.Stats()
	if st.BatchedRecords < int64(workers*iters*3) {
		t.Errorf("batched records = %d, want >= %d", st.BatchedRecords, workers*iters*3)
	}
	if vh := reg.ValueHist("journal-batch-records"); vh == nil || vh.Count() == 0 {
		t.Error("journal-batch-records histogram empty")
	}
}
