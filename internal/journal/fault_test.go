package journal

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/metrics"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// faultEnv is a journal set whose every device sits behind a FaultInjector.
type faultEnv struct {
	set  *Set
	sink *blockstore.Store
	reg  *metrics.Registry
	// jdisks[i] backs journal i; sinkDisk backs the chunk store.
	jdisks   []*simdisk.FaultInjector
	sinkDisk *simdisk.FaultInjector
}

func newFaultEnv(t *testing.T, nJournals int, start bool) *faultEnv {
	t.Helper()
	clk := clock.TestClock()
	reg := metrics.NewRegistry()

	hm := simdisk.DefaultHDD()
	hm.Capacity = 512 * util.MiB
	sinkDisk := simdisk.NewFaultInjector(simdisk.NewHDD(hm, clk), clk)
	sink := blockstore.New(sinkDisk, 0)

	cfg := Config{AutoMergeAt: 256, PollInterval: 200 * time.Microsecond, Metrics: reg}
	set := NewSet(clk, sink, cfg)
	var jdisks []*simdisk.FaultInjector
	for i := 0; i < nJournals; i++ {
		sm := simdisk.DefaultSSD()
		sm.Capacity = 64 * util.MiB
		jd := simdisk.NewFaultInjector(simdisk.NewSSD(sm, clk), clk)
		jdisks = append(jdisks, jd)
		set.AddSSDJournal("jssd"+string(rune('0'+i)), jd, 0, 16*util.MiB)
	}
	if start {
		set.Start()
	}
	t.Cleanup(func() {
		set.Close()
		for _, d := range jdisks {
			d.Close()
		}
		sinkDisk.Close()
	})
	return &faultEnv{set: set, sink: sink, reg: reg, jdisks: jdisks, sinkDisk: sinkDisk}
}

// TestJournalDeathReroutes kills one journal's device mid-stream: the
// append whose flush fails must be re-routed to the surviving journal and
// still succeed, and the dead journal must leave the striping set.
func TestJournalDeathReroutes(t *testing.T) {
	e := newFaultEnv(t, 2, true)
	id := blockstore.MakeChunkID(1, 0)
	if err := e.sink.Create(id); err != nil {
		t.Fatal(err)
	}

	var deadName atomic.Value
	e.set.OnFault(func(name string, err error) { deadName.Store(name) }, nil)

	data := make([]byte, 4*util.KiB)
	util.NewRand(21).Fill(data)
	if err := e.set.Append(nil, id, 0, data, 1); err != nil {
		t.Fatal(err)
	}

	// Sequential appends all stripe to journal 0 (equal queue depths pick
	// the first); killing its device makes the next flush fail.
	e.jdisks[0].FailWrites(nil)
	data2 := make([]byte, 4*util.KiB)
	util.NewRand(22).Fill(data2)
	if err := e.set.Append(nil, id, 4096, data2, 2); err != nil {
		t.Fatalf("append during journal death: %v", err)
	}

	st := e.set.Stats()
	if st.DeadJournals != 1 || !st.Journals[0].Dead || st.Journals[1].Dead {
		t.Fatalf("stats after death: %+v", st)
	}
	if got := e.reg.Counter(MetricJournalDead).Load(); got != 1 {
		t.Errorf("%s = %d", MetricJournalDead, got)
	}
	if v := deadName.Load(); v != "jssd0" {
		t.Errorf("dead callback got %v", v)
	}
	if st.Journals[1].Appends == 0 {
		t.Errorf("re-routed record did not land on survivor: %+v", st.Journals)
	}

	// Every ack'd write must read back, through journals and after replay.
	for _, probe := range []struct {
		off  int64
		want []byte
	}{{0, data}, {4096, data2}} {
		got := make([]byte, len(probe.want))
		if err := e.set.Read(id, got, probe.off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, probe.want) {
			t.Errorf("read at %d mismatch", probe.off)
		}
	}
	e.set.Drain()
	got := make([]byte, len(data2))
	if err := e.sink.ReadAt(id, got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data2) {
		t.Error("re-routed record not replayed to sink")
	}
}

// TestAllJournalsDeadBypasses drives the degradation ladder to the bottom:
// with every journal dead, Append must degrade to a WriteDirect against
// the sink and still succeed.
func TestAllJournalsDeadBypasses(t *testing.T) {
	e := newFaultEnv(t, 2, true)
	id := blockstore.MakeChunkID(1, 0)
	if err := e.sink.Create(id); err != nil {
		t.Fatal(err)
	}
	for _, d := range e.jdisks {
		d.FailWrites(nil)
	}
	data := make([]byte, 4*util.KiB)
	util.NewRand(23).Fill(data)
	if err := e.set.Append(nil, id, 0, data, 1); err != nil {
		t.Fatalf("append with all journals dead: %v", err)
	}
	if got := e.reg.Counter(MetricBypassWrites).Load(); got == 0 {
		t.Error("bypass write not counted")
	}
	st := e.set.Stats()
	if st.DeadJournals != 2 {
		t.Errorf("dead journals = %d", st.DeadJournals)
	}
	// The data went straight to the sink — no journal holds it.
	got := make([]byte, len(data))
	if err := e.sink.ReadAt(id, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("bypass write missing from sink")
	}
	// Subsequent appends keep bypassing without error.
	if err := e.set.Append(nil, id, 4096, data, 2); err != nil {
		t.Fatalf("second bypass append: %v", err)
	}
	e.set.Drain() // the failed records trim away; must not hang
	if p := e.set.Pending(); p != 0 {
		t.Errorf("pending after drain = %d", p)
	}
}

// TestReplayParksOnSinkError arms a sink write fault under pending replay:
// the records must park (not drop), be counted and reported, and drain
// normally once the sink heals.
func TestReplayParksOnSinkError(t *testing.T) {
	e := newFaultEnv(t, 1, false)
	id := blockstore.MakeChunkID(1, 0)
	if err := e.sink.Create(id); err != nil {
		t.Fatal(err)
	}
	var reported atomic.Int64
	e.set.OnFault(nil, func(got blockstore.ChunkID, err error) {
		if got == id && err != nil {
			reported.Add(1)
		}
	})

	data := make([]byte, 4*util.KiB)
	util.NewRand(24).Fill(data)
	if err := e.set.Append(nil, id, 0, data, 1); err != nil {
		t.Fatal(err)
	}
	e.sinkDisk.FailWrites(nil)
	e.set.Start()

	deadline := time.Now().Add(5 * time.Second)
	for e.reg.Counter(MetricReplayErrors).Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replay error never observed")
		}
		time.Sleep(time.Millisecond)
	}
	if p := e.set.Pending(); p != 1 {
		t.Fatalf("records dropped instead of parked: pending = %d", p)
	}
	if reported.Load() == 0 {
		t.Error("replay-error callback never fired")
	}
	if st := e.set.Stats(); st.ReplayErrors == 0 {
		t.Errorf("stats missed replay errors: %+v", st)
	}

	// Heal: the parked window must drain and the data must reach the sink.
	e.sinkDisk.Heal()
	e.set.Drain()
	if p := e.set.Pending(); p != 0 {
		t.Fatalf("pending after heal+drain = %d", p)
	}
	got := make([]byte, len(data))
	if err := e.sink.ReadAt(id, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("parked record not replayed after heal")
	}
}

// TestReplayParksOnCorruptRecord flips bytes inside a committed record's
// payload sectors: replay must detect the CRC mismatch BEFORE any byte
// reaches the sink, park the window (not drop it), count it under
// journal-replay-corrupt, and drain normally once the rot heals.
func TestReplayParksOnCorruptRecord(t *testing.T) {
	e := newFaultEnv(t, 1, false)
	id := blockstore.MakeChunkID(1, 0)
	if err := e.sink.Create(id); err != nil {
		t.Fatal(err)
	}
	var reported atomic.Int64
	e.set.OnFault(nil, func(got blockstore.ChunkID, err error) {
		if got == id && errors.Is(err, util.ErrCorrupt) {
			reported.Add(1)
		}
	})

	data := make([]byte, 4*util.KiB)
	util.NewRand(25).Fill(data)
	if err := e.set.Append(nil, id, 0, data, 1); err != nil {
		t.Fatal(err)
	}

	// The record occupies [0, 512) header + [512, 4608) payload on journal
	// 0's device; rot the first payload sector, persistently.
	e.jdisks[0].CorruptRange(512, 1024, true)
	e.set.Start()

	deadline := time.Now().Add(5 * time.Second)
	for e.reg.Counter(MetricReplayCorrupt).Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("corrupt replay never observed")
		}
		time.Sleep(time.Millisecond)
	}
	if p := e.set.Pending(); p != 1 {
		t.Fatalf("corrupt record dropped instead of parked: pending = %d", p)
	}
	if reported.Load() == 0 {
		t.Error("replay-error callback never fired with ErrCorrupt")
	}
	if st := e.set.Stats(); st.ReplayCorrupt == 0 {
		t.Errorf("stats missed corrupt replays: %+v", st)
	}
	// Nothing corrupt reached the sink: the region still reads as zeros.
	got := make([]byte, len(data))
	if err := e.sink.ReadAt(id, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, len(data))) {
		t.Fatal("corrupt payload leaked into the sink")
	}

	// Heal the rot: the parked window re-verifies clean and drains.
	e.jdisks[0].Heal()
	e.set.Drain()
	if p := e.set.Pending(); p != 0 {
		t.Fatalf("pending after heal+drain = %d", p)
	}
	if err := e.sink.ReadAt(id, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("record not replayed intact after heal")
	}
}
