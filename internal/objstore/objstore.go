// Package objstore simulates an S3-like object store: a flat namespace of
// immutable, write-once segments addressed by 64-bit IDs. It is the cold
// tier's backend — snapshot and cold-chunk extents live here as checksummed
// log segments (internal/coldtier owns the segment format; this package
// only stores bytes).
//
// The store models object-storage economics on the cluster clock: high
// per-op latency, decent streaming bandwidth, bounded request parallelism.
// Like simdisk it carries a built-in fault injector (failed PUTs/GETs,
// stalls, transient read corruption) so the chaos harness can break it
// mid-workload, and it is served over the ordinary transport
// (objstore.Handler) so partitions apply to it like to any other node.
//
// Deletion discipline: DELETE of an object waits for in-flight GETs on that
// object to drain before the object disappears, and admits no new readers
// while waiting. This is the invariant the cold tier's GC leans on — a
// segment with a demand-fetch in flight is never yanked mid-transfer; the
// fetch completes with correct bytes and only later fetches see NotFound.
package objstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ursa/internal/clock"
	"ursa/internal/metrics"
	"ursa/internal/util"
)

// ErrFault is the sentinel every injected objstore error wraps.
var ErrFault = errors.New("objstore: injected fault")

// Metric names for objstore activity, registered on the cluster registry.
const (
	// MetricObjPuts counts successful segment PUTs.
	MetricObjPuts = "objstore-puts"
	// MetricObjGets counts successful segment GETs (range reads included).
	MetricObjGets = "objstore-gets"
	// MetricObjDeletes counts successful segment DELETEs.
	MetricObjDeletes = "objstore-deletes"
	// MetricObjFaultsInjected counts fault armings on the store's injector.
	MetricObjFaultsInjected = "objstore-faults-injected"
)

// Model parameterizes the simulated object service: fixed per-request
// latency plus a streaming rate for the payload, applied per operation.
// Object stores are the opposite shape from local disks — tens of
// milliseconds to first byte, then wide pipes.
type Model struct {
	// PutLatency / GetLatency / DeleteLatency are fixed per-op costs.
	PutLatency    time.Duration
	GetLatency    time.Duration
	DeleteLatency time.Duration
	// Bandwidth is the per-request streaming rate in bytes/second applied
	// to the transferred payload; 0 disables transfer-time modeling.
	Bandwidth float64
	// Parallelism bounds concurrently serviced requests; extra requests
	// queue. 0 means unbounded.
	Parallelism int
}

// DefaultModel approximates a same-region object service at the bench's
// uniform ×10 slow-motion scale: ~30 ms to first byte, ~100 MB/s per
// stream, wide request parallelism.
func DefaultModel() Model {
	return Model{
		PutLatency:    30 * time.Millisecond,
		GetLatency:    30 * time.Millisecond,
		DeleteLatency: 10 * time.Millisecond,
		Bandwidth:     100e6,
		Parallelism:   64,
	}
}

// TestModel is near-free: unit tests that exercise protocol logic rather
// than timing use it so suites stay fast.
func TestModel() Model { return Model{} }

// object is one stored segment.
type object struct {
	data []byte
	// readers counts in-flight GET transfers; deleting marks a DELETE
	// waiting for them to drain (no new readers admitted).
	readers  int
	deleting bool
}

// Store is the simulated object store. Safe for concurrent use.
type Store struct {
	clk   clock.Clock
	model Model
	slots chan struct{} // request-parallelism semaphore; nil = unbounded

	mu      sync.Mutex
	cond    *sync.Cond // broadcast when an object's reader count drains
	objects map[uint64]*object

	// Armed faults (chaos injection).
	failPuts     bool
	failGets     bool
	stall        time.Duration
	corruptReads int // transient: next N GET payloads come back flipped

	reg *metrics.Registry

	puts, gets, deletes  atomic.Int64
	bytesIn, bytesOut    atomic.Int64
	putsFailed           atomic.Int64
	getsFailed           atomic.Int64
	readsCorrupted       atomic.Int64
	deletesWaitedReaders atomic.Int64
}

// New creates a store on clk with the given service model.
func New(clk clock.Clock, model Model) *Store {
	if clk == nil {
		clk = clock.Realtime
	}
	s := &Store{clk: clk, model: model, objects: make(map[uint64]*object)}
	s.cond = sync.NewCond(&s.mu)
	if model.Parallelism > 0 {
		s.slots = make(chan struct{}, model.Parallelism)
	}
	return s
}

// SetMetrics routes the store's counters to reg. Call before serving.
func (s *Store) SetMetrics(reg *metrics.Registry) {
	s.mu.Lock()
	s.reg = reg
	s.mu.Unlock()
}

func (s *Store) count(name string, n int64) {
	s.mu.Lock()
	reg := s.reg
	s.mu.Unlock()
	if reg != nil {
		reg.Counter(name).Add(n)
	}
}

// acquire takes a service slot (request-parallelism model).
func (s *Store) acquire() {
	if s.slots != nil {
		s.slots <- struct{}{}
	}
}

func (s *Store) release() {
	if s.slots != nil {
		<-s.slots
	}
}

// serviceTime sleeps the modeled cost of one request moving n payload
// bytes, plus any armed stall.
func (s *Store) serviceTime(fixed time.Duration, n int) {
	s.mu.Lock()
	stall := s.stall
	s.mu.Unlock()
	d := fixed + stall
	if s.model.Bandwidth > 0 && n > 0 {
		d += time.Duration(float64(n) / s.model.Bandwidth * float64(time.Second))
	}
	if d > 0 {
		s.clk.Sleep(d)
	}
}

// Put stores data as immutable object id. Objects are write-once:
// re-putting an existing id fails with util.ErrExists (GC allocates fresh
// IDs instead of reusing names). The data is copied; the caller keeps its
// buffer.
func (s *Store) Put(id uint64, data []byte) error {
	s.acquire()
	defer s.release()
	s.mu.Lock()
	if s.failPuts {
		s.mu.Unlock()
		s.putsFailed.Add(1)
		return fmt.Errorf("objstore: put %#x: %w", id, ErrFault)
	}
	if _, ok := s.objects[id]; ok {
		s.mu.Unlock()
		return fmt.Errorf("objstore: object %#x: %w", id, util.ErrExists)
	}
	// Reserve the name before the modeled transfer so concurrent PUTs of
	// the same id conflict deterministically; the bytes land after.
	obj := &object{}
	s.objects[id] = obj
	s.mu.Unlock()

	s.serviceTime(s.model.PutLatency, len(data))

	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	obj.data = cp
	s.mu.Unlock()
	s.puts.Add(1)
	s.bytesIn.Add(int64(len(data)))
	s.count(MetricObjPuts, 1)
	return nil
}

// Get reads len(buf) bytes at off of object id into buf. The object's
// reader count is held across the modeled transfer, which is what blocks a
// concurrent Delete until the copy lands.
func (s *Store) Get(id uint64, off int64, buf []byte) error {
	s.acquire()
	defer s.release()
	s.mu.Lock()
	if s.failGets {
		s.mu.Unlock()
		s.getsFailed.Add(1)
		return fmt.Errorf("objstore: get %#x: %w", id, ErrFault)
	}
	obj, ok := s.objects[id]
	if !ok || obj.deleting || obj.data == nil {
		s.mu.Unlock()
		return fmt.Errorf("objstore: object %#x: %w", id, util.ErrNotFound)
	}
	if off < 0 || off+int64(len(buf)) > int64(len(obj.data)) {
		s.mu.Unlock()
		return fmt.Errorf("objstore: get %#x [%d,+%d) beyond %d bytes: %w",
			id, off, len(buf), len(obj.data), util.ErrOutOfRange)
	}
	obj.readers++
	corrupt := false
	if s.corruptReads > 0 {
		s.corruptReads--
		corrupt = true
	}
	s.mu.Unlock()

	s.serviceTime(s.model.GetLatency, len(buf))
	copy(buf, obj.data[off:]) // obj.data is immutable once set
	if corrupt {
		for i := range buf {
			buf[i] ^= 0xa5
		}
		s.readsCorrupted.Add(1)
	}

	s.mu.Lock()
	obj.readers--
	if obj.readers == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	s.gets.Add(1)
	s.bytesOut.Add(int64(len(buf)))
	s.count(MetricObjGets, 1)
	return nil
}

// Size returns the byte length of object id.
func (s *Store) Size(id uint64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[id]
	if !ok || obj.deleting || obj.data == nil {
		return 0, fmt.Errorf("objstore: object %#x: %w", id, util.ErrNotFound)
	}
	return int64(len(obj.data)), nil
}

// Delete removes object id. It admits no new readers and then waits for
// in-flight GET transfers on the object to drain before the object
// disappears — the cold tier's GC-vs-demand-fetch safety hinges on this.
func (s *Store) Delete(id uint64) error {
	s.acquire()
	defer s.release()
	s.mu.Lock()
	obj, ok := s.objects[id]
	if !ok || obj.deleting {
		s.mu.Unlock()
		return fmt.Errorf("objstore: object %#x: %w", id, util.ErrNotFound)
	}
	obj.deleting = true
	if obj.readers > 0 {
		s.deletesWaitedReaders.Add(1)
	}
	for obj.readers > 0 {
		s.cond.Wait()
	}
	delete(s.objects, id)
	s.mu.Unlock()
	s.serviceTime(s.model.DeleteLatency, 0)
	s.deletes.Add(1)
	s.count(MetricObjDeletes, 1)
	return nil
}

// ObjInfo describes one stored object in a listing.
type ObjInfo struct {
	ID   uint64 `json:"id"`
	Size int64  `json:"size"`
}

// List returns every stored object's ID and size, ascending by ID. Garbage
// collectors pair the sizes with metadata-derived live byte counts to pick
// rewrite victims without fetching anything.
func (s *Store) List() []ObjInfo {
	s.mu.Lock()
	out := make([]ObjInfo, 0, len(s.objects))
	for id, obj := range s.objects {
		if !obj.deleting && obj.data != nil {
			out = append(out, ObjInfo{ID: id, Size: int64(len(obj.data))})
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// UsedBytes totals the stored object bytes.
func (s *Store) UsedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, obj := range s.objects {
		n += int64(len(obj.data))
	}
	return n
}

// ---------------------------------------------------------------------------
// Fault injection (chaos interface, mirroring simdisk.FaultInjector).

// armed bumps the faults-injected counter; caller holds s.mu.
func (s *Store) armedLocked() {
	if s.reg != nil {
		s.reg.Counter(MetricObjFaultsInjected).Inc()
	}
}

// FailPuts arms failure of every PUT until Heal.
func (s *Store) FailPuts() {
	s.mu.Lock()
	s.failPuts = true
	s.armedLocked()
	s.mu.Unlock()
}

// FailGets arms failure of every GET until Heal.
func (s *Store) FailGets() {
	s.mu.Lock()
	s.failGets = true
	s.armedLocked()
	s.mu.Unlock()
}

// Stall arms a fixed extra delay on every request until Heal — the limping
// object service whose reads the cold path must ride out or fail cleanly.
func (s *Store) Stall(d time.Duration) {
	s.mu.Lock()
	s.stall = d
	s.armedLocked()
	s.mu.Unlock()
}

// CorruptReads arms transient bit-rot on the wire: the next n GETs succeed
// but deliver flipped payload bytes. Transient (it models a corrupted
// transfer, not corrupted storage): extent CRCs catch it and a retry reads
// clean bytes.
func (s *Store) CorruptReads(n int) {
	s.mu.Lock()
	s.corruptReads += n
	s.armedLocked()
	s.mu.Unlock()
}

// Heal clears every armed fault.
func (s *Store) Heal() {
	s.mu.Lock()
	s.failPuts, s.failGets = false, false
	s.stall = 0
	s.corruptReads = 0
	s.mu.Unlock()
}

// Stats is a snapshot of store activity.
type Stats struct {
	Puts, Gets, Deletes  int64
	BytesIn, BytesOut    int64
	PutsFailed           int64
	GetsFailed           int64
	ReadsCorrupted       int64
	DeletesWaitedReaders int64
	Objects              int
}

// Stats returns a snapshot of store activity.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n := len(s.objects)
	s.mu.Unlock()
	return Stats{
		Puts:                 s.puts.Load(),
		Gets:                 s.gets.Load(),
		Deletes:              s.deletes.Load(),
		BytesIn:              s.bytesIn.Load(),
		BytesOut:             s.bytesOut.Load(),
		PutsFailed:           s.putsFailed.Load(),
		GetsFailed:           s.getsFailed.Load(),
		ReadsCorrupted:       s.readsCorrupted.Load(),
		DeletesWaitedReaders: s.deletesWaitedReaders.Load(),
		Objects:              n,
	}
}
