package objstore

import (
	"encoding/json"
	"errors"

	"ursa/internal/bufpool"
	"ursa/internal/proto"
	"ursa/internal/util"
)

// Handler serves the object-store wire protocol over the shared transport.
// The Chunk header field carries the object ID on every op.
//
//   - OpObjPut: payload is the object body; write-once.
//   - OpObjGet: Off/Length select the range; the reply payload is leased
//     from bufpool and settled by the transport on send.
//   - OpObjDelete: drains in-flight GETs before the object disappears.
//   - OpObjList: reply payload is a JSON []uint64 of object IDs.
//
// The handler copies or fully consumes the request payload before
// returning, per the transport's ownership contract.
func (s *Store) Handler(m *proto.Message) *proto.Message {
	switch m.Op {
	case proto.OpObjPut:
		return m.Reply(putStatus(s.Put(uint64(m.Chunk), m.Payload)))

	case proto.OpObjGet:
		n := int(m.Length)
		if n < 0 || n > proto.MaxPayload {
			return m.Reply(proto.StatusError)
		}
		buf := bufpool.Get(n)
		if err := s.Get(uint64(m.Chunk), m.Off, buf); err != nil {
			bufpool.Put(buf)
			return m.Reply(getStatus(err))
		}
		resp := m.Reply(proto.StatusOK)
		resp.Payload = buf
		return resp

	case proto.OpObjDelete:
		err := s.Delete(uint64(m.Chunk))
		switch {
		case err == nil:
			return m.Reply(proto.StatusOK)
		case errors.Is(err, util.ErrNotFound):
			return m.Reply(proto.StatusNotFound)
		default:
			return m.Reply(proto.StatusError)
		}

	case proto.OpObjList:
		body, err := json.Marshal(s.List())
		if err != nil {
			return m.Reply(proto.StatusError)
		}
		resp := m.Reply(proto.StatusOK)
		resp.Payload = body
		return resp

	default:
		return m.Reply(proto.StatusError)
	}
}

func putStatus(err error) proto.Status {
	switch {
	case err == nil:
		return proto.StatusOK
	case errors.Is(err, util.ErrExists):
		return proto.StatusExists
	default:
		return proto.StatusError
	}
}

func getStatus(err error) proto.Status {
	if errors.Is(err, util.ErrNotFound) {
		return proto.StatusNotFound
	}
	return proto.StatusError
}
