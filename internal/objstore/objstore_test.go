package objstore

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"ursa/internal/clock"
	"ursa/internal/util"
)

func TestPutGetDeleteList(t *testing.T) {
	s := New(clock.Realtime, TestModel())
	data := []byte("segment-zero-contents")
	if err := s.Put(7, data); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s.Put(7, data); !errors.Is(err, util.ErrExists) {
		t.Fatalf("re-put: got %v, want ErrExists", err)
	}
	if err := s.Put(9, []byte("nine")); err != nil {
		t.Fatalf("put 9: %v", err)
	}

	buf := make([]byte, len(data))
	if err := s.Get(7, 0, buf); err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("get: got %q, want %q", buf, data)
	}
	// Range read.
	part := make([]byte, 5)
	if err := s.Get(7, 8, part); err != nil {
		t.Fatalf("range get: %v", err)
	}
	if !bytes.Equal(part, data[8:13]) {
		t.Fatalf("range get: got %q, want %q", part, data[8:13])
	}
	// Beyond-end range fails cleanly.
	if err := s.Get(7, int64(len(data))-2, part); !errors.Is(err, util.ErrOutOfRange) {
		t.Fatalf("oob get: got %v, want ErrOutOfRange", err)
	}

	if got := s.List(); len(got) != 2 || got[0].ID != 7 || got[1].ID != 9 ||
		got[0].Size != int64(len(data)) {
		t.Fatalf("list: got %v, want ids [7 9] with sizes", got)
	}
	if n, err := s.Size(7); err != nil || n != int64(len(data)) {
		t.Fatalf("size: got %d, %v", n, err)
	}

	if err := s.Delete(7); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := s.Delete(7); !errors.Is(err, util.ErrNotFound) {
		t.Fatalf("re-delete: got %v, want ErrNotFound", err)
	}
	if err := s.Get(7, 0, buf); !errors.Is(err, util.ErrNotFound) {
		t.Fatalf("get after delete: got %v, want ErrNotFound", err)
	}
}

// Delete must wait out in-flight GET transfers: the reader gets clean
// bytes even though the delete was issued mid-transfer.
func TestDeleteWaitsForInflightGet(t *testing.T) {
	s := New(clock.Realtime, Model{GetLatency: 30 * time.Millisecond})
	data := bytes.Repeat([]byte{0x5a}, 4096)
	if err := s.Put(1, data); err != nil {
		t.Fatalf("put: %v", err)
	}
	var wg sync.WaitGroup
	buf := make([]byte, len(data))
	var getErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		getErr = s.Get(1, 0, buf)
	}()
	time.Sleep(10 * time.Millisecond) // let the GET enter its transfer
	if err := s.Delete(1); err != nil {
		t.Fatalf("delete: %v", err)
	}
	wg.Wait()
	if getErr != nil {
		t.Fatalf("in-flight get failed: %v", getErr)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("in-flight get returned wrong bytes after racing delete")
	}
	if st := s.Stats(); st.DeletesWaitedReaders == 0 {
		t.Fatal("delete did not record waiting for the in-flight reader")
	}
}

func TestFaultInjection(t *testing.T) {
	s := New(clock.Realtime, TestModel())
	if err := s.Put(1, []byte("abcd")); err != nil {
		t.Fatalf("put: %v", err)
	}
	buf := make([]byte, 4)

	s.FailGets()
	if err := s.Get(1, 0, buf); !errors.Is(err, ErrFault) {
		t.Fatalf("failed get: got %v, want ErrFault", err)
	}
	s.FailPuts()
	if err := s.Put(2, []byte("x")); !errors.Is(err, ErrFault) {
		t.Fatalf("failed put: got %v, want ErrFault", err)
	}
	s.Heal()
	if err := s.Get(1, 0, buf); err != nil || !bytes.Equal(buf, []byte("abcd")) {
		t.Fatalf("healed get: %q, %v", buf, err)
	}

	// Transient corruption: exactly one flipped read, then clean again.
	s.CorruptReads(1)
	if err := s.Get(1, 0, buf); err != nil {
		t.Fatalf("corrupt get errored: %v", err)
	}
	if bytes.Equal(buf, []byte("abcd")) {
		t.Fatal("armed corrupt read came back clean")
	}
	if err := s.Get(1, 0, buf); err != nil || !bytes.Equal(buf, []byte("abcd")) {
		t.Fatalf("read after transient corruption: %q, %v", buf, err)
	}
	if st := s.Stats(); st.ReadsCorrupted != 1 {
		t.Fatalf("ReadsCorrupted = %d, want 1", st.ReadsCorrupted)
	}
}

func TestStallDelaysRequests(t *testing.T) {
	s := New(clock.Realtime, TestModel())
	if err := s.Put(1, []byte("abcd")); err != nil {
		t.Fatalf("put: %v", err)
	}
	s.Stall(50 * time.Millisecond)
	buf := make([]byte, 4)
	t0 := time.Now()
	if err := s.Get(1, 0, buf); err != nil {
		t.Fatalf("stalled get: %v", err)
	}
	if d := time.Since(t0); d < 40*time.Millisecond {
		t.Fatalf("stalled get returned in %v, want >= ~50ms", d)
	}
	s.Heal()
	t0 = time.Now()
	if err := s.Get(1, 0, buf); err != nil {
		t.Fatalf("healed get: %v", err)
	}
	if d := time.Since(t0); d > 30*time.Millisecond {
		t.Fatalf("healed get still slow: %v", d)
	}
}
