package reliability

import (
	"strings"
	"testing"
)

func TestSimulateReproducesTable1(t *testing.T) {
	res := Simulate(DefaultFleet(), 2000, 25, 42)
	if res.Total == 0 {
		t.Fatal("no failures simulated")
	}
	// Each class ratio must land within 1.5 percentage points of Table 1
	// at this fleet size.
	for name, want := range PaperRatios {
		got := res.Ratio(name)
		if got < want-1.5 || got > want+1.5 {
			t.Errorf("%s: %.1f%%, paper %.1f%%", name, got, want)
		}
	}
}

func TestHDDDominance(t *testing.T) {
	// §5.4: HDDs contribute nearly 70% of failures, an order of magnitude
	// above SSDs.
	res := Simulate(DefaultFleet(), 500, 10, 7)
	if res.Ratio("HDD") < 10*res.Ratio("SSD") {
		t.Errorf("HDD/SSD ratio = %.1f/%.1f, want ≥10x",
			res.Ratio("HDD"), res.Ratio("SSD"))
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(DefaultFleet(), 100, 2, 9)
	b := Simulate(DefaultFleet(), 100, 2, 9)
	if a.Total != b.Total {
		t.Error("simulation not deterministic")
	}
}

func TestTableRendering(t *testing.T) {
	res := Simulate(DefaultFleet(), 200, 5, 1)
	tab := res.Table()
	for _, name := range []string{"HDD", "SSD", "RAM", "Power", "CPU", "Other"} {
		if !strings.Contains(tab, name) {
			t.Errorf("table missing %s:\n%s", name, tab)
		}
	}
	// HDD row should come first (largest paper ratio).
	lines := strings.Split(tab, "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[1], "HDD") {
		t.Errorf("table ordering wrong:\n%s", tab)
	}
}

func TestRatioEmpty(t *testing.T) {
	var r Result
	if r.Ratio("HDD") != 0 {
		t.Error("empty result ratio not 0")
	}
}

// Exaggerated rates keep the Monte-Carlo cheap while leaving an
// unmistakable ordering: more frequent scrubs → lower loss probability.
func scrubTestParams() ScrubParams {
	return ScrubParams{
		DiskAFR:     0.05,
		LSERate:     1.0,
		RepairDays:  3,
		Replication: 3,
	}
}

func TestScrubFrequencyLowersLossProbability(t *testing.T) {
	const groups, years = 2000, 4
	rows := ScrubSweep(scrubTestParams(), []int{7, 60, 0}, groups, years, 1)
	weekly, rare, never := rows[0].LossProb, rows[1].LossProb, rows[2].LossProb
	t.Logf("\n%s", ScrubTable(rows, years))
	if !(weekly < rare) {
		t.Errorf("weekly scrub loss %.4f not below 60d scrub loss %.4f", weekly, rare)
	}
	if !(rare < never) {
		t.Errorf("60d scrub loss %.4f not below never-scrub loss %.4f", rare, never)
	}
	if never == 0 {
		t.Error("never-scrub case lost nothing: rates too low to exercise the model")
	}
}

func TestSimulateLatentDeterministic(t *testing.T) {
	p := scrubTestParams()
	p.ScrubIntervalDays = 7
	a := SimulateLatent(p, 500, 2, 42)
	b := SimulateLatent(p, 500, 2, 42)
	if a != b {
		t.Fatalf("same seed gave %v then %v", a, b)
	}
}

func TestSimulateLatentNoHazardsNoLoss(t *testing.T) {
	p := ScrubParams{Replication: 3, RepairDays: 1, ScrubIntervalDays: 7}
	if got := SimulateLatent(p, 200, 3, 7); got != 0 {
		t.Fatalf("zero failure rates lost data: %v", got)
	}
}
