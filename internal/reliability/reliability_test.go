package reliability

import (
	"strings"
	"testing"
)

func TestSimulateReproducesTable1(t *testing.T) {
	res := Simulate(DefaultFleet(), 2000, 25, 42)
	if res.Total == 0 {
		t.Fatal("no failures simulated")
	}
	// Each class ratio must land within 1.5 percentage points of Table 1
	// at this fleet size.
	for name, want := range PaperRatios {
		got := res.Ratio(name)
		if got < want-1.5 || got > want+1.5 {
			t.Errorf("%s: %.1f%%, paper %.1f%%", name, got, want)
		}
	}
}

func TestHDDDominance(t *testing.T) {
	// §5.4: HDDs contribute nearly 70% of failures, an order of magnitude
	// above SSDs.
	res := Simulate(DefaultFleet(), 500, 10, 7)
	if res.Ratio("HDD") < 10*res.Ratio("SSD") {
		t.Errorf("HDD/SSD ratio = %.1f/%.1f, want ≥10x",
			res.Ratio("HDD"), res.Ratio("SSD"))
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(DefaultFleet(), 100, 2, 9)
	b := Simulate(DefaultFleet(), 100, 2, 9)
	if a.Total != b.Total {
		t.Error("simulation not deterministic")
	}
}

func TestTableRendering(t *testing.T) {
	res := Simulate(DefaultFleet(), 200, 5, 1)
	tab := res.Table()
	for _, name := range []string{"HDD", "SSD", "RAM", "Power", "CPU", "Other"} {
		if !strings.Contains(tab, name) {
			t.Errorf("table missing %s:\n%s", name, tab)
		}
	}
	// HDD row should come first (largest paper ratio).
	lines := strings.Split(tab, "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[1], "HDD") {
		t.Errorf("table ordering wrong:\n%s", tab)
	}
}

func TestRatioEmpty(t *testing.T) {
	var r Result
	if r.Ratio("HDD") != 0 {
		t.Error("empty result ratio not 0")
	}
}
