package reliability

import (
	"fmt"
	"strings"

	"ursa/internal/util"
)

// This file extends the fleet Monte-Carlo to the question the scrubber
// exists to answer: how often does a replication group lose data to LATENT
// sector errors — rot that destroys one replica's copy silently and is
// only discovered (and repaired) when a scrub pass visits it? Whole-disk
// failures are noticed immediately and re-replicated within RepairDays;
// latent errors sit un-noticed until the next scrub, so the scrub interval
// directly sets how long the group runs with silently reduced redundancy.

// ScrubParams parameterizes one latent-error simulation.
type ScrubParams struct {
	// DiskAFR is the whole-disk annual failure rate (noticed immediately).
	DiskAFR float64
	// LSERate is the annual rate of a latent sector error destroying a
	// replica's copy of one group's data (unnoticed until scrubbed).
	LSERate float64
	// ScrubIntervalDays is the scrub period; 0 disables scrubbing (latent
	// errors are never repaired until the disk itself fails and is rebuilt).
	ScrubIntervalDays int
	// RepairDays is how long re-replication of a noticed failure takes.
	RepairDays int
	// Replication is the number of replicas per group.
	Replication int
}

// DefaultScrubParams uses the fleet's HDD failure rate and a latent-error
// rate in the range disk surveys report (roughly one LSE-affected disk per
// dozen disk-years).
func DefaultScrubParams() ScrubParams {
	return ScrubParams{
		DiskAFR:           0.0400,
		LSERate:           0.0800,
		ScrubIntervalDays: 7,
		RepairDays:        1,
		Replication:       3,
	}
}

// SimulateLatent walks groups×years of day-stepped time. Each replica of
// each group independently suffers whole-disk failures (repaired after
// RepairDays) and latent sector errors (repaired at the next scrub tick; a
// disk rebuild also clears them). A day on which no replica holds intact
// data is a data-loss event; the group is then reset whole. Returns the
// fraction of groups that lost data at least once.
func SimulateLatent(p ScrubParams, groups, years int, seed uint64) float64 {
	if p.Replication <= 0 {
		p.Replication = 3
	}
	r := util.NewRand(seed)
	days := years * 365
	pDisk := p.DiskAFR / 365
	pLSE := p.LSERate / 365
	lost := 0

	for g := 0; g < groups; g++ {
		// Per-replica state: day the disk rebuild completes (0 = healthy),
		// and whether a latent error currently corrupts the copy.
		downUntil := make([]int, p.Replication)
		latent := make([]bool, p.Replication)
		// Stagger each group's scrub phase so fleet-wide scrubs are not
		// synchronized — matches a real scrubber's continuous sweep.
		phase := 0
		if p.ScrubIntervalDays > 0 {
			phase = int(r.Int63n(int64(p.ScrubIntervalDays)))
		}
		everLost := false

		for d := 0; d < days; d++ {
			if p.ScrubIntervalDays > 0 && (d+phase)%p.ScrubIntervalDays == 0 {
				for i := range latent {
					if downUntil[i] <= d {
						latent[i] = false // scrub found and repaired the rot
					}
				}
			}
			intact := 0
			for i := 0; i < p.Replication; i++ {
				if downUntil[i] > d {
					continue // rebuilding: holds nothing yet
				}
				if r.Float64() < pDisk {
					// Disk death is noticed at once; the rebuild also
					// clears any latent error on the replaced disk.
					downUntil[i] = d + p.RepairDays
					latent[i] = false
					continue
				}
				if r.Float64() < pLSE {
					latent[i] = true
				}
				if !latent[i] {
					intact++
				}
			}
			if intact == 0 {
				everLost = true
				// Reset the group whole; keep simulating (the metric is
				// "lost at least once", resets avoid double counting).
				for i := range downUntil {
					downUntil[i] = 0
					latent[i] = false
				}
			}
		}
		if everLost {
			lost++
		}
	}
	return float64(lost) / float64(groups)
}

// ScrubSweepRow is one line of a scrub-interval sweep.
type ScrubSweepRow struct {
	IntervalDays int     `json:"intervalDays"` // 0 = never scrub
	LossProb     float64 `json:"lossProb"`     // P(group loses data in the window)
}

// ScrubSweep runs SimulateLatent across scrub intervals, holding everything
// else fixed — the quantitative case for background scrubbing.
func ScrubSweep(p ScrubParams, intervals []int, groups, years int, seed uint64) []ScrubSweepRow {
	rows := make([]ScrubSweepRow, 0, len(intervals))
	for i, iv := range intervals {
		pp := p
		pp.ScrubIntervalDays = iv
		rows = append(rows, ScrubSweepRow{
			IntervalDays: iv,
			LossProb:     SimulateLatent(pp, groups, years, seed+uint64(i)*7919),
		})
	}
	return rows
}

// ScrubTable renders a sweep for humans.
func ScrubTable(rows []ScrubSweepRow, years int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %18s\n", "scrub-interval", fmt.Sprintf("P(loss in %dy)", years))
	for _, row := range rows {
		name := "never"
		if row.IntervalDays > 0 {
			name = fmt.Sprintf("%dd", row.IntervalDays)
		}
		fmt.Fprintf(&b, "%-14s %17.4f%%\n", name, 100*row.LossProb)
	}
	return b.String()
}
