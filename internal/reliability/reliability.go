// Package reliability reproduces Table 1 — the component failure ratios
// from URSA's deployment — with a fleet Monte-Carlo: machines carry
// populations of components with calibrated annual failure rates, and a
// simulated observation window counts failures per class. The calibration
// reflects the deployment's two published facts: HDDs contribute nearly
// 70% of failures (an order of magnitude above SSDs, §5.4), and the
// machine bill of materials (8 HDDs, 2 SSDs per machine, §6).
package reliability

import (
	"fmt"
	"sort"
	"strings"

	"ursa/internal/util"
)

// Component is one failure class of Table 1.
type Component struct {
	Name string
	// PerMachine is how many units each machine carries.
	PerMachine int
	// AFR is the annual failure rate per unit.
	AFR float64
}

// DefaultFleet is the calibrated bill of materials. With these rates the
// expected ratios land on Table 1's: HDD 69.1%, SSD 4.0%, RAM 6.2%,
// Power 3.0%, CPU 2.6%, Other 15.1%.
func DefaultFleet() []Component {
	return []Component{
		{Name: "HDD", PerMachine: 8, AFR: 0.0400},
		{Name: "SSD", PerMachine: 2, AFR: 0.0093},
		{Name: "RAM", PerMachine: 16, AFR: 0.0018},
		{Name: "Power", PerMachine: 2, AFR: 0.0069},
		{Name: "CPU", PerMachine: 2, AFR: 0.0060},
		{Name: "Other", PerMachine: 1, AFR: 0.0699},
	}
}

// PaperRatios is Table 1 as published (percent).
var PaperRatios = map[string]float64{
	"HDD": 69.1, "SSD": 4.0, "RAM": 6.2, "Power": 3.0, "CPU": 2.6, "Other": 15.1,
}

// Result summarizes a simulation.
type Result struct {
	Failures map[string]int64
	Total    int64
}

// Ratio returns the percentage of failures from the named component.
func (r Result) Ratio(name string) float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Failures[name]) / float64(r.Total)
}

// Simulate runs machines×years of fleet time: each component unit fails in
// a year with probability AFR (Bernoulli per unit-year; failed units are
// replaced, so unit-years are independent).
func Simulate(fleet []Component, machines, years int, seed uint64) Result {
	r := util.NewRand(seed)
	res := Result{Failures: make(map[string]int64)}
	for y := 0; y < years; y++ {
		for m := 0; m < machines; m++ {
			for _, c := range fleet {
				for u := 0; u < c.PerMachine; u++ {
					if r.Float64() < c.AFR {
						res.Failures[c.Name]++
						res.Total++
					}
				}
			}
		}
	}
	return res
}

// Table renders the result next to the paper's numbers.
func (r Result) Table() string {
	names := make([]string, 0, len(r.Failures))
	for n := range r.Failures {
		names = append(names, n)
	}
	// Order by paper ratio descending for readability.
	sort.Slice(names, func(i, j int) bool {
		return PaperRatios[names[i]] > PaperRatios[names[j]]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s\n", "component", "measured%", "paper%")
	for _, n := range names {
		fmt.Fprintf(&b, "%-8s %9.1f%% %9.1f%%\n", n, r.Ratio(n), PaperRatios[n])
	}
	return b.String()
}
