package simdisk

import (
	"sync/atomic"

	"ursa/internal/clock"
	"ursa/internal/util"
)

// SSD simulates a flash device: requests occupy one of Parallelism service
// slots; within a slot an op costs access latency plus transfer time.
// Random and sequential costs are identical, which is what lets URSA place
// journals on the same SSDs as primary data and replay them continuously
// without hurting foreground I/O (§3.2).
type SSD struct {
	model  SSDModel
	clk    clock.Clock
	store  *memStore
	slots  chan struct{}
	depth  atomic.Int32
	stats  stats
	closed atomic.Bool
}

// NewSSD creates a simulated SSD with the given model on clk.
func NewSSD(model SSDModel, clk clock.Clock) *SSD {
	if model.Parallelism <= 0 {
		model.Parallelism = 1
	}
	return &SSD{
		model: model,
		clk:   clk,
		store: newMemStore(model.Capacity),
		slots: make(chan struct{}, model.Parallelism),
	}
}

// ReadAt implements Disk.
func (d *SSD) ReadAt(p []byte, off int64) error {
	return d.do(p, off, false)
}

// WriteAt implements Disk.
func (d *SSD) WriteAt(p []byte, off int64) error {
	return d.do(p, off, true)
}

func (d *SSD) do(p []byte, off int64, write bool) error {
	if d.closed.Load() {
		return util.ErrClosed
	}
	d.depth.Add(1)
	defer d.depth.Add(-1)

	d.slots <- struct{}{} // acquire a flash channel
	defer func() { <-d.slots }()

	var service = d.model.ReadLatency
	bw := d.model.ReadBandwidth
	if write {
		service = d.model.WriteLatency
		bw = d.model.WriteBandwidth
	}
	service += transfer(len(p), bw)
	d.clk.Sleep(service)

	var err error
	if write {
		err = d.store.writeAt(p, off)
	} else {
		err = d.store.readAt(p, off)
	}
	if err != nil {
		return err
	}
	d.stats.record(write, len(p), service)
	return nil
}

// WritevAt implements VectoredWriter: the whole batch costs one access
// latency plus the transfer time of its total length, like a single large
// write — which is exactly the economy the journal's scatter/gather group
// commit is after.
func (d *SSD) WritevAt(bufs [][]byte, off int64) error {
	if d.closed.Load() {
		return util.ErrClosed
	}
	total := vecLen(bufs)
	d.depth.Add(1)
	defer d.depth.Add(-1)

	d.slots <- struct{}{} // acquire a flash channel
	defer func() { <-d.slots }()

	service := d.model.WriteLatency + transfer(total, d.model.WriteBandwidth)
	d.clk.Sleep(service)

	if err := d.store.writevAt(bufs, off); err != nil {
		return err
	}
	d.stats.record(true, total, service)
	return nil
}

// Size implements Disk.
func (d *SSD) Size() int64 { return d.model.Capacity }

// QueueDepth implements Disk.
func (d *SSD) QueueDepth() int { return int(d.depth.Load()) }

// Stats implements Disk.
func (d *SSD) Stats() Stats { return d.stats.snapshot() }

// Close implements Disk.
func (d *SSD) Close() error {
	d.closed.Store(true)
	return nil
}

// UsedBytes reports allocated backing pages (test/diagnostic aid).
func (d *SSD) UsedBytes() int64 { return d.store.usedBytes() }
