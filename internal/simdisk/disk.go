package simdisk

import (
	"sync/atomic"
	"time"
)

// Disk is the device abstraction every URSA storage component builds on.
// Reads and writes are synchronous; parallelism comes from issuing them
// from multiple goroutines (the simulated equivalent of libaio queue depth).
type Disk interface {
	// ReadAt reads len(p) bytes at byte offset off.
	ReadAt(p []byte, off int64) error
	// WriteAt writes p at byte offset off.
	WriteAt(p []byte, off int64) error
	// Size returns the device capacity in bytes.
	Size() int64
	// QueueDepth returns the number of in-flight plus queued requests;
	// the HDD journal replayer uses it to detect an idle disk.
	QueueDepth() int
	// Stats returns a snapshot of operation counters.
	Stats() Stats
	// Close releases the device. Further I/O fails.
	Close() error
}

// VectoredWriter is the optional scatter/gather extension of Disk: a
// WritevAt writes the concatenation of bufs at off as one device
// operation. The journal group-commit flush uses it to write a whole
// batch straight from the callers' leased payload buffers instead of
// coalescing them into a contiguous copy first.
type VectoredWriter interface {
	WritevAt(bufs [][]byte, off int64) error
}

// WritevAt writes bufs at off through d's vectored path when it has one,
// falling back to one WriteAt per buffer (correct, but one device op each).
func WritevAt(d Disk, bufs [][]byte, off int64) error {
	if vw, ok := d.(VectoredWriter); ok {
		return vw.WritevAt(bufs, off)
	}
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		if err := d.WriteAt(b, off); err != nil {
			return err
		}
		off += int64(len(b))
	}
	return nil
}

func vecLen(bufs [][]byte) int {
	n := 0
	for _, b := range bufs {
		n += len(b)
	}
	return n
}

// Stats counts completed operations and simulated mechanical work.
type Stats struct {
	Reads      int64
	Writes     int64
	BytesRead  int64
	BytesWrite int64
	Seeks      int64         // HDD only: non-sequential head movements
	BusyTime   time.Duration // total device service time accumulated
}

// stats is the atomic backing for Stats snapshots.
type stats struct {
	reads      atomic.Int64
	writes     atomic.Int64
	bytesRead  atomic.Int64
	bytesWrite atomic.Int64
	seeks      atomic.Int64
	busyNanos  atomic.Int64
}

func (s *stats) snapshot() Stats {
	return Stats{
		Reads:      s.reads.Load(),
		Writes:     s.writes.Load(),
		BytesRead:  s.bytesRead.Load(),
		BytesWrite: s.bytesWrite.Load(),
		Seeks:      s.seeks.Load(),
		BusyTime:   time.Duration(s.busyNanos.Load()),
	}
}

func (s *stats) record(write bool, n int, service time.Duration) {
	if write {
		s.writes.Add(1)
		s.bytesWrite.Add(int64(n))
	} else {
		s.reads.Add(1)
		s.bytesRead.Add(int64(n))
	}
	s.busyNanos.Add(int64(service))
}
