package simdisk

import (
	"time"

	"ursa/internal/util"
)

// SSDModel parameterizes the flash device simulation.
type SSDModel struct {
	// Capacity in bytes.
	Capacity int64
	// Parallelism is the number of independent service slots (channels ×
	// planes); requests beyond it queue.
	Parallelism int
	// ReadLatency / WriteLatency are the fixed per-op access costs.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// ReadBandwidth / WriteBandwidth are per-slot streaming rates in
	// bytes/second, applied to the transfer portion of each op.
	ReadBandwidth  float64
	WriteBandwidth float64
}

// HDDModel parameterizes the mechanical device simulation.
type HDDModel struct {
	// Capacity in bytes.
	Capacity int64
	// SeekMax is the full-stroke seek time; actual seeks scale with the
	// fraction of the capacity the head travels, plus SeekSettle.
	SeekMax    time.Duration
	SeekSettle time.Duration
	// RPM determines rotational delay (half a rotation on average after a
	// seek; modeled deterministically as half a rotation).
	RPM int
	// Bandwidth is the media transfer rate in bytes/second.
	Bandwidth float64
	// TrackSkip is the byte distance under which an access still counts
	// as sequential (track buffer / read-ahead window).
	TrackSkip int64
}

// DefaultSSD models a PCIe NVMe device in the Intel 750 class used by the
// paper: ~400 K 4 KB random read IOPS, ~230 K write IOPS, GB/s streaming.
func DefaultSSD() SSDModel {
	return SSDModel{
		Capacity:       400 * util.GiB,
		Parallelism:    32,
		ReadLatency:    80 * time.Microsecond,
		WriteLatency:   140 * time.Microsecond,
		ReadBandwidth:  2.2e9,
		WriteBandwidth: 1.2e9,
	}
}

// DefaultSATASSD models a SATA-class SSD (the paper distinguishes SATA vs
// PCIe SSDs when choosing processes per device, §5.3).
func DefaultSATASSD() SSDModel {
	return SSDModel{
		Capacity:       480 * util.GiB,
		Parallelism:    16,
		ReadLatency:    110 * time.Microsecond,
		WriteLatency:   180 * time.Microsecond,
		ReadBandwidth:  520e6,
		WriteBandwidth: 480e6,
	}
}

// DefaultHDD models a 7200 RPM 1 TB SATA drive: ~8 ms average seek,
// 4.17 ms average rotational delay, ~150 MB/s media rate. Random 4 KB IOPS
// land near 80–120, sequential streaming near the media rate — the 2–3
// orders-of-magnitude gap the paper's journals exist to bridge.
func DefaultHDD() HDDModel {
	return HDDModel{
		Capacity:   1 * util.TiB,
		SeekMax:    16 * time.Millisecond,
		SeekSettle: 1 * time.Millisecond,
		RPM:        7200,
		Bandwidth:  150e6,
		TrackSkip:  512 * util.KiB,
	}
}

// rotationHalf returns half a platter rotation, the average rotational
// delay after a seek.
func (m HDDModel) rotationHalf() time.Duration {
	if m.RPM <= 0 {
		return 0
	}
	full := time.Duration(float64(time.Minute) / float64(m.RPM))
	return full / 2
}

// transfer returns the streaming time for n bytes at rate bw.
func transfer(n int, bw float64) time.Duration {
	if bw <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bw * float64(time.Second))
}
