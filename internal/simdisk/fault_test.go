package simdisk

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ursa/internal/clock"
	"ursa/internal/metrics"
	"ursa/internal/util"
)

func TestFaultInjectorPassthrough(t *testing.T) {
	d := NewFaultInjector(fastSSD(), clock.TestClock())
	defer d.Close()
	data := make([]byte, 4*util.KiB)
	util.NewRand(11).Fill(data)
	if err := d.WriteAt(data, 8192); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("passthrough round trip mismatch")
	}
	if st := d.FaultStats(); st != (FaultStats{}) {
		t.Errorf("faults delivered with nothing armed: %+v", st)
	}
	if st := d.Stats(); st.Reads != 1 || st.Writes != 1 {
		t.Errorf("inner stats not visible: %+v", st)
	}
}

func TestFaultInjectorWriteFaultsScopedToWrites(t *testing.T) {
	d := NewFaultInjector(fastSSD(), clock.TestClock())
	defer d.Close()
	buf := make([]byte, 512)
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	d.FailWrites(nil)
	if err := d.WriteAt(buf, 0); !errors.Is(err, ErrFault) {
		t.Errorf("write under fault: %v", err)
	}
	if err := d.ReadAt(buf, 0); err != nil {
		t.Errorf("read must survive a write fault: %v", err)
	}
	st := d.FaultStats()
	if st.WritesFailed != 1 || st.ReadsFailed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFaultInjectorRangeScoped(t *testing.T) {
	d := NewFaultInjector(fastSSD(), clock.TestClock())
	defer d.Close()
	buf := make([]byte, 4096)
	d.FailReadRange(nil, util.MiB, 2*util.MiB)
	if err := d.ReadAt(buf, 0); err != nil {
		t.Errorf("read outside faulted range: %v", err)
	}
	if err := d.ReadAt(buf, util.MiB+512); !errors.Is(err, ErrFault) {
		t.Errorf("read inside faulted range: %v", err)
	}
	// An op straddling the range boundary intersects it and must fail.
	if err := d.ReadAt(buf, util.MiB-100); !errors.Is(err, ErrFault) {
		t.Errorf("read straddling range start: %v", err)
	}
	if err := d.ReadAt(buf, 2*util.MiB); err != nil {
		t.Errorf("read at exclusive range end: %v", err)
	}
	// Faults accumulate: arming a second range keeps the first armed.
	d.FailReadRange(nil, 4*util.MiB, 5*util.MiB)
	if err := d.ReadAt(buf, util.MiB+512); !errors.Is(err, ErrFault) {
		t.Errorf("first range forgotten after second arm: %v", err)
	}
	if err := d.ReadAt(buf, 4*util.MiB); !errors.Is(err, ErrFault) {
		t.Errorf("second range not armed: %v", err)
	}
}

func TestFaultInjectorCustomError(t *testing.T) {
	d := NewFaultInjector(fastSSD(), clock.TestClock())
	defer d.Close()
	boom := errors.New("boom")
	d.FailWriteRange(boom, 0, 1<<62)
	err := d.WriteAt(make([]byte, 512), 0)
	if !errors.Is(err, boom) {
		t.Errorf("custom error not delivered: %v", err)
	}
}

func TestFaultInjectorKillAndHeal(t *testing.T) {
	d := NewFaultInjector(fastSSD(), clock.TestClock())
	defer d.Close()
	buf := make([]byte, 512)
	d.Kill()
	if err := d.WriteAt(buf, 0); !errors.Is(err, ErrFault) {
		t.Errorf("write on dead disk: %v", err)
	}
	if err := d.ReadAt(buf, 0); !errors.Is(err, ErrFault) {
		t.Errorf("read on dead disk: %v", err)
	}
	d.Heal()
	if err := d.WriteAt(buf, 0); err != nil {
		t.Errorf("write after heal: %v", err)
	}
	if err := d.ReadAt(buf, 0); err != nil {
		t.Errorf("read after heal: %v", err)
	}
	st := d.FaultStats()
	if st.WritesFailed != 1 || st.ReadsFailed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFaultInjectorHealClearsAllFaults(t *testing.T) {
	d := NewFaultInjector(fastSSD(), clock.TestClock())
	defer d.Close()
	d.FailReads(nil)
	d.FailWrites(nil)
	d.Stall(time.Second)
	d.SlowBy(100)
	d.Heal()
	buf := make([]byte, 512)
	start := time.Now()
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("latency faults survived heal: %v", elapsed)
	}
}

func TestFaultInjectorStall(t *testing.T) {
	m := DefaultSSD()
	m.Capacity = util.MiB
	d := NewFaultInjector(NewSSD(m, clock.Realtime), clock.Realtime)
	defer d.Close()
	d.Stall(20 * time.Millisecond)
	start := time.Now()
	if err := d.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("stalled write returned in %v", elapsed)
	}
	if st := d.FaultStats(); st.DelayedOps != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFaultInjectorSlowBy(t *testing.T) {
	m := SSDModel{
		Capacity:     util.MiB,
		Parallelism:  1,
		ReadLatency:  time.Millisecond,
		WriteLatency: 5 * time.Millisecond,
	}
	d := NewFaultInjector(NewSSD(m, clock.Realtime), clock.Realtime)
	defer d.Close()
	d.SlowBy(4)
	start := time.Now()
	if err := d.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	// 5ms device time ×4 ≈ 20ms total; anything past 2× base shows the
	// multiplier took effect without pinning exact timing.
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("slowed write returned in %v", elapsed)
	}
	if st := d.FaultStats(); st.DelayedOps != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFaultInjectorMetricsCounter(t *testing.T) {
	reg := metrics.NewRegistry()
	d := NewFaultInjector(fastSSD(), clock.TestClock())
	defer d.Close()
	d.SetMetrics(reg)
	d.Kill()
	d.Heal()
	d.FailWrites(nil)
	d.Stall(time.Millisecond)
	if got := reg.Counter(MetricFaultsInjected).Load(); got != 3 {
		t.Errorf("%s = %d, want 3", MetricFaultsInjected, got)
	}
}

func TestCorruptRangeOneShot(t *testing.T) {
	reg := metrics.NewRegistry()
	d := NewFaultInjector(fastSSD(), clock.TestClock())
	defer d.Close()
	d.SetMetrics(reg)
	data := make([]byte, 4*util.KiB)
	util.NewRand(21).Fill(data)
	if err := d.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	d.CorruptRange(512, 1024, false)

	// The read succeeds — silent corruption — with only [512,1024) flipped.
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatalf("corrupt read must succeed: %v", err)
	}
	if bytes.Equal(got[512:1024], data[512:1024]) {
		t.Error("armed range came back clean")
	}
	if !bytes.Equal(got[:512], data[:512]) || !bytes.Equal(got[1024:], data[1024:]) {
		t.Error("corruption leaked outside the armed range")
	}

	// One shot: the second read is clean again.
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("one-shot corruption did not disarm after first read")
	}
	if st := d.FaultStats(); st.ReadsCorrupted != 1 {
		t.Errorf("ReadsCorrupted = %d, want 1", st.ReadsCorrupted)
	}
	if got := reg.Counter(MetricCorruptionsInjected).Load(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricCorruptionsInjected, got)
	}
	if got := reg.Counter(MetricFaultsInjected).Load(); got != 0 {
		t.Errorf("corruption arming leaked into %s", MetricFaultsInjected)
	}
}

func TestCorruptRangePersistentUntilHeal(t *testing.T) {
	d := NewFaultInjector(fastSSD(), clock.TestClock())
	defer d.Close()
	data := make([]byte, 2*util.KiB)
	util.NewRand(22).Fill(data)
	if err := d.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	d.CorruptRange(4096, 4096+512, true)
	got := make([]byte, len(data))
	for i := 0; i < 3; i++ {
		if err := d.ReadAt(got, 4096); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got[:512], data[:512]) {
			t.Fatalf("read %d: persistent rot came back clean", i)
		}
		if !bytes.Equal(got[512:], data[512:]) {
			t.Fatalf("read %d: corruption outside armed range", i)
		}
	}
	if st := d.FaultStats(); st.ReadsCorrupted != 3 {
		t.Errorf("ReadsCorrupted = %d, want 3", st.ReadsCorrupted)
	}
	d.Heal()
	if err := d.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("Heal did not clear the corruption fault")
	}
}
