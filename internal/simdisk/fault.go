package simdisk

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ursa/internal/clock"
	"ursa/internal/metrics"
)

// ErrFault is the sentinel every injected I/O error wraps — the simulated
// EIO. Recovery code matches it with errors.Is.
var ErrFault = errors.New("simdisk: injected I/O fault")

// MetricFaultsInjected counts fault armings (Kill/Fail*/Stall/SlowBy calls)
// on injectors sharing a metrics registry — the "how many things broke"
// axis of the recovery figure.
const MetricFaultsInjected = "disk-faults-injected"

// MetricCorruptionsInjected counts CorruptRange armings — the silent
// bit-rot axis, kept apart from disk-faults-injected because corruption is
// the one fault class the device does NOT report: reads succeed with wrong
// payloads and only integrity checks above the disk can notice.
const MetricCorruptionsInjected = "disk-corruptions-injected"

// rangeFault is one armed error fault over the byte range [lo, hi).
type rangeFault struct {
	lo, hi int64
	err    error
}

func (f rangeFault) hits(off int64, n int) bool {
	return off < f.hi && f.lo < off+int64(n)
}

// FaultInjector wraps a Disk and injects faults armed at runtime: error
// faults on reads or writes (whole-disk or range-scoped), latency faults
// (a fixed per-op stall or a service-time multiplier), and full-disk
// death. With nothing armed it is a pass-through; every component can run
// on one permanently, and the chaos harness arms and heals faults while
// the workload runs. All arm/heal methods are safe against concurrent I/O.
type FaultInjector struct {
	inner Disk
	clk   clock.Clock

	mu            sync.Mutex
	dead          bool
	readFaults    []rangeFault
	writeFaults   []rangeFault
	corruptFaults []corruptFault
	stall         time.Duration
	slowBy        float64 // service-time multiplier; 0 or 1 = off

	reg *metrics.Registry

	readFailed     atomic.Int64
	writeFailed    atomic.Int64
	delayedOps     atomic.Int64
	readsCorrupted atomic.Int64
}

// corruptFault is one armed silent-corruption fault: reads intersecting
// [lo, hi) succeed but every byte inside the range comes back flipped.
type corruptFault struct {
	lo, hi     int64
	persistent bool
}

// NewFaultInjector wraps d. The clock drives injected latency.
func NewFaultInjector(d Disk, clk clock.Clock) *FaultInjector {
	if clk == nil {
		clk = clock.Realtime
	}
	return &FaultInjector{inner: d, clk: clk}
}

// SetMetrics routes the disk-faults-injected counter to reg (typically the
// cluster-wide registry). Call before arming faults.
func (f *FaultInjector) SetMetrics(reg *metrics.Registry) {
	f.mu.Lock()
	f.reg = reg
	f.mu.Unlock()
}

// Inner returns the wrapped device.
func (f *FaultInjector) Inner() Disk { return f.inner }

// armed bumps the injected-faults counter; caller holds f.mu.
func (f *FaultInjector) armedLocked() {
	if f.reg != nil {
		f.reg.Counter(MetricFaultsInjected).Inc()
	}
}

// Kill arms full-disk death: every subsequent read and write fails.
func (f *FaultInjector) Kill() {
	f.mu.Lock()
	f.dead = true
	f.armedLocked()
	f.mu.Unlock()
}

// FailReads arms an error fault on every read; err nil means ErrFault.
func (f *FaultInjector) FailReads(err error) {
	f.FailReadRange(err, 0, math.MaxInt64)
}

// FailWrites arms an error fault on every write; err nil means ErrFault.
func (f *FaultInjector) FailWrites(err error) {
	f.FailWriteRange(err, 0, math.MaxInt64)
}

// FailReadRange arms an error fault on reads touching [lo, hi); err nil
// means ErrFault. Faults accumulate until Heal.
func (f *FaultInjector) FailReadRange(err error, lo, hi int64) {
	if err == nil {
		err = ErrFault
	}
	f.mu.Lock()
	f.readFaults = append(f.readFaults, rangeFault{lo, hi, err})
	f.armedLocked()
	f.mu.Unlock()
}

// FailWriteRange arms an error fault on writes touching [lo, hi); err nil
// means ErrFault. Faults accumulate until Heal.
func (f *FaultInjector) FailWriteRange(err error, lo, hi int64) {
	if err == nil {
		err = ErrFault
	}
	f.mu.Lock()
	f.writeFaults = append(f.writeFaults, rangeFault{lo, hi, err})
	f.armedLocked()
	f.mu.Unlock()
}

// Stall arms a fixed extra delay added to every operation's service time —
// a degraded-but-working device ("limping disk").
func (f *FaultInjector) Stall(d time.Duration) {
	f.mu.Lock()
	f.stall = d
	f.armedLocked()
	f.mu.Unlock()
}

// SlowBy arms a service-time multiplier: every operation takes mult× its
// measured device time (mult <= 1 disarms).
func (f *FaultInjector) SlowBy(mult float64) {
	f.mu.Lock()
	f.slowBy = mult
	f.armedLocked()
	f.mu.Unlock()
}

// CorruptRange arms silent bit-rot over the byte range [lo, hi): reads
// touching it SUCCEED, but every byte inside the range is flipped on the
// way back — the latent-sector-error model, where the stored data (or the
// head reading it) is wrong and nothing errors until somebody checks. One
// shot (persistent=false) delivers wrong data exactly once and disarms;
// persistent rot stays until Heal. Writes pass through untouched, so the
// only ways back to clean reads are Heal or re-replicating elsewhere.
func (f *FaultInjector) CorruptRange(lo, hi int64, persistent bool) {
	f.mu.Lock()
	f.corruptFaults = append(f.corruptFaults, corruptFault{lo, hi, persistent})
	if f.reg != nil {
		f.reg.Counter(MetricCorruptionsInjected).Inc()
	}
	f.mu.Unlock()
}

// corruptRead applies armed corruption to a successful read's buffer,
// dropping one-shot faults once they have delivered wrong data.
func (f *FaultInjector) corruptRead(p []byte, off int64) {
	f.mu.Lock()
	hit := false
	kept := f.corruptFaults[:0]
	for _, cf := range f.corruptFaults {
		lo, hi := cf.lo-off, cf.hi-off
		if lo < int64(len(p)) && hi > 0 {
			if lo < 0 {
				lo = 0
			}
			if hi > int64(len(p)) {
				hi = int64(len(p))
			}
			for i := lo; i < hi; i++ {
				p[i] ^= 0xa5
			}
			hit = true
			if !cf.persistent {
				continue
			}
		}
		kept = append(kept, cf)
	}
	f.corruptFaults = kept
	f.mu.Unlock()
	if hit {
		f.readsCorrupted.Add(1)
	}
}

// Heal clears every armed fault: the device works normally again.
func (f *FaultInjector) Heal() {
	f.mu.Lock()
	f.dead = false
	f.readFaults = nil
	f.writeFaults = nil
	f.corruptFaults = nil
	f.stall = 0
	f.slowBy = 0
	f.mu.Unlock()
}

// FaultStats counts faults actually delivered to callers.
type FaultStats struct {
	ReadsFailed    int64
	WritesFailed   int64
	DelayedOps     int64
	ReadsCorrupted int64
}

// FaultStats returns a snapshot of delivered faults.
func (f *FaultInjector) FaultStats() FaultStats {
	return FaultStats{
		ReadsFailed:    f.readFailed.Load(),
		WritesFailed:   f.writeFailed.Load(),
		DelayedOps:     f.delayedOps.Load(),
		ReadsCorrupted: f.readsCorrupted.Load(),
	}
}

// check resolves the fate of one op under the currently armed faults: an
// error to deliver, plus any extra stall and service multiplier.
func (f *FaultInjector) check(off int64, n int, write bool) (error, time.Duration, float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return fmt.Errorf("simdisk: disk dead: %w", ErrFault), 0, 0
	}
	faults := f.readFaults
	if write {
		faults = f.writeFaults
	}
	for _, rf := range faults {
		if rf.hits(off, n) {
			return rf.err, 0, 0
		}
	}
	return nil, f.stall, f.slowBy
}

func (f *FaultInjector) do(p []byte, off int64, write bool) error {
	ferr, stall, slow := f.check(off, len(p), write)
	if ferr != nil {
		if write {
			f.writeFailed.Add(1)
		} else {
			f.readFailed.Add(1)
		}
		return ferr
	}
	if stall > 0 {
		f.delayedOps.Add(1)
		f.clk.Sleep(stall)
	}
	t0 := f.clk.Now()
	var err error
	if write {
		err = f.inner.WriteAt(p, off)
	} else {
		err = f.inner.ReadAt(p, off)
		if err == nil {
			f.corruptRead(p, off)
		}
	}
	if slow > 1 {
		if stall <= 0 {
			f.delayedOps.Add(1)
		}
		f.clk.Sleep(time.Duration(float64(f.clk.Now().Sub(t0)) * (slow - 1)))
	}
	return err
}

// ReadAt implements Disk.
func (f *FaultInjector) ReadAt(p []byte, off int64) error {
	return f.do(p, off, false)
}

// WriteAt implements Disk.
func (f *FaultInjector) WriteAt(p []byte, off int64) error {
	return f.do(p, off, true)
}

// WritevAt implements VectoredWriter: the batch is one operation for fault
// purposes — armed write faults intersecting any part of its total range
// fail the whole batch, and stall/slow penalties apply once.
func (f *FaultInjector) WritevAt(bufs [][]byte, off int64) error {
	ferr, stall, slow := f.check(off, vecLen(bufs), true)
	if ferr != nil {
		f.writeFailed.Add(1)
		return ferr
	}
	if stall > 0 {
		f.delayedOps.Add(1)
		f.clk.Sleep(stall)
	}
	t0 := f.clk.Now()
	err := WritevAt(f.inner, bufs, off)
	if slow > 1 {
		if stall <= 0 {
			f.delayedOps.Add(1)
		}
		f.clk.Sleep(time.Duration(float64(f.clk.Now().Sub(t0)) * (slow - 1)))
	}
	return err
}

// Size implements Disk.
func (f *FaultInjector) Size() int64 { return f.inner.Size() }

// QueueDepth implements Disk.
func (f *FaultInjector) QueueDepth() int { return f.inner.QueueDepth() }

// Stats implements Disk.
func (f *FaultInjector) Stats() Stats { return f.inner.Stats() }

// Close implements Disk.
func (f *FaultInjector) Close() error { return f.inner.Close() }

var _ Disk = (*FaultInjector)(nil)
