package simdisk

import (
	"sort"
	"sync"
	"time"

	"ursa/internal/clock"
	"ursa/internal/util"
)

// HDD simulates a mechanical drive: a single service loop owns the head and
// dispatches queued requests with the elevator (SCAN) algorithm — the paper
// notes that one single-threaded process with elevator scheduling saturates
// an HDD, and that extra threads only confuse it (§5.3). Sequential access
// at the head position skips the seek+rotation cost entirely, which is why
// journal appends and large replica copies run at media speed while random
// small writes crawl.
type HDD struct {
	model HDDModel
	clk   clock.Clock
	store *memStore

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*hddReq // kept sorted by offset
	depth   int
	closed  bool

	headPos   int64
	ascending bool

	stats stats
	done  chan struct{}
}

type hddReq struct {
	off   int64
	buf   []byte
	bufs  [][]byte // non-nil: vectored write; buf is unused
	write bool
	errc  chan error
}

func (r *hddReq) length() int {
	if r.bufs != nil {
		return vecLen(r.bufs)
	}
	return len(r.buf)
}

// NewHDD creates a simulated HDD and starts its service loop.
func NewHDD(model HDDModel, clk clock.Clock) *HDD {
	d := &HDD{
		model:     model,
		clk:       clk,
		store:     newMemStore(model.Capacity),
		ascending: true,
		done:      make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)
	go d.serve()
	return d
}

// ReadAt implements Disk.
func (d *HDD) ReadAt(p []byte, off int64) error {
	return d.submit(p, off, false)
}

// WriteAt implements Disk.
func (d *HDD) WriteAt(p []byte, off int64) error {
	return d.submit(p, off, true)
}

// WritevAt implements VectoredWriter: the batch is queued as one request,
// costing one elevator pass plus the transfer time of its total length —
// the single sequential write a real group commit issues with pwritev.
func (d *HDD) WritevAt(bufs [][]byte, off int64) error {
	if err := d.store.check(off, vecLen(bufs)); err != nil {
		return err
	}
	return d.enqueue(&hddReq{off: off, bufs: bufs, write: true, errc: make(chan error, 1)})
}

func (d *HDD) submit(p []byte, off int64, write bool) error {
	if err := d.store.check(off, len(p)); err != nil {
		return err
	}
	return d.enqueue(&hddReq{off: off, buf: p, write: write, errc: make(chan error, 1)})
}

func (d *HDD) enqueue(req *hddReq) error {
	off := req.off
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return util.ErrClosed
	}
	// Insert keeping pending sorted by offset so the elevator scan is a
	// binary search away.
	i := sort.Search(len(d.pending), func(i int) bool { return d.pending[i].off >= off })
	d.pending = append(d.pending, nil)
	copy(d.pending[i+1:], d.pending[i:])
	d.pending[i] = req
	d.depth++
	d.cond.Signal()
	d.mu.Unlock()

	return <-req.errc
}

// serve is the single-threaded device loop.
func (d *HDD) serve() {
	for {
		d.mu.Lock()
		for len(d.pending) == 0 && !d.closed {
			d.cond.Wait()
		}
		if d.closed {
			for _, r := range d.pending {
				r.errc <- util.ErrClosed
			}
			d.pending = nil
			d.mu.Unlock()
			close(d.done)
			return
		}
		req := d.pickLocked()
		d.mu.Unlock()

		service := d.serviceTime(req)
		d.clk.Sleep(service)

		var err error
		switch {
		case req.bufs != nil:
			err = d.store.writevAt(req.bufs, req.off)
		case req.write:
			err = d.store.writeAt(req.buf, req.off)
		default:
			err = d.store.readAt(req.buf, req.off)
		}
		if err == nil {
			d.stats.record(req.write, req.length(), service)
		}
		d.headPos = req.off + int64(req.length())

		d.mu.Lock()
		d.depth--
		d.mu.Unlock()
		req.errc <- err
	}
}

// pickLocked removes and returns the next request per SCAN: continue in the
// current direction from the head position; reverse at the end of the queue.
func (d *HDD) pickLocked() *hddReq {
	i := sort.Search(len(d.pending), func(i int) bool {
		return d.pending[i].off >= d.headPos
	})
	var idx int
	if d.ascending {
		if i < len(d.pending) {
			idx = i
		} else {
			d.ascending = false
			idx = len(d.pending) - 1
		}
	} else {
		if i > 0 {
			idx = i - 1
		} else {
			d.ascending = true
			idx = 0
		}
	}
	req := d.pending[idx]
	d.pending = append(d.pending[:idx], d.pending[idx+1:]...)
	return req
}

// serviceTime computes the mechanical cost of one request.
func (d *HDD) serviceTime(req *hddReq) time.Duration {
	dist := req.off - d.headPos
	if dist < 0 {
		dist = -dist
	}
	t := transfer(req.length(), d.model.Bandwidth)
	if dist > d.model.TrackSkip {
		// Seek: settle + stroke-proportional travel + half a rotation.
		frac := float64(dist) / float64(d.model.Capacity)
		t += d.model.SeekSettle +
			time.Duration(frac*float64(d.model.SeekMax)) +
			d.model.rotationHalf()
		d.stats.seeks.Add(1)
	}
	return t
}

// Size implements Disk.
func (d *HDD) Size() int64 { return d.model.Capacity }

// QueueDepth implements Disk.
func (d *HDD) QueueDepth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.depth
}

// Stats implements Disk.
func (d *HDD) Stats() Stats { return d.stats.snapshot() }

// Close implements Disk; queued requests fail with ErrClosed.
func (d *HDD) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	<-d.done
	return nil
}

// UsedBytes reports allocated backing pages (test/diagnostic aid).
func (d *HDD) UsedBytes() int64 { return d.store.usedBytes() }
