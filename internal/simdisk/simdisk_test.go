package simdisk

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ursa/internal/clock"
	"ursa/internal/util"
)

// fastSSD returns a small SSD on a test clock.
func fastSSD() *SSD {
	m := DefaultSSD()
	m.Capacity = 64 * util.MiB
	return NewSSD(m, clock.TestClock())
}

func fastHDD() *HDD {
	m := DefaultHDD()
	m.Capacity = 256 * util.MiB
	return NewHDD(m, clock.TestClock())
}

func TestMemStoreReadWrite(t *testing.T) {
	s := newMemStore(1 * util.MiB)
	data := []byte("the quick brown fox")
	if err := s.writeAt(data, 1000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.readAt(got, 1000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read back %q", got)
	}
}

func TestMemStoreHolesReadZero(t *testing.T) {
	s := newMemStore(1 * util.MiB)
	if err := s.writeAt([]byte{0xff}, 500000); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = 0xaa // ensure readAt clears holes
	}
	if err := s.readAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("hole byte %d = %#x", i, b)
		}
	}
}

func TestMemStoreCrossPageBoundary(t *testing.T) {
	s := newMemStore(1 * util.MiB)
	data := make([]byte, 3*pageSize)
	util.NewRand(1).Fill(data)
	off := int64(pageSize - 100) // straddles several pages
	if err := s.writeAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.readAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-page write/read mismatch")
	}
}

func TestMemStoreBounds(t *testing.T) {
	s := newMemStore(1024)
	if err := s.writeAt([]byte{1}, 1024); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("write past end: %v", err)
	}
	if err := s.readAt(make([]byte, 2), 1023); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("read past end: %v", err)
	}
	if err := s.writeAt([]byte{1}, -1); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("negative offset: %v", err)
	}
}

func TestMemStoreRandomizedProperty(t *testing.T) {
	// Model-based check: memStore must behave exactly like a flat []byte.
	s := newMemStore(256 * util.KiB)
	model := make([]byte, 256*util.KiB)
	r := util.NewRand(42)
	for i := 0; i < 500; i++ {
		off := r.Int63n(250 * util.KiB)
		n := r.Intn(4096) + 1
		if r.Float64() < 0.6 {
			buf := make([]byte, n)
			r.Fill(buf)
			if err := s.writeAt(buf, off); err != nil {
				t.Fatal(err)
			}
			copy(model[off:], buf)
		} else {
			got := make([]byte, n)
			if err := s.readAt(got, off); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, model[off:off+int64(n)]) {
				t.Fatalf("divergence at op %d off=%d n=%d", i, off, n)
			}
		}
	}
}

func TestSSDReadWriteRoundTrip(t *testing.T) {
	d := fastSSD()
	defer d.Close()
	data := make([]byte, 4*util.KiB)
	util.NewRand(2).Fill(data)
	if err := d.WriteAt(data, 8192); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("SSD round trip mismatch")
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesRead != 4*util.KiB || st.BytesWrite != 4*util.KiB {
		t.Errorf("byte stats = %+v", st)
	}
}

func TestSSDClosedFails(t *testing.T) {
	d := fastSSD()
	d.Close()
	if err := d.WriteAt([]byte{1}, 0); !errors.Is(err, util.ErrClosed) {
		t.Errorf("write after close: %v", err)
	}
}

func TestSSDParallelism(t *testing.T) {
	// With parallelism P and per-op latency L, N ops from N goroutines
	// should take ≈ N/P * L, not N*L.
	m := SSDModel{
		Capacity:     util.MiB,
		Parallelism:  8,
		ReadLatency:  2 * time.Millisecond,
		WriteLatency: 2 * time.Millisecond,
	}
	d := NewSSD(m, clock.Realtime)
	defer d.Close()
	const n = 32
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 512)
			if err := d.WriteAt(buf, int64(i)*512); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Serial would be 64ms; parallel ideal is 8ms. Accept < 32ms.
	if elapsed > 32*time.Millisecond {
		t.Errorf("32 ops with P=8 L=2ms took %v; parallelism not working", elapsed)
	}
}

func TestHDDRoundTrip(t *testing.T) {
	d := fastHDD()
	defer d.Close()
	data := make([]byte, 64*util.KiB)
	util.NewRand(3).Fill(data)
	if err := d.WriteAt(data, util.MiB); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.ReadAt(got, util.MiB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("HDD round trip mismatch")
	}
}

func TestHDDSequentialSkipsSeek(t *testing.T) {
	d := fastHDD()
	defer d.Close()
	buf := make([]byte, 4*util.KiB)
	// First write seeks; subsequent sequential writes must not.
	var off int64
	for i := 0; i < 10; i++ {
		if err := d.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
		off += int64(len(buf))
	}
	st := d.Stats()
	if st.Seeks > 1 {
		t.Errorf("sequential writes caused %d seeks", st.Seeks)
	}
}

func TestHDDRandomSeeks(t *testing.T) {
	d := fastHDD()
	defer d.Close()
	buf := make([]byte, 4*util.KiB)
	r := util.NewRand(4)
	for i := 0; i < 20; i++ {
		off := util.AlignDown(r.Int63n(200*util.MiB), 512)
		if err := d.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Seeks < 15 {
		t.Errorf("random writes caused only %d seeks", st.Seeks)
	}
}

func TestHDDRandomVsSequentialGap(t *testing.T) {
	// The core premise of the paper: random small I/O on HDD is orders of
	// magnitude slower than sequential. Verify via accumulated BusyTime.
	seq := fastHDD()
	defer seq.Close()
	rnd := fastHDD()
	defer rnd.Close()
	buf := make([]byte, 4*util.KiB)
	r := util.NewRand(5)
	const ops = 50
	var off int64
	for i := 0; i < ops; i++ {
		if err := seq.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
		off += int64(len(buf))
		if err := rnd.WriteAt(buf, util.AlignDown(r.Int63n(200*util.MiB), 512)); err != nil {
			t.Fatal(err)
		}
	}
	seqBusy := seq.Stats().BusyTime
	rndBusy := rnd.Stats().BusyTime
	if rndBusy < 20*seqBusy {
		t.Errorf("random/sequential busy ratio = %.1f, want > 20 (seq=%v rnd=%v)",
			float64(rndBusy)/float64(seqBusy), seqBusy, rndBusy)
	}
}

func TestHDDElevatorOrdersServicing(t *testing.T) {
	// Load many random requests concurrently; the elevator should service
	// them with far fewer long seeks than arrival order would.
	m := DefaultHDD()
	m.Capacity = 256 * util.MiB
	d := NewHDD(m, clock.TestClock())
	defer d.Close()

	// Saturate the queue.
	var wg sync.WaitGroup
	r := util.NewRand(6)
	offs := make([]int64, 64)
	for i := range offs {
		offs[i] = util.AlignDown(r.Int63n(200*util.MiB), 512)
	}
	for _, off := range offs {
		wg.Add(1)
		go func(off int64) {
			defer wg.Done()
			buf := make([]byte, 512)
			if err := d.WriteAt(buf, off); err != nil {
				t.Error(err)
			}
		}(off)
	}
	wg.Wait()
	if n := d.QueueDepth(); n != 0 {
		t.Errorf("queue depth after completion = %d", n)
	}
}

func TestHDDCloseDrainsPending(t *testing.T) {
	d := fastHDD()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- d.WriteAt(make([]byte, 512), int64(i)*util.MiB)
		}(i)
	}
	time.Sleep(time.Millisecond)
	d.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, util.ErrClosed) {
			t.Errorf("unexpected error: %v", err)
		}
	}
	if err := d.WriteAt(make([]byte, 512), 0); !errors.Is(err, util.ErrClosed) {
		t.Errorf("write after close: %v", err)
	}
}

func TestDiskBoundsErrors(t *testing.T) {
	ssd := fastSSD()
	defer ssd.Close()
	hdd := fastHDD()
	defer hdd.Close()
	for _, d := range []Disk{ssd, hdd} {
		if err := d.WriteAt(make([]byte, 4096), d.Size()-100); !errors.Is(err, util.ErrOutOfRange) {
			t.Errorf("%T write past end: %v", d, err)
		}
	}
}

func TestSSDPropertyRoundTrip(t *testing.T) {
	d := fastSSD()
	defer d.Close()
	f := func(seed uint64, offRaw uint32, sz uint16) bool {
		off := int64(offRaw) % (60 * util.MiB)
		n := int(sz)%8192 + 1
		data := make([]byte, n)
		util.NewRand(seed).Fill(data)
		if err := d.WriteAt(data, off); err != nil {
			return false
		}
		got := make([]byte, n)
		if err := d.ReadAt(got, off); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHDDThroughputNearMediaRate(t *testing.T) {
	// Sequential streaming should achieve near the configured bandwidth in
	// model time (BusyTime ≈ bytes/bandwidth).
	m := DefaultHDD()
	m.Capacity = 256 * util.MiB
	d := NewHDD(m, clock.TestClock())
	defer d.Close()
	buf := make([]byte, util.MiB)
	total := 32 * util.MiB
	var off int64
	for off = 0; off < int64(total); off += int64(len(buf)) {
		if err := d.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	busy := d.Stats().BusyTime.Seconds()
	rate := float64(total) / busy
	if rate < 0.7*m.Bandwidth || rate > 1.3*m.Bandwidth {
		t.Errorf("sequential model rate = %.0f MB/s, want ≈%.0f",
			rate/1e6, m.Bandwidth/1e6)
	}
}
