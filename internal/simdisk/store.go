// Package simdisk simulates SSDs and HDDs with calibrated service-time
// models over an in-memory sparse sector store.
//
// The paper's hybrid design exists because of two *relative* device
// properties: SSDs have deep internal parallelism and flat random access
// latency, while HDDs have a single mechanical head whose seek+rotation
// dominates random small I/O but which streams sequential data well. Both
// models reproduce exactly those properties:
//
//   - SSD: N independent service slots; each op costs a fixed access
//     latency plus size/bandwidth. Random ≈ sequential.
//   - HDD: one service loop with a head position, an elevator (SCAN)
//     scheduler, seek distance + rotational delay + transfer costs, and a
//     fast path for sequential access at the current head position.
//
// All data lives in a sparse page map, so a "400 GB SSD" costs only the
// pages actually written.
package simdisk

import (
	"fmt"
	"sync"

	"ursa/internal/util"
)

// pageSize is the allocation granularity of the sparse store.
const pageSize = 64 * util.KiB

// memStore is a sparse byte store: unwritten regions read as zeros.
type memStore struct {
	mu    sync.RWMutex
	size  int64
	pages map[int64][]byte // page index -> page data
}

func newMemStore(size int64) *memStore {
	return &memStore{size: size, pages: make(map[int64][]byte)}
}

func (s *memStore) check(off int64, n int) error {
	if off < 0 || off+int64(n) > s.size {
		return fmt.Errorf("simdisk: [%d,%d) outside device of %d bytes: %w",
			off, off+int64(n), s.size, util.ErrOutOfRange)
	}
	return nil
}

// readAt copies stored bytes into p; holes read as zeros.
func (s *memStore) readAt(p []byte, off int64) error {
	if err := s.check(off, len(p)); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for done := 0; done < len(p); {
		pageIdx := (off + int64(done)) / pageSize
		pageOff := (off + int64(done)) % pageSize
		n := pageSize - int(pageOff)
		if n > len(p)-done {
			n = len(p) - done
		}
		if page, ok := s.pages[pageIdx]; ok {
			copy(p[done:done+n], page[pageOff:])
		} else {
			clearBytes(p[done : done+n])
		}
		done += n
	}
	return nil
}

// writeAt stores p at off, allocating pages as needed.
func (s *memStore) writeAt(p []byte, off int64) error {
	if err := s.check(off, len(p)); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeLocked(p, off)
	return nil
}

// writevAt stores the concatenation of bufs at off under one lock
// acquisition — the store half of a scatter/gather write.
func (s *memStore) writevAt(bufs [][]byte, off int64) error {
	if err := s.check(off, vecLen(bufs)); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range bufs {
		s.writeLocked(b, off)
		off += int64(len(b))
	}
	return nil
}

func (s *memStore) writeLocked(p []byte, off int64) {
	for done := 0; done < len(p); {
		pageIdx := (off + int64(done)) / pageSize
		pageOff := (off + int64(done)) % pageSize
		n := pageSize - int(pageOff)
		if n > len(p)-done {
			n = len(p) - done
		}
		page, ok := s.pages[pageIdx]
		if !ok {
			page = make([]byte, pageSize)
			s.pages[pageIdx] = page
		}
		copy(page[pageOff:], p[done:done+n])
		done += n
	}
}

// usedBytes reports allocated (written) capacity, for tests.
func (s *memStore) usedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.pages)) * pageSize
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
