package scrub

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/metrics"
	"ursa/internal/util"
)

// fakeTarget is a scriptable Target: per-chunk outcomes and a busy flag.
type fakeTarget struct {
	mu      sync.Mutex
	chunks  []blockstore.ChunkID
	corrupt map[blockstore.ChunkID]bool
	missing map[blockstore.ChunkID]bool
	busy    atomic.Bool
	probes  atomic.Int64
}

func newFakeTarget(ids ...blockstore.ChunkID) *fakeTarget {
	return &fakeTarget{
		chunks:  ids,
		corrupt: make(map[blockstore.ChunkID]bool),
		missing: make(map[blockstore.ChunkID]bool),
	}
}

func (f *fakeTarget) Addr() string { return "fake:0" }

func (f *fakeTarget) ScrubChunks() []blockstore.ChunkID {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]blockstore.ChunkID(nil), f.chunks...)
}

func (f *fakeTarget) ScrubBusy() bool { return f.busy.Load() }

func (f *fakeTarget) ScrubSpan(id blockstore.ChunkID) int64 { return util.ChunkSize }

func (f *fakeTarget) ScrubRange(id blockstore.ChunkID, off int64, n int) error {
	f.probes.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.missing[id] {
		return fmt.Errorf("fake: %v: %w", id, util.ErrNotFound)
	}
	if f.corrupt[id] {
		return fmt.Errorf("fake: %v sector %d: %w", id, off/util.SectorSize, util.ErrCorrupt)
	}
	return nil
}

func waitCounter(t *testing.T, c *metrics.Counter, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want >= %d", c.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestScrubPassVerifiesAllChunks(t *testing.T) {
	tgt := newFakeTarget(blockstore.MakeChunkID(1, 0), blockstore.MakeChunkID(1, 1))
	reg := metrics.NewRegistry()
	s := New(clock.TestClock(), Config{
		Interval:  time.Millisecond,
		ReadSize:  util.ChunkSize, // one probe per chunk
		IdleGrace: 0,
		Metrics:   reg,
	}, tgt)
	s.Start()
	defer s.Close()

	waitCounter(t, reg.Counter(MetricPasses), 2)
	if got := reg.Counter(MetricChunksVerified).Load(); got < 4 {
		t.Errorf("chunks verified = %d, want >= 4 (2 chunks x 2 passes)", got)
	}
	if got := reg.Counter(MetricBytesVerified).Load(); got < 4*util.ChunkSize {
		t.Errorf("bytes verified = %d", got)
	}
	if got := reg.Counter(MetricCorruptionsFound).Load(); got != 0 {
		t.Errorf("corruptions on a clean target = %d", got)
	}
}

func TestScrubCountsCorruptionAndMovesOn(t *testing.T) {
	bad, good := blockstore.MakeChunkID(2, 0), blockstore.MakeChunkID(2, 1)
	tgt := newFakeTarget(bad, good)
	tgt.corrupt[bad] = true
	reg := metrics.NewRegistry()
	s := New(clock.TestClock(), Config{
		Interval:  time.Millisecond,
		ReadSize:  util.ChunkSize,
		IdleGrace: 0,
		Metrics:   reg,
	}, tgt)
	s.Start()
	defer s.Close()

	waitCounter(t, reg.Counter(MetricCorruptionsFound), 1)
	// The clean sibling still gets verified on the same pass.
	waitCounter(t, reg.Counter(MetricChunksVerified), 1)
}

func TestScrubSkipsDeletedChunk(t *testing.T) {
	gone := blockstore.MakeChunkID(3, 0)
	tgt := newFakeTarget(gone)
	tgt.missing[gone] = true
	reg := metrics.NewRegistry()
	s := New(clock.TestClock(), Config{
		Interval:  time.Millisecond,
		ReadSize:  util.ChunkSize,
		IdleGrace: 0,
		Metrics:   reg,
	}, tgt)
	s.Start()
	defer s.Close()

	waitCounter(t, reg.Counter(MetricPasses), 2)
	if got := reg.Counter(MetricCorruptionsFound).Load(); got != 0 {
		t.Errorf("deleted chunk counted as corruption: %d", got)
	}
	if got := reg.Counter(MetricReadErrors).Load(); got != 0 {
		t.Errorf("deleted chunk counted as read error: %d", got)
	}
	if got := reg.Counter(MetricChunksVerified).Load(); got != 0 {
		t.Errorf("deleted chunk counted as verified: %d", got)
	}
}

// TestScrubIdleGateHoldsWhileBusy pins the scrubber behind a busy disk:
// no probe may be issued while the target reports busy, and probes resume
// once the disk has been idle for the grace period.
func TestScrubIdleGateHoldsWhileBusy(t *testing.T) {
	tgt := newFakeTarget(blockstore.MakeChunkID(4, 0))
	tgt.busy.Store(true)
	reg := metrics.NewRegistry()
	s := New(clock.Realtime, Config{
		Interval:  time.Millisecond,
		ReadSize:  util.ChunkSize,
		IdleGrace: 2 * time.Millisecond,
		Poll:      time.Millisecond,
		Metrics:   reg,
	}, tgt)
	s.Start()
	defer s.Close()

	time.Sleep(50 * time.Millisecond)
	if got := tgt.probes.Load(); got != 0 {
		t.Fatalf("scrubber probed %d times while disk was busy", got)
	}
	tgt.busy.Store(false)
	waitCounter(t, reg.Counter(MetricChunksVerified), 1)
}

// TestScrubCloseUnblocks closes a scrubber parked in its idle gate; Close
// must not hang.
func TestScrubCloseUnblocks(t *testing.T) {
	tgt := newFakeTarget(blockstore.MakeChunkID(5, 0))
	tgt.busy.Store(true) // gate never opens
	s := New(clock.Realtime, Config{
		IdleGrace: time.Hour,
		Poll:      time.Millisecond,
	}, tgt)
	s.Start()
	time.Sleep(5 * time.Millisecond)
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a gated scrubber")
	}
}
