// Package scrub implements the per-machine background scrubber: a slow,
// idle-gated sweep that re-reads every resident chunk through the replica's
// normal data path and verifies it against the per-sector checksums, so that
// silent corruption (bit-rot) is found and repaired while redundancy still
// exists, instead of surfacing years later when the last good replica dies.
//
// The scrubber deliberately knows nothing about chunk servers: it drives a
// small Target interface, which keeps it unit-testable and keeps the
// repair policy (report to master, re-replicate) inside the server. Two
// mechanisms bound its interference with foreground I/O, mirroring how the
// journal replayer yields on backup HDDs:
//
//   - idle gating: before each probe the scrubber waits until the target's
//     data disk has been idle for IdleGrace, polling every Poll;
//   - rate limiting: after each probe it sleeps long enough to keep the
//     long-run verification rate at or below Rate bytes/sec.
package scrub

import (
	"errors"
	"sync"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/metrics"
	"ursa/internal/util"
)

// Metric names registered by the scrubber.
const (
	// MetricPasses counts completed full passes over all targets.
	MetricPasses = "scrub-passes"
	// MetricChunksVerified counts chunks fully verified clean.
	MetricChunksVerified = "scrub-chunks-verified"
	// MetricBytesVerified counts payload bytes read and checksummed.
	MetricBytesVerified = "scrub-bytes-verified"
	// MetricCorruptionsFound counts probes that detected corruption (and
	// therefore triggered a repair report on the target).
	MetricCorruptionsFound = "scrub-corruptions-found"
	// MetricReadErrors counts probes that failed for non-corruption,
	// non-deleted-chunk reasons (device errors).
	MetricReadErrors = "scrub-read-errors"
)

// Target is what the scrubber needs from a chunk server.
type Target interface {
	// Addr identifies the target in diagnostics.
	Addr() string
	// ScrubChunks lists the chunks currently resident on the target.
	ScrubChunks() []blockstore.ChunkID
	// ScrubRange reads [off, off+n) of a chunk through the target's normal
	// data path and verifies it against the recorded checksums. A detected
	// mismatch wraps util.ErrCorrupt (the target has already reported it
	// for repair); a chunk deleted mid-scrub wraps util.ErrNotFound.
	ScrubRange(id blockstore.ChunkID, off int64, n int) error
	// ScrubSpan returns the chunk's local slot size — a full chunk, or one
	// segment on an RS segment holder — bounding the sweep; 0 when the
	// chunk is gone.
	ScrubSpan(id blockstore.ChunkID) int64
	// ScrubBusy reports whether the target's data disk is serving
	// foreground I/O right now.
	ScrubBusy() bool
}

// Config tunes one scrubber.
type Config struct {
	// Interval is the pause between full passes.
	Interval time.Duration
	// ReadSize is the probe size; each probe is one verified read.
	ReadSize int
	// Rate caps the long-run scrub bandwidth in bytes per second of model
	// time. <= 0 means unlimited.
	Rate float64
	// IdleGrace is how long a target's disk must have been idle before the
	// scrubber issues a probe.
	IdleGrace time.Duration
	// Poll is the busy-wait interval of the idle gate.
	Poll time.Duration
	// Metrics receives the scrub-* counters (nil: a private registry).
	Metrics *metrics.Registry
}

// DefaultConfig returns production-shaped settings: a slow continuous sweep
// that stays out of the foreground path's way.
func DefaultConfig() Config {
	return Config{
		Interval:  2 * time.Second,
		ReadSize:  1 * util.MiB,
		Rate:      64 * util.MiB,
		IdleGrace: 30 * time.Millisecond,
		Poll:      10 * time.Millisecond,
	}
}

// Scrubber sweeps a set of targets in the background.
type Scrubber struct {
	clk     clock.Clock
	cfg     Config
	targets []Target

	passes      *metrics.Counter
	chunksOK    *metrics.Counter
	bytes       *metrics.Counter
	corruptions *metrics.Counter
	readErrors  *metrics.Counter

	mu      sync.Mutex
	started bool
	closed  bool
	stop    chan struct{}
	done    chan struct{}
}

// New creates a scrubber over targets. Call Start to begin sweeping.
func New(clk clock.Clock, cfg Config, targets ...Target) *Scrubber {
	def := DefaultConfig()
	if cfg.Interval <= 0 {
		cfg.Interval = def.Interval
	}
	if cfg.ReadSize <= 0 {
		cfg.ReadSize = def.ReadSize
	}
	if cfg.ReadSize%util.SectorSize != 0 {
		cfg.ReadSize = int(util.AlignUp(int64(cfg.ReadSize), util.SectorSize))
	}
	if cfg.IdleGrace < 0 {
		cfg.IdleGrace = 0
	}
	if cfg.Poll <= 0 {
		cfg.Poll = def.Poll
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return &Scrubber{
		clk:         clk,
		cfg:         cfg,
		targets:     targets,
		passes:      cfg.Metrics.Counter(MetricPasses),
		chunksOK:    cfg.Metrics.Counter(MetricChunksVerified),
		bytes:       cfg.Metrics.Counter(MetricBytesVerified),
		corruptions: cfg.Metrics.Counter(MetricCorruptionsFound),
		readErrors:  cfg.Metrics.Counter(MetricReadErrors),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
}

// Start launches the background sweep. Idempotent.
func (s *Scrubber) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	go s.run()
}

// Close stops the sweep and waits for the worker to exit. Idempotent.
func (s *Scrubber) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	started := s.started
	close(s.stop)
	s.mu.Unlock()
	if started {
		<-s.done
	}
}

func (s *Scrubber) run() {
	defer close(s.done)
	// Each target remembers when its disk was last seen busy, so the idle
	// gate measures real idleness across probes, not just at poll time.
	lastBusy := make([]time.Time, len(s.targets))
	now := s.clk.Now()
	for i := range lastBusy {
		lastBusy[i] = now
	}
	for {
		for ti, tgt := range s.targets {
			for _, id := range tgt.ScrubChunks() {
				if !s.scrubChunk(ti, tgt, id, lastBusy) {
					return
				}
			}
		}
		s.passes.Inc()
		if !s.sleep(s.cfg.Interval) {
			return
		}
	}
}

// scrubChunk verifies one chunk probe by probe. Returns false when the
// scrubber is closing.
func (s *Scrubber) scrubChunk(ti int, tgt Target, id blockstore.ChunkID, lastBusy []time.Time) bool {
	span := tgt.ScrubSpan(id)
	for off := int64(0); off < span; off += int64(s.cfg.ReadSize) {
		if !s.waitIdle(ti, tgt, lastBusy) {
			return false
		}
		n := s.cfg.ReadSize
		if rem := span - off; rem < int64(n) {
			n = int(rem)
		}
		err := tgt.ScrubRange(id, off, n)
		switch {
		case err == nil:
			s.bytes.Add(int64(n))
		case errors.Is(err, util.ErrNotFound):
			// Deleted mid-scrub; nothing to verify or repair.
			return true
		case errors.Is(err, util.ErrCorrupt):
			// The target already reported the chunk for repair; counting
			// it here is the detection signal. Move on — re-reading a
			// rotting chunk only delays the rest of the sweep.
			s.corruptions.Inc()
			return true
		default:
			s.readErrors.Inc()
			return true
		}
		if !s.pace(n) {
			return false
		}
	}
	s.chunksOK.Inc()
	return true
}

// waitIdle blocks until the target's disk has been idle for IdleGrace.
// Returns false when the scrubber is closing.
func (s *Scrubber) waitIdle(ti int, tgt Target, lastBusy []time.Time) bool {
	if s.cfg.IdleGrace == 0 {
		return true
	}
	for {
		if tgt.ScrubBusy() {
			lastBusy[ti] = s.clk.Now()
		} else if s.clk.Now().Sub(lastBusy[ti]) >= s.cfg.IdleGrace {
			return true
		}
		if !s.sleep(s.cfg.Poll) {
			return false
		}
	}
}

// pace sleeps long enough after an n-byte probe to hold the configured rate.
func (s *Scrubber) pace(n int) bool {
	if s.cfg.Rate <= 0 {
		return true
	}
	d := time.Duration(float64(n) / s.cfg.Rate * float64(time.Second))
	return s.sleep(d)
}

// sleep waits d of model time, returning false if Close fired meanwhile.
func (s *Scrubber) sleep(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-s.stop:
			return false
		default:
			return true
		}
	}
	select {
	case <-s.stop:
		return false
	case <-s.clk.After(d):
		return true
	}
}
