// Package core is URSA's public façade: it assembles a complete block
// store — machines with simulated SSDs and HDDs, primary and backup chunk
// servers, per-HDD journals, a master, and a simulated network fabric —
// and hands out client portals. This is the system the paper's evaluation
// runs: the same cluster can be built in SSD-HDD-hybrid, SSD-only
// (Ursa-SSD), or HDD-only mode (§6).
package core

import (
	"fmt"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/chunkserver"
	"ursa/internal/client"
	"ursa/internal/clock"
	"ursa/internal/journal"
	"ursa/internal/master"
	"ursa/internal/metrics"
	"ursa/internal/objstore"
	"ursa/internal/scrub"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// Mode selects where replicas live (§6: the three tested replication
// modes).
type Mode int

// Replication modes.
const (
	// Hybrid stores primaries on SSD and backups on HDD behind journals —
	// the paper's contribution.
	Hybrid Mode = iota
	// SSDOnly stores all replicas on SSDs (Ursa-SSD).
	SSDOnly
	// HDDOnly stores all replicas on HDDs without journals.
	HDDOnly
)

func (m Mode) String() string {
	switch m {
	case Hybrid:
		return "hybrid"
	case SSDOnly:
		return "ssd-only"
	default:
		return "hdd-only"
	}
}

// Options parameterizes a cluster.
type Options struct {
	// Machines is the number of storage machines.
	Machines int
	// SSDsPerMachine / HDDsPerMachine set per-machine device counts
	// (paper hardware: 2 PCIe SSDs, 8 HDDs).
	SSDsPerMachine int
	HDDsPerMachine int
	// Mode selects the replication mode.
	Mode Mode
	// Clock drives all simulated time; tests pass a scaled clock.
	Clock clock.Clock
	// NetLatency is the one-way propagation delay.
	NetLatency time.Duration
	// NICRate is each machine's NIC bandwidth in bytes/second per
	// direction (10 GbE ≈ 1.25e9). 0 = unlimited.
	NICRate float64
	// Replication is replicas per chunk (default 3).
	Replication int
	// SSDModel / HDDModel override device models (zero value = defaults).
	SSDModel simdisk.SSDModel
	HDDModel simdisk.HDDModel
	// SSDCapacity / HDDCapacity shrink devices for tests (0 = model
	// default). Smaller devices keep sparse-store page maps cheap.
	SSDCapacity int64
	HDDCapacity int64
	// JournalFraction is the SSD share reserved for journals (paper: 1/10).
	JournalFraction float64
	// HDDJournal enables the overflow journal at each HDD's tail (§3.2).
	HDDJournal bool
	// HDDJournalSize bounds the overflow journal (0 = 1/16 of the HDD).
	HDDJournalSize int64
	// ReplTimeout / CallTimeout are the protocol timeouts.
	ReplTimeout time.Duration
	CallTimeout time.Duration
	// IOTimeout is the client's end-to-end budget per ReadAt/WriteAt (0 =
	// the client default derived from CallTimeout and its retry count).
	IOTimeout time.Duration
	// Metrics collects per-stage latency breadcrumbs cluster-wide: every
	// server and client feeds the same registry, so one table decomposes
	// where an I/O's time went. nil = a fresh registry.
	Metrics *metrics.Registry
	// Masters is the number of master replicas (default 1, the unreplicated
	// configuration). With more, the metadata service runs the replication
	// protocol: the primary ships its op log to hot standbys and a standby
	// promotes itself — bumping the fencing epoch — when the primary dies.
	Masters int
	// MasterPrimacyTTL is the replicated masters' primacy lease (0 = the
	// master default). Failover blackout scales with it.
	MasterPrimacyTTL time.Duration
	// LeaseTTL is the vdisk lease duration.
	LeaseTTL time.Duration
	// WriteRateLimit is the master-imposed per-client write budget.
	WriteRateLimit float64
	// BypassThreshold is Tj (default 64 KB); TinyThreshold is Tc (8 KB).
	BypassThreshold int
	TinyThreshold   int
	// ServerMaxInflight bounds concurrent handlers per connection on every
	// chunk server (0 = transport default) — the server-side admission
	// depth the hotchunk bench sweeps.
	ServerMaxInflight int
	// SerialApply disables per-chunk write pipelining on every chunk
	// server (the locked baseline; see chunkserver.Config.SerialApply).
	SerialApply bool
	// ScrubEnable starts one background scrubber per machine, sweeping all
	// of the machine's chunk servers for silent corruption.
	ScrubEnable bool
	// ScrubConfig tunes the scrubbers (zero value = scrub.DefaultConfig;
	// a nil Metrics field inherits the cluster registry).
	ScrubConfig scrub.Config
	// JournalCoalesce makes every journal flush coalesce its batch into
	// one freshly allocated contiguous buffer instead of the default
	// scatter/gather vectored write (journal.Config.CoalesceFlush) — the
	// copying baseline the ceiling bench measures the zero-copy path
	// against.
	JournalCoalesce bool
	// ObjstoreModel overrides the simulated object store's latency and
	// bandwidth model (nil = objstore.DefaultModel; point at
	// objstore.TestModel() for the near-free protocol-test shape).
	ObjstoreModel *objstore.Model
	// ColdGCInterval starts the master's background cold-tier GC loop on
	// that cadence (0 = no loop; tests and benches call RunColdGC
	// directly).
	ColdGCInterval time.Duration
}

func (o *Options) fillDefaults() {
	if o.Machines <= 0 {
		o.Machines = 4
	}
	if o.SSDsPerMachine <= 0 {
		o.SSDsPerMachine = 2
	}
	if o.HDDsPerMachine <= 0 {
		o.HDDsPerMachine = 8
	}
	if o.Clock == nil {
		o.Clock = clock.Realtime
	}
	if o.Replication <= 0 {
		o.Replication = 3
	}
	if o.SSDModel.Capacity == 0 {
		o.SSDModel = simdisk.DefaultSSD()
	}
	if o.HDDModel.Capacity == 0 {
		o.HDDModel = simdisk.DefaultHDD()
	}
	if o.SSDCapacity > 0 {
		o.SSDModel.Capacity = o.SSDCapacity
	}
	if o.HDDCapacity > 0 {
		o.HDDModel.Capacity = o.HDDCapacity
	}
	if o.JournalFraction <= 0 {
		o.JournalFraction = 0.1
	}
	if o.HDDJournalSize <= 0 {
		o.HDDJournalSize = o.HDDModel.Capacity / 16
	}
	if o.ReplTimeout <= 0 {
		o.ReplTimeout = 500 * time.Millisecond
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 2 * time.Second
	}
	if o.Metrics == nil {
		o.Metrics = metrics.NewRegistry()
	}
	if o.Masters <= 0 {
		o.Masters = 1
	}
}

// Machine is one storage machine: devices, servers, and a shared NIC.
// Every device sits behind a FaultInjector (a pass-through until armed);
// SSDs/HDDs keep the raw models, SSDFaults/HDDFaults are what the stores
// and journals actually run on — chaos tests arm faults there.
type Machine struct {
	Name      string
	SSDs      []*simdisk.SSD
	HDDs      []*simdisk.HDD
	SSDFaults []*simdisk.FaultInjector
	HDDFaults []*simdisk.FaultInjector
	// JournalRegions locates every journal region on this machine's
	// devices, so a fault can target one journal (its byte range on the
	// shared SSD) instead of the whole device.
	JournalRegions []JournalRegion
	Servers        []*chunkserver.Server
	// Scrubber is the machine's background integrity sweep (nil unless
	// Options.ScrubEnable).
	Scrubber *scrub.Scrubber
	jsets    []*journal.Set

	nicIn, nicOut *transport.TokenBucket
}

// JournalRegion names one journal's byte region on a machine device.
type JournalRegion struct {
	Server string // owning backup server address
	Name   string // journal name as registered with the set
	Disk   *simdisk.FaultInjector
	Base   int64
	Size   int64
	HDD    bool // overflow journal on the backup HDD itself
}

// JournalSets returns the machine's backup journal sets (hybrid mode).
func (m *Machine) JournalSets() []*journal.Set { return m.jsets }

// Cluster is an assembled URSA deployment.
type Cluster struct {
	opts     Options
	clk      clock.Clock
	Net      *transport.SimNet
	Master   *master.Master // Masters[0]; the bootstrap primary
	Masters  []*master.Master
	Machines []*Machine
	// Objstore is the cluster's simulated object store — the cold tier's
	// backing service, on its own fabric node so chaos can partition it.
	Objstore *objstore.Store

	masterAddrs []string
	servers     map[string]*chunkserver.Server
	clients     []*client.Client
	objRPC      *transport.Server
}

// MasterAddr is the (first) master's fabric address; replicas are
// "master-1", "master-2", … in promotion-priority order.
const MasterAddr = "master"

// ObjstoreAddr is the simulated object store's fabric address.
const ObjstoreAddr = "objstore"

// New builds and starts a cluster.
func New(opts Options) (*Cluster, error) {
	opts.fillDefaults()
	c := &Cluster{
		opts:    opts,
		clk:     opts.Clock,
		Net:     transport.NewSimNet(opts.Clock, opts.NetLatency),
		servers: make(map[string]*chunkserver.Server),
	}

	// The object store comes up first: every master's config points at it
	// (snapshot flush targets, GC). Unlimited NIC — the latency/bandwidth
	// model inside the store is the service's own contention model.
	model := objstore.DefaultModel()
	if opts.ObjstoreModel != nil {
		model = *opts.ObjstoreModel
	}
	c.Objstore = objstore.New(opts.Clock, model)
	c.Objstore.SetMetrics(opts.Metrics)
	ol, err := c.Net.Listen(ObjstoreAddr, transport.NodeConfig{})
	if err != nil {
		return nil, err
	}
	c.objRPC = transport.Serve(ol, c.Objstore.Handler)

	c.masterAddrs = append(c.masterAddrs, MasterAddr)
	for i := 1; i < opts.Masters; i++ {
		c.masterAddrs = append(c.masterAddrs, fmt.Sprintf("%s-%d", MasterAddr, i))
	}
	for i := range c.masterAddrs {
		m, err := c.newMaster(i, false)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Masters = append(c.Masters, m)
	}
	c.Master = c.Masters[0]

	for i := 0; i < opts.Machines; i++ {
		m, err := c.buildMachine(i)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Machines = append(c.Machines, m)
	}
	return c, nil
}

// newMaster builds and serves the master at rank i (unlimited NIC: masters
// are off the data path). join makes it start as a standby regardless of
// rank — the healed-after-crash path, where resurrecting the bootstrap
// epoch would briefly split primacy.
func (c *Cluster) newMaster(i int, join bool) (*master.Master, error) {
	addr := c.masterAddrs[i]
	ml, err := c.Net.Listen(addr, transport.NodeConfig{})
	if err != nil {
		return nil, err
	}
	var peers []string
	if len(c.masterAddrs) > 1 {
		peers = append([]string(nil), c.masterAddrs...)
	}
	m := master.New(master.Config{
		Addr:           addr,
		Clock:          c.opts.Clock,
		Dialer:         c.Net.Dialer(addr, transport.NodeConfig{}),
		Replication:    c.opts.Replication,
		LeaseTTL:       c.opts.LeaseTTL,
		WriteRateLimit: c.opts.WriteRateLimit,
		RPCTimeout:     c.opts.CallTimeout,
		HybridMode:     c.opts.Mode == Hybrid,
		Metrics:        c.opts.Metrics,
		Peers:          peers,
		PrimacyTTL:     c.opts.MasterPrimacyTTL,
		JoinStandby:    join,
		ObjstoreAddr:   ObjstoreAddr,
		GCInterval:     c.opts.ColdGCInterval,
	})
	m.Serve(ml)
	return m, nil
}

// buildMachine assembles machine i: devices, servers per device, journal
// sets wiring backup HDDs to SSD journal regions, and master registration.
func (c *Cluster) buildMachine(i int) (*Machine, error) {
	opts := &c.opts
	m := &Machine{
		Name:   fmt.Sprintf("m%d", i),
		nicIn:  transport.NewTokenBucket(c.clk, opts.NICRate),
		nicOut: transport.NewTokenBucket(c.clk, opts.NICRate),
	}
	nodeCfg := transport.NodeConfig{SharedIn: m.nicIn, SharedOut: m.nicOut}

	for j := 0; j < opts.SSDsPerMachine; j++ {
		ssd := simdisk.NewSSD(opts.SSDModel, c.clk)
		fi := simdisk.NewFaultInjector(ssd, c.clk)
		fi.SetMetrics(opts.Metrics)
		m.SSDs = append(m.SSDs, ssd)
		m.SSDFaults = append(m.SSDFaults, fi)
	}
	for k := 0; k < opts.HDDsPerMachine; k++ {
		hdd := simdisk.NewHDD(opts.HDDModel, c.clk)
		fi := simdisk.NewFaultInjector(hdd, c.clk)
		fi.SetMetrics(opts.Metrics)
		m.HDDs = append(m.HDDs, hdd)
		m.HDDFaults = append(m.HDDFaults, fi)
	}

	// Primary-capable servers: one per SSD (hybrid and SSD-only modes), or
	// one per HDD in HDD-only mode.
	switch opts.Mode {
	case Hybrid:
		if err := c.addSSDServers(m, nodeCfg, true); err != nil {
			return nil, err
		}
		if err := c.addBackupServers(m, nodeCfg); err != nil {
			return nil, err
		}
	case SSDOnly:
		if err := c.addSSDServers(m, nodeCfg, true); err != nil {
			return nil, err
		}
	case HDDOnly:
		for k, hdd := range m.HDDFaults {
			addr := fmt.Sprintf("%s/hdd%d", m.Name, k)
			store := blockstore.New(hdd, 0)
			srv := chunkserver.New(chunkserver.Config{
				Addr:        addr,
				Role:        chunkserver.RolePrimary,
				Clock:       c.clk,
				Dialer:      c.Net.Dialer(addr, nodeCfg),
				ReplTimeout: opts.ReplTimeout,
				Metrics:     opts.Metrics,
				MaxInflight: opts.ServerMaxInflight,
				SerialApply: opts.SerialApply,
				MasterAddr:  MasterAddr,
				MasterAddrs: c.masterAddrs,
			}, store, nil)
			if err := c.startServer(m, srv, nodeCfg); err != nil {
				return nil, err
			}
			c.Master.AddServer(addr, m.Name, true) // primary-capable
		}
	}

	if opts.ScrubEnable {
		scfg := opts.ScrubConfig
		if scfg.Metrics == nil {
			scfg.Metrics = opts.Metrics
		}
		targets := make([]scrub.Target, 0, len(m.Servers))
		for _, s := range m.Servers {
			targets = append(targets, s)
		}
		m.Scrubber = scrub.New(c.clk, scfg, targets...)
		m.Scrubber.Start()
	}
	return m, nil
}

// addSSDServers starts one primary server per SSD. In hybrid mode the tail
// JournalFraction of each SSD is reserved for the backup journals of this
// machine's HDDs.
func (c *Cluster) addSSDServers(m *Machine, nodeCfg transport.NodeConfig, register bool) error {
	opts := &c.opts
	for j, ssd := range m.SSDFaults {
		limit := ssd.Size()
		if opts.Mode == Hybrid {
			limit = util.AlignDown(int64(float64(ssd.Size())*(1-opts.JournalFraction)), util.ChunkSize)
		}
		addr := fmt.Sprintf("%s/ssd%d", m.Name, j)
		store := blockstore.New(ssd, limit)
		srv := chunkserver.New(chunkserver.Config{
			Addr:        addr,
			Role:        chunkserver.RolePrimary,
			Clock:       c.clk,
			Dialer:      c.Net.Dialer(addr, nodeCfg),
			ReplTimeout: opts.ReplTimeout,
			Metrics:     opts.Metrics,
			MaxInflight: opts.ServerMaxInflight,
			SerialApply: opts.SerialApply,
			MasterAddr:  MasterAddr,
			MasterAddrs: c.masterAddrs,
		}, store, nil)
		if err := c.startServer(m, srv, nodeCfg); err != nil {
			return err
		}
		if register {
			c.Master.AddServer(addr, m.Name, true)
		}
	}
	return nil
}

// addBackupServers starts one backup server per HDD, each with a journal
// set: an SSD journal region carved from a co-located SSD plus (optionally)
// an overflow journal at the HDD's own tail (§3.2).
func (c *Cluster) addBackupServers(m *Machine, nodeCfg transport.NodeConfig) error {
	opts := &c.opts
	// Journal space on each SSD is split evenly among the HDDs it backs.
	ssdJournalSpace := int64(float64(opts.SSDModel.Capacity) * opts.JournalFraction)
	hddsPerSSD := (opts.HDDsPerMachine + opts.SSDsPerMachine - 1) / opts.SSDsPerMachine
	perHDDJournal := util.AlignDown(ssdJournalSpace/int64(hddsPerSSD), util.SectorSize)

	for k, hdd := range m.HDDFaults {
		addr := fmt.Sprintf("%s/hdd%d", m.Name, k)
		storeLimit := hdd.Size()
		if opts.HDDJournal {
			storeLimit = util.AlignDown(hdd.Size()-opts.HDDJournalSize, util.ChunkSize)
		}
		store := blockstore.New(hdd, storeLimit)

		jcfg := journal.DefaultConfig()
		jcfg.Metrics = opts.Metrics // group-commit batch/flush distributions
		jcfg.CoalesceFlush = opts.JournalCoalesce
		jset := journal.NewSet(c.clk, store, jcfg)
		ssdIdx := k % opts.SSDsPerMachine
		slot := int64(k / opts.SSDsPerMachine)
		ssd := m.SSDFaults[ssdIdx]
		base := util.AlignDown(int64(float64(ssd.Size())*(1-opts.JournalFraction)), util.ChunkSize) +
			slot*perHDDJournal
		jname := fmt.Sprintf("%s-jssd%d", addr, ssdIdx)
		jset.AddSSDJournal(jname, ssd, base, perHDDJournal)
		m.JournalRegions = append(m.JournalRegions, JournalRegion{
			Server: addr, Name: jname, Disk: ssd, Base: base, Size: perHDDJournal,
		})
		if opts.HDDJournal {
			hjSize := util.AlignDown(opts.HDDJournalSize, util.SectorSize)
			jset.AddHDDJournal(addr+"-jhdd", hdd, storeLimit, hjSize)
			m.JournalRegions = append(m.JournalRegions, JournalRegion{
				Server: addr, Name: addr + "-jhdd", Disk: hdd, Base: storeLimit,
				Size: hjSize, HDD: true,
			})
		}
		jset.Start()
		m.jsets = append(m.jsets, jset)

		srv := chunkserver.New(chunkserver.Config{
			Addr:            addr,
			Role:            chunkserver.RoleBackup,
			Clock:           c.clk,
			Dialer:          c.Net.Dialer(addr, nodeCfg),
			ReplTimeout:     opts.ReplTimeout,
			Metrics:         opts.Metrics,
			BypassThreshold: opts.BypassThreshold,
			MaxInflight:     opts.ServerMaxInflight,
			SerialApply:     opts.SerialApply,
			MasterAddr:      MasterAddr,
			MasterAddrs:     c.masterAddrs,
		}, store, jset)
		if err := c.startServer(m, srv, nodeCfg); err != nil {
			return err
		}
		c.Master.AddServer(addr, m.Name, false)
	}
	return nil
}

func (c *Cluster) startServer(m *Machine, srv *chunkserver.Server, nodeCfg transport.NodeConfig) error {
	l, err := c.Net.Listen(srv.Addr(), nodeCfg)
	if err != nil {
		return err
	}
	srv.Serve(l)
	m.Servers = append(m.Servers, srv)
	c.servers[srv.Addr()] = srv
	return nil
}

// Server returns the chunk server at addr, or nil.
func (c *Cluster) Server(addr string) *chunkserver.Server { return c.servers[addr] }

// ServerAddrs lists all chunk-server addresses.
func (c *Cluster) ServerAddrs() []string {
	addrs := make([]string, 0, len(c.servers))
	for _, m := range c.Machines {
		for _, s := range m.Servers {
			addrs = append(addrs, s.Addr())
		}
	}
	return addrs
}

// NewClient creates a client portal on its own fabric node (a "VMM host").
func (c *Cluster) NewClient(name string) *client.Client {
	cfg := transport.NodeConfig{InRate: c.opts.NICRate, OutRate: c.opts.NICRate}
	cl := client.New(client.Config{
		Name:          name,
		MasterAddr:    MasterAddr,
		MasterAddrs:   c.masterAddrs,
		Clock:         c.clk,
		Dialer:        c.Net.Dialer(name, cfg),
		TinyThreshold: c.opts.TinyThreshold,
		CallTimeout:   c.opts.CallTimeout,
		IOTimeout:     c.opts.IOTimeout,
		Metrics:       c.opts.Metrics,
	})
	c.clients = append(c.clients, cl)
	return cl
}

// CrashServer makes a chunk server unreachable (its process/machine died,
// from the protocol's perspective).
func (c *Cluster) CrashServer(addr string) { c.Net.Crash(addr) }

// RestartServer brings a crashed server's node back.
func (c *Cluster) RestartServer(addr string) { c.Net.Restart(addr) }

// MasterAddrs lists the master endpoints in promotion-priority order.
func (c *Cluster) MasterAddrs() []string { return append([]string(nil), c.masterAddrs...) }

// KillMaster crashes master i: its fabric node drops and its process
// stops. With replicas, a standby notices the silence and promotes itself
// after roughly one primacy TTL.
func (c *Cluster) KillMaster(i int) {
	c.Net.Crash(c.masterAddrs[i])
	c.Masters[i].Close()
}

// HealMaster restarts a killed master as a fresh process joining as a
// standby: it rejoins with no state and catches up from the current
// primary's log.
func (c *Cluster) HealMaster(i int) error {
	c.Net.Restart(c.masterAddrs[i])
	m, err := c.newMaster(i, true)
	if err != nil {
		return err
	}
	c.Masters[i] = m
	if i == 0 {
		c.Master = m
	}
	return nil
}

// PrimaryMaster returns the live master currently claiming primacy (the
// highest epoch wins a transient dual claim), or nil during a blackout.
func (c *Cluster) PrimaryMaster() *master.Master {
	var best *master.Master
	for i, m := range c.Masters {
		if m == nil || c.Net.Down(c.masterAddrs[i]) || !m.IsPrimary() {
			continue
		}
		if best == nil || m.Epoch() > best.Epoch() {
			best = m
		}
	}
	return best
}

// Close shuts the whole cluster down.
func (c *Cluster) Close() {
	for _, cl := range c.clients {
		cl.Close()
	}
	for _, m := range c.Masters {
		if m != nil {
			m.Close()
		}
	}
	if c.objRPC != nil {
		c.objRPC.Close()
	}
	for _, m := range c.Machines {
		// Scrubbers first: they probe through the servers and must not
		// race a closing server or store.
		if m.Scrubber != nil {
			m.Scrubber.Close()
		}
		for _, s := range m.Servers {
			s.Close()
		}
		for _, d := range m.SSDs {
			d.Close()
		}
		for _, d := range m.HDDs {
			d.Close()
		}
	}
}

// Mode returns the cluster's replication mode.
func (c *Cluster) Mode() Mode { return c.opts.Mode }

// Clock returns the cluster clock.
func (c *Cluster) Clock() clock.Clock { return c.clk }

// Metrics returns the cluster-wide stage-latency registry.
func (c *Cluster) Metrics() *metrics.Registry { return c.opts.Metrics }
