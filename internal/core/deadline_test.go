package core

import (
	"bytes"
	"testing"
	"time"

	"ursa/internal/clock"
	"ursa/internal/util"
)

// TestWriteDeadlinePropagation pins the deadline decrement rule end to end:
// when a backup stops acking mid-replication, the primary's majority rule
// (§4.2.1) must fire relative to the CLIENT's deadline budget, not the
// server's configured ReplTimeout. The server window here is absurdly long
// (30 s); if any layer below the client derived an absolute timeout from
// it, the degraded write could not return within the client's ~300 ms
// budget.
func TestWriteDeadlinePropagation(t *testing.T) {
	const ioBudget = 300 * time.Millisecond
	c, err := New(Options{
		Machines:       3,
		SSDsPerMachine: 1,
		HDDsPerMachine: 1,
		Mode:           Hybrid,
		Clock:          clock.Realtime,
		SSDModel:       fastSSDModel(),
		HDDModel:       fastHDDModel(),
		NetLatency:     5 * time.Microsecond,
		ReplTimeout:    30 * time.Second, // must NOT govern client-initiated ops
		CallTimeout:    10 * time.Second,
		IOTimeout:      ioBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	cl := c.NewClient("dl-client")
	vd := mustVDisk(t, cl, "dl", util.ChunkSize)

	data := bytes.Repeat([]byte{0xab}, 64*util.KiB) // > Tc: goes via the primary
	// Warm the replication path so the partition below hits established
	// primary→backup connections rather than failing the dial outright.
	if err := vd.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	meta, err := cl.OpenMeta("dl")
	if err != nil {
		t.Fatal(err)
	}
	reps := meta.Chunks[0].Replicas
	if len(reps) < 3 {
		t.Fatalf("want 3 replicas, got %d", len(reps))
	}
	// Cut the primary off from one backup: its OpReplicate now vanishes on
	// the wire, so only the replication window ends the primary's wait.
	c.Net.Partition(reps[0].Addr, reps[1].Addr)

	start := time.Now()
	if err := vd.WriteAt(data, 0); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	elapsed := time.Since(start)
	// The majority (primary + remaining backup) must commit within the
	// client's budget — with generous scheduling slack, but nowhere near
	// the 30 s server window.
	if elapsed >= 2*time.Second {
		t.Fatalf("degraded write took %v; replication window did not derive from the client's %v budget",
			elapsed, ioBudget)
	}

	got := make([]byte, len(data))
	if err := vd.ReadAt(got, 0); err != nil {
		t.Fatalf("read after degraded commit: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back wrong data after degraded commit")
	}
}
