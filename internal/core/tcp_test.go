package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/chunkserver"
	"ursa/internal/client"
	"ursa/internal/clock"
	"ursa/internal/journal"
	"ursa/internal/master"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// TestRealTCPDeployment assembles the same topology the cmd/ daemons
// create — master, primary and backup chunk servers, client — over real
// TCP sockets, proving the wire path end to end (the in-proc fabric is
// bypassed entirely).
func TestRealTCPDeployment(t *testing.T) {
	clk := clock.Realtime
	dialer := transport.TCPDialer{}

	// Master.
	ml, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m := master.New(master.Config{
		Addr: ml.Addr(), Clock: clk, Dialer: dialer,
		HybridMode: true, RPCTimeout: 2 * time.Second,
	})
	m.Serve(ml)
	defer m.Close()

	// Three machines, each one primary (SSD) and one backup (HDD+journal).
	for i := 0; i < 3; i++ {
		machine := fmt.Sprintf("m%d", i)

		pl, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		pstore := blockstore.New(simdisk.NewSSD(fastSSDModel(), clk), 0)
		p := chunkserver.New(chunkserver.Config{
			Addr: pl.Addr(), Role: chunkserver.RolePrimary,
			Clock: clk, Dialer: dialer, ReplTimeout: time.Second,
		}, pstore, nil)
		p.Serve(pl)
		defer p.Close()
		m.AddServer(pl.Addr(), machine, true)

		bl, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hdd := simdisk.NewHDD(fastHDDModel(), clk)
		bstore := blockstore.New(hdd, util.AlignDown(hdd.Size()/2, util.ChunkSize))
		jset := journal.NewSet(clk, bstore, journal.DefaultConfig())
		jset.AddSSDJournal("j", simdisk.NewSSD(fastSSDModel(), clk), 0, 64*util.MiB)
		jset.Start()
		b := chunkserver.New(chunkserver.Config{
			Addr: bl.Addr(), Role: chunkserver.RoleBackup,
			Clock: clk, Dialer: dialer, ReplTimeout: time.Second,
		}, bstore, jset)
		b.Serve(bl)
		defer b.Close()
		m.AddServer(bl.Addr(), machine, false)
	}

	// Client over TCP.
	cl := client.New(client.Config{
		Name: "tcp-test", MasterAddr: ml.Addr(),
		Clock: clk, Dialer: dialer, CallTimeout: 2 * time.Second,
	})
	defer cl.Close()

	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "d", Size: 128 * util.MiB}); err != nil {
		t.Fatal(err)
	}
	vd, err := cl.Open("d")
	if err != nil {
		t.Fatal(err)
	}
	defer vd.Close()

	// Small (journal) and large (bypass) writes over the real wire.
	small := make([]byte, 4*util.KiB)
	large := make([]byte, 256*util.KiB)
	util.NewRand(1).Fill(small)
	util.NewRand(2).Fill(large)
	if err := vd.WriteAt(small, 0); err != nil {
		t.Fatal(err)
	}
	if err := vd.WriteAt(large, util.MiB); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(small))
	if err := vd.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, small) {
		t.Error("small write round trip over TCP mismatch")
	}
	got2 := make([]byte, len(large))
	if err := vd.ReadAt(got2, util.MiB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, large) {
		t.Error("large write round trip over TCP mismatch")
	}
}
