package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ursa/internal/client"
	"ursa/internal/clock"
	"ursa/internal/master"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// testCluster builds a small cluster on the real clock with
// proportionally-fast device models: the SSD/HDD gap and all protocol
// behavior are preserved while every operation costs microseconds, so
// protocol timeouts keep their intended margins (a scaled clock would
// inflate goroutine-scheduling overhead into model time and fire them
// spuriously).
func testCluster(t *testing.T, mode Mode) *Cluster {
	t.Helper()
	c, err := New(Options{
		Machines:       4,
		SSDsPerMachine: 1,
		HDDsPerMachine: 2,
		Mode:           mode,
		Clock:          clock.Realtime,
		SSDModel:       fastSSDModel(),
		HDDModel:       fastHDDModel(),
		HDDJournal:     true,
		NetLatency:     5 * time.Microsecond,
		ReplTimeout:    40 * time.Millisecond,
		CallTimeout:    250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// fastSSDModel keeps DefaultSSD's shape at 1/40 the latency.
func fastSSDModel() simdisk.SSDModel {
	return simdisk.SSDModel{
		Capacity:       2 * util.GiB,
		Parallelism:    32,
		ReadLatency:    2 * time.Microsecond,
		WriteLatency:   4 * time.Microsecond,
		ReadBandwidth:  20e9,
		WriteBandwidth: 12e9,
	}
}

// fastHDDModel keeps the mechanical cost structure (seek ≫ transfer,
// random ≫ sequential) at ~1/40 real scale.
func fastHDDModel() simdisk.HDDModel {
	return simdisk.HDDModel{
		Capacity:   4 * util.GiB,
		SeekMax:    400 * time.Microsecond,
		SeekSettle: 25 * time.Microsecond,
		RPM:        288000, // half rotation ≈ 104µs
		Bandwidth:  6e9,
		TrackSkip:  512 * util.KiB,
	}
}

func mustVDisk(t *testing.T, cl *client.Client, name string, size int64) *client.VDisk {
	t.Helper()
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: name, Size: size}); err != nil {
		t.Fatal(err)
	}
	vd, err := cl.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vd.Close() })
	return vd
}

func TestHybridWriteReadRoundTrip(t *testing.T) {
	c := testCluster(t, Hybrid)
	cl := c.NewClient("c1")
	defer cl.Close()
	vd := mustVDisk(t, cl, "disk1", 256*util.MiB)

	r := util.NewRand(1)
	type wrote struct {
		off  int64
		data []byte
	}
	var history []wrote
	for i := 0; i < 30; i++ {
		n := (r.Intn(16) + 1) * util.SectorSize
		data := make([]byte, n)
		r.Fill(data)
		off := util.AlignDown(r.Int63n(vd.Size()-int64(n)), util.SectorSize)
		if err := vd.WriteAt(data, off); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		history = append(history, wrote{off, data})
	}
	for i, w := range history {
		got := make([]byte, len(w.data))
		if err := vd.ReadAt(got, w.off); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		// Later writes may have overwritten earlier ones; only check the
		// last write to each location.
		overwritten := false
		for _, later := range history[i+1:] {
			if later.off < w.off+int64(len(w.data)) &&
				w.off < later.off+int64(len(later.data)) {
				overwritten = true
				break
			}
		}
		if !overwritten && !bytes.Equal(got, w.data) {
			t.Fatalf("read %d at %d: data mismatch", i, w.off)
		}
	}
	st := vd.Stats()
	if st.Writes != 30 {
		t.Errorf("stats writes = %d", st.Writes)
	}
}

func TestSSDOnlyMode(t *testing.T) {
	c := testCluster(t, SSDOnly)
	cl := c.NewClient("c1")
	defer cl.Close()
	vd := mustVDisk(t, cl, "disk1", 128*util.MiB)

	data := make([]byte, 8*util.KiB)
	util.NewRand(2).Fill(data)
	if err := vd.WriteAt(data, 65536); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := vd.ReadAt(got, 65536); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("ssd-only round trip mismatch")
	}
}

func TestHDDOnlyMode(t *testing.T) {
	c := testCluster(t, HDDOnly)
	cl := c.NewClient("c1")
	defer cl.Close()
	vd := mustVDisk(t, cl, "disk1", 128*util.MiB)

	data := make([]byte, 4*util.KiB)
	util.NewRand(3).Fill(data)
	if err := vd.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := vd.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("hdd-only round trip mismatch")
	}
}

func TestTinyVsLargeWritePaths(t *testing.T) {
	c := testCluster(t, Hybrid)
	cl := c.NewClient("c1")
	defer cl.Close()
	vd := mustVDisk(t, cl, "disk1", 128*util.MiB)

	// 4 KB ≤ Tc: client-directed.
	if err := vd.WriteAt(make([]byte, 4*util.KiB), 0); err != nil {
		t.Fatal(err)
	}
	if st := vd.Stats(); st.TinyWrites != 1 {
		t.Errorf("tiny writes = %d, want 1", st.TinyWrites)
	}
	// 1 MB > Tj: primary-driven, journal bypass on backups.
	if err := vd.WriteAt(make([]byte, util.MiB), util.MiB); err != nil {
		t.Fatal(err)
	}
	if st := vd.Stats(); st.TinyWrites != 1 {
		t.Errorf("tiny writes after large = %d, want still 1", st.TinyWrites)
	}
}

func TestBackupDataServedAfterPrimaryCrash(t *testing.T) {
	c := testCluster(t, Hybrid)
	cl := c.NewClient("c1")
	defer cl.Close()
	vd := mustVDisk(t, cl, "disk1", util.ChunkSize) // one chunk

	data := make([]byte, 16*util.KiB)
	util.NewRand(4).Fill(data)
	if err := vd.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	// Find and crash the chunk's primary (the only SSD replica).
	meta := vdiskMeta(t, c, "disk1")
	primary := meta.Chunks[0].Replicas[0].Addr
	c.CrashServer(primary)

	// Reads must now be served by a backup (journal-aware), and the data
	// must match what was written through the journal path.
	buf := make([]byte, len(data))
	if err := vd.ReadAt(buf, 4096); err != nil {
		t.Fatalf("read after primary crash: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Error("backup served wrong data after primary crash")
	}
}

// vdiskMeta fetches current metadata through the master without touching
// the lease.
func vdiskMeta(t *testing.T, c *Cluster, name string) master.VDiskMeta {
	t.Helper()
	cl := c.NewClient("meta-probe-" + name)
	defer cl.Close()
	meta, err := cl.OpenMeta(name)
	if err != nil {
		t.Fatal(err)
	}
	return meta
}

func TestWritesContinueThroughPrimaryCrash(t *testing.T) {
	c := testCluster(t, Hybrid)
	cl := c.NewClient("c1")
	defer cl.Close()
	vd := mustVDisk(t, cl, "disk1", util.ChunkSize)

	data := make([]byte, 4*util.KiB)
	util.NewRand(5).Fill(data)
	if err := vd.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	meta := vdiskMeta(t, c, "disk1")
	primary := meta.Chunks[0].Replicas[0].Addr
	c.CrashServer(primary)

	// Writes after the crash must eventually commit (view change allocates
	// a replacement primary).
	data2 := make([]byte, 4*util.KiB)
	util.NewRand(6).Fill(data2)
	if err := vd.WriteAt(data2, 8192); err != nil {
		t.Fatalf("write after primary crash: %v", err)
	}
	got := make([]byte, len(data2))
	if err := vd.ReadAt(got, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data2) {
		t.Error("post-crash write corrupted")
	}
	// And the pre-crash data must still be there.
	got1 := make([]byte, len(data))
	if err := vd.ReadAt(got1, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, data) {
		t.Error("pre-crash data lost")
	}
	if vd.Stats().Failovers == 0 {
		t.Error("no failover recorded")
	}
}

func TestLeaseExclusion(t *testing.T) {
	c := testCluster(t, Hybrid)
	cl1 := c.NewClient("c1")
	defer cl1.Close()
	vd := mustVDisk(t, cl1, "disk1", 128*util.MiB)
	_ = vd

	cl2 := c.NewClient("c2")
	defer cl2.Close()
	if _, err := cl2.Open("disk1"); !errors.Is(err, util.ErrLeaseHeld) {
		t.Fatalf("second client open: %v", err)
	}
	// After the first client closes, the second can open.
	vd.Close()
	vd2, err := cl2.Open("disk1")
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	vd2.Close()
}

func TestStripedVDisk(t *testing.T) {
	c := testCluster(t, Hybrid)
	cl := c.NewClient("c1")
	defer cl.Close()
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{
		Name: "striped", Size: 512 * util.MiB, StripeGroup: 4, StripeUnit: 128 * util.KiB,
	}); err != nil {
		t.Fatal(err)
	}
	vd, err := cl.Open("striped")
	if err != nil {
		t.Fatal(err)
	}
	defer vd.Close()

	data := make([]byte, util.MiB)
	util.NewRand(7).Fill(data)
	if err := vd.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := vd.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("striped round trip mismatch")
	}
}

func TestUnalignedIORejected(t *testing.T) {
	c := testCluster(t, Hybrid)
	cl := c.NewClient("c1")
	defer cl.Close()
	vd := mustVDisk(t, cl, "disk1", 128*util.MiB)
	if err := vd.WriteAt(make([]byte, 100), 0); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("unaligned write: %v", err)
	}
	if err := vd.ReadAt(make([]byte, 512), vd.Size()); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("read past end: %v", err)
	}
}

func TestVDiskDeleteAndRecreate(t *testing.T) {
	c := testCluster(t, Hybrid)
	cl := c.NewClient("c1")
	defer cl.Close()
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "tmp", Size: 64 * util.MiB}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "tmp", Size: 64 * util.MiB}); !errors.Is(err, util.ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := cl.DeleteVDisk("tmp"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open("tmp"); !errors.Is(err, util.ErrNotFound) {
		t.Fatalf("open deleted: %v", err)
	}
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "tmp", Size: 64 * util.MiB}); err != nil {
		t.Fatalf("recreate: %v", err)
	}
}

func TestClientCoreUpgrade(t *testing.T) {
	c := testCluster(t, Hybrid)
	cl := c.NewClient("c1")
	defer cl.Close()
	vd := mustVDisk(t, cl, "disk1", 128*util.MiB)

	data := make([]byte, 8*util.KiB)
	util.NewRand(8).Fill(data)
	if err := vd.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	vd2, err := cl.UpgradeVDisk(vd)
	if err != nil {
		t.Fatal(err)
	}
	defer vd2.Close()
	// The new core must resume exactly: reads see old data, writes carry
	// on from the preserved version counters.
	got := make([]byte, len(data))
	if err := vd2.ReadAt(got, 0); err != nil {
		t.Fatalf("read after upgrade: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("upgrade lost data visibility")
	}
	if err := vd2.WriteAt(data, 16384); err != nil {
		t.Fatalf("write after upgrade: %v", err)
	}
	// The old handle must refuse service.
	if err := vd.WriteAt(data, 0); !errors.Is(err, util.ErrClosed) {
		t.Errorf("old core still writable: %v", err)
	}
}

func TestChunkServerHotUpgradeDuringIO(t *testing.T) {
	c := testCluster(t, Hybrid)
	cl := c.NewClient("c1")
	defer cl.Close()
	vd := mustVDisk(t, cl, "disk1", util.ChunkSize)

	meta := vdiskMeta(t, c, "disk1")
	primary := c.Server(meta.Chunks[0].Replicas[0].Addr)
	done := make(chan error, 1)
	go func() {
		data := make([]byte, 4*util.KiB)
		for i := 0; i < 20; i++ {
			if err := vd.WriteAt(data, int64(i)*4096); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	primary.Upgrade()
	if err := <-done; err != nil {
		t.Fatalf("I/O failed across hot upgrade: %v", err)
	}
	if primary.Stats().UpgradeGen != 1 {
		t.Errorf("upgrade generation = %d", primary.Stats().UpgradeGen)
	}
}

func TestClientModulesStack(t *testing.T) {
	c := testCluster(t, Hybrid)
	cl := c.NewClient("c1")
	defer cl.Close()
	vd := mustVDisk(t, cl, "disk1", 128*util.MiB)

	dev := client.WithRateLimit(client.WithCache(vd, 4*util.MiB), 1e12, c.Clock())
	data := make([]byte, 8*util.KiB)
	util.NewRand(9).Fill(data)
	if err := dev.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := dev.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("module stack round trip mismatch")
	}
}

func TestSnapshotModule(t *testing.T) {
	c := testCluster(t, Hybrid)
	cl := c.NewClient("c1")
	defer cl.Close()
	src := mustVDisk(t, cl, "src", 64*util.MiB)
	dst := mustVDisk(t, cl, "dst", 64*util.MiB)

	data := make([]byte, 64*util.KiB)
	util.NewRand(10).Fill(data)
	if err := src.WriteAt(data, util.MiB); err != nil {
		t.Fatal(err)
	}
	if err := client.Snapshot(src, dst); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := dst.ReadAt(got, util.MiB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("snapshot copy mismatch")
	}
}
