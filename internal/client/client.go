package client

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/master"
	"ursa/internal/metrics"
	"ursa/internal/opctx"
	"ursa/internal/proto"
	"ursa/internal/transport"
	"ursa/internal/util"
	"ursa/internal/util/backoff"
)

// Config parameterizes a client portal.
type Config struct {
	// Name identifies this client as a lease holder.
	Name string
	// MasterAddr locates the master service.
	MasterAddr string
	// MasterAddrs lists every master endpoint when the metadata service is
	// replicated. Metadata calls rotate through the list on transport
	// faults and follow StatusNotPrimary redirect hints, so the client
	// finds the promoted primary after a failover. Empty means the single
	// MasterAddr.
	MasterAddrs []string
	// Clock supplies time.
	Clock clock.Clock
	// Dialer reaches the master and chunk servers.
	Dialer transport.Dialer
	// TinyThreshold is Tc: writes at or below it use client-directed
	// replication (§3.2). 0 means the 8 KB paper default.
	TinyThreshold int
	// CallTimeout bounds individual chunk-server RPCs; it is also the
	// commit-rule timeout for client-directed writes.
	CallTimeout time.Duration
	// MasterTimeout bounds master RPCs (metadata, leases, failure
	// reports). The master path tolerates far more latency than the data
	// path — a view change may be repairing replicas behind the call — so
	// it gets its own budget instead of borrowing CallTimeout. 0 means
	// 20× CallTimeout.
	MasterTimeout time.Duration
	// IOTimeout is the end-to-end deadline budget of one ReadAt/WriteAt.
	// This is the single place an absolute deadline enters the I/O path:
	// the budget is stamped into every RPC the operation fans out to, and
	// every layer below (transport waits, primary replication fan-out,
	// version queueing) derives its window from what remains of it. 0
	// means (MaxRetries+1) × CallTimeout, enough for every retry round to
	// run its course.
	IOTimeout time.Duration
	// MaxRetries bounds how many recover-and-retry rounds an I/O attempts
	// before failing.
	MaxRetries int
	// ReportCooldown bounds how often the client re-files the same
	// asynchronous (chunk, address) failure report: straggler reports from
	// the client-directed majority-ack path are fire-and-forget, and
	// without the cooldown a flapping replica spawns one report per failed
	// write. 0 means 1s.
	ReportCooldown time.Duration
	// Metrics, when non-nil, receives per-stage latency breadcrumbs from
	// this client's operations.
	Metrics *metrics.Registry
}

func (c *Config) fillDefaults() {
	if c.Clock == nil {
		c.Clock = clock.Realtime
	}
	if c.TinyThreshold <= 0 {
		c.TinyThreshold = 8 * util.KiB
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 500 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 6
	}
	if c.MasterTimeout <= 0 {
		c.MasterTimeout = 20 * c.CallTimeout
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = time.Duration(c.MaxRetries+1) * c.CallTimeout
	}
	if c.ReportCooldown <= 0 {
		c.ReportCooldown = time.Second
	}
	if c.Name == "" {
		c.Name = "client"
	}
	if len(c.MasterAddrs) == 0 {
		c.MasterAddrs = []string{c.MasterAddr}
	} else if c.MasterAddr == "" {
		c.MasterAddr = c.MasterAddrs[0]
	}
}

// MetricFailureReportsDropped counts asynchronous failure reports dropped
// because the bounded report queue was full — the overload shedding that
// replaces an unbounded herd of goroutines parked on a dead master.
const MetricFailureReportsDropped = "client-failure-reports-dropped"

// reportQueueDepth bounds how many asynchronous failure reports may wait
// behind the single reporter goroutine. During a master blackout the queue
// fills and further reports are dropped (counted, and re-filed by the next
// failed I/O after the cooldown) instead of parking goroutines in Do.
const reportQueueDepth = 32

// asyncReport is one queued fire-and-forget failure report.
type asyncReport struct {
	vd   *VDisk
	idx  int
	addr string
}

// Client is the portal process: it owns the master session and chunk-server
// connections, and opens VDisks.
type Client struct {
	cfg     Config
	peers   *transport.Peers // chunk-server connections, shared across vdisks
	masters *transport.Peers // master connections, one per endpoint

	reportCh   chan asyncReport // bounded queue behind the reporter goroutine
	reportStop chan struct{}
	reportWG   sync.WaitGroup

	mu         sync.Mutex
	masterHint string // one-shot redirect target from the last StatusNotPrimary
	masterIdx  int    // rotation cursor into cfg.MasterAddrs
	closed     bool
}

// New creates a client portal.
func New(cfg Config) *Client {
	cfg.fillDefaults()
	c := &Client{
		cfg:        cfg,
		peers:      transport.NewPeers(cfg.Dialer, cfg.Clock),
		masters:    transport.NewPeers(cfg.Dialer, cfg.Clock),
		reportCh:   make(chan asyncReport, reportQueueDepth),
		reportStop: make(chan struct{}),
	}
	c.reportWG.Add(1)
	go c.reportLoop()
	return c
}

// Close tears down all connections. Open VDisks become unusable.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.reportStop)
	c.reportWG.Wait()
	c.masters.CloseAll()
	c.peers.CloseAll()
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// reportLoop drains the asynchronous failure-report queue, one report at a
// time. A single goroutine serializes the client's fire-and-forget reports:
// when the master is unreachable the reports queue (and overflow is dropped
// at the enqueue side) instead of fanning out goroutines that all park in
// the master call for MasterTimeout.
func (c *Client) reportLoop() {
	defer c.reportWG.Done()
	for {
		select {
		case <-c.reportStop:
			return
		case r := <-c.reportCh:
			_ = r.vd.reportFailure(nil, r.idx, r.addr)
			r.vd.finishAsyncReport(r.idx)
		}
	}
}

// nextMasterAddr picks the endpoint for the next metadata attempt: a
// redirect hint if one is pending (consumed once), else the rotation
// cursor.
func (c *Client) nextMasterAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.masterHint != "" {
		addr := c.masterHint
		c.masterHint = ""
		return addr
	}
	return c.cfg.MasterAddrs[c.masterIdx%len(c.cfg.MasterAddrs)]
}

// rotateMaster advances the rotation cursor past addr after a failed
// attempt (no-op if another caller already moved on).
func (c *Client) rotateMaster(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.MasterAddrs[c.masterIdx%len(c.cfg.MasterAddrs)] == addr {
		c.masterIdx++
	}
}

// markMaster pins the rotation cursor on the endpoint that just served a
// call, so subsequent metadata ops go straight there.
func (c *Client) markMaster(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, a := range c.cfg.MasterAddrs {
		if a == addr {
			c.masterIdx = i
			return
		}
	}
}

// setMasterHint records a one-shot redirect target.
func (c *Client) setMasterHint(addr string) {
	c.mu.Lock()
	c.masterHint = addr
	c.mu.Unlock()
}

// newOp starts a request context on the client's clock with the given
// deadline budget (<=0 means none), wired to the client's metrics sink.
func (c *Client) newOp(budget time.Duration) *opctx.Op {
	op := opctx.New(c.cfg.Clock, budget)
	if c.cfg.Metrics != nil {
		op = op.WithSink(c.cfg.Metrics)
	}
	return op
}

// masterCall performs one JSON-payload master RPC under its own
// MasterTimeout-budgeted op.
func (c *Client) masterCall(op proto.Op, req any, out any) (proto.Status, error) {
	return c.masterCallT(c.cfg.MasterTimeout, op, req, out)
}

// masterCallT is masterCall with an explicit deadline budget, for callers
// sitting on a tighter clock than MasterTimeout.
//
// With one configured master endpoint this is a single attempt, exactly the
// unreplicated behavior. With several, the call hunts for the primary until
// the budget runs out: transport faults rotate to the next endpoint,
// StatusNotPrimary follows the standby's redirect hint (or rotates when the
// standby doesn't know a primary yet), and attempts are spaced by the
// shared backoff policy so a herd of callers riding out a failover doesn't
// hammer the standbys in lockstep.
func (c *Client) masterCallT(d time.Duration, op proto.Op, req any, out any) (proto.Status, error) {
	var payload []byte
	if req != nil {
		var err error
		payload, err = json.Marshal(req)
		if err != nil {
			return proto.StatusError, err
		}
	}
	mop := c.newOp(d)
	policy := backoff.Policy{Base: c.cfg.CallTimeout / 50, Cap: c.cfg.CallTimeout / 5}
	multi := len(c.cfg.MasterAddrs) > 1
	var lastErr error
	var deadAddr string // last endpoint that failed at the transport
	for attempt := 0; ; attempt++ {
		if c.isClosed() {
			return proto.StatusError, util.ErrClosed
		}
		addr := c.nextMasterAddr()
		// Re-sending payload across attempts is safe: JSON buffers are
		// foreign to bufpool, so Do's per-attempt Put is a no-op.
		resp, err := c.masters.Do(mop, addr, &proto.Message{Op: op, Payload: payload}, 0)
		switch {
		case err != nil:
			lastErr = err
			deadAddr = addr
			c.rotateMaster(addr)
		case resp.Status == proto.StatusNotPrimary:
			var info master.MasterInfoResp
			hintErr := json.Unmarshal(resp.Payload, &info)
			bufpool.Put(resp.Payload)
			lastErr = fmt.Errorf("client: master %s: %w", addr, util.ErrNotPrimary)
			// A standby that hasn't noticed the failover yet still points
			// at the dead primary — following that hint just burns an
			// attempt, so rotate past it instead.
			if hintErr == nil && info.Primary != "" && info.Primary != addr && info.Primary != deadAddr {
				c.setMasterHint(info.Primary)
			} else {
				c.rotateMaster(addr)
			}
		default:
			status := resp.Status
			if status == proto.StatusOK && out != nil && len(resp.Payload) > 0 {
				if err := json.Unmarshal(resp.Payload, out); err != nil {
					bufpool.Put(resp.Payload)
					return proto.StatusError, err
				}
			}
			bufpool.Put(resp.Payload)
			c.markMaster(addr)
			return status, nil
		}
		if !multi {
			break
		}
		// Sweep the whole endpoint list back to back, then back off once
		// per sweep: during a failover every endpoint is worth one fast
		// look, and it's the sweeps — not the individual attempts — that
		// would otherwise hammer the standbys in lockstep.
		if sweep := len(c.cfg.MasterAddrs); (attempt+1)%sweep == 0 {
			delay := policy.Delay(mop.ID(), (attempt+1)/sweep-1)
			if rem, ok := mop.Remaining(); !ok || rem <= delay {
				break
			}
			c.cfg.Clock.Sleep(delay)
		} else if rem, ok := mop.Remaining(); !ok || rem <= 0 {
			break
		}
	}
	return proto.StatusError, lastErr
}

// CreateVDisk asks the master to create a virtual disk.
func (c *Client) CreateVDisk(req master.CreateVDiskReq) (*master.VDiskMeta, error) {
	var meta master.VDiskMeta
	status, err := c.masterCall(proto.MOpCreateVDisk, req, &meta)
	if err != nil {
		return nil, err
	}
	switch status {
	case proto.StatusOK:
		return &meta, nil
	case proto.StatusExists:
		return nil, fmt.Errorf("client: vdisk %q: %w", req.Name, util.ErrExists)
	case proto.StatusQuota:
		return nil, fmt.Errorf("client: vdisk %q: %w", req.Name, util.ErrQuota)
	default:
		return nil, fmt.Errorf("client: create vdisk %q: %s", req.Name, status)
	}
}

// DeleteVDisk removes a virtual disk.
func (c *Client) DeleteVDisk(name string) error {
	status, err := c.masterCall(proto.MOpDeleteVDisk, master.GetVDiskReq{Name: name}, nil)
	if err != nil {
		return err
	}
	if status == proto.StatusNotFound {
		return fmt.Errorf("client: vdisk %q: %w", name, util.ErrNotFound)
	}
	if status != proto.StatusOK {
		return fmt.Errorf("client: delete vdisk %q: %s", name, status)
	}
	return nil
}

// OpenMeta fetches a vdisk's current metadata without acquiring its lease
// (monitoring and tooling path).
func (c *Client) OpenMeta(name string) (master.VDiskMeta, error) {
	var meta master.VDiskMeta
	status, err := c.masterCall(proto.MOpGetVDisk, master.GetVDiskReq{Name: name}, &meta)
	if err != nil {
		return meta, err
	}
	switch status {
	case proto.StatusOK:
		return meta, nil
	case proto.StatusNotFound:
		return meta, fmt.Errorf("client: vdisk %q: %w", name, util.ErrNotFound)
	default:
		return meta, fmt.Errorf("client: get vdisk %q: %s", name, status)
	}
}

// Open acquires the vdisk lease and returns a usable VDisk. The lease is
// auto-renewed until Close (§4.1).
func (c *Client) Open(name string) (*VDisk, error) {
	var meta master.VDiskMeta
	status, err := c.masterCall(proto.MOpOpenVDisk,
		master.OpenVDiskReq{Name: name, Client: c.cfg.Name}, &meta)
	if err != nil {
		return nil, err
	}
	switch status {
	case proto.StatusOK:
	case proto.StatusLeaseHeld:
		return nil, fmt.Errorf("client: open %q: %w", name, util.ErrLeaseHeld)
	case proto.StatusNotFound:
		return nil, fmt.Errorf("client: open %q: %w", name, util.ErrNotFound)
	default:
		return nil, fmt.Errorf("client: open %q: %s", name, status)
	}
	vd := newVDisk(c, meta)
	// Confirm version numbers with the replicas before first use
	// (initialization, §4.2.1).
	if err := vd.confirmVersions(); err != nil {
		vd.Close()
		return nil, err
	}
	vd.startRenewer()
	return vd, nil
}
