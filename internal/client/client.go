package client

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/master"
	"ursa/internal/metrics"
	"ursa/internal/opctx"
	"ursa/internal/proto"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// Config parameterizes a client portal.
type Config struct {
	// Name identifies this client as a lease holder.
	Name string
	// MasterAddr locates the master service.
	MasterAddr string
	// Clock supplies time.
	Clock clock.Clock
	// Dialer reaches the master and chunk servers.
	Dialer transport.Dialer
	// TinyThreshold is Tc: writes at or below it use client-directed
	// replication (§3.2). 0 means the 8 KB paper default.
	TinyThreshold int
	// CallTimeout bounds individual chunk-server RPCs; it is also the
	// commit-rule timeout for client-directed writes.
	CallTimeout time.Duration
	// MasterTimeout bounds master RPCs (metadata, leases, failure
	// reports). The master path tolerates far more latency than the data
	// path — a view change may be repairing replicas behind the call — so
	// it gets its own budget instead of borrowing CallTimeout. 0 means
	// 20× CallTimeout.
	MasterTimeout time.Duration
	// IOTimeout is the end-to-end deadline budget of one ReadAt/WriteAt.
	// This is the single place an absolute deadline enters the I/O path:
	// the budget is stamped into every RPC the operation fans out to, and
	// every layer below (transport waits, primary replication fan-out,
	// version queueing) derives its window from what remains of it. 0
	// means (MaxRetries+1) × CallTimeout, enough for every retry round to
	// run its course.
	IOTimeout time.Duration
	// MaxRetries bounds how many recover-and-retry rounds an I/O attempts
	// before failing.
	MaxRetries int
	// ReportCooldown bounds how often the client re-files the same
	// asynchronous (chunk, address) failure report: straggler reports from
	// the client-directed majority-ack path are fire-and-forget, and
	// without the cooldown a flapping replica spawns one report per failed
	// write. 0 means 1s.
	ReportCooldown time.Duration
	// Metrics, when non-nil, receives per-stage latency breadcrumbs from
	// this client's operations.
	Metrics *metrics.Registry
}

func (c *Config) fillDefaults() {
	if c.Clock == nil {
		c.Clock = clock.Realtime
	}
	if c.TinyThreshold <= 0 {
		c.TinyThreshold = 8 * util.KiB
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 500 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 6
	}
	if c.MasterTimeout <= 0 {
		c.MasterTimeout = 20 * c.CallTimeout
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = time.Duration(c.MaxRetries+1) * c.CallTimeout
	}
	if c.ReportCooldown <= 0 {
		c.ReportCooldown = time.Second
	}
	if c.Name == "" {
		c.Name = "client"
	}
}

// Client is the portal process: it owns the master session and chunk-server
// connections, and opens VDisks.
type Client struct {
	cfg   Config
	peers *transport.Peers // chunk-server connections, shared across vdisks

	mu      sync.Mutex
	masterC *transport.Client
	closed  bool
}

// New creates a client portal.
func New(cfg Config) *Client {
	cfg.fillDefaults()
	return &Client{cfg: cfg, peers: transport.NewPeers(cfg.Dialer, cfg.Clock)}
}

// Close tears down all connections. Open VDisks become unusable.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	mc := c.masterC
	c.masterC = nil
	c.mu.Unlock()
	if mc != nil {
		mc.Close()
	}
	c.peers.CloseAll()
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// masterClient returns the cached master connection, dialing on demand.
func (c *Client) masterClient() (*transport.Client, error) {
	c.mu.Lock()
	if c.masterC != nil {
		mc := c.masterC
		c.mu.Unlock()
		return mc, nil
	}
	c.mu.Unlock()
	conn, err := c.cfg.Dialer.Dial(c.cfg.MasterAddr)
	if err != nil {
		return nil, err
	}
	mc := transport.NewClient(conn, c.cfg.Clock)
	c.mu.Lock()
	if c.masterC != nil {
		old := c.masterC
		c.mu.Unlock()
		mc.Close()
		return old, nil
	}
	c.masterC = mc
	c.mu.Unlock()
	return mc, nil
}

// newOp starts a request context on the client's clock with the given
// deadline budget (<=0 means none), wired to the client's metrics sink.
func (c *Client) newOp(budget time.Duration) *opctx.Op {
	op := opctx.New(c.cfg.Clock, budget)
	if c.cfg.Metrics != nil {
		op = op.WithSink(c.cfg.Metrics)
	}
	return op
}

// masterCall performs one JSON-payload master RPC under its own
// MasterTimeout-budgeted op.
func (c *Client) masterCall(op proto.Op, req any, out any) (proto.Status, error) {
	return c.masterCallT(c.cfg.MasterTimeout, op, req, out)
}

// masterCallT is masterCall with an explicit deadline budget, for callers
// sitting on a tighter clock than MasterTimeout.
func (c *Client) masterCallT(d time.Duration, op proto.Op, req any, out any) (proto.Status, error) {
	mc, err := c.masterClient()
	if err != nil {
		return proto.StatusError, err
	}
	var payload []byte
	if req != nil {
		payload, err = json.Marshal(req)
		if err != nil {
			return proto.StatusError, err
		}
	}
	resp, err := mc.Do(c.newOp(d), &proto.Message{Op: op, Payload: payload}, 0)
	if err != nil {
		c.mu.Lock()
		if c.masterC == mc {
			c.masterC = nil
		}
		c.mu.Unlock()
		mc.Close()
		return proto.StatusError, err
	}
	if resp.Status == proto.StatusOK && out != nil && len(resp.Payload) > 0 {
		if err := json.Unmarshal(resp.Payload, out); err != nil {
			bufpool.Put(resp.Payload)
			return proto.StatusError, err
		}
	}
	bufpool.Put(resp.Payload)
	return resp.Status, nil
}

// CreateVDisk asks the master to create a virtual disk.
func (c *Client) CreateVDisk(req master.CreateVDiskReq) (*master.VDiskMeta, error) {
	var meta master.VDiskMeta
	status, err := c.masterCall(proto.MOpCreateVDisk, req, &meta)
	if err != nil {
		return nil, err
	}
	switch status {
	case proto.StatusOK:
		return &meta, nil
	case proto.StatusExists:
		return nil, fmt.Errorf("client: vdisk %q: %w", req.Name, util.ErrExists)
	case proto.StatusQuota:
		return nil, fmt.Errorf("client: vdisk %q: %w", req.Name, util.ErrQuota)
	default:
		return nil, fmt.Errorf("client: create vdisk %q: %s", req.Name, status)
	}
}

// DeleteVDisk removes a virtual disk.
func (c *Client) DeleteVDisk(name string) error {
	status, err := c.masterCall(proto.MOpDeleteVDisk, master.GetVDiskReq{Name: name}, nil)
	if err != nil {
		return err
	}
	if status == proto.StatusNotFound {
		return fmt.Errorf("client: vdisk %q: %w", name, util.ErrNotFound)
	}
	if status != proto.StatusOK {
		return fmt.Errorf("client: delete vdisk %q: %s", name, status)
	}
	return nil
}

// OpenMeta fetches a vdisk's current metadata without acquiring its lease
// (monitoring and tooling path).
func (c *Client) OpenMeta(name string) (master.VDiskMeta, error) {
	var meta master.VDiskMeta
	status, err := c.masterCall(proto.MOpGetVDisk, master.GetVDiskReq{Name: name}, &meta)
	if err != nil {
		return meta, err
	}
	switch status {
	case proto.StatusOK:
		return meta, nil
	case proto.StatusNotFound:
		return meta, fmt.Errorf("client: vdisk %q: %w", name, util.ErrNotFound)
	default:
		return meta, fmt.Errorf("client: get vdisk %q: %s", name, status)
	}
}

// Open acquires the vdisk lease and returns a usable VDisk. The lease is
// auto-renewed until Close (§4.1).
func (c *Client) Open(name string) (*VDisk, error) {
	var meta master.VDiskMeta
	status, err := c.masterCall(proto.MOpOpenVDisk,
		master.OpenVDiskReq{Name: name, Client: c.cfg.Name}, &meta)
	if err != nil {
		return nil, err
	}
	switch status {
	case proto.StatusOK:
	case proto.StatusLeaseHeld:
		return nil, fmt.Errorf("client: open %q: %w", name, util.ErrLeaseHeld)
	case proto.StatusNotFound:
		return nil, fmt.Errorf("client: open %q: %w", name, util.ErrNotFound)
	default:
		return nil, fmt.Errorf("client: open %q: %s", name, status)
	}
	vd := newVDisk(c, meta)
	// Confirm version numbers with the replicas before first use
	// (initialization, §4.2.1).
	if err := vd.confirmVersions(); err != nil {
		vd.Close()
		return nil, err
	}
	vd.startRenewer()
	return vd, nil
}
