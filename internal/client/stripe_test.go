package client

import (
	"testing"
	"testing/quick"

	"ursa/internal/master"
	"ursa/internal/util"
)

func metaWith(group int, unit int64, size int64) *master.VDiskMeta {
	return &master.VDiskMeta{Size: size, StripeGroup: group, StripeUnit: unit}
}

func TestMapRangeUnstriped(t *testing.T) {
	meta := metaWith(1, util.ChunkSize, 4*util.ChunkSize)
	// A request inside one chunk is a single fragment.
	frags := mapRange(meta, 512, 4096)
	if len(frags) != 1 || frags[0].chunk != 0 || frags[0].chunkOff != 512 {
		t.Fatalf("frags = %+v", frags)
	}
	// A request crossing a chunk boundary splits in two.
	frags = mapRange(meta, util.ChunkSize-4096, 8192)
	if len(frags) != 2 {
		t.Fatalf("boundary frags = %+v", frags)
	}
	if frags[0].chunk != 0 || frags[1].chunk != 1 || frags[1].chunkOff != 0 {
		t.Fatalf("boundary frags = %+v", frags)
	}
}

func TestMapRangeUnstripedMergesWithinChunk(t *testing.T) {
	// Even with a small stripe unit, group=1 requests must merge back into
	// one fragment per chunk.
	meta := metaWith(1, 128*util.KiB, 4*util.ChunkSize)
	frags := mapRange(meta, 0, util.MiB)
	if len(frags) != 1 {
		t.Fatalf("group=1 1MB request produced %d fragments", len(frags))
	}
	if frags[0].bufLo != 0 || frags[0].bufHi != util.MiB {
		t.Fatalf("frags = %+v", frags)
	}
}

func TestMapRangeStriping(t *testing.T) {
	// Group of 4 at 128 KB: a 1 MB write fans out over 4 chunks, two
	// 128 KB pieces each — but pieces in the same chunk are NOT contiguous
	// (that is what striping means), so 8 fragments.
	meta := metaWith(4, 128*util.KiB, 16*util.ChunkSize)
	frags := mapRange(meta, 0, util.MiB)
	if len(frags) != 8 {
		t.Fatalf("striped 1MB request: %d fragments, want 8", len(frags))
	}
	perChunk := map[int]int{}
	for _, f := range frags {
		perChunk[f.chunk]++
	}
	for ch := 0; ch < 4; ch++ {
		if perChunk[ch] != 2 {
			t.Errorf("chunk %d got %d fragments, want 2", ch, perChunk[ch])
		}
	}
	// First stripe unit goes to chunk 0 offset 0; second to chunk 1.
	if frags[0].chunk != 0 || frags[0].chunkOff != 0 {
		t.Errorf("frag0 = %+v", frags[0])
	}
	if frags[1].chunk != 1 || frags[1].chunkOff != 0 {
		t.Errorf("frag1 = %+v", frags[1])
	}
	// Chunk 0's second piece lands at offset 128 KB within the chunk.
	var second *fragment
	for i := range frags[2:] {
		if frags[2+i].chunk == 0 {
			second = &frags[2+i]
			break
		}
	}
	if second == nil || second.chunkOff != 128*util.KiB {
		t.Errorf("chunk0 second piece = %+v", second)
	}
}

func TestMapRangeCoversExactly(t *testing.T) {
	// Property: fragments tile the request exactly, without overlap, and
	// every (chunk, chunkOff) is hit by exactly one logical offset.
	f := func(group uint8, unitExp uint8, offRaw uint32, lenRaw uint16) bool {
		g := int(group)%8 + 1
		// Stripe units are powers of two that tile the chunk, as the
		// master enforces at creation.
		unit := int64(4*util.KiB) << (unitExp % 7) // 4KiB..256KiB
		meta := metaWith(g, unit, 64*util.ChunkSize)
		off := util.AlignDown(int64(offRaw)%(32*util.ChunkSize), util.SectorSize)
		n := (int(lenRaw)%2048 + 1) * util.SectorSize
		frags := mapRange(meta, off, n)

		covered := 0
		prevHi := 0
		for _, fr := range frags {
			if fr.bufLo != prevHi {
				return false // gap or overlap in buffer coverage
			}
			if fr.bufHi <= fr.bufLo {
				return false
			}
			if fr.chunkOff < 0 || fr.chunkOff+int64(fr.bufHi-fr.bufLo) > util.ChunkSize {
				return false // fragment escapes its chunk
			}
			covered += fr.bufHi - fr.bufLo
			prevHi = fr.bufHi
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMapRangeRoundTripAddressing(t *testing.T) {
	// Writing the logical offset as data at each mapped location and then
	// reading any sub-range must see consistent addresses: two different
	// logical offsets never map to the same (chunk, chunkOff).
	meta := metaWith(4, 64*util.KiB, 64*util.ChunkSize)
	seen := map[int64]int64{} // chunk*ChunkSize+chunkOff -> logical
	r := util.NewRand(5)
	for i := 0; i < 200; i++ {
		off := util.AlignDown(r.Int63n(16*util.ChunkSize), util.SectorSize)
		n := (r.Intn(512) + 1) * util.SectorSize
		for _, fr := range mapRange(meta, off, int(n)) {
			logical := off + int64(fr.bufLo)
			for b := 0; b < fr.bufHi-fr.bufLo; b += util.SectorSize {
				key := int64(fr.chunk)*util.ChunkSize + fr.chunkOff + int64(b)
				want := logical + int64(b)
				if prev, ok := seen[key]; ok && prev != want {
					t.Fatalf("physical %d maps to logical %d and %d", key, prev, want)
				}
				seen[key] = want
			}
		}
	}
}
