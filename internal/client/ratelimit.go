package client

import (
	"ursa/internal/clock"
	"ursa/internal/transport"
)

// rateLimitedDevice throttles writes to a byte budget. The master applies
// this module to clients that write too aggressively, protecting backup
// journals from quota exhaustion (§3.2).
type rateLimitedDevice struct {
	Device
	bucket *transport.TokenBucket
}

// WithRateLimit wraps dev so writes consume from a bytesPerSec budget.
// Reads are unthrottled: they are served by primary SSDs and do not
// pressure journals.
func WithRateLimit(dev Device, bytesPerSec float64, clk clock.Clock) Device {
	return &rateLimitedDevice{
		Device: dev,
		bucket: transport.NewTokenBucket(clk, bytesPerSec),
	}
}

func (rd *rateLimitedDevice) WriteAt(p []byte, off int64) error {
	rd.bucket.Take(len(p))
	return rd.Device.WriteAt(p, off)
}
