package client

import (
	"sync"

	"ursa/internal/util"
)

// cacheBlock is the caching granularity.
const cacheBlock = 64 * util.KiB

// cachedDevice is the client-side caching module (§5.1): a write-through
// read cache with LRU eviction at 64 KB block granularity. The paper's
// trace analysis (Fig 2) shows limited read locality below the filesystem
// cache, so this module is optional and off by default — it exists because
// the client's feature set is pluggable, and the cache-hit experiment uses
// the same logic.
type cachedDevice struct {
	Device
	mu       sync.Mutex
	capacity int
	blocks   map[int64][]byte
	lru      []int64 // least-recent first

	// cold is the wrapped device's cold-tier view when it has one (a
	// VDisk cloned from a snapshot): hits over still-cold ranges are the
	// warm tier doing its job and leave a breadcrumb metric.
	cold coldAware

	hits, misses int64
}

// WithCache wraps dev with a read cache of capacityBytes.
func WithCache(dev Device, capacityBytes int64) Device {
	capBlocks := int(capacityBytes / cacheBlock)
	if capBlocks < 1 {
		capBlocks = 1
	}
	ca, _ := dev.(coldAware)
	return &cachedDevice{
		Device:   dev,
		capacity: capBlocks,
		blocks:   make(map[int64][]byte),
		cold:     ca,
	}
}

// CacheStats reports hit/miss counts of a WithCache device.
func CacheStats(dev Device) (hits, misses int64, ok bool) {
	cd, isCache := dev.(*cachedDevice)
	if !isCache {
		return 0, 0, false
	}
	cd.mu.Lock()
	defer cd.mu.Unlock()
	return cd.hits, cd.misses, true
}

func (cd *cachedDevice) ReadAt(p []byte, off int64) error {
	if err := checkRange(off, len(p), cd.Size()); err != nil {
		return err
	}
	for done := 0; done < len(p); {
		blockIdx := (off + int64(done)) / cacheBlock
		blockOff := (off + int64(done)) % cacheBlock
		n := cacheBlock - int(blockOff)
		if n > len(p)-done {
			n = len(p) - done
		}
		block, err := cd.block(blockIdx)
		if err != nil {
			return err
		}
		copy(p[done:done+n], block[blockOff:])
		done += n
	}
	return nil
}

// block returns the cached block, filling it from the lower device on miss.
func (cd *cachedDevice) block(idx int64) ([]byte, error) {
	cd.mu.Lock()
	if b, ok := cd.blocks[idx]; ok {
		cd.hits++
		cd.touchLocked(idx)
		cd.mu.Unlock()
		if cd.cold != nil && cd.cold.IsCold(idx*cacheBlock) {
			cd.cold.noteWarmHit()
		}
		return b, nil
	}
	cd.misses++
	cd.mu.Unlock()

	b := make([]byte, cacheBlock)
	// Clamp the fill at the device end.
	fill := int64(cacheBlock)
	if end := cd.Size() - idx*cacheBlock; end < fill {
		fill = end
	}
	if err := cd.Device.ReadAt(b[:fill], idx*cacheBlock); err != nil {
		return nil, err
	}

	cd.mu.Lock()
	cd.insertLocked(idx, b)
	cd.mu.Unlock()
	return b, nil
}

func (cd *cachedDevice) WriteAt(p []byte, off int64) error {
	// Write-through: update the lower device first, then patch any cached
	// blocks so later reads stay coherent.
	if err := cd.Device.WriteAt(p, off); err != nil {
		return err
	}
	cd.mu.Lock()
	for done := 0; done < len(p); {
		blockIdx := (off + int64(done)) / cacheBlock
		blockOff := (off + int64(done)) % cacheBlock
		n := cacheBlock - int(blockOff)
		if n > len(p)-done {
			n = len(p) - done
		}
		if b, ok := cd.blocks[blockIdx]; ok {
			copy(b[blockOff:], p[done:done+n])
			cd.touchLocked(blockIdx)
		}
		done += n
	}
	cd.mu.Unlock()
	return nil
}

// insertLocked adds a block, evicting the least-recently-used as needed.
func (cd *cachedDevice) insertLocked(idx int64, b []byte) {
	if _, ok := cd.blocks[idx]; ok {
		copy(cd.blocks[idx], b)
		cd.touchLocked(idx)
		return
	}
	for len(cd.blocks) >= cd.capacity && len(cd.lru) > 0 {
		victim := cd.lru[0]
		cd.lru = cd.lru[1:]
		delete(cd.blocks, victim)
	}
	cd.blocks[idx] = b
	cd.lru = append(cd.lru, idx)
}

func (cd *cachedDevice) touchLocked(idx int64) {
	for i, v := range cd.lru {
		if v == idx {
			copy(cd.lru[i:], cd.lru[i+1:])
			cd.lru[len(cd.lru)-1] = idx
			return
		}
	}
}
