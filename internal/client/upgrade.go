package client

import (
	"encoding/json"
	"fmt"

	"ursa/internal/master"
)

// coreState is the serialized client-core status of §5.2: everything the
// "new core process" needs to resume service exactly where the old one
// stopped. Real URSA writes it to a temporary file between the core's exit
// and the shell's exec of the new core; we keep the same save/exit/restore
// cycle in-process.
type coreState struct {
	Meta      master.VDiskMeta   `json:"meta"`
	Next      []uint64           `json:"next"`
	Committed []uint64           `json:"committed"`
	Primary   []int              `json:"primary"`
	ChunkMeta []master.ChunkMeta `json:"chunkMeta"`
}

// UpgradeVDisk performs the client online upgrade of §5.2: the core (i)
// stops receiving new I/O and completes pending requests — our caller
// guarantees quiescence by not issuing I/O during the call, matching the
// VMM-facing pause — (ii) saves its status, and (iii) "exits"; the shell
// then starts the new core, which restores the status and resumes service
// over the same connections. The returned VDisk replaces vd, whose lease
// and identity it inherits; vd itself must not be used afterwards.
func (c *Client) UpgradeVDisk(vd *VDisk) (*VDisk, error) {
	// Step (i)+(ii): freeze the old core and serialize its status.
	state, err := saveCore(vd)
	if err != nil {
		return nil, err
	}
	// Step (iii): old core exits — stop its renewer without releasing the
	// lease (the new core inherits it).
	vd.closed.Store(true)
	if vd.renewStop != nil {
		close(vd.renewStop)
		<-vd.renewDone
	}
	// Shell starts the new core from the saved status.
	return restoreCore(c, state)
}

// saveCore serializes vd's protocol state ("saves its status into a
// temporary file", §5.2).
func saveCore(vd *VDisk) ([]byte, error) {
	st := coreState{
		Meta:      vd.meta,
		Next:      make([]uint64, len(vd.chunks)),
		Committed: make([]uint64, len(vd.chunks)),
		Primary:   make([]int, len(vd.chunks)),
		ChunkMeta: make([]master.ChunkMeta, len(vd.chunks)),
	}
	for i, ch := range vd.chunks {
		ch.mu.Lock()
		st.Next[i] = ch.next
		st.Committed[i] = ch.committed
		st.Primary[i] = ch.primary
		st.ChunkMeta[i] = ch.meta
		ch.mu.Unlock()
	}
	return json.Marshal(st)
}

// restoreCore builds the new core from saved status and resumes service.
func restoreCore(c *Client, data []byte) (*VDisk, error) {
	var st coreState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("client: corrupt core state: %w", err)
	}
	vd := newVDisk(c, st.Meta)
	for i, ch := range vd.chunks {
		ch.next = st.Next[i]
		ch.committed = st.Committed[i]
		ch.primary = st.Primary[i]
		ch.meta = st.ChunkMeta[i]
	}
	vd.startRenewer()
	return vd, nil
}
