package client

import (
	"ursa/internal/master"
	"ursa/internal/util"
)

// fragment is one piece of a block request routed to one chunk.
type fragment struct {
	chunk    int   // chunk index within the vdisk
	chunkOff int64 // byte offset inside the chunk
	bufLo    int   // range within the caller's buffer
	bufHi    int
}

// mapRange splits a vdisk byte range into per-chunk fragments under the
// vdisk's striping geometry (§3.4): groups of StripeGroup consecutive
// chunks are interleaved at StripeUnit granularity, so large requests fan
// out over the group's disks. Contiguous pieces that land adjacently in the
// same chunk are merged, so unstriped vdisks see one fragment per chunk.
func mapRange(meta *master.VDiskMeta, off int64, n int) []fragment {
	g := int64(meta.StripeGroup)
	if g <= 0 {
		g = 1
	}
	u := meta.StripeUnit
	if u <= 0 {
		u = util.ChunkSize
	}
	groupSpan := g * util.ChunkSize

	var frags []fragment
	pos := off
	end := off + int64(n)
	for pos < end {
		groupIdx := pos / groupSpan
		wb := pos % groupSpan // byte offset within the group
		block := wb / u
		lane := block % g
		chunkIdx := int(groupIdx*g + lane)
		chunkOff := (block/g)*u + wb%u

		// The piece runs to the end of this stripe unit at most.
		pieceEnd := pos + (u - wb%u)
		if pieceEnd > end {
			pieceEnd = end
		}
		lo := int(pos - off)
		hi := int(pieceEnd - off)

		// Merge with the previous fragment when chunk-contiguous.
		if k := len(frags) - 1; k >= 0 &&
			frags[k].chunk == chunkIdx &&
			frags[k].chunkOff+int64(frags[k].bufHi-frags[k].bufLo) == chunkOff &&
			frags[k].bufHi == lo {
			frags[k].bufHi = hi
		} else {
			frags = append(frags, fragment{
				chunk:    chunkIdx,
				chunkOff: chunkOff,
				bufLo:    lo,
				bufHi:    hi,
			})
		}
		pos = pieceEnd
	}
	return frags
}
