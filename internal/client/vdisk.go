package client

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/bufpool"
	"ursa/internal/master"
	"ursa/internal/metrics"
	"ursa/internal/opctx"
	"ursa/internal/proto"
	"ursa/internal/redundancy"
	"ursa/internal/transport"
	"ursa/internal/util"
	"ursa/internal/util/backoff"
)

// chunkHandle is the client-side state of one chunk.
type chunkHandle struct {
	mu        sync.Mutex
	meta      master.ChunkMeta
	next      uint64 // next version to assign to a write
	committed uint64 // highest acked version (reads use this)
	primary   int    // replica index currently serving reads/writes
}

// VDiskStats counts client-side activity.
type VDiskStats struct {
	Reads, Writes         int64
	BytesRead, BytesWrite int64
	Retries               int64
	Failovers             int64 // primary switches
	TinyWrites            int64 // client-directed replications
}

// VDisk is an opened virtual disk; it implements Device.
type VDisk struct {
	c      *Client
	meta   master.VDiskMeta
	chunks []*chunkHandle
	wlimit *transport.TokenBucket // master-imposed write budget (§3.2)
	// bcast fans client-directed replication out onto pooled workers with a
	// pooled result collector — no per-write goroutines or channels.
	bcast *transport.Broadcaster

	renewStop chan struct{}
	renewDone chan struct{}
	closed    atomic.Bool
	leaseOK   atomic.Bool

	// Straggler failure reports are fire-and-forget; the dedup below keeps a
	// flapping replica from spawning one report goroutine per failed write
	// (mirroring the chunkserver's per-chunk report cooldown).
	repMu       sync.Mutex
	repInflight map[int]struct{}       // chunk idx -> report in flight
	repLast     map[reportKey]time.Time // last report per (chunk, addr)

	reads, writes         metrics.Counter
	bytesRead, bytesWrite metrics.Counter
	retries, failovers    metrics.Counter
	tinyWrites            metrics.Counter
	// tinyWritesC mirrors tinyWrites into the shared metrics registry
	// ("client-tiny-writes"); nil when the client has no registry.
	tinyWritesC *metrics.Counter
	// coldWarmHits counts cache hits over object-backed ranges
	// ("cold-fetch-hit-warm"); nil when the client has no registry.
	coldWarmHits *metrics.Counter
}

// reportKey identifies one (chunk, failed address) straggler report for
// the cooldown window.
type reportKey struct {
	idx  int
	addr string
}

func newVDisk(c *Client, meta master.VDiskMeta) *VDisk {
	vd := &VDisk{
		c:           c,
		meta:        meta,
		chunks:      make([]*chunkHandle, len(meta.Chunks)),
		bcast:       transport.NewBroadcaster(c.peers),
		repInflight: make(map[int]struct{}),
		repLast:     make(map[reportKey]time.Time),
	}
	for i, cm := range meta.Chunks {
		vd.chunks[i] = &chunkHandle{meta: cm}
	}
	if meta.WriteRateLimit > 0 {
		vd.wlimit = transport.NewTokenBucket(c.cfg.Clock, meta.WriteRateLimit)
	}
	if c.cfg.Metrics != nil {
		vd.tinyWritesC = c.cfg.Metrics.Counter("client-tiny-writes")
		vd.coldWarmHits = c.cfg.Metrics.Counter(MetricColdWarmHits)
	}
	vd.leaseOK.Store(true)
	return vd
}

// Size implements Device.
func (vd *VDisk) Size() int64 { return vd.meta.Size }

// ID returns the vdisk's numeric id.
func (vd *VDisk) ID() uint32 { return vd.meta.ID }

// Meta returns a copy of the vdisk's metadata snapshot from open time.
func (vd *VDisk) Meta() master.VDiskMeta { return vd.meta }

// Flush implements Device; the base vdisk is durable on write return.
func (vd *VDisk) Flush() error { return nil }

// Stats returns a snapshot of client-side counters.
func (vd *VDisk) Stats() VDiskStats {
	return VDiskStats{
		Reads:      vd.reads.Load(),
		Writes:     vd.writes.Load(),
		BytesRead:  vd.bytesRead.Load(),
		BytesWrite: vd.bytesWrite.Load(),
		Retries:    vd.retries.Load(),
		Failovers:  vd.failovers.Load(),
		TinyWrites: vd.tinyWrites.Load(),
	}
}

// confirmVersions implements client initialization (§4.2.1): ask every
// replica of every chunk for its version and view; mismatches are reported
// to the master for repair before the vdisk is used.
func (vd *VDisk) confirmVersions() error {
	sem := make(chan struct{}, 32)
	errs := make(chan error, len(vd.chunks))
	for i := range vd.chunks {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem }()
			errs <- vd.confirmChunk(i)
		}(i)
	}
	for range vd.chunks {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

func (vd *VDisk) confirmChunk(idx int) error {
	ch := vd.chunks[idx]
	// Initialization is maintenance, not a client I/O: no deadline; each
	// probe is still individually bounded by CallTimeout.
	op := vd.c.newOp(0)
	for attempt := 0; attempt < vd.c.cfg.MaxRetries; attempt++ {
		ch.mu.Lock()
		cm := ch.meta
		ch.mu.Unlock()

		versions := make([]uint64, 0, len(cm.Replicas))
		consistent := true
		var failedAddr string
		for _, r := range cm.Replicas {
			resp, err := vd.call(op, r.Addr, &proto.Message{
				Op:    proto.OpGetVersion,
				Chunk: vd.chunkID(idx),
			})
			if err != nil || resp.Status != proto.StatusOK {
				consistent = false
				failedAddr = r.Addr
				break
			}
			if resp.View != cm.View {
				consistent = false
				break
			}
			versions = append(versions, resp.Version)
		}
		if consistent {
			for _, v := range versions[1:] {
				if v != versions[0] {
					consistent = false
					break
				}
			}
		}
		if consistent && len(versions) > 0 {
			ch.mu.Lock()
			ch.next = versions[0]
			ch.committed = versions[0]
			ch.primary = 0
			ch.mu.Unlock()
			return nil
		}
		// Inconsistency: have the master fix it, refresh, retry (§4.2.1).
		if err := vd.reportFailure(nil, idx, failedAddr); err != nil {
			return err
		}
		vd.c.cfg.Clock.Sleep(time.Duration(attempt+1) * time.Millisecond)
	}
	return fmt.Errorf("client: chunk %d never reached a consistent state: %w",
		idx, util.ErrTimeout)
}

func (vd *VDisk) chunkID(idx int) blockstore.ChunkID {
	return blockstore.MakeChunkID(vd.meta.ID, uint32(idx))
}

// call performs one chunk-server RPC on op's behalf through the shared
// peer pool: bounded by the op's remaining budget, capped per attempt at
// CallTimeout. The pool recycles connections on real transport faults but
// not on timeouts or op expiry/cancellation.
func (vd *VDisk) call(op *opctx.Op, addr string, m *proto.Message) (*proto.Message, error) {
	if vd.c.isClosed() {
		return nil, util.ErrClosed
	}
	return vd.c.peers.Do(op, addr, m, vd.c.cfg.CallTimeout)
}

// reportFailure asks the master to run a view change for the chunk and
// installs the returned metadata (§4.2.2).
func (vd *VDisk) reportFailure(op *opctx.Op, idx int, failedAddr string) error {
	// The master holds the report until the chunk's recovery completes, and
	// a recovery (a segment rebuild, or a whole-chunk clone) can outlast an
	// I/O budget. When the report is on an I/O's critical path the wait is
	// bounded by the op's remaining budget: blocking past the deadline
	// helps nobody — the retry loop above is already dead. Maintenance
	// callers pass nil and wait the full MasterTimeout.
	d := vd.c.cfg.MasterTimeout
	if op != nil {
		rem, ok := op.Remaining()
		if ok && rem < d {
			d = rem
		}
		if d <= 0 {
			return op.Err()
		}
	}
	var newMeta master.ChunkMeta
	status, err := vd.c.masterCallT(d, proto.MOpReportFailure, master.ReportFailureReq{
		VDisk:      vd.meta.ID,
		ChunkIndex: uint32(idx),
		FailedAddr: failedAddr,
	}, &newMeta)
	if err != nil {
		return err
	}
	if status != proto.StatusOK {
		return fmt.Errorf("client: report failure for chunk %d: %s", idx, status)
	}
	ch := vd.chunks[idx]
	ch.mu.Lock()
	if newMeta.View > ch.meta.View {
		ch.meta = newMeta
		ch.primary = 0
	}
	ch.mu.Unlock()
	vd.failovers.Add(1)
	return nil
}

// reportFailureAsync files a failure report off the I/O's critical path.
// One report per chunk is in flight at a time, and repeats of the same
// (chunk, address) report within ReportCooldown are dropped — a flapping
// replica under a write-heavy workload would otherwise spawn an unbounded
// herd of reports all asking the master for the same recovery. Surviving
// reports go onto the client's bounded queue behind a single reporter
// goroutine; when the queue is full (a master blackout, typically) the
// report is dropped and counted rather than parked — the next failed I/O
// past the cooldown re-files it.
func (vd *VDisk) reportFailureAsync(idx int, failedAddr string) {
	now := vd.c.cfg.Clock.Now()
	key := reportKey{idx: idx, addr: failedAddr}
	vd.repMu.Lock()
	if _, busy := vd.repInflight[idx]; busy {
		vd.repMu.Unlock()
		return
	}
	if t, ok := vd.repLast[key]; ok && now.Sub(t) < vd.c.cfg.ReportCooldown {
		vd.repMu.Unlock()
		return
	}
	vd.repLast[key] = now
	vd.repInflight[idx] = struct{}{}
	vd.repMu.Unlock()
	select {
	case vd.c.reportCh <- asyncReport{vd: vd, idx: idx, addr: failedAddr}:
	default:
		vd.finishAsyncReport(idx)
		if vd.c.cfg.Metrics != nil {
			vd.c.cfg.Metrics.Counter(MetricFailureReportsDropped).Inc()
		}
	}
}

// finishAsyncReport releases the per-chunk in-flight marker set by
// reportFailureAsync (called by the reporter goroutine, or on drop).
func (vd *VDisk) finishAsyncReport(idx int) {
	vd.repMu.Lock()
	delete(vd.repInflight, idx)
	vd.repMu.Unlock()
}

// refreshMeta re-reads the chunk placement from the master (stale-view
// recovery path).
func (vd *VDisk) refreshMeta(idx int) error {
	var meta master.VDiskMeta
	status, err := vd.c.masterCall(proto.MOpGetVDisk,
		master.GetVDiskReq{ID: vd.meta.ID}, &meta)
	if err != nil {
		return err
	}
	if status != proto.StatusOK || idx >= len(meta.Chunks) {
		return fmt.Errorf("client: refresh chunk %d: %s", idx, status)
	}
	ch := vd.chunks[idx]
	ch.mu.Lock()
	if meta.Chunks[idx].View > ch.meta.View {
		ch.meta = meta.Chunks[idx]
		ch.primary = 0
	}
	ch.mu.Unlock()
	return nil
}

// ReadAt implements Device: fragments the request by striping geometry and
// reads fragments in parallel, preferably from primary (SSD) replicas. The
// whole operation runs under one IOTimeout-budgeted request context.
func (vd *VDisk) ReadAt(p []byte, off int64) error {
	if err := vd.usable(); err != nil {
		return err
	}
	if err := checkRange(off, len(p), vd.meta.Size); err != nil {
		return err
	}
	op := vd.c.newOp(vd.c.cfg.IOTimeout)
	frags := mapRange(&vd.meta, off, len(p))
	err := vd.forEachFragment(frags, func(f fragment) error {
		return vd.readFragment(op, f.chunk, p[f.bufLo:f.bufHi], f.chunkOff)
	})
	if err != nil {
		return err
	}
	vd.reads.Add(1)
	vd.bytesRead.Add(int64(len(p)))
	return nil
}

// WriteAt implements Device: fragments the request; tiny fragments use
// client-directed replication, larger ones go through the primary. The
// whole operation runs under one IOTimeout-budgeted request context; the
// budget starts ticking before rate-limit admission, so a throttled client
// cannot also spend a full budget on the network.
func (vd *VDisk) WriteAt(p []byte, off int64) error {
	if err := vd.usable(); err != nil {
		return err
	}
	if err := checkRange(off, len(p), vd.meta.Size); err != nil {
		return err
	}
	op := vd.c.newOp(vd.c.cfg.IOTimeout)
	if vd.wlimit != nil {
		st := op.Stage(opctx.StageQueue)
		vd.wlimit.Take(len(p))
		st.Stop()
	}
	frags := mapRange(&vd.meta, off, len(p))
	err := vd.forEachFragment(frags, func(f fragment) error {
		return vd.writeFragment(op, f.chunk, p[f.bufLo:f.bufHi], f.chunkOff)
	})
	if err != nil {
		return err
	}
	vd.writes.Add(1)
	vd.bytesWrite.Add(int64(len(p)))
	return nil
}

// forEachFragment runs fn per fragment, in parallel when there are several
// (striping fan-out, §3.4).
func (vd *VDisk) forEachFragment(frags []fragment, fn func(fragment) error) error {
	if len(frags) == 1 {
		return fn(frags[0])
	}
	errs := make(chan error, len(frags))
	for _, f := range frags {
		go func(f fragment) { errs <- fn(f) }(f)
	}
	var first error
	for range frags {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (vd *VDisk) usable() error {
	if vd.closed.Load() {
		return util.ErrClosed
	}
	if !vd.leaseOK.Load() {
		return util.ErrLeaseExpired
	}
	return nil
}

// readFragment reads one chunk-local range, failing over across replicas:
// if the primary is unavailable a mirrored chunk resorts to a backup as
// temporary primary (§4.2.1); an RS chunk — whose backups hold segments,
// not copies — reconstructs the range from the segment holders instead.
// Either way the master is told to recover in parallel.
func (vd *VDisk) readFragment(op *opctx.Op, idx int, buf []byte, off int64) error {
	ch := vd.chunks[idx]
	spec := vd.meta.Redundancy
	var lastErr error
	var corruptErr error
	for attempt := 0; attempt < vd.c.cfg.MaxRetries; attempt++ {
		if err := op.Err(); err != nil {
			// Budget spent or caller gone: retrying would answer nobody.
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		ch.mu.Lock()
		cm := ch.meta
		primary := ch.primary
		version := ch.committed
		ch.mu.Unlock()
		addr := cm.Replicas[primary%len(cm.Replicas)].Addr

		m := proto.GetMessage()
		m.Op = proto.OpRead
		m.Chunk = vd.chunkID(idx)
		m.Off = off
		m.Length = uint32(len(buf))
		m.View = cm.View
		m.Version = version
		resp, err := vd.call(op, addr, m)
		// Consume the response before branching: copy out the payload,
		// capture the status, settle the lease, recycle the frame. Nothing
		// below may read through resp.
		var status proto.Status
		if err == nil {
			status = resp.Status
			if status == proto.StatusOK {
				copy(buf, resp.Payload)
			}
			bufpool.Put(resp.Payload)
			proto.Recycle(resp)
		}
		failover := false
		switch {
		case err != nil:
			lastErr = err
			failover = true
			vd.reportFailureAsync(idx, addr)
		case status == proto.StatusOK:
			return nil
		case status == proto.StatusStaleView:
			lastErr = util.ErrStaleView
			if err := vd.refreshMeta(idx); err != nil {
				lastErr = err
			}
		case status == proto.StatusBehind:
			// Replica lags our committed state: try another.
			lastErr = util.ErrFutureVersion
			failover = true
		case status == proto.StatusCorrupt:
			// The replica's settled re-reads still fail checksums: its copy
			// has rotted on disk. Fail over; when every copy is rotten the
			// caller gets this error, never garbage bytes.
			lastErr = fmt.Errorf("client: read chunk %d from %s: %w", idx, addr, util.ErrCorrupt)
			corruptErr = lastErr
			failover = true
		default:
			lastErr = fmt.Errorf("client: read chunk %d from %s: %s", idx, addr, status)
			failover = true
		}
		if failover {
			if spec.IsRS() {
				// Segment holders cannot serve the chunk range directly;
				// reconstruct it from them and keep the primary pinned.
				if rerr := vd.readDegradedRS(op, idx, cm, spec, buf, off, version); rerr == nil {
					return nil
				} else if lastErr == nil || err != nil || status != proto.StatusCorrupt {
					lastErr = rerr
				}
			} else {
				vd.rotatePrimary(idx, primary)
			}
		}
		vd.retries.Add(1)
		vd.backoff(op, attempt)
	}
	if corruptErr != nil {
		// A replica's settled checksum failure is the load-bearing signal:
		// when every path fails, report the rot, not whatever incidental
		// stale-view or timeout the final attempt happened to race (the
		// master keeps changing views while it tries to heal the chunk).
		return fmt.Errorf("client: read chunk %d failed: %w", idx, corruptErr)
	}
	return fmt.Errorf("client: read chunk %d failed: %w", idx, lastErr)
}

// rotatePrimary switches to the next replica if primary is still current.
// Only mirrored chunks rotate: RS backups hold segments, not copies.
func (vd *VDisk) rotatePrimary(idx, sawPrimary int) {
	ch := vd.chunks[idx]
	ch.mu.Lock()
	if ch.primary == sawPrimary {
		ch.primary = (ch.primary + 1) % len(ch.meta.Replicas)
		vd.failovers.Add(1)
	}
	ch.mu.Unlock()
}

// readDegradedRS serves one chunk-local read while the primary is
// unavailable: each covered data segment is read from its holder, and a
// segment whose holder also fails is decoded from any N of the surviving
// N+M segments. All pieces that feed one decode must agree on the replica
// version — mixed-version pieces decode garbage, so they are discarded and
// the caller retries.
func (vd *VDisk) readDegradedRS(op *opctx.Op, idx int, cm master.ChunkMeta,
	spec redundancy.Spec, buf []byte, off int64, version uint64) error {

	if len(cm.Replicas) != 1+spec.N+spec.M {
		return fmt.Errorf("client: chunk %d has %d replicas, want %d: %w",
			idx, len(cm.Replicas), 1+spec.N+spec.M, util.ErrStaleView)
	}
	for _, pc := range redundancy.PieceRanges(spec, off, len(buf)) {
		dst := buf[pc.BufLo:pc.BufHi]
		if _, err := vd.readPiece(op, idx, cm, pc.Seg, pc.SegOff, dst, version); err == nil {
			continue
		}
		if err := vd.reconstructPiece(op, idx, cm, spec, pc.Seg, pc.SegOff, dst, version); err != nil {
			return err
		}
		vd.failovers.Add(1)
	}
	return nil
}

// readPiece reads [segOff, segOff+len(dst)) of segment seg from its holder
// and reports the version the holder served it at.
func (vd *VDisk) readPiece(op *opctx.Op, idx int, cm master.ChunkMeta,
	seg int, segOff int64, dst []byte, version uint64) (uint64, error) {

	addr := cm.Replicas[1+seg].Addr
	m := proto.GetMessage()
	m.Op = proto.OpRead
	m.Chunk = vd.chunkID(idx)
	m.Off = segOff
	m.Length = uint32(len(dst))
	m.View = cm.View
	m.Version = version
	resp, err := vd.call(op, addr, m)
	if err != nil {
		return 0, err
	}
	status, ver := resp.Status, resp.Version
	if status == proto.StatusOK {
		copy(dst, resp.Payload)
	}
	bufpool.Put(resp.Payload)
	proto.Recycle(resp)
	if status != proto.StatusOK {
		return 0, fmt.Errorf("client: read chunk %d seg %d from %s: %s", idx, seg, addr, status)
	}
	return ver, nil
}

// reconstructPiece decodes [segOff, segOff+len(dst)) of segment want from
// the other segments' holders.
func (vd *VDisk) reconstructPiece(op *opctx.Op, idx int, cm master.ChunkMeta,
	spec redundancy.Spec, want int, segOff int64, dst []byte, version uint64) error {

	code, err := redundancy.NewCode(spec.N, spec.M)
	if err != nil {
		return err
	}
	type piece struct {
		idx  int
		ver  uint64
		data []byte
	}
	total := spec.N + spec.M
	results := make(chan piece, total)
	asked := 0
	for p := 0; p < total; p++ {
		if p == want {
			continue
		}
		asked++
		go func(p int) {
			tmp := make([]byte, len(dst))
			ver, err := vd.readPiece(op, idx, cm, p, segOff, tmp, version)
			if err != nil {
				results <- piece{idx: p}
				return
			}
			results <- piece{idx: p, ver: ver, data: tmp}
		}(p)
	}
	// Group by served version: a decode mixing versions is garbage. With
	// the primary down nothing commits, so in practice all pieces agree.
	byVer := map[uint64]map[int][]byte{}
	for i := 0; i < asked; i++ {
		r := <-results
		if r.data == nil {
			continue
		}
		if byVer[r.ver] == nil {
			byVer[r.ver] = map[int][]byte{}
		}
		byVer[r.ver][r.idx] = r.data
	}
	for _, avail := range byVer {
		if len(avail) >= spec.N {
			return code.Reconstruct(avail, want, dst)
		}
	}
	return fmt.Errorf("client: reconstruct chunk %d seg %d: not enough consistent pieces: %w",
		idx, want, util.ErrNoQuorum)
}

// retryBackoff spaces I/O retry rounds: jitter decorrelates the retry
// herds of fragments that failed together — after a replica dies, every
// fragment's retry would otherwise land on the recovering view at the same
// instant.
var retryBackoff = backoff.Policy{Base: 500 * time.Microsecond}

// backoff sleeps between retry rounds; the wait is admission queueing from
// the op's point of view and never exceeds its remaining budget.
func (vd *VDisk) backoff(op *opctx.Op, attempt int) {
	d := retryBackoff.Delay(op.ID(), attempt)
	if rem, ok := op.Remaining(); ok && rem < d {
		d = rem
	}
	if d <= 0 {
		return
	}
	st := op.Stage(opctx.StageQueue)
	vd.c.cfg.Clock.Sleep(d)
	st.Stop()
}

// writeFragment writes one chunk-local range. The version is assigned
// optimistically under the chunk lock so same-chunk writes pipeline; the
// write then commits by the all-or-majority rule and retries with its
// assigned version until it lands (§4.2.1).
func (vd *VDisk) writeFragment(op *opctx.Op, idx int, data []byte, off int64) error {
	ch := vd.chunks[idx]
	ch.mu.Lock()
	version := ch.next
	ch.next++
	ch.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt < vd.c.cfg.MaxRetries; attempt++ {
		if err := op.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		ch.mu.Lock()
		cm := ch.meta
		healthy := ch.primary == 0
		ch.mu.Unlock()

		var committed bool
		var staleView bool
		if (len(data) <= vd.c.cfg.TinyThreshold || !healthy) && !vd.meta.Redundancy.IsRS() {
			committed, staleView = vd.writeClientDirected(op, idx, cm, data, off, version)
			vd.tinyWrites.Add(1)
			if vd.tinyWritesC != nil {
				vd.tinyWritesC.Add(1)
			}
		} else {
			// RS chunks always write through the primary: only it holds the
			// old data needed to compute parity deltas.
			committed, staleView = vd.writeViaPrimary(op, idx, cm, data, off, version)
		}
		if committed {
			ch.mu.Lock()
			if version+1 > ch.committed {
				ch.committed = version + 1
			}
			ch.mu.Unlock()
			return nil
		}
		lastErr = util.ErrNoQuorum
		if staleView {
			if err := vd.refreshMeta(idx); err != nil {
				lastErr = err
			}
		} else if err := vd.reportFailure(op, idx, ""); err != nil {
			lastErr = err
		}
		vd.retries.Add(1)
		vd.backoff(op, attempt)
	}
	return fmt.Errorf("client: write chunk %d v%d failed: %w", idx, version, lastErr)
}

// writeViaPrimary sends the write to the primary, which replicates it
// within the op's remaining budget.
func (vd *VDisk) writeViaPrimary(op *opctx.Op, idx int, cm master.ChunkMeta, data []byte,
	off int64, version uint64) (committed, staleView bool) {

	addr := cm.Replicas[0].Addr
	m := proto.GetMessage()
	m.Op = proto.OpWrite
	m.Chunk = vd.chunkID(idx)
	m.Off = off
	m.View = cm.View
	m.Version = version
	m.Payload = data
	bufpool.Retain(data) // the call consumes one reference on every path
	resp, err := vd.call(op, addr, m)
	if err != nil {
		vd.reportFailureAsync(idx, addr)
		return false, false
	}
	status := resp.Status
	bufpool.Put(resp.Payload)
	proto.Recycle(resp)
	switch status {
	case proto.StatusOK:
		return true, false
	case proto.StatusStaleView:
		return false, true
	default:
		return false, false
	}
}

// writeClientDirected replicates directly to every replica (tiny writes,
// §3.2; and all writes while the chunk is degraded): commit when all ack,
// or when a majority acks within the timeout (§4.2.1).
func (vd *VDisk) writeClientDirected(op *opctx.Op, idx int, cm master.ChunkMeta, data []byte,
	off int64, version uint64) (committed, staleView bool) {

	var t0 time.Time
	if vd.c.cfg.Metrics != nil {
		t0 = vd.c.cfg.Clock.Now()
	}
	cid := vd.chunkID(idx)
	fl := vd.bcast.Begin(len(cm.Replicas))
	for i, r := range cm.Replicas {
		wireOp := proto.OpReplicate
		if i == 0 {
			wireOp = proto.OpWritePrimary
		}
		m := proto.GetMessage()
		m.Op = wireOp
		m.Chunk = cid
		m.Off = off
		m.View = cm.View
		m.Version = version
		m.Payload = data
		// All branches share one payload; each branch consumes one
		// reference (a no-op for the user's foreign buffer, a real share
		// when a pooled buffer ever flows through here).
		bufpool.Retain(data)
		fl.Go(i, r.Addr, op, vd.c.cfg.CallTimeout, m)
	}
	acks, stales := 0, 0
	for range cm.Replicas {
		r := fl.Next()
		if r.Err {
			continue
		}
		if r.Status == proto.StatusOK {
			acks++
		}
		if r.Status == proto.StatusStaleView {
			stales++
		}
	}
	fl.Finish()
	if vd.c.cfg.Metrics != nil {
		vd.c.cfg.Metrics.ObserveLatency("client-directed-fanout", vd.c.cfg.Clock.Now().Sub(t0))
	}
	if acks == len(cm.Replicas) {
		return true, false
	}
	if acks*2 > len(cm.Replicas) {
		// Majority: committed, but tell the master to fix the stragglers
		// (deduplicated: one in-flight report per chunk, cooldown per key).
		vd.reportFailureAsync(idx, "")
		return true, false
	}
	return false, stales > 0
}

// startRenewer begins periodic lease renewal (§4.1).
func (vd *VDisk) startRenewer() {
	vd.renewStop = make(chan struct{})
	vd.renewDone = make(chan struct{})
	ttl := vd.meta.LeaseTTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	go func() {
		defer close(vd.renewDone)
		for {
			select {
			case <-vd.renewStop:
				return
			case <-vd.c.cfg.Clock.After(ttl / 3):
			}
			status, err := vd.c.masterCall(proto.MOpRenewLease,
				master.LeaseReq{ID: vd.meta.ID, Client: vd.c.cfg.Name}, nil)
			if err == nil && status == proto.StatusLeaseHeld {
				vd.leaseOK.Store(false)
				return
			}
		}
	}()
}

// Close releases the lease and stops renewal. The client's connections stay
// up for other vdisks.
func (vd *VDisk) Close() error {
	if vd.closed.Swap(true) {
		return nil
	}
	if vd.renewStop != nil {
		close(vd.renewStop)
		<-vd.renewDone
	}
	vd.bcast.Close()
	_, _ = vd.c.masterCall(proto.MOpCloseVDisk,
		master.LeaseReq{ID: vd.meta.ID, Client: vd.c.cfg.Name}, nil)
	return nil
}

var _ Device = (*VDisk)(nil)
