package client

import (
	"fmt"

	"ursa/internal/master"
	"ursa/internal/proto"
	"ursa/internal/util"
)

// MetricColdWarmHits counts reads over still-cold (object-backed) ranges
// that the client cache absorbed — each one is a demand fetch the warm tier
// saved the cold tier from serving.
const MetricColdWarmHits = "cold-fetch-hit-warm"

// SnapshotVDisk freezes the named vdisk's current contents as snapshot
// snapName: the master flushes every chunk into immutable object-store
// segments and records the extent table. The source vdisk keeps serving
// I/O throughout; the snapshot is crash-consistent per extent.
func (c *Client) SnapshotVDisk(vdiskName, snapName string) error {
	// A snapshot flushes every chunk of the vdisk through a chunk server
	// into the object store — bandwidth-bound maintenance, not a metadata
	// lookup — so it gets a far larger budget than MasterTimeout.
	status, err := c.masterCallT(40*c.cfg.MasterTimeout, proto.MOpSnapshot,
		master.SnapshotReq{VDisk: vdiskName, Name: snapName}, nil)
	if err != nil {
		return err
	}
	switch status {
	case proto.StatusOK:
		return nil
	case proto.StatusExists:
		return fmt.Errorf("client: snapshot %q: %w", snapName, util.ErrExists)
	case proto.StatusNotFound:
		return fmt.Errorf("client: snapshot %q of %q: %w", snapName, vdiskName, util.ErrNotFound)
	default:
		return fmt.Errorf("client: snapshot %q of %q: %s", snapName, vdiskName, status)
	}
}

// CloneFromSnapshot provisions a new vdisk as a thin clone of a snapshot.
// The call is O(metadata): chunks are created object-backed and pull their
// bytes from the snapshot's segments on first access (copy-on-write at
// extent granularity).
func (c *Client) CloneFromSnapshot(req master.CloneReq) (*master.VDiskMeta, error) {
	var meta master.VDiskMeta
	status, err := c.masterCall(proto.MOpCloneFromSnapshot, req, &meta)
	if err != nil {
		return nil, err
	}
	switch status {
	case proto.StatusOK:
		return &meta, nil
	case proto.StatusExists:
		return nil, fmt.Errorf("client: clone %q: %w", req.Name, util.ErrExists)
	case proto.StatusNotFound:
		return nil, fmt.Errorf("client: clone %q from %q: %w", req.Name, req.Snapshot, util.ErrNotFound)
	case proto.StatusQuota:
		return nil, fmt.Errorf("client: clone %q: %w", req.Name, util.ErrQuota)
	default:
		return nil, fmt.Errorf("client: clone %q from %q: %s", req.Name, req.Snapshot, status)
	}
}

// DeleteSnapshot removes a snapshot's metadata; its segments become garbage
// the master's cold GC reclaims (except extents still referenced by
// unmaterialized clones, which GC keeps live).
func (c *Client) DeleteSnapshot(name string) error {
	status, err := c.masterCall(proto.MOpDeleteSnapshot,
		master.SnapshotReq{Name: name}, nil)
	if err != nil {
		return err
	}
	switch status {
	case proto.StatusOK:
		return nil
	case proto.StatusNotFound:
		return fmt.Errorf("client: snapshot %q: %w", name, util.ErrNotFound)
	default:
		return fmt.Errorf("client: delete snapshot %q: %s", name, status)
	}
}

// coldAware is the optional interface the cache probes on its wrapped
// device to attribute hits to the warm tier (see cachedDevice.block).
type coldAware interface {
	// IsCold reports whether the byte at off is still object-backed.
	IsCold(off int64) bool
	// noteWarmHit records one cache hit over a cold range.
	noteWarmHit()
}

// IsCold reports whether the byte at off maps to a chunk range that is
// still object-backed under the client's view of the metadata. The view
// lags the servers' (refs clear on view refresh after the replicas report
// materialization), so a true here is "possibly cold" — exactly what the
// warm-tier breadcrumb wants.
func (vd *VDisk) IsCold(off int64) bool {
	if off < 0 || off >= vd.meta.Size {
		return false
	}
	frags := mapRange(&vd.meta, off, 1)
	if len(frags) == 0 || frags[0].chunk >= len(vd.chunks) {
		return false
	}
	f := frags[0]
	ch := vd.chunks[f.chunk]
	ch.mu.Lock()
	defer ch.mu.Unlock()
	for _, r := range ch.meta.Cold {
		if r.Overlaps(f.chunkOff, 1) {
			return true
		}
	}
	return false
}

func (vd *VDisk) noteWarmHit() {
	if vd.coldWarmHits != nil {
		vd.coldWarmHits.Inc()
	}
}

var _ coldAware = (*VDisk)(nil)
