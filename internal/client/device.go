// Package client implements URSA's richly-featured client (§5.1): the
// portal that exposes a block interface to VMMs and carries the protocol
// smarts — striping, client-directed replication of tiny writes, primary
// switching, lease renewal, and failure reporting — so chunk servers stay
// simple and stateless toward clients.
//
// Features beyond the core block path are pluggable modules following the
// decorator pattern around the Device interface, exactly as §5.1
// prescribes: WithCache, WithRateLimit, and Snapshot all wrap any Device.
package client

import (
	"fmt"

	"ursa/internal/util"
)

// Device is the abstract block device every client module implements and
// wraps. All offsets and sizes are sector-aligned (512 B).
type Device interface {
	// ReadAt fills p from the device at byte offset off.
	ReadAt(p []byte, off int64) error
	// WriteAt stores p at byte offset off.
	WriteAt(p []byte, off int64) error
	// Size returns the device capacity in bytes.
	Size() int64
	// Flush forces buffered state down the stack (modules may buffer;
	// the base VDisk is always durable on write return).
	Flush() error
	// Close releases the device.
	Close() error
}

// checkRange validates a sector-aligned request against a device size.
func checkRange(off int64, n int, size int64) error {
	if off < 0 || n <= 0 || off%util.SectorSize != 0 || n%util.SectorSize != 0 ||
		off+int64(n) > size {
		return fmt.Errorf("client: bad range [%d,%d) on device of %d: %w",
			off, off+int64(n), size, util.ErrOutOfRange)
	}
	return nil
}
