package client

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/chunkserver"
	"ursa/internal/clock"
	"ursa/internal/journal"
	"ursa/internal/master"
	"ursa/internal/metrics"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// env is a master + chunk servers cluster for client-level tests.
type env struct {
	net *transport.SimNet
	m   *master.Master
	clk *clock.Scaled
}

func fastSSD() simdisk.SSDModel {
	return simdisk.SSDModel{
		Capacity: 2 * util.GiB, Parallelism: 32,
		ReadLatency: 2 * time.Microsecond, WriteLatency: 4 * time.Microsecond,
		ReadBandwidth: 20e9, WriteBandwidth: 12e9,
	}
}

func fastHDD() simdisk.HDDModel {
	return simdisk.HDDModel{
		Capacity: 4 * util.GiB, SeekMax: 400 * time.Microsecond,
		SeekSettle: 25 * time.Microsecond, RPM: 288000,
		Bandwidth: 6e9, TrackSkip: 512 * util.KiB,
	}
}

func newEnv(t *testing.T) *env {
	t.Helper()
	clk := clock.NewScaled(0.05)
	net := transport.NewSimNet(clk, time.Microsecond)
	e := &env{net: net, clk: clk}

	ml, err := net.Listen("master", transport.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	e.m = master.New(master.Config{
		Addr: "master", Clock: clk,
		Dialer:     net.Dialer("master", transport.NodeConfig{}),
		HybridMode: true, LeaseTTL: 5 * time.Second,
		RPCTimeout: 2 * time.Second,
	})
	e.m.Serve(ml)
	t.Cleanup(e.m.Close)

	for i := 0; i < 4; i++ {
		machine := "m" + string(rune('0'+i))
		mk := func(addr string, role chunkserver.Role) {
			var store *blockstore.Store
			var jset *journal.Set
			if role == chunkserver.RolePrimary {
				store = blockstore.New(simdisk.NewSSD(fastSSD(), clk), 0)
			} else {
				hdd := simdisk.NewHDD(fastHDD(), clk)
				store = blockstore.New(hdd, util.AlignDown(hdd.Size()/2, util.ChunkSize))
				jset = journal.NewSet(clk, store, journal.DefaultConfig())
				jset.AddSSDJournal(addr+"-j", simdisk.NewSSD(fastSSD(), clk), 0, 64*util.MiB)
				jset.Start()
			}
			srv := chunkserver.New(chunkserver.Config{
				Addr: addr, Role: role, Clock: clk,
				Dialer:      net.Dialer(addr, transport.NodeConfig{}),
				ReplTimeout: 100 * time.Millisecond,
			}, store, jset)
			l, err := net.Listen(addr, transport.NodeConfig{})
			if err != nil {
				t.Fatal(err)
			}
			srv.Serve(l)
			t.Cleanup(srv.Close)
			e.m.AddServer(addr, machine, role == chunkserver.RolePrimary)
		}
		mk(machine+"/ssd", chunkserver.RolePrimary)
		mk(machine+"/hdd", chunkserver.RoleBackup)
	}
	return e
}

func (e *env) client(t *testing.T, name string) *Client {
	t.Helper()
	cl := New(Config{
		Name: name, MasterAddr: "master", Clock: e.clk,
		Dialer:      e.net.Dialer("client-"+name, transport.NodeConfig{}),
		CallTimeout: 300 * time.Millisecond,
	})
	t.Cleanup(cl.Close)
	return cl
}

func (e *env) vdisk(t *testing.T, cl *Client, name string, size int64) *VDisk {
	t.Helper()
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: name, Size: size}); err != nil {
		t.Fatal(err)
	}
	vd, err := cl.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vd.Close() })
	return vd
}

func TestClientRoundTripAndStats(t *testing.T) {
	e := newEnv(t)
	cl := e.client(t, "a")
	vd := e.vdisk(t, cl, "d", 128*util.MiB)

	data := make([]byte, 4*util.KiB)
	util.NewRand(1).Fill(data)
	if err := vd.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := vd.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
	st := vd.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.TinyWrites != 1 {
		t.Errorf("stats = %+v", st)
	}
	if vd.ID() == 0 || vd.Meta().Name != "d" {
		t.Error("metadata accessors wrong")
	}
}

func TestClientRegistryMetrics(t *testing.T) {
	e := newEnv(t)
	reg := metrics.NewRegistry()
	cl := New(Config{
		Name: "m", MasterAddr: "master", Clock: e.clk,
		Dialer:      e.net.Dialer("client-m", transport.NodeConfig{}),
		CallTimeout: 300 * time.Millisecond,
		Metrics:     reg,
	})
	t.Cleanup(cl.Close)
	vd := e.vdisk(t, cl, "d", 128*util.MiB)

	data := make([]byte, 4*util.KiB)
	util.NewRand(3).Fill(data)
	for i := 0; i < 3; i++ {
		if err := vd.WriteAt(data, int64(i)*int64(len(data))); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("client-tiny-writes").Load(); got != 3 {
		t.Errorf("client-tiny-writes = %d, want 3", got)
	}
	h := reg.LatencyHist("client-directed-fanout")
	if h == nil || h.Count() != 3 {
		t.Errorf("client-directed-fanout hist = %v", h)
	}
}

func TestClientLargeWriteViaPrimary(t *testing.T) {
	e := newEnv(t)
	cl := e.client(t, "a")
	vd := e.vdisk(t, cl, "d", 128*util.MiB)
	data := make([]byte, 256*util.KiB)
	util.NewRand(2).Fill(data)
	if err := vd.WriteAt(data, util.MiB); err != nil {
		t.Fatal(err)
	}
	if vd.Stats().TinyWrites != 0 {
		t.Error("large write took the tiny path")
	}
	got := make([]byte, len(data))
	if err := vd.ReadAt(got, util.MiB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("large round trip mismatch")
	}
}

func TestClientFailoverToBackup(t *testing.T) {
	e := newEnv(t)
	cl := e.client(t, "a")
	vd := e.vdisk(t, cl, "d", util.ChunkSize)
	data := make([]byte, 8*util.KiB)
	util.NewRand(3).Fill(data)
	if err := vd.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	meta, err := cl.OpenMeta("d")
	if err != nil {
		t.Fatal(err)
	}
	e.net.Crash(meta.Chunks[0].Replicas[0].Addr)
	got := make([]byte, len(data))
	if err := vd.ReadAt(got, 0); err != nil {
		t.Fatalf("read after crash: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("backup data mismatch")
	}
	if vd.Stats().Failovers == 0 {
		t.Error("no failover recorded")
	}
}

func TestClientErrors(t *testing.T) {
	e := newEnv(t)
	cl := e.client(t, "a")
	if _, err := cl.Open("missing"); !errors.Is(err, util.ErrNotFound) {
		t.Errorf("open missing: %v", err)
	}
	if _, err := cl.OpenMeta("missing"); !errors.Is(err, util.ErrNotFound) {
		t.Errorf("openmeta missing: %v", err)
	}
	if err := cl.DeleteVDisk("missing"); !errors.Is(err, util.ErrNotFound) {
		t.Errorf("delete missing: %v", err)
	}
	e.vdisk(t, cl, "d", util.ChunkSize)
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "d", Size: util.ChunkSize}); !errors.Is(err, util.ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
	cl2 := e.client(t, "b")
	if _, err := cl2.Open("d"); !errors.Is(err, util.ErrLeaseHeld) {
		t.Errorf("lease: %v", err)
	}
}

func TestClientClosedVDisk(t *testing.T) {
	e := newEnv(t)
	cl := e.client(t, "a")
	vd := e.vdisk(t, cl, "d", util.ChunkSize)
	vd.Close()
	if err := vd.WriteAt(make([]byte, 512), 0); !errors.Is(err, util.ErrClosed) {
		t.Errorf("write after close: %v", err)
	}
	// Close is idempotent.
	if err := vd.Close(); err != nil {
		t.Error(err)
	}
}

func TestClientUpgradePreservesState(t *testing.T) {
	e := newEnv(t)
	cl := e.client(t, "a")
	vd := e.vdisk(t, cl, "d", util.ChunkSize)
	data := make([]byte, 4*util.KiB)
	util.NewRand(4).Fill(data)
	if err := vd.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	vd2, err := cl.UpgradeVDisk(vd)
	if err != nil {
		t.Fatal(err)
	}
	defer vd2.Close()
	got := make([]byte, len(data))
	if err := vd2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("upgrade lost state")
	}
	// Writes continue with preserved version counters.
	if err := vd2.WriteAt(data, 8192); err != nil {
		t.Fatal(err)
	}
}

func TestCacheModule(t *testing.T) {
	e := newEnv(t)
	cl := e.client(t, "a")
	vd := e.vdisk(t, cl, "d", 64*util.MiB)
	dev := WithCache(vd, 2*util.MiB)

	data := make([]byte, 8*util.KiB)
	util.NewRand(5).Fill(data)
	if err := dev.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := dev.ReadAt(got, 0); err != nil { // miss, fills cache
		t.Fatal(err)
	}
	if err := dev.ReadAt(got, 0); err != nil { // hit
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cached read mismatch")
	}
	hits, misses, ok := CacheStats(dev)
	if !ok || hits == 0 || misses == 0 {
		t.Errorf("cache stats = %d/%d/%v", hits, misses, ok)
	}
	// Write-through keeps cache coherent.
	data2 := make([]byte, 8*util.KiB)
	util.NewRand(6).Fill(data2)
	if err := dev.WriteAt(data2, 0); err != nil {
		t.Fatal(err)
	}
	if err := dev.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data2) {
		t.Error("cache served stale data after write")
	}
	if _, _, ok := CacheStats(vd); ok {
		t.Error("CacheStats on non-cache device")
	}
}

func TestCacheEviction(t *testing.T) {
	e := newEnv(t)
	cl := e.client(t, "a")
	vd := e.vdisk(t, cl, "d", 64*util.MiB)
	// Capacity of exactly 2 blocks.
	dev := WithCache(vd, 2*cacheBlock)
	buf := make([]byte, cacheBlock)
	for i := int64(0); i < 4; i++ {
		if err := dev.ReadAt(buf, i*cacheBlock); err != nil {
			t.Fatal(err)
		}
	}
	_, misses, _ := CacheStats(dev)
	if misses != 4 {
		t.Errorf("misses = %d, want 4 (cold)", misses)
	}
	// Oldest blocks evicted: re-reading block 0 must miss again.
	if err := dev.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	_, misses2, _ := CacheStats(dev)
	if misses2 != 5 {
		t.Errorf("misses after eviction = %d, want 5", misses2)
	}
}

func TestRateLimitModule(t *testing.T) {
	e := newEnv(t)
	cl := e.client(t, "a")
	vd := e.vdisk(t, cl, "d", 64*util.MiB)
	// 1 MB/s budget: 256 KB of writes should take ≥ ~200ms wall.
	dev := WithRateLimit(vd, 1e6, clock.Realtime)
	start := time.Now()
	buf := make([]byte, 64*util.KiB)
	for i := int64(0); i < 4; i++ {
		if err := dev.WriteAt(buf, i*int64(len(buf))); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("rate limit not applied: %v", elapsed)
	}
}

func TestSnapshotSizeMismatch(t *testing.T) {
	e := newEnv(t)
	cl := e.client(t, "a")
	src := e.vdisk(t, cl, "src", 128*util.MiB)
	dst := e.vdisk(t, cl, "dst", 64*util.MiB)
	if err := Snapshot(src, dst); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("snapshot into smaller device: %v", err)
	}
}

func TestLeaseLostStopsIO(t *testing.T) {
	e := newEnv(t)
	cl := e.client(t, "a")
	vd := e.vdisk(t, cl, "d", util.ChunkSize)
	// Simulate a lost lease (the renewer would set this on StatusLeaseHeld).
	vd.leaseOK.Store(false)
	if err := vd.WriteAt(make([]byte, 512), 0); !errors.Is(err, util.ErrLeaseExpired) {
		t.Errorf("write with lost lease: %v", err)
	}
}
