package client

import (
	"fmt"

	"ursa/internal/util"
)

// snapshotCopySize is the transfer granularity of snapshot copies.
const snapshotCopySize = 1 * util.MiB

// Snapshot copies the full contents of src onto dst (§5.1's snapshot module
// in its simplest, consistent form: the caller quiesces writes — trivially
// true under the single-client property — and clones the device). dst must
// be at least as large as src.
func Snapshot(src, dst Device) error {
	if dst.Size() < src.Size() {
		return fmt.Errorf("client: snapshot target %d < source %d: %w",
			dst.Size(), src.Size(), util.ErrOutOfRange)
	}
	buf := make([]byte, snapshotCopySize)
	for off := int64(0); off < src.Size(); off += snapshotCopySize {
		n := snapshotCopySize
		if rem := src.Size() - off; rem < int64(n) {
			n = int(rem)
		}
		if err := src.ReadAt(buf[:n], off); err != nil {
			return fmt.Errorf("client: snapshot read at %d: %w", off, err)
		}
		if err := dst.WriteAt(buf[:n], off); err != nil {
			return fmt.Errorf("client: snapshot write at %d: %w", off, err)
		}
	}
	return dst.Flush()
}
