package workload

import (
	"sync"
	"testing"
	"time"

	"ursa/internal/clock"
	"ursa/internal/trace"
	"ursa/internal/util"
)

// memDevice is an in-memory device with an optional fixed op latency.
type memDevice struct {
	mu      sync.Mutex
	data    []byte
	latency time.Duration
	clk     clock.Clock
	reads   int
	writes  int
}

func newMemDevice(size int64, lat time.Duration) *memDevice {
	return &memDevice{data: make([]byte, size), latency: lat, clk: clock.Realtime}
}

func (d *memDevice) ReadAt(p []byte, off int64) error {
	if d.latency > 0 {
		d.clk.Sleep(d.latency)
	}
	d.mu.Lock()
	copy(p, d.data[off:])
	d.reads++
	d.mu.Unlock()
	return nil
}

func (d *memDevice) WriteAt(p []byte, off int64) error {
	if d.latency > 0 {
		d.clk.Sleep(d.latency)
	}
	d.mu.Lock()
	copy(d.data[off:], p)
	d.writes++
	d.mu.Unlock()
	return nil
}

func (d *memDevice) Size() int64 { return int64(len(d.data)) }

func TestRunCounts(t *testing.T) {
	dev := newMemDevice(16*util.MiB, 0)
	res := Run(clock.Realtime, dev, Spec{
		Pattern: RandWrite, BlockSize: 4096, QueueDepth: 4, Ops: 500, Seed: 1,
	})
	if res.Ops != 500 || res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Bytes != 500*4096 {
		t.Errorf("bytes = %d", res.Bytes)
	}
	if res.IOPS() <= 0 || res.Lat.Count() != 500 {
		t.Error("rates not computed")
	}
	if res.String() == "" {
		t.Error("empty summary")
	}
}

func TestRunPatterns(t *testing.T) {
	for _, p := range []Pattern{RandRead, RandWrite, SeqRead, SeqWrite, Mixed} {
		dev := newMemDevice(4*util.MiB, 0)
		res := Run(clock.Realtime, dev, Spec{
			Pattern: p, BlockSize: 4096, QueueDepth: 2, Ops: 100,
			ReadFraction: 0.5, Seed: 2,
		})
		if res.Ops != 100 {
			t.Errorf("%v: ops = %d", p, res.Ops)
		}
		dev.mu.Lock()
		r, w := dev.reads, dev.writes
		dev.mu.Unlock()
		switch p {
		case RandRead, SeqRead:
			if w != 0 {
				t.Errorf("%v issued %d writes", p, w)
			}
		case RandWrite, SeqWrite:
			if r != 0 {
				t.Errorf("%v issued %d reads", p, r)
			}
		case Mixed:
			if r == 0 || w == 0 {
				t.Errorf("Mixed: reads=%d writes=%d", r, w)
			}
		}
	}
}

func TestRunQueueDepthParallelism(t *testing.T) {
	// With a 2ms per-op device, 64 ops at qd8 should take ≈16ms, not
	// 128ms.
	dev := newMemDevice(4*util.MiB, 2*time.Millisecond)
	res := Run(clock.Realtime, dev, Spec{
		Pattern: RandRead, BlockSize: 4096, QueueDepth: 8, Ops: 64, Seed: 3,
	})
	if res.Elapsed > 80*time.Millisecond {
		t.Errorf("qd8 run took %v; queue depth not parallel", res.Elapsed)
	}
	if res.Lat.Mean() < time.Millisecond {
		t.Errorf("latency %v below device latency", res.Lat.Mean())
	}
}

func TestRunFill(t *testing.T) {
	dev := newMemDevice(2*util.MiB, 0)
	Run(clock.Realtime, dev, Spec{
		Pattern: RandRead, BlockSize: 4096, QueueDepth: 1, Ops: 10,
		Fill: true, Seed: 4,
	})
	// Fill must have written the working set.
	nonzero := false
	for _, b := range dev.data[:4096] {
		if b != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Error("Fill did not write data")
	}
}

func TestSeqPatternIsSequential(t *testing.T) {
	dev := newMemDevice(util.MiB, 0)
	Run(clock.Realtime, dev, Spec{
		Pattern: SeqWrite, BlockSize: 4096, QueueDepth: 1, Ops: 64, Seed: 5,
	})
	// With qd=1, all 64 writes land on consecutive blocks (wrapping).
	dev.mu.Lock()
	defer dev.mu.Unlock()
	if dev.writes != 64 {
		t.Fatalf("writes = %d", dev.writes)
	}
}

func TestReplay(t *testing.T) {
	dev := newMemDevice(8*util.MiB, 0)
	recs := trace.Profile{
		Name: "t", ReadFraction: 0.5, VolumeSize: 8 * util.MiB,
	}.Generate(6, 300)
	res := Replay(clock.Realtime, dev, recs, 4)
	if res.Ops != 300 || res.Errors != 0 {
		t.Fatalf("replay = %+v", res)
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Errorf("reads=%d writes=%d", res.Reads, res.Writes)
	}
}

func TestReplayClipsOutOfRange(t *testing.T) {
	dev := newMemDevice(util.MiB, 0)
	recs := []trace.Record{
		{Off: 100 * util.MiB, Size: 4096},    // far out of range
		{Off: 0, Size: 8 * util.MiB},         // bigger than device
		{Off: util.MiB - 512, Size: 513},     // straddles the end
		{Write: true, Off: 12345, Size: 100}, // unaligned
	}
	res := Replay(clock.Realtime, dev, recs, 2)
	if res.Errors != 0 {
		t.Fatalf("clip failed: %+v", res)
	}
}

func TestPatternStrings(t *testing.T) {
	for _, p := range []Pattern{RandRead, RandWrite, SeqRead, SeqWrite, Mixed} {
		if p.String() == "" {
			t.Error("empty pattern name")
		}
	}
}
