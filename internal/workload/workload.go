// Package workload is the fio-style load generator of the evaluation: it
// drives any block device (URSA vdisks, baseline volumes, cloud profile
// devices) with the paper's micro-benchmark patterns — random/sequential
// reads/writes at a block size and queue depth — and with trace replays,
// collecting IOPS, throughput and latency histograms.
package workload

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ursa/internal/clock"
	"ursa/internal/trace"
	"ursa/internal/util"
)

// Device is the minimal block target.
type Device interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
	Size() int64
}

// Pattern selects the access pattern.
type Pattern int

// Access patterns (§6.1's micro-benchmarks).
const (
	RandRead Pattern = iota
	RandWrite
	SeqRead
	SeqWrite
	Mixed // ReadFraction controls the mix; offsets random
)

func (p Pattern) String() string {
	switch p {
	case RandRead:
		return "randread"
	case RandWrite:
		return "randwrite"
	case SeqRead:
		return "seqread"
	case SeqWrite:
		return "seqwrite"
	default:
		return "mixed"
	}
}

// Spec describes one run.
type Spec struct {
	Pattern   Pattern
	BlockSize int
	// QueueDepth is the number of concurrent issuing workers (the paper's
	// qd, bounded at 16 by QEMU's NBD driver).
	QueueDepth int
	// Ops is the total operation budget.
	Ops int
	// WorkingSet restricts offsets to the device's first WorkingSet bytes
	// (0 = whole device).
	WorkingSet int64
	// ReadFraction applies to Mixed.
	ReadFraction float64
	// Seed makes runs reproducible.
	Seed uint64
	// Fill pre-writes the working set so reads hit real data.
	Fill bool
	// MaxTime stops issuing new ops after this much model time even if
	// the op budget is not exhausted (0 = no cap). Results stay valid:
	// rates are computed over completed ops and actual elapsed time.
	MaxTime time.Duration
}

// Result summarizes a run.
type Result struct {
	Spec    Spec
	Ops     int64
	Bytes   int64
	Errors  int64
	Elapsed time.Duration // model time
	Lat     *util.Hist
}

// IOPS returns operations per second of model time.
func (r Result) IOPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// MBps returns throughput in MB/s of model time.
func (r Result) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s bs=%s qd=%d: %s IOPS, %.1f MB/s, lat %v/%v (mean/p99)",
		r.Spec.Pattern, util.FormatBytes(int64(r.Spec.BlockSize)), r.Spec.QueueDepth,
		util.FormatCount(r.IOPS()), r.MBps(), r.Lat.Mean(), r.Lat.Quantile(0.99))
}

// Run executes the spec against dev on clk.
func Run(clk clock.Clock, dev Device, spec Spec) Result {
	if spec.BlockSize <= 0 {
		spec.BlockSize = 4 * util.KiB
	}
	if spec.QueueDepth <= 0 {
		spec.QueueDepth = 1
	}
	if spec.Ops <= 0 {
		spec.Ops = 1000
	}
	ws := spec.WorkingSet
	if ws <= 0 || ws > dev.Size() {
		ws = dev.Size()
	}
	ws = util.AlignDown(ws, int64(spec.BlockSize))
	if ws < int64(spec.BlockSize) {
		ws = int64(spec.BlockSize)
	}

	if spec.Fill {
		fill(dev, ws, spec.BlockSize, spec.Seed)
	}

	res := Result{Spec: spec, Lat: util.NewHist()}
	var opCounter atomic.Int64
	var bytesDone, errs atomic.Int64
	var seqCursor atomic.Int64

	start := clk.Now()
	var deadline time.Time
	if spec.MaxTime > 0 {
		deadline = start.Add(spec.MaxTime)
	}
	var wg sync.WaitGroup
	for w := 0; w < spec.QueueDepth; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := util.NewRand(spec.Seed + uint64(w)*7919)
			buf := make([]byte, spec.BlockSize)
			r.Fill(buf)
			for {
				n := opCounter.Add(1)
				if n > int64(spec.Ops) {
					return
				}
				if !deadline.IsZero() && clk.Now().After(deadline) {
					return
				}
				var off int64
				write := false
				switch spec.Pattern {
				case RandRead:
					off = randOff(r, ws, spec.BlockSize)
				case RandWrite:
					off = randOff(r, ws, spec.BlockSize)
					write = true
				case SeqRead, SeqWrite:
					off = (seqCursor.Add(int64(spec.BlockSize)) - int64(spec.BlockSize)) % ws
					write = spec.Pattern == SeqWrite
				case Mixed:
					off = randOff(r, ws, spec.BlockSize)
					write = r.Float64() >= spec.ReadFraction
				}
				t0 := clk.Now()
				var err error
				if write {
					err = dev.WriteAt(buf, off)
				} else {
					err = dev.ReadAt(buf, off)
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				res.Lat.Observe(clk.Now().Sub(t0))
				bytesDone.Add(int64(spec.BlockSize))
			}
		}(w)
	}
	wg.Wait()
	res.Elapsed = clk.Now().Sub(start)
	res.Ops = res.Lat.Count()
	res.Bytes = bytesDone.Load()
	res.Errors = errs.Load()
	return res
}

func randOff(r *util.Rand, ws int64, bs int) int64 {
	blocks := ws / int64(bs)
	return r.Int63n(blocks) * int64(bs)
}

// fill pre-writes the working set with 1 MiB sequential writes.
func fill(dev Device, ws int64, bs int, seed uint64) {
	const chunk = util.MiB
	buf := make([]byte, chunk)
	util.NewRand(seed ^ 0xf111).Fill(buf)
	for off := int64(0); off < ws; off += chunk {
		n := int64(chunk)
		if ws-off < n {
			n = ws - off
		}
		_ = dev.WriteAt(buf[:n], off)
	}
}

// ReplayResult extends Result with per-kind counts for trace replays.
type ReplayResult struct {
	Result
	Reads, Writes int64
}

// Replay issues the trace's records against dev with the given queue
// depth, ignoring timestamps — the paper's custom replay tool (§6.4).
// Records are clipped to the device size and sector-aligned.
func Replay(clk clock.Clock, dev Device, records []trace.Record, queueDepth int) ReplayResult {
	if queueDepth <= 0 {
		queueDepth = 16
	}
	res := ReplayResult{Result: Result{Lat: util.NewHist()}}
	var idx atomic.Int64
	var bytesDone, errs, reads, writes atomic.Int64

	start := clk.Now()
	var wg sync.WaitGroup
	for w := 0; w < queueDepth; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []byte
			for {
				i := int(idx.Add(1)) - 1
				if i >= len(records) {
					return
				}
				rec := clip(records[i], dev.Size())
				if rec.Size == 0 {
					continue
				}
				if cap(buf) < rec.Size {
					buf = make([]byte, rec.Size)
				}
				b := buf[:rec.Size]
				t0 := clk.Now()
				var err error
				if rec.Write {
					err = dev.WriteAt(b, rec.Off)
					writes.Add(1)
				} else {
					err = dev.ReadAt(b, rec.Off)
					reads.Add(1)
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				res.Lat.Observe(clk.Now().Sub(t0))
				bytesDone.Add(int64(rec.Size))
			}
		}()
	}
	wg.Wait()
	res.Elapsed = clk.Now().Sub(start)
	res.Ops = res.Lat.Count()
	res.Bytes = bytesDone.Load()
	res.Errors = errs.Load()
	res.Reads = reads.Load()
	res.Writes = writes.Load()
	return res
}

// clip aligns and bounds a record to the device.
func clip(rec trace.Record, size int64) trace.Record {
	rec.Off = util.AlignDown(rec.Off, util.SectorSize)
	rec.Size = int(util.AlignUp(int64(rec.Size), util.SectorSize))
	if rec.Size == 0 {
		rec.Size = util.SectorSize
	}
	if int64(rec.Size) > size {
		rec.Size = util.SectorSize
	}
	if rec.Off+int64(rec.Size) > size {
		rec.Off = rec.Off % (size - int64(rec.Size) + 1)
		rec.Off = util.AlignDown(rec.Off, util.SectorSize)
	}
	return rec
}
