// Package linearize checks per-chunk linearizability of URSA histories
// (§4, Appendix A). Under the single-client property the condition is
// simple to state and strong to check: a read must return, for every
// sector, the data of the most recent committed write — except that a
// write whose outcome the client never learned (a crash or timeout) may
// legitimately be either applied or not until a later operation resolves
// it.
package linearize

import (
	"fmt"

	"ursa/internal/util"
)

// sectorState is what a sector may legally contain.
type sectorState struct {
	committed byte // fingerprint of the last committed write
	pending   byte // fingerprint of an unresolved write, valid when hasPending
	hasPend   bool
}

// Checker validates a single-client history over one address space.
// Fingerprints compress sector contents to one byte via checksum, which is
// enough to catch stale or lost data with overwhelming probability when
// writers use distinct payloads.
type Checker struct {
	sectors map[int64]*sectorState
}

// New returns an empty checker (all sectors initially zero).
func New() *Checker {
	return &Checker{sectors: make(map[int64]*sectorState)}
}

func fingerprint(b []byte) byte {
	return byte(util.Checksum(b))
}

func (c *Checker) state(sec int64) *sectorState {
	s, ok := c.sectors[sec]
	if !ok {
		s = &sectorState{committed: fingerprint(make([]byte, util.SectorSize))}
		c.sectors[sec] = s
	}
	return s
}

// forEachSector walks the sector-aligned range.
func forEachSector(off int64, data []byte, fn func(sec int64, chunk []byte)) {
	for i := 0; i < len(data); i += util.SectorSize {
		fn((off+int64(i))/util.SectorSize, data[i:i+util.SectorSize])
	}
}

// WriteCommitted records a write whose ack the client received.
func (c *Checker) WriteCommitted(off int64, data []byte) {
	forEachSector(off, data, func(sec int64, chunk []byte) {
		s := c.state(sec)
		s.committed = fingerprint(chunk)
		s.hasPend = false
	})
}

// WriteUnresolved records a write whose outcome is unknown (the request
// failed or timed out): each sector may now hold either the old or the new
// data until a later read or committed write resolves it.
func (c *Checker) WriteUnresolved(off int64, data []byte) {
	forEachSector(off, data, func(sec int64, chunk []byte) {
		s := c.state(sec)
		s.pending = fingerprint(chunk)
		s.hasPend = true
	})
}

// CheckRead validates a read result. A sector matching an unresolved write
// resolves it (the write happened); matching the committed value resolves
// it the other way (the write was lost). Anything else is a linearizability
// violation.
func (c *Checker) CheckRead(off int64, data []byte) error {
	var firstErr error
	forEachSector(off, data, func(sec int64, chunk []byte) {
		if firstErr != nil {
			return
		}
		s := c.state(sec)
		got := fingerprint(chunk)
		switch {
		case got == s.committed && !s.hasPend:
			// Expected committed data.
		case s.hasPend && got == s.pending:
			// The unresolved write did happen: it is committed now
			// (a read observing it makes it the linearization point).
			s.committed = s.pending
			s.hasPend = false
		case s.hasPend && got == s.committed:
			// The unresolved write has not been observed; it may still
			// land later (our protocol retries), so keep it pending.
		default:
			firstErr = fmt.Errorf(
				"linearize: sector %d returned %#x; committed %#x pending(%v) %#x",
				sec, got, s.committed, s.hasPend, s.pending)
		}
	})
	return firstErr
}

// Sectors returns the number of tracked sectors (diagnostics).
func (c *Checker) Sectors() int { return len(c.sectors) }
