package linearize

import (
	"bytes"
	"testing"

	"ursa/internal/util"
)

func sector(fill byte) []byte {
	return bytes.Repeat([]byte{fill}, util.SectorSize)
}

func TestCommittedWriteVisible(t *testing.T) {
	c := New()
	c.WriteCommitted(0, sector(0xaa))
	if err := c.CheckRead(0, sector(0xaa)); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckRead(0, sector(0xbb)); err == nil {
		t.Fatal("stale read accepted")
	}
}

func TestInitialZeros(t *testing.T) {
	c := New()
	if err := c.CheckRead(4096, sector(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckRead(4096, sector(1)); err == nil {
		t.Fatal("garbage initial read accepted")
	}
}

func TestUnresolvedWriteEitherWay(t *testing.T) {
	// A write with unknown outcome may be observed or not.
	c1 := New()
	c1.WriteCommitted(0, sector(0x01))
	c1.WriteUnresolved(0, sector(0x02))
	if err := c1.CheckRead(0, sector(0x02)); err != nil {
		t.Fatalf("applied unresolved write rejected: %v", err)
	}
	// Once observed, it is committed: the old value is now illegal.
	if err := c1.CheckRead(0, sector(0x01)); err == nil {
		t.Fatal("regression to old value accepted after observation")
	}

	c2 := New()
	c2.WriteCommitted(0, sector(0x01))
	c2.WriteUnresolved(0, sector(0x02))
	if err := c2.CheckRead(0, sector(0x01)); err != nil {
		t.Fatalf("lost unresolved write rejected: %v", err)
	}
	// Our protocol retries unacked writes, so it may still land later.
	if err := c2.CheckRead(0, sector(0x02)); err != nil {
		t.Fatalf("late-landing unresolved write rejected: %v", err)
	}
}

func TestUnresolvedThirdValueRejected(t *testing.T) {
	c := New()
	c.WriteCommitted(0, sector(0x01))
	c.WriteUnresolved(0, sector(0x02))
	if err := c.CheckRead(0, sector(0x03)); err == nil {
		t.Fatal("third value accepted during uncertainty")
	}
}

func TestMultiSector(t *testing.T) {
	c := New()
	data := append(sector(0x11), sector(0x22)...)
	c.WriteCommitted(8192, data)
	if err := c.CheckRead(8192, data); err != nil {
		t.Fatal(err)
	}
	// One corrupted sector in a large read is caught.
	bad := append(sector(0x11), sector(0x99)...)
	if err := c.CheckRead(8192, bad); err == nil {
		t.Fatal("corrupt second sector accepted")
	}
	if c.Sectors() != 2 {
		t.Errorf("tracked sectors = %d", c.Sectors())
	}
}

func TestCommitResolvesPending(t *testing.T) {
	c := New()
	c.WriteUnresolved(0, sector(0x05))
	c.WriteCommitted(0, sector(0x06))
	// The committed write supersedes the unresolved one entirely.
	if err := c.CheckRead(0, sector(0x05)); err == nil {
		t.Fatal("superseded pending value accepted")
	}
	if err := c.CheckRead(0, sector(0x06)); err != nil {
		t.Fatal(err)
	}
}
