// Package backoff provides the one retry-delay policy shared by every
// retry loop in the tree: a linear ladder with a cap and seeded ±50%
// jitter. Jitter decorrelates retry herds (fragments that failed together
// would otherwise all land on a recovering replica at the same instant)
// while staying deterministic per (seed, attempt), so seeded chaos runs and
// benchmarks reproduce exactly.
package backoff

import (
	"time"

	"ursa/internal/util"
)

// Policy is a capped linear-backoff ladder. The nominal delay for attempt
// n (0-based) is (n+1)×Base, bounded by Cap, then jittered to the range
// [nominal/2, 1.5×nominal) — the cap bounds the nominal value rather than
// the jittered result so retries stay decorrelated even at the cap.
type Policy struct {
	Base time.Duration // first-attempt nominal delay; each attempt adds another Base
	Cap  time.Duration // upper bound on the nominal delay; 0 = uncapped
}

// Delay returns the jittered delay for attempt, deterministic in
// (seed, attempt). Callers pass their op ID (or any stable identity) as
// the seed so concurrent retriers spread out but reruns reproduce.
func (p Policy) Delay(seed uint64, attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	base := time.Duration(attempt+1) * p.Base
	if p.Cap > 0 && base > p.Cap {
		base = p.Cap
	}
	if base <= 0 {
		return 0
	}
	r := util.NewRand(seed<<8 + uint64(attempt))
	return base/2 + time.Duration(r.Int63n(int64(base)))
}
