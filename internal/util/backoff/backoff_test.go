package backoff

import (
	"testing"
	"time"
)

func TestDelayRangeAndGrowth(t *testing.T) {
	p := Policy{Base: 500 * time.Microsecond}
	for attempt := 0; attempt < 8; attempt++ {
		base := time.Duration(attempt+1) * p.Base
		for seed := uint64(0); seed < 64; seed++ {
			d := p.Delay(seed, attempt)
			if d < base/2 || d >= base+base/2 {
				t.Fatalf("attempt %d seed %d: delay %v outside [%v, %v)",
					attempt, seed, d, base/2, base+base/2)
			}
		}
	}
}

func TestDelayDeterministic(t *testing.T) {
	p := Policy{Base: time.Millisecond, Cap: 20 * time.Millisecond}
	for attempt := 0; attempt < 4; attempt++ {
		if a, b := p.Delay(99, attempt), p.Delay(99, attempt); a != b {
			t.Fatalf("attempt %d: %v != %v", attempt, a, b)
		}
	}
	if p.Delay(1, 2) == p.Delay(2, 2) {
		t.Error("different seeds produced identical delays (suspicious jitter)")
	}
}

func TestDelayCap(t *testing.T) {
	p := Policy{Base: time.Millisecond, Cap: 3 * time.Millisecond}
	for attempt := 0; attempt < 32; attempt++ {
		d := p.Delay(7, attempt)
		if d >= p.Cap+p.Cap/2 {
			t.Fatalf("attempt %d: delay %v exceeds jittered cap %v", attempt, d, p.Cap+p.Cap/2)
		}
		if attempt >= 3 && d < p.Cap/2 {
			t.Fatalf("attempt %d: capped delay %v below cap/2", attempt, d)
		}
	}
}

func TestDelayZeroPolicy(t *testing.T) {
	var p Policy
	if d := p.Delay(1, 5); d != 0 {
		t.Errorf("zero policy delay = %v", d)
	}
	if d := (Policy{Base: time.Millisecond}).Delay(3, -2); d == 0 {
		t.Error("negative attempt should clamp to 0, not skip the delay")
	}
}
