package util

import "errors"

// Sentinel errors shared across URSA subsystems. Packages wrap these with
// context via fmt.Errorf("...: %w", err) so callers can match with
// errors.Is.
var (
	// ErrOutOfRange reports an offset/length outside a chunk or device.
	ErrOutOfRange = errors.New("ursa: offset out of range")
	// ErrClosed reports use of a closed component.
	ErrClosed = errors.New("ursa: component closed")
	// ErrNotFound reports a missing vdisk, chunk, or key.
	ErrNotFound = errors.New("ursa: not found")
	// ErrExists reports creation of an already-existing object.
	ErrExists = errors.New("ursa: already exists")
	// ErrStaleView reports a request carrying an outdated view number.
	ErrStaleView = errors.New("ursa: stale view number")
	// ErrStaleVersion reports a request carrying an outdated version number.
	ErrStaleVersion = errors.New("ursa: stale version number")
	// ErrFutureVersion reports a replica that lags the client's version and
	// needs incremental repair before serving.
	ErrFutureVersion = errors.New("ursa: replica behind client version")
	// ErrLeaseHeld reports a vdisk already leased to another client.
	ErrLeaseHeld = errors.New("ursa: lease held by another client")
	// ErrLeaseExpired reports an operation under an expired lease.
	ErrLeaseExpired = errors.New("ursa: lease expired")
	// ErrQuota reports journal quota exhaustion.
	ErrQuota = errors.New("ursa: journal quota exhausted")
	// ErrCrashed reports an injected or detected component crash.
	ErrCrashed = errors.New("ursa: component crashed")
	// ErrPartitioned reports an injected network partition.
	ErrPartitioned = errors.New("ursa: network partitioned")
	// ErrTimeout reports a replication or RPC timeout.
	ErrTimeout = errors.New("ursa: timed out")
	// ErrNoQuorum reports a write that failed to reach a majority.
	ErrNoQuorum = errors.New("ursa: no quorum")
	// ErrRateLimited reports master-imposed client throttling.
	ErrRateLimited = errors.New("ursa: rate limited")
	// ErrCorrupt reports data that failed integrity verification: a read
	// succeeded but the payload does not match its recorded checksum.
	ErrCorrupt = errors.New("ursa: data corruption detected")
	// ErrNotPrimary reports a metadata op sent to a master that is not the
	// current primary (standby or deposed); callers redirect.
	ErrNotPrimary = errors.New("ursa: not the primary master")
	// ErrStaleEpoch reports a master-driven command fenced off by a
	// chunkserver because it carried a deposed master's epoch.
	ErrStaleEpoch = errors.New("ursa: stale master epoch")
)
