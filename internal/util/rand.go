package util

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64 seeded xorshift)
// safe to embed per goroutine. It is not cryptographically secure; it exists
// so workloads and simulations are reproducible under a fixed seed without
// the lock contention of the global math/rand source.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded from seed via splitmix64 so that
// consecutive seeds produce well-separated streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{state: seed}
	// Run splitmix64 once to avoid weak all-zero / tiny-seed states.
	r.state = splitmix64(&r.state)
	if r.state == 0 {
		r.state = 0x9e3779b97f4a7c15
	}
	return r
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits (xorshift64*).
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("util.Rand.Intn: n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("util.Rand.Int63n: n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fill fills b with pseudo-random bytes.
func (r *Rand) Fill(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Exp returns an exponentially distributed float64 with mean 1, suitable
// for Poisson arrival/lifetime sampling in simulations.
func (r *Rand) Exp() float64 {
	// Inverse CDF; 1-u is in (0,1] so the log argument is never zero.
	return -math.Log(1 - r.Float64())
}
