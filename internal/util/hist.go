package util

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Hist is a concurrency-safe log-scale latency histogram. Buckets grow
// geometrically from 1 µs so that percentiles are accurate to a few percent
// across six orders of magnitude, which is enough to reproduce the paper's
// latency figures (Fig 6b, Fig 15, Fig 16).
type Hist struct {
	mu      sync.Mutex
	buckets [nbuckets]int64
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const (
	nbuckets   = 256
	histBase   = 1.06 // geometric bucket growth factor
	histOrigin = time.Microsecond
)

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= histOrigin {
		return 0
	}
	b := int(math.Log(float64(d)/float64(histOrigin)) / math.Log(histBase))
	if b >= nbuckets {
		b = nbuckets - 1
	}
	return b
}

// bucketValue returns the representative duration of bucket b (geometric
// midpoint of its range).
func bucketValue(b int) time.Duration {
	lo := float64(histOrigin) * math.Pow(histBase, float64(b))
	return time.Duration(lo * math.Sqrt(histBase))
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{min: math.MaxInt64} }

// Observe records one sample.
func (h *Hist) Observe(d time.Duration) {
	h.mu.Lock()
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of samples recorded.
func (h *Hist) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean of all samples (0 if empty).
func (h *Hist) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Sum returns the total of all samples.
func (h *Hist) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Min returns the smallest sample (0 if empty).
func (h *Hist) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Hist) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (q in [0,1]) as a bucket-representative
// duration; q=0.5 is the median, q=0.99 the p99.
func (h *Hist) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen int64
	for b, n := range h.buckets {
		seen += n
		if seen > target {
			return bucketValue(b)
		}
	}
	return h.max
}

// CDF returns (latency, cumulative fraction) points for plotting Fig 16.
// Only non-empty buckets are emitted.
func (h *Hist) CDF() (xs []time.Duration, ys []float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return nil, nil
	}
	var cum int64
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		cum += n
		xs = append(xs, bucketValue(b))
		ys = append(ys, float64(cum)/float64(h.count))
	}
	return xs, ys
}

// PDF returns (latency, probability mass) points for plotting Fig 16.
func (h *Hist) PDF() (xs []time.Duration, ys []float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return nil, nil
	}
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		xs = append(xs, bucketValue(b))
		ys = append(ys, float64(n)/float64(h.count))
	}
	return xs, ys
}

// Merge adds all samples of other into h.
func (h *Hist) Merge(other *Hist) {
	other.mu.Lock()
	var o Hist
	o.buckets = other.buckets
	o.count, o.sum, o.min, o.max = other.count, other.sum, other.min, other.max
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
	h.count += o.count
	h.sum += o.sum
	if o.count > 0 && o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// String summarizes the histogram for logs: count, mean, p50/p99, max.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
}

// Percentiles is a convenience for Fig 15's (mean, p1, p99) triple.
func (h *Hist) Percentiles() (mean, p1, p99 time.Duration) {
	return h.Mean(), h.Quantile(0.01), h.Quantile(0.99)
}

// ExactQuantile computes a quantile from a raw sample slice (used by tests
// to validate the histogram's bucketed quantiles). It sorts a copy.
func ExactQuantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
