package util

import "hash/crc32"

// castagnoli is the CRC-32C table used by most storage systems (iSCSI, ext4)
// for data integrity; it is hardware-accelerated on amd64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of b. Chunk servers stamp journal records and
// replication payloads with it so corruption is detected on replay and
// recovery rather than propagated to backups.
func Checksum(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}

// ChecksumUpdate extends an existing CRC-32C with more data, for streaming
// over large replication transfers without buffering them whole.
func ChecksumUpdate(sum uint32, b []byte) uint32 {
	return crc32.Update(sum, castagnoli, b)
}
