package util

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"},
		{511, "511B"},
		{KiB, "1.0KiB"},
		{4 * KiB, "4.0KiB"},
		{64 * MiB, "64.0MiB"},
		{3 * GiB / 2, "1.5GiB"},
		{2 * TiB, "2.0TiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatCount(t *testing.T) {
	if got := FormatCount(42_500); got != "42.5K" {
		t.Errorf("FormatCount(42500) = %q", got)
	}
	if got := FormatCount(1_230_000); got != "1.23M" {
		t.Errorf("FormatCount(1.23e6) = %q", got)
	}
	if got := FormatCount(12); got != "12" {
		t.Errorf("FormatCount(12) = %q", got)
	}
}

func TestAlign(t *testing.T) {
	if got := AlignDown(1000, 512); got != 512 {
		t.Errorf("AlignDown(1000,512) = %d", got)
	}
	if got := AlignUp(1000, 512); got != 1024 {
		t.Errorf("AlignUp(1000,512) = %d", got)
	}
	if got := AlignUp(1024, 512); got != 1024 {
		t.Errorf("AlignUp(1024,512) = %d", got)
	}
	if got := CeilDiv(10, 3); got != 4 {
		t.Errorf("CeilDiv(10,3) = %d", got)
	}
}

func TestAlignProperties(t *testing.T) {
	f := func(v uint32) bool {
		x := int64(v)
		down := AlignDown(x, SectorSize)
		up := AlignUp(x, SectorSize)
		return down%SectorSize == 0 && up%SectorSize == 0 &&
			down <= x && x <= up && up-down < 2*SectorSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRand(8)
	if a.Uint64() == c.Uint64() {
		t.Error("different seeds produced identical streams")
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
		if v := r.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandFill(t *testing.T) {
	r := NewRand(5)
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 4096} {
		b := make([]byte, n)
		r.Fill(b)
		if n >= 64 {
			// Vanishingly unlikely to be all zeros.
			allZero := true
			for _, x := range b {
				if x != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Fatalf("Fill(%d) produced all zeros", n)
			}
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatalf("Exp() negative: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.97 || mean > 1.03 {
		t.Errorf("Exp mean = %v, want ≈1", mean)
	}
}

func TestChecksum(t *testing.T) {
	a := Checksum([]byte("hello"))
	b := Checksum([]byte("hello"))
	c := Checksum([]byte("hellp"))
	if a != b {
		t.Error("checksum not deterministic")
	}
	if a == c {
		t.Error("checksum collision on 1-byte flip")
	}
	// Streaming update must match one-shot.
	whole := Checksum([]byte("hello world"))
	part := ChecksumUpdate(Checksum([]byte("hello ")), []byte("world"))
	if whole != part {
		t.Errorf("streaming checksum %08x != one-shot %08x", part, whole)
	}
}

func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	var raw []time.Duration
	r := NewRand(13)
	for i := 0; i < 50000; i++ {
		// Log-uniform between 10µs and 100ms.
		d := time.Duration(float64(10*time.Microsecond) *
			pow(1e4, r.Float64()))
		raw = append(raw, d)
		h.Observe(d)
	}
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := ExactQuantile(raw, q)
		ratio := float64(got) / float64(want)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("Quantile(%v) = %v, exact %v (ratio %.3f)", q, got, want, ratio)
		}
	}
	if h.Count() != 50000 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() <= 0 || h.Max() < h.Min() {
		t.Errorf("Min/Max broken: %v/%v", h.Min(), h.Max())
	}
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }

func TestHistCDFMonotonic(t *testing.T) {
	h := NewHist()
	r := NewRand(17)
	for i := 0; i < 10000; i++ {
		h.Observe(time.Duration(r.Intn(1000)+1) * time.Microsecond)
	}
	xs, ys := h.CDF()
	if len(xs) == 0 {
		t.Fatal("empty CDF")
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] || xs[i] < xs[i-1] {
			t.Fatalf("CDF not monotonic at %d", i)
		}
	}
	if ys[len(ys)-1] < 0.999 {
		t.Errorf("CDF does not reach 1: %v", ys[len(ys)-1])
	}
	_, pdf := h.PDF()
	var mass float64
	for _, p := range pdf {
		mass += p
	}
	if mass < 0.999 || mass > 1.001 {
		t.Errorf("PDF mass = %v", mass)
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(), NewHist()
	a.Observe(time.Millisecond)
	b.Observe(2 * time.Millisecond)
	b.Observe(3 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Max() < 3*time.Millisecond*95/100 {
		t.Errorf("merged max = %v", a.Max())
	}
	if a.Min() > time.Millisecond {
		t.Errorf("merged min = %v", a.Min())
	}
}

func TestHistConcurrent(t *testing.T) {
	h := NewHist()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(seed uint64) {
			r := NewRand(seed)
			for i := 0; i < 5000; i++ {
				h.Observe(time.Duration(r.Intn(10000)+1) * time.Microsecond)
			}
			done <- struct{}{}
		}(uint64(g))
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if h.Count() != 40000 {
		t.Errorf("concurrent count = %d", h.Count())
	}
}
