// Package util provides small shared primitives for the URSA block store:
// byte-size constants and formatting, checksums, deterministic PRNG,
// latency histograms, and common errors.
package util

import "fmt"

// Byte size units.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
	TiB = 1 << 40
)

// SectorSize is the block-device sector granularity. HDDs support 512-byte
// sectors in physical or emulated modes; URSA addresses all disk and journal
// space in sectors.
const SectorSize = 512

// ChunkSize is the fixed size of a data chunk, the unit of replication and
// placement for virtual-disk data (the paper uses 64 MB chunks).
const ChunkSize = 64 * MiB

// SectorsPerChunk is the number of sectors in one chunk.
const SectorsPerChunk = ChunkSize / SectorSize

// FormatBytes renders n as a human-readable byte count ("4.0KiB", "64MiB").
func FormatBytes(n int64) string {
	switch {
	case n >= TiB:
		return fmt.Sprintf("%.1fTiB", float64(n)/TiB)
	case n >= GiB:
		return fmt.Sprintf("%.1fGiB", float64(n)/GiB)
	case n >= MiB:
		return fmt.Sprintf("%.1fMiB", float64(n)/MiB)
	case n >= KiB:
		return fmt.Sprintf("%.1fKiB", float64(n)/KiB)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// FormatCount renders n with K/M suffixes ("42.5K", "1.2M") for IOPS-style
// numbers.
func FormatCount(n float64) string {
	switch {
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", n/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fK", n/1e3)
	default:
		return fmt.Sprintf("%.0f", n)
	}
}

// AlignDown rounds v down to the nearest multiple of align.
func AlignDown(v, align int64) int64 { return v - v%align }

// AlignUp rounds v up to the nearest multiple of align.
func AlignUp(v, align int64) int64 {
	if r := v % align; r != 0 {
		return v + align - r
	}
	return v
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int64) int64 { return (a + b - 1) / b }
