// Package transport moves proto messages between URSA components. Two
// interchangeable fabrics implement the same interfaces: real TCP for the
// cmd/ binaries, and an in-process simulated network with per-node
// bandwidth shaping, propagation delay, and fault injection (partitions,
// node crashes) for the cluster harness and benchmarks.
//
// The RPC layer on top provides exactly the parallelism the paper exploits
// (§3.4): requests are pipelined per connection, servers execute them
// concurrently, and responses complete out of order.
package transport

import (
	"fmt"

	"ursa/internal/proto"
	"ursa/internal/util"
)

// ErrConnClosed reports I/O on a closed connection. It wraps
// util.ErrClosed so callers can match either sentinel with errors.Is.
var ErrConnClosed = fmt.Errorf("transport: connection closed: %w", util.ErrClosed)

// MsgConn is a bidirectional, ordered message pipe. Send and Recv may be
// used concurrently with each other, but each must be called from at most
// one goroutine at a time.
type MsgConn interface {
	Send(m *proto.Message) error
	Recv() (*proto.Message, error)
	Close() error
}

// Listener accepts inbound connections at an address.
type Listener interface {
	Accept() (MsgConn, error)
	Close() error
	Addr() string
}

// Dialer opens connections to addresses.
type Dialer interface {
	Dial(addr string) (MsgConn, error)
}
