package transport

import (
	"sync"
	"time"

	"ursa/internal/clock"
)

// TokenBucket models a link's byte rate: Take(n) blocks the caller until n
// bytes of budget accumulate. It serializes access, which is exactly how a
// NIC serializes frames — concurrent senders on one node share the rate.
// Recovery traffic in Fig 12 is bounded by precisely this mechanism.
type TokenBucket struct {
	clk  clock.Clock
	rate float64 // bytes per second of model time

	mu sync.Mutex
	// nextFree is the model time at which the link has transmitted
	// everything accepted so far. A virtual-queue formulation avoids
	// accumulating floating-point token drift.
	nextFree time.Time
}

// NewTokenBucket creates a bucket with the given byte rate. rate <= 0 means
// unlimited (Take returns immediately).
func NewTokenBucket(clk clock.Clock, rate float64) *TokenBucket {
	return &TokenBucket{clk: clk, rate: rate, nextFree: clk.Now()}
}

// Take blocks until n bytes have drained through the link.
func (b *TokenBucket) Take(n int) {
	if b == nil || b.rate <= 0 || n <= 0 {
		return
	}
	cost := time.Duration(float64(n) / b.rate * float64(time.Second))

	b.mu.Lock()
	now := b.clk.Now()
	if b.nextFree.Before(now) {
		b.nextFree = now
	}
	b.nextFree = b.nextFree.Add(cost)
	wait := b.nextFree.Sub(now)
	b.mu.Unlock()

	if wait > 0 {
		b.clk.Sleep(wait)
	}
}

// Rate returns the configured byte rate (0 = unlimited).
func (b *TokenBucket) Rate() float64 {
	if b == nil {
		return 0
	}
	return b.rate
}
