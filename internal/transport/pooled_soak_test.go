package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/proto"
)

// TestPooledDecodeRaceSoak hammers one connection with concurrent Client.Go
// pipelines whose payloads decode into pooled buffers, checking that echoed
// bytes survive the lease/return churn and that the pool balances to its
// starting in-use count once the connection drains. Run under -race this is
// the ownership-contract soak: any buffer recycled while still referenced
// shows up as either corrupted echo bytes or a data race on the buffer.
func TestPooledDecodeRaceSoak(t *testing.T) {
	if !bufpool.Enabled() {
		t.Skip("buffer pool disabled")
	}
	start := bufpool.InUse()

	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, echoHandler)
	conn, err := TCPDialer{}.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn, clock.Realtime)

	const workers = 8
	const callsPerWorker = 150
	const pipeline = 4 // in-flight calls per worker
	sizes := []int{512, 4096, 16384}
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			type flight struct {
				ch   <-chan *proto.Message
				n    int
				mark byte
			}
			var inflight []flight
			reap := func(f flight) error {
				resp, ok := <-f.ch
				if !ok {
					return fmt.Errorf("worker %d: connection died", w)
				}
				if resp.Status != proto.StatusOK {
					return fmt.Errorf("worker %d: status %v", w, resp.Status)
				}
				if len(resp.Payload) != f.n ||
					resp.Payload[0] != f.mark || resp.Payload[f.n-1] != f.mark {
					return fmt.Errorf("worker %d: corrupted echo (len=%d want %d)",
						w, len(resp.Payload), f.n)
				}
				bufpool.Put(resp.Payload)
				return nil
			}
			for i := 0; i < callsPerWorker; i++ {
				n := sizes[(w+i)%len(sizes)]
				mark := byte(w*31 + i)
				pay := bufpool.Get(n)
				pay[0], pay[n-1] = mark, mark
				// Go consumes the request payload reference on every path.
				inflight = append(inflight, flight{
					ch: cli.Go(&proto.Message{Op: proto.OpRead, Payload: pay}),
					n:  n, mark: mark,
				})
				if len(inflight) >= pipeline {
					if err := reap(inflight[0]); err != nil {
						errs <- err
						return
					}
					inflight = inflight[1:]
				}
			}
			for _, f := range inflight {
				if err := reap(f); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	cli.Close()
	srv.Close()
	deadline := time.Now().Add(10 * time.Second)
	for bufpool.InUse() != start {
		if time.Now().After(deadline) {
			t.Fatalf("pool did not drain: in-use %d, started at %d (leases=%d returns=%d)",
				bufpool.InUse(), start, bufpool.Leases(), bufpool.Returns())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
