package transport

import (
	"bufio"
	"net"
	"sync"

	"ursa/internal/bufpool"
	"ursa/internal/proto"
)

// tcpConn frames proto messages over a net.Conn. Writes go through a
// mutex-guarded buffered writer flushed per message: the caller-side RPC
// layer already batches by pipelining many requests before any response is
// awaited.
type tcpConn struct {
	c  net.Conn
	r  *bufio.Reader
	wm sync.Mutex
	w  *bufio.Writer
	rm sync.Mutex
}

// NewTCPConn wraps an established net.Conn.
func NewTCPConn(c net.Conn) MsgConn {
	return &tcpConn{
		c: c,
		r: bufio.NewReaderSize(c, 256<<10),
		w: bufio.NewWriterSize(c, 256<<10),
	}
}

func (t *tcpConn) Send(m *proto.Message) error {
	t.wm.Lock()
	err := m.Encode(t.w)
	if err == nil {
		err = t.w.Flush()
	}
	t.wm.Unlock()
	// Send consumes the caller's reference: the payload is on the wire (or
	// lost with the connection) and the caller must not touch it again.
	bufpool.Put(m.Payload)
	return err
}

func (t *tcpConn) Recv() (*proto.Message, error) {
	t.rm.Lock()
	defer t.rm.Unlock()
	m := new(proto.Message)
	if err := m.Decode(t.r); err != nil {
		return nil, err
	}
	return m, nil
}

func (t *tcpConn) Close() error { return t.c.Close() }

// tcpListener adapts net.Listener.
type tcpListener struct{ l net.Listener }

// ListenTCP starts a TCP listener on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

func (t *tcpListener) Accept() (MsgConn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewTCPConn(c), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// TCPDialer dials real TCP connections.
type TCPDialer struct{}

// Dial implements Dialer.
func (TCPDialer) Dial(addr string) (MsgConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewTCPConn(c), nil
}
