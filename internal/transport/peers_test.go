package transport

import (
	"errors"
	"testing"
	"time"

	"ursa/internal/clock"
	"ursa/internal/proto"
	"ursa/internal/util"
)

// peersFixture serves an echo handler (with a deliberately slow OpRead) on
// "server" and returns a pool dialing from "caller".
func peersFixture(t *testing.T) (*SimNet, *Peers) {
	t.Helper()
	net := NewSimNet(clock.Realtime, 0)
	l, err := net.Listen("server", NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, func(m *proto.Message) *proto.Message {
		if m.Op == proto.OpRead {
			time.Sleep(100 * time.Millisecond)
		}
		return m.Reply(proto.StatusOK)
	})
	p := NewPeers(net.Dialer("caller", NodeConfig{}), clock.Realtime)
	t.Cleanup(func() {
		p.CloseAll()
		srv.Close()
	})
	return net, p
}

func TestPeersReusesConnection(t *testing.T) {
	_, p := peersFixture(t)
	c1, err := p.Get("server")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Get("server")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("second Get dialed a fresh connection")
	}
	if resp, err := p.Call("server", &proto.Message{Op: proto.OpNop}, time.Second); err != nil || resp.Status != proto.StatusOK {
		t.Fatalf("Call = %+v, %v", resp, err)
	}
}

func TestPeersDialFailure(t *testing.T) {
	_, p := peersFixture(t)
	if _, err := p.Call("nowhere", &proto.Message{Op: proto.OpNop}, time.Second); err == nil {
		t.Fatal("call to unknown address succeeded")
	}
}

// TestPeersTimeoutKeepsConnection: a budget timeout is not a transport
// fault — the pooled connection must survive and serve the next call.
func TestPeersTimeoutKeepsConnection(t *testing.T) {
	_, p := peersFixture(t)
	before, err := p.Get("server")
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Call("server", &proto.Message{Op: proto.OpRead}, 10*time.Millisecond)
	if !errors.Is(err, util.ErrTimeout) {
		t.Fatalf("slow call: %v", err)
	}
	if !p.cached("server") {
		t.Fatal("timeout evicted the connection")
	}
	after, err := p.Get("server")
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Error("connection was replaced after a mere timeout")
	}
}

// TestPeersFaultEvictsAndRedials: a crashed peer fails the call, evicts
// the cached client, and a later call transparently redials once the peer
// is back.
func TestPeersFaultEvictsAndRedials(t *testing.T) {
	net, p := peersFixture(t)
	if _, err := p.Call("server", &proto.Message{Op: proto.OpNop}, time.Second); err != nil {
		t.Fatal(err)
	}
	net.Crash("server")
	if _, err := p.Call("server", &proto.Message{Op: proto.OpNop}, 50*time.Millisecond); err == nil {
		t.Fatal("call to crashed peer succeeded")
	}
	if p.cached("server") {
		t.Fatal("transport fault did not evict the connection")
	}
	net.Restart("server")
	if resp, err := p.Call("server", &proto.Message{Op: proto.OpNop}, time.Second); err != nil || resp.Status != proto.StatusOK {
		t.Fatalf("post-restart call = %+v, %v", resp, err)
	}
}

func TestPeersCloseAll(t *testing.T) {
	_, p := peersFixture(t)
	if _, err := p.Get("server"); err != nil {
		t.Fatal(err)
	}
	p.CloseAll()
	if p.cached("server") {
		t.Fatal("CloseAll left a cached connection")
	}
	// The pool remains usable after CloseAll.
	if _, err := p.Call("server", &proto.Message{Op: proto.OpNop}, time.Second); err != nil {
		t.Fatalf("call after CloseAll: %v", err)
	}
}
