package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/proto"
	"ursa/internal/util"
)

// echoHandler responds with the request payload in status OK. Aliasing the
// request payload into the response hands a second consumer (Send) the
// same buffer, so the handler takes its own reference first — the
// Retain-on-alias rule of the ownership contract.
func echoHandler(m *proto.Message) *proto.Message {
	bufpool.Retain(m.Payload)
	r := m.Reply(proto.StatusOK)
	r.Payload = m.Payload
	return r
}

func TestTCPCallRoundTrip(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, echoHandler)
	defer srv.Close()

	conn, err := TCPDialer{}.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn, clock.Realtime)
	defer cli.Close()

	resp, err := cli.Call(&proto.Message{Op: proto.OpRead, Payload: []byte("ping")}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.StatusOK || string(resp.Payload) != "ping" {
		t.Errorf("resp = %+v", resp)
	}
}

func TestTCPPipelining(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Slow handler: 10ms each. 32 pipelined calls should take ~10ms, not
	// 320ms, because they execute concurrently.
	srv := Serve(l, func(m *proto.Message) *proto.Message {
		time.Sleep(10 * time.Millisecond)
		return m.Reply(proto.StatusOK)
	})
	defer srv.Close()

	conn, err := TCPDialer{}.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn, clock.Realtime)
	defer cli.Close()

	start := time.Now()
	var chans []<-chan *proto.Message
	for i := 0; i < 32; i++ {
		chans = append(chans, cli.Go(&proto.Message{Op: proto.OpNop}))
	}
	for _, ch := range chans {
		if resp, ok := <-ch; !ok || resp.Status != proto.StatusOK {
			t.Fatal("pipelined call failed")
		}
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("32 pipelined 10ms calls took %v", elapsed)
	}
}

func TestOutOfOrderCompletion(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// First request is slow, second fast: the second must complete first.
	srv := Serve(l, func(m *proto.Message) *proto.Message {
		if m.Op == proto.OpRead {
			time.Sleep(50 * time.Millisecond)
		}
		return m.Reply(proto.StatusOK)
	})
	defer srv.Close()

	conn, err := TCPDialer{}.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn, clock.Realtime)
	defer cli.Close()

	slow := cli.Go(&proto.Message{Op: proto.OpRead})
	fast := cli.Go(&proto.Message{Op: proto.OpNop})
	select {
	case <-fast:
	case <-slow:
		t.Fatal("slow request completed before fast one")
	case <-time.After(time.Second):
		t.Fatal("no completion")
	}
	<-slow
}

func simPair(t *testing.T, latency time.Duration, cfg NodeConfig) (*SimNet, *Client, *Server) {
	t.Helper()
	clk := clock.Realtime
	net := NewSimNet(clk, latency)
	l, err := net.Listen("server", cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, echoHandler)
	conn, err := net.Dialer("client", cfg).Dial("server")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn, clk)
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	return net, cli, srv
}

func TestSimNetRoundTrip(t *testing.T) {
	_, cli, _ := simPair(t, 0, NodeConfig{})
	resp, err := cli.Call(&proto.Message{Op: proto.OpRead, Payload: []byte("x")}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.StatusOK {
		t.Errorf("resp = %+v", resp)
	}
}

func TestSimNetLatency(t *testing.T) {
	_, cli, _ := simPair(t, 5*time.Millisecond, NodeConfig{})
	start := time.Now()
	if _, err := cli.Call(&proto.Message{Op: proto.OpNop}, time.Second); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if rtt < 10*time.Millisecond {
		t.Errorf("RTT %v < 2×5ms propagation", rtt)
	}
}

func TestSimNetBandwidth(t *testing.T) {
	// 1 MB payload over a 10 MB/s link must take ≥ ~100ms.
	_, cli, _ := simPair(t, 0, NodeConfig{InRate: 10e6, OutRate: 10e6})
	payload := make([]byte, util.MiB)
	start := time.Now()
	if _, err := cli.Call(&proto.Message{Op: proto.OpWrite, Payload: payload}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Request 1MB out + response 1MB back, each shaped twice (out+in)
	// but pipelined; lower bound is ~100ms for one direction.
	if elapsed < 90*time.Millisecond {
		t.Errorf("1MB over 10MB/s took only %v", elapsed)
	}
}

func TestSimNetPartitionDropsAndTimesOut(t *testing.T) {
	net, cli, _ := simPair(t, 0, NodeConfig{})
	net.Partition("client", "server")
	_, err := cli.Call(&proto.Message{Op: proto.OpNop}, 30*time.Millisecond)
	if !errors.Is(err, util.ErrTimeout) {
		t.Fatalf("partitioned call: %v", err)
	}
	net.Heal("client", "server")
	if _, err := cli.Call(&proto.Message{Op: proto.OpNop}, time.Second); err != nil {
		t.Fatalf("healed call: %v", err)
	}
}

func TestSimNetCrash(t *testing.T) {
	net, cli, _ := simPair(t, 0, NodeConfig{})
	net.Crash("server")
	if _, err := cli.Call(&proto.Message{Op: proto.OpNop}, 50*time.Millisecond); err == nil {
		t.Fatal("call to crashed node succeeded")
	}
	// Dials to a crashed node fail fast.
	if _, err := net.Dialer("client2", NodeConfig{}).Dial("server"); err == nil {
		t.Fatal("dial to crashed node succeeded")
	}
	net.Restart("server")
	if net.Down("server") {
		t.Error("server still down after restart")
	}
}

func TestSimNetDialUnknown(t *testing.T) {
	net := NewSimNet(clock.Realtime, 0)
	if _, err := net.Dialer("a", NodeConfig{}).Dial("nowhere"); err == nil {
		t.Fatal("dial to unknown address succeeded")
	}
}

func TestSimNetDuplicateListen(t *testing.T) {
	net := NewSimNet(clock.Realtime, 0)
	if _, err := net.Listen("a", NodeConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Listen("a", NodeConfig{}); !errors.Is(err, util.ErrExists) {
		t.Fatalf("duplicate listen: %v", err)
	}
}

func TestClientTimeoutLeavesConnectionUsable(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, func(m *proto.Message) *proto.Message {
		if m.Op == proto.OpRead {
			time.Sleep(100 * time.Millisecond)
		}
		return m.Reply(proto.StatusOK)
	})
	defer srv.Close()
	conn, err := TCPDialer{}.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn, clock.Realtime)
	defer cli.Close()

	if _, err := cli.Call(&proto.Message{Op: proto.OpRead}, 10*time.Millisecond); !errors.Is(err, util.ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	// The late response must be discarded and later calls still work.
	if _, err := cli.Call(&proto.Message{Op: proto.OpNop}, time.Second); err != nil {
		t.Fatalf("post-timeout call: %v", err)
	}
}

func TestClientConnFailureFailsPending(t *testing.T) {
	net, cli, srv := simPair(t, 0, NodeConfig{})
	_ = net
	ch := cli.Go(&proto.Message{Op: proto.OpRead})
	srv.Close()
	select {
	case _, ok := <-ch:
		if ok {
			// A response may have raced the close; that's fine too.
			return
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call not failed after server close")
	}
}

func TestTokenBucketRate(t *testing.T) {
	clk := clock.Realtime
	b := NewTokenBucket(clk, 1e6) // 1 MB/s
	start := time.Now()
	for i := 0; i < 10; i++ {
		b.Take(10_000) // 100 KB total => 100ms
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Errorf("100KB at 1MB/s took only %v", elapsed)
	}
	if elapsed > 400*time.Millisecond {
		t.Errorf("100KB at 1MB/s took %v", elapsed)
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	b := NewTokenBucket(clock.Realtime, 0)
	start := time.Now()
	b.Take(1 << 30)
	if time.Since(start) > 10*time.Millisecond {
		t.Error("unlimited bucket blocked")
	}
	var nilBucket *TokenBucket
	nilBucket.Take(100) // must not panic
	if nilBucket.Rate() != 0 {
		t.Error("nil bucket rate")
	}
}

func TestTokenBucketConcurrentSharing(t *testing.T) {
	// Two goroutines sharing one bucket halve each other's rate.
	b := NewTokenBucket(clock.Realtime, 2e6)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				b.Take(10_000)
			}
		}()
	}
	wg.Wait()
	// 200KB total at 2MB/s = 100ms.
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("shared bucket too fast: %v", elapsed)
	}
}
