package transport

import (
	"context"
	"errors"
	"sync"
	"time"

	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/opctx"
	"ursa/internal/proto"
	"ursa/internal/util"
	"ursa/internal/util/backoff"
)

// Peers is a cached pool of RPC clients keyed by address, extracted from
// the identical dial/call/evict logic the chunk server's backup fan-out,
// the master's recovery pushes, and the client library each grew on their
// own. Connections are dialed on demand and reused across calls; a call
// that fails with a transport-level fault evicts the cached client so the
// next call redials, while a timeout or cancellation keeps it (the
// connection is healthy — the budget just ran out).
type Peers struct {
	dial Dialer
	clk  clock.Clock

	// Dial-retry policy (SetRedial). Zero tries — the default — fails a
	// call on the first dial error, preserving fast data-path failover.
	redial      backoff.Policy
	redialTries int

	mu sync.Mutex
	m  map[string]*Client
}

// NewPeers returns an empty pool dialing through d.
func NewPeers(d Dialer, clk clock.Clock) *Peers {
	return &Peers{dial: d, clk: clk, m: make(map[string]*Client)}
}

// Get returns the cached client for addr, dialing if absent. Concurrent
// callers racing on a cold address may both dial; the loser's connection
// is closed.
func (p *Peers) Get(addr string) (*Client, error) {
	p.mu.Lock()
	c := p.m[addr]
	p.mu.Unlock()
	if c != nil {
		return c, nil
	}
	conn, err := p.dial.Dial(addr)
	if err != nil {
		return nil, err
	}
	nc := NewClient(conn, p.clk)
	p.mu.Lock()
	if cur := p.m[addr]; cur != nil {
		p.mu.Unlock()
		nc.Close()
		return cur, nil
	}
	p.m[addr] = nc
	p.mu.Unlock()
	return nc, nil
}

// Drop evicts c from the pool (if still cached under addr) and closes it.
func (p *Peers) Drop(addr string, c *Client) {
	p.mu.Lock()
	if p.m[addr] == c {
		delete(p.m, addr)
	}
	p.mu.Unlock()
	c.Close()
}

// evictable reports whether an error means the cached connection itself is
// suspect. Timeouts and cancellations are budget exhaustion, not transport
// faults: the connection stays cached.
func evictable(err error) bool {
	return !errors.Is(err, util.ErrTimeout) && !errors.Is(err, context.Canceled)
}

// SetRedial configures dial-retry: a failed dial is retried up to tries
// more times with the policy's jittered delays (seeded by the op ID),
// never past the op's remaining budget. Callers with slow-changing targets
// (the master redialing a restarting chunkserver) opt in; the default is
// no retries. Set before the pool is shared between goroutines.
func (p *Peers) SetRedial(policy backoff.Policy, tries int) {
	p.redial, p.redialTries = policy, tries
}

// Do sends m to addr on behalf of op, bounded by the op's budget and cap,
// evicting the cached connection on transport faults. Do consumes one
// reference to m.Payload on every path (a failed dial releases it here;
// everything later goes through Client.Do, which has the same contract).
func (p *Peers) Do(op *opctx.Op, addr string, m *proto.Message, cap time.Duration) (*proto.Message, error) {
	c, err := p.Get(addr)
	for attempt := 0; err != nil && attempt < p.redialTries; attempt++ {
		d := p.redial.Delay(op.ID(), attempt)
		if rem, hasRem := op.Remaining(); hasRem && rem <= d {
			break // no budget left for another dial
		}
		p.clk.Sleep(d)
		c, err = p.Get(addr)
	}
	if err != nil {
		bufpool.Put(m.Payload)
		return nil, err
	}
	resp, err := c.Do(op, m, cap)
	if err != nil && evictable(err) {
		p.Drop(addr, c)
	}
	return resp, err
}

// Call is Do with a single-purpose op of the given timeout.
func (p *Peers) Call(addr string, m *proto.Message, timeout time.Duration) (*proto.Message, error) {
	return p.Do(opctx.New(p.clk, timeout), addr, m, 0)
}

// CloseAll closes every cached connection and empties the pool.
func (p *Peers) CloseAll() {
	p.mu.Lock()
	conns := make([]*Client, 0, len(p.m))
	for _, c := range p.m {
		conns = append(conns, c)
	}
	p.m = make(map[string]*Client)
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// cached reports whether addr currently has a pooled client (tests).
func (p *Peers) cached(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.m[addr] != nil
}
