package transport

import (
	"fmt"
	"sync"
	"time"

	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/opctx"
	"ursa/internal/proto"
	"ursa/internal/util"
)

// Client is a pipelined RPC endpoint over one MsgConn: many calls may be in
// flight simultaneously (the paper's in-network pipelining, §3.4), and
// responses are matched to callers by message ID, so servers may complete
// them out of order.
type Client struct {
	conn MsgConn
	clk  clock.Clock

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *proto.Message
	closed  bool
	done    chan struct{}
}

// NewClient starts the response dispatcher over conn.
func NewClient(conn MsgConn, clk clock.Clock) *Client {
	c := &Client{
		conn:    conn,
		clk:     clk,
		pending: make(map[uint64]chan *proto.Message),
		done:    make(chan struct{}),
	}
	go c.recvLoop()
	return c
}

func (c *Client) recvLoop() {
	defer close(c.done)
	for {
		m, err := c.conn.Recv()
		if err != nil {
			c.failAll()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[m.ID]
		if ok {
			delete(c.pending, m.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- m // buffered; never blocks
		} else {
			// Unknown ID: a late response to a timed-out or abandoned call.
			// The message dies here, so its payload lease dies with it and
			// the frame goes back to the message pool.
			bufpool.Put(m.Payload)
			proto.Recycle(m)
		}
	}
}

func (c *Client) failAll() {
	c.mu.Lock()
	c.closed = true
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
}

// Go sends m and returns a channel that yields the response, or is closed
// on connection failure. The caller owns timeout policy.
func (c *Client) Go(m *proto.Message) <-chan *proto.Message {
	return c.Start(m).ch
}

// PendingCall is one in-flight request started with Start. Exactly one of
// Done-receive or Abandon must consume it: Abandon releases the response's
// payload lease no matter how the race with the dispatcher falls, which is
// what lets pipelined callers (chunk clones) bail out mid-stream without
// leaking pooled buffers.
type PendingCall struct {
	c  *Client
	id uint64
	ch chan *proto.Message
}

// pcPool recycles PendingCalls and their reply channels between calls —
// one struct + one buffered channel per RPC otherwise. Only Do recycles
// (its PendingCall never escapes); Start/Go callers own theirs. A
// PendingCall is recyclable only while its channel is open and empty:
// after a successful receive, or after an Abandon that either beat the
// dispatcher or drained a real response. Closed channels (connection
// failure) are never pooled.
var pcPool = sync.Pool{New: func() any {
	return &PendingCall{ch: make(chan *proto.Message, 1)}
}}

// timerPool recycles call timers. clk.After leaves a live runtime timer
// behind on every completed call until it expires; a pooled Stop'd timer
// is one runtime timer total per concurrent call.
var timerPool = sync.Pool{New: func() any {
	t := time.NewTimer(time.Hour)
	t.Stop()
	return t
}}

// Start sends m and returns the in-flight call. The response channel is
// closed on connection failure. Start consumes one reference to m.Payload
// on every path — normally through Send, directly when the client is
// already closed — so callers can treat "handed to Start/Go/Do" as
// "released" unconditionally.
func (c *Client) Start(m *proto.Message) *PendingCall {
	var pc *PendingCall
	if bufpool.Enabled() {
		pc = pcPool.Get().(*PendingCall)
		pc.c = c
	} else {
		pc = &PendingCall{c: c, ch: make(chan *proto.Message, 1)}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		bufpool.Put(m.Payload)
		close(pc.ch)
		return pc
	}
	c.nextID++
	m.ID = c.nextID
	pc.id = m.ID
	c.pending[m.ID] = pc.ch
	c.mu.Unlock()

	if err := c.conn.Send(m); err != nil {
		c.mu.Lock()
		if _, ok := c.pending[pc.id]; ok {
			delete(c.pending, pc.id)
			close(pc.ch)
		}
		c.mu.Unlock()
	}
	return pc
}

// Done yields the response, or is closed on connection failure.
func (pc *PendingCall) Done() <-chan *proto.Message { return pc.ch }

// Abandon gives up on the call. If the dispatcher already claimed it, the
// (delivered or imminent) response is drained and its payload released;
// otherwise the pending entry is removed and the dispatcher will release
// the late response when it arrives.
func (pc *PendingCall) Abandon() { pc.abandon() }

// abandon does Abandon's work and reports whether the channel is still
// open and empty — i.e. whether pc may be recycled.
func (pc *PendingCall) abandon() bool {
	if pc.c.forget(pc.id) {
		return true // no send ever happens; channel open and empty
	}
	// The dispatcher removed the entry before we could: its channel send
	// is complete or imminent (or the channel is closed). Never blocks
	// long.
	if resp, ok := <-pc.ch; ok {
		if resp != nil {
			bufpool.Put(resp.Payload)
			proto.Recycle(resp)
		}
		return true // drained; channel open and empty again
	}
	return false // closed by connection failure; not reusable
}

// Do sends m on behalf of op and waits for the response, bounded by the
// op's remaining deadline budget and the optional per-call cap (cap<=0
// means the deadline alone governs the wait). The op's identity and
// remaining budget are stamped into the message so the receiver can derive
// its own sub-budgets — the deadline decrement rule. Cancelling the op
// unblocks the wait promptly; in either early-exit case the pending entry
// is removed, so a late response is dropped by the dispatcher instead of
// leaking.
// Like Start, Do consumes one reference to m.Payload on every path,
// including the pre-send early returns.
func (c *Client) Do(op *opctx.Op, m *proto.Message, cap time.Duration) (*proto.Message, error) {
	// Capture the op code up front: once Start hands m to the server (the
	// simulated network passes pointers), the server side may recycle it,
	// so the error paths below must not read through m.
	opc := m.Op
	if err := op.Err(); err != nil {
		bufpool.Put(m.Payload)
		return nil, fmt.Errorf("rpc call op=%d: %w", opc, err)
	}
	wait, ok := op.Budget(cap)
	if !ok {
		bufpool.Put(m.Payload)
		return nil, fmt.Errorf("rpc call op=%d: budget spent: %w", opc, util.ErrTimeout)
	}
	m.OpID = op.ID()
	m.Budget = op.WireBudget()

	st := op.Stage(opctx.StageNet)
	pc := c.Start(m)
	// Do's PendingCall never escapes, so safe completions recycle it (and
	// the timer) instead of allocating per call.
	var timer *time.Timer
	var timerC <-chan time.Time
	if wait > 0 {
		if bufpool.Enabled() {
			timer = timerPool.Get().(*time.Timer)
			timer.Reset(time.Duration(float64(wait) * c.clk.Scale()))
			timerC = timer.C
		} else {
			timerC = c.clk.After(wait)
		}
	}
	select {
	case resp, respOK := <-pc.ch:
		st.Stop()
		if timer != nil {
			timer.Stop()
			timerPool.Put(timer)
		}
		if !respOK {
			return nil, fmt.Errorf("rpc call op=%d: %w", opc, ErrConnClosed)
		}
		pcPool.Put(pc)
		return resp, nil
	case <-timerC:
		st.Stop()
		if timer != nil {
			timerPool.Put(timer) // fired and drained; nothing to stop
		}
		if pc.abandon() {
			pcPool.Put(pc)
		}
		return nil, fmt.Errorf("rpc call op=%d after %v: %w", opc, wait, util.ErrTimeout)
	case <-op.Done():
		st.Stop()
		if timer != nil {
			timer.Stop()
			timerPool.Put(timer)
		}
		if pc.abandon() {
			pcPool.Put(pc)
		}
		return nil, fmt.Errorf("rpc call op=%d: %w", opc, op.Err())
	}
}

// forget abandons an in-flight call so the dispatcher drops (and releases)
// its late response instead of delivering it. It reports whether the entry
// was still pending; false means the dispatcher already claimed it.
func (c *Client) forget(id uint64) bool {
	c.mu.Lock()
	_, ok := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	return ok
}

// pendingCalls reports the number of in-flight calls (tests).
func (c *Client) pendingCalls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Call sends m and waits up to timeout for the response. A zero timeout
// waits indefinitely (until connection failure). It is Do with a
// single-purpose op: callers that hold a real request context should pass
// it to Do instead so the whole operation shares one deadline.
func (c *Client) Call(m *proto.Message, timeout time.Duration) (*proto.Message, error) {
	return c.Do(opctx.New(c.clk, timeout), m, 0)
}

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() {
	c.conn.Close()
	<-c.done
}

// Handler processes one request and returns the response. Handlers are
// invoked concurrently — out-of-order execution is the transport default;
// per-chunk ordering is the chunk server's job (§3.4).
type Handler func(m *proto.Message) *proto.Message

// Server accepts connections on a listener and dispatches requests.
type Server struct {
	l Listener
	h Handler

	maxInflight int
	qsink       QueueSink

	mu     sync.Mutex
	conns  map[MsgConn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// DefaultMaxInflightPerConn bounds concurrent handlers per connection, the
// moral equivalent of a device queue depth; beyond it requests queue in the
// read loop. Override per server with WithMaxInflight.
const DefaultMaxInflightPerConn = 256

// QueueSink receives the server's admission queue-depth samples.
// *metrics.Registry implements it; the indirection keeps transport free of
// dependencies above clock/proto/util.
type QueueSink interface {
	ObserveValue(name string, x int64)
}

// MetricConnInflight is the queue-depth sample WithQueueMetrics publishes:
// concurrent handlers on one connection, observed at each admission.
const MetricConnInflight = "rpc-conn-inflight"

// ServeOption tunes a Server.
type ServeOption func(*Server)

// WithMaxInflight overrides the per-connection concurrent-handler bound
// (n<=0 keeps the default), the server-side admission knob the bench sweeps
// against the chunk pipeline.
func WithMaxInflight(n int) ServeOption {
	return func(s *Server) {
		if n > 0 {
			s.maxInflight = n
		}
	}
}

// WithQueueMetrics publishes the per-connection admission depth to sink as
// MetricConnInflight value samples.
func WithQueueMetrics(sink QueueSink) ServeOption {
	return func(s *Server) { s.qsink = sink }
}

// Serve starts accepting. It returns immediately; Close stops everything.
func Serve(l Listener, h Handler, opts ...ServeOption) *Server {
	s := &Server{
		l: l, h: h,
		maxInflight: DefaultMaxInflightPerConn,
		conns:       make(map[MsgConn]struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.connLoop(conn)
	}
}

func (s *Server) connLoop(conn MsgConn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sem := make(chan struct{}, s.maxInflight)
	// Parked handler workers, each identified by its inbox. Handler chains
	// run deep (rpc -> chunkserver -> blockstore/journal), so a fresh
	// goroutine per message pays runtime.newstack/copystack to re-grow the
	// same stack every request — ~20% of all CPU at the zero-latency IOPS
	// ceiling. Reusing workers keeps stacks grown. Invariant: a worker
	// parks (pushes its inbox) BEFORE inner.Done(), so once inner.Wait()
	// returns every surviving worker is reachable through idle.
	idle := make(chan chan *proto.Message, s.maxInflight)
	var inner sync.WaitGroup
	worker := func(inbox chan *proto.Message, m *proto.Message) {
		for {
			s.serveOne(conn, m)
			<-sem
			select {
			case idle <- inbox:
			default: // enough idlers parked; retire
				inner.Done()
				return
			}
			inner.Done()
			var ok bool
			if m, ok = <-inbox; !ok {
				return
			}
			// Dispatcher did inner.Add(1) before handing us m.
		}
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			break
		}
		sem <- struct{}{}
		if s.qsink != nil {
			s.qsink.ObserveValue(MetricConnInflight, int64(len(sem)))
		}
		inner.Add(1)
		if !bufpool.Enabled() {
			// Legacy (pre-pool) dispatch: one goroutine per message. Kept
			// reachable so the ceiling bench can measure it as baseline.
			go func(m *proto.Message) {
				defer inner.Done()
				defer func() { <-sem }()
				s.serveOne(conn, m)
			}(m)
			continue
		}
		select {
		case w := <-idle:
			w <- m
		default:
			go worker(make(chan *proto.Message), m)
		}
	}
	inner.Wait()
	// All requests are done; release parked workers.
	for {
		select {
		case w := <-idle:
			close(w)
		default:
			return
		}
	}
}

// serveOne runs the handler for one request and settles the request
// payload's lease.
func (s *Server) serveOne(conn MsgConn, m *proto.Message) {
	if resp := s.h(m); resp != nil {
		_ = conn.Send(resp) // conn teardown surfaces at Recv
	}
	// The server owns the request's payload lease (TCP decode
	// leases from bufpool; in-process payloads are foreign no-ops).
	// A handler that extends the payload's lifetime past its return
	// — a replication fan-out, an aliased response — must Retain.
	// The request frame itself is recycled here too: handlers must not
	// retain m past their return (the replication fan-out copies the
	// header fields it needs before dispatching stragglers).
	bufpool.Put(m.Payload)
	proto.Recycle(m)
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.l.Addr() }

// Close stops the server and closes all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]MsgConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.l.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
