package transport

import (
	"fmt"
	"sync"
	"time"

	"ursa/internal/clock"
	"ursa/internal/opctx"
	"ursa/internal/proto"
	"ursa/internal/util"
)

// Client is a pipelined RPC endpoint over one MsgConn: many calls may be in
// flight simultaneously (the paper's in-network pipelining, §3.4), and
// responses are matched to callers by message ID, so servers may complete
// them out of order.
type Client struct {
	conn MsgConn
	clk  clock.Clock

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *proto.Message
	closed  bool
	done    chan struct{}
}

// NewClient starts the response dispatcher over conn.
func NewClient(conn MsgConn, clk clock.Clock) *Client {
	c := &Client{
		conn:    conn,
		clk:     clk,
		pending: make(map[uint64]chan *proto.Message),
		done:    make(chan struct{}),
	}
	go c.recvLoop()
	return c
}

func (c *Client) recvLoop() {
	defer close(c.done)
	for {
		m, err := c.conn.Recv()
		if err != nil {
			c.failAll()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[m.ID]
		if ok {
			delete(c.pending, m.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- m // buffered; never blocks
		}
		// Unknown IDs are late responses to timed-out calls: dropped.
	}
}

func (c *Client) failAll() {
	c.mu.Lock()
	c.closed = true
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
}

// Go sends m and returns a channel that yields the response, or is closed
// on connection failure. The caller owns timeout policy.
func (c *Client) Go(m *proto.Message) <-chan *proto.Message {
	ch := make(chan *proto.Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		close(ch)
		return ch
	}
	c.nextID++
	m.ID = c.nextID
	c.pending[m.ID] = ch
	c.mu.Unlock()

	if err := c.conn.Send(m); err != nil {
		c.mu.Lock()
		if _, ok := c.pending[m.ID]; ok {
			delete(c.pending, m.ID)
			close(ch)
		}
		c.mu.Unlock()
	}
	return ch
}

// Do sends m on behalf of op and waits for the response, bounded by the
// op's remaining deadline budget and the optional per-call cap (cap<=0
// means the deadline alone governs the wait). The op's identity and
// remaining budget are stamped into the message so the receiver can derive
// its own sub-budgets — the deadline decrement rule. Cancelling the op
// unblocks the wait promptly; in either early-exit case the pending entry
// is removed, so a late response is dropped by the dispatcher instead of
// leaking.
func (c *Client) Do(op *opctx.Op, m *proto.Message, cap time.Duration) (*proto.Message, error) {
	if err := op.Err(); err != nil {
		return nil, fmt.Errorf("rpc call op=%d: %w", m.Op, err)
	}
	wait, ok := op.Budget(cap)
	if !ok {
		return nil, fmt.Errorf("rpc call op=%d: budget spent: %w", m.Op, util.ErrTimeout)
	}
	m.OpID = op.ID()
	m.Budget = op.WireBudget()

	stop := op.StartStage(opctx.StageNet)
	ch := c.Go(m)
	var timer <-chan time.Time
	if wait > 0 {
		timer = c.clk.After(wait)
	}
	select {
	case resp, respOK := <-ch:
		stop()
		if !respOK {
			return nil, fmt.Errorf("rpc call op=%d: %w", m.Op, ErrConnClosed)
		}
		return resp, nil
	case <-timer:
		stop()
		c.forget(m.ID)
		return nil, fmt.Errorf("rpc call op=%d after %v: %w", m.Op, wait, util.ErrTimeout)
	case <-op.Done():
		stop()
		c.forget(m.ID)
		return nil, fmt.Errorf("rpc call op=%d: %w", m.Op, op.Err())
	}
}

// forget abandons an in-flight call so the dispatcher drops its late
// response instead of delivering it (and instead of leaking the entry).
func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// pendingCalls reports the number of in-flight calls (tests).
func (c *Client) pendingCalls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Call sends m and waits up to timeout for the response. A zero timeout
// waits indefinitely (until connection failure). It is Do with a
// single-purpose op: callers that hold a real request context should pass
// it to Do instead so the whole operation shares one deadline.
func (c *Client) Call(m *proto.Message, timeout time.Duration) (*proto.Message, error) {
	return c.Do(opctx.New(c.clk, timeout), m, 0)
}

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() {
	c.conn.Close()
	<-c.done
}

// Handler processes one request and returns the response. Handlers are
// invoked concurrently — out-of-order execution is the transport default;
// per-chunk ordering is the chunk server's job (§3.4).
type Handler func(m *proto.Message) *proto.Message

// Server accepts connections on a listener and dispatches requests.
type Server struct {
	l Listener
	h Handler

	maxInflight int
	qsink       QueueSink

	mu     sync.Mutex
	conns  map[MsgConn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// DefaultMaxInflightPerConn bounds concurrent handlers per connection, the
// moral equivalent of a device queue depth; beyond it requests queue in the
// read loop. Override per server with WithMaxInflight.
const DefaultMaxInflightPerConn = 256

// QueueSink receives the server's admission queue-depth samples.
// *metrics.Registry implements it; the indirection keeps transport free of
// dependencies above clock/proto/util.
type QueueSink interface {
	ObserveValue(name string, x int64)
}

// MetricConnInflight is the queue-depth sample WithQueueMetrics publishes:
// concurrent handlers on one connection, observed at each admission.
const MetricConnInflight = "rpc-conn-inflight"

// ServeOption tunes a Server.
type ServeOption func(*Server)

// WithMaxInflight overrides the per-connection concurrent-handler bound
// (n<=0 keeps the default), the server-side admission knob the bench sweeps
// against the chunk pipeline.
func WithMaxInflight(n int) ServeOption {
	return func(s *Server) {
		if n > 0 {
			s.maxInflight = n
		}
	}
}

// WithQueueMetrics publishes the per-connection admission depth to sink as
// MetricConnInflight value samples.
func WithQueueMetrics(sink QueueSink) ServeOption {
	return func(s *Server) { s.qsink = sink }
}

// Serve starts accepting. It returns immediately; Close stops everything.
func Serve(l Listener, h Handler, opts ...ServeOption) *Server {
	s := &Server{
		l: l, h: h,
		maxInflight: DefaultMaxInflightPerConn,
		conns:       make(map[MsgConn]struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.connLoop(conn)
	}
}

func (s *Server) connLoop(conn MsgConn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sem := make(chan struct{}, s.maxInflight)
	var inner sync.WaitGroup
	for {
		m, err := conn.Recv()
		if err != nil {
			break
		}
		sem <- struct{}{}
		if s.qsink != nil {
			s.qsink.ObserveValue(MetricConnInflight, int64(len(sem)))
		}
		inner.Add(1)
		go func(m *proto.Message) {
			defer inner.Done()
			defer func() { <-sem }()
			if resp := s.h(m); resp != nil {
				_ = conn.Send(resp) // conn teardown surfaces at Recv
			}
		}(m)
	}
	inner.Wait()
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.l.Addr() }

// Close stops the server and closes all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]MsgConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.l.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
