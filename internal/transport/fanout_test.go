package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/opctx"
	"ursa/internal/proto"
)

// stubCaller answers OK after an optional per-target delay, settling the
// request exactly as the real transport does (payload reference consumed,
// frame recycled). Target 0 can be made to fail.
type stubCaller struct {
	delay  map[string]time.Duration
	fail   map[string]bool
	calls  atomic.Int64
	closed sync.WaitGroup
}

func (s *stubCaller) Do(op *opctx.Op, addr string, m *proto.Message, cap time.Duration) (*proto.Message, error) {
	s.calls.Add(1)
	ver := m.Version
	bufpool.Put(m.Payload)
	proto.Recycle(m)
	if d := s.delay[addr]; d > 0 {
		time.Sleep(d)
	}
	if s.fail[addr] {
		return nil, errors.New("stub: down")
	}
	resp := proto.GetMessage()
	resp.Status = proto.StatusOK
	resp.Version = ver
	return resp, nil
}

func fanOp() *opctx.Op { return opctx.New(clock.Realtime, 0) }

func sendBranch(fl *Flight, target int, addr string, op *opctx.Op) {
	m := proto.GetMessage()
	m.Op = proto.OpReplicate
	m.Version = 42
	fl.Go(target, addr, op, time.Second, m)
}

func TestBroadcasterAllAck(t *testing.T) {
	s := &stubCaller{}
	b := NewBroadcaster(s)
	defer b.Close()
	op := fanOp()
	for round := 0; round < 50; round++ {
		fl := b.Begin(3)
		for i, addr := range []string{"a", "b", "c"} {
			sendBranch(fl, i, addr, op)
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			r := fl.Next()
			if r.Err || r.Status != proto.StatusOK || r.Version != 42 {
				t.Fatalf("round %d: bad result %+v", round, r)
			}
			if seen[r.Target] {
				t.Fatalf("round %d: duplicate target %d", round, r.Target)
			}
			seen[r.Target] = true
		}
		fl.Finish()
	}
	if got := s.calls.Load(); got != 150 {
		t.Fatalf("stub saw %d calls, want 150", got)
	}
}

// TestBroadcasterEarlyFinish is the commit-rule shape: the caller decides
// on a majority and Finishes while a slow straggler is still in flight. The
// straggler must settle into the still-live flight, and the flight must be
// reusable afterwards without cross-talk from stale results.
func TestBroadcasterEarlyFinish(t *testing.T) {
	s := &stubCaller{
		delay: map[string]time.Duration{"slow": 30 * time.Millisecond},
		fail:  map[string]bool{"dead": true},
	}
	b := NewBroadcaster(s)
	defer b.Close()
	op := fanOp()
	for round := 0; round < 20; round++ {
		fl := b.Begin(3)
		sendBranch(fl, 0, "ok", op)
		sendBranch(fl, 1, "slow", op)
		sendBranch(fl, 2, "dead", op)
		acks := 0
		for i := 0; i < 2; i++ {
			if r := fl.Next(); !r.Err && r.Status == proto.StatusOK {
				acks++
			}
		}
		fl.Finish() // straggler (or the failure) still outstanding
		if acks == 0 {
			t.Fatalf("round %d: no ack from fast replicas", round)
		}
	}
	// Let every straggler drain so the deferred Close finds quiet workers.
	time.Sleep(100 * time.Millisecond)
	if got := s.calls.Load(); got != 60 {
		t.Fatalf("stub saw %d calls, want 60", got)
	}
}

// TestBroadcasterLegacyMode covers the goroutine-per-branch dispatch the
// baseline benchmark mode uses.
func TestBroadcasterLegacyMode(t *testing.T) {
	prev := bufpool.Enabled()
	bufpool.SetEnabled(false)
	defer bufpool.SetEnabled(prev)

	s := &stubCaller{}
	b := NewBroadcaster(s)
	defer b.Close()
	op := fanOp()
	fl := b.Begin(3)
	for i, addr := range []string{"a", "b", "c"} {
		sendBranch(fl, i, addr, op)
	}
	for i := 0; i < 3; i++ {
		if r := fl.Next(); r.Err || r.Status != proto.StatusOK {
			t.Fatalf("bad result %+v", r)
		}
	}
	fl.Finish()
}

// TestBroadcasterDispatchAfterClose: a teardown race must still settle the
// flight (fresh goroutines), never deadlock or panic.
func TestBroadcasterDispatchAfterClose(t *testing.T) {
	s := &stubCaller{}
	b := NewBroadcaster(s)
	b.Close()
	op := fanOp()
	fl := b.Begin(2)
	sendBranch(fl, 0, "a", op)
	sendBranch(fl, 1, "b", op)
	for i := 0; i < 2; i++ {
		if r := fl.Next(); r.Err {
			t.Fatalf("post-close branch failed: %+v", r)
		}
	}
	fl.Finish()
}
