package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ursa/internal/clock"
	"ursa/internal/opctx"
	"ursa/internal/proto"
	"ursa/internal/util"
)

// blockingServer serves connections with a handler that parks every
// request until release is closed.
func blockingServer(t *testing.T) (*Server, chan struct{}) {
	t.Helper()
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	srv := Serve(l, func(m *proto.Message) *proto.Message {
		<-release
		return m.Reply(proto.StatusOK)
	})
	return srv, release
}

// TestCallUnblocksOnConnDeath pins the shutdown contract: a Call blocked
// in flight when the connection dies must return promptly with an error
// matching util.ErrClosed — not hang until some timeout.
func TestCallUnblocksOnConnDeath(t *testing.T) {
	srv, release := blockingServer(t)
	// LIFO: release the parked handler before srv.Close, which waits for
	// in-flight handlers to drain.
	defer srv.Close()
	defer close(release)

	conn, err := TCPDialer{}.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn, clock.Realtime)
	defer cli.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := cli.Call(&proto.Message{Op: proto.OpRead}, 0) // no timeout: only conn death can end it
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call get in flight
	conn.Close()

	select {
	case err := <-errCh:
		if !errors.Is(err, util.ErrClosed) {
			t.Fatalf("call after conn death: %v (want util.ErrClosed)", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call hung after connection death")
	}
	if n := cli.pendingCalls(); n != 0 {
		t.Errorf("pending entries leaked after conn death: %d", n)
	}
}

// TestLateResponseDropped pins the timeout contract: when a call times
// out, its pending entry is removed immediately, and the server's late
// response is dropped by the dispatcher without leaking or corrupting
// later calls.
func TestLateResponseDropped(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	delay := 200 * time.Millisecond
	srv := Serve(l, func(m *proto.Message) *proto.Message {
		mu.Lock()
		d := delay
		mu.Unlock()
		time.Sleep(d)
		return m.Reply(proto.StatusOK)
	})
	defer srv.Close()

	conn, err := TCPDialer{}.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn, clock.Realtime)
	defer cli.Close()

	if _, err := cli.Call(&proto.Message{Op: proto.OpRead}, 20*time.Millisecond); !errors.Is(err, util.ErrTimeout) {
		t.Fatalf("short-timeout call: %v (want util.ErrTimeout)", err)
	}
	if n := cli.pendingCalls(); n != 0 {
		t.Fatalf("pending entries leaked after timeout: %d", n)
	}

	// Let the late response arrive, then verify the client still works and
	// nothing leaked.
	mu.Lock()
	delay = 0
	mu.Unlock()
	time.Sleep(300 * time.Millisecond)
	resp, err := cli.Call(&proto.Message{Op: proto.OpNop}, time.Second)
	if err != nil || resp.Status != proto.StatusOK {
		t.Fatalf("call after late response: %v %+v", err, resp)
	}
	if n := cli.pendingCalls(); n != 0 {
		t.Errorf("pending entries leaked after late response: %d", n)
	}
}

// TestCancelUnblocksDo pins the cancellation contract: cancelling the op
// unblocks an in-flight Do promptly, removes the pending entry, and the
// connection remains usable for later calls.
func TestCancelUnblocksDo(t *testing.T) {
	srv, release := blockingServer(t)
	defer srv.Close()

	conn, err := TCPDialer{}.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn, clock.Realtime)
	defer cli.Close()

	op := opctx.New(clock.Realtime, time.Hour)
	errCh := make(chan error, 1)
	go func() {
		_, err := cli.Do(op, &proto.Message{Op: proto.OpRead}, 0)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	op.Cancel()

	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Do: %v (want context.Canceled)", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do hung after cancel")
	}
	if n := cli.pendingCalls(); n != 0 {
		t.Errorf("pending entries leaked after cancel: %d", n)
	}

	close(release) // unpark the handler; its response must be dropped
	time.Sleep(50 * time.Millisecond)
	resp, err := cli.Call(&proto.Message{Op: proto.OpNop}, time.Second)
	if err != nil || resp.Status != proto.StatusOK {
		t.Fatalf("call after cancel: %v %+v", err, resp)
	}
}

// TestDoStampsDeadline verifies the decrement rule at the wire: Do stamps
// the op's ID and its *remaining* budget into the outbound message.
func TestDoStampsDeadline(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type stamp struct {
		opID   uint64
		budget time.Duration
	}
	got := make(chan stamp, 1)
	srv := Serve(l, func(m *proto.Message) *proto.Message {
		got <- stamp{m.OpID, m.Budget}
		return m.Reply(proto.StatusOK)
	})
	defer srv.Close()

	conn, err := TCPDialer{}.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn, clock.Realtime)
	defer cli.Close()

	budget := 500 * time.Millisecond
	op := opctx.New(clock.Realtime, budget)
	time.Sleep(10 * time.Millisecond) // spend some budget before the call
	if _, err := cli.Do(op, &proto.Message{Op: proto.OpNop}, 0); err != nil {
		t.Fatal(err)
	}
	s := <-got
	if s.opID != op.ID() {
		t.Errorf("wire op id = %d, want %d", s.opID, op.ID())
	}
	if s.budget <= 0 || s.budget >= budget {
		t.Errorf("wire budget = %v, want in (0, %v): remaining, not original", s.budget, budget)
	}

	// An expired op must not even hit the wire.
	spent := opctx.New(clock.Realtime, time.Nanosecond)
	time.Sleep(time.Millisecond)
	if _, err := cli.Do(spent, &proto.Message{Op: proto.OpNop}, 0); !errors.Is(err, util.ErrTimeout) {
		t.Errorf("expired-op Do: %v (want util.ErrTimeout)", err)
	}
}
