package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"ursa/internal/bufpool"
	"ursa/internal/opctx"
	"ursa/internal/proto"
)

// Caller issues one RPC to one address. *Peers satisfies it; tests and
// micro-benchmarks substitute stubs.
type Caller interface {
	Do(op *opctx.Op, addr string, m *proto.Message, cap time.Duration) (*proto.Message, error)
}

// FanResult is one replica's answer to a fan-out call, reduced to the
// fields commit rules need. The response message itself never escapes the
// worker: its payload lease and frame are settled before the result is
// posted, so a Flight carries no ownership.
type FanResult struct {
	// Target is the caller-chosen index identifying which branch of the
	// fan-out this result belongs to (replica index, shipment index).
	Target  int
	Status  proto.Status
	Version uint64
	// Err is true when the call failed at the transport layer (timeout,
	// connection loss); Status is meaningless then.
	Err bool
}

// flightWidth is the result-channel capacity a pooled Flight carries.
// Fan-outs wider than this (no real placement is) fall back to a fresh
// unpooled channel.
const flightWidth = 32

// Flight is one fan-out in progress: n branches dispatched, results
// arriving on one collector channel. It is pooled; Begin leases it and the
// last reference (the caller's Finish, or the final straggler's worker)
// returns it. The reference protocol is refs = n+1: one per branch, one
// for the caller. That lets the caller Finish after an early commit
// decision while stragglers are still running — they post into the still-
// live Flight and the last of them recycles it.
type Flight struct {
	b    *Broadcaster
	ch   chan FanResult
	refs atomic.Int32
	// pooled records whether ch has the pooled width (wider fan-outs get a
	// throwaway channel and the Flight is not recycled).
	pooled bool
}

// fanJob is one branch of a fan-out, handed to a parked worker.
type fanJob struct {
	fl     *Flight
	target int
	addr   string
	op     *opctx.Op
	cap    time.Duration
	m      *proto.Message
}

// fanWorker is a parked goroutine owning grown stack + inbox, reused
// across fan-outs — the same economics as the transport server's
// per-connection workers: replication chains run deep, and a fresh
// goroutine per branch re-grows the same stack every write.
type fanWorker struct {
	in chan fanJob
}

// Broadcaster dispatches fan-out branches onto pooled workers and collects
// results through pooled Flights. One Broadcaster per fan-out site (vdisk,
// chunkserver); Close releases the parked workers.
type Broadcaster struct {
	caller Caller

	mu     sync.Mutex
	idle   []*fanWorker
	closed bool
}

// NewBroadcaster returns a Broadcaster issuing calls through caller.
func NewBroadcaster(caller Caller) *Broadcaster {
	return &Broadcaster{caller: caller}
}

// flightPool recycles Flights (struct + collector channel). A Flight is
// recyclable only when refs hits zero with its channel drained.
var flightPool = sync.Pool{New: func() any {
	return &Flight{ch: make(chan FanResult, flightWidth), pooled: true}
}}

// Begin opens a fan-out of n branches. The caller then issues n Go calls,
// consumes results with Next, and must call Finish exactly once (it may do
// so before all results arrived; stragglers settle themselves).
func (b *Broadcaster) Begin(n int) *Flight {
	var fl *Flight
	if n <= flightWidth && bufpool.Enabled() {
		fl = flightPool.Get().(*Flight)
	} else {
		fl = &Flight{ch: make(chan FanResult, n)}
	}
	fl.b = b
	fl.refs.Store(int32(n) + 1)
	return fl
}

// Go dispatches one branch. The message must be fully filled in by the
// caller, who transfers ownership: the branch consumes one payload
// reference (via Do on every path) and the response never escapes the
// worker. Callers sharing one payload across branches Retain once per
// branch before Go.
func (fl *Flight) Go(target int, addr string, op *opctx.Op, cap time.Duration, m *proto.Message) {
	j := fanJob{fl: fl, target: target, addr: addr, op: op, cap: cap, m: m}
	b := fl.b
	if !bufpool.Enabled() {
		// Legacy dispatch: one goroutine per branch, matching the pre-pool
		// write path the ceiling bench measures as baseline.
		go b.runJob(j)
		return
	}
	b.mu.Lock()
	if n := len(b.idle); n > 0 && !b.closed {
		w := b.idle[n-1]
		b.idle = b.idle[:n-1]
		b.mu.Unlock()
		w.in <- j
		return
	}
	closed := b.closed
	b.mu.Unlock()
	if closed {
		// Dispatch after Close (teardown race): run the branch on a fresh
		// goroutine so the flight still settles and leases are released.
		go b.runJob(j)
		return
	}
	w := &fanWorker{in: make(chan fanJob)}
	go b.workerLoop(w, j)
}

// Next yields the next arriving result. The caller must take at most n
// results for a flight of n branches.
func (fl *Flight) Next() FanResult { return <-fl.ch }

// Finish drops the caller's reference. After Finish the caller must not
// touch the flight again; outstanding branches complete on their own and
// the last one recycles the flight.
func (fl *Flight) Finish() { fl.release() }

// release drops one reference; the holder of the last one drains any
// un-consumed results and returns the flight to the pool.
func (fl *Flight) release() {
	if fl.refs.Add(-1) != 0 {
		return
	}
	// Sole owner now: drain results the caller never consumed (early
	// commit decision) so the channel is empty for the next lease.
	for {
		select {
		case <-fl.ch:
		default:
			if fl.pooled && bufpool.Enabled() {
				fl.b = nil
				flightPool.Put(fl)
			}
			return
		}
	}
}

// workerLoop runs j, then parks the worker for reuse until Close.
func (b *Broadcaster) workerLoop(w *fanWorker, j fanJob) {
	for {
		b.runJob(j)
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return
		}
		b.idle = append(b.idle, w)
		b.mu.Unlock()
		var ok bool
		if j, ok = <-w.in; !ok {
			return
		}
	}
}

// runJob issues one branch call and posts its result. The response is
// fully consumed here: payload lease settled, frame recycled.
func (b *Broadcaster) runJob(j fanJob) {
	resp, err := b.caller.Do(j.op, j.addr, j.m, j.cap)
	res := FanResult{Target: j.target, Err: err != nil || resp == nil}
	if resp != nil {
		res.Status = resp.Status
		res.Version = resp.Version
		bufpool.Put(resp.Payload)
		proto.Recycle(resp)
	}
	j.fl.ch <- res
	j.fl.release()
}

// Close releases the parked workers. In-flight branches finish on their
// own; branches dispatched after Close run on fresh goroutines.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	idle := b.idle
	b.idle = nil
	b.closed = true
	b.mu.Unlock()
	for _, w := range idle {
		close(w.in)
	}
}
