package transport

import (
	"testing"

	"ursa/internal/clock"
	"ursa/internal/proto"
	"ursa/internal/util"
)

// benchMsg builds a hot-path-shaped replicate message.
func benchMsg(payload int) *proto.Message {
	return &proto.Message{
		ID: 7, Op: proto.OpReplicate, Chunk: 42, Off: 8192,
		View: 1, Version: 9, OpID: 3, Payload: make([]byte, payload),
	}
}

// BenchmarkTCPSend measures the per-message cost of the tcp Send path
// (encode + buffered write + flush) over a loopback connection with the
// peer draining frames.
func BenchmarkTCPSend(b *testing.B) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
	c, err := (TCPDialer{}).Dial(l.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	m := benchMsg(4 * util.KiB)
	b.ReportAllocs()
	b.SetBytes(int64(m.WireSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimnetSend measures the simnet Send path (token-bucket shaping +
// queue handoff); simnet carries the in-memory message, so there is no
// encode buffer to pool — this pins down the path's baseline allocations.
func BenchmarkSimnetSend(b *testing.B) {
	net := NewSimNet(clock.Realtime, 0)
	nodeCfg := NodeConfig{}
	l, err := net.Listen("srv", nodeCfg)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
	c, err := net.Dialer("cli", nodeCfg).Dial("srv")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	m := benchMsg(4 * util.KiB)
	b.ReportAllocs()
	b.SetBytes(int64(m.WireSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(m); err != nil {
			b.Fatal(err)
		}
	}
}
