package transport

import (
	"fmt"
	"sync"
	"time"

	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/proto"
	"ursa/internal/util"
)

// SimNet is the in-process network fabric: named nodes with per-NIC
// bandwidth shaping, fixed propagation delay, and injectable faults.
// Partitioned links drop messages silently (the protocol's timeouts, not
// the transport, detect them — matching the paper's hybrid fault model,
// §4.1); crashed nodes refuse dials and error all connections.
type SimNet struct {
	clk     clock.Clock
	latency time.Duration

	mu    sync.Mutex
	nodes map[string]*simNode
	cut   map[[2]string]bool
}

type simNode struct {
	addr      string
	accept    chan *simConn
	in, out   *TokenBucket
	down      bool
	conns     map[*simConn]struct{}
	listening bool
	lclosed   chan struct{}
	lcloseOne sync.Once
}

// NewSimNet creates a fabric with the given one-way propagation delay
// (model time).
func NewSimNet(clk clock.Clock, latency time.Duration) *SimNet {
	return &SimNet{
		clk:     clk,
		latency: latency,
		nodes:   make(map[string]*simNode),
		cut:     make(map[[2]string]bool),
	}
}

// NodeConfig sets a node's NIC rates in bytes/second (0 = unlimited).
// SharedIn/SharedOut, when non-nil, override the rates with existing
// buckets so several nodes (the servers of one "machine") contend for one
// physical NIC.
type NodeConfig struct {
	InRate    float64
	OutRate   float64
	SharedIn  *TokenBucket
	SharedOut *TokenBucket
}

func (cfg NodeConfig) buckets(clk clock.Clock) (in, out *TokenBucket) {
	in, out = cfg.SharedIn, cfg.SharedOut
	if in == nil {
		in = NewTokenBucket(clk, cfg.InRate)
	}
	if out == nil {
		out = NewTokenBucket(clk, cfg.OutRate)
	}
	return in, out
}

// Listen returns the listener of the node at addr, creating the node if
// needed. A node created earlier by Dialer (services share their machine's
// identity and NIC) may start listening later, but each address hosts at
// most one active listener.
func (n *SimNet) Listen(addr string, cfg NodeConfig) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	node := n.ensureNodeLocked(addr, cfg)
	if node.listening {
		return nil, fmt.Errorf("simnet: address %q already listening: %w", addr, util.ErrExists)
	}
	node.listening = true
	node.lclosed = make(chan struct{})
	node.lcloseOne = sync.Once{}
	return &simListener{net: n, node: node}, nil
}

// Dialer returns a dialer whose traffic is charged to the named node's NIC.
// The node is created on first use if it never listens.
func (n *SimNet) Dialer(fromAddr string, cfg NodeConfig) Dialer {
	n.mu.Lock()
	defer n.mu.Unlock()
	node := n.ensureNodeLocked(fromAddr, cfg)
	return &simDialer{net: n, node: node}
}

func (n *SimNet) ensureNodeLocked(addr string, cfg NodeConfig) *simNode {
	node, ok := n.nodes[addr]
	if !ok {
		in, out := cfg.buckets(n.clk)
		node = &simNode{
			addr:   addr,
			accept: make(chan *simConn, 128),
			in:     in,
			out:    out,
			conns:  make(map[*simConn]struct{}),
		}
		n.nodes[addr] = node
	}
	return node
}

func cutKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Partition drops all traffic between a and b until Heal.
func (n *SimNet) Partition(a, b string) {
	n.mu.Lock()
	n.cut[cutKey(a, b)] = true
	n.mu.Unlock()
}

// Heal restores the link between a and b.
func (n *SimNet) Heal(a, b string) {
	n.mu.Lock()
	delete(n.cut, cutKey(a, b))
	n.mu.Unlock()
}

// HealAllPartitions restores every cut link (the chaos harness's
// end-of-run sweep).
func (n *SimNet) HealAllPartitions() {
	n.mu.Lock()
	n.cut = make(map[[2]string]bool)
	n.mu.Unlock()
}

// partitioned reports whether traffic a→b is currently dropped.
func (n *SimNet) partitioned(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cut[cutKey(a, b)]
}

// Crash marks the node down and errors all of its connections.
func (n *SimNet) Crash(addr string) {
	n.mu.Lock()
	node, ok := n.nodes[addr]
	if !ok {
		n.mu.Unlock()
		return
	}
	node.down = true
	conns := make([]*simConn, 0, len(node.conns))
	for c := range node.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Restart brings a crashed node back (listeners resume accepting).
func (n *SimNet) Restart(addr string) {
	n.mu.Lock()
	if node, ok := n.nodes[addr]; ok {
		node.down = false
	}
	n.mu.Unlock()
}

// Down reports whether the node is crashed.
func (n *SimNet) Down(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[addr]
	return ok && node.down
}

// timedMsg carries a message and its transmit completion time.
type timedMsg struct {
	m    *proto.Message
	sent time.Time
}

// simPipe is one direction of a connection: a deep FIFO plus propagation
// delay applied at the receiver, so many messages can be in flight — the
// in-network pipelining the paper leans on (§3.4).
//
// Enqueue and close are serialized by the mutex so a message can never be
// committed to a pipe after close has drained it — undrained messages
// would leak their payload leases. A full pipe drops the message like a
// congested switch would (the FIFO is 16× deeper than the per-connection
// inflight cap, so this does not happen outside adversarial tests).
type simPipe struct {
	mu     sync.Mutex
	dead   bool
	ch     chan timedMsg
	closed chan struct{}
}

func newSimPipe() *simPipe {
	return &simPipe{ch: make(chan timedMsg, 4096), closed: make(chan struct{})}
}

// send enqueues tm, taking ownership of its payload lease. A closed pipe
// reports ErrConnClosed; a full pipe drops silently. Either way the lease
// is released — the simulated wire is a consumer like any other.
func (p *simPipe) send(tm timedMsg) error {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		bufpool.Put(tm.m.Payload)
		return ErrConnClosed
	}
	select {
	case p.ch <- tm:
		p.mu.Unlock()
		return nil
	default:
		p.mu.Unlock()
		bufpool.Put(tm.m.Payload) // congestion drop
		return nil
	}
}

// close marks the pipe dead and releases every undelivered message's
// payload lease. Idempotent; safe against concurrent send and recv.
func (p *simPipe) close() {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	close(p.closed)
	p.mu.Unlock()
	for {
		select {
		case tm := <-p.ch:
			bufpool.Put(tm.m.Payload)
		default:
			return
		}
	}
}

// simConn is one end of a simulated connection.
type simConn struct {
	net        *SimNet
	local      *simNode
	remoteAddr string
	sendPipe   *simPipe // messages we transmit
	recvPipe   *simPipe // messages we receive
	peer       *simConn
}

// Send shapes the message through both NICs and enqueues it, dropping it
// silently when the link is partitioned or the peer is down. Send consumes
// the caller's reference to m.Payload: delivery hands it to the receiver,
// and every drop path releases it (a dropped message's payload would
// otherwise leak its lease).
func (c *simConn) Send(m *proto.Message) error {
	select {
	case <-c.sendPipe.closed:
		bufpool.Put(m.Payload)
		return ErrConnClosed
	default:
	}
	size := m.WireSize()
	c.local.out.Take(size)
	if c.net.partitioned(c.local.addr, c.remoteAddr) || c.net.Down(c.remoteAddr) {
		bufpool.Put(m.Payload)
		return nil // dropped on the wire; timeouts upstairs handle it
	}
	c.net.nodeIn(c.remoteAddr).Take(size)
	return c.sendPipe.send(timedMsg{m: m, sent: c.net.clk.Now()})
}

func (n *SimNet) nodeIn(addr string) *TokenBucket {
	n.mu.Lock()
	defer n.mu.Unlock()
	if node, ok := n.nodes[addr]; ok {
		return node.in
	}
	return nil
}

// Recv delivers the next message after its propagation delay elapses.
func (c *simConn) Recv() (*proto.Message, error) {
	select {
	case tm := <-c.recvPipe.ch:
		if wait := c.net.latency - c.net.clk.Now().Sub(tm.sent); wait > 0 {
			c.net.clk.Sleep(wait)
		}
		return tm.m, nil
	case <-c.recvPipe.closed:
		return nil, ErrConnClosed
	}
}

// Close tears down both directions and unregisters from the node.
func (c *simConn) Close() error {
	c.sendPipe.close()
	c.recvPipe.close()
	c.net.mu.Lock()
	delete(c.local.conns, c)
	if c.peer != nil {
		delete(c.peer.local.conns, c.peer)
	}
	c.net.mu.Unlock()
	if c.peer != nil {
		c.peer.sendPipe.close()
		c.peer.recvPipe.close()
	}
	return nil
}

// simListener accepts connections for a node.
type simListener struct {
	net  *SimNet
	node *simNode
}

func (l *simListener) Accept() (MsgConn, error) {
	select {
	case c := <-l.node.accept:
		return c, nil
	case <-l.node.lclosed:
		return nil, ErrConnClosed
	}
}

func (l *simListener) Close() error {
	l.node.lcloseOne.Do(func() {
		// Stop new dials, then tear down connections still waiting in the
		// accept queue so their clients see the closure.
		l.net.mu.Lock()
		l.node.listening = false
		l.net.mu.Unlock()
		close(l.node.lclosed)
		for {
			select {
			case c := <-l.node.accept:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

func (l *simListener) Addr() string { return l.node.addr }

// simDialer opens connections from its node.
type simDialer struct {
	net  *SimNet
	node *simNode
}

func (d *simDialer) Dial(addr string) (MsgConn, error) {
	d.net.mu.Lock()
	remote, ok := d.net.nodes[addr]
	if !ok || !remote.listening || remote.down || d.node.down {
		d.net.mu.Unlock()
		return nil, fmt.Errorf("simnet: dial %q: %w", addr, util.ErrPartitioned)
	}
	if d.net.cut[cutKey(d.node.addr, addr)] {
		d.net.mu.Unlock()
		return nil, fmt.Errorf("simnet: dial %q: %w", addr, util.ErrPartitioned)
	}
	a2b, b2a := newSimPipe(), newSimPipe()
	local := &simConn{net: d.net, local: d.node, remoteAddr: addr,
		sendPipe: a2b, recvPipe: b2a}
	peer := &simConn{net: d.net, local: remote, remoteAddr: d.node.addr,
		sendPipe: b2a, recvPipe: a2b}
	local.peer, peer.peer = peer, local
	d.node.conns[local] = struct{}{}
	remote.conns[peer] = struct{}{}
	// Enqueue under the lock so a concurrent listener Close cannot miss
	// this connection between its drain and our enqueue.
	select {
	case remote.accept <- peer:
		d.net.mu.Unlock()
		return local, nil
	default:
		d.net.mu.Unlock()
		local.Close()
		return nil, fmt.Errorf("simnet: dial %q: accept queue full", addr)
	}
}
