package cachesim

import (
	"testing"

	"ursa/internal/trace"
	"ursa/internal/util"
)

func TestReplayBasics(t *testing.T) {
	recs := []trace.Record{
		{Write: true, Off: 0, Size: 4096},     // populates block 0
		{Write: false, Off: 0, Size: 4096},    // hit
		{Write: false, Off: 8192, Size: 4096}, // miss (fresh block)
		{Write: false, Off: 8192, Size: 4096}, // hit (now cached)
	}
	res := Replay("t", recs)
	if res.Reads != 3 || res.ReadHits != 2 || res.Writes != 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.HitRatio < 0.66 || res.HitRatio > 0.67 {
		t.Errorf("hit ratio = %v", res.HitRatio)
	}
}

func TestReplayPartialHitIsMiss(t *testing.T) {
	recs := []trace.Record{
		{Write: true, Off: 0, Size: 4096},
		// Read spans a cached and an uncached block: counts as a miss.
		{Write: false, Off: 0, Size: 8192},
	}
	res := Replay("t", recs)
	if res.ReadHits != 0 {
		t.Errorf("partial overlap counted as hit: %+v", res)
	}
}

func TestFig2Separation(t *testing.T) {
	// The synthetic catalog must reproduce Fig 2's structure: exactly the
	// 17 flagged volumes fall below the 75% read-hit threshold under the
	// paper's optimistic cache model.
	const ops = 30000
	for i, e := range trace.Catalog() {
		recs := e.Profile.Generate(uint64(100+i), ops)
		res := Replay(e.Name, recs)
		if e.LowHit && res.HitRatio >= LowHitThreshold {
			t.Errorf("%s: hit %.2f, expected < %.2f", e.Name, res.HitRatio, LowHitThreshold)
		}
		if !e.LowHit && res.HitRatio < LowHitThreshold {
			t.Errorf("%s: hit %.2f, expected ≥ %.2f", e.Name, res.HitRatio, LowHitThreshold)
		}
	}
}

func TestReplayEmptyAndWriteOnly(t *testing.T) {
	if res := Replay("empty", nil); res.HitRatio != 0 || res.Reads != 0 {
		t.Errorf("empty = %+v", res)
	}
	recs := []trace.Record{{Write: true, Off: 0, Size: util.MiB}}
	res := Replay("w", recs)
	if res.Reads != 0 || res.Blocks != util.MiB/(4*util.KiB) {
		t.Errorf("write-only = %+v", res)
	}
}
