// Package cachesim replays block traces against a simulated cache to
// reproduce the paper's motivation study (Fig 2): even with an unlimited
// write-back cache and infinite write-back speed — both deliberately
// optimistic — nearly half the MSR volumes read most blocks exactly once,
// so a cache layer cannot absorb their reads. §2 concludes that any real
// cache (finite, with eviction) would do strictly worse, which is the
// argument for URSA's cache-free hybrid layout.
package cachesim

import (
	"ursa/internal/trace"
	"ursa/internal/util"
)

// blockSize is the cache line granularity.
const blockSize = 4 * util.KiB

// Result summarizes a replay.
type Result struct {
	Reads     int64
	ReadHits  int64
	Writes    int64
	Blocks    int64 // resident blocks at the end
	HitRatio  float64
	TraceName string
}

// Replay runs records through a write-back cache of unlimited size with
// infinite write-back speed (cached blocks always clean), counting read
// hits per 4 KB block, exactly as the paper's simulation (§2).
func Replay(name string, records []trace.Record) Result {
	cache := make(map[int64]struct{})
	res := Result{TraceName: name}
	for _, rec := range records {
		first := rec.Off / blockSize
		last := (rec.Off + int64(rec.Size) - 1) / blockSize
		if rec.Write {
			res.Writes++
			for b := first; b <= last; b++ {
				cache[b] = struct{}{}
			}
			continue
		}
		res.Reads++
		hit := true
		for b := first; b <= last; b++ {
			if _, ok := cache[b]; !ok {
				hit = false
				cache[b] = struct{}{}
			}
		}
		if hit {
			res.ReadHits++
		}
	}
	res.Blocks = int64(len(cache))
	if res.Reads > 0 {
		res.HitRatio = float64(res.ReadHits) / float64(res.Reads)
	}
	return res
}

// LowHitThreshold is Fig 2's cutoff: the figure shows the traces whose
// read hit ratio falls below 75%.
const LowHitThreshold = 0.75
