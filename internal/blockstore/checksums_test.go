package blockstore

import (
	"errors"
	"sync"
	"testing"

	"ursa/internal/clock"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

func sumsStore(t *testing.T) *Store {
	t.Helper()
	m := simdisk.DefaultSSD()
	m.Capacity = 256 * util.MiB
	d := simdisk.NewSSD(m, clock.TestClock())
	t.Cleanup(func() { d.Close() })
	return New(d, 0)
}

func TestChecksumFreshChunkVerifiesAsZeros(t *testing.T) {
	s := sumsStore(t)
	id := MakeChunkID(1, 0)
	if err := s.Create(id); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*util.KiB)
	if err := s.ReadAt(id, buf, 8192); err != nil {
		t.Fatal(err)
	}
	if err := s.Sums().Verify(id, 8192, buf); err != nil {
		t.Errorf("fresh chunk must verify as zeros: %v", err)
	}
	// Non-zero data against an unstamped sector is a mismatch.
	buf[0] = 1
	err := s.Sums().Verify(id, 8192, buf)
	if !errors.Is(err, util.ErrCorrupt) {
		t.Errorf("tampered zeros: err = %v, want ErrCorrupt", err)
	}
}

func TestChecksumStampVerifyRoundTrip(t *testing.T) {
	s := sumsStore(t)
	id := MakeChunkID(2, 5)
	if err := s.Create(id); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8*util.KiB)
	util.NewRand(31).Fill(data)
	if err := s.WriteAt(id, data, 64*util.KiB); err != nil {
		t.Fatal(err)
	}
	s.Sums().Stamp(id, 64*util.KiB, data)

	got := make([]byte, len(data))
	if err := s.ReadAt(id, got, 64*util.KiB); err != nil {
		t.Fatal(err)
	}
	if err := s.Sums().Verify(id, 64*util.KiB, got); err != nil {
		t.Errorf("round trip: %v", err)
	}
	// Adjacent unwritten sectors still verify as zeros.
	zero := make([]byte, util.SectorSize)
	if err := s.Sums().Verify(id, 64*util.KiB+int64(len(data)), zero); err != nil {
		t.Errorf("neighbor sector: %v", err)
	}
	// A single flipped byte is caught.
	got[777] ^= 0x01
	if err := s.Sums().Verify(id, 64*util.KiB, got); !errors.Is(err, util.ErrCorrupt) {
		t.Errorf("flipped byte: err = %v, want ErrCorrupt", err)
	}
}

func TestChecksumDropOnDelete(t *testing.T) {
	s := sumsStore(t)
	id := MakeChunkID(3, 1)
	if err := s.Create(id); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, util.SectorSize)
	util.NewRand(32).Fill(data)
	s.Sums().Stamp(id, 0, data)
	if _, ok := s.Sums().Sum(id, 0); !ok {
		t.Fatal("stamped sum missing")
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Sums().Sum(id, 0); ok {
		t.Error("sums survived delete")
	}
	// Verify on a missing chunk is vacuous, and stamping it is a no-op.
	if err := s.Sums().Verify(id, 0, data); err != nil {
		t.Errorf("verify after delete: %v", err)
	}
	s.Sums().Stamp(id, 0, data)
	if _, ok := s.Sums().Sum(id, 0); ok {
		t.Error("stamp resurrected a deleted chunk")
	}
	// Recreation starts over from the all-zero fingerprint.
	if err := s.Create(id); err != nil {
		t.Fatal(err)
	}
	if sum, ok := s.Sums().Sum(id, 0); !ok || sum != util.Checksum(make([]byte, util.SectorSize)) {
		t.Errorf("recreated chunk sum = %08x ok=%v, want zero-sector CRC", sum, ok)
	}
}

// TestChecksumConcurrentStampVerify races disjoint stamps against verifies
// of already-stamped sectors; run under -race this pins down the locking.
func TestChecksumConcurrentStampVerify(t *testing.T) {
	s := sumsStore(t)
	id := MakeChunkID(4, 0)
	if err := s.Create(id); err != nil {
		t.Fatal(err)
	}
	base := make([]byte, util.SectorSize)
	util.NewRand(33).Fill(base)
	s.Sums().Stamp(id, 0, base)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := make([]byte, util.SectorSize)
			util.NewRand(uint64(40 + w)).Fill(data)
			off := int64(w+1) * 4 * util.KiB
			for i := 0; i < 200; i++ {
				s.Sums().Stamp(id, off, data)
				if err := s.Sums().Verify(id, off, data); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := s.Sums().Verify(id, 0, base); err != nil {
				t.Errorf("reader: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
