package blockstore

import (
	"fmt"
	"sync"

	"ursa/internal/util"
)

// chunkSectors is the number of per-sector checksum slots a chunk needs.
const chunkSectors = util.ChunkSize / util.SectorSize

// zeroSectorCRC is the CRC-32C of an all-zero sector: the checksum every
// sector of a fresh chunk carries, since chunks read as zeros until written.
var zeroSectorCRC = util.Checksum(make([]byte, util.SectorSize))

// ChecksumStore keeps one CRC-32C per 512-byte sector of every resident
// chunk, covering the chunk's logical content (for a backup that includes
// data still parked in the journal — replay preserves logical content, so
// the sums stay valid across it). Write paths Stamp after the device ack;
// read paths Verify the payload they are about to return. A chunk with no
// stamped sectors verifies against the all-zero fingerprint.
//
// Sums live in memory beside the slot table, not on the data disk: what the
// subsystem defends against is the data disk lying, so keeping the sums off
// that failure domain is the point (production stores put them in NVRAM or
// a separate checksum file; here a restarted server re-attaches to the same
// Store, which models sums persisted outside the rotting device).
type ChecksumStore struct {
	mu   sync.Mutex
	sums map[ChunkID][]uint32 // nil slice = chunk exists, all sectors zero
}

func newChecksumStore() *ChecksumStore {
	return &ChecksumStore{sums: make(map[ChunkID][]uint32)}
}

// create registers a fresh chunk whose every sector reads as zeros.
func (c *ChecksumStore) create(id ChunkID) {
	c.mu.Lock()
	if _, ok := c.sums[id]; !ok {
		c.sums[id] = nil
	}
	c.mu.Unlock()
}

// drop forgets a deleted chunk's sums.
func (c *ChecksumStore) drop(id ChunkID) {
	c.mu.Lock()
	delete(c.sums, id)
	c.mu.Unlock()
}

// sectorRange validates alignment and returns the covered sector window.
func sectorRange(id ChunkID, off int64, n int) (lo, hi int64) {
	if off%util.SectorSize != 0 || n%util.SectorSize != 0 ||
		off < 0 || off+int64(n) > util.ChunkSize {
		panic(fmt.Sprintf("blockstore: unaligned checksum range %v [%d,%d)",
			id, off, off+int64(n)))
	}
	return off / util.SectorSize, (off + int64(n)) / util.SectorSize
}

// Stamp records the checksums of data just written at chunk-relative off.
// Stamping an unknown chunk is a no-op (it was deleted concurrently).
func (c *ChecksumStore) Stamp(id ChunkID, off int64, data []byte) {
	lo, hi := sectorRange(id, off, len(data))
	// CRC work outside the lock; only the copy-in is serialized.
	fresh := make([]uint32, hi-lo)
	for i := range fresh {
		s := int64(i) * util.SectorSize
		fresh[i] = util.Checksum(data[s : s+util.SectorSize])
	}
	c.mu.Lock()
	arr, ok := c.sums[id]
	if !ok {
		c.mu.Unlock()
		return
	}
	if arr == nil {
		arr = make([]uint32, chunkSectors)
		for i := range arr {
			arr[i] = zeroSectorCRC
		}
		c.sums[id] = arr
	}
	copy(arr[lo:hi], fresh)
	c.mu.Unlock()
}

// Verify checks data read at chunk-relative off against the recorded sums.
// A mismatch returns an error wrapping util.ErrCorrupt naming the first bad
// sector; an unknown chunk verifies vacuously (deleted concurrently).
func (c *ChecksumStore) Verify(id ChunkID, off int64, data []byte) error {
	lo, hi := sectorRange(id, off, len(data))
	got := make([]uint32, hi-lo)
	for i := range got {
		s := int64(i) * util.SectorSize
		got[i] = util.Checksum(data[s : s+util.SectorSize])
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	arr, ok := c.sums[id]
	if !ok {
		return nil
	}
	for i, g := range got {
		want := zeroSectorCRC
		if arr != nil {
			want = arr[lo+int64(i)]
		}
		if g != want {
			return fmt.Errorf("blockstore: chunk %v sector %d: checksum %08x, want %08x: %w",
				id, lo+int64(i), g, want, util.ErrCorrupt)
		}
	}
	return nil
}

// Sum returns the recorded checksum of one sector (tests and diagnostics).
func (c *ChecksumStore) Sum(id ChunkID, sector int64) (uint32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	arr, ok := c.sums[id]
	if !ok || sector < 0 || sector >= chunkSectors {
		return 0, false
	}
	if arr == nil {
		return zeroSectorCRC, true
	}
	return arr[sector], true
}
