package blockstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ursa/internal/util"
)

// chunkSectors is the number of per-sector checksum slots a chunk needs.
const chunkSectors = util.ChunkSize / util.SectorSize

// zeroSectorCRC is the CRC-32C of an all-zero sector: the checksum every
// sector of a fresh chunk carries, since chunks read as zeros until written.
var zeroSectorCRC = util.Checksum(make([]byte, util.SectorSize))

// sumShards stripes the checksum table by chunk ID so QD32 verify/stamp
// traffic on different chunks never serializes. Must be a power of two.
const sumShards = 32

// scratchSectors is the stack budget for fused stamp/verify: requests up
// to scratchSectors*512 B (32 KiB, which covers the whole 4–8 KiB hot
// path) run with zero heap allocation.
const scratchSectors = 64

// legacySums switches Stamp/Verify back to the pre-fusion two-pass code:
// a fresh []uint32 per call, CRC pass, then compare/copy under one global
// mutex. It exists as the measured baseline of `ursa-bench -fig ceiling`.
var legacySums atomic.Bool

// SetLegacyChecksums toggles the pre-fusion checksum code path (true =
// allocate per call, single global lock). Benchmarks only.
func SetLegacyChecksums(on bool) { legacySums.Store(on) }

// ChecksumStore keeps one CRC-32C per 512-byte sector of every resident
// chunk, covering the chunk's logical content (for a backup that includes
// data still parked in the journal — replay preserves logical content, so
// the sums stay valid across it). Write paths Stamp after the device ack;
// read paths Verify the payload they are about to return. A chunk with no
// stamped sectors verifies against the all-zero fingerprint.
//
// Sums live in memory beside the slot table, not on the data disk: what the
// subsystem defends against is the data disk lying, so keeping the sums off
// that failure domain is the point (production stores put them in NVRAM or
// a separate checksum file; here a restarted server re-attaches to the same
// Store, which models sums persisted outside the rotting device).
//
// The table is striped by chunk ID, and the hot paths are fused single
// passes: Verify snapshots the expected sums (a few words) under the shard
// lock, then walks the payload once, checksumming and comparing each
// sector as it goes; Stamp checksums into a stack scratch and copies the
// words in under the lock. Neither touches the payload under a lock or
// allocates for requests ≤ 32 KiB.
type ChecksumStore struct {
	shards [sumShards]sumShard
}

type sumShard struct {
	mu   sync.Mutex
	sums map[ChunkID][]uint32 // nil slice = chunk exists, all sectors zero
}

func newChecksumStore() *ChecksumStore {
	c := &ChecksumStore{}
	for i := range c.shards {
		c.shards[i].sums = make(map[ChunkID][]uint32)
	}
	return c
}

func (c *ChecksumStore) shard(id ChunkID) *sumShard {
	if legacySums.Load() {
		// Pre-stripe behavior: every chunk behind one mutex.
		return &c.shards[0]
	}
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &c.shards[h>>58&(sumShards-1)]
}

// create registers a fresh chunk whose every sector reads as zeros.
func (c *ChecksumStore) create(id ChunkID) {
	sh := c.shard(id)
	sh.mu.Lock()
	if _, ok := sh.sums[id]; !ok {
		sh.sums[id] = nil
	}
	sh.mu.Unlock()
}

// drop forgets a deleted chunk's sums.
func (c *ChecksumStore) drop(id ChunkID) {
	sh := c.shard(id)
	sh.mu.Lock()
	delete(sh.sums, id)
	sh.mu.Unlock()
}

// sectorRange validates alignment and returns the covered sector window.
func sectorRange(id ChunkID, off int64, n int) (lo, hi int64) {
	if off%util.SectorSize != 0 || n%util.SectorSize != 0 ||
		off < 0 || off+int64(n) > util.ChunkSize {
		panic(fmt.Sprintf("blockstore: unaligned checksum range %v [%d,%d)",
			id, off, off+int64(n)))
	}
	return off / util.SectorSize, (off + int64(n)) / util.SectorSize
}

// materializeLocked returns the chunk's sum array, expanding the all-zero
// nil representation on first stamp. ok=false means the chunk is unknown.
func (sh *sumShard) materializeLocked(id ChunkID) ([]uint32, bool) {
	arr, ok := sh.sums[id]
	if !ok {
		return nil, false
	}
	if arr == nil {
		arr = make([]uint32, chunkSectors)
		for i := range arr {
			arr[i] = zeroSectorCRC
		}
		sh.sums[id] = arr
	}
	return arr, true
}

// Stamp records the checksums of data just written at chunk-relative off.
// Stamping an unknown chunk is a no-op (it was deleted concurrently).
func (c *ChecksumStore) Stamp(id ChunkID, off int64, data []byte) {
	lo, hi := sectorRange(id, off, len(data))
	if legacySums.Load() {
		c.stampLegacy(id, lo, hi, data)
		return
	}
	var scratch [scratchSectors]uint32
	var fresh []uint32
	if hi-lo <= scratchSectors {
		fresh = scratch[:hi-lo]
	} else {
		fresh = make([]uint32, hi-lo)
	}
	for i := range fresh {
		s := int64(i) * util.SectorSize
		fresh[i] = util.Checksum(data[s : s+util.SectorSize])
	}
	sh := c.shard(id)
	sh.mu.Lock()
	if arr, ok := sh.materializeLocked(id); ok {
		copy(arr[lo:hi], fresh)
	}
	sh.mu.Unlock()
}

// Verify checks data read at chunk-relative off against the recorded sums.
// A mismatch returns an error wrapping util.ErrCorrupt naming the first bad
// sector; an unknown chunk verifies vacuously (deleted concurrently).
func (c *ChecksumStore) Verify(id ChunkID, off int64, data []byte) error {
	lo, hi := sectorRange(id, off, len(data))
	if legacySums.Load() {
		return c.verifyLegacy(id, lo, hi, data)
	}
	// Snapshot the expected sums — a handful of words — under the shard
	// lock, then walk the payload exactly once outside it, comparing each
	// sector's checksum as it is computed.
	var scratch [scratchSectors]uint32
	var want []uint32
	if hi-lo <= scratchSectors {
		want = scratch[:hi-lo]
	} else {
		want = make([]uint32, hi-lo)
	}
	sh := c.shard(id)
	sh.mu.Lock()
	arr, ok := sh.sums[id]
	if !ok {
		sh.mu.Unlock()
		return nil
	}
	if arr == nil {
		for i := range want {
			want[i] = zeroSectorCRC
		}
	} else {
		copy(want, arr[lo:hi])
	}
	sh.mu.Unlock()
	for i := range want {
		s := int64(i) * util.SectorSize
		if g := util.Checksum(data[s : s+util.SectorSize]); g != want[i] {
			return fmt.Errorf("blockstore: chunk %v sector %d: checksum %08x, want %08x: %w",
				id, lo+int64(i), g, want[i], util.ErrCorrupt)
		}
	}
	return nil
}

// stampLegacy is the pre-fusion stamp: allocate, CRC pass, copy under the
// global lock.
func (c *ChecksumStore) stampLegacy(id ChunkID, lo, hi int64, data []byte) {
	fresh := make([]uint32, hi-lo)
	for i := range fresh {
		s := int64(i) * util.SectorSize
		fresh[i] = util.Checksum(data[s : s+util.SectorSize])
	}
	sh := &c.shards[0]
	sh.mu.Lock()
	if arr, ok := sh.materializeLocked(id); ok {
		copy(arr[lo:hi], fresh)
	}
	sh.mu.Unlock()
}

// verifyLegacy is the pre-fusion verify: allocate, CRC pass, compare under
// the global lock.
func (c *ChecksumStore) verifyLegacy(id ChunkID, lo, hi int64, data []byte) error {
	got := make([]uint32, hi-lo)
	for i := range got {
		s := int64(i) * util.SectorSize
		got[i] = util.Checksum(data[s : s+util.SectorSize])
	}
	sh := &c.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	arr, ok := sh.sums[id]
	if !ok {
		return nil
	}
	for i, g := range got {
		want := zeroSectorCRC
		if arr != nil {
			want = arr[lo+int64(i)]
		}
		if g != want {
			return fmt.Errorf("blockstore: chunk %v sector %d: checksum %08x, want %08x: %w",
				id, lo+int64(i), g, want, util.ErrCorrupt)
		}
	}
	return nil
}

// Sum returns the recorded checksum of one sector (tests and diagnostics).
func (c *ChecksumStore) Sum(id ChunkID, sector int64) (uint32, bool) {
	sh := c.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	arr, ok := sh.sums[id]
	if !ok || sector < 0 || sector >= chunkSectors {
		return 0, false
	}
	if arr == nil {
		return zeroSectorCRC, true
	}
	return arr[sector], true
}
