package blockstore

import (
	"bytes"
	"errors"
	"testing"

	"ursa/internal/clock"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

func newStore(t *testing.T, capacity int64) *Store {
	t.Helper()
	m := simdisk.DefaultSSD()
	m.Capacity = capacity
	d := simdisk.NewSSD(m, clock.TestClock())
	t.Cleanup(func() { d.Close() })
	return New(d, 0)
}

func TestChunkIDPacking(t *testing.T) {
	id := MakeChunkID(7, 42)
	if id.VDisk() != 7 || id.Index() != 42 {
		t.Errorf("MakeChunkID round trip: vdisk=%d index=%d", id.VDisk(), id.Index())
	}
	if id.String() != "c7.42" {
		t.Errorf("String = %q", id.String())
	}
}

func TestCreateWriteRead(t *testing.T) {
	s := newStore(t, 256*util.MiB)
	id := MakeChunkID(1, 0)
	if err := s.Create(id); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8*util.KiB)
	util.NewRand(1).Fill(data)
	if err := s.WriteAt(id, data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.ReadAt(id, got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
}

func TestCreateDuplicate(t *testing.T) {
	s := newStore(t, 256*util.MiB)
	id := MakeChunkID(1, 0)
	if err := s.Create(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(id); !errors.Is(err, util.ErrExists) {
		t.Errorf("duplicate create: %v", err)
	}
}

func TestMissingChunk(t *testing.T) {
	s := newStore(t, 256*util.MiB)
	id := MakeChunkID(1, 0)
	buf := make([]byte, 512)
	if err := s.ReadAt(id, buf, 0); !errors.Is(err, util.ErrNotFound) {
		t.Errorf("read missing: %v", err)
	}
	if err := s.WriteAt(id, buf, 0); !errors.Is(err, util.ErrNotFound) {
		t.Errorf("write missing: %v", err)
	}
	if err := s.Delete(id); !errors.Is(err, util.ErrNotFound) {
		t.Errorf("delete missing: %v", err)
	}
}

func TestChunkIsolation(t *testing.T) {
	s := newStore(t, 256*util.MiB)
	a, b := MakeChunkID(1, 0), MakeChunkID(1, 1)
	for _, id := range []ChunkID{a, b} {
		if err := s.Create(id); err != nil {
			t.Fatal(err)
		}
	}
	dataA := bytes.Repeat([]byte{0xaa}, 1024)
	dataB := bytes.Repeat([]byte{0xbb}, 1024)
	if err := s.WriteAt(a, dataA, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(b, dataB, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1024)
	if err := s.ReadAt(a, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, dataA) {
		t.Error("chunk A corrupted by chunk B write")
	}
}

func TestDeleteRecyclesSlot(t *testing.T) {
	// A store sized for exactly one chunk must allow create-delete-create.
	m := simdisk.DefaultSSD()
	m.Capacity = util.ChunkSize
	d := simdisk.NewSSD(m, clock.TestClock())
	defer d.Close()
	s := New(d, 0)

	a, b := MakeChunkID(1, 0), MakeChunkID(1, 1)
	if err := s.Create(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(b); !errors.Is(err, util.ErrQuota) {
		t.Fatalf("second create on full disk: %v", err)
	}
	if err := s.Delete(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(b); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
}

func TestChunkBounds(t *testing.T) {
	s := newStore(t, 256*util.MiB)
	id := MakeChunkID(1, 0)
	if err := s.Create(id); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if err := s.WriteAt(id, buf, util.ChunkSize-512); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("write past chunk end: %v", err)
	}
	if err := s.ReadAt(id, buf, -1); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("negative offset: %v", err)
	}
}

func TestChunksEnumeration(t *testing.T) {
	s := newStore(t, 512*util.MiB)
	want := []ChunkID{MakeChunkID(2, 1), MakeChunkID(1, 5), MakeChunkID(1, 2)}
	for _, id := range want {
		if err := s.Create(id); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Chunks()
	if len(got) != 3 || s.Len() != 3 {
		t.Fatalf("Chunks = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Error("Chunks not sorted")
		}
	}
	if !s.Has(MakeChunkID(1, 5)) || s.Has(MakeChunkID(9, 9)) {
		t.Error("Has wrong")
	}
}

func TestCreateSizedSlots(t *testing.T) {
	s := newStore(t, 256*util.MiB)
	seg := MakeChunkID(1, 0)
	full := MakeChunkID(1, 1)
	segSize := int64(util.ChunkSize / 4)
	if err := s.CreateSized(seg, segSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(full); err != nil {
		t.Fatal(err)
	}
	if got := s.SlotSize(seg); got != segSize {
		t.Errorf("segment SlotSize = %d, want %d", got, segSize)
	}
	if got := s.SlotSize(full); got != util.ChunkSize {
		t.Errorf("full SlotSize = %d", got)
	}
	if got := s.UsedBytes(); got != segSize+util.ChunkSize {
		t.Errorf("UsedBytes = %d, want %d", got, segSize+util.ChunkSize)
	}

	// I/O is bounded by the slot size, not the chunk size.
	buf := make([]byte, 1024)
	if err := s.WriteAt(seg, buf, segSize-1024); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(seg, buf, segSize-512); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("write past segment slot: %v", err)
	}

	// Freed slots are recycled within their size class.
	if err := s.Delete(seg); err != nil {
		t.Fatal(err)
	}
	if got := s.UsedBytes(); got != util.ChunkSize {
		t.Errorf("UsedBytes after delete = %d", got)
	}
	if err := s.CreateSized(MakeChunkID(2, 0), segSize); err != nil {
		t.Fatal(err)
	}
	if got := s.SlotSize(MakeChunkID(2, 0)); got != segSize {
		t.Errorf("recycled SlotSize = %d", got)
	}

	// Invalid sizes are rejected.
	if err := s.CreateSized(MakeChunkID(3, 0), 777); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("unaligned slot size: %v", err)
	}
	if err := s.CreateSized(MakeChunkID(3, 1), util.ChunkSize*2); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("oversized slot: %v", err)
	}
}
