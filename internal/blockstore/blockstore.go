// Package blockstore manages fixed-size data chunks on a single disk.
// Chunks are the unit of replication and placement (64 MB, §2): a primary
// chunk server keeps its chunks on an SSD blockstore, a backup server on an
// HDD blockstore behind a journal.
package blockstore

import (
	"fmt"
	"sort"
	"sync"

	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// ChunkID identifies a chunk globally (vdisk + index packed by the master).
type ChunkID uint64

// String renders the id as vdisk/index for logs.
func (id ChunkID) String() string {
	return fmt.Sprintf("c%d.%d", uint64(id)>>32, uint64(id)&0xffffffff)
}

// MakeChunkID packs a vdisk id and a chunk index into a ChunkID.
func MakeChunkID(vdisk uint32, index uint32) ChunkID {
	return ChunkID(uint64(vdisk)<<32 | uint64(index))
}

// VDisk returns the vdisk component of the id.
func (id ChunkID) VDisk() uint32 { return uint32(uint64(id) >> 32) }

// Index returns the chunk-index component of the id.
func (id ChunkID) Index() uint32 { return uint32(uint64(id)) }

// Store places chunks at 64 MB-aligned slots on one disk and routes
// chunk-relative I/O to them. It is safe for concurrent use; actual I/O
// parallelism is the disk's business.
type Store struct {
	disk simdisk.Disk
	sums *ChecksumStore

	mu    sync.RWMutex
	slots map[ChunkID]int64 // chunk -> byte offset of its slot
	free  []int64           // recycled slot offsets
	next  int64             // bump allocator past the last slot
	limit int64             // capacity reserved for chunk slots
}

// New returns a store using up to limit bytes of disk (0 means the whole
// disk).
func New(disk simdisk.Disk, limit int64) *Store {
	if limit <= 0 || limit > disk.Size() {
		limit = disk.Size()
	}
	return &Store{
		disk:  disk,
		sums:  newChecksumStore(),
		slots: make(map[ChunkID]int64),
		limit: util.AlignDown(limit, util.ChunkSize),
	}
}

// Sums exposes the store's per-sector checksum table. Writers stamp it
// after the device acks; readers verify against it before returning data.
func (s *Store) Sums() *ChecksumStore { return s.sums }

// Create allocates a slot for id. The chunk reads as zeros until written.
func (s *Store) Create(id ChunkID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.slots[id]; ok {
		return fmt.Errorf("blockstore: chunk %v: %w", id, util.ErrExists)
	}
	var off int64
	if n := len(s.free); n > 0 {
		off = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		if s.next+util.ChunkSize > s.limit {
			return fmt.Errorf("blockstore: disk full creating %v: %w", id, util.ErrQuota)
		}
		off = s.next
		s.next += util.ChunkSize
	}
	s.slots[id] = off
	s.sums.create(id)
	return nil
}

// Delete releases the chunk's slot. Deleting a missing chunk is an error.
func (s *Store) Delete(id ChunkID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	off, ok := s.slots[id]
	if !ok {
		return fmt.Errorf("blockstore: chunk %v: %w", id, util.ErrNotFound)
	}
	delete(s.slots, id)
	s.free = append(s.free, off)
	s.sums.drop(id)
	return nil
}

// Has reports whether the chunk exists.
func (s *Store) Has(id ChunkID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.slots[id]
	return ok
}

// Chunks returns all chunk ids, sorted, for recovery enumeration.
func (s *Store) Chunks() []ChunkID {
	s.mu.RLock()
	ids := make([]ChunkID, 0, len(s.slots))
	for id := range s.slots {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// locate validates the range and returns the chunk's base offset.
func (s *Store) locate(id ChunkID, off int64, n int) (int64, error) {
	if off < 0 || off+int64(n) > util.ChunkSize {
		return 0, fmt.Errorf("blockstore: chunk %v [%d,%d): %w",
			id, off, off+int64(n), util.ErrOutOfRange)
	}
	s.mu.RLock()
	base, ok := s.slots[id]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("blockstore: chunk %v: %w", id, util.ErrNotFound)
	}
	return base, nil
}

// ReadAt reads len(p) bytes at chunk-relative offset off.
func (s *Store) ReadAt(id ChunkID, p []byte, off int64) error {
	base, err := s.locate(id, off, len(p))
	if err != nil {
		return err
	}
	return s.disk.ReadAt(p, base+off)
}

// WriteAt writes p at chunk-relative offset off.
func (s *Store) WriteAt(id ChunkID, p []byte, off int64) error {
	base, err := s.locate(id, off, len(p))
	if err != nil {
		return err
	}
	return s.disk.WriteAt(p, base+off)
}

// Disk exposes the underlying device (journal replayers check its queue
// depth; stats collectors read its counters).
func (s *Store) Disk() simdisk.Disk { return s.disk }

// Len returns the number of chunks resident.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.slots)
}
