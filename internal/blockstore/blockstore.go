// Package blockstore manages fixed-size data chunks on a single disk.
// Chunks are the unit of replication and placement (64 MB, §2): a primary
// chunk server keeps its chunks on an SSD blockstore, a backup server on an
// HDD blockstore behind a journal.
package blockstore

import (
	"fmt"
	"sort"
	"sync"

	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// ChunkID identifies a chunk globally (vdisk + index packed by the master).
type ChunkID uint64

// String renders the id as vdisk/index for logs.
func (id ChunkID) String() string {
	return fmt.Sprintf("c%d.%d", uint64(id)>>32, uint64(id)&0xffffffff)
}

// MakeChunkID packs a vdisk id and a chunk index into a ChunkID.
func MakeChunkID(vdisk uint32, index uint32) ChunkID {
	return ChunkID(uint64(vdisk)<<32 | uint64(index))
}

// VDisk returns the vdisk component of the id.
func (id ChunkID) VDisk() uint32 { return uint32(uint64(id) >> 32) }

// Index returns the chunk-index component of the id.
func (id ChunkID) Index() uint32 { return uint32(uint64(id)) }

// Store places chunks at sector-aligned slots on one disk and routes
// chunk-relative I/O to them. Slots default to full chunks (64 MB) but may
// be smaller: an RS segment holder stores only its ChunkSize/N slice of
// each chunk. It is safe for concurrent use; actual I/O parallelism is the
// disk's business.
type Store struct {
	disk simdisk.Disk
	sums *ChecksumStore

	mu    sync.RWMutex
	slots map[ChunkID]slotInfo // chunk -> slot placement
	free  map[int64][]int64    // recycled slot offsets, by slot size
	next  int64                // bump allocator past the last slot
	limit int64                // capacity reserved for chunk slots
	used  int64                // bytes currently held by live slots
}

// slotInfo records where a chunk's slot lives and how large it is.
type slotInfo struct {
	off  int64
	size int64
}

// New returns a store using up to limit bytes of disk (0 means the whole
// disk).
func New(disk simdisk.Disk, limit int64) *Store {
	if limit <= 0 || limit > disk.Size() {
		limit = disk.Size()
	}
	return &Store{
		disk:  disk,
		sums:  newChecksumStore(),
		slots: make(map[ChunkID]slotInfo),
		free:  make(map[int64][]int64),
		limit: util.AlignDown(limit, util.ChunkSize),
	}
}

// Sums exposes the store's per-sector checksum table. Writers stamp it
// after the device acks; readers verify against it before returning data.
func (s *Store) Sums() *ChecksumStore { return s.sums }

// Create allocates a full-chunk slot for id. The chunk reads as zeros
// until written.
func (s *Store) Create(id ChunkID) error {
	return s.CreateSized(id, util.ChunkSize)
}

// CreateSized allocates a slot of the given size (a sector multiple no
// larger than a chunk) for id. Freed slots are recycled per size class, so
// a store holding a mix of full chunks and segments never fragments across
// classes.
func (s *Store) CreateSized(id ChunkID, size int64) error {
	if size <= 0 || size > util.ChunkSize || size%util.SectorSize != 0 {
		return fmt.Errorf("blockstore: chunk %v slot size %d: %w", id, size, util.ErrOutOfRange)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.slots[id]; ok {
		return fmt.Errorf("blockstore: chunk %v: %w", id, util.ErrExists)
	}
	var off int64
	if fl := s.free[size]; len(fl) > 0 {
		off = fl[len(fl)-1]
		s.free[size] = fl[:len(fl)-1]
	} else {
		if s.next+size > s.limit {
			return fmt.Errorf("blockstore: disk full creating %v: %w", id, util.ErrQuota)
		}
		off = s.next
		s.next += size
	}
	s.slots[id] = slotInfo{off: off, size: size}
	s.used += size
	s.sums.create(id)
	return nil
}

// Delete releases the chunk's slot. Deleting a missing chunk is an error.
func (s *Store) Delete(id ChunkID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sl, ok := s.slots[id]
	if !ok {
		return fmt.Errorf("blockstore: chunk %v: %w", id, util.ErrNotFound)
	}
	delete(s.slots, id)
	s.free[sl.size] = append(s.free[sl.size], sl.off)
	s.used -= sl.size
	s.sums.drop(id)
	return nil
}

// Has reports whether the chunk exists.
func (s *Store) Has(id ChunkID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.slots[id]
	return ok
}

// Chunks returns all chunk ids, sorted, for recovery enumeration.
func (s *Store) Chunks() []ChunkID {
	s.mu.RLock()
	ids := make([]ChunkID, 0, len(s.slots))
	for id := range s.slots {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// locate validates the range against the chunk's slot size and returns the
// slot's base offset.
func (s *Store) locate(id ChunkID, off int64, n int) (int64, error) {
	s.mu.RLock()
	sl, ok := s.slots[id]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("blockstore: chunk %v: %w", id, util.ErrNotFound)
	}
	if off < 0 || off+int64(n) > sl.size {
		return 0, fmt.Errorf("blockstore: chunk %v [%d,%d) of %d: %w",
			id, off, off+int64(n), sl.size, util.ErrOutOfRange)
	}
	return sl.off, nil
}

// SlotSize returns the chunk's slot size, or 0 when the chunk is absent.
func (s *Store) SlotSize(id ChunkID) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.slots[id].size
}

// UsedBytes returns the bytes held by live slots — the store's physical
// footprint, which the erasure-coding bench compares against logical bytes.
func (s *Store) UsedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}

// ReadAt reads len(p) bytes at chunk-relative offset off.
func (s *Store) ReadAt(id ChunkID, p []byte, off int64) error {
	base, err := s.locate(id, off, len(p))
	if err != nil {
		return err
	}
	return s.disk.ReadAt(p, base+off)
}

// WriteAt writes p at chunk-relative offset off.
func (s *Store) WriteAt(id ChunkID, p []byte, off int64) error {
	base, err := s.locate(id, off, len(p))
	if err != nil {
		return err
	}
	return s.disk.WriteAt(p, base+off)
}

// Disk exposes the underlying device (journal replayers check its queue
// depth; stats collectors read its counters).
func (s *Store) Disk() simdisk.Disk { return s.disk }

// Len returns the number of chunks resident.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.slots)
}
