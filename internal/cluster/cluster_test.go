package cluster

import (
	"errors"
	"testing"
	"time"

	"ursa/internal/clock"
	"ursa/internal/core"
	"ursa/internal/linearize"
	"ursa/internal/master"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

func testCluster(t *testing.T) *core.Cluster {
	t.Helper()
	c, err := core.New(core.Options{
		Machines:       4,
		SSDsPerMachine: 1,
		HDDsPerMachine: 2,
		Mode:           core.Hybrid,
		Clock:          clock.Realtime,
		SSDModel: simdisk.SSDModel{
			Capacity: 2 * util.GiB, Parallelism: 32,
			ReadLatency: 2 * time.Microsecond, WriteLatency: 4 * time.Microsecond,
			ReadBandwidth: 20e9, WriteBandwidth: 12e9,
		},
		HDDModel: simdisk.HDDModel{
			Capacity: 4 * util.GiB, SeekMax: 400 * time.Microsecond,
			SeekSettle: 25 * time.Microsecond, RPM: 288000,
			Bandwidth: 6e9, TrackSkip: 512 * util.KiB,
		},
		HDDJournal:  true,
		NetLatency:  5 * time.Microsecond,
		ReplTimeout: 40 * time.Millisecond,
		CallTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestChunkPlacementHelpers(t *testing.T) {
	c := testCluster(t)
	cl := c.NewClient("c1")
	defer cl.Close()
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "d", Size: 2 * util.ChunkSize}); err != nil {
		t.Fatal(err)
	}
	cm, err := ChunkPlacement(cl, "d", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.Replicas) != 3 || !cm.Replicas[0].SSD {
		t.Errorf("placement = %+v", cm)
	}
	addr, err := PrimaryAddr(cl, "d", 0)
	if err != nil || addr == "" {
		t.Errorf("primary = %q, %v", addr, err)
	}
	if _, err := ChunkPlacement(cl, "d", 99); !errors.Is(err, util.ErrNotFound) {
		t.Errorf("out-of-range chunk: %v", err)
	}
}

func TestViewChangeAfterCrash(t *testing.T) {
	c := testCluster(t)
	cl := c.NewClient("c1")
	defer cl.Close()
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "d", Size: util.ChunkSize}); err != nil {
		t.Fatal(err)
	}
	vd, err := cl.Open("d")
	if err != nil {
		t.Fatal(err)
	}
	defer vd.Close()
	// Write some state, then kill the primary.
	if err := vd.WriteAt(make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}
	primary, err := PrimaryAddr(cl, "d", 0)
	if err != nil {
		t.Fatal(err)
	}
	c.CrashServer(primary)
	// A write forces the client to detect the failure and report it.
	if err := vd.WriteAt(make([]byte, 8192), 16384); err != nil {
		t.Fatal(err)
	}
	cm, err := WaitViewChange(c, cl, "d", 0, 1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cm.Replicas {
		if r.Addr == primary {
			t.Errorf("crashed server still in placement: %+v", cm)
		}
	}
	if TotalServerStats(c).Clones == 0 {
		t.Error("no recovery clone recorded")
	}
}

func TestTrafficMonitor(t *testing.T) {
	c := testCluster(t)
	cl := c.NewClient("c1")
	defer cl.Close()
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "d", Size: util.ChunkSize}); err != nil {
		t.Fatal(err)
	}
	vd, err := cl.Open("d")
	if err != nil {
		t.Fatal(err)
	}
	defer vd.Close()

	mon := StartTrafficMonitor(c, 10*time.Millisecond)
	buf := make([]byte, 64*util.KiB)
	for i := 0; i < 20; i++ {
		if err := vd.WriteAt(buf, int64(i)*int64(len(buf))); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond)
	samples := mon.Stop()
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	var total int64
	for _, s := range samples {
		total += s.Bytes
	}
	if total == 0 {
		t.Error("monitor observed no traffic")
	}
}

// TestLinearizabilityUnderCrashes is the protocol torture test: a stream
// of writes and reads with the primary crashed mid-stream must satisfy
// per-chunk linearizability (§4, Appendix A).
func TestLinearizabilityUnderCrashes(t *testing.T) {
	c := testCluster(t)
	cl := c.NewClient("c1")
	defer cl.Close()
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "d", Size: util.ChunkSize}); err != nil {
		t.Fatal(err)
	}
	vd, err := cl.Open("d")
	if err != nil {
		t.Fatal(err)
	}
	defer vd.Close()

	checker := linearize.New()
	r := util.NewRand(77)
	const region = 64 * util.KiB // small region: heavy overwrites
	crashed := false
	for i := 0; i < 120; i++ {
		if i == 40 {
			// Kill the primary mid-stream.
			primary, perr := PrimaryAddr(cl, "d", 0)
			if perr == nil {
				c.CrashServer(primary)
				crashed = true
			}
		}
		off := util.AlignDown(r.Int63n(region), util.SectorSize)
		if r.Float64() < 0.6 {
			data := make([]byte, util.SectorSize)
			r.Fill(data)
			if err := vd.WriteAt(data, off); err != nil {
				checker.WriteUnresolved(off, data)
			} else {
				checker.WriteCommitted(off, data)
			}
		} else {
			buf := make([]byte, util.SectorSize)
			if err := vd.ReadAt(buf, off); err != nil {
				continue // availability hiccup, not a consistency issue
			}
			if err := checker.CheckRead(off, buf); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if !crashed {
		t.Fatal("crash was never injected")
	}
	// Full final sweep.
	buf := make([]byte, util.SectorSize)
	for off := int64(0); off < region; off += util.SectorSize {
		if err := vd.ReadAt(buf, off); err != nil {
			t.Fatalf("final read at %d: %v", off, err)
		}
		if err := checker.CheckRead(off, buf); err != nil {
			t.Fatalf("final sweep at %d: %v", off, err)
		}
	}
}
