package cluster

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ursa/internal/client"
	"ursa/internal/clock"
	"ursa/internal/core"
	"ursa/internal/master"
	"ursa/internal/redundancy"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// rs42 is the erasure-coding policy under test: 4 data + 2 parity segments
// per chunk, tolerating any two lost segment holders.
var rs42 = redundancy.Spec{Kind: redundancy.KindRS, N: 4, M: 2}

// ecCluster builds a hybrid cluster wide enough for RS(4,2) placement: the
// primary's machine plus six distinct holder machines, plus optional spares
// for rebuild targets.
func ecCluster(t *testing.T, machines int) *core.Cluster {
	t.Helper()
	c, err := core.New(core.Options{
		Machines:       machines,
		SSDsPerMachine: 1,
		HDDsPerMachine: 2,
		Mode:           core.Hybrid,
		Clock:          clock.Realtime,
		SSDModel: simdisk.SSDModel{
			Capacity: 2 * util.GiB, Parallelism: 32,
			ReadLatency: 2 * time.Microsecond, WriteLatency: 4 * time.Microsecond,
			ReadBandwidth: 20e9, WriteBandwidth: 12e9,
		},
		HDDModel: simdisk.HDDModel{
			Capacity: 4 * util.GiB, SeekMax: 400 * time.Microsecond,
			SeekSettle: 25 * time.Microsecond, RPM: 288000,
			Bandwidth: 6e9, TrackSkip: 512 * util.KiB,
		},
		NetLatency:  5 * time.Microsecond,
		ReplTimeout: 40 * time.Millisecond,
		CallTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func ecVDisk(t *testing.T, c *core.Cluster, chunks int64) *client.VDisk {
	t.Helper()
	cl := c.NewClient("ec-client")
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{
		Name: "ec", Size: chunks * util.ChunkSize, Redundancy: rs42,
	}); err != nil {
		t.Fatal(err)
	}
	vd, err := cl.Open("ec")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vd.Close() })
	return vd
}

// TestChaosECSegmentDeath is the erasure-coding acceptance scenario (the
// ec-smoke target): M=2 segment holders of an RS(4,2) chunk die
// mid-workload and the client must not see a single failed or stale I/O —
// writes keep committing on >=N acks while the master rebuilds the lost
// segments onto fresh servers. Deterministic: fixed seed, scripted
// schedule, linearizability-checked throughout plus a final sweep.
func TestChaosECSegmentDeath(t *testing.T) {
	c := ecCluster(t, 8) // 1 primary + 6 holders + 1 spare machine
	vd := ecVDisk(t, c, 1)

	mon := c.NewClient("monitor")
	t.Cleanup(func() { mon.Close() })
	meta, err := mon.OpenMeta("ec")
	if err != nil {
		t.Fatal(err)
	}
	reps := meta.Chunks[0].Replicas
	if len(reps) != 1+rs42.N+rs42.M {
		t.Fatalf("placement has %d replicas, want %d", len(reps), 1+rs42.N+rs42.M)
	}
	schedule := []ChaosEvent{
		{AtOp: 60, Kind: ChaosCrashServer, Server: reps[1].Addr},
		{AtOp: 60, Kind: ChaosCrashServer, Server: reps[2].Addr},
	}
	rep, err := RunChaos(c, vd, ChaosOptions{
		Ops:        300,
		Seed:       42,
		WriteFrac:  0.7,
		Schedule:   schedule,
		FinalSweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WriteErrors != 0 || rep.ReadErrors != 0 {
		t.Fatalf("client saw failed I/O with %d segment holders dead: %+v", len(schedule), rep)
	}
	if rep.EventsFired != len(schedule) {
		t.Errorf("fired %d/%d events", rep.EventsFired, len(schedule))
	}
}

// TestECDegradedReadReconstructs crashes an RS chunk's primary — the only
// full copy — plus one data-segment holder, and requires reads to come back
// byte-identical by decoding the covered range from the surviving segments.
// With one SSD machine and the rest hosting holders there is no replacement
// primary, so the chunk stays pinned degraded for the whole test.
func TestECDegradedReadReconstructs(t *testing.T) {
	c := ecCluster(t, 7) // no spare machine: a dead primary stays dead
	vd := ecVDisk(t, c, 1)

	const region = 256 * util.KiB
	want := make([]byte, region)
	util.NewRand(1234).Fill(want)
	for off := int64(0); off < region; off += 64 * util.KiB {
		if err := vd.WriteAt(want[off:off+64*util.KiB], off); err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
	}

	mon := c.NewClient("monitor")
	t.Cleanup(func() { mon.Close() })
	meta, err := mon.OpenMeta("ec")
	if err != nil {
		t.Fatal(err)
	}
	reps := meta.Chunks[0].Replicas
	// Kill the primary and segment 0's holder: the region lives entirely in
	// segment 0, so every read must reconstruct from the other segments.
	c.CrashServer(reps[0].Addr)
	c.CrashServer(reps[1].Addr)

	got := make([]byte, 32*util.KiB)
	for off := int64(0); off < region; off += int64(len(got)) {
		if err := vd.ReadAt(got, off); err != nil {
			t.Fatalf("degraded read at %d: %v", off, err)
		}
		if !bytes.Equal(got, want[off:off+int64(len(got))]) {
			t.Fatalf("degraded read at %d returned wrong bytes", off)
		}
	}
}

// TestAllReplicasCorruptCleanError is the integrity floor: when every
// replica of a mirrored chunk has rotted on disk, the client must get a
// clean error that unwraps to util.ErrCorrupt — never garbage bytes — and
// must get it in bounded time (the far side's settling re-reads and the
// client's failover rotation must not loop forever).
func TestAllReplicasCorruptCleanError(t *testing.T) {
	c := chaosCluster(t, false)
	vd := chaosVDisk(t, c, 1)

	// A write above the journal-bypass threshold lands in every replica's
	// store — the regions about to rot.
	data := make([]byte, 128*util.KiB)
	util.NewRand(77).Fill(data)
	if err := vd.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	mon := c.NewClient("monitor")
	t.Cleanup(func() { mon.Close() })
	meta, err := mon.OpenMeta("chaos")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range meta.Chunks[0].Replicas {
		mi, di, isHDD := replicaDevice(t, c, r.Addr)
		faults := c.Machines[mi].SSDFaults
		if isHDD {
			faults = c.Machines[mi].HDDFaults
		}
		fi := faults[di]
		fi.CorruptRange(0, fi.Size(), true)
	}

	start := time.Now()
	buf := make([]byte, util.SectorSize)
	rerr := vd.ReadAt(buf, 0)
	elapsed := time.Since(start)
	if rerr == nil {
		t.Fatal("read of universally rotted data succeeded")
	}
	if !errors.Is(rerr, util.ErrCorrupt) {
		t.Fatalf("read error %v does not unwrap to ErrCorrupt", rerr)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("corrupt read took %v: settling re-reads looped", elapsed)
	}
}
