package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ursa/internal/chunkserver"
	"ursa/internal/client"
	"ursa/internal/clock"
	"ursa/internal/core"
	"ursa/internal/journal"
	"ursa/internal/linearize"
	"ursa/internal/master"
	"ursa/internal/scrub"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// chaosClusterOptions is the shared chaos-cluster shape: a configurable HDD
// overflow journal lets journal-death tests pin each backup to a single SSD
// journal.
func chaosClusterOptions(hddJournal bool) core.Options {
	return core.Options{
		Machines:       4,
		SSDsPerMachine: 1,
		HDDsPerMachine: 2,
		Mode:           core.Hybrid,
		Clock:          clock.Realtime,
		SSDModel: simdisk.SSDModel{
			Capacity: 2 * util.GiB, Parallelism: 32,
			ReadLatency: 2 * time.Microsecond, WriteLatency: 4 * time.Microsecond,
			ReadBandwidth: 20e9, WriteBandwidth: 12e9,
		},
		HDDModel: simdisk.HDDModel{
			Capacity: 4 * util.GiB, SeekMax: 400 * time.Microsecond,
			SeekSettle: 25 * time.Microsecond, RPM: 288000,
			Bandwidth: 6e9, TrackSkip: 512 * util.KiB,
		},
		HDDJournal:  hddJournal,
		NetLatency:  5 * time.Microsecond,
		ReplTimeout: 40 * time.Millisecond,
		CallTimeout: 250 * time.Millisecond,
	}
}

func chaosCluster(t *testing.T, hddJournal bool) *core.Cluster {
	t.Helper()
	c, err := core.New(chaosClusterOptions(hddJournal))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func chaosVDisk(t *testing.T, c *core.Cluster, chunks int64) *client.VDisk {
	t.Helper()
	cl := c.NewClient("chaos-client")
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{
		Name: "chaos", Size: chunks * util.ChunkSize,
	}); err != nil {
		t.Fatal(err)
	}
	vd, err := cl.Open("chaos")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vd.Close() })
	return vd
}

// TestChaosJournalDeathNoClientErrors is the acceptance scenario: every SSD
// journal in the cluster dies mid-workload and the client must not see a
// single failed I/O — appends re-route, then bypass straight to the backup
// stores. Deterministic (fixed seed, scripted schedule) and fast; this is
// the chaos smoke run wired into make check.
func TestChaosJournalDeathNoClientErrors(t *testing.T) {
	c := chaosCluster(t, false) // one SSD journal per backup: death = set dead
	vd := chaosVDisk(t, c, 2)

	schedule := make([]ChaosEvent, 0, len(c.Machines))
	for m := range c.Machines {
		schedule = append(schedule, ChaosEvent{
			AtOp: 60, Kind: ChaosKillJournals, Machine: m,
		})
	}
	rep, err := RunChaos(c, vd, ChaosOptions{
		Ops:        300,
		Seed:       42,
		WriteFrac:  0.7,
		Schedule:   schedule,
		FinalSweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WriteErrors != 0 || rep.ReadErrors != 0 {
		t.Fatalf("client saw failed I/O: %+v", rep)
	}
	if rep.EventsFired != len(schedule) {
		t.Errorf("fired %d/%d events", rep.EventsFired, len(schedule))
	}
	reg := c.Metrics()
	if got := reg.Counter(journal.MetricJournalDead).Load(); got == 0 {
		t.Error("no journal death recorded")
	}
	if got := reg.Counter(journal.MetricBypassWrites).Load(); got == 0 {
		t.Error("no bypass write recorded: ladder never reached WriteDirect")
	}
	if got := reg.Counter(simdisk.MetricFaultsInjected).Load(); got == 0 {
		t.Error("fault-injection counter never moved")
	}
}

// TestChaosRandomLinearizable runs a seeded random fault schedule — journal
// massacre, dead backup HDD, limping SSD, server crash and restart — under
// a mixed workload and requires the whole history to stay linearizable.
// Availability may dip (counted, not fatal); stale data fails the run.
func TestChaosRandomLinearizable(t *testing.T) {
	c := chaosCluster(t, true)
	vd := chaosVDisk(t, c, 2)

	ops := 400
	rep, err := RunChaos(c, vd, ChaosOptions{
		Ops:        ops,
		Seed:       7,
		Schedule:   RandomSchedule(c, 7, ops),
		FinalSweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventsFired == 0 {
		t.Fatal("random schedule injected nothing")
	}
	if rep.Sectors == 0 {
		t.Fatal("checker tracked no sectors")
	}
	t.Logf("chaos report: %+v", rep)
}

// scrubCluster is chaosCluster with an aggressive background scrubber, so
// bit-rot detection happens in test time rather than production time.
func scrubCluster(t *testing.T) *core.Cluster {
	t.Helper()
	c, err := core.New(core.Options{
		Machines:       4,
		SSDsPerMachine: 1,
		HDDsPerMachine: 2,
		Mode:           core.Hybrid,
		Clock:          clock.Realtime,
		SSDModel: simdisk.SSDModel{
			Capacity: 2 * util.GiB, Parallelism: 32,
			ReadLatency: 2 * time.Microsecond, WriteLatency: 4 * time.Microsecond,
			ReadBandwidth: 20e9, WriteBandwidth: 12e9,
		},
		HDDModel: simdisk.HDDModel{
			Capacity: 4 * util.GiB, SeekMax: 400 * time.Microsecond,
			SeekSettle: 25 * time.Microsecond, RPM: 288000,
			Bandwidth: 6e9, TrackSkip: 512 * util.KiB,
		},
		NetLatency:  5 * time.Microsecond,
		ReplTimeout: 40 * time.Millisecond,
		CallTimeout: 250 * time.Millisecond,
		ScrubEnable: true,
		ScrubConfig: scrub.Config{
			Interval:  25 * time.Millisecond,
			ReadSize:  4 * util.MiB,
			Rate:      512 * util.MiB,
			IdleGrace: 2 * time.Millisecond,
			Poll:      time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// replicaDevice maps a replica address like "m2/hdd1" back to its machine
// index and fault injector.
func replicaDevice(t *testing.T, c *core.Cluster, addr string) (int, int, bool) {
	t.Helper()
	var mi, di int
	if _, err := fmt.Sscanf(addr, "m%d/hdd%d", &mi, &di); err == nil {
		return mi, di, true
	}
	if _, err := fmt.Sscanf(addr, "m%d/ssd%d", &mi, &di); err == nil {
		return mi, di, false
	}
	t.Fatalf("unparsable replica addr %q", addr)
	return 0, 0, false
}

func waitClusterCounter(t *testing.T, c *core.Cluster, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for c.Metrics().Counter(name).Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck at %d, want >= %d", name, c.Metrics().Counter(name).Load(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosBitRotScrubRepairs is the end-to-end integrity acceptance run
// (the scrub-smoke target): one backup replica's HDD silently rots under a
// live workload. The client never reads that replica — only the background
// scrubber can find the rot. The run must end with the corruption detected
// by the scrubber, the replica evicted by a master view change, and every
// byte the client ever read linearizable.
func TestChaosBitRotScrubRepairs(t *testing.T) {
	c := scrubCluster(t)
	vd := chaosVDisk(t, c, 1)

	// Locate a backup replica of the (single) chunk and its backing device.
	mon := c.NewClient("monitor")
	t.Cleanup(func() { mon.Close() })
	meta, err := mon.OpenMeta("chaos")
	if err != nil {
		t.Fatal(err)
	}
	var rotAddr string
	for _, r := range meta.Chunks[0].Replicas {
		if !r.SSD {
			rotAddr = r.Addr
			break
		}
	}
	if rotAddr == "" {
		t.Fatal("chunk has no backup replica")
	}
	mi, di, isHDD := replicaDevice(t, c, rotAddr)
	if !isHDD {
		t.Fatalf("backup replica %s not on an HDD", rotAddr)
	}

	// Persistent whole-device rot on the backup's HDD, mid-workload. The
	// backup's journal lives on the machine's SSD and stays clean, so
	// writes keep committing; only the rotted store can betray the reader.
	checker := linearize.New()
	rep, err := RunChaos(c, vd, ChaosOptions{
		Ops:       300,
		Seed:      11,
		WriteFrac: 0.6,
		Schedule: []ChaosEvent{
			{AtOp: 50, Kind: ChaosCorruptDisk, Machine: mi, HDD: true, Disk: di, Persistent: true},
		},
		Checker: checker,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventsFired != 1 {
		t.Fatalf("rot never armed: %+v", rep)
	}

	// The scrubber must find the rot, count it, and trigger a view change.
	waitClusterCounter(t, c, scrub.MetricCorruptionsFound, 1)
	waitClusterCounter(t, c, chunkserver.MetricChecksumMismatches, 1)
	waitClusterCounter(t, c, master.MetricChunkRecoveries, 1)

	// The view change must evict the rotted replica from the placement.
	deadline := time.Now().Add(30 * time.Second)
	for {
		meta, err = mon.OpenMeta("chaos")
		if err != nil {
			t.Fatal(err)
		}
		evicted := true
		for _, r := range meta.Chunks[0].Replicas {
			if r.Addr == rotAddr {
				evicted = false
			}
		}
		if len(meta.Chunks[0].Replicas) == 3 && evicted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rotted replica %s still placed: %+v", rotAddr, meta.Chunks[0].Replicas)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// With the rot STILL armed, sweep the whole workload region through the
	// client: every byte must match the shared linearizability history.
	buf := make([]byte, util.SectorSize)
	for off := int64(0); off < 128*util.KiB; off += util.SectorSize {
		if err := vd.ReadAt(buf, off); err != nil {
			t.Fatalf("sweep read at %d: %v", off, err)
		}
		if err := checker.CheckRead(off, buf); err != nil {
			t.Fatalf("corrupt payload reached the client at %d: %v", off, err)
		}
	}
	if got := c.Metrics().Counter(simdisk.MetricCorruptionsInjected).Load(); got != 1 {
		t.Errorf("%s = %d, want 1", simdisk.MetricCorruptionsInjected, got)
	}
}

// TestChaosBitRotPrimaryReadPath rots the primary SSD's store region under
// a read-heavy workload with NO scrubber: the foreground read path alone
// must catch every mismatch, never hand rotted bytes to the client, and
// report the replica so the master moves the primary elsewhere.
func TestChaosBitRotPrimaryReadPath(t *testing.T) {
	c := chaosCluster(t, false)
	vd := chaosVDisk(t, c, 1)

	mon := c.NewClient("monitor")
	t.Cleanup(func() { mon.Close() })
	meta, err := mon.OpenMeta("chaos")
	if err != nil {
		t.Fatal(err)
	}
	primary := meta.Chunks[0].Replicas[0]
	if !primary.SSD {
		t.Fatalf("first replica %+v is not the SSD primary", primary)
	}
	mi, di, isHDD := replicaDevice(t, c, primary.Addr)
	if isHDD {
		t.Fatalf("primary %s on an HDD", primary.Addr)
	}

	// Rot only the SSD's store region: its tail tenth holds backup
	// journals whose rot is a different test (journal-replay-corrupt).
	ssdSize := c.Machines[mi].SSDFaults[di].Size()
	storeLimit := util.AlignDown(int64(float64(ssdSize)*0.9), util.ChunkSize)

	checker := linearize.New()
	rep, err := RunChaos(c, vd, ChaosOptions{
		Ops:       300,
		Seed:      13,
		WriteFrac: 0.4, // read-heavy: the read path is the detector here
		Schedule: []ChaosEvent{
			{AtOp: 50, Kind: ChaosCorruptDisk, Machine: mi, Disk: di,
				Lo: 0, Hi: storeLimit, Persistent: true},
		},
		Checker: checker,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventsFired != 1 {
		t.Fatalf("rot never armed: %+v", rep)
	}

	waitClusterCounter(t, c, chunkserver.MetricChecksumMismatches, 1)
	waitClusterCounter(t, c, master.MetricChunkRecoveries, 1)

	// Sweep with the rot still armed; reads must come back clean from the
	// repaired placement.
	buf := make([]byte, util.SectorSize)
	for off := int64(0); off < 128*util.KiB; off += util.SectorSize {
		if err := vd.ReadAt(buf, off); err != nil {
			t.Fatalf("sweep read at %d: %v", off, err)
		}
		if err := checker.CheckRead(off, buf); err != nil {
			t.Fatalf("corrupt payload reached the client at %d: %v", off, err)
		}
	}
}

// TestRecoverChunkRacesClientWrite drives master view changes concurrently
// with a client writing the same chunk: the race between RecoverChunk's
// repair/clone/SetView steps and in-flight writes must neither trip the
// race detector nor corrupt committed data.
func TestRecoverChunkRacesClientWrite(t *testing.T) {
	c := chaosCluster(t, true)
	vd := chaosVDisk(t, c, 1)

	checker := linearize.New()
	var checkMu sync.Mutex
	const region = 64 * util.KiB

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := util.NewRand(99)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			off := util.AlignDown(r.Int63n(region), util.SectorSize)
			data := make([]byte, util.SectorSize)
			r.Fill(data)
			err := vd.WriteAt(data, off)
			checkMu.Lock()
			if err != nil {
				checker.WriteUnresolved(off, data)
			} else {
				checker.WriteCommitted(off, data)
			}
			checkMu.Unlock()
		}
	}()

	// Repeated pure-repair view changes while the writer runs.
	views := 0
	for i := 0; i < 6; i++ {
		if _, err := c.Master.RecoverChunk(vd.ID(), 0, ""); err != nil {
			t.Errorf("recover %d: %v", i, err)
		} else {
			views++
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if views == 0 {
		t.Fatal("no view change completed")
	}

	// Everything the client committed must read back.
	buf := make([]byte, util.SectorSize)
	for off := int64(0); off < region; off += util.SectorSize {
		if err := vd.ReadAt(buf, off); err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		checkMu.Lock()
		err := checker.CheckRead(off, buf)
		checkMu.Unlock()
		if err != nil {
			t.Fatalf("sweep at %d: %v", off, err)
		}
	}
}
