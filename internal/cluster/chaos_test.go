package cluster

import (
	"sync"
	"testing"
	"time"

	"ursa/internal/client"
	"ursa/internal/clock"
	"ursa/internal/core"
	"ursa/internal/journal"
	"ursa/internal/linearize"
	"ursa/internal/master"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// chaosCluster is testCluster with a configurable HDD overflow journal, so
// journal-death tests can pin each backup to a single SSD journal.
func chaosCluster(t *testing.T, hddJournal bool) *core.Cluster {
	t.Helper()
	c, err := core.New(core.Options{
		Machines:       4,
		SSDsPerMachine: 1,
		HDDsPerMachine: 2,
		Mode:           core.Hybrid,
		Clock:          clock.Realtime,
		SSDModel: simdisk.SSDModel{
			Capacity: 2 * util.GiB, Parallelism: 32,
			ReadLatency: 2 * time.Microsecond, WriteLatency: 4 * time.Microsecond,
			ReadBandwidth: 20e9, WriteBandwidth: 12e9,
		},
		HDDModel: simdisk.HDDModel{
			Capacity: 4 * util.GiB, SeekMax: 400 * time.Microsecond,
			SeekSettle: 25 * time.Microsecond, RPM: 288000,
			Bandwidth: 6e9, TrackSkip: 512 * util.KiB,
		},
		HDDJournal:  hddJournal,
		NetLatency:  5 * time.Microsecond,
		ReplTimeout: 40 * time.Millisecond,
		CallTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func chaosVDisk(t *testing.T, c *core.Cluster, chunks int64) *client.VDisk {
	t.Helper()
	cl := c.NewClient("chaos-client")
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{
		Name: "chaos", Size: chunks * util.ChunkSize,
	}); err != nil {
		t.Fatal(err)
	}
	vd, err := cl.Open("chaos")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vd.Close() })
	return vd
}

// TestChaosJournalDeathNoClientErrors is the acceptance scenario: every SSD
// journal in the cluster dies mid-workload and the client must not see a
// single failed I/O — appends re-route, then bypass straight to the backup
// stores. Deterministic (fixed seed, scripted schedule) and fast; this is
// the chaos smoke run wired into make check.
func TestChaosJournalDeathNoClientErrors(t *testing.T) {
	c := chaosCluster(t, false) // one SSD journal per backup: death = set dead
	vd := chaosVDisk(t, c, 2)

	schedule := make([]ChaosEvent, 0, len(c.Machines))
	for m := range c.Machines {
		schedule = append(schedule, ChaosEvent{
			AtOp: 60, Kind: ChaosKillJournals, Machine: m,
		})
	}
	rep, err := RunChaos(c, vd, ChaosOptions{
		Ops:        300,
		Seed:       42,
		WriteFrac:  0.7,
		Schedule:   schedule,
		FinalSweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WriteErrors != 0 || rep.ReadErrors != 0 {
		t.Fatalf("client saw failed I/O: %+v", rep)
	}
	if rep.EventsFired != len(schedule) {
		t.Errorf("fired %d/%d events", rep.EventsFired, len(schedule))
	}
	reg := c.Metrics()
	if got := reg.Counter(journal.MetricJournalDead).Load(); got == 0 {
		t.Error("no journal death recorded")
	}
	if got := reg.Counter(journal.MetricBypassWrites).Load(); got == 0 {
		t.Error("no bypass write recorded: ladder never reached WriteDirect")
	}
	if got := reg.Counter(simdisk.MetricFaultsInjected).Load(); got == 0 {
		t.Error("fault-injection counter never moved")
	}
}

// TestChaosRandomLinearizable runs a seeded random fault schedule — journal
// massacre, dead backup HDD, limping SSD, server crash and restart — under
// a mixed workload and requires the whole history to stay linearizable.
// Availability may dip (counted, not fatal); stale data fails the run.
func TestChaosRandomLinearizable(t *testing.T) {
	c := chaosCluster(t, true)
	vd := chaosVDisk(t, c, 2)

	ops := 400
	rep, err := RunChaos(c, vd, ChaosOptions{
		Ops:        ops,
		Seed:       7,
		Schedule:   RandomSchedule(c, 7, ops),
		FinalSweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventsFired == 0 {
		t.Fatal("random schedule injected nothing")
	}
	if rep.Sectors == 0 {
		t.Fatal("checker tracked no sectors")
	}
	t.Logf("chaos report: %+v", rep)
}

// TestRecoverChunkRacesClientWrite drives master view changes concurrently
// with a client writing the same chunk: the race between RecoverChunk's
// repair/clone/SetView steps and in-flight writes must neither trip the
// race detector nor corrupt committed data.
func TestRecoverChunkRacesClientWrite(t *testing.T) {
	c := chaosCluster(t, true)
	vd := chaosVDisk(t, c, 1)

	checker := linearize.New()
	var checkMu sync.Mutex
	const region = 64 * util.KiB

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := util.NewRand(99)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			off := util.AlignDown(r.Int63n(region), util.SectorSize)
			data := make([]byte, util.SectorSize)
			r.Fill(data)
			err := vd.WriteAt(data, off)
			checkMu.Lock()
			if err != nil {
				checker.WriteUnresolved(off, data)
			} else {
				checker.WriteCommitted(off, data)
			}
			checkMu.Unlock()
		}
	}()

	// Repeated pure-repair view changes while the writer runs.
	views := 0
	for i := 0; i < 6; i++ {
		if _, err := c.Master.RecoverChunk(vd.ID(), 0, ""); err != nil {
			t.Errorf("recover %d: %v", i, err)
		} else {
			views++
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if views == 0 {
		t.Fatal("no view change completed")
	}

	// Everything the client committed must read back.
	buf := make([]byte, util.SectorSize)
	for off := int64(0); off < region; off += util.SectorSize {
		if err := vd.ReadAt(buf, off); err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		checkMu.Lock()
		err := checker.CheckRead(off, buf)
		checkMu.Unlock()
		if err != nil {
			t.Fatalf("sweep at %d: %v", off, err)
		}
	}
}
