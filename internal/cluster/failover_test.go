package cluster

import (
	"errors"
	"testing"
	"time"

	"ursa/internal/chunkserver"
	"ursa/internal/core"
	"ursa/internal/master"
	"ursa/internal/util"
)

// failoverCluster is the chaos cluster with a replicated metadata service:
// three masters on a short primacy lease, so a standby promotes within test
// time when the primary dies.
func failoverCluster(t *testing.T) *core.Cluster {
	t.Helper()
	opts := chaosClusterOptions(true)
	opts.Masters = 3
	opts.MasterPrimacyTTL = 150 * time.Millisecond
	c, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// waitForPrimary polls until some live master claims primacy at an epoch
// above floor, or the deadline passes.
func waitForPrimary(t *testing.T, c *core.Cluster, floor uint64, d time.Duration) *master.Master {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if p := c.PrimaryMaster(); p != nil && p.Epoch() > floor {
			return p
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no master promoted past epoch %d within %v", floor, d)
	return nil
}

// TestChaosKillMasterFailover is the failover acceptance scenario: a disk
// dies early (forcing a master-driven view change while the bootstrap
// primary is alive), then the primary master itself is killed mid-workload.
// The data path must ride through the metadata blackout with zero failed
// client I/Os, the full history must stay linearizable, and a standby must
// take over at a higher epoch. This is the failover smoke run wired into
// make check.
func TestChaosKillMasterFailover(t *testing.T) {
	c := failoverCluster(t)
	vd := chaosVDisk(t, c, 2)

	ops := 400
	rep, err := RunChaos(c, vd, ChaosOptions{
		Ops:       ops,
		Seed:      21,
		WriteFrac: 0.6,
		Schedule: []ChaosEvent{
			{AtOp: 50, Kind: ChaosKillDisk, Machine: 1, HDD: true, Disk: 0},
			{AtOp: 200, Kind: ChaosKillMaster, Master: 0},
		},
		FinalSweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WriteErrors != 0 || rep.ReadErrors != 0 {
		t.Fatalf("client saw failed I/O through the master blackout: %+v", rep)
	}
	if rep.EventsFired != 2 {
		t.Fatalf("fired %d/2 events", rep.EventsFired)
	}

	p := waitForPrimary(t, c, 1, 5*time.Second)
	if p == c.Masters[0] {
		t.Fatal("dead bootstrap master still listed as primary")
	}
	if got := c.Metrics().Counter(master.MetricMasterPromotions).Load(); got == 0 {
		t.Error("promotion counter never moved")
	}

	// The promoted master must serve metadata: a fresh client (configured
	// with every endpoint) opens a new vdisk through it.
	cl := c.NewClient("post-failover-client")
	defer cl.Close()
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{
		Name: "post-failover", Size: util.ChunkSize,
	}); err != nil {
		t.Fatalf("create through promoted master: %v", err)
	}
	vd2, err := cl.Open("post-failover")
	if err != nil {
		t.Fatalf("open through promoted master: %v", err)
	}
	defer vd2.Close()
	buf := make([]byte, util.SectorSize)
	if err := vd2.WriteAt(buf, 0); err != nil {
		t.Fatalf("write on post-failover vdisk: %v", err)
	}
}

// TestDeposedMasterFencedByChunkservers proves the epoch fence: a primary
// partitioned away from its standbys (but not from the chunkservers) keeps
// believing it is primary; once a standby promotes at a higher epoch and
// broadcasts it, every view change the deposed master attempts bounces off
// StatusStaleEpoch — and the rejection deposes it on the spot.
func TestDeposedMasterFencedByChunkservers(t *testing.T) {
	c := failoverCluster(t)
	cl := c.NewClient("fence-client")
	t.Cleanup(func() { cl.Close() })
	meta, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "fence", Size: 2 * util.ChunkSize})
	if err != nil {
		t.Fatal(err)
	}

	// Isolate the bootstrap primary from the other masters only.
	addrs := c.MasterAddrs()
	c.Net.Partition(addrs[0], addrs[1])
	c.Net.Partition(addrs[0], addrs[2])

	p := waitForPrimary(t, c, 1, 5*time.Second)
	if p == c.Masters[0] {
		t.Fatal("partitioned master should not have bumped its own epoch")
	}
	if !c.Masters[0].IsPrimary() {
		t.Fatal("old primary stepped down without ever being fenced")
	}

	// Wait for the promotion broadcast to land on the chunkservers holding
	// the target chunk, so the fence is armed before the deposed master acts.
	deadline := time.Now().Add(5 * time.Second)
	armed := func() bool {
		for _, r := range meta.Chunks[0].Replicas {
			if c.Server(r.Addr).MasterEpoch() < p.Epoch() {
				return false
			}
		}
		return true
	}
	for !armed() {
		if !time.Now().Before(deadline) {
			t.Fatal("promotion epoch never reached the chunkservers")
		}
		time.Sleep(5 * time.Millisecond)
	}

	viewBefore := meta.Chunks[0].View
	reg := c.Metrics()
	rejBefore := reg.Counter(chunkserver.MetricStaleEpochRejections).Load()

	// The deposed master tries to run a view change, naming a live backup
	// as failed so the recovery must push clones and new views.
	_, recErr := c.Masters[0].RecoverChunk(meta.ID, 0, meta.Chunks[0].Replicas[1].Addr)
	if recErr == nil {
		t.Fatal("deposed master's view change succeeded")
	}
	if !errors.Is(recErr, util.ErrNotPrimary) {
		t.Fatalf("recover error = %v, want ErrNotPrimary", recErr)
	}
	if got := reg.Counter(chunkserver.MetricStaleEpochRejections).Load(); got == rejBefore {
		t.Fatal("no chunkserver rejected the deposed master's commands")
	}
	if c.Masters[0].IsPrimary() {
		t.Fatal("deposed master still claims primacy after StatusStaleEpoch")
	}

	// The real primary's view of the chunk is untouched.
	snap := p.Snapshot()
	if got := snap.VDisks[meta.ID].Chunks[0].View; got != viewBefore {
		t.Fatalf("chunk view changed under the deposed master: %d -> %d", viewBefore, got)
	}

	// The client, told every endpoint, follows the redirect to the new
	// primary for metadata even though its first choice is the deposed one.
	var fetched master.VDiskMeta
	fetched, err = cl.OpenMeta("fence")
	if err != nil {
		t.Fatalf("metadata through replicated masters: %v", err)
	}
	if fetched.ID != meta.ID {
		t.Fatalf("fetched vdisk %d, want %d", fetched.ID, meta.ID)
	}
}
