package cluster

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"ursa/internal/chunkserver"
	"ursa/internal/client"
	"ursa/internal/core"
	"ursa/internal/linearize"
	"ursa/internal/master"
	"ursa/internal/objstore"
	"ursa/internal/util"
)

// coldCluster is the chaos cluster with a near-free object-store model:
// these tests exercise the snapshot/clone/demand-fetch protocol, not the
// cold tier's latency shape.
func coldCluster(t *testing.T) *core.Cluster {
	t.Helper()
	opts := chaosClusterOptions(false)
	model := objstore.TestModel()
	opts.ObjstoreModel = &model
	c, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// fillVDisk writes golden into vd at offset 0 in 1 MiB slices and returns
// a private copy of it.
func fillVDisk(t *testing.T, vd *client.VDisk, golden []byte) {
	t.Helper()
	const step = util.MiB
	for off := 0; off < len(golden); off += step {
		n := step
		if n > len(golden)-off {
			n = len(golden) - off
		}
		if err := vd.WriteAt(golden[off:off+n], int64(off)); err != nil {
			t.Fatalf("fill write at %d: %v", off, err)
		}
	}
}

// TestSnapshotCloneColdReads is the cold tier's end-to-end smoke: snapshot
// a written vdisk, thin-clone it, and require clone reads to demand-fetch
// the exact golden bytes — including zeros for never-written ranges — while
// the source stays independent of clone writes.
func TestSnapshotCloneColdReads(t *testing.T) {
	c := coldCluster(t)
	cl := c.NewClient("cold-client")
	t.Cleanup(func() { cl.Close() })

	if _, err := cl.CreateVDisk(master.CreateVDiskReq{
		Name: "golden", Size: util.ChunkSize,
	}); err != nil {
		t.Fatal(err)
	}
	src, err := cl.Open("golden")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })

	golden := make([]byte, 3*util.MiB)
	util.NewRand(7).Fill(golden)
	fillVDisk(t, src, golden)

	if err := cl.SnapshotVDisk("golden", "snap"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CloneFromSnapshot(master.CloneReq{Snapshot: "snap", Name: "clone"}); err != nil {
		t.Fatal(err)
	}
	cvd, err := cl.Open("clone")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cvd.Close() })

	got := make([]byte, len(golden))
	if err := cvd.ReadAt(got, 0); err != nil {
		t.Fatalf("clone read: %v", err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatal("clone read does not match the golden image")
	}
	// A range the golden image never wrote has no extent refs (zero
	// suppression) and must read as zeros without touching the store.
	tail := make([]byte, util.MiB)
	if err := cvd.ReadAt(tail, int64(8*util.MiB)); err != nil {
		t.Fatalf("clone tail read: %v", err)
	}
	for i, b := range tail {
		if b != 0 {
			t.Fatalf("unwritten clone range byte %d = %#x, want 0", i, b)
		}
	}

	// Copy-on-write: a clone write must not leak into the source.
	patch := make([]byte, util.SectorSize)
	util.NewRand(8).Fill(patch)
	if err := cvd.WriteAt(patch, 0); err != nil {
		t.Fatalf("clone write: %v", err)
	}
	back := make([]byte, util.SectorSize)
	if err := cvd.ReadAt(back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, patch) {
		t.Fatal("clone write did not stick")
	}
	if err := src.ReadAt(back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, golden[:util.SectorSize]) {
		t.Fatal("clone write leaked into the source vdisk")
	}

	reg := c.Metrics()
	if got := reg.Counter(chunkserver.MetricColdFetches).Load(); got == 0 {
		t.Error("no demand fetch recorded")
	}
	if got := reg.Counter(objstore.MetricObjGets).Load(); got == 0 {
		t.Error("object store served no GETs")
	}
}

// TestSnapshotImmutableUnderRacingWrites snapshots a vdisk while writers
// hammer it, then requires the snapshot to be frozen: two clones read
// identical bytes, and the image does not shift under later source writes.
// Run with -race this also sweeps the flush-vs-write and fetch-vs-write
// paths for data races.
func TestSnapshotImmutableUnderRacingWrites(t *testing.T) {
	c := coldCluster(t)
	cl := c.NewClient("race-client")
	t.Cleanup(func() { cl.Close() })

	if _, err := cl.CreateVDisk(master.CreateVDiskReq{
		Name: "hot", Size: util.ChunkSize,
	}); err != nil {
		t.Fatal(err)
	}
	src, err := cl.Open("hot")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })

	region := int64(2 * util.MiB)
	seed := make([]byte, region)
	util.NewRand(21).Fill(seed)
	fillVDisk(t, src, seed)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := util.NewRand(uint64(100 + w))
			buf := make([]byte, 8*util.KiB)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Fill(buf)
				off := util.AlignDown(r.Int63n(region-int64(len(buf))), util.SectorSize)
				_ = src.WriteAt(buf, off)
			}
		}(w)
	}
	if err := cl.SnapshotVDisk("hot", "frozen"); err != nil {
		close(stop)
		wg.Wait()
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	read := func(name string) []byte {
		t.Helper()
		if _, err := cl.CloneFromSnapshot(master.CloneReq{Snapshot: "frozen", Name: name}); err != nil {
			t.Fatal(err)
		}
		vd, err := cl.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		defer vd.Close()
		buf := make([]byte, region)
		if err := vd.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	img1 := read("c1")

	// Shift the source after the snapshot; the frozen image must not move.
	later := make([]byte, region)
	util.NewRand(22).Fill(later)
	fillVDisk(t, src, later)

	img2 := read("c2")
	if !bytes.Equal(img1, img2) {
		t.Fatal("two clones of one snapshot read different bytes")
	}
}

// TestChaosColdReadsSurviveObjstoreStall runs the chaos workload over a
// thin clone while the object store stalls, rots GET payloads, and is
// partitioned away from one machine — demand fetches must retry through it
// and every read the client acks must stay linearizable against the golden
// image (zero corrupt payloads).
func TestChaosColdReadsSurviveObjstoreStall(t *testing.T) {
	c := coldCluster(t)
	cl := c.NewClient("stall-client")
	t.Cleanup(func() { cl.Close() })

	if _, err := cl.CreateVDisk(master.CreateVDiskReq{
		Name: "base", Size: util.ChunkSize,
	}); err != nil {
		t.Fatal(err)
	}
	src, err := cl.Open("base")
	if err != nil {
		t.Fatal(err)
	}
	region := int64(256 * util.KiB)
	golden := make([]byte, region)
	util.NewRand(33).Fill(golden)
	fillVDisk(t, src, golden)
	if err := cl.SnapshotVDisk("base", "bsnap"); err != nil {
		t.Fatal(err)
	}
	src.Close()

	if _, err := cl.CloneFromSnapshot(master.CloneReq{Snapshot: "bsnap", Name: "bclone"}); err != nil {
		t.Fatal(err)
	}
	cvd, err := cl.Open("bclone")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cvd.Close() })

	// The clone starts as the golden image, not zeros: seed the checker
	// with the committed state so first reads check against it.
	checker := linearize.New()
	checker.WriteCommitted(0, golden)

	schedule := []ChaosEvent{
		{AtOp: 5, Kind: ChaosObjstoreStall, Stall: 2 * time.Millisecond},
		{AtOp: 40, Kind: ChaosObjstoreCorrupt, Count: 8},
		{AtOp: 80, Kind: ChaosObjstorePartition, Machine: 0},
		{AtOp: 150, Kind: ChaosObjstoreHealPartition, Machine: 0},
		{AtOp: 170, Kind: ChaosObjstoreHeal},
	}
	rep, err := RunChaos(c, cvd, ChaosOptions{
		Ops:        250,
		Region:     region,
		WriteFrac:  0.4,
		Seed:       99,
		Schedule:   schedule,
		FinalSweep: true,
		Checker:    checker,
	})
	if err != nil {
		t.Fatal(err) // any corrupt or stale payload fails here
	}
	if rep.EventsFired != len(schedule) {
		t.Errorf("fired %d/%d events", rep.EventsFired, len(schedule))
	}
	if got := c.Metrics().Counter(chunkserver.MetricColdFetches).Load(); got == 0 {
		t.Error("workload never demand-fetched: clone was not cold")
	}
}

// TestColdGCReclaimsAfterMaterialization soaks demand fetch against
// concurrent GC passes, then deletes the snapshot once the clone has fully
// materialized and requires GC to reclaim every dead segment byte.
func TestColdGCReclaimsAfterMaterialization(t *testing.T) {
	c := coldCluster(t)
	cl := c.NewClient("gc-client")
	t.Cleanup(func() { cl.Close() })

	if _, err := cl.CreateVDisk(master.CreateVDiskReq{
		Name: "img", Size: util.ChunkSize,
	}); err != nil {
		t.Fatal(err)
	}
	src, err := cl.Open("img")
	if err != nil {
		t.Fatal(err)
	}
	region := int64(2 * util.MiB)
	golden := make([]byte, region)
	util.NewRand(55).Fill(golden)
	fillVDisk(t, src, golden)
	if err := cl.SnapshotVDisk("img", "isnap"); err != nil {
		t.Fatal(err)
	}
	src.Close()

	if _, err := cl.CloneFromSnapshot(master.CloneReq{Snapshot: "isnap", Name: "iclone"}); err != nil {
		t.Fatal(err)
	}
	cvd, err := cl.Open("iclone")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cvd.Close() })

	// Readers race GC passes: with the snapshot still live nothing may be
	// reclaimed, and every fetched byte must match the image.
	var wg sync.WaitGroup
	readErr := make(chan error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := util.NewRand(uint64(200 + w))
			buf := make([]byte, 64*util.KiB)
			for i := 0; i < 60; i++ {
				off := util.AlignDown(r.Int63n(region-int64(len(buf))), util.SectorSize)
				if err := cvd.ReadAt(buf, off); err != nil {
					readErr <- err
					return
				}
				if !bytes.Equal(buf, golden[off:off+int64(len(buf))]) {
					readErr <- util.ErrCorrupt
					return
				}
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		pm := c.PrimaryMaster()
		if pm == nil {
			t.Fatal("no primary master")
		}
		if n, _, err := pm.RunColdGC(); err != nil {
			t.Fatalf("gc pass: %v", err)
		} else if n != 0 {
			t.Fatalf("gc reclaimed %d segments while the snapshot is live", n)
		}
	}
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatalf("reader under gc soak: %v", err)
	default:
	}

	// Materialize every replica: cover the whole cold range with writes so
	// each replica fetches its extents and reports in.
	fillVDisk(t, cvd, golden)
	if err := cl.DeleteSnapshot("isnap"); err != nil {
		t.Fatal(err)
	}

	// Materialized reports are asynchronous; poll GC until the store is
	// empty.
	deadline := time.Now().Add(20 * time.Second)
	for c.Objstore.UsedBytes() > 0 {
		pm := c.PrimaryMaster()
		if pm == nil {
			t.Fatal("no primary master")
		}
		if _, _, err := pm.RunColdGC(); err != nil {
			t.Fatalf("gc pass: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("gc never drained the store: %d bytes still used", c.Objstore.UsedBytes())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.Metrics().Counter(master.MetricGCSegmentsReclaimed).Load(); got == 0 {
		t.Error("gc reclaimed segments but the counter never moved")
	}
	// The clone must still read the full image from local replicas.
	got := make([]byte, region)
	if err := cvd.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatal("clone bytes diverged after materialization and gc")
	}
}
