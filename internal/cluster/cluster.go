// Package cluster provides scenario drivers over a core.Cluster: locating
// chunk replicas, injecting failures, waiting for recovery, and sampling
// recovery traffic over time. The failure-recovery benchmark (Fig 12) and
// the failover example are built from these pieces.
package cluster

import (
	"fmt"
	"time"

	"ursa/internal/chunkserver"
	"ursa/internal/client"
	"ursa/internal/core"
	"ursa/internal/master"
	"ursa/internal/util"
)

// ChunkPlacement locates one chunk's replicas for a vdisk.
func ChunkPlacement(cl *client.Client, vdisk string, chunkIndex int) (master.ChunkMeta, error) {
	meta, err := cl.OpenMeta(vdisk)
	if err != nil {
		return master.ChunkMeta{}, err
	}
	if chunkIndex >= len(meta.Chunks) {
		return master.ChunkMeta{}, fmt.Errorf("cluster: chunk %d of %q: %w",
			chunkIndex, vdisk, util.ErrNotFound)
	}
	return meta.Chunks[chunkIndex], nil
}

// PrimaryAddr returns the preferred-primary replica address of a chunk.
func PrimaryAddr(cl *client.Client, vdisk string, chunkIndex int) (string, error) {
	cm, err := ChunkPlacement(cl, vdisk, chunkIndex)
	if err != nil {
		return "", err
	}
	return cm.Replicas[0].Addr, nil
}

// WaitViewChange polls until the chunk's view exceeds fromView or the
// timeout passes, returning the new placement.
func WaitViewChange(c *core.Cluster, cl *client.Client, vdisk string,
	chunkIndex int, fromView uint64, timeout time.Duration) (master.ChunkMeta, error) {

	deadline := c.Clock().Now().Add(timeout)
	for {
		cm, err := ChunkPlacement(cl, vdisk, chunkIndex)
		if err == nil && cm.View > fromView {
			return cm, nil
		}
		if c.Clock().Now().After(deadline) {
			return master.ChunkMeta{}, fmt.Errorf("cluster: no view change past %d: %w",
				fromView, util.ErrTimeout)
		}
		c.Clock().Sleep(timeout / 50)
	}
}

// TotalServerStats sums chunk-server counters across the cluster.
func TotalServerStats(c *core.Cluster) chunkserver.Stats {
	var total chunkserver.Stats
	for _, m := range c.Machines {
		for _, s := range m.Servers {
			st := s.Stats()
			total.Reads += st.Reads
			total.Writes += st.Writes
			total.Replicates += st.Replicates
			total.BytesRead += st.BytesRead
			total.BytesWritten += st.BytesWritten
			total.Repairs += st.Repairs
			total.Clones += st.Clones
		}
	}
	return total
}

// TrafficSample is one point of a recovery-traffic timeline.
type TrafficSample struct {
	T     time.Duration // since sampling started
	Bytes int64         // bytes written in this interval, cluster-wide
	Rate  float64       // bytes/second over the interval
}

// TrafficMonitor samples cluster-wide server write traffic at the given
// interval until Stop. It reproduces Fig 12's one-sample-per-interval
// recovery timeline.
type TrafficMonitor struct {
	samples chan TrafficSample
	stop    chan struct{}
	done    chan struct{}
}

// StartTrafficMonitor begins sampling.
func StartTrafficMonitor(c *core.Cluster, interval time.Duration) *TrafficMonitor {
	m := &TrafficMonitor{
		samples: make(chan TrafficSample, 4096),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(m.done)
		defer close(m.samples)
		start := c.Clock().Now()
		prev := TotalServerStats(c).BytesWritten
		for {
			select {
			case <-m.stop:
				return
			case <-c.Clock().After(interval):
			}
			cur := TotalServerStats(c).BytesWritten
			delta := cur - prev
			prev = cur
			s := TrafficSample{
				T:     c.Clock().Now().Sub(start),
				Bytes: delta,
				Rate:  float64(delta) / interval.Seconds(),
			}
			select {
			case m.samples <- s:
			default: // drop rather than block the sampler
			}
		}
	}()
	return m
}

// Stop ends sampling and returns the collected timeline.
func (m *TrafficMonitor) Stop() []TrafficSample {
	close(m.stop)
	<-m.done
	var out []TrafficSample
	for s := range m.samples {
		out = append(out, s)
	}
	return out
}
