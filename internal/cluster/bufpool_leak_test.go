package cluster

import (
	"testing"
	"time"

	"ursa/internal/bufpool"
	"ursa/internal/core"
	"ursa/internal/master"
	"ursa/internal/util"
)

// TestChaosPoolLeakFree runs the random-fault chaos harness — journal
// massacre, dead disks, server crash/restart — and then requires the buffer
// pool's in-use count to balance back to its starting value once the
// cluster shuts down. Every leased payload buffer must be returned exactly
// once on every path the chaos run exercises: success, timeout-and-retry,
// dead-journal re-route, crash-severed connections, repair reads.
func TestChaosPoolLeakFree(t *testing.T) {
	if !bufpool.Enabled() {
		t.Skip("buffer pool disabled")
	}
	start := bufpool.InUse()

	// Built without t.Cleanup: the leak check needs the cluster fully
	// closed (all in-flight buffers drained) while the test still runs.
	c, err := core.New(chaosClusterOptions(true))
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			c.Close()
		}
	}()
	cl := c.NewClient("leak-client")
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{
		Name: "leak", Size: 2 * util.ChunkSize,
	}); err != nil {
		t.Fatal(err)
	}
	vd, err := cl.Open("leak")
	if err != nil {
		t.Fatal(err)
	}

	ops := 300
	rep, err := RunChaos(c, vd, ChaosOptions{
		Ops:        ops,
		Seed:       11,
		WriteFrac:  0.6,
		Schedule:   RandomSchedule(c, 11, ops),
		FinalSweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventsFired == 0 {
		t.Fatal("random schedule injected nothing")
	}

	vd.Close()
	cl.Close()
	c.Close()
	closed = true

	deadline := time.Now().Add(15 * time.Second)
	for bufpool.InUse() != start {
		if time.Now().After(deadline) {
			t.Fatalf("pool leak after chaos run: in-use %d, started at %d (leases=%d returns=%d)",
				bufpool.InUse(), start, bufpool.Leases(), bufpool.Returns())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
