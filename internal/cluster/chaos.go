package cluster

import (
	"fmt"
	"time"

	"ursa/internal/client"
	"ursa/internal/core"
	"ursa/internal/linearize"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// ChaosKind names one fault action the chaos harness can take.
type ChaosKind int

// Chaos event kinds.
const (
	// ChaosKillJournals arms write faults over every journal region on a
	// machine: the journals die on their next flush while replay reads keep
	// working, exercising the re-route → bypass degradation ladder.
	ChaosKillJournals ChaosKind = iota
	// ChaosKillDisk kills one device outright (reads and writes fail).
	ChaosKillDisk
	// ChaosHealDisk clears every fault on one device. Dead journals stay
	// dead by design; the data path recovers.
	ChaosHealDisk
	// ChaosStallDisk arms a fixed per-op delay on one device (limping disk).
	ChaosStallDisk
	// ChaosCrashServer makes one chunk server unreachable on the fabric.
	ChaosCrashServer
	// ChaosRestartServer brings a crashed server's node back.
	ChaosRestartServer
	// ChaosCorruptDisk silently flips bytes on one device: reads of the
	// [Lo, Hi) range keep succeeding but return rotted payloads (bit-rot).
	// Hi <= Lo corrupts the whole device.
	ChaosCorruptDisk
	// ChaosKillMaster crashes master replica Master (fabric node and
	// process); a standby promotes itself after the primacy TTL.
	ChaosKillMaster
	// ChaosHealMaster restarts a killed master as a fresh standby that
	// catches up from the current primary's log.
	ChaosHealMaster
	// ChaosPartition drops all traffic between every fabric node of
	// machines Machine and MachineB until healed.
	ChaosPartition
	// ChaosHealPartition restores the Machine–MachineB links.
	ChaosHealPartition
	// ChaosObjstoreStall arms a fixed extra delay on every object-store
	// request (a limping cold tier).
	ChaosObjstoreStall
	// ChaosObjstoreFault makes object-store PUTs and GETs fail until healed.
	ChaosObjstoreFault
	// ChaosObjstoreCorrupt flips the payload of the next Count GETs:
	// transient transfer rot the per-extent CRCs must catch and retry.
	ChaosObjstoreCorrupt
	// ChaosObjstoreHeal clears every armed object-store fault.
	ChaosObjstoreHeal
	// ChaosObjstorePartition cuts machine Machine's links to the object
	// store node (demand fetches from that machine black-hole).
	ChaosObjstorePartition
	// ChaosObjstoreHealPartition restores them.
	ChaosObjstoreHealPartition
)

func (k ChaosKind) String() string {
	switch k {
	case ChaosKillJournals:
		return "kill-journals"
	case ChaosKillDisk:
		return "kill-disk"
	case ChaosHealDisk:
		return "heal-disk"
	case ChaosStallDisk:
		return "stall-disk"
	case ChaosCrashServer:
		return "crash-server"
	case ChaosRestartServer:
		return "restart-server"
	case ChaosCorruptDisk:
		return "corrupt-disk"
	case ChaosKillMaster:
		return "kill-master"
	case ChaosHealMaster:
		return "heal-master"
	case ChaosPartition:
		return "partition"
	case ChaosHealPartition:
		return "heal-partition"
	case ChaosObjstoreStall:
		return "objstore-stall"
	case ChaosObjstoreFault:
		return "objstore-fault"
	case ChaosObjstoreCorrupt:
		return "objstore-corrupt"
	case ChaosObjstoreHeal:
		return "objstore-heal"
	case ChaosObjstorePartition:
		return "objstore-partition"
	case ChaosObjstoreHealPartition:
		return "objstore-heal-partition"
	default:
		return fmt.Sprintf("chaos-kind-%d", int(k))
	}
}

// ChaosEvent is one scheduled fault: when the workload's operation counter
// reaches AtOp the action fires. Device-targeted kinds address a device by
// (Machine, Disk, HDD); server kinds address a fabric node by Server.
type ChaosEvent struct {
	AtOp    int
	Kind    ChaosKind
	Machine int
	Disk    int
	HDD     bool // target the machine's HDDs instead of its SSDs
	Server  string
	// Master indexes the master replica for ChaosKillMaster/ChaosHealMaster.
	Master int
	// MachineB is the second machine of a ChaosPartition/ChaosHealPartition
	// pair.
	MachineB int
	Stall    time.Duration // ChaosStallDisk and ChaosObjstoreStall
	// ChaosCorruptDisk only: the rotting byte range (Hi <= Lo = whole
	// device) and whether the rot persists across re-reads or strikes once.
	Lo, Hi     int64
	Persistent bool
	// Count is how many GETs ChaosObjstoreCorrupt rots (0 = 1).
	Count int
}

// ChaosOptions parameterizes a chaos run.
type ChaosOptions struct {
	// Ops is the number of workload operations (default 400).
	Ops int
	// Region is the working-set size in bytes, sector-aligned (default
	// 128 KiB — small enough for heavy overwrites).
	Region int64
	// WriteFrac is the fraction of write operations (default 0.6).
	WriteFrac float64
	// MaxSectors bounds each op's size in sectors (default 4).
	MaxSectors int
	// Seed drives the deterministic op stream.
	Seed uint64
	// Schedule lists the faults to inject, fired as the op counter passes
	// each AtOp. Events need not be sorted.
	Schedule []ChaosEvent
	// FinalSweep heals every device, restarts schedule-crashed servers, and
	// read-checks the whole region after the op stream.
	FinalSweep bool
	// Checker continues an existing linearizability history (nil = fresh).
	// Chained runs over the same vdisk region must share one checker: a
	// fresh checker assumes unwritten sectors read as zeros, which is false
	// once a previous run has written them.
	Checker *linearize.Checker
}

// ChaosReport summarizes a chaos run. Any linearizability violation is
// returned as an error instead — a report means the history checked out.
type ChaosReport struct {
	Ops         int
	Writes      int
	Reads       int
	WriteErrors int // writes with unknown outcome (availability, not safety)
	ReadErrors  int // failed reads (availability, not safety)
	EventsFired int
	Sectors     int // distinct sectors the checker tracked
}

// RunChaos drives a deterministic mixed read/write workload against vd
// while injecting the scheduled faults into c, and checks every read the
// client acks against a per-sector linearizability model. I/O errors are
// availability loss and only counted; stale or lost data fails the run.
func RunChaos(c *core.Cluster, vd *client.VDisk, opts ChaosOptions) (*ChaosReport, error) {
	if opts.Ops <= 0 {
		opts.Ops = 400
	}
	if opts.Region <= 0 {
		opts.Region = 128 * util.KiB
	}
	if opts.WriteFrac <= 0 {
		opts.WriteFrac = 0.6
	}
	if opts.MaxSectors <= 0 {
		opts.MaxSectors = 4
	}
	region := util.AlignDown(opts.Region, util.SectorSize)
	if region > vd.Size() {
		region = util.AlignDown(vd.Size(), util.SectorSize)
	}

	checker := opts.Checker
	if checker == nil {
		checker = linearize.New()
	}
	r := util.NewRand(opts.Seed)
	rep := &ChaosReport{}

	// Pending events, fired in op order; ties fire in schedule order.
	pending := make([]ChaosEvent, len(opts.Schedule))
	copy(pending, opts.Schedule)

	for i := 0; i < opts.Ops; i++ {
		rest := pending[:0]
		for _, ev := range pending {
			if ev.AtOp <= i {
				fireChaos(c, ev)
				rep.EventsFired++
			} else {
				rest = append(rest, ev)
			}
		}
		pending = rest

		n := (1 + int(r.Int63n(int64(opts.MaxSectors)))) * util.SectorSize
		off := util.AlignDown(r.Int63n(region), util.SectorSize)
		if off+int64(n) > region {
			off = region - int64(n)
		}
		rep.Ops++
		if r.Float64() < opts.WriteFrac {
			rep.Writes++
			data := make([]byte, n)
			r.Fill(data)
			if err := vd.WriteAt(data, off); err != nil {
				rep.WriteErrors++
				checker.WriteUnresolved(off, data)
			} else {
				checker.WriteCommitted(off, data)
			}
		} else {
			rep.Reads++
			buf := make([]byte, n)
			if err := vd.ReadAt(buf, off); err != nil {
				rep.ReadErrors++
				continue
			}
			if err := checker.CheckRead(off, buf); err != nil {
				return nil, fmt.Errorf("cluster: chaos op %d: %w", i, err)
			}
		}
	}

	if opts.FinalSweep {
		HealAll(c)
		for _, ev := range opts.Schedule {
			if ev.Kind == ChaosCrashServer {
				c.RestartServer(ev.Server)
			}
		}
		buf := make([]byte, util.SectorSize)
		for off := int64(0); off < region; off += util.SectorSize {
			if err := vd.ReadAt(buf, off); err != nil {
				return nil, fmt.Errorf("cluster: chaos final sweep at %d: %w", off, err)
			}
			if err := checker.CheckRead(off, buf); err != nil {
				return nil, fmt.Errorf("cluster: chaos final sweep at %d: %w", off, err)
			}
		}
	}
	rep.Sectors = checker.Sectors()
	return rep, nil
}

// fireChaos applies one event to the cluster.
func fireChaos(c *core.Cluster, ev ChaosEvent) {
	switch ev.Kind {
	case ChaosKillJournals:
		if ev.Machine < len(c.Machines) {
			for _, jr := range c.Machines[ev.Machine].JournalRegions {
				jr.Disk.FailWriteRange(nil, jr.Base, jr.Base+jr.Size)
			}
		}
	case ChaosKillDisk, ChaosHealDisk, ChaosStallDisk:
		if fi := chaosDisk(c, ev); fi != nil {
			switch ev.Kind {
			case ChaosKillDisk:
				fi.Kill()
			case ChaosHealDisk:
				fi.Heal()
			case ChaosStallDisk:
				fi.Stall(ev.Stall)
			}
		}
	case ChaosCorruptDisk:
		if fi := chaosDisk(c, ev); fi != nil {
			lo, hi := ev.Lo, ev.Hi
			if hi <= lo {
				lo, hi = 0, fi.Size()
			}
			fi.CorruptRange(lo, hi, ev.Persistent)
		}
	case ChaosCrashServer:
		c.CrashServer(ev.Server)
	case ChaosRestartServer:
		c.RestartServer(ev.Server)
	case ChaosKillMaster:
		if ev.Master < len(c.Masters) {
			c.KillMaster(ev.Master)
		}
	case ChaosHealMaster:
		if ev.Master < len(c.Masters) {
			_ = c.HealMaster(ev.Master)
		}
	case ChaosPartition, ChaosHealPartition:
		if ev.Machine >= len(c.Machines) || ev.MachineB >= len(c.Machines) {
			return
		}
		for _, sa := range c.Machines[ev.Machine].Servers {
			for _, sb := range c.Machines[ev.MachineB].Servers {
				if ev.Kind == ChaosPartition {
					c.Net.Partition(sa.Addr(), sb.Addr())
				} else {
					c.Net.Heal(sa.Addr(), sb.Addr())
				}
			}
		}
	case ChaosObjstoreStall:
		c.Objstore.Stall(ev.Stall)
	case ChaosObjstoreFault:
		c.Objstore.FailPuts()
		c.Objstore.FailGets()
	case ChaosObjstoreCorrupt:
		n := ev.Count
		if n <= 0 {
			n = 1
		}
		c.Objstore.CorruptReads(n)
	case ChaosObjstoreHeal:
		c.Objstore.Heal()
	case ChaosObjstorePartition, ChaosObjstoreHealPartition:
		if ev.Machine >= len(c.Machines) {
			return
		}
		for _, s := range c.Machines[ev.Machine].Servers {
			if ev.Kind == ChaosObjstorePartition {
				c.Net.Partition(s.Addr(), core.ObjstoreAddr)
			} else {
				c.Net.Heal(s.Addr(), core.ObjstoreAddr)
			}
		}
	}
}

func chaosDisk(c *core.Cluster, ev ChaosEvent) *simdisk.FaultInjector {
	if ev.Machine >= len(c.Machines) {
		return nil
	}
	m := c.Machines[ev.Machine]
	disks := m.SSDFaults
	if ev.HDD {
		disks = m.HDDFaults
	}
	if ev.Disk >= len(disks) {
		return nil
	}
	return disks[ev.Disk]
}

// HealAll clears the armed faults on every device in the cluster and
// restores every partitioned link. Journals already marked dead stay out of
// the striping set — their backup servers keep running on the bypass path.
func HealAll(c *core.Cluster) {
	for _, m := range c.Machines {
		for _, fi := range m.SSDFaults {
			fi.Heal()
		}
		for _, fi := range m.HDDFaults {
			fi.Heal()
		}
	}
	if c.Objstore != nil {
		c.Objstore.Heal()
	}
	c.Net.HealAllPartitions()
}

// RandomSchedule builds a seeded fault schedule over an ops-long run:
// a journal massacre, a dead HDD, a stalled SSD, a server crash, and the
// matching heals/restart — spread across distinct machines so the cluster
// keeps a quorum everywhere.
func RandomSchedule(c *core.Cluster, seed uint64, ops int) []ChaosEvent {
	r := util.NewRand(seed)
	nm := len(c.Machines)
	if nm == 0 || ops < 10 {
		return nil
	}
	perm := r.Perm(nm)
	at := func(frac float64) int { return int(float64(ops) * frac) }

	mJournal := perm[0]
	mHDD := perm[1%nm]
	mSSD := perm[2%nm]
	hddPick := int(r.Int63n(int64(len(c.Machines[mHDD].HDDFaults))))
	ssdPick := int(r.Int63n(int64(len(c.Machines[mSSD].SSDFaults))))
	evs := []ChaosEvent{
		{AtOp: at(0.10), Kind: ChaosKillJournals, Machine: mJournal},
		{AtOp: at(0.25), Kind: ChaosKillDisk, Machine: mHDD, HDD: true, Disk: hddPick},
		{AtOp: at(0.40), Kind: ChaosStallDisk, Machine: mSSD, Disk: ssdPick,
			Stall: 200 * time.Microsecond},
		// One-shot bit-rot on the stalled machine's SSD store region (the
		// front half keeps clear of the journal tail): the next read of any
		// rotted sector sees garbage once; the checksummed read path must
		// absorb it with a re-read instead of serving it.
		{AtOp: at(0.55), Kind: ChaosCorruptDisk, Machine: mSSD, Disk: ssdPick,
			Lo: 0, Hi: c.Machines[mSSD].SSDFaults[ssdPick].Size() / 2},
		{AtOp: at(0.70), Kind: ChaosHealDisk, Machine: mSSD, Disk: ssdPick},
	}
	// Crash and later restart one backup server on a fourth machine.
	if srvs := c.Machines[perm[3%nm]].Servers; len(srvs) > 0 {
		addr := srvs[int(r.Int63n(int64(len(srvs))))].Addr()
		evs = append(evs,
			ChaosEvent{AtOp: at(0.50), Kind: ChaosCrashServer, Server: addr},
			ChaosEvent{AtOp: at(0.85), Kind: ChaosRestartServer, Server: addr},
		)
	}
	// Cut one machine pair's links for a stretch of the run.
	if nm >= 2 {
		a, b := perm[0], perm[1%nm]
		evs = append(evs,
			ChaosEvent{AtOp: at(0.45), Kind: ChaosPartition, Machine: a, MachineB: b},
			ChaosEvent{AtOp: at(0.65), Kind: ChaosHealPartition, Machine: a, MachineB: b},
		)
	}
	// The object store misbehaves for a stretch: stalled requests, then a
	// transient read-rot burst. Harmless without cold data; cold reads must
	// ride it out on the CRC-verify-and-retry fetch path.
	if c.Objstore != nil {
		evs = append(evs,
			ChaosEvent{AtOp: at(0.35), Kind: ChaosObjstoreStall, Stall: 500 * time.Microsecond},
			ChaosEvent{AtOp: at(0.55), Kind: ChaosObjstoreCorrupt, Count: 4},
			ChaosEvent{AtOp: at(0.75), Kind: ChaosObjstoreHeal},
		)
	}
	// With replicated masters, kill the bootstrap primary mid-run and bring
	// it back as a standby near the end.
	if len(c.Masters) > 1 {
		evs = append(evs,
			ChaosEvent{AtOp: at(0.30), Kind: ChaosKillMaster, Master: 0},
			ChaosEvent{AtOp: at(0.80), Kind: ChaosHealMaster, Master: 0},
		)
	}
	return evs
}
