package coldtier

import (
	"fmt"

	"ursa/internal/opctx"
	"ursa/internal/util"
)

// SegWriter packs extents into write-once segments and uploads each
// segment as it fills. Segment IDs are drawn in order from a contiguous
// range the master allocated to the caller (a chunk flush, a GC rewrite);
// the writer never reuses an ID, preserving the store's write-once
// discipline.
type SegWriter struct {
	cl        *Client
	op        *opctx.Op
	next, end uint64 // unused segment IDs: [next, end)
	buf       []byte // pending (unuploaded) segment bytes
	refs      []ExtentRef
}

// NewSegWriter returns a writer uploading through cl under op, drawing
// segment IDs from [segLo, segHi).
func NewSegWriter(cl *Client, op *opctx.Op, segLo, segHi uint64) *SegWriter {
	return &SegWriter{cl: cl, op: op, next: segLo, end: segHi}
}

// Add appends one extent covering chunk range [chunkOff, chunkOff+len).
// All-zero extents are suppressed: no bytes are stored and no ref is
// emitted — ranges without a ref read as zeros. The data is copied.
func (w *SegWriter) Add(chunkOff int64, data []byte) error {
	if len(data) == 0 || isZero(data) {
		return nil
	}
	if len(data) > SegmentTarget {
		return fmt.Errorf("coldtier: extent %d exceeds segment target %d: %w",
			len(data), SegmentTarget, util.ErrOutOfRange)
	}
	if len(w.buf) > 0 && len(w.buf)+len(data) > SegmentTarget {
		if err := w.flush(); err != nil {
			return err
		}
	}
	if w.next >= w.end {
		return fmt.Errorf("coldtier: segment ID range exhausted: %w", util.ErrQuota)
	}
	w.refs = append(w.refs, ExtentRef{
		Seg:      w.next,
		SegOff:   int64(len(w.buf)),
		ChunkOff: chunkOff,
		Len:      int64(len(data)),
		CRC:      util.Checksum(data),
	})
	w.buf = append(w.buf, data...)
	return nil
}

// flush uploads the pending segment and advances to the next ID.
func (w *SegWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if err := w.cl.PutSegment(w.op, w.next, w.buf); err != nil {
		return err
	}
	w.next++
	w.buf = w.buf[:0]
	return nil
}

// Close uploads any pending segment and returns the refs of everything
// written. The writer must not be used afterwards.
func (w *SegWriter) Close() ([]ExtentRef, error) {
	if err := w.flush(); err != nil {
		return nil, err
	}
	return w.refs, nil
}

// isZero reports whether b is all zero bytes.
func isZero(b []byte) bool {
	for len(b) >= 8 {
		if b[0]|b[1]|b[2]|b[3]|b[4]|b[5]|b[6]|b[7] != 0 {
			return false
		}
		b = b[8:]
	}
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}
