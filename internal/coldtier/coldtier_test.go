package coldtier

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/objstore"
	"ursa/internal/opctx"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// harness serves an objstore over a SimNet and returns a coldtier client
// for it, plus the raw store for fault arming.
func harness(t *testing.T) (*Client, *objstore.Store) {
	t.Helper()
	net := transport.NewSimNet(clock.Realtime, 0)
	store := objstore.New(clock.Realtime, objstore.TestModel())
	l, err := net.Listen("objstore", transport.NodeConfig{})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := transport.Serve(l, store.Handler)
	peers := transport.NewPeers(net.Dialer("test-client", transport.NodeConfig{}), clock.Realtime)
	t.Cleanup(func() {
		peers.CloseAll()
		srv.Close()
	})
	return NewClient(peers, "objstore"), store
}

func op() *opctx.Op { return opctx.New(clock.Realtime, 5*time.Second) }

func TestSegWriterRoundTrip(t *testing.T) {
	cl, _ := harness(t)

	// Three extents: data, zeros (suppressed), data. Small segment sizes
	// are exercised by packing more bytes than one SegmentTarget would
	// need only in the full-size bench; here the refs/CRC plumbing is the
	// point.
	a := bytes.Repeat([]byte{0x11}, 4096)
	z := make([]byte, 4096)
	b := bytes.Repeat([]byte{0x22}, 4096)

	w := NewSegWriter(cl, op(), 100, 100+SegsPerChunk)
	if err := w.Add(0, a); err != nil {
		t.Fatalf("add a: %v", err)
	}
	if err := w.Add(4096, z); err != nil {
		t.Fatalf("add zeros: %v", err)
	}
	if err := w.Add(8192, b); err != nil {
		t.Fatalf("add b: %v", err)
	}
	refs, err := w.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if len(refs) != 2 {
		t.Fatalf("got %d refs, want 2 (zero extent suppressed)", len(refs))
	}
	if refs[0].ChunkOff != 0 || refs[1].ChunkOff != 8192 {
		t.Fatalf("refs cover offsets %d,%d; want 0,8192", refs[0].ChunkOff, refs[1].ChunkOff)
	}
	if LiveBytes(refs) != 8192 {
		t.Fatalf("LiveBytes = %d, want 8192", LiveBytes(refs))
	}

	for i, want := range [][]byte{a, b} {
		got, err := cl.GetExtent(op(), refs[i])
		if err != nil {
			t.Fatalf("get extent %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("extent %d: wrong bytes", i)
		}
		bufpool.Put(got)
	}
}

func TestGetExtentDetectsCorruption(t *testing.T) {
	cl, store := harness(t)
	data := bytes.Repeat([]byte{0x33}, 8192)
	w := NewSegWriter(cl, op(), 1, 1+SegsPerChunk)
	if err := w.Add(0, data); err != nil {
		t.Fatalf("add: %v", err)
	}
	refs, err := w.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}

	// One corrupted transfer: the CRC must catch it, and the retry reads
	// clean bytes — exactly the transient bit-rot recovery the demand-fetch
	// path relies on.
	store.CorruptReads(1)
	if _, err := cl.GetExtent(op(), refs[0]); !errors.Is(err, util.ErrCorrupt) {
		t.Fatalf("corrupted fetch: got %v, want ErrCorrupt", err)
	}
	got, err := cl.GetExtent(op(), refs[0])
	if err != nil {
		t.Fatalf("retry fetch: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("retry fetch: wrong bytes")
	}
	bufpool.Put(got)
}

func TestClientSegmentLifecycle(t *testing.T) {
	cl, _ := harness(t)
	data := bytes.Repeat([]byte{0x44}, 1024)
	if err := cl.PutSegment(op(), 5, data); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := cl.PutSegment(op(), 5, data); !errors.Is(err, util.ErrExists) {
		t.Fatalf("re-put: got %v, want ErrExists", err)
	}
	segs, err := cl.ListSegments(op())
	if err != nil || len(segs) != 1 || segs[0].Seg != 5 || segs[0].Size != 1024 {
		t.Fatalf("list: %v, %v", segs, err)
	}
	got, err := cl.GetRange(op(), 5, 256, 512)
	if err != nil {
		t.Fatalf("get range: %v", err)
	}
	if !bytes.Equal(got, data[256:768]) {
		t.Fatal("get range: wrong bytes")
	}
	bufpool.Put(got)
	if err := cl.DeleteSegment(op(), 5); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := cl.DeleteSegment(op(), 5); !errors.Is(err, util.ErrNotFound) {
		t.Fatalf("re-delete: got %v, want ErrNotFound", err)
	}
	if _, err := cl.GetRange(op(), 5, 0, 16); !errors.Is(err, util.ErrNotFound) {
		t.Fatalf("get after delete: got %v, want ErrNotFound", err)
	}
}
