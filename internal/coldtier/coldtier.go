// Package coldtier owns the log-structured cold tier's data format and
// object-store access path.
//
// Cold data lives in immutable *segments* (write-once objects in
// internal/objstore, ≤ SegmentTarget bytes each) holding concatenated
// *extents* — ExtentSize-aligned slices of a chunk's address space, each
// with its own CRC-32C. The extent table itself (which chunk ranges live
// where) is metadata: the master stores it per snapshot and per cloned
// chunk, replicated through the op log. All-zero extents are never
// written; a chunk range no ref covers reads as zeros, which is what makes
// flushing and cloning thin-provisioned images cheap.
//
// The package provides the segment writer used by chunkserver flushes and
// the master's GC rewriter, and the transport client used by everyone who
// talks to the object store (chunkserver demand fetch, master GC, tests).
package coldtier

import (
	"encoding/json"
	"fmt"

	"ursa/internal/blockstore"
	"ursa/internal/bufpool"
	"ursa/internal/opctx"
	"ursa/internal/proto"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// ExtentSize is the granularity of cold data: demand fetches, CRCs, and
// zero-suppression all work on ExtentSize-aligned chunk ranges (the tail
// extent of a chunk may be shorter).
const ExtentSize = 1 * util.MiB

// SegmentTarget is the byte size a segment is packed toward. It must stay
// ≤ proto.MaxPayload: a segment PUT is one frame.
const SegmentTarget = 8 * util.MiB

// SegsPerChunk bounds how many segments one chunk flush can produce, which
// lets the master hand each chunk a fixed, contiguous segment-ID sub-range.
const SegsPerChunk = util.ChunkSize / SegmentTarget

// ExtentRef locates one cold extent: chunk range [ChunkOff, ChunkOff+Len)
// lives at [SegOff, SegOff+Len) of segment Seg, with the extent's CRC-32C
// for end-to-end verification of every fetch.
type ExtentRef struct {
	Seg      uint64 `json:"seg"`
	SegOff   int64  `json:"seg_off"`
	ChunkOff int64  `json:"chunk_off"`
	Len      int64  `json:"len"`
	CRC      uint32 `json:"crc"`
}

// Overlaps reports whether the extent intersects chunk range [off, off+n).
func (r ExtentRef) Overlaps(off, n int64) bool {
	return r.ChunkOff < off+n && off < r.ChunkOff+r.Len
}

// LiveBytes sums the extent lengths of refs.
func LiveBytes(refs []ExtentRef) int64 {
	var n int64
	for _, r := range refs {
		n += r.Len
	}
	return n
}

// Client talks to one object store over the shared peer pool. Safe for
// concurrent use.
type Client struct {
	peers *transport.Peers
	addr  string
}

// NewClient returns a client for the object store at addr.
func NewClient(peers *transport.Peers, addr string) *Client {
	return &Client{peers: peers, addr: addr}
}

// Addr returns the object store's address.
func (c *Client) Addr() string { return c.addr }

// PutSegment stores data as immutable segment seg. One reference of data
// is consumed (foreign buffers unaffected, per the bufpool contract).
func (c *Client) PutSegment(op *opctx.Op, seg uint64, data []byte) error {
	m := proto.GetMessage()
	m.Op = proto.OpObjPut
	m.Chunk = chunkID(seg)
	m.Payload = data
	resp, err := c.peers.Do(op, c.addr, m, 0)
	if err != nil {
		return err
	}
	status := resp.Status
	bufpool.Put(resp.Payload)
	proto.Recycle(resp)
	switch status {
	case proto.StatusOK:
		return nil
	case proto.StatusExists:
		return fmt.Errorf("coldtier: segment %#x: %w", seg, util.ErrExists)
	default:
		return fmt.Errorf("coldtier: put segment %#x: %s", seg, status)
	}
}

// GetRange reads n bytes at off of segment seg. The returned buffer is
// leased from bufpool; the caller releases it with bufpool.Put.
func (c *Client) GetRange(op *opctx.Op, seg uint64, off int64, n int) ([]byte, error) {
	m := proto.GetMessage()
	m.Op = proto.OpObjGet
	m.Chunk = chunkID(seg)
	m.Off = off
	m.Length = uint32(n)
	resp, err := c.peers.Do(op, c.addr, m, 0)
	if err != nil {
		return nil, err
	}
	status := resp.Status
	if status == proto.StatusOK && len(resp.Payload) == n {
		// Keep the response's payload lease: it becomes the caller's.
		data := resp.Payload
		resp.Payload = nil
		proto.Recycle(resp)
		return data, nil
	}
	bufpool.Put(resp.Payload)
	proto.Recycle(resp)
	if status == proto.StatusNotFound {
		return nil, fmt.Errorf("coldtier: segment %#x: %w", seg, util.ErrNotFound)
	}
	return nil, fmt.Errorf("coldtier: get segment %#x [%d,+%d): %s", seg, off, n, status)
}

// GetExtent fetches one extent and verifies its CRC. A mismatch returns
// util.ErrCorrupt — a corrupted transfer, which a retry reads clean. The
// returned buffer is leased from bufpool; the caller releases it.
func (c *Client) GetExtent(op *opctx.Op, ref ExtentRef) ([]byte, error) {
	data, err := c.GetRange(op, ref.Seg, ref.SegOff, int(ref.Len))
	if err != nil {
		return nil, err
	}
	if util.Checksum(data) != ref.CRC {
		bufpool.Put(data)
		return nil, fmt.Errorf("coldtier: extent seg %#x [%d,+%d): %w",
			ref.Seg, ref.SegOff, ref.Len, util.ErrCorrupt)
	}
	return data, nil
}

// DeleteSegment removes segment seg. The object store drains in-flight
// GETs on the segment before it disappears.
func (c *Client) DeleteSegment(op *opctx.Op, seg uint64) error {
	m := proto.GetMessage()
	m.Op = proto.OpObjDelete
	m.Chunk = chunkID(seg)
	resp, err := c.peers.Do(op, c.addr, m, 0)
	if err != nil {
		return err
	}
	status := resp.Status
	bufpool.Put(resp.Payload)
	proto.Recycle(resp)
	switch status {
	case proto.StatusOK:
		return nil
	case proto.StatusNotFound:
		return fmt.Errorf("coldtier: segment %#x: %w", seg, util.ErrNotFound)
	default:
		return fmt.Errorf("coldtier: delete segment %#x: %s", seg, status)
	}
}

// SegStat is one stored segment in a listing: its ID and total byte size.
// The JSON shape matches objstore.ObjInfo — the wire contract.
type SegStat struct {
	Seg  uint64 `json:"id"`
	Size int64  `json:"size"`
}

// ListSegments returns every stored segment's ID and size, ascending by ID.
func (c *Client) ListSegments(op *opctx.Op) ([]SegStat, error) {
	m := proto.GetMessage()
	m.Op = proto.OpObjList
	resp, err := c.peers.Do(op, c.addr, m, 0)
	if err != nil {
		return nil, err
	}
	status := resp.Status
	var segs []SegStat
	var jerr error
	if status == proto.StatusOK {
		jerr = json.Unmarshal(resp.Payload, &segs)
	}
	bufpool.Put(resp.Payload)
	proto.Recycle(resp)
	if status != proto.StatusOK {
		return nil, fmt.Errorf("coldtier: list segments: %s", status)
	}
	return segs, jerr
}

// chunkID adapts a segment ID to the wire's Chunk field.
func chunkID(seg uint64) blockstore.ChunkID { return blockstore.ChunkID(seg) }
