package sheepdoglike

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
	"ursa/internal/util"
)

func fastModel() simdisk.SSDModel {
	return simdisk.SSDModel{
		Capacity:       util.GiB,
		Parallelism:    32,
		ReadLatency:    2 * time.Microsecond,
		WriteLatency:   4 * time.Microsecond,
		ReadBandwidth:  20e9,
		WriteBandwidth: 12e9,
	}
}

func testPool(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Options{
		Machines:       3,
		SSDsPerMachine: 1,
		Clock:          clock.Realtime,
		SSDModel:       fastModel(),
		Net:            transport.NewSimNet(clock.Realtime, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestVolumeRoundTrip(t *testing.T) {
	c := testPool(t)
	v, err := c.CreateVolume("vol1", 128*util.MiB, "client")
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	data := make([]byte, 8*util.KiB)
	util.NewRand(1).Fill(data)
	if err := v.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := v.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
}

func TestVolumeCrossChunkAndBounds(t *testing.T) {
	c := testPool(t)
	v, err := c.CreateVolume("vol2", 2*util.ChunkSize, "client")
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	data := make([]byte, 32*util.KiB)
	util.NewRand(2).Fill(data)
	off := int64(util.ChunkSize) - 16*util.KiB
	if err := v.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := v.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-chunk mismatch")
	}
	if err := v.ReadAt(got, v.Size()); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("read past end: %v", err)
	}
}

func TestAllReplicasWritten(t *testing.T) {
	c := testPool(t)
	v, err := c.CreateVolume("vol3", 64*util.MiB, "client")
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	data := bytes.Repeat([]byte{0x7e}, 4096)
	if err := v.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Sheepdog writes client-directed to all replicas: verify all three
	// server stores.
	written := 0
	for _, s := range c.servers {
		got := make([]byte, len(data))
		if err := s.store.ReadAt(chunkID(v, 0), got, 0); err != nil {
			continue
		}
		if bytes.Equal(got, data) {
			written++
		}
	}
	if written != 3 {
		t.Errorf("replicas written = %d, want 3", written)
	}
}

func TestNoPipeliningSerialization(t *testing.T) {
	// Two concurrent 4K writes through one volume must serialize at the
	// gateway lock — the architectural property the paper measures in
	// Figs 8/9 (flat IOPS vs queue depth).
	c := testPool(t)
	v, err := c.CreateVolume("vol4", 64*util.MiB, "client")
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			done <- v.WriteAt(make([]byte, 4096), int64(i)*8192)
		}(i)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestFNVDeterministic(t *testing.T) {
	if fnv("abc") != fnv("abc") || fnv("abc") == fnv("abd") {
		t.Error("fnv broken")
	}
}

func chunkID(v *Volume, idx uint32) blockstore.ChunkID {
	return blockstore.MakeChunkID(v.vdiskID, idx)
}
