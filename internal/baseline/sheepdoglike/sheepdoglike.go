// Package sheepdoglike reimplements the replication architecture of the
// paper's second comparator (§6): a Sheepdog-style store in SSD-only mode.
// It shares URSA's simulated disks and network fabric, isolating the
// architectural differences the paper measures:
//
//   - The client ("gateway") always issues all primary and backup writes
//     itself, in parallel, and waits for every ack — there is no
//     primary-relay and no majority rule.
//   - Connections carry ONE outstanding request at a time (the measured
//     system's gateway processes a virtual disk's requests through a
//     single event loop): no pipelining, so queue depth buys little.
//   - Servers execute each connection's requests strictly in order: no
//     out-of-order execution or completion.
package sheepdoglike

import (
	"encoding/binary"
	"fmt"
	"sync"

	"ursa/internal/blockstore"
	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/proto"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// Server is one sheep daemon: an object store executing requests in
// arrival order.
type Server struct {
	addr  string
	store *blockstore.Store
	mu    sync.Mutex // strict in-order execution
	rpc   *transport.Server
}

// NewServer creates a sheep over an SSD store.
func NewServer(addr string, store *blockstore.Store) *Server {
	return &Server{addr: addr, store: store}
}

// Serve starts the RPC service.
func (s *Server) Serve(l transport.Listener) { s.rpc = transport.Serve(l, s.handle) }

// Close stops the server.
func (s *Server) Close() {
	if s.rpc != nil {
		s.rpc.Close()
	}
}

func (s *Server) handle(m *proto.Message) *proto.Message {
	// One request at a time — the single-threaded event loop.
	s.mu.Lock()
	defer s.mu.Unlock()
	switch m.Op {
	case proto.OpCreateChunk:
		if err := s.store.Create(m.Chunk); err != nil {
			return m.Reply(proto.StatusError)
		}
		return m.Reply(proto.StatusOK)
	case proto.OpRead:
		buf := make([]byte, m.Length)
		if err := s.store.ReadAt(m.Chunk, buf, m.Off); err != nil {
			return m.Reply(proto.StatusError)
		}
		r := m.Reply(proto.StatusOK)
		r.Payload = buf
		return r
	case proto.OpWrite, proto.OpReplicate:
		// A defensive copy per hop (the measured system's gateway copies
		// between its event loop and workers).
		shadow := make([]byte, len(m.Payload))
		copy(shadow, m.Payload)
		if err := s.store.WriteAt(m.Chunk, shadow, m.Off); err != nil {
			return m.Reply(proto.StatusError)
		}
		return m.Reply(proto.StatusOK)
	default:
		return m.Reply(proto.StatusError)
	}
}

// Options sizes a Sheepdog-like cluster.
type Options struct {
	Machines       int
	SSDsPerMachine int
	Replication    int
	Clock          clock.Clock
	SSDModel       simdisk.SSDModel
	Net            *transport.SimNet
	AddrPrefix     string
}

// Cluster is an assembled Sheepdog-like deployment.
type Cluster struct {
	opts    Options
	servers []*Server
	addrs   []string
	disks   []*simdisk.SSD
}

// New builds and starts the cluster.
func New(opts Options) (*Cluster, error) {
	if opts.Machines <= 0 {
		opts.Machines = 3
	}
	if opts.SSDsPerMachine <= 0 {
		opts.SSDsPerMachine = 2
	}
	if opts.Replication <= 0 {
		opts.Replication = 3
	}
	if opts.Clock == nil {
		opts.Clock = clock.Realtime
	}
	if opts.SSDModel.Capacity == 0 {
		opts.SSDModel = simdisk.DefaultSSD()
	}
	if opts.AddrPrefix == "" {
		opts.AddrPrefix = "sheep"
	}
	c := &Cluster{opts: opts}
	for i := 0; i < opts.Machines; i++ {
		for j := 0; j < opts.SSDsPerMachine; j++ {
			addr := fmt.Sprintf("%s/m%d/s%d", opts.AddrPrefix, i, j)
			ssd := simdisk.NewSSD(opts.SSDModel, opts.Clock)
			srv := NewServer(addr, blockstore.New(ssd, 0))
			l, err := opts.Net.Listen(addr, transport.NodeConfig{})
			if err != nil {
				c.Close()
				return nil, err
			}
			srv.Serve(l)
			c.servers = append(c.servers, srv)
			c.addrs = append(c.addrs, addr)
			c.disks = append(c.disks, ssd)
		}
	}
	return c, nil
}

// Close shuts the cluster down.
func (c *Cluster) Close() {
	for _, s := range c.servers {
		s.Close()
	}
	for _, d := range c.disks {
		d.Close()
	}
}

// seqConn is a connection restricted to one outstanding request.
type seqConn struct {
	mu  sync.Mutex
	cli *transport.Client
}

func (sc *seqConn) call(m *proto.Message) (*proto.Message, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.cli.Call(m, 0)
}

// Volume is the client-side device of a Sheepdog-like virtual disk.
// Different chunks may be in flight concurrently (the gateway's event loop
// overlaps network I/O), but each server connection carries one
// outstanding request — which is why sequential workloads, pinned to one
// chunk's servers, stay flat as queue depth grows (Figs 8–9).
type Volume struct {
	size    int64
	chunks  [][]string // replica addresses per 64 MB chunk
	vdiskID uint32
	clk     clock.Clock
	dialer  transport.Dialer
	connsMu sync.Mutex
	conns   map[string]*seqConn
}

// CreateVolume creates and places a virtual disk.
func (c *Cluster) CreateVolume(name string, size int64, clientAddr string) (*Volume, error) {
	if size <= 0 || size%util.SectorSize != 0 {
		return nil, fmt.Errorf("sheepdoglike: bad size %d: %w", size, util.ErrOutOfRange)
	}
	v := &Volume{
		size:    size,
		vdiskID: uint32(fnv(name)),
		clk:     c.opts.Clock,
		dialer:  c.opts.Net.Dialer(clientAddr, transport.NodeConfig{}),
		conns:   map[string]*seqConn{},
	}
	nchunks := int(util.CeilDiv(size, util.ChunkSize))
	perMachine := c.opts.SSDsPerMachine
	for i := 0; i < nchunks; i++ {
		start := (i * perMachine) % len(c.addrs)
		var replicas []string
		used := map[int]bool{}
		for k := 0; len(replicas) < c.opts.Replication && k < len(c.addrs); k++ {
			idx := (start + k) % len(c.addrs)
			if used[idx/perMachine] {
				continue
			}
			used[idx/perMachine] = true
			replicas = append(replicas, c.addrs[idx])
		}
		if len(replicas) < c.opts.Replication {
			return nil, fmt.Errorf("sheepdoglike: placement: %w", util.ErrQuota)
		}
		v.chunks = append(v.chunks, replicas)
		id := blockstore.MakeChunkID(v.vdiskID, uint32(i))
		for _, addr := range replicas {
			conn, err := v.conn(addr)
			if err != nil {
				return nil, err
			}
			resp, err := conn.call(&proto.Message{Op: proto.OpCreateChunk, Chunk: id})
			if err != nil || resp.Status != proto.StatusOK {
				return nil, fmt.Errorf("sheepdoglike: create chunk on %s failed", addr)
			}
		}
	}
	return v, nil
}

func fnv(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], h)
	return binary.LittleEndian.Uint64(b[:])
}

func (v *Volume) conn(addr string) (*seqConn, error) {
	v.connsMu.Lock()
	if c, okC := v.conns[addr]; okC {
		v.connsMu.Unlock()
		return c, nil
	}
	v.connsMu.Unlock()
	mc, err := v.dialer.Dial(addr)
	if err != nil {
		return nil, err
	}
	sc := &seqConn{cli: transport.NewClient(mc, v.clk)}
	v.connsMu.Lock()
	v.conns[addr] = sc
	v.connsMu.Unlock()
	return sc, nil
}

// Size implements the block device size.
func (v *Volume) Size() int64 { return v.size }

// Flush is a no-op.
func (v *Volume) Flush() error { return nil }

// Close tears down connections.
func (v *Volume) Close() error {
	v.connsMu.Lock()
	defer v.connsMu.Unlock()
	for _, c := range v.conns {
		c.cli.Close()
	}
	v.conns = map[string]*seqConn{}
	return nil
}

// ReadAt reads each piece from the first replica.
func (v *Volume) ReadAt(p []byte, off int64) error {
	return v.forEach(p, off, func(idx int, buf []byte, chunkOff int64) error {
		conn, err := v.conn(v.chunks[idx][0])
		if err != nil {
			return err
		}
		resp, err := conn.call(&proto.Message{
			Op:     proto.OpRead,
			Chunk:  blockstore.MakeChunkID(v.vdiskID, uint32(idx)),
			Off:    chunkOff,
			Length: uint32(len(buf)),
		})
		if err != nil {
			return err
		}
		if resp.Status != proto.StatusOK {
			return fmt.Errorf("sheepdoglike: read failed: %s", resp.Status)
		}
		copy(buf, resp.Payload)
		bufpool.Put(resp.Payload)
		return nil
	})
}

// WriteAt fans every piece out to all replicas and waits for all acks.
func (v *Volume) WriteAt(p []byte, off int64) error {
	return v.forEach(p, off, func(idx int, buf []byte, chunkOff int64) error {
		id := blockstore.MakeChunkID(v.vdiskID, uint32(idx))
		replicas := v.chunks[idx]
		errs := make(chan error, len(replicas))
		for _, addr := range replicas {
			go func(addr string) {
				conn, err := v.conn(addr)
				if err != nil {
					errs <- err
					return
				}
				resp, err := conn.call(&proto.Message{
					Op:      proto.OpWrite,
					Chunk:   id,
					Off:     chunkOff,
					Payload: buf,
				})
				if err != nil {
					errs <- err
					return
				}
				if resp.Status != proto.StatusOK {
					errs <- fmt.Errorf("sheepdoglike: write nack")
					return
				}
				errs <- nil
			}(addr)
		}
		for range replicas {
			if err := <-errs; err != nil {
				return err
			}
		}
		return nil
	})
}

// forEach fragments a request over chunks.
func (v *Volume) forEach(p []byte, off int64, fn func(int, []byte, int64) error) error {
	if off < 0 || off+int64(len(p)) > v.size {
		return fmt.Errorf("sheepdoglike: [%d,%d) out of volume: %w",
			off, off+int64(len(p)), util.ErrOutOfRange)
	}
	for done := 0; done < len(p); {
		idx := int((off + int64(done)) / util.ChunkSize)
		chunkOff := (off + int64(done)) % util.ChunkSize
		n := int(util.ChunkSize - chunkOff)
		if n > len(p)-done {
			n = len(p) - done
		}
		if err := fn(idx, p[done:done+n], chunkOff); err != nil {
			return err
		}
		done += n
	}
	return nil
}
