package cephlike

import (
	"fmt"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/proto"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// Options sizes a Ceph-like pool.
type Options struct {
	Machines       int
	SSDsPerMachine int
	Replication    int
	Clock          clock.Clock
	SSDModel       simdisk.SSDModel
	Net            *transport.SimNet // shared fabric (required)
	AddrPrefix     string            // avoids collisions when co-hosted with other systems
}

// Cluster is an assembled Ceph-like pool.
type Cluster struct {
	opts  Options
	osds  []*OSD
	addrs []string
	disks []*simdisk.SSD
}

// New builds and starts the pool on the given fabric.
func New(opts Options) (*Cluster, error) {
	if opts.Machines <= 0 {
		opts.Machines = 3
	}
	if opts.SSDsPerMachine <= 0 {
		opts.SSDsPerMachine = 2
	}
	if opts.Replication <= 0 {
		opts.Replication = 3
	}
	if opts.Clock == nil {
		opts.Clock = clock.Realtime
	}
	if opts.SSDModel.Capacity == 0 {
		opts.SSDModel = simdisk.DefaultSSD()
	}
	if opts.AddrPrefix == "" {
		opts.AddrPrefix = "ceph"
	}
	c := &Cluster{opts: opts}
	for i := 0; i < opts.Machines; i++ {
		for j := 0; j < opts.SSDsPerMachine; j++ {
			addr := fmt.Sprintf("%s/m%d/osd%d", opts.AddrPrefix, i, j)
			ssd := simdisk.NewSSD(opts.SSDModel, opts.Clock)
			osd := NewOSD(addr, blockstore.New(ssd, 0), opts.Clock,
				opts.Net.Dialer(addr, transport.NodeConfig{}))
			l, err := opts.Net.Listen(addr, transport.NodeConfig{})
			if err != nil {
				c.Close()
				return nil, err
			}
			osd.Serve(l)
			c.osds = append(c.osds, osd)
			c.addrs = append(c.addrs, addr)
			c.disks = append(c.disks, ssd)
		}
	}
	return c, nil
}

// Close shuts the pool down.
func (c *Cluster) Close() {
	for _, o := range c.osds {
		o.Close()
	}
	for _, d := range c.disks {
		d.Close()
	}
}

// CreateVolume places and creates the objects of a volume and returns its
// client device. Placement is round-robin across OSDs on distinct machines.
func (c *Cluster) CreateVolume(name string, size int64, clientAddr string) (*Volume, error) {
	if size <= 0 || size%util.SectorSize != 0 {
		return nil, fmt.Errorf("cephlike: bad volume size %d: %w", size, util.ErrOutOfRange)
	}
	nobjs := int(util.CeilDiv(size, util.ChunkSize))
	perMachine := c.opts.SSDsPerMachine
	v := &Volume{
		size:   size,
		clk:    c.opts.Clock,
		dialer: c.opts.Net.Dialer(clientAddr, transport.NodeConfig{}),
		conns:  map[string]*transport.Client{},
	}
	hash := util.NewRand(uint64(len(name)) + 7)
	for i := 0; i < nobjs; i++ {
		id := uint64(hash.Uint64()<<16) | uint64(i)
		// Pick Replication OSDs on distinct machines.
		start := (i * perMachine) % len(c.addrs)
		var replicas []string
		usedMachines := map[int]bool{}
		for k := 0; len(replicas) < c.opts.Replication && k < len(c.addrs); k++ {
			idx := (start + k) % len(c.addrs)
			machine := idx / perMachine
			if usedMachines[machine] {
				continue
			}
			usedMachines[machine] = true
			replicas = append(replicas, c.addrs[idx])
		}
		if len(replicas) < c.opts.Replication {
			return nil, fmt.Errorf("cephlike: cannot place %d replicas: %w",
				c.opts.Replication, util.ErrQuota)
		}
		v.objects = append(v.objects, objPlacement{id: id, replicas: replicas})
		// Create the object on each replica.
		for _, addr := range replicas {
			cli, err := v.client(addr)
			if err != nil {
				return nil, err
			}
			resp, err := cli.Call(&proto.Message{Op: proto.OpCreateChunk,
				Payload: encode(&wireMsg{Type: "create", Object: id})}, 0)
			if err != nil {
				return nil, err
			}
			if r, derr := decode(splitPayload(resp)); derr != nil || r.Status != "ok" {
				return nil, fmt.Errorf("cephlike: create object on %s failed", addr)
			}
		}
	}
	return v, nil
}
