package cephlike

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
	"ursa/internal/util"
)

func fastModel() simdisk.SSDModel {
	return simdisk.SSDModel{
		Capacity:       util.GiB,
		Parallelism:    32,
		ReadLatency:    2 * time.Microsecond,
		WriteLatency:   4 * time.Microsecond,
		ReadBandwidth:  20e9,
		WriteBandwidth: 12e9,
	}
}

func testPool(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Options{
		Machines:       3,
		SSDsPerMachine: 1,
		Clock:          clock.Realtime,
		SSDModel:       fastModel(),
		Net:            transport.NewSimNet(clock.Realtime, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestVolumeRoundTrip(t *testing.T) {
	c := testPool(t)
	v, err := c.CreateVolume("vol1", 128*util.MiB, "client")
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	data := make([]byte, 8*util.KiB)
	util.NewRand(1).Fill(data)
	if err := v.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := v.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
}

func TestVolumeCrossChunk(t *testing.T) {
	c := testPool(t)
	v, err := c.CreateVolume("vol2", 2*util.ChunkSize, "client")
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	data := make([]byte, 64*util.KiB)
	util.NewRand(2).Fill(data)
	off := int64(util.ChunkSize) - 32*util.KiB
	if err := v.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := v.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-chunk round trip mismatch")
	}
}

func TestVolumeBounds(t *testing.T) {
	c := testPool(t)
	v, err := c.CreateVolume("vol3", 64*util.MiB, "client")
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := v.WriteAt(make([]byte, 4096), v.Size()); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("write past end: %v", err)
	}
}

func TestWireCodecRoundTrip(t *testing.T) {
	in := &wireMsg{Type: "write", Object: 42, Off: 512, Len: 1024, Data: "QUJD", Status: "ok"}
	out, err := decode(encode(in))
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Errorf("codec round trip: %+v != %+v", out, in)
	}
	if _, err := decode([]byte("{broken")); err == nil {
		t.Error("bad json decoded")
	}
}

func TestReplicationReachesAllOSDs(t *testing.T) {
	c := testPool(t)
	v, err := c.CreateVolume("vol4", 64*util.MiB, "client")
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	data := bytes.Repeat([]byte{0x5a}, 4096)
	if err := v.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Each replica's store must hold the object data (read directly).
	obj := v.objects[0]
	for i, addr := range obj.replicas {
		var osd *OSD
		for _, o := range c.osds {
			if o.addr == addr {
				osd = o
				break
			}
		}
		if osd == nil {
			t.Fatalf("replica %d (%s) has no OSD", i, addr)
		}
		got := make([]byte, len(data))
		if err := osd.store.ReadAt(blockstoreID(obj.id), got, 0); err != nil {
			t.Fatalf("replica %d read: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("replica %d not written", i)
		}
	}
}

func blockstoreID(id uint64) blockstore.ChunkID { return blockstore.ChunkID(id) }
