// Package cephlike reimplements the replication architecture URSA is
// compared against in §6: a Ceph-style object store in its SSD-only
// configuration. It runs on the same simulated disks and network fabric as
// URSA, so the measured differences are architectural, not environmental:
//
//   - All writes go client → primary OSD → backups (primary-relay); there
//     is no client-directed fast path for small writes.
//   - Messages use verbose self-describing serialization (JSON with
//     base64 payloads) and an extra marshal/unmarshal per hop — the kind
//     of per-op CPU the paper's Fig 7 attributes to Ceph's stack.
//   - Each OSD dispatches through a small sharded worker pool behind a
//     dispatch lock, limiting out-of-order execution.
//
// The comparison is deliberately charitable where the paper is: reads are
// served from primary SSD replicas, placement spreads objects across
// machines, and replication is 3-way.
package cephlike

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/proto"
	"ursa/internal/transport"
	"ursa/internal/util"
)

// wireMsg is the verbose message format (every field self-describing, data
// base64-encoded — decoding costs real CPU, as in the measured system).
type wireMsg struct {
	Type    string `json:"type"`
	Object  uint64 `json:"object"`
	Off     int64  `json:"off"`
	Len     int    `json:"len"`
	Data    string `json:"data,omitempty"`
	Replica int    `json:"replica,omitempty"`
	Status  string `json:"status,omitempty"`
}

func encode(m *wireMsg) []byte {
	b, _ := json.Marshal(m)
	return b
}

func decode(p []byte) (*wireMsg, error) {
	var m wireMsg
	if err := json.Unmarshal(p, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// osdWorkers is the per-OSD dispatch width (sharded op queue).
const osdWorkers = 4

// OSD is one object storage daemon.
type OSD struct {
	addr   string
	store  *blockstore.Store
	clk    clock.Clock
	dialer transport.Dialer

	dispatchMu sync.Mutex // the "big dispatch lock": decode under it
	// Client-facing ops and peer replication ops run in separate sharded
	// queues (as in the measured system's messenger): a primary op may
	// block on replica acks, so replica ops must never wait behind one or
	// the pools deadlock in a cycle of primaries.
	workSem chan struct{}
	replSem chan struct{}

	peersMu sync.Mutex
	peers   map[string]*transport.Client

	rpc *transport.Server
}

// NewOSD creates an OSD over an SSD-backed chunk store.
func NewOSD(addr string, store *blockstore.Store, clk clock.Clock, dialer transport.Dialer) *OSD {
	return &OSD{
		addr:    addr,
		store:   store,
		clk:     clk,
		dialer:  dialer,
		workSem: make(chan struct{}, osdWorkers),
		replSem: make(chan struct{}, osdWorkers),
		peers:   make(map[string]*transport.Client),
	}
}

// Serve starts the OSD's RPC service.
func (o *OSD) Serve(l transport.Listener) { o.rpc = transport.Serve(l, o.handle) }

// Close stops the OSD.
func (o *OSD) Close() {
	if o.rpc != nil {
		o.rpc.Close()
	}
	o.peersMu.Lock()
	for _, p := range o.peers {
		p.Close()
	}
	o.peers = map[string]*transport.Client{}
	o.peersMu.Unlock()
}

func (o *OSD) peer(addr string) (*transport.Client, error) {
	o.peersMu.Lock()
	if p, okP := o.peers[addr]; okP {
		o.peersMu.Unlock()
		return p, nil
	}
	o.peersMu.Unlock()
	conn, err := o.dialer.Dial(addr)
	if err != nil {
		return nil, err
	}
	p := transport.NewClient(conn, o.clk)
	o.peersMu.Lock()
	o.peers[addr] = p
	o.peersMu.Unlock()
	return p, nil
}

// handle processes one request: decode under the dispatch lock, execute on
// a bounded worker slot.
func (o *OSD) handle(m *proto.Message) *proto.Message {
	o.dispatchMu.Lock()
	req, err := decode(splitPayload(m))
	o.dispatchMu.Unlock()
	if err != nil {
		return errorReply(m, "decode")
	}
	sem := o.workSem
	if m.Op == proto.OpReplicate {
		sem = o.replSem
	}
	sem <- struct{}{}
	defer func() { <-sem }()

	switch req.Type {
	case "create":
		if err := o.store.Create(blockstore.ChunkID(req.Object)); err != nil {
			return errorReply(m, "create")
		}
		return okReply(m, &wireMsg{Type: "created", Object: req.Object})
	case "read":
		buf := make([]byte, req.Len)
		if err := o.store.ReadAt(blockstore.ChunkID(req.Object), buf, req.Off); err != nil {
			return errorReply(m, "read")
		}
		return okReply(m, &wireMsg{
			Type: "data", Object: req.Object, Off: req.Off, Len: req.Len,
			Data: base64.StdEncoding.EncodeToString(buf),
		})
	case "write":
		data, err := base64.StdEncoding.DecodeString(req.Data)
		if err != nil {
			return errorReply(m, "base64")
		}
		// Extra defensive copy (journaling double-write heritage).
		shadow := make([]byte, len(data))
		copy(shadow, data)
		if err := o.store.WriteAt(blockstore.ChunkID(req.Object), shadow, req.Off); err != nil {
			return errorReply(m, "write")
		}
		return okReply(m, &wireMsg{Type: "acked", Object: req.Object})
	case "replicate":
		// Primary path: local write, then relay to backups and wait all.
		data, err := base64.StdEncoding.DecodeString(req.Data)
		if err != nil {
			return errorReply(m, "base64")
		}
		shadow := make([]byte, len(data))
		copy(shadow, data)
		if err := o.store.WriteAt(blockstore.ChunkID(req.Object), shadow, req.Off); err != nil {
			return errorReply(m, "write")
		}
		if err := o.relay(m, req); err != nil {
			return errorReply(m, "relay")
		}
		return okReply(m, &wireMsg{Type: "acked", Object: req.Object})
	default:
		return errorReply(m, "op")
	}
}

// relay forwards the write to backups (re-encoding it — another real CPU
// cost of the relay architecture) and waits for every ack.
func (o *OSD) relay(m *proto.Message, req *wireMsg) error {
	backups := decodeBackups(m)
	errs := make(chan error, len(backups))
	for _, addr := range backups {
		go func(addr string) {
			p, err := o.peer(addr)
			if err != nil {
				errs <- err
				return
			}
			fwd := &proto.Message{Op: proto.OpReplicate, Payload: encode(&wireMsg{
				Type: "write", Object: req.Object, Off: req.Off,
				Len: req.Len, Data: req.Data,
			})}
			resp, err := p.Call(fwd, 30*time.Second)
			if err != nil {
				errs <- err
				return
			}
			r, err := decode(resp.Payload)
			bufpool.Put(resp.Payload)
			if err != nil || r.Status != "ok" {
				errs <- fmt.Errorf("cephlike: replica nack")
				return
			}
			errs <- nil
		}(addr)
	}
	for range backups {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

// Backup addresses ride in the proto header fields to keep the wire format
// JSON-only for the measured payload path.
func encodeBackups(m *proto.Message, backups []string) {
	b, _ := json.Marshal(backups)
	m.Version = uint64(len(b))
	m.Payload = append(m.Payload, b...)
}

func decodeBackups(m *proto.Message) []string {
	n := int(m.Version)
	if n == 0 || n > len(m.Payload) {
		return nil
	}
	var backups []string
	_ = json.Unmarshal(m.Payload[len(m.Payload)-n:], &backups)
	return backups
}

func okReply(m *proto.Message, body *wireMsg) *proto.Message {
	body.Status = "ok"
	r := m.Reply(proto.StatusOK)
	r.Version = 0 // Version is backup-routing metadata on requests only
	r.Payload = encode(body)
	return r
}

func errorReply(m *proto.Message, what string) *proto.Message {
	r := m.Reply(proto.StatusError)
	r.Version = 0
	r.Payload = encode(&wireMsg{Status: "error:" + what})
	return r
}

// splitPayload separates the JSON body from trailing backup routing.
func splitPayload(m *proto.Message) []byte {
	n := int(m.Version)
	if n > 0 && n <= len(m.Payload) {
		return m.Payload[:len(m.Payload)-n]
	}
	return m.Payload
}

// Volume is the client-side block device over a Ceph-like pool.
type Volume struct {
	size    int64
	objects []objPlacement // per 64 MB object
	clk     clock.Clock
	dialer  transport.Dialer

	mu    sync.Mutex
	conns map[string]*transport.Client
}

type objPlacement struct {
	id       uint64
	replicas []string // primary first
}

func (v *Volume) client(addr string) (*transport.Client, error) {
	v.mu.Lock()
	if c, okC := v.conns[addr]; okC {
		v.mu.Unlock()
		return c, nil
	}
	v.mu.Unlock()
	conn, err := v.dialer.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := transport.NewClient(conn, v.clk)
	v.mu.Lock()
	v.conns[addr] = c
	v.mu.Unlock()
	return c, nil
}

// Size implements the block-device size.
func (v *Volume) Size() int64 { return v.size }

// Flush is a no-op: writes are durable on return.
func (v *Volume) Flush() error { return nil }

// Close tears down connections.
func (v *Volume) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, c := range v.conns {
		c.Close()
	}
	v.conns = map[string]*transport.Client{}
	return nil
}

// ReadAt reads from each object's primary replica.
func (v *Volume) ReadAt(p []byte, off int64) error {
	return v.forEach(p, off, func(obj objPlacement, buf []byte, objOff int64) error {
		c, err := v.client(obj.replicas[0])
		if err != nil {
			return err
		}
		resp, err := c.Call(&proto.Message{Op: proto.OpRead, Payload: encode(&wireMsg{
			Type: "read", Object: obj.id, Off: objOff, Len: len(buf),
		})}, 0)
		if err != nil {
			return err
		}
		r, err := decode(splitPayload(resp))
		if err != nil || r.Status != "ok" {
			return fmt.Errorf("cephlike: read failed")
		}
		data, err := base64.StdEncoding.DecodeString(r.Data)
		if err != nil {
			return err
		}
		copy(buf, data)
		return nil
	})
}

// WriteAt sends every write to the object's primary, which relays it.
func (v *Volume) WriteAt(p []byte, off int64) error {
	return v.forEach(p, off, func(obj objPlacement, buf []byte, objOff int64) error {
		c, err := v.client(obj.replicas[0])
		if err != nil {
			return err
		}
		m := &proto.Message{Op: proto.OpWrite, Payload: encode(&wireMsg{
			Type: "replicate", Object: obj.id, Off: objOff, Len: len(buf),
			Data: base64.StdEncoding.EncodeToString(buf),
		})}
		encodeBackups(m, obj.replicas[1:])
		resp, err := c.Call(m, 0)
		if err != nil {
			return err
		}
		r, err := decode(splitPayload(resp))
		if err != nil || r.Status != "ok" {
			return fmt.Errorf("cephlike: write failed")
		}
		return nil
	})
}

// forEach fragments a request over 64 MB objects.
func (v *Volume) forEach(p []byte, off int64, fn func(objPlacement, []byte, int64) error) error {
	if off < 0 || off+int64(len(p)) > v.size {
		return fmt.Errorf("cephlike: [%d,%d) out of volume: %w",
			off, off+int64(len(p)), util.ErrOutOfRange)
	}
	type piece struct {
		obj    objPlacement
		buf    []byte
		objOff int64
	}
	var pieces []piece
	for done := 0; done < len(p); {
		idx := (off + int64(done)) / util.ChunkSize
		objOff := (off + int64(done)) % util.ChunkSize
		n := int(util.ChunkSize - objOff)
		if n > len(p)-done {
			n = len(p) - done
		}
		pieces = append(pieces, piece{v.objects[idx], p[done : done+n], objOff})
		done += n
	}
	if len(pieces) == 1 {
		return fn(pieces[0].obj, pieces[0].buf, pieces[0].objOff)
	}
	errs := make(chan error, len(pieces))
	for _, pc := range pieces {
		go func(pc piece) { errs <- fn(pc.obj, pc.buf, pc.objOff) }(pc)
	}
	var first error
	for range pieces {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
