// Package cloudsim provides latency-profile block devices standing in for
// the commercial services of §6.5 (Amazon EBS, Tencent QCloud CBS). The
// production comparison (Fig 15) uses only the services' latency
// distributions — mean, p1, p99 over two days of probes — so a device that
// reproduces those envelopes exercises the same experiment.
package cloudsim

import (
	"fmt"
	"math"
	"sync"
	"time"

	"ursa/internal/clock"
	"ursa/internal/util"
)

// Profile describes a service's latency distribution per op kind, modeled
// as lognormal bodies with a heavy p99 tail.
type Profile struct {
	Name string
	// Median and Sigma parameterize the lognormal body.
	ReadMedian  time.Duration
	WriteMedian time.Duration
	Sigma       float64
	// TailProb and TailScale inject the long tail: with TailProb a sample
	// is multiplied by TailScale (queueing/oversell spikes, §6.5's note
	// that all tests are affected by background workloads).
	TailProb  float64
	TailScale float64
}

// AWSProfile approximates the paper's AWS AP-NorthEast-1a measurements:
// sub-millisecond means with a moderate p99.
func AWSProfile() Profile {
	return Profile{
		Name:       "aws",
		ReadMedian: 550 * time.Microsecond, WriteMedian: 850 * time.Microsecond,
		Sigma: 0.35, TailProb: 0.01, TailScale: 2.5,
	}
}

// QCloudProfile approximates the paper's QCloud Beijing-1 measurements:
// higher medians and a much heavier tail.
func QCloudProfile() Profile {
	return Profile{
		Name:       "qcloud",
		ReadMedian: 900 * time.Microsecond, WriteMedian: 1600 * time.Microsecond,
		Sigma: 0.5, TailProb: 0.02, TailScale: 3.5,
	}
}

// Device is a block device whose ops cost sampled latencies. Data is held
// in a sparse in-memory store so reads return what was written.
type Device struct {
	profile Profile
	clk     clock.Clock
	size    int64

	mu    sync.Mutex
	rnd   *util.Rand
	data  map[int64][]byte // 64 KiB pages
	close bool
}

const pageSize = 64 * util.KiB

// New creates a profile device of the given size.
func New(profile Profile, size int64, clk clock.Clock, seed uint64) *Device {
	return &Device{
		profile: profile,
		clk:     clk,
		size:    size,
		rnd:     util.NewRand(seed),
		data:    make(map[int64][]byte),
	}
}

// sample draws one latency for an op with the given median.
func (d *Device) sample(median time.Duration) time.Duration {
	d.mu.Lock()
	// Lognormal via Box-Muller on two uniforms.
	u1, u2 := d.rnd.Float64(), d.rnd.Float64()
	tail := d.rnd.Float64() < d.profile.TailProb
	d.mu.Unlock()
	if u1 <= 0 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	lat := float64(median) * math.Exp(d.profile.Sigma*z)
	if tail {
		lat *= d.profile.TailScale
	}
	return time.Duration(lat)
}

func (d *Device) check(off int64, n int) error {
	if off < 0 || n <= 0 || off%util.SectorSize != 0 || n%util.SectorSize != 0 ||
		off+int64(n) > d.size {
		return fmt.Errorf("cloudsim: bad range [%d,%d): %w", off, off+int64(n), util.ErrOutOfRange)
	}
	return nil
}

// ReadAt implements the device read with a sampled service latency.
func (d *Device) ReadAt(p []byte, off int64) error {
	if err := d.check(off, len(p)); err != nil {
		return err
	}
	d.clk.Sleep(d.sample(d.profile.ReadMedian))
	d.mu.Lock()
	defer d.mu.Unlock()
	for done := 0; done < len(p); {
		page := (off + int64(done)) / pageSize
		pageOff := (off + int64(done)) % pageSize
		n := int(pageSize - pageOff)
		if n > len(p)-done {
			n = len(p) - done
		}
		if b, ok := d.data[page]; ok {
			copy(p[done:done+n], b[pageOff:])
		} else {
			for i := done; i < done+n; i++ {
				p[i] = 0
			}
		}
		done += n
	}
	return nil
}

// WriteAt implements the device write with a sampled service latency.
func (d *Device) WriteAt(p []byte, off int64) error {
	if err := d.check(off, len(p)); err != nil {
		return err
	}
	d.clk.Sleep(d.sample(d.profile.WriteMedian))
	d.mu.Lock()
	defer d.mu.Unlock()
	for done := 0; done < len(p); {
		page := (off + int64(done)) / pageSize
		pageOff := (off + int64(done)) % pageSize
		n := int(pageSize - pageOff)
		if n > len(p)-done {
			n = len(p) - done
		}
		b, ok := d.data[page]
		if !ok {
			b = make([]byte, pageSize)
			d.data[page] = b
		}
		copy(b[pageOff:], p[done:done+n])
		done += n
	}
	return nil
}

// Size returns the device capacity.
func (d *Device) Size() int64 { return d.size }

// Flush is a no-op.
func (d *Device) Flush() error { return nil }

// Close releases the device.
func (d *Device) Close() error { return nil }
