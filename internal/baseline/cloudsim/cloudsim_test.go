package cloudsim

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ursa/internal/clock"
	"ursa/internal/util"
)

func TestDeviceRoundTrip(t *testing.T) {
	p := AWSProfile()
	p.ReadMedian, p.WriteMedian = time.Microsecond, time.Microsecond
	d := New(p, 64*util.MiB, clock.Realtime, 1)
	data := make([]byte, 8*util.KiB)
	util.NewRand(1).Fill(data)
	if err := d.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
	// Holes read as zero.
	hole := make([]byte, 512)
	if err := d.ReadAt(hole, 32*util.MiB); err != nil {
		t.Fatal(err)
	}
	for _, b := range hole {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
}

func TestDeviceBounds(t *testing.T) {
	d := New(AWSProfile(), util.MiB, clock.Realtime, 1)
	if err := d.WriteAt(make([]byte, 512), util.MiB); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("write past end: %v", err)
	}
	if err := d.ReadAt(make([]byte, 100), 0); !errors.Is(err, util.ErrOutOfRange) {
		t.Errorf("unaligned read: %v", err)
	}
}

func TestLatencyEnvelope(t *testing.T) {
	// Medians must be respected within sampling noise and the QCloud
	// profile must be visibly slower with a heavier tail than AWS.
	clk := clock.NewScaled(0.001) // compress waiting, not the samples
	aws := New(AWSProfile(), util.MiB, clk, 42)
	qc := New(QCloudProfile(), util.MiB, clk, 43)
	hAWS, hQC := util.NewHist(), util.NewHist()
	buf := make([]byte, 4096)
	for i := 0; i < 1500; i++ {
		hAWS.Observe(aws.sample(aws.profile.ReadMedian))
		hQC.Observe(qc.sample(qc.profile.ReadMedian))
		_ = buf
	}
	if m := hAWS.Quantile(0.5); m < 350*time.Microsecond || m > 900*time.Microsecond {
		t.Errorf("AWS median = %v", m)
	}
	if hQC.Mean() < hAWS.Mean() {
		t.Error("QCloud mean faster than AWS")
	}
	// The p99/median ratio must show the heavy tail.
	ratio := float64(hQC.Quantile(0.99)) / float64(hQC.Quantile(0.5))
	if ratio < 2 {
		t.Errorf("QCloud p99/median = %.2f, want heavy tail", ratio)
	}
}
