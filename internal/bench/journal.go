package bench

import (
	"encoding/json"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/clock"
	"ursa/internal/journal"
	"ursa/internal/metrics"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// journalBenchJSON is the machine-readable artifact FigJournal emits
// alongside its table, for regression tracking across PRs.
const journalBenchJSON = "BENCH_journal.json"

// journalCell is one (mode, queue depth) measurement.
type journalCell struct {
	Mode          string  `json:"mode"`
	QD            int     `json:"qd"`
	AppendsPerSec float64 `json:"appends_per_sec"`
	MeanLatUs     float64 `json:"mean_lat_us"`
	P99LatUs      float64 `json:"p99_lat_us"`
	MeanBatch     float64 `json:"mean_batch"`
	Flushes       int64   `json:"flushes"`
	FlushP50Us    float64 `json:"flush_p50_us"`
	FlushP99Us    float64 `json:"flush_p99_us"`
}

type journalBenchDoc struct {
	Bench    string        `json:"bench"`
	Quick    bool          `json:"quick"`
	Baseline string        `json:"baseline"`
	Cells    []journalCell `json:"cells"`
	// SpeedupQD maps queue depth to grouped/unbatched throughput ratio.
	SpeedupQD map[string]float64 `json:"speedup_by_qd"`
}

// runJournalCell measures 4 KiB random backup appends against a fresh
// HDD journal at the given queue depth. maxBatch 1 reproduces the
// pre-group-commit path (every record its own disk write); 0 uses the
// default group-commit batching. The set is not Started: the cell
// isolates the append/commit pipeline from replay traffic.
func runJournalCell(cfg Config, maxBatch, qd int) journalCell {
	clk := clock.Realtime
	hdd := simdisk.NewHDD(benchHDD(), clk)
	defer hdd.Close()
	store := blockstore.New(hdd, util.AlignDown(hdd.Size()/2, util.ChunkSize))

	reg := metrics.NewRegistry()
	jcfg := journal.DefaultConfig()
	jcfg.MaxBatch = maxBatch
	jcfg.Metrics = reg
	set := journal.NewSet(clk, store, jcfg)
	// Journal at the backup HDD's own tail, as §3.2 places it.
	base := util.AlignDown(hdd.Size()/2, util.ChunkSize)
	set.AddHDDJournal("jhdd", hdd, base, util.GiB)
	defer set.Close()

	var ops atomic.Int64
	hists := make([]*util.Hist, qd)
	deadline := clk.Now().Add(cfg.cellTime() / 2)
	var wg sync.WaitGroup
	for w := 0; w < qd; w++ {
		wg.Add(1)
		hists[w] = util.NewHist()
		go func(w int) {
			defer wg.Done()
			// One chunk per worker: the chunkserver contract serializes
			// appends within a chunk, so cross-worker concurrency must come
			// from distinct chunks.
			id := blockstore.MakeChunkID(1, uint32(w))
			r := util.NewRand(cfg.Seed + uint64(w)*7919)
			data := make([]byte, 4*util.KiB)
			for version := uint64(1); clk.Now().Before(deadline); version++ {
				off := util.AlignDown(r.Int63n(util.ChunkSize-4096), util.SectorSize)
				t0 := clk.Now()
				if err := set.Append(nil, id, off, data, version); err != nil {
					return // quota exhausted: stop this worker
				}
				hists[w].Observe(clk.Now().Sub(t0))
				ops.Add(1)
			}
		}(w)
	}
	wg.Wait()

	lat := util.NewHist()
	for _, h := range hists {
		lat.Merge(h)
	}
	elapsed := cfg.cellTime() / 2
	cell := journalCell{
		QD:            qd,
		AppendsPerSec: float64(ops.Load()) / elapsed.Seconds(),
		MeanLatUs:     float64(lat.Mean()) / float64(time.Microsecond),
		P99LatUs:      float64(lat.Quantile(0.99)) / float64(time.Microsecond),
	}
	if maxBatch == 1 {
		cell.Mode = "unbatched"
	} else {
		cell.Mode = "grouped"
	}
	st := set.Stats()
	cell.MeanBatch = st.MeanBatch()
	cell.Flushes = st.Flushes
	if fh := reg.LatencyHist("journal-flush"); fh != nil {
		cell.FlushP50Us = float64(fh.Quantile(0.50)) / float64(time.Microsecond)
		cell.FlushP99Us = float64(fh.Quantile(0.99)) / float64(time.Microsecond)
	}
	return cell
}

// FigJournal benchmarks the journal group-commit pipeline: 4 KiB random
// backup appends to an HDD journal at queue depths 1/8/32, unbatched
// (MaxBatch=1, the pre-group-commit write-per-record path) vs grouped
// (leader flushes the whole commit queue as one sequential write). The HDD
// journal is the interesting medium: a single-actuator device serializes
// the queue, so per-record write dispatch is exactly what batching
// collapses. Results are also written to BENCH_journal.json.
func FigJournal(cfg Config) Table {
	t := Table{
		ID:    "Fig J",
		Title: "Journal group commit: 4KiB random backup appends, HDD journal",
		Header: []string{"QD", "unbatched/s", "grouped/s", "speedup",
			"mean batch", "flush p50", "flush p99"},
	}
	doc := journalBenchDoc{
		Bench:     "journal",
		Quick:     cfg.Quick,
		Baseline:  "unbatched = MaxBatch 1 (pre-group-commit write-per-record)",
		SpeedupQD: map[string]float64{},
	}
	for _, qd := range []int{1, 8, 32} {
		un := runJournalCell(cfg, 1, qd)
		gr := runJournalCell(cfg, 0, qd)
		doc.Cells = append(doc.Cells, un, gr)
		speedup := 0.0
		if un.AppendsPerSec > 0 {
			speedup = gr.AppendsPerSec / un.AppendsPerSec
		}
		doc.SpeedupQD[f0(float64(qd))] = speedup
		t.Rows = append(t.Rows, []string{
			f0(float64(qd)),
			f0(un.AppendsPerSec),
			f0(gr.AppendsPerSec),
			f2(speedup) + "x",
			f1(gr.MeanBatch),
			us(time.Duration(gr.FlushP50Us * float64(time.Microsecond))),
			us(time.Duration(gr.FlushP99Us * float64(time.Microsecond))),
		})
	}
	t.Notes = append(t.Notes,
		"grouped: concurrent Append callers enqueue; the leader writes the whole batch as one",
		"contiguous sequential journal write and wakes every waiter. At QD 1 there is nothing",
		"to batch and the modes converge; at QD >= 8 batching collapses per-record dispatch.")
	if buf, err := json.MarshalIndent(&doc, "", "  "); err == nil {
		if werr := os.WriteFile(artifactPath(cfg, journalBenchJSON), append(buf, '\n'), 0o644); werr != nil {
			t.Notes = append(t.Notes, "write "+journalBenchJSON+": "+werr.Error())
		}
	}
	return t
}
