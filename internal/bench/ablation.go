package bench

import (
	"fmt"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/client"
	"ursa/internal/clock"
	"ursa/internal/core"
	"ursa/internal/jindex"
	"ursa/internal/journal"
	"ursa/internal/master"
	"ursa/internal/simdisk"
	"ursa/internal/util"
	"ursa/internal/workload"
)

// Ablations: design-choice experiments beyond the paper's figures, probing
// the decisions DESIGN.md calls out. Same ×10 slow-motion scale as the
// main suite.

// AblJournalMedia isolates §3.2's journal placement choice: small backup
// writes absorbed by an SSD journal vs an HDD journal vs no journal at all
// (every write random directly to the backup HDD).
func AblJournalMedia(cfg Config) Table {
	t := Table{
		ID:     "Abl 1",
		Title:  "Backup small-write absorption: SSD journal vs HDD journal vs none",
		Header: []string{"configuration", "appends/s", "mean latency"},
	}
	clk := clock.Realtime
	run := func(name string, setup func(hdd *simdisk.HDD, store *blockstore.Store, set *journal.Set)) {
		hdd := simdisk.NewHDD(benchHDD(), clk)
		defer hdd.Close()
		store := blockstore.New(hdd, util.AlignDown(hdd.Size()/2, util.ChunkSize))
		set := journal.NewSet(clk, store, journal.DefaultConfig())
		setup(hdd, store, set)
		set.Start()
		defer set.Close()

		id := blockstore.MakeChunkID(1, 0)
		if err := store.Create(id); err != nil {
			t.Notes = append(t.Notes, err.Error())
			return
		}
		r := util.NewRand(cfg.Seed)
		data := make([]byte, 4*util.KiB)
		lat := util.NewHist()
		deadline := clk.Now().Add(cfg.cellTime() / 2)
		ops := 0
		for version := uint64(1); clk.Now().Before(deadline); version++ {
			off := util.AlignDown(r.Int63n(util.ChunkSize-4096), util.SectorSize)
			t0 := clk.Now()
			err := set.Append(nil, id, off, data, version)
			if err != nil {
				// Quota exhausted or no journal: direct backup write.
				if werr := set.WriteDirect(id, data, off); werr != nil {
					t.Notes = append(t.Notes, werr.Error())
					return
				}
			}
			lat.Observe(clk.Now().Sub(t0))
			ops++
		}
		elapsed := cfg.cellTime() / 2
		t.Rows = append(t.Rows, []string{
			name, f0(float64(ops) / elapsed.Seconds()), us(lat.Mean()),
		})
	}

	run("SSD journal", func(hdd *simdisk.HDD, store *blockstore.Store, set *journal.Set) {
		ssd := simdisk.NewSSD(benchSSD(), clk)
		set.AddSSDJournal("jssd", ssd, 0, util.GiB)
	})
	run("HDD journal", func(hdd *simdisk.HDD, store *blockstore.Store, set *journal.Set) {
		// The journal lives at the backup HDD's own tail (idle-replayed).
		base := util.AlignDown(hdd.Size()/2, util.ChunkSize)
		set.AddHDDJournal("jhdd", hdd, base, util.GiB)
	})
	run("no journal", func(*simdisk.HDD, *blockstore.Store, *journal.Set) {})
	t.Notes = append(t.Notes,
		"short-term append rates: both journals absorb small writes; without one, the backup runs",
		"at the HDD's random-write rate. HDD journals defer ALL replay to idle periods, so their",
		"long-term sustainable rate is lower than SSD journals', which replay concurrently (§3.2)")
	return t
}

// AblClientDirected isolates §3.2's tiny-write optimization: 4 KB write
// latency with client-directed replication (Tc=8 KB) vs everything routed
// through the primary (Tc=0).
func AblClientDirected(cfg Config) Table {
	t := Table{
		ID:     "Abl 2",
		Title:  "Client-directed replication: 4KB write latency (QD=1)",
		Header: []string{"configuration", "mean", "p99"},
	}
	for _, mode := range []struct {
		name string
		tc   int
	}{
		{"client-directed (Tc=8KB)", 8 * util.KiB},
		{"primary-relay only (Tc=0)", 1}, // 1 byte: nothing qualifies as tiny
	} {
		c, err := core.New(core.Options{
			Machines: 3, SSDsPerMachine: 2, HDDsPerMachine: 4,
			Mode: core.Hybrid, Clock: clock.Realtime,
			SSDModel: benchSSD(), HDDModel: benchHDD(), HDDJournal: true,
			NetLatency: netLatency, TinyThreshold: mode.tc,
			ReplTimeout: 5 * time.Second, CallTimeout: 20 * time.Second,
		})
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		cl := c.NewClient("abl")
		vd, err := openBenchVDisk(cl, 2*util.GiB)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			c.Close()
			continue
		}
		res := workload.Run(clock.Realtime, vd, workload.Spec{
			Pattern: workload.RandWrite, BlockSize: 4 * util.KiB,
			QueueDepth: 1, Ops: 20000, Seed: cfg.Seed,
			MaxTime: cfg.cellTime() / 2,
		})
		t.Rows = append(t.Rows, []string{mode.name, us(res.Lat.Mean()), us(res.Lat.Quantile(0.99))})
		vd.Close()
		cl.Close()
		c.Close()
	}
	t.Notes = append(t.Notes,
		"client-directed writes reach all replicas in one hop instead of two (§3.2)")
	return t
}

// AblIndexLevels isolates §3.3's two-level index store: query and memory
// cost with everything merged into the sorted array, a balanced 1:6 split,
// and everything left in the red-black tree.
func AblIndexLevels(cfg Config) Table {
	t := Table{
		ID:     "Abl 3",
		Title:  "Index levels: query rate and memory vs tree/array split",
		Header: []string{"configuration", "queries/s", "memory"},
	}
	n := cfg.ops(700000)
	build := func(treeFrac float64) *jindex.Index {
		ix := jindex.New(0)
		r := util.NewRand(cfg.Seed + 7)
		mergePoint := int(float64(n) * (1 - treeFrac))
		for i := 0; i < n; i++ {
			ix.Insert(uint32(r.Intn(jindex.MaxOff-64)), uint32(r.Intn(64)+1), uint64(i))
			if treeFrac < 1 && i == mergePoint {
				ix.MergeNow() // everything so far to the array
			}
		}
		if treeFrac == 0 {
			ix.MergeNow() // array-only: nothing left in the tree
		}
		return ix
	}
	for _, cfgRow := range []struct {
		name     string
		treeFrac float64
	}{
		{"array only (fully merged)", 0},
		{"paper split (1/7 in tree)", 1.0 / 7},
		{"tree only (never merged)", 1},
	} {
		ix := build(cfgRow.treeFrac)
		r := util.NewRand(cfg.Seed + 8)
		nq := cfg.ops(100000)
		t0 := time.Now()
		for i := 0; i < nq; i++ {
			ix.Query(uint32(r.Intn(jindex.MaxOff-64)), uint32(r.Intn(64)+1))
		}
		rate := float64(nq) / time.Since(t0).Seconds()
		t.Rows = append(t.Rows, []string{
			cfgRow.name,
			util.FormatCount(rate),
			util.FormatBytes(ix.Stats().MemoryBytes),
		})
	}
	t.Notes = append(t.Notes,
		"the sorted array stores 8B/entry vs ~3x node overhead in the tree (§3.3)")
	return t
}

// AblBypassThreshold sweeps Tj (§3.2): mixed-size writes with varying
// journal bypass thresholds. Too low sends small randoms to the HDD; too
// high burns journal space and replay work on large sequential data.
func AblBypassThreshold(cfg Config) Table {
	t := Table{
		ID:     "Abl 4",
		Title:  "Journal bypass threshold Tj: mixed-size write IOPS",
		Header: []string{"Tj", "IOPS", "journal-bytes", "bypass-bytes"},
	}
	for _, tj := range []int{4 * util.KiB, 64 * util.KiB, 16 * util.MiB} {
		c, err := core.New(core.Options{
			Machines: 3, SSDsPerMachine: 2, HDDsPerMachine: 4,
			Mode: core.Hybrid, Clock: clock.Realtime,
			SSDModel: benchSSD(), HDDModel: benchHDD(), HDDJournal: true,
			NetLatency: netLatency, BypassThreshold: tj,
			ReplTimeout: 5 * time.Second, CallTimeout: 20 * time.Second,
		})
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		cl := c.NewClient("abl")
		vd, err := openBenchVDisk(cl, 2*util.GiB)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			c.Close()
			continue
		}
		// Mixed sizes per the Fig 1 distribution: mostly ≤8 KB with a
		// large tail.
		res := workload.Run(clock.Realtime, vd, workload.Spec{
			Pattern: workload.RandWrite, BlockSize: 16 * util.KiB,
			QueueDepth: 16, Ops: 100000, Seed: cfg.Seed,
			MaxTime: cfg.cellTime() / 2,
		})
		var jBytes, total int64
		for _, m := range c.Machines {
			for _, js := range m.JournalSets() {
				st := js.Stats()
				for _, j := range st.Journals {
					jBytes += j.Bytes
				}
			}
			for _, s := range m.Servers {
				total += s.Stats().BytesWritten
			}
		}
		bypass := total - jBytes
		if bypass < 0 {
			bypass = 0
		}
		t.Rows = append(t.Rows, []string{
			util.FormatBytes(int64(tj)),
			util.FormatCount(res.IOPS()),
			util.FormatBytes(jBytes),
			util.FormatBytes(bypass),
		})
		vd.Close()
		cl.Close()
		c.Close()
	}
	t.Notes = append(t.Notes,
		"writes at 16KB: Tj=4KB forces them to random HDD writes; Tj≥64KB journals them (§3.2)")
	return t
}

// openBenchVDisk creates and opens a bench vdisk through a client portal.
func openBenchVDisk(cl *client.Client, size int64) (*client.VDisk, error) {
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "abl", Size: size}); err != nil {
		return nil, fmt.Errorf("create: %w", err)
	}
	return cl.Open("abl")
}
