package bench

import (
	"runtime/debug"

	"ursa/internal/clock"
	"ursa/internal/trace"
	"ursa/internal/util"
	"ursa/internal/workload"
)

// Fig14 regenerates the trace-driven comparison (§6.4): replay the three
// representative MSR volumes (prxy_0, proj_0, mds_1) at QD16 with
// timestamps ignored, against Sheepdog, Ceph, Ursa-SSD and Ursa-Hybrid.
func Fig14(cfg Config) Table {
	t := Table{
		ID:     "Fig 14",
		Title:  "Trace-driven average IOPS (QD=16, timestamps ignored)",
		Header: []string{"system", "prxy_0", "proj_0", "mds_1"},
	}
	profiles := trace.Fig14Profiles()
	nOps := 12000
	if cfg.Quick {
		nOps = 1500
	}

	// Generate each trace once so every system replays identical records.
	traces := make([][]trace.Record, len(profiles))
	for i, p := range profiles {
		p.VolumeSize = microVolume / 2
		traces[i] = p.Generate(cfg.Seed+uint64(70+i), nOps)
	}

	systems, err := buildComparison(microVolume)
	if err != nil {
		t.Notes = append(t.Notes, "build failed: "+err.Error())
		return t
	}
	defer func() {
		for _, s := range systems {
			s.close()
		}
	}()
	for _, s := range systems {
		row := []string{s.name}
		for _, recs := range traces {
			res := workload.Replay(clock.Realtime, s.dev, recs, 16)
			row = append(row, util.FormatCount(res.IOPS()))
			// Replay allocates response payloads faster than a
			// single-core GC keeps up; collect between traces.
			debug.FreeOSMemory()
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: Ursa-SSD best everywhere; Ursa-Hybrid ≥ Ceph/Sheepdog in their SSD-only mode")
	return t
}
