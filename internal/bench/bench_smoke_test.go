package bench

import (
	"strings"
	"testing"
)

// quickCfg is the CI-speed configuration.
var quickCfg = Config{Quick: true, Seed: 1}

func checkTable(t *testing.T, tab Table, minRows int) {
	t.Helper()
	if len(tab.Rows) < minRows {
		t.Fatalf("%s: %d rows (< %d)\n%s", tab.ID, len(tab.Rows), minRows, tab)
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "failed") {
			t.Fatalf("%s: %s", tab.ID, n)
		}
	}
	if tab.String() == "" {
		t.Fatalf("%s: empty render", tab.ID)
	}
}

func TestFig01Smoke(t *testing.T) { checkTable(t, Fig01(quickCfg), 5) }
func TestFig02Smoke(t *testing.T) { checkTable(t, Fig02(quickCfg), 36) }
func TestTab01Smoke(t *testing.T) { checkTable(t, Tab01(quickCfg), 6) }
func TestFig10Smoke(t *testing.T) { checkTable(t, Fig10(quickCfg), 2) }

func TestFig06aSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster bench")
	}
	checkTable(t, Fig06a(quickCfg), 4)
}

func TestFig11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster bench")
	}
	checkTable(t, Fig11(quickCfg), 5)
}

func TestFig12Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster bench")
	}
	checkTable(t, Fig12(quickCfg), 1)
}

func TestFig15Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster bench")
	}
	checkTable(t, Fig15(quickCfg), 6)
}

func TestFigRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster bench")
	}
	tab := FigRecovery(quickCfg)
	checkTable(t, tab, 4)
	for _, n := range tab.Notes {
		if strings.Contains(n, "ACCEPTANCE FAIL") {
			t.Fatalf("%s: %s", tab.ID, n)
		}
	}
}

func TestFigFailoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster bench")
	}
	tab := FigFailover(quickCfg)
	checkTable(t, tab, 8)
	for _, n := range tab.Notes {
		if strings.Contains(n, "ACCEPTANCE FAIL") {
			t.Fatalf("%s: %s", tab.ID, n)
		}
	}
}
