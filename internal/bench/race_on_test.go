//go:build race

package bench

// raceEnabled reports that this binary was built with the race detector,
// whose shadow-memory bookkeeping distorts per-op allocation accounting.
const raceEnabled = true
