package bench

import (
	"syscall"

	"ursa/internal/clock"
	"ursa/internal/core"
	"ursa/internal/metrics"
	"ursa/internal/opctx"
	"ursa/internal/util"
	"ursa/internal/workload"
)

// volumeSize for the micro-benchmarks: a few GB so random 4 KB I/O spreads
// over many chunks.
const microVolume = 4 * util.GiB

// Fig06a regenerates random IOPS (BS=4KB, QD=16) for the four systems.
func Fig06a(cfg Config) Table {
	return microCompare(cfg, Table{
		ID:    "Fig 6a",
		Title: "Random IOPS (BS=4KB, QD=16)",
	}, workload.Spec{
		BlockSize: 4 * util.KiB, QueueDepth: 16, Ops: 200000,
		WorkingSet: microVolume / 2, MaxTime: cfg.cellTime(),
	}, func(r workload.Result) string { return util.FormatCount(r.IOPS()) })
}

// Fig06b regenerates random I/O latency (BS=4KB, QD=1), plus the
// per-stage decomposition of where that latency goes: the opctx
// breadcrumbs every layer records, aggregated by the cluster's metrics
// registry and rendered as companion tables per URSA system.
func Fig06b(cfg Config) Table {
	return microCompareStages(cfg, Table{
		ID:    "Fig 6b",
		Title: "Random I/O latency (BS=4KB, QD=1), mean",
	}, workload.Spec{
		BlockSize: 4 * util.KiB, QueueDepth: 1, Ops: 20000,
		WorkingSet: microVolume / 2, MaxTime: cfg.cellTime(),
	}, func(r workload.Result) string { return us(r.Lat.Mean()) }, true)
}

// Fig06c regenerates sequential throughput (BS=1MB, QD=1). For
// Ursa-Hybrid's writes this is the deliberate worst case: 1 MB exceeds Tj,
// so backup writes bypass journals and go directly to HDDs (§6.1).
func Fig06c(cfg Config) Table {
	return microCompare(cfg, Table{
		ID:    "Fig 6c",
		Title: "Sequential throughput (BS=1MB, QD=1), MB/s",
	}, workload.Spec{
		BlockSize: 1 * util.MiB, QueueDepth: 1, Ops: 5000,
		WorkingSet: microVolume / 2, MaxTime: cfg.cellTime(),
	}, func(r workload.Result) string { return f1(r.MBps()) })
}

// microCompare runs the read and write variants of spec on all systems.
func microCompare(cfg Config, t Table, spec workload.Spec,
	metric func(workload.Result) string) Table {
	return microCompareStages(cfg, t, spec, metric, false)
}

// microCompareStages is microCompare with optional per-stage latency
// companion tables: when stages is set, each system with a metrics
// registry gets its read- and write-run breadcrumbs snapshotted
// separately (the registry is reset between runs) and rendered after the
// main table.
func microCompareStages(cfg Config, t Table, spec workload.Spec,
	metric func(workload.Result) string, stages bool) Table {

	t.Header = []string{"system", "read", "write"}
	systems, err := buildComparison(microVolume)
	if err != nil {
		t.Notes = append(t.Notes, "build failed: "+err.Error())
		return t
	}
	defer func() {
		for _, s := range systems {
			s.close()
		}
	}()
	for _, s := range systems {
		rs, ws := spec, spec
		rs.Pattern, rs.Seed = workload.RandRead, cfg.Seed+11
		ws.Pattern, ws.Seed = workload.RandWrite, cfg.Seed+12
		if spec.BlockSize >= util.MiB {
			rs.Pattern, ws.Pattern = workload.SeqRead, workload.SeqWrite
		}
		if s.metrics != nil {
			s.metrics.ResetStages() // drop open/creation noise
		}
		rres := workload.Run(clock.Realtime, s.dev, rs)
		var readStages []metrics.StageStat
		if s.metrics != nil {
			readStages = s.metrics.StageSnapshot()
			s.metrics.ResetStages()
		}
		wres := workload.Run(clock.Realtime, s.dev, ws)
		t.Rows = append(t.Rows, []string{s.name, metric(rres), metric(wres)})
		if stages && s.metrics != nil {
			t.Extra = append(t.Extra, stageTable(s.name, readStages, s.metrics.StageSnapshot()))
		}
	}
	if stages {
		t.Notes = append(t.Notes,
			"stage tables decompose URSA request latency; baselines have no op threading")
	}
	return t
}

// stageTable renders one system's per-stage latency breakdown, stages in
// request-path order, read and write runs side by side.
func stageTable(name string, read, write []metrics.StageStat) Table {
	byStage := func(stats []metrics.StageStat) map[string]metrics.StageStat {
		m := make(map[string]metrics.StageStat, len(stats))
		for _, st := range stats {
			m[st.Stage] = st
		}
		return m
	}
	rm, wm := byStage(read), byStage(write)
	t := Table{
		ID:     name,
		Title:  "per-stage latency (mean over stage visits)",
		Header: []string{"stage", "read-n", "read-mean", "write-n", "write-mean"},
	}
	cell := func(st metrics.StageStat, ok bool) (string, string) {
		if !ok || st.Count == 0 {
			return "-", "-"
		}
		return util.FormatCount(float64(st.Count)), us(st.Mean)
	}
	for _, stage := range opctx.Stages() {
		r, rok := rm[stage.String()]
		w, wok := wm[stage.String()]
		if !rok && !wok {
			continue
		}
		rn, rmean := cell(r, rok)
		wn, wmean := cell(w, wok)
		t.Rows = append(t.Rows, []string{stage.String(), rn, rmean, wn, wmean})
	}
	return t
}

// cpuSeconds reads process CPU time (user+system) via getrusage.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return sec(ru.Utime) + sec(ru.Stime)
}

// Fig07 regenerates IOPS efficiency (IOPS per CPU core, §6.1): a 4 MB hot
// set inside one chunk, with per-run process CPU accounting. The paper
// splits client/server cores; all our components share one process, so the
// ratio is end-to-end IOPS per busy core — the same orders-of-magnitude
// comparison.
func Fig07(cfg Config) Table {
	t := Table{
		ID:     "Fig 7",
		Title:  "IOPS efficiency (IOPS per CPU core, end-to-end)",
		Header: []string{"system", "read", "write"},
	}
	systems, err := buildComparison(microVolume)
	if err != nil {
		t.Notes = append(t.Notes, "build failed: "+err.Error())
		return t
	}
	defer func() {
		for _, s := range systems {
			s.close()
		}
	}()
	measure := func(dev workload.Device, pattern workload.Pattern) float64 {
		spec := workload.Spec{
			Pattern: pattern, BlockSize: 4 * util.KiB, QueueDepth: 16,
			Ops: 200000, WorkingSet: 4 * util.MiB,
			Seed: cfg.Seed + 21, MaxTime: cfg.cellTime(),
		}
		cpu0 := cpuSeconds()
		res := workload.Run(clock.Realtime, dev, spec)
		cpu := cpuSeconds() - cpu0
		if cpu <= 0 {
			return 0
		}
		return float64(res.Ops) / cpu
	}
	for _, s := range systems {
		r := measure(s.dev, workload.RandRead)
		w := measure(s.dev, workload.RandWrite)
		t.Rows = append(t.Rows, []string{s.name, util.FormatCount(r), util.FormatCount(w)})
	}
	t.Notes = append(t.Notes,
		"process-wide CPU (client+servers); paper reports per-side cores")
	return t
}

// Fig08 regenerates sequential read IOPS vs queue depth.
func Fig08(cfg Config) Table {
	return seqVsQD(cfg, "Fig 8", "Sequential read IOPS vs queue depth (BS=4KB)",
		workload.SeqRead)
}

// Fig09 regenerates sequential write IOPS vs queue depth.
func Fig09(cfg Config) Table {
	return seqVsQD(cfg, "Fig 9", "Sequential write IOPS vs queue depth (BS=4KB)",
		workload.SeqWrite)
}

func seqVsQD(cfg Config, id, title string, pattern workload.Pattern) Table {
	qds := []int{1, 2, 4, 8, 16}
	t := Table{ID: id, Title: title,
		Header: []string{"system", "qd1", "qd2", "qd4", "qd8", "qd16"}}
	systems, err := buildComparison(microVolume)
	if err != nil {
		t.Notes = append(t.Notes, "build failed: "+err.Error())
		return t
	}
	defer func() {
		for _, s := range systems {
			s.close()
		}
	}()
	for _, s := range systems {
		row := []string{s.name}
		for _, qd := range qds {
			spec := workload.Spec{
				Pattern: pattern, BlockSize: 4 * util.KiB, QueueDepth: qd,
				Ops: 100000, WorkingSet: 512 * util.MiB,
				Seed: cfg.Seed + uint64(qd), MaxTime: cfg.cellTime() / 2,
			}
			res := workload.Run(clock.Realtime, s.dev, spec)
			row = append(row, util.FormatCount(res.IOPS()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// buildHybridForBench is shared by design/scale benches needing one URSA
// hybrid cluster of n machines.
func buildHybridForBench(machines int, volumeSize int64) (*ursaSUT, error) {
	return buildUrsa(core.Hybrid, machines, volumeSize, 1)
}
