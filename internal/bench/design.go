package bench

import (
	"fmt"
	"sync"
	"time"

	"ursa/internal/clock"
	"ursa/internal/cluster"
	"ursa/internal/core"
	"ursa/internal/jindex"
	"ursa/internal/jindex/flsm"
	"ursa/internal/master"
	"ursa/internal/util"
	"ursa/internal/workload"
)

// Fig10 regenerates the journal-index comparison (§6.2, Fig 10): insert
// 700k random ranges (start ∈ [0,2^20), length ∈ [1,2^6]) with 100k kept
// in the red-black tree and 600k merged into the array, then run 100k
// random range queries — against URSA's composite-key index and the
// PebblesDB-style point-key FLSM.
func Fig10(cfg Config) Table {
	nInsert := cfg.ops(700000)
	nQuery := cfg.ops(100000)
	treePortion := nInsert / 7 // 100k of 700k stays un-merged

	// The paper's key space is [0, 2^20) with range lengths ≤ 2^6; our
	// index addresses a 2^17-sector chunk, so the workload runs per-chunk
	// with the same range-length distribution (8 chunks tile the 2^20
	// space).
	const space = jindex.MaxOff - 64

	makeOps := func(seed uint64, n int) []jindex.Extent {
		r := util.NewRand(seed)
		ops := make([]jindex.Extent, n)
		for i := range ops {
			ops[i] = jindex.Extent{
				Off:  uint32(r.Intn(space)),
				Len:  uint32(r.Intn(64) + 1),
				JOff: uint64(i),
			}
		}
		return ops
	}
	inserts := makeOps(cfg.Seed+31, nInsert)
	queries := makeOps(cfg.Seed+32, nQuery)

	// URSA index.
	ix := jindex.New(0)
	t0 := time.Now()
	for i, op := range inserts {
		ix.Insert(op.Off, op.Len, op.JOff)
		if i == nInsert-treePortion {
			ix.MergeNow() // leaves the tail of inserts in the tree
		}
	}
	ursaInsert := time.Since(t0)
	t0 = time.Now()
	for _, q := range queries {
		ix.Query(q.Off, q.Len)
	}
	ursaQuery := time.Since(t0)

	// FLSM baseline. The measured system (PebblesDB) is a persistent
	// store: every insertion pays a WAL append and every range scan reads
	// SSTable blocks. Those per-op device costs are accounted into the
	// elapsed time (see flsm.StorageModel) so the comparison is
	// like-for-like with the paper's, where PebblesDB ran on real SSDs
	// against URSA's purely in-memory index.
	fl := flsm.New(1<<16, 8).WithStorage(flsm.PebblesDBStorage())
	t0 = time.Now()
	for _, op := range inserts {
		fl.RangeInsert(op.Off, op.Len, op.JOff)
	}
	flsmInsert := time.Since(t0) + fl.IOTime()
	ioMark := fl.IOTime()
	t0 = time.Now()
	for _, q := range queries {
		fl.RangeQuery(q.Off, q.Len)
	}
	flsmQuery := time.Since(t0) + (fl.IOTime() - ioMark)

	rate := func(n int, d time.Duration) string {
		return util.FormatCount(float64(n) / d.Seconds())
	}
	t := Table{
		ID:     "Fig 10",
		Title:  "Journal index vs PebblesDB-style FLSM (ops/second)",
		Header: []string{"structure", "range-insert", "range-query"},
		Rows: [][]string{
			{"FLSM (PebblesDB-like)", rate(nInsert, flsmInsert), rate(nQuery, flsmQuery)},
			{"Ursa Index", rate(nInsert, ursaInsert), rate(nQuery, ursaQuery)},
		},
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"speedup: %.0fx insert, %.0fx query (paper: ~100x both)",
		flsmInsert.Seconds()/ursaInsert.Seconds(),
		flsmQuery.Seconds()/ursaQuery.Seconds()))
	return t
}

// Fig11 regenerates journal expansion (§6.2, Fig 11): sustained random
// small writes against a deliberately tiny SSD journal quota; when it
// overflows, appends redirect to the HDD journal and IOPS degrade but
// survive. The table is the IOPS timeline with per-journal append counts.
func Fig11(cfg Config) Table {
	t := Table{
		ID:     "Fig 11",
		Title:  "Journal expansion: IOPS before/after SSD journal overflow",
		Header: []string{"window", "IOPS", "ssd-appends", "hdd-appends"},
	}
	// A cluster whose SSD journal region is tiny: shrink the SSDs so the
	// 1/10 quota is small, and disable replay catch-up pressure by using
	// a busy HDD? No — the paper lets replay run; overflow happens when
	// the append rate beats replay. A small quota forces it quickly.
	ssd := benchSSD()
	ssd.Capacity = 2 * util.GiB // journal quota ≈ 200 MB split over HDDs
	c, err := core.New(core.Options{
		Machines:        3,
		SSDsPerMachine:  1,
		HDDsPerMachine:  1,
		Mode:            core.Hybrid,
		Clock:           clock.Realtime,
		SSDModel:        ssd,
		HDDModel:        benchHDD(),
		HDDJournal:      true,
		NetLatency:      netLatency,
		JournalFraction: 0.004, // ≈8 MB of SSD journal: overflows in seconds
		ReplTimeout:     5 * time.Second,
		CallTimeout:     20 * time.Second,
	})
	if err != nil {
		t.Notes = append(t.Notes, "build failed: "+err.Error())
		return t
	}
	defer c.Close()
	cl := c.NewClient("bench-client")
	defer cl.Close()
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "bench", Size: util.ChunkSize}); err != nil {
		t.Notes = append(t.Notes, "vdisk failed: "+err.Error())
		return t
	}
	vd, err := cl.Open("bench")
	if err != nil {
		t.Notes = append(t.Notes, "open failed: "+err.Error())
		return t
	}
	defer vd.Close()

	windows := 10
	opsPerWindow := 100000 // bounded by window time
	journalAppends := func() (ssdA, hddA int64) {
		for _, m := range c.Machines {
			for _, js := range m.JournalSets() {
				st := js.Stats()
				for _, j := range st.Journals {
					if len(j.Name) >= 4 && j.Name[len(j.Name)-4:] == "jhdd" {
						hddA += j.Appends
					} else {
						ssdA += j.Appends
					}
				}
			}
		}
		return ssdA, hddA
	}
	var prevSSD, prevHDD int64
	for w := 0; w < windows; w++ {
		res := workload.Run(clock.Realtime, vd, workload.Spec{
			Pattern: workload.RandWrite, BlockSize: 4 * util.KiB,
			QueueDepth: 16, Ops: opsPerWindow,
			WorkingSet: util.ChunkSize, Seed: cfg.Seed + uint64(w),
			MaxTime: cfg.cellTime() / 4,
		})
		ssdA, hddA := journalAppends()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			util.FormatCount(res.IOPS()),
			fmt.Sprintf("%d", ssdA-prevSSD),
			fmt.Sprintf("%d", hddA-prevHDD),
		})
		prevSSD, prevHDD = ssdA, hddA
	}
	t.Notes = append(t.Notes,
		"overflowed backup load redirects from SSD journals to HDD journals (§3.2)")
	return t
}

// Fig12 regenerates failure recovery (§6.2, Fig 12): fill a chunk, crash
// its primary SSD server, and sample cluster-wide recovery traffic; the
// rate is bounded by the replacement machine's NIC.
func Fig12(cfg Config) Table {
	t := Table{
		ID:     "Fig 12",
		Title:  "Failure recovery traffic over time (MB/s)",
		Header: []string{"t", "MB/s"},
	}
	c, err := core.New(core.Options{
		Machines:       4,
		SSDsPerMachine: 2,
		HDDsPerMachine: 4,
		Mode:           core.Hybrid,
		Clock:          clock.Realtime,
		SSDModel:       benchSSD(),
		HDDModel:       benchHDD(),
		HDDJournal:     true,
		NetLatency:     netLatency,
		NICRate:        50e6, // the paper's ≈500 MB/s bound at 1/10 time scale
		ReplTimeout:    5 * time.Second,
		CallTimeout:    20 * time.Second,
	})
	if err != nil {
		t.Notes = append(t.Notes, "build failed: "+err.Error())
		return t
	}
	defer c.Close()
	cl := c.NewClient("bench-client")
	defer cl.Close()

	// Enough chunks that the failed SSD is primary for several: their
	// parallel recovery is what drives aggregate traffic to the NIC bound
	// (the paper recovers a whole failed SSD's chunks, §6.2).
	nChunks := 32
	if cfg.Quick {
		nChunks = 12
	}
	size := int64(nChunks) * util.ChunkSize
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "bench", Size: size}); err != nil {
		t.Notes = append(t.Notes, "vdisk failed: "+err.Error())
		return t
	}
	vd, err := cl.Open("bench")
	if err != nil {
		t.Notes = append(t.Notes, "open failed: "+err.Error())
		return t
	}
	defer vd.Close()

	// Seed a little data through both paths (journal appends and bypass)
	// so recovery exercises them; a whole-chunk clone moves the full
	// 64 MB regardless of how much was written.
	workload.Run(clock.Realtime, vd, workload.Spec{
		Pattern: workload.SeqWrite, BlockSize: util.MiB, QueueDepth: 8,
		Ops: 16, Seed: cfg.Seed + 41,
	})
	workload.Run(clock.Realtime, vd, workload.Spec{
		Pattern: workload.RandWrite, BlockSize: 4 * util.KiB, QueueDepth: 16,
		Ops: 256, Seed: cfg.Seed + 42, MaxTime: 2 * time.Second,
	})

	// Crash the primary of chunk 0 (an SSD server possibly holding many
	// of the vdisk's primaries) and drive recovery for every chunk it
	// served.
	primary, err := cluster.PrimaryAddr(cl, "bench", 0)
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	c.CrashServer(primary)

	// Recover every chunk the dead server held, in parallel — recovery
	// pulls from different source disks concurrently, so the aggregate is
	// bounded by the replacement machines' NICs, not a single disk.
	mon := cluster.StartTrafficMonitor(c, 250*time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < nChunks; i++ {
		cm, err := cluster.ChunkPlacement(cl, "bench", i)
		if err != nil {
			continue
		}
		for _, r := range cm.Replicas {
			if r.Addr == primary {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, _ = c.Master.RecoverChunk(vd.ID(), uint32(i), primary)
				}(i)
				break
			}
		}
	}
	wg.Wait()
	samples := mon.Stop()
	var peak float64
	for _, s := range samples {
		if s.Bytes == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1fs", s.T.Seconds()), f1(s.Rate / 1e6)})
		if s.Rate > peak {
			peak = s.Rate
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"peak %.0f MB/s against a 50 MB/s NIC bound — ≈500 MB/s at paper scale (×10 slow motion)",
		peak/1e6))
	t.Notes = append(t.Notes,
		"recovery reads resolve journal extents and HDD data transparently (§6.2)")
	return t
}
