package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"ursa/internal/chunkserver"
	"ursa/internal/client"
	"ursa/internal/clock"
	"ursa/internal/core"
	"ursa/internal/master"
	"ursa/internal/objstore"
	"ursa/internal/simdisk"
	"ursa/internal/util"
)

// coldtierBenchJSON is FigColdtier's machine-readable artifact.
const coldtierBenchJSON = "BENCH_coldtier.json"

type coldtierBenchDoc struct {
	Bench string `json:"bench"`
	Quick bool   `json:"quick"`

	// Thin clone vs full data copy of the golden image.
	ImageBytes   int64   `json:"image_bytes"`
	DataBytes    int64   `json:"data_bytes"`
	FullCopyMs   float64 `json:"full_copy_ms"`
	ThinCloneMs  float64 `json:"thin_clone_ms"`
	Speedup      float64 `json:"clone_speedup"`
	SpeedupFloor float64 `json:"clone_speedup_floor"`

	// Demand-fetch read latency, cold (first touch) vs warm (materialized).
	ColdP50Ms   float64 `json:"cold_read_p50_ms"`
	ColdP99Ms   float64 `json:"cold_read_p99_ms"`
	WarmP50Ms   float64 `json:"warm_read_p50_ms"`
	WarmP99Ms   float64 `json:"warm_read_p99_ms"`
	ColdFetches int64   `json:"cold_fetches"`
	WarmHits    int64   `json:"cold_fetch_hit_warm"`

	// Snapshot churn: overwrite + snapshot + delete-previous rounds, then
	// one GC pass over the store.
	ChurnRounds     int     `json:"churn_rounds"`
	ChurnUsedBytes  int64   `json:"churn_used_bytes"`
	ChurnDeadBytes  int64   `json:"churn_dead_bytes"`
	ReclaimedBytes  int64   `json:"gc_reclaimed_bytes"`
	ReclaimFraction float64 `json:"gc_reclaim_fraction"`
	ReclaimFloor    float64 `json:"gc_reclaim_floor"`
	GCSegments      int64   `json:"gc_segments_reclaimed"`

	// Cold reads under object-store stall + transient GET rot.
	ChaosReads      int   `json:"chaos_reads"`
	ChaosCorrupt    int   `json:"chaos_corrupt_payloads"`
	ChaosReadErrors int   `json:"chaos_read_errors"`
	ObjGets         int64 `json:"objstore_gets"`
}

// coldtierObjModel is the bench's object-store shape: a few milliseconds
// to first byte and a wide pipe, so cold fetches are visibly slower than
// local SSD reads without dominating the run.
func coldtierObjModel() objstore.Model {
	return objstore.Model{
		PutLatency:    4 * time.Millisecond,
		GetLatency:    4 * time.Millisecond,
		DeleteLatency: time.Millisecond,
		Bandwidth:     2e9,
		Parallelism:   64,
	}
}

// FigColdtier measures the cold tier end to end: provisioning a thin clone
// from a golden-image snapshot vs copying the image in full, cold
// (demand-fetch) vs warm read latency on the clone, GC reclaim under
// snapshot churn, and cold-read integrity while the object store stalls
// and rots GET payloads. Results go to BENCH_coldtier.json.
func FigColdtier(cfg Config) Table {
	t := Table{
		ID:     "Fig C",
		Title:  "Cold tier: thin clones, demand-fetch latency, GC reclaim, stall chaos",
		Header: []string{"metric", "value"},
	}
	// Fast device models (not the ×10 slow-motion figures): this bench
	// gauges the cold tier's protocol costs and its ratios against a
	// local-disk baseline, not paper-scale absolute IOPS.
	c, err := core.New(core.Options{
		Machines:       4,
		SSDsPerMachine: 1,
		HDDsPerMachine: 2,
		Mode:           core.Hybrid,
		Clock:          clock.Realtime,
		SSDModel: simdisk.SSDModel{
			Capacity: 8 * util.GiB, Parallelism: 32,
			ReadLatency: 20 * time.Microsecond, WriteLatency: 40 * time.Microsecond,
			ReadBandwidth: 3e9, WriteBandwidth: 2e9,
		},
		HDDModel: simdisk.HDDModel{
			Capacity: 16 * util.GiB, SeekMax: 2 * time.Millisecond,
			SeekSettle: 100 * time.Microsecond, RPM: 72000,
			Bandwidth: 800e6, TrackSkip: 512 * util.KiB,
		},
		HDDJournal:    true,
		NetLatency:    50 * time.Microsecond,
		ReplTimeout:   2 * time.Second,
		CallTimeout:   10 * time.Second,
		ObjstoreModel: func() *objstore.Model { m := coldtierObjModel(); return &m }(),
	})
	if err != nil {
		t.Notes = append(t.Notes, "build failed: "+err.Error())
		return t
	}
	defer c.Close()
	cl := c.NewClient("cold-bench")
	defer cl.Close()
	reg := c.Metrics()

	nChunks := 16 // 1 GiB golden image
	if cfg.Quick {
		nChunks = 4
	}
	imageBytes := int64(nChunks) * util.ChunkSize
	dataBytes := imageBytes / 4 // written region; the rest is thin zeros
	doc := coldtierBenchDoc{
		Bench: "coldtier", Quick: cfg.Quick,
		ImageBytes: imageBytes, DataBytes: dataBytes,
		SpeedupFloor: 100, ReclaimFloor: 0.8,
	}

	fail := func(what string, err error) Table {
		t.Notes = append(t.Notes, what+": "+err.Error())
		return t
	}

	// --- Golden image -----------------------------------------------------
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "golden", Size: imageBytes}); err != nil {
		return fail("create golden", err)
	}
	src, err := cl.Open("golden")
	if err != nil {
		return fail("open golden", err)
	}
	defer src.Close()
	golden := make([]byte, dataBytes)
	util.NewRand(cfg.Seed + 1).Fill(golden)
	for off := int64(0); off < dataBytes; off += util.MiB {
		if err := src.WriteAt(golden[off:off+util.MiB], off); err != nil {
			return fail("fill golden", err)
		}
	}
	if err := cl.SnapshotVDisk("golden", "gold-snap"); err != nil {
		return fail("snapshot", err)
	}

	// --- Leg 1: thin clone vs full data copy ------------------------------
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "fullcopy", Size: imageBytes}); err != nil {
		return fail("create copy target", err)
	}
	dst, err := cl.Open("fullcopy")
	if err != nil {
		return fail("open copy target", err)
	}
	t0 := time.Now()
	err = client.Snapshot(src, dst)
	doc.FullCopyMs = float64(time.Since(t0)) / float64(time.Millisecond)
	dst.Close()
	if err != nil {
		return fail("full copy", err)
	}

	t0 = time.Now()
	if _, err := cl.CloneFromSnapshot(master.CloneReq{Snapshot: "gold-snap", Name: "thin"}); err != nil {
		return fail("thin clone", err)
	}
	doc.ThinCloneMs = float64(time.Since(t0)) / float64(time.Millisecond)
	if doc.ThinCloneMs > 0 {
		doc.Speedup = doc.FullCopyMs / doc.ThinCloneMs
	}

	// --- Leg 2: cold vs warm reads on the clone ---------------------------
	thin, err := cl.Open("thin")
	if err != nil {
		return fail("open thin clone", err)
	}
	defer thin.Close()
	readPass := func(vd client.Device) ([]time.Duration, error) {
		var lats []time.Duration
		buf := make([]byte, 64*util.KiB)
		r := util.NewRand(cfg.Seed + 2)
		for i := 0; i < cfg.ops(512); i++ {
			off := util.AlignDown(r.Int63n(dataBytes-int64(len(buf))), util.SectorSize)
			s := time.Now()
			if err := vd.ReadAt(buf, off); err != nil {
				return nil, err
			}
			lats = append(lats, time.Since(s))
		}
		return lats, nil
	}
	cold, err := readPass(thin)
	if err != nil {
		return fail("cold read pass", err)
	}
	warm, err := readPass(thin)
	if err != nil {
		return fail("warm read pass", err)
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	doc.ColdP50Ms = ms(util.ExactQuantile(cold, 0.50))
	doc.ColdP99Ms = ms(util.ExactQuantile(cold, 0.99))
	doc.WarmP50Ms = ms(util.ExactQuantile(warm, 0.50))
	doc.WarmP99Ms = ms(util.ExactQuantile(warm, 0.99))
	doc.ColdFetches = reg.Counter(chunkserver.MetricColdFetches).Load()

	// Warm tier: a cached clone absorbs repeat reads of cold ranges.
	if _, err := cl.CloneFromSnapshot(master.CloneReq{Snapshot: "gold-snap", Name: "cached"}); err != nil {
		return fail("cached clone", err)
	}
	cvd, err := cl.Open("cached")
	if err != nil {
		return fail("open cached clone", err)
	}
	cached := client.WithCache(cvd, dataBytes)
	buf := make([]byte, 64*util.KiB)
	for pass := 0; pass < 2; pass++ {
		for off := int64(0); off < 8*util.MiB; off += int64(len(buf)) {
			if err := cached.ReadAt(buf, off); err != nil {
				cvd.Close()
				return fail("cached read", err)
			}
		}
	}
	cvd.Close()
	doc.WarmHits = reg.Counter(client.MetricColdWarmHits).Load()

	// --- Leg 3: snapshot churn + GC reclaim -------------------------------
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "churn", Size: util.ChunkSize}); err != nil {
		return fail("create churn vdisk", err)
	}
	churn, err := cl.Open("churn")
	if err != nil {
		return fail("open churn vdisk", err)
	}
	defer churn.Close()
	rounds := 5
	if cfg.Quick {
		rounds = 3
	}
	churnData := make([]byte, 8*util.MiB)
	for i := 0; i < rounds; i++ {
		util.NewRand(cfg.Seed + 10 + uint64(i)).Fill(churnData)
		for off := int64(0); off < int64(len(churnData)); off += util.MiB {
			if err := churn.WriteAt(churnData[off:off+util.MiB], off); err != nil {
				return fail("churn write", err)
			}
		}
		name := fmt.Sprintf("churn-%d", i)
		if err := cl.SnapshotVDisk("churn", name); err != nil {
			return fail("churn snapshot", err)
		}
		if i > 0 {
			if err := cl.DeleteSnapshot(fmt.Sprintf("churn-%d", i-1)); err != nil {
				return fail("churn delete", err)
			}
		}
	}
	doc.ChurnRounds = rounds
	used0 := c.Objstore.UsedBytes()
	pm := c.PrimaryMaster()
	if pm == nil {
		t.Notes = append(t.Notes, "no primary master for gc")
		return t
	}
	if _, _, err := pm.RunColdGC(); err != nil {
		return fail("gc pass", err)
	}
	used1 := c.Objstore.UsedBytes()
	doc.ChurnUsedBytes = used0
	doc.ReclaimedBytes = used0 - used1
	// Dead bytes = everything the deleted churn snapshots flushed: rounds-1
	// full overwrites of the same 8 MiB region.
	doc.ChurnDeadBytes = int64(rounds-1) * int64(len(churnData))
	if doc.ChurnDeadBytes > 0 {
		doc.ReclaimFraction = float64(doc.ReclaimedBytes) / float64(doc.ChurnDeadBytes)
	}
	doc.GCSegments = reg.Counter(master.MetricGCSegmentsReclaimed).Load()

	// --- Leg 4: cold reads under objstore stall + GET rot -----------------
	if _, err := cl.CloneFromSnapshot(master.CloneReq{Snapshot: "gold-snap", Name: "chaos"}); err != nil {
		return fail("chaos clone", err)
	}
	chaos, err := cl.Open("chaos")
	if err != nil {
		return fail("open chaos clone", err)
	}
	defer chaos.Close()
	c.Objstore.Stall(2 * time.Millisecond)
	c.Objstore.CorruptReads(32)
	r := util.NewRand(cfg.Seed + 3)
	probe := make([]byte, 64*util.KiB)
	for i := 0; i < cfg.ops(256); i++ {
		off := util.AlignDown(r.Int63n(dataBytes-int64(len(probe))), util.SectorSize)
		doc.ChaosReads++
		if err := chaos.ReadAt(probe, off); err != nil {
			doc.ChaosReadErrors++
			continue
		}
		if !bytes.Equal(probe, golden[off:off+int64(len(probe))]) {
			doc.ChaosCorrupt++
		}
	}
	c.Objstore.Heal()
	doc.ObjGets = reg.Counter(objstore.MetricObjGets).Load()

	// --- Report -----------------------------------------------------------
	t.Rows = append(t.Rows,
		[]string{"golden image", util.FormatBytes(doc.ImageBytes) + " (" + util.FormatBytes(doc.DataBytes) + " data)"},
		[]string{"full data copy", f0(doc.FullCopyMs) + " ms"},
		[]string{"thin clone", f2(doc.ThinCloneMs) + " ms"},
		[]string{"clone speedup", f0(doc.Speedup) + "x (floor " + f0(doc.SpeedupFloor) + "x)"},
		[]string{"cold read p50/p99", f2(doc.ColdP50Ms) + " / " + f2(doc.ColdP99Ms) + " ms"},
		[]string{"warm read p50/p99", f2(doc.WarmP50Ms) + " / " + f2(doc.WarmP99Ms) + " ms"},
		[]string{"demand fetches", f0(float64(doc.ColdFetches))},
		[]string{"warm-tier hits on cold ranges", f0(float64(doc.WarmHits))},
		[]string{"churn rounds", f0(float64(doc.ChurnRounds))},
		[]string{"gc reclaimed", util.FormatBytes(doc.ReclaimedBytes) + " of " + util.FormatBytes(doc.ChurnDeadBytes) + " dead"},
		[]string{"gc reclaim fraction", f2(doc.ReclaimFraction) + " (floor " + f2(doc.ReclaimFloor) + ")"},
		[]string{"chaos reads", f0(float64(doc.ChaosReads))},
		[]string{"chaos corrupt payloads", f0(float64(doc.ChaosCorrupt))},
		[]string{"chaos read errors", f0(float64(doc.ChaosReadErrors))},
	)
	if doc.Speedup < doc.SpeedupFloor {
		t.Notes = append(t.Notes, "ACCEPTANCE FAIL: thin clone under "+f0(doc.SpeedupFloor)+"x faster than full copy")
	}
	if doc.ReclaimFraction < doc.ReclaimFloor {
		t.Notes = append(t.Notes, "ACCEPTANCE FAIL: gc reclaimed under "+f2(doc.ReclaimFloor)+" of dead extent bytes")
	}
	if doc.ChaosCorrupt > 0 {
		t.Notes = append(t.Notes, "ACCEPTANCE FAIL: corrupt payloads served under objstore chaos")
	}
	if doc.ColdFetches == 0 {
		t.Notes = append(t.Notes, "ACCEPTANCE FAIL: clone reads never demand-fetched")
	}
	t.Notes = append(t.Notes,
		"clone = O(metadata) extent-table copy; bytes materialize on demand, CoW on first write;",
		"churn dead bytes = the deleted snapshots' overwritten flushes; GC deletes dead segments",
		"and compacts mostly-dead ones; chaos leg arms a stall plus 32 rotted GETs — the",
		"per-extent CRCs force refetches, so corrupt payloads must be zero.")

	if buf, err := json.MarshalIndent(&doc, "", "  "); err == nil {
		if werr := os.WriteFile(artifactPath(cfg, coldtierBenchJSON), append(buf, '\n'), 0o644); werr != nil {
			t.Notes = append(t.Notes, "write "+coldtierBenchJSON+": "+werr.Error())
		}
	}
	return t
}
