package bench

import (
	"fmt"

	"ursa/internal/cachesim"
	"ursa/internal/reliability"
	"ursa/internal/trace"
	"ursa/internal/util"
)

// Fig01 regenerates the CDF of I/O block sizes (§2, Fig 1) from the
// calibrated synthetic trace mix.
func Fig01(cfg Config) Table {
	p := trace.Profile{Name: "all-volumes", ReadFraction: 0.45, VolumeSize: 16 * util.GiB}
	recs := p.Generate(cfg.Seed+1, cfg.ops(200000))
	sizes, cum := trace.SizeCDFOf(recs)
	t := Table{
		ID:     "Fig 1",
		Title:  "CDF of I/O block sizes",
		Header: []string{"size", "cumulative"},
	}
	var le8k, le64k float64
	for i, s := range sizes {
		t.Rows = append(t.Rows, []string{util.FormatBytes(int64(s)),
			fmt.Sprintf("%.1f%%", 100*cum[i])})
		if s <= 8*util.KiB {
			le8k = cum[i]
		}
		if s <= 64*util.KiB {
			le64k = cum[i]
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("≤8KB: %.1f%% (paper: >70%%); ≤64KB: %.1f%% (paper: ≈100%%)",
			100*le8k, 100*le64k))
	return t
}

// Fig02 regenerates the cache read-hit analysis (§2, Fig 2): replay every
// catalog volume against an unlimited write-back cache and list the
// low-hit traces.
func Fig02(cfg Config) Table {
	t := Table{
		ID:     "Fig 2",
		Title:  "Cache read-hit ratio per trace (unlimited write-back cache)",
		Header: []string{"trace", "hit-ratio", "below-75%"},
	}
	low := 0
	n := cfg.ops(30000)
	for i, e := range trace.Catalog() {
		recs := e.Profile.Generate(cfg.Seed+uint64(100+i), n)
		res := cachesim.Replay(e.Name, recs)
		flag := ""
		if res.HitRatio < cachesim.LowHitThreshold {
			flag = "LOW"
			low++
		}
		t.Rows = append(t.Rows, []string{e.Name,
			fmt.Sprintf("%.1f%%", 100*res.HitRatio), flag})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d of 36 traces below 75%% read hit (paper: 17)", low))
	return t
}

// Tab01 regenerates the deployment failure ratios (Table 1) via the fleet
// Monte-Carlo.
func Tab01(cfg Config) Table {
	years := 25
	machines := 2000
	if cfg.Quick {
		machines = 400
	}
	res := reliability.Simulate(reliability.DefaultFleet(), machines, years, cfg.Seed+3)
	t := Table{
		ID:     "Table 1",
		Title:  "Failure ratios by component (fleet Monte-Carlo)",
		Header: []string{"component", "measured", "paper"},
	}
	for _, name := range []string{"HDD", "SSD", "RAM", "Power", "CPU", "Other"} {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f%%", res.Ratio(name)),
			fmt.Sprintf("%.1f%%", reliability.PaperRatios[name]),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d failures over %d machine-years",
		res.Total, machines*years))
	return t
}
