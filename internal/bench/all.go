package bench

// Entry pairs a figure id with its generator for enumeration by
// cmd/ursa-bench.
type Entry struct {
	ID  string
	Run func(Config) Table
}

// All lists every regenerable table and figure in paper order.
func All() []Entry {
	return []Entry{
		{"1", Fig01},
		{"2", Fig02},
		{"t1", Tab01},
		{"6a", Fig06a},
		{"6b", Fig06b},
		{"6c", Fig06c},
		{"7", Fig07},
		{"8", Fig08},
		{"9", Fig09},
		{"10", Fig10},
		{"11", Fig11},
		{"12", Fig12},
		{"13a", Fig13a},
		{"13b", Fig13b},
		{"13c", Fig13c},
		{"14", Fig14},
		{"15", Fig15},
		{"16", Fig16},
		{"journal", FigJournal},
		{"ceiling", FigCeiling},
		{"hotchunk", FigHotchunk},
		{"recovery", FigRecovery},
		{"scrub", FigScrub},
		{"ec", FigEC},
		{"failover", FigFailover},
		{"coldtier", FigColdtier},
		{"a1", AblJournalMedia},
		{"a2", AblClientDirected},
		{"a3", AblIndexLevels},
		{"a4", AblBypassThreshold},
	}
}
