package bench

import (
	"encoding/json"
	"os"
	"sync"
	"time"

	"ursa/internal/clock"
	"ursa/internal/core"
	"ursa/internal/master"
	"ursa/internal/util"
	"ursa/internal/workload"
)

// failoverBenchJSON is FigFailover's machine-readable artifact.
const failoverBenchJSON = "BENCH_failover.json"

type failoverBenchDoc struct {
	Bench string `json:"bench"`
	Quick bool   `json:"quick"`
	// The metadata blackout: wall time from the primary master's death to
	// the first metadata operation completed against the promoted standby.
	BlackoutMs   float64 `json:"blackout_ms"`
	PrimacyTTLMs float64 `json:"primacy_ttl_ms"`
	// Ratio = blackout / primacy TTL; the acceptance bar is <= 2.0 (the
	// blackout is bounded by the lease the standby must wait out plus its
	// probe round, not by anything workload-sized).
	Ratio        float64 `json:"ratio"`
	RatioCeiling float64 `json:"ratio_ceiling"`
	// Metadata latency against the healthy primary, for contrast.
	HealthyMetaMs float64 `json:"healthy_meta_ms"`
	// Data-path traffic riding through the blackout. Errors must be 0:
	// established vdisks speak directly to their chunkservers and never
	// notice the metadata service failing over.
	DataOps      int64   `json:"data_ops"`
	DataErrors   int64   `json:"data_errors"`
	DataIOPS     float64 `json:"data_iops"`
	Promotions   int64   `json:"master_promotions"`
	PromotedAddr string  `json:"promoted_addr"`
	Epoch        uint64  `json:"promoted_epoch"`
}

// FigFailover measures the metadata blackout window of a fenced master
// failover: a three-master cluster runs a data workload while the primary
// master is killed mid-run. A prober times the gap from the kill to the
// first metadata op served by the promoted standby; the data stream must
// ride through with zero failed I/Os. Results go to BENCH_failover.json.
func FigFailover(cfg Config) Table {
	t := Table{
		ID:     "Fig F",
		Title:  "Master failover: metadata blackout vs primacy TTL, data path uninterrupted",
		Header: []string{"metric", "value"},
	}
	const primacyTTL = 250 * time.Millisecond
	c, err := core.New(core.Options{
		Machines:         4,
		SSDsPerMachine:   1,
		HDDsPerMachine:   2,
		Mode:             core.Hybrid,
		Clock:            clock.Realtime,
		SSDModel:         benchSSD(),
		HDDModel:         benchHDD(),
		HDDJournal:       true,
		NetLatency:       netLatency,
		ReplTimeout:      5 * time.Second,
		CallTimeout:      5 * time.Second,
		Masters:          3,
		MasterPrimacyTTL: primacyTTL,
	})
	if err != nil {
		t.Notes = append(t.Notes, "build failed: "+err.Error())
		return t
	}
	defer c.Close()
	cl := c.NewClient("bench-client")
	defer cl.Close()

	nChunks := 8
	if cfg.Quick {
		nChunks = 4
	}
	size := int64(nChunks) * util.ChunkSize
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "bench", Size: size}); err != nil {
		t.Notes = append(t.Notes, "vdisk failed: "+err.Error())
		return t
	}
	vd, err := cl.Open("bench")
	if err != nil {
		t.Notes = append(t.Notes, "open failed: "+err.Error())
		return t
	}
	defer vd.Close()
	reg := c.Metrics()
	doc := failoverBenchDoc{
		Bench:        "failover",
		Quick:        cfg.Quick,
		PrimacyTTLMs: float64(primacyTTL) / float64(time.Millisecond),
		RatioCeiling: 2.0,
	}

	// Healthy metadata baseline.
	h0 := time.Now()
	if _, err := cl.OpenMeta("bench"); err != nil {
		t.Notes = append(t.Notes, "healthy metadata probe failed: "+err.Error())
		return t
	}
	doc.HealthyMetaMs = float64(time.Since(h0)) / float64(time.Millisecond)

	// The data stream the failover must not touch: random 4 KiB writes for
	// the whole measurement window, concurrent with the kill.
	var res workload.Result
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res = workload.Run(clock.Realtime, vd, workload.Spec{
			Pattern:    workload.RandWrite,
			BlockSize:  4 * util.KiB,
			QueueDepth: 8,
			Ops:        cfg.ops(3000),
			Seed:       cfg.Seed + 41,
			MaxTime:    cfg.cellTime(),
		})
	}()

	// Let the workload settle, then kill the bootstrap primary and time the
	// blackout: each probe is one client metadata call, which internally
	// hunts across the endpoint list until the promoted standby answers.
	time.Sleep(cfg.cellTime() / 4)
	kill := time.Now()
	c.KillMaster(0)
	for {
		if _, err := cl.OpenMeta("bench"); err == nil {
			break
		}
		if time.Since(kill) > 30*time.Second {
			t.Notes = append(t.Notes, "ACCEPTANCE FAIL: no metadata service within 30s of the kill")
			wg.Wait()
			return t
		}
	}
	doc.BlackoutMs = float64(time.Since(kill)) / float64(time.Millisecond)
	doc.Ratio = doc.BlackoutMs / doc.PrimacyTTLMs
	wg.Wait()

	doc.DataOps = res.Ops
	doc.DataErrors = res.Errors
	doc.DataIOPS = res.IOPS()
	doc.Promotions = reg.Counter(master.MetricMasterPromotions).Load()
	if p := c.PrimaryMaster(); p != nil {
		doc.PromotedAddr = p.Addr()
		doc.Epoch = p.Epoch()
	}

	t.Rows = append(t.Rows,
		[]string{"healthy metadata op", f1(doc.HealthyMetaMs) + " ms"},
		[]string{"primacy TTL", f0(doc.PrimacyTTLMs) + " ms"},
		[]string{"metadata blackout", f1(doc.BlackoutMs) + " ms"},
		[]string{"blackout / TTL", f2(doc.Ratio) + " (ceiling " + f1(doc.RatioCeiling) + ")"},
		[]string{"data ops through blackout", f0(float64(doc.DataOps))},
		[]string{"data errors", f0(float64(doc.DataErrors))},
		[]string{"data IOPS", f0(doc.DataIOPS)},
		[]string{"promotions", f0(float64(doc.Promotions))},
		[]string{"promoted master", doc.PromotedAddr},
	)
	if doc.DataErrors > 0 {
		t.Notes = append(t.Notes, "ACCEPTANCE FAIL: data path saw errors during the master blackout")
	}
	if doc.Ratio > doc.RatioCeiling {
		t.Notes = append(t.Notes, "ACCEPTANCE FAIL: blackout exceeded "+f1(doc.RatioCeiling)+"x the primacy TTL")
	}
	t.Notes = append(t.Notes,
		"blackout = primary-kill to first metadata op served by the promoted standby;",
		"the rank-1 standby waits out one primacy TTL of silence, probes its peers, bumps",
		"the epoch, and fences the deposed master at every chunkserver before serving.")

	if buf, err := json.MarshalIndent(&doc, "", "  "); err == nil {
		if werr := os.WriteFile(artifactPath(cfg, failoverBenchJSON), append(buf, '\n'), 0o644); werr != nil {
			t.Notes = append(t.Notes, "write "+failoverBenchJSON+": "+werr.Error())
		}
	}
	return t
}
