package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"ursa/internal/blockstore"
	"ursa/internal/bufpool"
	"ursa/internal/clock"
	"ursa/internal/core"
	"ursa/internal/jindex"
	"ursa/internal/master"
	"ursa/internal/opctx"
	"ursa/internal/proto"
	"ursa/internal/simdisk"
	"ursa/internal/transport"
	"ursa/internal/util"
	"ursa/internal/workload"
)

// ceilingBenchJSON is the machine-readable artifact FigCeiling emits, the
// per-PR IOPS-ceiling regression record.
const ceilingBenchJSON = "BENCH_ceiling.json"

// ceilingSSD / ceilingHDD are zero-cost device models: every fixed latency
// is zero and bandwidth is unlimited, so the simulated devices complete
// instantly and the measured IOPS ceiling is pure software cost —
// allocation and GC pressure, checksum passes, copies, and lock
// contention. Exactly the costs this PR's hot-path work removes.
func ceilingSSD() simdisk.SSDModel {
	return simdisk.SSDModel{Capacity: 16 * util.GiB, Parallelism: 64}
}

func ceilingHDD() simdisk.HDDModel {
	return simdisk.HDDModel{Capacity: 32 * util.GiB, TrackSkip: 512 * util.KiB}
}

// ceilingVolume keeps setup cheap while spreading I/O over many chunks.
const ceilingVolume = 1 * util.GiB

// ceilingCell is one (mode, op, queue depth) end-to-end measurement.
type ceilingCell struct {
	Mode string  `json:"mode"` // "baseline" or "pooled"
	Op   string  `json:"op"`   // "read" or "write"
	QD   int     `json:"qd"`
	IOPS float64 `json:"iops"` // wall-clock ops/s (noisy on shared hosts)
	// IOPSCPU is ops per process-CPU-second (getrusage user+sys delta).
	// With zero-cost devices the stack is pure software, so CPU-normalized
	// IOPS is the ceiling metric that survives host contention: wall-clock
	// stalls inflate elapsed time but not CPU charged to the process.
	IOPSCPU   float64 `json:"iops_cpu"`
	MeanLatUs float64 `json:"mean_lat_us"`
	// AllocsPerOp / BytesPerOp are process-wide heap mallocs and bytes per
	// completed I/O over the run (runtime.MemStats deltas): the end-to-end
	// allocation bill of one 4 KiB request across client, transport,
	// servers, and journals.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// ceilingMicro is one steady-state hot-path micro-benchmark result.
type ceilingMicro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type ceilingDoc struct {
	Bench    string         `json:"bench"`
	Quick    bool           `json:"quick"`
	Baseline string         `json:"baseline"`
	Cells    []ceilingCell  `json:"cells"`
	Micro    []ceilingMicro `json:"micro"`
	// SpeedupByOpQD maps "op/qd" to pooled/baseline IOPS ratio.
	SpeedupByOpQD map[string]float64 `json:"speedup_by_op_qd"`
	// PoolLeases / PoolInUseAfter snapshot the buffer pool after the pooled
	// cells quiesce: InUseAfter must be zero (no leaked leases).
	PoolLeases     int64 `json:"pool_leases"`
	PoolInUseAfter int64 `json:"pool_in_use_after"`
}

// setCeilingMode flips the three hot-path knobs together. Baseline is the
// pre-PR software stack: payloads heap-allocated per message, two-pass
// checksums behind one global lock, and journal flushes coalescing their
// batch into a fresh contiguous copy.
func setCeilingMode(pooled bool) {
	bufpool.SetEnabled(pooled)
	blockstore.SetLegacyChecksums(!pooled)
}

// runCeilingCell measures 4 KiB random IOPS end-to-end on a hybrid URSA
// cluster with zero-cost devices and network.
func runCeilingCell(cfg Config, pooled, write bool, qd int) ceilingCell {
	setCeilingMode(pooled)
	defer setCeilingMode(true)

	c, err := core.New(core.Options{
		Machines:       3,
		SSDsPerMachine: 2,
		HDDsPerMachine: 4,
		Mode:           core.Hybrid,
		Clock:          clock.Realtime,
		SSDModel:       ceilingSSD(),
		HDDModel:       ceilingHDD(),
		// Small SSD journals (16 MiB per backup HDD) wrap during the warm
		// phase, so the measured window never touches cold journal pages:
		// the lazily allocated 64 KiB simdisk pages would otherwise dominate
		// the per-op allocation bill in BOTH modes and bury the hot-path
		// delta this figure isolates.
		JournalFraction: 0.002,
		ReplTimeout:     5 * time.Second,
		CallTimeout:     20 * time.Second,
		JournalCoalesce: !pooled,
	})
	if err != nil {
		return ceilingCell{}
	}
	defer c.Close()
	cl := c.NewClient("ceiling-client")
	defer cl.Close()
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{Name: "ceiling", Size: ceilingVolume}); err != nil {
		return ceilingCell{}
	}
	vd, err := cl.Open("ceiling")
	if err != nil {
		return ceilingCell{}
	}
	defer vd.Close()

	cell := ceilingCell{QD: qd, Mode: "baseline", Op: "read"}
	if pooled {
		cell.Mode = "pooled"
	}
	pattern := workload.RandRead
	if write {
		cell.Op = "write"
		pattern = workload.RandWrite
	}
	spec := workload.Spec{
		Pattern: pattern, BlockSize: 4 * util.KiB, QueueDepth: qd,
		Ops: 1 << 30, WorkingSet: ceilingVolume / 2,
		Seed: cfg.Seed + uint64(qd)*131, MaxTime: cfg.cellTime() / 2,
	}
	// Warm to steady state outside the measured window: Fill pre-writes the
	// whole working set (allocating every lazy data page on the simulated
	// devices and stamping checksums), then a burst of random 4 KiB writes
	// wraps the small journal regions so their pages are warm too. Without
	// this, cold 64 KiB simdisk pages dominate the allocation bill.
	warm := spec
	warm.Pattern = workload.RandWrite
	warm.Fill = true
	warm.MaxTime = 2 * time.Second
	workload.Run(clock.Realtime, vd, warm)

	// Several measurement passes, keeping the pass with the best
	// CPU-normalized IOPS. The container shares its host: a neighbor's
	// cache/TLB pollution inflates our measured CPU-seconds unpredictably
	// mid-pass, and best-of-N converges on the least-contended sample for
	// baseline and pooled alike — the software ceiling this figure is after.
	passes := 3
	if cfg.Quick {
		passes = 2
	}
	for p := 0; p < passes; p++ {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		cpu0 := cpuSeconds()
		res := workload.Run(clock.Realtime, vd, spec)
		cpu1 := cpuSeconds()
		runtime.ReadMemStats(&m1)

		if dc := cpu1 - cpu0; dc > 0 && float64(res.Ops)/dc > cell.IOPSCPU {
			cell.IOPSCPU = float64(res.Ops) / dc
			cell.IOPS = res.IOPS()
			cell.MeanLatUs = float64(res.Lat.Mean()) / float64(time.Microsecond)
			if res.Ops > 0 {
				cell.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(res.Ops)
				cell.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(res.Ops)
			}
		}
	}
	return cell
}

// ceilingMicros runs the steady-state hot-path micro-benchmarks in pooled
// configuration. Each loop body is one hot-path unit of work; all must run
// at 0 allocs/op.
func ceilingMicros() []ceilingMicro {
	setCeilingMode(true)
	ssd := simdisk.NewSSD(ceilingSSD(), clock.Realtime)
	defer ssd.Close()
	store := blockstore.New(ssd, util.AlignDown(ssd.Size(), util.ChunkSize))
	id := blockstore.MakeChunkID(7, 0)
	if err := store.Create(id); err != nil {
		return nil
	}
	const span = 4 * util.MiB // working window, pre-written in setup
	data := make([]byte, 4*util.KiB)
	for i := range data {
		data[i] = byte(i)
	}
	for off := int64(0); off < span; off += int64(len(data)) {
		if err := store.WriteAt(id, data, off); err != nil {
			return nil
		}
		store.Sums().Stamp(id, off, data)
	}
	offs := make([]int64, 64)
	r := util.NewRand(42)
	for i := range offs {
		offs[i] = util.AlignDown(r.Int63n(span-4096), util.SectorSize)
	}

	run := func(name string, fn func(i int)) ceilingMicro {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn(i)
			}
		})
		return ceilingMicro{
			Name:        name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
	}

	var out []ceilingMicro
	out = append(out, run("read4k-verify", func(i int) {
		buf := bufpool.Get(4096)
		off := offs[i&63]
		if err := store.ReadAt(id, buf, off); err != nil {
			panic(err)
		}
		if err := store.Sums().Verify(id, off, buf); err != nil {
			panic(err)
		}
		bufpool.Put(buf)
	}))
	out = append(out, run("write4k-stamp", func(i int) {
		off := offs[i&63]
		if err := store.WriteAt(id, data, off); err != nil {
			panic(err)
		}
		store.Sums().Stamp(id, off, data)
	}))

	// Decode with payload-capacity reuse: one encoded 4 KiB frame, decoded
	// repeatedly into the same leased buffer.
	var frame bytes.Buffer
	src := &proto.Message{Op: proto.OpWrite, Chunk: id, Length: 4096, Payload: data}
	if err := src.Encode(&frame); err != nil {
		return out
	}
	raw := frame.Bytes()
	rd := bytes.NewReader(raw)
	var msg proto.Message
	msg.Payload = bufpool.Get(4096)
	out = append(out, run("decode4k-reuse", func(i int) {
		rd.Reset(raw)
		if err := msg.Decode(rd); err != nil {
			panic(err)
		}
	}))
	bufpool.Put(msg.Payload)

	// Client-directed fan-out: one pooled 3-way broadcast per op against a
	// synchronous stub replica, isolating the dispatch machinery (flight
	// lease, message frames, worker hand-off, result collection) from the
	// server stack. This is the loop writeClientDirected runs per tiny write.
	bc := transport.NewBroadcaster(fanoutStub{})
	op := opctx.New(clock.Realtime, 0)
	fanAddrs := [3]string{"r0", "r1", "r2"}
	payload := bufpool.Get(4096)
	copy(payload, data)
	out = append(out, run("write4k-client-directed", func(i int) {
		fl := bc.Begin(len(fanAddrs))
		for t := range fanAddrs {
			m := proto.GetMessage()
			m.Op = proto.OpReplicate
			m.Chunk = id
			m.Off = offs[i&63]
			m.Length = 4096
			m.Version = 7
			m.Payload = payload
			bufpool.Retain(payload)
			fl.Go(t, fanAddrs[t], op, time.Second, m)
		}
		for range fanAddrs {
			if r := fl.Next(); r.Err || r.Status != proto.StatusOK {
				panic("fan-out stub failed")
			}
		}
		fl.Finish()
	}))
	bufpool.Put(payload)
	bc.Close()

	// Journal-index insert: cycling writes over a small working set, with a
	// periodic merge so the freeze/merge scratch and the node freelist are
	// exercised (their cost amortizes to zero per op, which is the claim).
	ins := jindex.New(0)
	insJOff := uint64(0)
	out = append(out, run("jindex-insert", func(i int) {
		ins.Insert(uint32(offs[i&63]/util.SectorSize), 8, insJOff)
		insJOff += 8
		if i&4095 == 4095 {
			ins.MergeNow()
		}
	}))

	// Journal-index query: resolve a 32 KiB range against a populated
	// tree+array index into reused extent and hole buffers.
	qix := jindex.New(0)
	qJOff := uint64(0)
	for sec := uint32(0); sec < 8192; sec += 16 {
		qix.Insert(sec, 8, qJOff) // half coverage: extents and holes alike
		qJOff += 8
	}
	qix.MergeNow() // push into the sorted array level
	for i, o := range offs {
		qix.Insert(uint32(o/util.SectorSize), 4, qJOff+uint64(i)*4)
	}
	var qExt, qHoles []jindex.Extent
	out = append(out, run("jindex-query", func(i int) {
		off := uint32(offs[i&63] / util.SectorSize)
		qExt = qix.QueryInto(qExt[:0], off, 64)
		qHoles = jindex.HolesInto(qHoles[:0], off, 64, qExt)
	}))
	return out
}

// fanoutStub is the zero-cost replica behind the write4k-client-directed
// micro: it settles the request exactly as the transport would (one payload
// reference consumed, frame recycled) and answers OK from the message pool.
type fanoutStub struct{}

func (fanoutStub) Do(op *opctx.Op, addr string, m *proto.Message, cap time.Duration) (*proto.Message, error) {
	resp := m.Reply(proto.StatusOK)
	resp.Version = m.Version
	bufpool.Put(m.Payload)
	proto.Recycle(m)
	return resp, nil
}

// FigCeiling benchmarks the software IOPS ceiling: 4 KiB random reads and
// writes end-to-end through client, transport, chunk servers, and journals,
// with every simulated device and network hop at zero cost — so the ceiling
// is set purely by the software stack. "baseline" reverts the hot path to
// its pre-PR shape (per-message heap payloads, two-pass checksums behind a
// global lock, copying journal flushes); "pooled" is the shipped
// configuration. Steady-state micro-benchmarks confirm the pooled hot path
// runs at 0 allocs/op. Results are also written to BENCH_ceiling.json.
func FigCeiling(cfg Config) Table {
	t := Table{
		ID:    "Fig C",
		Title: "Software IOPS ceiling: 4KiB random, zero-cost devices, hybrid 3x3",
		Header: []string{"op", "qd", "base iops/cpu-s", "pooled iops/cpu-s",
			"speedup", "base allocs/op", "pooled allocs/op"},
	}
	doc := ceilingDoc{
		Bench: "ceiling",
		Quick: cfg.Quick,
		Baseline: "pool off + legacy two-pass checksums (one global lock) + " +
			"coalescing journal flush",
		SpeedupByOpQD: map[string]float64{},
	}
	for _, op := range []string{"read", "write"} {
		write := op == "write"
		for _, qd := range []int{1, 8, 32} {
			base := runCeilingCell(cfg, false, write, qd)
			pool := runCeilingCell(cfg, true, write, qd)
			doc.Cells = append(doc.Cells, base, pool)
			speedup := 0.0
			if base.IOPSCPU > 0 {
				speedup = pool.IOPSCPU / base.IOPSCPU
			}
			doc.SpeedupByOpQD[fmt.Sprintf("%s/%d", op, qd)] = speedup
			t.Rows = append(t.Rows, []string{
				op, f0(float64(qd)),
				f0(base.IOPSCPU), f0(pool.IOPSCPU), f2(speedup) + "x",
				f1(base.AllocsPerOp), f1(pool.AllocsPerOp),
			})
		}
	}
	doc.Micro = ceilingMicros()
	doc.PoolLeases = bufpool.Leases()
	doc.PoolInUseAfter = bufpool.InUse()

	micro := Table{
		ID:     "Fig C micro",
		Title:  "steady-state hot path (pooled), via testing.Benchmark",
		Header: []string{"loop", "ns/op", "allocs/op", "B/op"},
	}
	for _, m := range doc.Micro {
		micro.Rows = append(micro.Rows, []string{
			m.Name, f0(m.NsPerOp),
			fmt.Sprintf("%d", m.AllocsPerOp), fmt.Sprintf("%d", m.BytesPerOp),
		})
	}
	t.Extra = append(t.Extra, micro)
	t.Notes = append(t.Notes,
		"iops/cpu-s is ops per process-CPU-second: with zero-cost devices the stack is",
		"pure software, so CPU-normalized IOPS is the ceiling and is immune to host noise;",
		"allocs/op is process-wide heap mallocs per completed I/O (client+servers+journals);",
		"baseline allocates per message and copies per flush, pooled leases and scatter/gathers.",
		fmt.Sprintf("pool leases=%d, in-use after drain=%d (must be 0)",
			doc.PoolLeases, doc.PoolInUseAfter))
	if buf, err := json.MarshalIndent(&doc, "", "  "); err == nil {
		if werr := os.WriteFile(artifactPath(cfg, ceilingBenchJSON), append(buf, '\n'), 0o644); werr != nil {
			t.Notes = append(t.Notes, "write "+ceilingBenchJSON+": "+werr.Error())
		}
	}
	return t
}
