package bench

import (
	"encoding/json"
	"os"
	"strings"
	"time"

	"ursa/internal/clock"
	"ursa/internal/core"
	"ursa/internal/master"
	"ursa/internal/redundancy"
	"ursa/internal/util"
	"ursa/internal/workload"
)

// ecBenchJSON is FigEC's machine-readable artifact.
const ecBenchJSON = "BENCH_ec.json"

// ecPolicyDoc is one redundancy policy's measurements.
type ecPolicyDoc struct {
	Policy       string `json:"policy"`
	LogicalBytes int64  `json:"logical_bytes"`
	BackupBytes  int64  `json:"backup_store_bytes"`
	// Overhead is backup-tier bytes per logical byte: 2.0 for 3-way
	// mirroring, (N+M)/N for RS.
	Overhead       float64 `json:"backup_overhead_x"`
	WriteIOPS      float64 `json:"write_iops"`
	WriteP99Ms     float64 `json:"write_p99_ms"`
	ReadMeanMs     float64 `json:"healthy_read_mean_ms"`
	ReadP99Ms      float64 `json:"healthy_read_p99_ms"`
	DegradedMeanMs float64 `json:"degraded_read_mean_ms"`
	DegradedP99Ms  float64 `json:"degraded_read_p99_ms"`
	DegradedErrors int64   `json:"degraded_read_errors"`
	RebuildS       float64 `json:"segment_rebuild_s"`
}

type ecBenchDoc struct {
	Bench    string        `json:"bench"`
	Quick    bool          `json:"quick"`
	Policies []ecPolicyDoc `json:"policies"`
}

// FigEC compares the two backup-tier redundancy strategies on the same
// hybrid cluster: 3-way mirroring (the paper's configuration) against
// RS(4,2) segment coding. For each policy it measures the backup-tier
// storage overhead per logical byte, random-write and healthy random-read
// latency, degraded-read latency with the primary (the only full copy)
// crashed, and the wall time of rebuilding one lost backup replica — a
// 64 MB mirror clone vs a 16 MB segment rebuild. Results go to
// BENCH_ec.json.
func FigEC(cfg Config) Table {
	t := Table{
		ID:    "Fig EC",
		Title: "Backup redundancy: 3-way mirror vs RS(4,2) segment coding",
		Header: []string{"policy", "overhead", "wr IOPS", "wr p99", "rd p99",
			"degraded rd p99", "rebuild", "degraded errs"},
	}
	doc := ecBenchDoc{Bench: "ec", Quick: cfg.Quick}
	policies := []struct {
		name string
		spec redundancy.Spec
	}{
		{"mirror(3)", redundancy.Spec{}},
		{"rs(4,2)", redundancy.Spec{Kind: redundancy.KindRS, N: 4, M: 2}},
	}
	for _, pol := range policies {
		pd, notes := runECPolicy(cfg, pol.name, pol.spec)
		doc.Policies = append(doc.Policies, pd)
		t.Notes = append(t.Notes, notes...)
		t.Rows = append(t.Rows, []string{
			pol.name,
			f2(pd.Overhead) + "x",
			f0(pd.WriteIOPS),
			f1(pd.WriteP99Ms) + "ms",
			f1(pd.ReadP99Ms) + "ms",
			f1(pd.DegradedP99Ms) + "ms",
			f1(pd.RebuildS) + "s",
			f0(float64(pd.DegradedErrors)),
		})
	}
	if len(doc.Policies) == 2 {
		mirror, rs := doc.Policies[0], doc.Policies[1]
		t.Notes = append(t.Notes,
			"backup-tier overhead: mirror "+f2(mirror.Overhead)+"x vs rs "+f2(rs.Overhead)+
				"x of logical bytes (acceptance: rs <= 1.6x)")
		if rs.Overhead > 1.6 {
			t.Notes = append(t.Notes, "ACCEPTANCE FAIL: rs overhead above 1.6x")
		}
		if rs.DegradedErrors > 0 || mirror.DegradedErrors > 0 {
			t.Notes = append(t.Notes, "ACCEPTANCE FAIL: degraded reads failed")
		}
	}
	if buf, err := json.MarshalIndent(&doc, "", "  "); err == nil {
		if werr := os.WriteFile(artifactPath(cfg, ecBenchJSON), append(buf, '\n'), 0o644); werr != nil {
			t.Notes = append(t.Notes, "write "+ecBenchJSON+": "+werr.Error())
		}
	}
	return t
}

// runECPolicy builds a 7-machine hybrid cluster — just wide enough for
// RS(4,2)'s six distinct holder machines plus the primary's, so an RS
// chunk's crashed primary has no replacement machine and stays degraded —
// and runs the measurement sequence for one policy.
func runECPolicy(cfg Config, name string, spec redundancy.Spec) (ecPolicyDoc, []string) {
	pd := ecPolicyDoc{Policy: name}
	var notes []string
	failed := func(what string, err error) (ecPolicyDoc, []string) {
		return pd, append(notes, name+" "+what+" failed: "+err.Error())
	}
	c, err := core.New(core.Options{
		Machines:       7,
		SSDsPerMachine: 1,
		HDDsPerMachine: 2,
		Mode:           core.Hybrid,
		Clock:          clock.Realtime,
		SSDModel:       benchSSD(),
		HDDModel:       benchHDD(),
		HDDJournal:     false,
		NetLatency:     netLatency,
		NICRate:        50e6,
		ReplTimeout:    5 * time.Second,
		CallTimeout:    20 * time.Second,
	})
	if err != nil {
		return failed("build", err)
	}
	defer c.Close()
	cl := c.NewClient("bench-client")
	defer cl.Close()

	nChunks := 2
	if cfg.Quick {
		nChunks = 1
	}
	size := int64(nChunks) * util.ChunkSize
	pd.LogicalBytes = size
	if _, err := cl.CreateVDisk(master.CreateVDiskReq{
		Name: "bench-ec", Size: size, Redundancy: spec,
	}); err != nil {
		return failed("vdisk", err)
	}
	vd, err := cl.Open("bench-ec")
	if err != nil {
		return failed("open", err)
	}
	defer vd.Close()

	// Backup-tier storage: every byte of store slot allocated on the HDD
	// servers, per logical byte of the vdisk.
	for _, addr := range c.ServerAddrs() {
		if strings.Contains(addr, "hdd") {
			pd.BackupBytes += c.Server(addr).StoreUsedBytes()
		}
	}
	pd.Overhead = float64(pd.BackupBytes) / float64(size)

	// Working set: inside chunk 0, so the degraded window below exercises
	// the crashed primary's chunk.
	region := int64(4 * util.MiB)
	wres := workload.Run(clock.Realtime, vd, workload.Spec{
		Pattern:    workload.RandWrite,
		BlockSize:  4 * util.KiB,
		QueueDepth: 8,
		Ops:        cfg.ops(400),
		WorkingSet: region,
		Seed:       cfg.Seed + 21,
		MaxTime:    cfg.cellTime() / 2,
	})
	pd.WriteIOPS = wres.IOPS()
	pd.WriteP99Ms = float64(wres.Lat.Quantile(0.99)) / float64(time.Millisecond)

	rres := workload.Run(clock.Realtime, vd, workload.Spec{
		Pattern:    workload.RandRead,
		BlockSize:  4 * util.KiB,
		QueueDepth: 8,
		Ops:        cfg.ops(400),
		WorkingSet: region,
		Seed:       cfg.Seed + 22,
		MaxTime:    cfg.cellTime() / 2,
	})
	pd.ReadMeanMs = float64(rres.Lat.Mean()) / float64(time.Millisecond)
	pd.ReadP99Ms = float64(rres.Lat.Quantile(0.99)) / float64(time.Millisecond)

	meta, err := cl.OpenMeta("bench-ec")
	if err != nil {
		return failed("meta", err)
	}
	reps := meta.Chunks[0].Replicas

	// Rebuild: kill one backup replica and time the master's repair — a
	// whole-chunk clone for mirroring, a single segment for RS.
	dead := reps[1].Addr
	c.CrashServer(dead)
	r0 := time.Now()
	if _, err := c.Master.RecoverChunk(vd.ID(), 0, dead); err != nil {
		notes = append(notes, name+" rebuild: "+err.Error())
	} else {
		pd.RebuildS = time.Since(r0).Seconds()
	}
	c.RestartServer(dead)

	// Degraded reads: crash the primary — the only full copy. No spare SSD
	// machine exists, so the chunk stays degraded for the whole window:
	// mirrored reads fail over to a backup copy, RS reads reconstruct from
	// the segment holders.
	c.CrashServer(reps[0].Addr)
	dres := workload.Run(clock.Realtime, vd, workload.Spec{
		Pattern:    workload.RandRead,
		BlockSize:  4 * util.KiB,
		QueueDepth: 8,
		Ops:        cfg.ops(200),
		WorkingSet: region,
		Seed:       cfg.Seed + 23,
		MaxTime:    cfg.cellTime(),
	})
	pd.DegradedMeanMs = float64(dres.Lat.Mean()) / float64(time.Millisecond)
	pd.DegradedP99Ms = float64(dres.Lat.Quantile(0.99)) / float64(time.Millisecond)
	pd.DegradedErrors = dres.Errors
	return pd, notes
}
